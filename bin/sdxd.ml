(* sdxd: inspect the SDX controller pipeline from the command line.

     dune exec bin/sdxd.exe -- demo                 # Figure 1 walkthrough
     dune exec bin/sdxd.exe -- compile -n 50 -x 500 # compile a workload
     dune exec bin/sdxd.exe -- trace --ixp de-cix   # Table 1 trace stats
     dune exec bin/sdxd.exe -- --help *)

open Sdx_net
open Sdx_bgp
open Sdx_core

(* ------------------------------------------------------------------ *)
(* Observability reports (tentpole of the sdx_obs layer): every
   subcommand that builds a runtime can dump the process-wide metrics
   registry and the recent control-plane span trace, as text and/or
   JSON.  During [replay], SIGUSR1 dumps the same report to stderr at
   any time, and --stats-every does so on a timer — the always-on
   surface the §5 evaluation numbers come from. *)

let report_text ppf =
  let tracer = Sdx_obs.Trace.default in
  let spans = Sdx_obs.Trace.spans tracer in
  Format.fprintf ppf "== metrics ==@.%a@." Sdx_obs.Registry.pp
    Sdx_obs.Registry.default;
  Format.fprintf ppf "== recent spans (%d retained, %d dropped) ==@."
    (List.length spans)
    (Sdx_obs.Trace.dropped tracer);
  if spans <> [] then Format.fprintf ppf "%a@." Sdx_obs.Trace.pp_jsonl tracer

let report_json () =
  Printf.sprintf "{\"metrics\":%s,\"spans\":[%s]}\n"
    (Sdx_obs.Registry.json_array_of_samples
       (Sdx_obs.Registry.samples Sdx_obs.Registry.default))
    (String.concat ","
       (List.map Sdx_obs.Trace.json_of_span
          (Sdx_obs.Trace.spans Sdx_obs.Trace.default)))

(* Materialize the runtime's ruleset in an OpenFlow table so the report
   reflects flow-mod counts and table occupancy, not just the abstract
   classifier. *)
let sync_flow_table runtime =
  let table = Sdx_openflow.Table.create () in
  Sdx_openflow.Table.install_all table (Runtime.flows runtime);
  table

let emit_stats ~stats ~stats_json runtime_opt =
  if stats || stats_json <> None then begin
    Option.iter (fun rt -> ignore (sync_flow_table rt)) runtime_opt;
    if stats then report_text Format.std_formatter;
    match stats_json with
    | None -> ()
    | Some "-" -> print_string (report_json ())
    | Some path ->
        let oc = open_out path in
        output_string oc (report_json ());
        close_out oc;
        Format.printf "wrote stats report to %s@." path
  end

(* ------------------------------------------------------------------ *)
(* demo: the Figure 1 scenario, end to end                             *)

let run_demo verbose obs_stats stats_json =
  let mac = Mac.of_string and ip = Ipv4.of_string and pfx = Prefix.of_string in
  let asn_a = Asn.of_int 100
  and asn_b = Asn.of_int 200
  and asn_c = Asn.of_int 300 in
  let a =
    Participant.make ~asn:asn_a
      ~ports:[ (mac "aa:aa:aa:aa:aa:01", ip "172.0.0.1") ]
      ~outbound:
        [
          Ppolicy.fwd (Sdx_policy.Pred.dst_port 80) (Ppolicy.Peer asn_b);
          Ppolicy.fwd (Sdx_policy.Pred.dst_port 443) (Ppolicy.Peer asn_c);
        ]
      ()
  in
  let b =
    Participant.make ~asn:asn_b
      ~ports:
        [ (mac "bb:bb:bb:bb:bb:01", ip "172.0.0.2");
          (mac "bb:bb:bb:bb:bb:02", ip "172.0.0.3") ]
      ~inbound:
        [
          Ppolicy.fwd (Sdx_policy.Pred.src_ip (pfx "0.0.0.0/1")) (Ppolicy.Phys 0);
          Ppolicy.fwd (Sdx_policy.Pred.src_ip (pfx "128.0.0.0/1")) (Ppolicy.Phys 1);
        ]
      ()
  in
  let c = Participant.make ~asn:asn_c ~ports:[ (mac "cc:cc:cc:cc:cc:01", ip "172.0.0.4") ] () in
  let config = Config.make [ a; b; c ] in
  List.iter
    (fun (peer, p, path) ->
      ignore (Config.announce config ~peer ~port:0 ~as_path:path (pfx p)))
    [
      (asn_b, "20.0.1.0/24", [ asn_b; Asn.of_int 65001; Asn.of_int 65002 ]);
      (asn_b, "20.0.3.0/24", [ asn_b; Asn.of_int 65001 ]);
      (asn_c, "20.0.1.0/24", [ asn_c; Asn.of_int 65001 ]);
      (asn_c, "20.0.3.0/24", [ asn_c; Asn.of_int 65001; Asn.of_int 65002 ]);
      (asn_c, "20.0.4.0/24", [ asn_c; Asn.of_int 65001 ]);
    ];
  let runtime = Runtime.create config in
  Format.printf "Participants:@.";
  List.iter (fun p -> Format.printf "%a@.@." Participant.pp p) (Config.participants config);
  Format.printf "Prefix groups:@.";
  List.iter
    (fun (g : Compile.group) ->
      Format.printf "  group %d: vnh=%a vmac=%a {%s}@." g.id Ipv4.pp g.vnh Mac.pp
        g.vmac
        (String.concat ", " (List.map Prefix.to_string g.prefixes)))
    (Compile.groups (Runtime.compiled runtime));
  Format.printf "@.ARP responder (%d bindings):@."
    (Sdx_arp.Responder.size (Runtime.arp runtime));
  List.iter
    (fun (ip, mac) -> Format.printf "  %a is-at %a@." Ipv4.pp ip Mac.pp mac)
    (Sdx_arp.Responder.bindings (Runtime.arp runtime));
  let stats = Compile.stats (Runtime.compiled runtime) in
  Format.printf
    "@.Compiled %d rules for %d groups in %.3f ms (%d sequential \
     compositions, %d memo hits).@."
    stats.rule_count stats.group_count (1000.0 *. stats.elapsed_s) stats.seq_ops
    stats.memo_hits;
  if verbose then begin
    Format.printf "@.Flow table:@.%a@." Sdx_policy.Classifier.pp
      (Runtime.classifier runtime)
  end;
  emit_stats ~stats:obs_stats ~stats_json (Some runtime)

(* ------------------------------------------------------------------ *)
(* compile: a synthetic workload through the pipeline                  *)

let run_compile participants prefixes seed naive obs_stats stats_json =
  let rng = Sdx_ixp.Rng.create ~seed in
  let w = Sdx_ixp.Workload.build rng ~participants ~prefixes () in
  let runtime = Runtime.create ~optimized:(not naive) w.Sdx_ixp.Workload.config in
  let stats = Compile.stats (Runtime.compiled runtime) in
  Format.printf "participants:       %d@." participants;
  Format.printf "prefixes:           %d@." prefixes;
  Format.printf "mode:               %s@." (if naive then "naive" else "optimized");
  Format.printf "prefix groups:      %d@." stats.group_count;
  Format.printf "flow rules:         %d@." stats.rule_count;
  Format.printf "compile time:       %.3f s@." stats.elapsed_s;
  Format.printf "compose time:       %.3f s@." stats.compose_s;
  Format.printf "seq compositions:   %d@." stats.seq_ops;
  Format.printf "memo hits:          %d@." stats.memo_hits;
  Format.printf "fdd nodes:          %d@." stats.fdd_nodes;
  Format.printf "fdd memo hits:      %d@." stats.fdd_memo_hits;
  Format.printf "fdd unique table:   %d@." stats.fdd_table_size;
  let policied =
    List.length
      (List.filter
         (fun (p : Participant.t) -> p.outbound <> [] || p.inbound <> [])
         (Config.participants w.Sdx_ixp.Workload.config))
  in
  Format.printf "policied ASes:      %d@." policied;
  emit_stats ~stats:obs_stats ~stats_json (Some runtime)

(* ------------------------------------------------------------------ *)
(* load: run a scenario file                                           *)

(* Probe syntax: AS100:10.0.0.1:20.0.1.9:80 (sender, src, dst, dstport). *)
let parse_probe s =
  match String.split_on_char ':' s with
  | [ asn_s; src; dst; dport ] -> (
      let asn_digits =
        if String.length asn_s > 2 && String.sub asn_s 0 2 = "AS" then
          String.sub asn_s 2 (String.length asn_s - 2)
        else asn_s
      in
      match
        ( int_of_string_opt asn_digits,
          Ipv4.of_string_opt src,
          Ipv4.of_string_opt dst,
          int_of_string_opt dport )
      with
      | Some a, Some src, Some dst, Some dport ->
          (Asn.of_int a, src, dst, dport)
      | _ -> failwith (Printf.sprintf "bad probe %S" s))
  | _ -> failwith (Printf.sprintf "bad probe %S (want AS:src:dst:dport)" s)

let run_load path probes verbose obs_stats stats_json =
  match Scenario.load path with
  | Error e -> Format.printf "%a@." Scenario.pp_error e
  | Ok config ->
      let runtime = Runtime.create config in
      let stats = Compile.stats (Runtime.compiled runtime) in
      Format.printf "%s: %d participants, %d ports, %d prefixes@." path
        (List.length (Config.participants config))
        (Config.port_count config)
        (Route_server.prefix_count (Config.server config));
      Format.printf "compiled: %d prefix groups, %d rules, %.3f ms@."
        stats.group_count stats.rule_count (1000.0 *. stats.elapsed_s);
      if verbose then
        Format.printf "@.%a@." Sdx_policy.Classifier.pp (Runtime.classifier runtime);
      if probes <> [] then begin
        let net = Sdx_fabric.Network.create runtime in
        Format.printf "@.probes:@.";
        List.iter
          (fun probe ->
            let sender, src_ip, dst_ip, dst_port = parse_probe probe in
            let packet = Packet.make ~src_ip ~dst_ip ~dst_port () in
            match Sdx_fabric.Network.inject net ~from:sender packet with
            | [] -> Format.printf "  %-36s -> dropped@." probe
            | ds ->
                List.iter
                  (fun (d : Sdx_fabric.Network.delivery) ->
                    Format.printf "  %-36s -> %s port %d@." probe
                      (Asn.to_string d.receiver) d.receiver_port)
                  ds)
          probes
      end;
      emit_stats ~stats:obs_stats ~stats_json (Some runtime)

(* ------------------------------------------------------------------ *)
(* trace: Table 1 statistics                                           *)

let run_trace ixp scale seed =
  let profile =
    match String.lowercase_ascii ixp with
    | "ams-ix" | "ams" -> Sdx_ixp.Trace.ams_ix
    | "de-cix" | "dec" -> Sdx_ixp.Trace.de_cix
    | "linx" -> Sdx_ixp.Trace.linx
    | other -> failwith (Printf.sprintf "unknown IXP %S (ams-ix|de-cix|linx)" other)
  in
  let rng = Sdx_ixp.Rng.create ~seed in
  let scaled = Sdx_ixp.Trace.scale profile scale in
  let trace = Sdx_ixp.Trace.generate rng scaled ~duration_s:(6.0 *. 86400.0) () in
  Format.printf "%s (scale %g):@.%a@." profile.name scale Sdx_ixp.Trace.pp_stats
    (Sdx_ixp.Trace.stats scaled trace)

(* ------------------------------------------------------------------ *)
(* replay: churn through the two-stage runtime                         *)

let run_replay participants prefixes seed scale verify obs_stats stats_json
    stats_every =
  let rng = Sdx_ixp.Rng.create ~seed in
  let w = Sdx_ixp.Workload.build rng ~participants ~prefixes () in
  (* With --verify, every compilation the runtime performs during the
     replay (initial, re-optimizations, fast-path installs) is statically
     checked; an error finding aborts the replay. *)
  if verify then Sdx_check.Check.install_runtime_hook ~fail:true ();
  let runtime = Sdx_ixp.Workload.runtime w in
  let profile = Sdx_ixp.Trace.scale Sdx_ixp.Trace.ams_ix scale in
  let trace =
    Sdx_ixp.Replay.trace_for_workload rng w ~profile ~duration_s:86_400.0
  in
  (* Signal-triggered dump while the replay runs: `kill -USR1 $(pidof
     sdxd)` prints the live report to stderr without disturbing the
     run.  --stats-every does the same on a wall-clock timer. *)
  let dump _ = report_text Format.err_formatter in
  Sys.set_signal Sys.sigusr1 (Sys.Signal_handle dump);
  (match stats_every with
  | None -> ()
  | Some period ->
      Sys.set_signal Sys.sigalrm (Sys.Signal_handle dump);
      ignore
        (Unix.setitimer Unix.ITIMER_REAL
           { Unix.it_value = period; it_interval = period }));
  let result = Sdx_ixp.Replay.run runtime trace in
  (match stats_every with
  | None -> ()
  | Some _ ->
      ignore
        (Unix.setitimer Unix.ITIMER_REAL
           { Unix.it_value = 0.0; it_interval = 0.0 }));
  if verify then Sdx_check.Check.uninstall_runtime_hook ();
  Format.printf "%a@." Sdx_ixp.Replay.pp_result result;
  emit_stats ~stats:obs_stats ~stats_json (Some runtime)

(* ------------------------------------------------------------------ *)
(* check: static verification of compiled state                        *)

module Check = Sdx_check.Check

(* Spread the exchange's 1-based switch ports round-robin over a line of
   [switches] fabric switches so the loop pass exercises real trunks. *)
let line_fabric runtime ~switches =
  let nports = Config.port_count (Runtime.config runtime) in
  if switches <= 1 || nports = 0 then None
  else
    let topo =
      Sdx_fabric.Topology.create
        ~switches:(List.init switches (fun i -> i + 1))
        ~links:(List.init (switches - 1) (fun i -> (i + 1, i + 2)))
        ~port_home:(List.init nports (fun i -> (i + 1, (i mod switches) + 1)))
    in
    Some (Sdx_fabric.Topology.build topo (Runtime.classifier runtime))

let check_subject name runtime ~switches ~passes ~verbose =
  let fabric = line_fabric runtime ~switches in
  let report = Check.runtime ?fabric ~passes runtime in
  Format.printf "%s: %s@." name (Check.summary report);
  let shown =
    if verbose then report.Check.findings
    else
      List.filter
        (fun (f : Check.finding) -> f.Check.severity <> Check.Info)
        report.Check.findings
  in
  List.iter (fun f -> Format.printf "  %a@." Check.pp_finding f) shown;
  (report, Check.has_errors report)

(* Machine-readable findings dump, witness packets included — CI uploads
   this as an artifact when the check job fails so the offending packet
   survives the ephemeral runner. *)
let write_witnesses path reports =
  let buf = Buffer.create 4096 in
  let esc s = String.concat "\\\"" (String.split_on_char '"' s) in
  Buffer.add_string buf "[\n";
  let first = ref true in
  List.iter
    (fun (name, (report : Check.report)) ->
      List.iter
        (fun (f : Check.finding) ->
          if not !first then Buffer.add_string buf ",\n";
          first := false;
          Buffer.add_string buf
            (Printf.sprintf
               "  {\"subject\": \"%s\", \"pass\": \"%s\", \"code\": \"%s\", \
                \"severity\": \"%s\", \"detail\": \"%s\", \"rules\": [%s], \
                \"witness\": %s}"
               (esc name) f.Check.pass f.Check.code
               (Check.severity_label f.Check.severity)
               (esc f.Check.detail)
               (String.concat ", " (List.map string_of_int f.Check.rules))
               (match f.Check.witness with
               | None -> "null"
               | Some pkt ->
                   Printf.sprintf "\"%s\""
                     (esc (Format.asprintf "%a" Sdx_net.Packet.pp pkt)))))
        report.Check.findings)
    reports;
  Buffer.add_string buf "\n]\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Format.printf "wrote %d finding(s) to %s@."
    (List.fold_left
       (fun n (_, (r : Check.report)) -> n + List.length r.Check.findings)
       0 reports)
    path

let run_check paths workload participants prefixes seed switches passes verbose
    witness_out obs_stats stats_json =
  let passes = if passes = [] then Check.all_passes else passes in
  List.iter
    (fun p ->
      if not (List.mem p Check.all_passes) then
        failwith
          (Printf.sprintf "unknown pass %S (have: %s)" p
             (String.concat ", " Check.all_passes)))
    passes;
  if paths = [] && not workload then
    failwith "nothing to check: give scenario files and/or --workload";
  let failed = ref false in
  let reports = ref [] in
  List.iter
    (fun path ->
      match Scenario.load path with
      | Error e ->
          Format.printf "%s: %a@." path Scenario.pp_error e;
          failed := true
      | Ok config ->
          let runtime = Runtime.create config in
          let report, errs = check_subject path runtime ~switches ~passes ~verbose in
          reports := (path, report) :: !reports;
          if errs then failed := true)
    paths;
  if workload then begin
    let rng = Sdx_ixp.Rng.create ~seed in
    let w = Sdx_ixp.Workload.build rng ~participants ~prefixes () in
    let runtime = Sdx_ixp.Workload.runtime w in
    let name =
      Printf.sprintf "workload(n=%d,x=%d,seed=%d)" participants prefixes seed
    in
    let report, errs = check_subject name runtime ~switches ~passes ~verbose in
    reports := (name, report) :: !reports;
    if errs then failed := true
  end;
  Option.iter (fun path -> write_witnesses path (List.rev !reports)) witness_out;
  emit_stats ~stats:obs_stats ~stats_json None;
  if !failed then exit 1

(* ------------------------------------------------------------------ *)

open Cmdliner

let seed_t = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.")

let stats_t =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print the observability report (metrics registry + recent spans) \
           after the run.")

let stats_json_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "stats-json" ] ~docv:"FILE"
        ~doc:"Write the observability report as JSON to $(docv) (- for stdout).")

let demo_cmd =
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Also dump the flow table.")
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"Walk through the paper's Figure 1 scenario.")
    Term.(const run_demo $ verbose $ stats_t $ stats_json_t)

let compile_cmd =
  let participants =
    Arg.(value & opt int 50 & info [ "n"; "participants" ] ~doc:"Participant count.")
  in
  let prefixes =
    Arg.(value & opt int 500 & info [ "x"; "prefixes" ] ~doc:"Prefix count.")
  in
  let naive =
    Arg.(value & flag & info [ "naive" ] ~doc:"Disable the 4.3 optimizations.")
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile a synthetic 6.1 workload and print statistics.")
    Term.(
      const (fun n x seed naive stats stats_json ->
          run_compile n x seed naive stats stats_json)
      $ participants $ prefixes $ seed_t $ naive $ stats_t $ stats_json_t)

let load_cmd =
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Scenario file.")
  in
  let probes =
    Arg.(
      value & opt_all string []
      & info [ "probe" ] ~docv:"AS:src:dst:dport"
          ~doc:"Inject a probe packet and report where it lands (repeatable).")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Also dump the flow table.")
  in
  Cmd.v
    (Cmd.info "load" ~doc:"Load a scenario file, compile it, and optionally probe it.")
    Term.(
      const (fun path probes verbose stats stats_json ->
          run_load path probes verbose stats stats_json)
      $ path $ probes $ verbose $ stats_t $ stats_json_t)

let trace_cmd =
  let ixp =
    Arg.(value & opt string "ams-ix" & info [ "ixp" ] ~doc:"ams-ix, de-cix, or linx.")
  in
  let scale =
    Arg.(value & opt float 0.01 & info [ "scale" ] ~doc:"Trace scale factor.")
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Generate a Table 1 BGP update trace and print its statistics.")
    Term.(const (fun ixp scale seed -> run_trace ixp scale seed) $ ixp $ scale $ seed_t)

let replay_cmd =
  let participants =
    Arg.(value & opt int 100 & info [ "n"; "participants" ] ~doc:"Participant count.")
  in
  let prefixes =
    Arg.(value & opt int 1000 & info [ "x"; "prefixes" ] ~doc:"Prefix count.")
  in
  let scale =
    Arg.(value & opt float 0.001 & info [ "scale" ] ~doc:"Trace scale factor.")
  in
  let stats_every =
    Arg.(
      value
      & opt (some float) None
      & info [ "stats-every" ] ~docv:"SECONDS"
          ~doc:"Dump the observability report to stderr every $(docv) while \
                replaying (SIGUSR1 triggers the same dump on demand).")
  in
  let verify =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:
            "Statically verify every compilation during the replay (initial, \
             re-optimizations, fast-path installs); abort on an error finding.")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Replay a day of AMS-IX-like churn through the two-stage runtime.")
    Term.(
      const (fun n x seed scale verify stats stats_json every ->
          run_replay n x seed scale verify stats stats_json every)
      $ participants $ prefixes $ seed_t $ scale $ verify $ stats_t
      $ stats_json_t $ stats_every)

let check_cmd =
  let paths =
    Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc:"Scenario files to verify.")
  in
  let workload =
    Arg.(
      value & flag
      & info [ "workload" ]
          ~doc:"Also verify a synthetic 6.1 workload (sized by -n/-x/--seed).")
  in
  let participants =
    Arg.(value & opt int 50 & info [ "n"; "participants" ] ~doc:"Workload participant count.")
  in
  let prefixes =
    Arg.(value & opt int 500 & info [ "x"; "prefixes" ] ~doc:"Workload prefix count.")
  in
  let switches =
    Arg.(
      value & opt int 2
      & info [ "switches" ]
          ~doc:
            "Spread ports over this many fabric switches for the loop pass \
             (1 disables the fabric walk).")
  in
  let passes =
    Arg.(
      value & opt_all string []
      & info [ "pass" ] ~docv:"PASS"
          ~doc:"Run only this pass (repeatable): isolation, bgp, loops, lints.")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Also print info-level findings.")
  in
  let witness_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "witness-out" ] ~docv:"FILE"
          ~doc:
            "Write every finding — witness packets included — as JSON to \
             $(docv); CI uploads it as an artifact on failure.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Statically verify compiled state: isolation, BGP consistency, \
          loop freedom, and classifier lints.  Exits non-zero if any \
          error-severity finding exists.")
    Term.(
      const (fun paths workload n x seed switches passes verbose witness_out
                 stats stats_json ->
          run_check paths workload n x seed switches passes verbose witness_out
            stats stats_json)
      $ paths $ workload $ participants $ prefixes $ seed_t $ switches $ passes
      $ verbose $ witness_out $ stats_t $ stats_json_t)

(* ------------------------------------------------------------------ *)
(* race: the sdx_race sanitizer suite                                  *)

let run_race domains report_out =
  let domains =
    match domains with Some d -> max 1 d | None -> Parallel.default_domains ()
  in
  let items = Sdx_check.Race_suite.run_all ~domains () in
  List.iter
    (fun (it : Sdx_check.Race_suite.item) ->
      Format.printf "%s %-32s %s@."
        (if it.item_ok then "ok  " else "FAIL")
        it.item_name it.item_detail;
      if not it.item_ok then
        List.iter
          (fun r ->
            Format.printf "     %s@." (Sdx_sanitize.Sync.report_summary r))
          it.item_reports)
    items;
  let ok = Sdx_check.Race_suite.all_ok items in
  Option.iter
    (fun path ->
      let oc = open_out path in
      output_string oc (Sdx_check.Race_suite.items_json items);
      output_char oc '\n';
      close_out oc;
      Format.printf "race report written to %s@." path)
    report_out;
  Format.printf "%d/%d passed@." 
    (List.length (List.filter (fun (i : Sdx_check.Race_suite.item) -> i.item_ok) items))
    (List.length items);
  if not ok then exit 1

let race_cmd =
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Real domains for the Record-mode pool smoke (default: the \
             host's recommended count, or the SDX_DOMAINS variable).")
  in
  let report_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE"
          ~doc:
            "Write the suite outcome (per-item status plus full race \
             reports with allocation/access sites) as JSON to $(docv); CI \
             uploads it as an artifact on failure.")
  in
  Cmd.v
    (Cmd.info "race"
       ~doc:
         "Run the sdx_race suite: seeded-race mutations under the Record \
          detector, an instrumented smoke of the real pool, and the \
          exhaustive DPOR interleaving models of the RCU table, pool \
          shutdown and DLS epoch protocols.  Exits non-zero if any seeded \
          race goes undetected or any clean protocol is flagged.")
    Term.(const (fun d r -> run_race d r) $ domains $ report_out)

(* ------------------------------------------------------------------ *)
(* lint: source-level concurrency lint                                 *)

let run_lint dirs =
  let dirs = if dirs = [] then [ "lib"; "bin"; "bench"; "test" ] else dirs in
  let present = List.filter Sys.file_exists dirs in
  let findings = Sdx_check.Lint.scan_dirs present in
  List.iter
    (fun f -> Format.printf "%a@." Sdx_check.Lint.pp_finding f)
    findings;
  Format.printf "%d finding(s) over %s@." (List.length findings)
    (String.concat " " present);
  if findings <> [] then exit 1

let lint_cmd =
  let dirs =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"DIR"
          ~doc:"Directories to lint (default: lib bin bench test).")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Concurrency lint: reject raw Mutex/Condition/Atomic/Domain usage \
          outside lib/sanitize and flag mutable fields in Sync-using \
          modules that lack an sdx-owner: ownership annotation.  Exits \
          non-zero on any finding.")
    Term.(const run_lint $ dirs)

let () =
  let info = Cmd.info "sdxd" ~doc:"SDX controller inspection tool." in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            demo_cmd;
            compile_cmd;
            load_cmd;
            trace_cmd;
            replay_cmd;
            check_cmd;
            race_cmd;
            lint_cmd;
          ]))
