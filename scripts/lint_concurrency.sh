#!/bin/sh
# Concurrency lint gate: no raw Mutex/Condition/Atomic/Domain usage
# outside lib/sanitize, and every mutable field in a Sync-using module
# carries an sdx-owner: annotation.  Runs the sdxd lint verb over the
# whole tree; exits non-zero on any finding (CI fails the lint job).
#
#   scripts/lint_concurrency.sh [DIR...]
#
# With no arguments lints lib bin bench test.

set -eu

cd "$(dirname "$0")/.."

dune build bin/sdxd.exe
exec dune exec --no-build bin/sdxd.exe -- lint "$@"
