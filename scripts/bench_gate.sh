#!/bin/sh
# Bench regression gate: compare a fresh bench report against the
# committed baseline.
#
#   scripts/bench_gate.sh BASELINE.json CANDIDATE.json
#
# Two report schemas, auto-detected:
#
# `bench json` (compile): fails (exit 1) on correctness drift — `rules`,
# `groups`, or `identical_to_sequential` differing from the baseline —
# those are deterministic for a fixed seed, so any change means the
# compiler's output changed and the baseline must be consciously
# re-committed.  Warns (exit 0) when `elapsed_s` regressed by more than
# 25%, since absolute timings vary with CI hardware.
#
# `bench dataplane` (lookup engine): fails on `rules` drift, on
# `identical_to_linear` != true (the engine diverged from the
# linear-scan oracle), and on `speedup` < 5.0 — the engine must beat the
# linear scan by at least 5x at the headline (>= 5k rule) table, with
# enough margin under the real ~20x that CI jitter does not flake.
# Warns when `engine_pps` regressed by more than 25% vs the baseline.
#
# `bench soak` (churn): fails on any `check_errors` or
# `equiv_divergences` (the soak must stay verified and equivalent to
# from-scratch recompiles), and on `reoptimizations` or `vnh_reclaimed`
# of zero — a soak that never re-optimized or never reclaimed a VNH did
# not exercise the lifecycle it exists to test.  Warns when
# `updates_per_s` regressed by more than 25% vs the baseline.  Update
# counts are deliberately NOT compared: the committed baseline is a
# million-update run while CI soaks a smaller count.
set -eu

if [ $# -ne 2 ]; then
    echo "usage: $0 baseline.json candidate.json" >&2
    exit 2
fi
baseline=$1
candidate=$2

# The reports are written by bench/main.ml with one "key": value pair
# per line, so a sed scrape is exact on this schema.
field() {
    sed -n "s/^[[:space:]]*\"$2\":[[:space:]]*\([^,}]*\).*/\1/p" "$1" | head -n 1
}

require() {
    if [ -z "$2" ]; then
        echo "bench gate: field \"$1\" missing from report" >&2
        exit 1
    fi
}

fail=0

if grep -q '"identical_to_linear"' "$candidate"; then
    # --- dataplane schema ---
    for key in rules identical_to_linear; do
        base=$(field "$baseline" "$key")
        cand=$(field "$candidate" "$key")
        require "$key (baseline)" "$base"
        require "$key (candidate)" "$cand"
        if [ "$base" != "$cand" ]; then
            echo "bench gate: FAIL $key: baseline=$base candidate=$cand"
            fail=1
        else
            echo "bench gate: ok   $key=$cand"
        fi
    done

    if [ "$(field "$candidate" identical_to_linear)" != "true" ]; then
        echo "bench gate: FAIL engine lookup is not equivalent to the linear scan"
        fail=1
    fi

    speedup=$(field "$candidate" speedup)
    require "speedup" "$speedup"
    if ! awk -v s="$speedup" 'BEGIN { exit !(s >= 5.0) }'; then
        echo "bench gate: FAIL dataplane speedup ${speedup}x is below the 5x floor"
        fail=1
    else
        echo "bench gate: ok   speedup=${speedup}x (floor 5x)"
    fi

    base_pps=$(field "$baseline" engine_pps)
    cand_pps=$(field "$candidate" engine_pps)
    require "engine_pps (baseline)" "$base_pps"
    require "engine_pps (candidate)" "$cand_pps"
    awk -v base="$base_pps" -v cand="$cand_pps" 'BEGIN {
        if (base > 0 && cand < base * 0.75) {
            printf "bench gate: WARN engine_pps %.0f is %.0f%% below baseline %.0f\n",
                cand, (1 - cand / base) * 100, base
        } else {
            printf "bench gate: ok   engine_pps=%.0f (baseline %.0f)\n", cand, base
        }
    }'

    exit "$fail"
fi

if grep -q '"updates_per_s"' "$candidate"; then
    # --- churn soak schema ---
    for key in check_errors equiv_divergences; do
        cand=$(field "$candidate" "$key")
        require "$key" "$cand"
        if [ "$cand" != "0" ]; then
            echo "bench gate: FAIL $key=$cand (must be 0)"
            fail=1
        else
            echo "bench gate: ok   $key=0"
        fi
    done

    for key in reoptimizations vnh_reclaimed; do
        cand=$(field "$candidate" "$key")
        require "$key" "$cand"
        if [ "$cand" = "0" ]; then
            echo "bench gate: FAIL $key=0 (soak did not exercise the VNH lifecycle)"
            fail=1
        else
            echo "bench gate: ok   $key=$cand"
        fi
    done

    base_rate=$(field "$baseline" updates_per_s)
    cand_rate=$(field "$candidate" updates_per_s)
    require "updates_per_s (baseline)" "$base_rate"
    require "updates_per_s (candidate)" "$cand_rate"
    awk -v base="$base_rate" -v cand="$cand_rate" 'BEGIN {
        if (base > 0 && cand < base * 0.75) {
            printf "bench gate: WARN updates_per_s %.0f is %.0f%% below baseline %.0f\n",
                cand, (1 - cand / base) * 100, base
        } else {
            printf "bench gate: ok   updates_per_s=%.0f (baseline %.0f)\n", cand, base
        }
    }'

    exit "$fail"
fi

# --- compile schema ---
for key in rules groups identical_to_sequential; do
    base=$(field "$baseline" "$key")
    cand=$(field "$candidate" "$key")
    require "$key (baseline)" "$base"
    require "$key (candidate)" "$cand"
    if [ "$base" != "$cand" ]; then
        echo "bench gate: FAIL $key: baseline=$base candidate=$cand"
        fail=1
    else
        echo "bench gate: ok   $key=$cand"
    fi
done

if [ "$(field "$candidate" identical_to_sequential)" != "true" ]; then
    echo "bench gate: FAIL parallel compilation is not equivalent to sequential"
    fail=1
fi

base_s=$(field "$baseline" elapsed_s)
cand_s=$(field "$candidate" elapsed_s)
require "elapsed_s (baseline)" "$base_s"
require "elapsed_s (candidate)" "$cand_s"
awk -v base="$base_s" -v cand="$cand_s" 'BEGIN {
    if (base > 0 && cand > base * 1.25) {
        printf "bench gate: WARN elapsed_s %.6f is %.0f%% over baseline %.6f\n",
            cand, (cand / base - 1) * 100, base
    } else {
        printf "bench gate: ok   elapsed_s=%.6f (baseline %.6f)\n", cand, base
    }
}'

exit "$fail"
