#!/bin/sh
# Bench regression gate: compare a fresh `bench json` report against the
# committed baseline.
#
#   scripts/bench_gate.sh BASELINE.json CANDIDATE.json
#
# Fails (exit 1) on correctness drift: `rules`, `groups`, or
# `identical_to_sequential` differing from the baseline — those are
# deterministic for a fixed seed, so any change means the compiler's
# output changed and the baseline must be consciously re-committed.
# Warns (exit 0) when `elapsed_s` regressed by more than 25%, since
# absolute timings vary with CI hardware.
set -eu

if [ $# -ne 2 ]; then
    echo "usage: $0 baseline.json candidate.json" >&2
    exit 2
fi
baseline=$1
candidate=$2

# The reports are written by bench/main.ml with one "key": value pair
# per line, so a sed scrape is exact on this schema.
field() {
    sed -n "s/^[[:space:]]*\"$2\":[[:space:]]*\([^,}]*\).*/\1/p" "$1" | head -n 1
}

require() {
    if [ -z "$2" ]; then
        echo "bench gate: field \"$1\" missing from report" >&2
        exit 1
    fi
}

fail=0
for key in rules groups identical_to_sequential; do
    base=$(field "$baseline" "$key")
    cand=$(field "$candidate" "$key")
    require "$key (baseline)" "$base"
    require "$key (candidate)" "$cand"
    if [ "$base" != "$cand" ]; then
        echo "bench gate: FAIL $key: baseline=$base candidate=$cand"
        fail=1
    else
        echo "bench gate: ok   $key=$cand"
    fi
done

if [ "$(field "$candidate" identical_to_sequential)" != "true" ]; then
    echo "bench gate: FAIL parallel compilation is not equivalent to sequential"
    fail=1
fi

base_s=$(field "$baseline" elapsed_s)
cand_s=$(field "$candidate" elapsed_s)
require "elapsed_s (baseline)" "$base_s"
require "elapsed_s (candidate)" "$cand_s"
awk -v base="$base_s" -v cand="$cand_s" 'BEGIN {
    if (base > 0 && cand > base * 1.25) {
        printf "bench gate: WARN elapsed_s %.6f is %.0f%% over baseline %.6f\n",
            cand, (cand / base - 1) * 100, base
    } else {
        printf "bench gate: ok   elapsed_s=%.6f (baseline %.6f)\n", cand, base
    }
}'

exit "$fail"
