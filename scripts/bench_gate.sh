#!/bin/sh
# Bench regression gate: compare a fresh bench report against the
# committed baseline.
#
#   scripts/bench_gate.sh BASELINE.json CANDIDATE.json
#
# Report schemas, auto-detected:
#
# `bench json` (FDD sweep, current): fails (exit 1) when any sweep point
# reports `identical_to_crossproduct: false` (the FDD engine must agree
# with the cross-product oracle everywhere) or
# `identical_to_group_naive: false` (the interned grouping must agree
# with the naive per-spec-set oracle everywhere), when the headline
# `speedup` (composition-stage, cross-product over sharded FDD, at the
# headline point) is below the 3x floor, when the headline
# `group_speedup` (naive grouping over export-vector interning) is below
# 10x at full scale (>= 50k headline prefixes; 0.5x — millisecond-level
# timer noise tolerance — at the smaller CI scale), when the
# `reachability_s`/`group_s` phase keys
# are missing, or when a `check_errors` field is present and non-zero.
# Absolute rule/group counts are NOT compared to the baseline: the
# committed baseline is a full-scale (--scale 1) sweep while CI runs the
# default scale, so the grids differ by design.  Warns when the
# candidate's speedup is under a quarter of the baseline's (the ratio
# grows with workload size, so candidates at smaller scales legitimately
# report less).
#
# `bench json` (compile, pre-FDD): fails on correctness drift — `rules`,
# `groups`, or `identical_to_sequential` differing from the baseline —
# those are deterministic for a fixed seed, so any change means the
# compiler's output changed and the baseline must be consciously
# re-committed.  Warns (exit 0) when `elapsed_s` regressed by more than
# 25%, since absolute timings vary with CI hardware.
#
# `bench dataplane` (lookup engine): fails on `rules` drift, on
# `identical_to_linear` != true (the engine diverged from the
# linear-scan oracle), and on `speedup` < 5.0 — the engine must beat the
# linear scan by at least 5x at the headline (>= 5k rule) table, with
# enough margin under the real ~20x that CI jitter does not flake.
# Warns when `engine_pps` regressed by more than 25% vs the baseline.
# When the report carries the parallel RCU keys (`aggregate_pps`,
# `parallel_identical`, `single_core_pps`), additionally fails on
# `parallel_identical` != true (a worker domain diverged from the
# snapshot's linear scan — an RCU bug, not jitter), and enforces the
# scaling floor `aggregate_pps >= 1.5 * single_core_pps` only when the
# host has >= 2 cores (`nproc`); single-core hosts cannot scale, so
# there the floor is a warning.
#
# `bench fabric` (sharded multi-switch): fails on any
# `equiv_mismatches` (sharded delivery must equal the single big
# switch packet for packet), on any `mixed_version_packets` or
# `transit_misses` (the two-phase protocol must keep the consistency
# monitor at zero through the churn soak), on any `check_errors`, on
# `commits` or `probe_packets` of zero (a soak that never committed or
# never probed the mid-phase windows tested nothing), and on
# `edge4_largest_rules` >= `edge1_largest_rules` (sharding must shrink
# the per-edge tables).  The aggregate-throughput scaling floor
# `edge4_aggregate_pps >= edge1_aggregate_pps` is enforced only when
# the host has >= 4 cores (`nproc`); with fewer cores the per-edge
# readers serialize and the extra trunk hop makes the sharded walk
# strictly more work, so there the floor is a warning.  Warns when
# `edge1_aggregate_pps` regressed by more than 25% vs the baseline.
#
# `bench soak` (churn): fails on any `check_errors` or
# `equiv_divergences` (the soak must stay verified and equivalent to
# from-scratch recompiles), on any `incremental_errors` when the report
# carries the inline-check keys (every burst commit must verify), and on
# `reoptimizations` or `vnh_reclaimed` of zero — a soak that never
# re-optimized or never reclaimed a VNH did not exercise the lifecycle
# it exists to test.  When the report carries the group-churn keys
# (`group_migrations`), additionally fails on `group_migrations` = 0 —
# a soak in which no prefix ever migrated into an interned class ran
# with incremental group maintenance inert.  When the report carries
# the sanitizer keys
# (`sanitizer_races`, `sanitizer_overhead_x`), additionally fails on
# `sanitizer_races` != 0 — the sdx_race detector must stay silent on
# the unmutated runtime — and warns when the instrumented-vs-plain
# overhead exceeds 10x (Record mode serializes on the detector lock, so
# a blow-up means a hot path grew a tracked operation).  Warns when
# `updates_per_s` regressed by more than 25% vs the baseline.  Update
# counts are deliberately NOT compared: the committed baseline is a
# million-update run while CI soaks a smaller count.
set -eu

if [ $# -ne 2 ]; then
    echo "usage: $0 baseline.json candidate.json" >&2
    exit 2
fi
baseline=$1
candidate=$2

# The reports are written by bench/main.ml with one "key": value pair
# per line, so a sed scrape is exact on this schema.
field() {
    sed -n "s/^[[:space:]]*\"$2\":[[:space:]]*\([^,}]*\).*/\1/p" "$1" | head -n 1
}

require() {
    if [ -z "$2" ]; then
        echo "bench gate: field \"$1\" missing from report" >&2
        exit 1
    fi
}

fail=0

if grep -q '"identical_to_linear"' "$candidate"; then
    # --- dataplane schema ---
    for key in rules identical_to_linear; do
        base=$(field "$baseline" "$key")
        cand=$(field "$candidate" "$key")
        require "$key (baseline)" "$base"
        require "$key (candidate)" "$cand"
        if [ "$base" != "$cand" ]; then
            echo "bench gate: FAIL $key: baseline=$base candidate=$cand"
            fail=1
        else
            echo "bench gate: ok   $key=$cand"
        fi
    done

    if [ "$(field "$candidate" identical_to_linear)" != "true" ]; then
        echo "bench gate: FAIL engine lookup is not equivalent to the linear scan"
        fail=1
    fi

    speedup=$(field "$candidate" speedup)
    require "speedup" "$speedup"
    if ! awk -v s="$speedup" 'BEGIN { exit !(s >= 5.0) }'; then
        echo "bench gate: FAIL dataplane speedup ${speedup}x is below the 5x floor"
        fail=1
    else
        echo "bench gate: ok   speedup=${speedup}x (floor 5x)"
    fi

    base_pps=$(field "$baseline" engine_pps)
    cand_pps=$(field "$candidate" engine_pps)
    require "engine_pps (baseline)" "$base_pps"
    require "engine_pps (candidate)" "$cand_pps"
    awk -v base="$base_pps" -v cand="$cand_pps" 'BEGIN {
        if (base > 0 && cand < base * 0.75) {
            printf "bench gate: WARN engine_pps %.0f is %.0f%% below baseline %.0f\n",
                cand, (1 - cand / base) * 100, base
        } else {
            printf "bench gate: ok   engine_pps=%.0f (baseline %.0f)\n", cand, base
        }
    }'

    # --- parallel RCU keys (present once the report carries them) ---
    par_identical=$(field "$candidate" parallel_identical)
    if [ -n "$par_identical" ]; then
        if [ "$par_identical" != "true" ]; then
            echo "bench gate: FAIL a parallel worker diverged from the snapshot linear scan"
            fail=1
        else
            echo "bench gate: ok   parallel_identical=true"
        fi

        aggregate=$(field "$candidate" aggregate_pps)
        single=$(field "$candidate" single_core_pps)
        workers=$(field "$candidate" workers)
        require "aggregate_pps" "$aggregate"
        require "single_core_pps" "$single"
        cores=$( (nproc 2>/dev/null || echo 1) | head -n 1)
        if awk -v a="$aggregate" -v s="$single" 'BEGIN { exit !(s > 0 && a >= s * 1.5) }'; then
            echo "bench gate: ok   aggregate_pps=$aggregate ($workers workers, single_core_pps=$single)"
        elif [ "$cores" -ge 2 ]; then
            echo "bench gate: FAIL aggregate_pps=$aggregate is under 1.5x single_core_pps=$single on a ${cores}-core host"
            fail=1
        else
            echo "bench gate: WARN aggregate_pps=$aggregate under 1.5x single_core_pps=$single (single-core host; scaling floor not enforced)"
        fi
    fi

    exit "$fail"
fi

if grep -q '"mixed_version_packets"' "$candidate"; then
    # --- sharded fabric schema ---
    for key in equiv_mismatches mixed_version_packets transit_misses check_errors; do
        cand=$(field "$candidate" "$key")
        require "$key" "$cand"
        if [ "$cand" != "0" ]; then
            echo "bench gate: FAIL $key=$cand (must be 0)"
            fail=1
        else
            echo "bench gate: ok   $key=0"
        fi
    done

    for key in commits probe_packets; do
        cand=$(field "$candidate" "$key")
        require "$key" "$cand"
        if [ "$cand" = "0" ]; then
            echo "bench gate: FAIL $key=0 (soak never exercised the two-phase protocol)"
            fail=1
        else
            echo "bench gate: ok   $key=$cand"
        fi
    done

    e1_rules=$(field "$candidate" edge1_largest_rules)
    e4_rules=$(field "$candidate" edge4_largest_rules)
    require "edge1_largest_rules" "$e1_rules"
    require "edge4_largest_rules" "$e4_rules"
    if [ "$e4_rules" -ge "$e1_rules" ]; then
        echo "bench gate: FAIL edge4_largest_rules=$e4_rules does not shrink from edge1_largest_rules=$e1_rules"
        fail=1
    else
        echo "bench gate: ok   per-edge rules shrink ($e1_rules -> $e4_rules across 1 -> 4 edges)"
    fi

    e1_pps=$(field "$candidate" edge1_aggregate_pps)
    e4_pps=$(field "$candidate" edge4_aggregate_pps)
    require "edge1_aggregate_pps" "$e1_pps"
    require "edge4_aggregate_pps" "$e4_pps"
    cores=$( (nproc 2>/dev/null || echo 1) | head -n 1)
    if awk -v a="$e4_pps" -v b="$e1_pps" 'BEGIN { exit !(a >= b) }'; then
        echo "bench gate: ok   aggregate throughput non-decreasing ($e1_pps -> $e4_pps pkt/s)"
    elif [ "$cores" -ge 4 ]; then
        echo "bench gate: FAIL edge4_aggregate_pps=$e4_pps fell below edge1_aggregate_pps=$e1_pps on a ${cores}-core host"
        fail=1
    else
        echo "bench gate: WARN edge4_aggregate_pps=$e4_pps under edge1_aggregate_pps=$e1_pps (${cores}-core host; scaling floor not enforced)"
    fi

    base_pps=$(field "$baseline" edge1_aggregate_pps)
    if [ -n "$base_pps" ]; then
        awk -v base="$base_pps" -v cand="$e1_pps" 'BEGIN {
            if (base > 0 && cand < base * 0.75) {
                printf "bench gate: WARN edge1_aggregate_pps %.0f is %.0f%% below baseline %.0f\n",
                    cand, (1 - cand / base) * 100, base
            } else {
                printf "bench gate: ok   edge1_aggregate_pps=%.0f (baseline %.0f)\n", cand, base
            }
        }'
    fi

    exit "$fail"
fi

if grep -q '"updates_per_s"' "$candidate"; then
    # --- churn soak schema ---
    for key in check_errors equiv_divergences; do
        cand=$(field "$candidate" "$key")
        require "$key" "$cand"
        if [ "$cand" != "0" ]; then
            echo "bench gate: FAIL $key=$cand (must be 0)"
            fail=1
        else
            echo "bench gate: ok   $key=0"
        fi
    done

    incr_errors=$(field "$candidate" incremental_errors)
    if [ -n "$incr_errors" ]; then
        incr_checks=$(field "$candidate" incremental_checks)
        if [ "$incr_errors" != "0" ]; then
            echo "bench gate: FAIL incremental_errors=$incr_errors across $incr_checks inline check(s)"
            fail=1
        else
            echo "bench gate: ok   incremental_errors=0 ($incr_checks inline check(s))"
        fi
    fi

    for key in reoptimizations vnh_reclaimed; do
        cand=$(field "$candidate" "$key")
        require "$key" "$cand"
        if [ "$cand" = "0" ]; then
            echo "bench gate: FAIL $key=0 (soak did not exercise the VNH lifecycle)"
            fail=1
        else
            echo "bench gate: ok   $key=$cand"
        fi
    done

    # --- incremental group-maintenance keys (present once the report
    #     carries them): migrations must actually have happened, or the
    #     soak silently ran with class migration inert. ---
    migrations=$(field "$candidate" group_migrations)
    if [ -n "$migrations" ]; then
        if [ "$migrations" = "0" ]; then
            echo "bench gate: FAIL group_migrations=0 (incremental class migration never fired)"
            fail=1
        else
            echo "bench gate: ok   group_migrations=$migrations (minted $(field "$candidate" groups_minted), retired $(field "$candidate" groups_retired), tombstones $(field "$candidate" retired_tombstones))"
        fi
    fi

    san_races=$(field "$candidate" sanitizer_races)
    if [ -n "$san_races" ]; then
        if [ "$san_races" != "0" ]; then
            echo "bench gate: FAIL sanitizer_races=$san_races on the unmutated runtime"
            fail=1
        else
            echo "bench gate: ok   sanitizer_races=0"
        fi

        overhead=$(field "$candidate" sanitizer_overhead_x)
        require "sanitizer_overhead_x" "$overhead"
        awk -v x="$overhead" 'BEGIN {
            if (x > 10.0) {
                printf "bench gate: WARN sanitizer overhead %.2fx exceeds the 10x guideline\n", x
            } else {
                printf "bench gate: ok   sanitizer_overhead_x=%.2f (guideline <= 10x)\n", x
            }
        }'
    fi

    base_rate=$(field "$baseline" updates_per_s)
    cand_rate=$(field "$candidate" updates_per_s)
    require "updates_per_s (baseline)" "$base_rate"
    require "updates_per_s (candidate)" "$cand_rate"
    awk -v base="$base_rate" -v cand="$cand_rate" 'BEGIN {
        if (base > 0 && cand < base * 0.75) {
            printf "bench gate: WARN updates_per_s %.0f is %.0f%% below baseline %.0f\n",
                cand, (1 - cand / base) * 100, base
        } else {
            printf "bench gate: ok   updates_per_s=%.0f (baseline %.0f)\n", cand, base
        }
    }'

    exit "$fail"
fi

if grep -q '"identical_to_crossproduct"' "$candidate"; then
    # --- FDD compile-sweep schema ---
    if grep -q '"identical_to_crossproduct": false' "$candidate"; then
        echo "bench gate: FAIL a sweep point diverged from the cross-product oracle"
        grep -o '{"participants": [0-9]*, "prefixes": [0-9]*' "$candidate" | head -n 5
        fail=1
    else
        points=$(grep -c '"identical_to_crossproduct": true' "$candidate")
        echo "bench gate: ok   identical_to_crossproduct=true ($points occurrence(s))"
    fi

    # The summary block repeats the largest point's numbers after the
    # sweep array; field() reads the first line whose key starts the
    # line, which only the summary's dedicated lines do.
    speedup=$(field "$candidate" speedup)
    require "speedup" "$speedup"
    if ! awk -v s="$speedup" 'BEGIN { exit !(s >= 3.0) }'; then
        echo "bench gate: FAIL compose speedup ${speedup}x is below the 3x floor"
        fail=1
    else
        echo "bench gate: ok   speedup=${speedup}x (floor 3x, cross-product/FDD compose)"
    fi

    # --- group-phase keys (ISSUE 9; required on current candidates) ---
    for key in reachability_s group_s naive_group_s group_speedup; do
        require "$key" "$(field "$candidate" "$key")"
    done

    if grep -q '"identical_to_group_naive": false' "$candidate"; then
        echo "bench gate: FAIL a sweep point's interned grouping diverged from the naive oracle"
        fail=1
    else
        echo "bench gate: ok   identical_to_group_naive=true (all points)"
    fi

    # The >=10x grouping floor is stated at the full-scale 500x50k
    # headline; smaller-scale candidates (CI runs the default scale)
    # only have to stay within 2x of the naive pipeline — at a few
    # thousand prefixes both phases run in single-digit milliseconds,
    # so the ratio is timer noise, not a regression signal.
    gspeed=$(field "$candidate" group_speedup)
    px=$(field "$candidate" prefixes)
    require "prefixes" "$px"
    gfloor=0.5
    if [ "$px" -ge 50000 ]; then gfloor=10.0; fi
    if ! awk -v s="$gspeed" -v f="$gfloor" 'BEGIN { exit !(s >= f) }'; then
        echo "bench gate: FAIL group speedup ${gspeed}x is below the ${gfloor}x floor (headline ${px} prefixes)"
        fail=1
    else
        echo "bench gate: ok   group_speedup=${gspeed}x (floor ${gfloor}x at ${px} prefixes)"
    fi

    errors=$(field "$candidate" check_errors)
    if [ -n "$errors" ]; then
        if [ "$errors" != "0" ]; then
            echo "bench gate: FAIL check_errors=$errors (static verification)"
            fail=1
        else
            echo "bench gate: ok   check_errors=0"
        fi
    fi

    base_speedup=$(field "$baseline" speedup)
    if [ -n "$base_speedup" ]; then
        awk -v base="$base_speedup" -v cand="$speedup" 'BEGIN {
            if (base > 0 && cand < base * 0.25) {
                printf "bench gate: WARN speedup %.2fx is under a quarter of baseline %.2fx\n",
                    cand, base
            } else {
                printf "bench gate: ok   speedup=%.2fx (baseline %.2fx)\n", cand, base
            }
        }'
    fi

    exit "$fail"
fi

# --- compile schema (pre-FDD reports) ---
for key in rules groups identical_to_sequential; do
    base=$(field "$baseline" "$key")
    cand=$(field "$candidate" "$key")
    require "$key (baseline)" "$base"
    require "$key (candidate)" "$cand"
    if [ "$base" != "$cand" ]; then
        echo "bench gate: FAIL $key: baseline=$base candidate=$cand"
        fail=1
    else
        echo "bench gate: ok   $key=$cand"
    fi
done

if [ "$(field "$candidate" identical_to_sequential)" != "true" ]; then
    echo "bench gate: FAIL parallel compilation is not equivalent to sequential"
    fail=1
fi

base_s=$(field "$baseline" elapsed_s)
cand_s=$(field "$candidate" elapsed_s)
require "elapsed_s (baseline)" "$base_s"
require "elapsed_s (candidate)" "$cand_s"
awk -v base="$base_s" -v cand="$cand_s" 'BEGIN {
    if (base > 0 && cand > base * 1.25) {
        printf "bench gate: WARN elapsed_s %.6f is %.0f%% over baseline %.6f\n",
            cand, (cand / base - 1) * 100, base
    } else {
        printf "bench gate: ok   elapsed_s=%.6f (baseline %.6f)\n", cand, base
    }
}'

exit "$fail"
