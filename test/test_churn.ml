(* VNH lifecycle and churn survival: typed allocation, reclamation,
   transactional bursts that fall forward instead of crashing, the ARP
   drift detector, and a randomized soak that drives the runtime past
   both the VNH-pressure and priority-ceiling boundaries while asserting
   classifier equivalence with a from-scratch recompile. *)

open Sdx_net
open Sdx_core
open Sdx_ixp
module Check = Sdx_check.Check
module Responder = Sdx_arp.Responder

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let pp_errors r =
  Format.asprintf "%a" Check.pp_report
    { r with Check.findings = Check.errors r }

(* ------------------------------------------------------------------ *)
(* Vnh: typed allocation, free-list reuse, guards.                     *)

let test_vnh_alloc_release_reuse () =
  let v = Vnh.create ~pool:(Prefix.of_string "172.16.0.0/28") () in
  check_int "capacity excludes the network address" 15 (Vnh.capacity v);
  let ip1, mac1 = Vnh.fresh v in
  let ip2, _ = Vnh.fresh v in
  check_int "two live" 2 (Vnh.allocated v);
  check_bool "release succeeds" true (Vnh.release v ip1);
  check_int "one live after release" 1 (Vnh.allocated v);
  check_int "one reclaimed" 1 (Vnh.reclaimed_total v);
  check_int "peak unchanged by release" 2 (Vnh.peak_live v);
  (* The free-list is LIFO and an index keeps its identity. *)
  let ip1', mac1' = Vnh.fresh v in
  check_bool "released pair is reused" true
    (Ipv4.equal ip1 ip1' && Mac.equal mac1 mac1');
  check_bool "distinct from the other live VNH" false (Ipv4.equal ip1' ip2)

let test_vnh_release_guards () =
  let v = Vnh.create ~pool:(Prefix.of_string "172.16.0.0/28") () in
  let ip, _ = Vnh.fresh v in
  check_bool "double release rejected" true
    (Vnh.release v ip && not (Vnh.release v ip));
  check_bool "foreign address rejected" false
    (Vnh.release v (Ipv4.of_string "10.0.0.1"));
  check_bool "never-allocated index rejected" false
    (Vnh.release v (Prefix.host (Prefix.of_string "172.16.0.0/28") 9));
  check_int "guards reclaim nothing extra" 1 (Vnh.reclaimed_total v)

let test_vnh_typed_exhaustion () =
  let v = Vnh.create ~pool:(Prefix.of_string "172.16.0.0/30") () in
  check_int "three usable addresses" 3 (Vnh.capacity v);
  for _ = 1 to 3 do
    match Vnh.alloc v with
    | `Fresh _ -> ()
    | `Exhausted -> Alcotest.fail "exhausted before capacity"
  done;
  check_bool "alloc reports exhaustion" true (Vnh.alloc v = `Exhausted);
  check_bool "fresh raises on exhaustion" true
    (match Vnh.fresh v with
    | exception Failure _ -> true
    | _ -> false);
  check_bool "pressure saturates at 1" true (Vnh.pressure v >= 1.0);
  let ip = Prefix.host (Prefix.of_string "172.16.0.0/30") 2 in
  check_bool "release reopens the pool" true (Vnh.release v ip);
  check_bool "alloc succeeds again" true
    (match Vnh.alloc v with `Fresh _ -> true | `Exhausted -> false)

(* ------------------------------------------------------------------ *)
(* Responder.diff: the drift detector behind the arp check pass.       *)

let test_responder_diff () =
  let ip i = Ipv4.of_string (Printf.sprintf "172.16.0.%d" i) in
  let mac i = Mac.of_int (0x02_00_00_00_00_00 + i) in
  let r = Responder.create () in
  Responder.register r (ip 1) (mac 1);
  check_bool "agreement is empty" true
    (Responder.diff r ~expected:[ (ip 1, mac 1) ] = []);
  check_bool "missing binding reported" true
    (List.mem
       (Responder.Missing (ip 2, mac 2))
       (Responder.diff r ~expected:[ (ip 1, mac 1); (ip 2, mac 2) ]));
  Responder.register r (ip 1) (mac 9);
  check_bool "stale binding reported" true
    (List.mem
       (Responder.Stale (ip 1, mac 1, mac 9))
       (Responder.diff r ~expected:[ (ip 1, mac 1) ]));
  Responder.register r (ip 3) (mac 3);
  check_bool "orphaned binding reported" true
    (List.mem
       (Responder.Orphaned (ip 3, mac 3))
       (Responder.diff r ~expected:[ (ip 1, mac 1) ]))

let test_arp_pass_catches_drift () =
  let w = Workload.build (Rng.create ~seed:11) ~participants:8 ~prefixes:50 () in
  let runtime = Workload.runtime w in
  let report = Check.runtime runtime in
  check_bool
    (Format.asprintf "fresh runtime verifies clean: %s" (pp_errors report))
    false
    (Check.has_errors report);
  (* An orphaned answer — a retired VNH nobody unregistered — is an
     error finding, not a silent hazard. *)
  Responder.register (Runtime.arp runtime)
    (Ipv4.of_string "172.16.77.77")
    (Mac.of_int 0x02_00_00_77_77_77);
  let report = Check.runtime runtime in
  check_bool "orphaned binding is an error" true
    (List.exists
       (fun (f : Check.finding) -> f.Check.code = "orphaned-arp-binding")
       (Check.errors report));
  Responder.unregister (Runtime.arp runtime) (Ipv4.of_string "172.16.77.77");
  (* A VNH the classifier rewrites to but the responder cannot resolve
     is the opposite drift. *)
  (match Compile.active_groups (Runtime.compiled runtime) with
  | [] -> Alcotest.fail "workload compiled to no groups"
  | g :: _ -> Responder.unregister (Runtime.arp runtime) g.Compile.vnh);
  let report = Check.runtime runtime in
  check_bool "missing binding is an error" true
    (List.exists
       (fun (f : Check.finding) -> f.Check.code = "arp-binding-missing")
       (Check.errors report))

(* ------------------------------------------------------------------ *)
(* Transactional bursts: exhaustion falls forward, never raises.       *)

let test_burst_survives_exhausted_pool () =
  let rng = Rng.create ~seed:5 in
  let w = Workload.build rng ~participants:5 ~prefixes:20 () in
  let vnh_pool = Prefix.of_string "172.16.0.0/27" in
  let runtime = Runtime.create ~vnh_pool w.Workload.config in
  (* Drain whatever the base compile left so the next fast-path batch
     cannot reserve a single VNH. *)
  let drained = ref 0 in
  let rec drain () =
    match Vnh.alloc (Runtime.vnh runtime) with
    | `Fresh _ ->
        incr drained;
        drain ()
    | `Exhausted -> ()
  in
  drain ();
  check_bool "pool is drained" true (!drained > 0);
  let stats = Runtime.handle_burst runtime (Workload.burst rng w ~size:3) in
  check_int "burst was processed, not dropped" 3 (List.length stats);
  check_bool "fell forward into a full recompile" true
    (Runtime.reoptimize_count runtime >= 1);
  (* Roll-forward means the data plane reflects the post-burst RIB:
     equivalent to compiling the same state from scratch. *)
  let reference = Runtime.create (Runtime.config runtime) in
  check_bool "equivalent to a from-scratch recompile" true
    (Replay.forwarding_divergences runtime ~reference = []);
  let report = Check.runtime runtime in
  check_bool
    (Format.asprintf "state verifies clean after fallback: %s"
       (pp_errors report))
    false
    (Check.has_errors report);
  (* The failed batch is transactional: it must not have recorded any
     group churn before rolling forward. *)
  let churn = Runtime.churn runtime in
  check_int "failed batch minted nothing" 0 churn.Runtime.churn_groups_minted;
  check_int "failed batch migrated nothing" 0
    churn.Runtime.churn_prefixes_migrated

(* ------------------------------------------------------------------ *)
(* Interned grouping: class migration, retirement, and the naive
   oracle (ISSUE 9).                                                   *)

(* Withdrawing B's p3 route leaves p3 with exactly p4's signature (only
   C announces it, same candidate fingerprint), so the fast path must
   migrate p3 into p4's already-interned class: a VNH rebind with zero
   new rules. *)
let test_migration_rebind_without_rules () =
  let runtime = Fig1.make_runtime () in
  let gid p =
    (Option.get (Compile.group_of_prefix (Runtime.compiled runtime) p))
      .Compile.id
  in
  check_bool "p3 and p4 start in different classes" true
    (gid Fig1.p3 <> gid Fig1.p4);
  let stats = Runtime.withdraw runtime ~peer:Fig1.asn_b Fig1.p3 in
  check_bool "withdrawal moved the best path" true stats.Runtime.best_changed;
  check_int "migration installed no rules" 0 stats.Runtime.extra_rules;
  check_int "p3 joined p4's class" (gid Fig1.p4) (gid Fig1.p3);
  let churn = Runtime.churn runtime in
  check_int "one migration" 1 churn.Runtime.churn_prefixes_migrated;
  check_int "no group minted" 0 churn.Runtime.churn_groups_minted;
  check_int "no group retired" 0 churn.Runtime.churn_groups_retired;
  let report = Check.runtime runtime in
  check_bool
    (Format.asprintf "state verifies clean after migration: %s"
       (pp_errors report))
    false
    (Check.has_errors report)

(* A novel announcement mints a fast-path class; fully withdrawing it
   retires the class.  The tombstone must survive while the minting
   block's provenance still names it and vanish with the stack at the
   next re-optimization — while the cumulative churn totals persist. *)
let test_withdraw_storm_retires_and_compacts () =
  let runtime = Fig1.make_runtime () in
  let p6 = Fig1.pfx "20.0.6.0/24" in
  ignore (Runtime.announce runtime ~peer:Fig1.asn_b ~port:0 p6);
  let churn = Runtime.churn runtime in
  check_int "novel signature minted a class" 1 churn.Runtime.churn_groups_minted;
  ignore (Runtime.withdraw runtime ~peer:Fig1.asn_b p6);
  let churn = Runtime.churn runtime in
  check_int "full withdrawal retired the class" 1
    churn.Runtime.churn_groups_retired;
  check_bool "tombstone held while provenance references it" true
    (Runtime.retired_tombstone_count runtime >= 1);
  let report = Check.runtime runtime in
  check_bool
    (Format.asprintf "state verifies clean after retirement: %s"
       (pp_errors report))
    false
    (Check.has_errors report);
  ignore (Runtime.reoptimize runtime);
  check_int "re-optimization clears the tombstones" 0
    (Runtime.retired_tombstone_count runtime);
  let churn = Runtime.churn runtime in
  check_int "churn totals survive re-optimization" 1
    churn.Runtime.churn_groups_retired

(* Two classes that differ only in their origin-band bits — same
   via-clause membership, same default fingerprint (after the
   withdrawal), same FIRST originator — must stay distinct through the
   fast path.  A class table keyed on anything less than the full
   export vector (the pre-fix key used the first originator only)
   collides them, migrating q1 into q2's class even though only q2 is
   originated by B.  The compiler is driven directly (no [Runtime]):
   [Runtime.create] also announces a placeholder route per originator,
   which would hide the collision inside the fingerprint. *)
let test_secondary_originator_classes_stay_distinct () =
  let pfx = Prefix.of_string in
  let q1 = pfx "30.0.1.0/24" and q2 = pfx "30.0.2.0/24" in
  let asn = Sdx_bgp.Asn.of_int in
  let asn_a = asn 100
  and asn_b = asn 200
  and asn_c = asn 300
  and asn_d = asn 400 in
  let part asn octet ?originated () =
    Participant.make ~asn
      ~ports:
        [
          ( Mac.of_string (Printf.sprintf "0a:00:00:00:00:%02x" octet),
            Ipv4.of_string (Printf.sprintf "172.0.1.%d" octet) );
        ]
      ?originated ()
  in
  let config =
    Config.make
      [
        part asn_a 1 ~originated:[ q1; q2 ] ();
        part asn_b 2 ~originated:[ q2 ] ();
        part asn_c 3 ();
        part asn_d 4 ();
      ]
  in
  let far = asn 65001 in
  List.iter
    (fun (peer, prefix, as_path) ->
      ignore (Config.announce config ~peer ~port:0 ~as_path prefix))
    [
      (asn_c, q1, [ asn_c; far ]);
      (asn_c, q2, [ asn_c; far ]);
      (asn_d, q1, [ asn_d ]);
    ];
  let vnh = Vnh.create () in
  let compiled = Compile.compile config vnh in
  let gid p = (Option.get (Compile.group_of_prefix compiled p)).Compile.id in
  check_bool "q1 and q2 start in different classes" true (gid q1 <> gid q2);
  (* After the withdrawal q1's candidate set equals q2's, so everything
     except the origin band matches q2's interned class. *)
  ignore (Config.withdraw config ~peer:asn_d q1);
  (match Compile.compile_update_batch compiled config vnh [ q1 ] with
  | Error `Vnh_exhausted -> Alcotest.fail "VNH pool exhausted"
  | Ok batch ->
      check_int "novel signature minted a class" 1
        (List.length batch.Compile.batch_groups);
      check_int "nothing migrated" 0 batch.Compile.batch_migrated);
  check_bool "q1 stays out of q2's class" true (gid q1 <> gid q2);
  check_bool "q1's class holds exactly q1" true
    ((Option.get (Compile.group_of_prefix compiled q1)).Compile.prefixes
    = [ q1 ])

(* The interned export-vector pipeline must produce the same partition
   as the naive oracle (per-spec reachability sets + pairwise Fec
   partition), and the same classifier when compiled under either
   grouping, on randomly churned RIBs. *)
let prop_interned_matches_naive =
  QCheck.Test.make ~count:25
    ~name:"interned grouping = naive oracle on random churned RIBs"
    QCheck.(
      triple (int_range 1 10_000) (int_range 2 16) (int_range 5 120))
    (fun (seed, participants, prefixes) ->
      let rng = Rng.create ~seed in
      let w = Workload.build rng ~participants ~prefixes () in
      (* Churn the RIBs away from the freshly built state first. *)
      List.iter
        (fun u ->
          ignore (Sdx_bgp.Route_server.apply (Config.server w.Workload.config) u))
        (Workload.burst rng w ~size:(5 + Rng.int rng 20));
      let interned = Compile.compile w.Workload.config (Vnh.create ()) in
      let parts =
        List.map
          (fun (g : Compile.group) -> g.Compile.prefixes)
          (Compile.groups interned)
      in
      let naive_parts = Compile.group_partition_naive w.Workload.config in
      if parts <> naive_parts then
        QCheck.Test.fail_reportf
          "seed %d (%d participants, %d prefixes): interned partition (%d \
           cells) differs from the naive oracle (%d cells)"
          seed participants prefixes (List.length parts)
          (List.length naive_parts);
      let naive =
        Compile.compile ~grouping:`Naive w.Workload.config (Vnh.create ())
      in
      if Compile.classifier interned <> Compile.classifier naive then
        QCheck.Test.fail_reportf
          "seed %d: classifiers differ between `Interned and `Naive grouping"
          seed;
      true)

(* ------------------------------------------------------------------ *)
(* Soak: random churn across both lifecycle boundaries.                *)

(* A /26 pool (63 VNHs) over 60 prefixes crosses the 80% pressure
   threshold under churn while still fitting a from-scratch recompile;
   an extras ceiling a few hundred priorities above the floor (well
   under the global ceiling the lints assume) forces the
   priority-ceiling re-optimization too. *)
let soak_once ~seed ~updates =
  let rng = Rng.create ~seed in
  let w = Workload.build rng ~participants:8 ~prefixes:60 () in
  let vnh_pool = Prefix.of_string "172.16.0.0/26" in
  let extras_ceiling = Runtime.extras_floor + 400 in
  let runtime = Runtime.create ~vnh_pool ~extras_ceiling w.Workload.config in
  let config =
    {
      Replay.target_updates = updates;
      checkpoint_every = max 1 (updates / 4);
      fault_every = 10;
      storm_size = 20;
      train_length = 15;
      max_burst = 4;
      check_every = 1;
    }
  in
  let check rt = List.length (Check.errors (Check.runtime rt)) in
  let check_incremental rt =
    List.length (Check.errors (Check.runtime_incremental rt))
  in
  (Replay.soak ~config ~check ~check_incremental rng w runtime, runtime)

let prop_soak_survives =
  QCheck.Test.make ~count:5
    ~name:"random churn past VNH-pressure and ceiling boundaries stays clean"
    QCheck.(int_range 1 1000)
    (fun seed ->
      let r, _ = soak_once ~seed ~updates:1_500 in
      if r.Replay.soak_check_errors > 0 then
        QCheck.Test.fail_reportf "seed %d: %d sdx_check error(s) at checkpoints"
          seed r.Replay.soak_check_errors;
      if r.Replay.soak_equiv_divergences > 0 then
        QCheck.Test.fail_reportf
          "seed %d: %d divergence(s) from a from-scratch recompile" seed
          r.Replay.soak_equiv_divergences;
      if r.Replay.soak_incremental_errors > 0 then
        QCheck.Test.fail_reportf
          "seed %d: %d error(s) from inline incremental checks" seed
          r.Replay.soak_incremental_errors;
      r.Replay.soak_updates >= 1_500)

let test_soak_exercises_lifecycle () =
  let r, runtime = soak_once ~seed:42 ~updates:3_000 in
  check_int "no checkpoint errors" 0 r.Replay.soak_check_errors;
  check_int "no forwarding divergences" 0 r.Replay.soak_equiv_divergences;
  check_bool "inline checks ran on every burst" true
    (r.Replay.soak_incremental_checks >= r.Replay.soak_bursts);
  check_int "no inline incremental errors" 0 r.Replay.soak_incremental_errors;
  check_bool "VNHs were reclaimed" true (r.Replay.soak_vnh_reclaimed > 0);
  check_bool "the background stage ran" true
    (r.Replay.soak_reoptimizations >= 1);
  check_bool "faults were injected" true
    (r.Replay.soak_withdraw_storms + r.Replay.soak_session_flaps
     + r.Replay.soak_duplicate_trains + r.Replay.soak_same_prefix_trains
    > 0);
  check_bool "live VNHs stayed within the pool" true
    (r.Replay.soak_vnh_peak_live <= r.Replay.soak_vnh_capacity);
  check_bool "pool never grew past capacity" true
    (Vnh.allocated (Runtime.vnh runtime) <= Vnh.capacity (Runtime.vnh runtime))

let () =
  Alcotest.run "churn"
    [
      ( "vnh",
        [
          Alcotest.test_case "alloc/release/reuse" `Quick
            test_vnh_alloc_release_reuse;
          Alcotest.test_case "release guards" `Quick test_vnh_release_guards;
          Alcotest.test_case "typed exhaustion" `Quick
            test_vnh_typed_exhaustion;
        ] );
      ( "arp",
        [
          Alcotest.test_case "responder diff" `Quick test_responder_diff;
          Alcotest.test_case "check pass catches drift" `Quick
            test_arp_pass_catches_drift;
        ] );
      ( "burst",
        [
          Alcotest.test_case "exhausted pool falls forward" `Quick
            test_burst_survives_exhausted_pool;
        ] );
      ( "grouping",
        [
          Alcotest.test_case "single-prefix rebind migrates without rules"
            `Quick test_migration_rebind_without_rules;
          Alcotest.test_case "withdrawal retires and compaction caps tombstones"
            `Quick test_withdraw_storm_retires_and_compacts;
          Alcotest.test_case "secondary-originator classes stay distinct"
            `Quick test_secondary_originator_classes_stay_distinct;
          QCheck_alcotest.to_alcotest prop_interned_matches_naive;
        ] );
      ( "soak",
        [
          Alcotest.test_case "lifecycle is exercised" `Slow
            test_soak_exercises_lifecycle;
          QCheck_alcotest.to_alcotest prop_soak_survives;
        ] );
    ]
