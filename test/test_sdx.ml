(* Tests for the SDX core: FEC computation, VNH allocation, participant
   policies, configuration, the compiler (against the paper's Figure 1),
   the incremental fast path, and the runtime. *)

open Sdx_net
open Sdx_bgp
open Sdx_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let pfx = Prefix.of_string
let ip = Ipv4.of_string

(* ------------------------------------------------------------------ *)
(* Fec                                                                 *)

let test_fec_paper_example () =
  (* §4.2's three passes: pass-1 sets {p1,p2,p3} and {p1,p2,p3,p4};
     pass-2 defaults p1,p2,p4 -> C and p3 -> B; result {p1,p2},{p3},{p4}. *)
  let p1 = Fig1.p1 and p2 = Fig1.p2 and p3 = Fig1.p3 and p4 = Fig1.p4 in
  let sets =
    [ Prefix.Set.of_list [ p1; p2; p3 ]; Prefix.Set.of_list [ p1; p2; p3; p4 ] ]
  in
  let default_key p = if Prefix.equal p p3 then 1 else 0 in
  let groups = Fec.partition ~sets ~default_key in
  check_int "three groups" 3 (List.length groups);
  check_bool "p1 p2 together" true (List.mem [ p1; p2 ] groups);
  check_bool "p3 alone" true (List.mem [ p3 ] groups);
  check_bool "p4 alone" true (List.mem [ p4 ] groups);
  check_bool "valid" true (Fec.is_valid_partition ~sets ~default_key groups)

let test_fec_untouched_excluded () =
  let p1 = Fig1.p1 and p5 = Fig1.p5 in
  let sets = [ Prefix.Set.of_list [ p1 ] ] in
  let groups = Fec.partition ~sets ~default_key:(fun _ -> 0) in
  check_int "one group" 1 (List.length groups);
  check_bool "p5 not grouped" false (List.exists (List.mem p5) groups)

let test_fec_empty () =
  check_int "no sets no groups" 0
    (List.length (Fec.partition ~sets:[] ~default_key:(fun _ -> 0)));
  check_int "empty sets no groups" 0
    (Fec.group_count ~sets:[ Prefix.Set.empty ] ~default_key:(fun _ -> 0))

let test_fec_default_key_splits () =
  let p1 = Fig1.p1 and p2 = Fig1.p2 in
  let sets = [ Prefix.Set.of_list [ p1; p2 ] ] in
  let same = Fec.partition ~sets ~default_key:(fun _ -> 0) in
  check_int "same key merges" 1 (List.length same);
  let split =
    Fec.partition ~sets ~default_key:(fun p -> if Prefix.equal p p1 then 1 else 2)
  in
  check_int "distinct keys split" 2 (List.length split)

let gen_small_sets =
  let open QCheck2.Gen in
  let universe = Array.init 16 (fun i -> Prefix.make (Ipv4.of_int (i * 256)) 24) in
  let gen_set =
    let* members = list_size (int_range 0 10) (int_range 0 15) in
    return (Prefix.Set.of_list (List.map (fun i -> universe.(i)) members))
  in
  list_size (int_range 0 6) gen_set

let prop_fec_valid =
  QCheck2.Test.make ~name:"partition satisfies the MDS properties" ~count:500
    gen_small_sets
    (fun sets ->
      let default_key p = Ipv4.to_int (Prefix.network p) / 1024 mod 3 in
      Fec.is_valid_partition ~sets ~default_key (Fec.partition ~sets ~default_key))

let prop_fec_count_consistent =
  QCheck2.Test.make ~name:"group_count = |partition|" ~count:500 gen_small_sets
    (fun sets ->
      let default_key _ = 0 in
      Fec.group_count ~sets ~default_key
      = List.length (Fec.partition ~sets ~default_key))

(* ------------------------------------------------------------------ *)
(* Vnh                                                                 *)

let test_vnh_fresh_distinct () =
  let v = Vnh.create () in
  let a1, m1 = Vnh.fresh v in
  let a2, m2 = Vnh.fresh v in
  check_bool "distinct ips" false (Ipv4.equal a1 a2);
  check_bool "distinct macs" false (Mac.equal m1 m2);
  check_int "allocated" 2 (Vnh.allocated v);
  check_bool "in pool" true (Vnh.is_virtual v a1);
  check_bool "outside pool" false (Vnh.is_virtual v (ip "10.0.0.1"))

let test_vnh_reset_and_exhaustion () =
  let v = Vnh.create ~pool:(pfx "172.16.0.0/30") () in
  let a1, _ = Vnh.fresh v in
  ignore (Vnh.fresh v);
  ignore (Vnh.fresh v);
  check_bool "exhausted" true
    (try
       ignore (Vnh.fresh v);
       false
     with Failure _ -> true);
  Vnh.reset v;
  let a1', _ = Vnh.fresh v in
  check_bool "reset reuses" true (Ipv4.equal a1 a1')

(* ------------------------------------------------------------------ *)
(* Ppolicy                                                             *)

let test_ppolicy_builders () =
  let open Sdx_policy in
  let c = Ppolicy.fwd (Pred.dst_port 80) (Ppolicy.Peer Fig1.asn_b) in
  check_bool "no mods" true (Mods.is_identity c.mods);
  let r = Ppolicy.rewrite Pred.True (Mods.make ~dst_ip:(ip "1.2.3.4") ()) in
  check_bool "rewrite targets default" true (r.target = Ppolicy.Default);
  let pol = [ c; r; Ppolicy.fwd Pred.True (Ppolicy.Peer Fig1.asn_b) ] in
  check_int "clause count" 3 (Ppolicy.clause_count pol);
  check_int "distinct targets" 2 (List.length (Ppolicy.targets pol));
  check_bool "peers" true (Ppolicy.peers pol = [ Fig1.asn_b ])

(* ------------------------------------------------------------------ *)
(* Config                                                              *)

let test_config_ports () =
  let config = Fig1.make_config () in
  check_int "A port" 1 (Config.switch_port config Fig1.asn_a 0);
  check_int "B first port" 2 (Config.switch_port config Fig1.asn_b 0);
  check_int "B second port" 3 (Config.switch_port config Fig1.asn_b 1);
  check_int "port count" 5 (Config.port_count config);
  check_bool "ports of B" true (Config.switch_ports_of config Fig1.asn_b = [ 2; 3 ]);
  let owner, port = Config.owner_of_port config 3 in
  check_bool "owner of 3" true (Asn.equal owner.Participant.asn Fig1.asn_b);
  check_int "port index" 1 port.Participant.index;
  match Config.port_of_next_hop config (ip "172.0.0.3") with
  | Some (p, port, n) ->
      check_bool "next hop owner" true (Asn.equal p.Participant.asn Fig1.asn_b);
      check_int "next hop index" 1 port.Participant.index;
      check_int "next hop switch port" 3 n
  | None -> Alcotest.fail "port_of_next_hop failed"

let test_config_duplicates_rejected () =
  check_bool "duplicate asn" true
    (try
       ignore (Config.make [ Fig1.participant_a; Fig1.participant_a ]);
       false
     with Invalid_argument _ -> true);
  let clash =
    Participant.make ~asn:(Asn.of_int 999)
      ~ports:[ (Mac.of_string "ee:ee:ee:ee:ee:01", ip "172.0.0.1") ]
      ()
  in
  check_bool "duplicate port ip" true
    (try
       ignore (Config.make [ Fig1.participant_a; clash ]);
       false
     with Invalid_argument _ -> true)

let test_config_policy_validation () =
  let mk ?inbound ?outbound () =
    Participant.make ~asn:(Asn.of_int 999)
      ~ports:[ (Mac.of_string "0e:0e:0e:0e:0e:01", ip "172.7.0.1") ]
      ?inbound ?outbound ()
  in
  (* A policy-free anchor participant (Fig1's AS A would itself fail
     validation here: its policy references AS B and AS C). *)
  let anchor = Fig1.participant_c in
  let rejects p =
    try
      ignore (Config.make [ anchor; p ]);
      false
    with Invalid_argument _ -> true
  in
  (* Outbound to a peer that is not at the exchange. *)
  check_bool "unknown peer" true
    (rejects
       (mk ~outbound:[ Ppolicy.fwd Sdx_policy.Pred.True (Ppolicy.Peer (Asn.of_int 4242)) ] ()));
  (* Inbound may not forward to a peer. *)
  check_bool "inbound peer" true
    (rejects (mk ~inbound:[ Ppolicy.fwd Sdx_policy.Pred.True (Ppolicy.Peer Fig1.asn_a) ] ()));
  (* Own-port index out of range. *)
  check_bool "bad phys port" true
    (rejects (mk ~inbound:[ Ppolicy.fwd Sdx_policy.Pred.True (Ppolicy.Phys 7) ] ()));
  (* Steering to a portless (remote) host. *)
  let remote = Participant.make ~asn:(Asn.of_int 888) ~ports:[] () in
  check_bool "steer to remote" true
    (try
       ignore
         (Config.make
            [
              anchor;
              remote;
              mk ~outbound:[ Ppolicy.steer Sdx_policy.Pred.True (Asn.of_int 888) ] ();
            ]);
       false
     with Invalid_argument _ -> true);
  (* Valid policies still pass. *)
  check_bool "valid accepted" true
    (try
       ignore
         (Config.make
            [
              anchor;
              mk ~outbound:[ Ppolicy.fwd Sdx_policy.Pred.True (Ppolicy.Peer Fig1.asn_c) ] ();
            ]);
       true
     with Invalid_argument _ -> false)

let test_config_unknown_lookups () =
  let config = Fig1.make_config () in
  check_bool "participant_opt none" true
    (Config.participant_opt config (Asn.of_int 12345) = None);
  check_bool "owner_of_port raises" true
    (try
       ignore (Config.owner_of_port config 99);
       false
     with Not_found -> true)

(* ------------------------------------------------------------------ *)
(* Compile: the Figure 1 scenario                                      *)

let test_compile_figure1_groups () =
  let runtime = Fig1.make_runtime () in
  let compiled = Runtime.compiled runtime in
  let groups = Compile.groups compiled in
  check_int "three groups" 3 (List.length groups);
  let sets = List.map (fun (g : Compile.group) -> g.prefixes) groups in
  check_bool "p1 p2 together" true (List.mem [ Fig1.p1; Fig1.p2 ] sets);
  check_bool "p3 alone" true (List.mem [ Fig1.p3 ] sets);
  check_bool "p4 alone" true (List.mem [ Fig1.p4 ] sets);
  check_bool "p5 ungrouped" true (Compile.group_of_prefix compiled Fig1.p5 = None);
  (* Distinct VNH/VMAC per group, registered in ARP. *)
  let arp = Compile.arp compiled in
  List.iter
    (fun (g : Compile.group) ->
      match Sdx_arp.Responder.query arp g.vnh with
      | Some m -> check_bool "arp binds vnh to vmac" true (Mac.equal m g.vmac)
      | None -> Alcotest.fail "missing ARP binding")
    groups;
  check_int "distinct vnhs" 3
    (List.length
       (List.sort_uniq Ipv4.compare (List.map (fun (g : Compile.group) -> g.vnh) groups)))

let test_compile_figure1_announcements () =
  let runtime = Fig1.make_runtime () in
  let compiled = Runtime.compiled runtime in
  let config = Runtime.config runtime in
  (* Grouped prefixes are re-advertised with their VNH... *)
  (match Runtime.announcement runtime ~receiver:Fig1.asn_a Fig1.p1 with
  | Some r ->
      check_bool "p1 via vnh" true
        (match Compile.group_of_prefix compiled Fig1.p1 with
        | Some g -> Ipv4.equal r.next_hop g.vnh
        | None -> false)
  | None -> Alcotest.fail "no announcement for p1");
  (* ...while default-only prefixes keep the real next hop. *)
  (match Runtime.announcement runtime ~receiver:Fig1.asn_a Fig1.p5 with
  | Some r -> check_bool "p5 untouched" true (Ipv4.equal r.next_hop (ip "172.0.0.5"))
  | None -> Alcotest.fail "no announcement for p5");
  (* B gets no announcement for p5?  It does: D exports to everyone. *)
  check_bool "b sees p5" true
    (Option.is_some (Compile.announcement compiled config ~receiver:Fig1.asn_b Fig1.p5))

let expect_delivery runtime ~sender ~src ~dst ~dst_port expected =
  match
    Fig1.fabric_packet runtime ~sender ~src_ip:src ~dst_ip:dst ~dst_port ()
  with
  | None -> Alcotest.fail "no route for crafted packet"
  | Some pkt -> (
      match (Fig1.deliveries runtime pkt, expected) with
      | [ (got_asn, got_port) ], Some (want_asn, want_port) ->
          check_bool "receiver" true (Asn.equal got_asn want_asn);
          check_int "receiver port" want_port got_port
      | [], None -> ()
      | got, _ ->
          Alcotest.failf "unexpected deliveries (%d)" (List.length got))

let test_compile_figure1_forwarding () =
  let runtime = Fig1.make_runtime () in
  let a = Fig1.asn_a in
  (* Web traffic to p1 diverts to B, split across B's ports by source. *)
  expect_delivery runtime ~sender:a ~src:"10.0.0.1" ~dst:"20.0.1.9" ~dst_port:80
    (Some (Fig1.asn_b, 0));
  expect_delivery runtime ~sender:a ~src:"192.168.0.1" ~dst:"20.0.1.9"
    ~dst_port:80
    (Some (Fig1.asn_b, 1));
  (* HTTPS to p4 diverts to C. *)
  expect_delivery runtime ~sender:a ~src:"10.0.0.1" ~dst:"20.0.4.9" ~dst_port:443
    (Some (Fig1.asn_c, 0));
  (* B exports no route for p4, so web traffic to p4 follows default (C). *)
  expect_delivery runtime ~sender:a ~src:"10.0.0.1" ~dst:"20.0.4.9" ~dst_port:80
    (Some (Fig1.asn_c, 0));
  (* Non-web, non-https traffic to p1 follows the default to C. *)
  expect_delivery runtime ~sender:a ~src:"10.0.0.1" ~dst:"20.0.1.9" ~dst_port:9999
    (Some (Fig1.asn_c, 0));
  (* p5 has no group: default forwarding to D via the real MAC. *)
  expect_delivery runtime ~sender:a ~src:"10.0.0.1" ~dst:"20.0.5.9" ~dst_port:9999
    (Some (Fig1.asn_d, 0))

let test_compile_rule_shape_invariants () =
  let runtime = Fig1.make_runtime () in
  let classifier = Runtime.classifier runtime in
  let rules = List.length classifier in
  check_bool "has rules" true (rules > 5);
  (* Every non-final forwarding rule is pinned to an in-port or a
     destination MAC, and every action atom relocates the packet. *)
  List.iteri
    (fun i (r : Sdx_policy.Classifier.rule) ->
      if i < rules - 1 then begin
        check_bool "pinned" true
          (Option.is_some r.pattern.Sdx_policy.Pattern.port
          || Option.is_some r.pattern.Sdx_policy.Pattern.dst_mac);
        List.iter
          (fun (m : Sdx_policy.Mods.t) ->
            check_bool "action relocates" true (Option.is_some m.port))
          r.action
      end
      else check_bool "final rule drops" true (r.action = []))
    classifier

let test_compile_stats () =
  let runtime = Fig1.make_runtime () in
  let stats = Compile.stats (Runtime.compiled runtime) in
  check_int "groups in stats" 3 stats.group_count;
  check_int "rule count matches" stats.rule_count
    (Sdx_policy.Classifier.rule_count (Runtime.classifier runtime));
  check_bool "memoization fired" true (stats.memo_hits > 0);
  check_bool "timed" true (stats.elapsed_s >= 0.0)

(* Naive (literal Pyretic composition) and optimized compilation agree on
   every tagged packet. *)
let test_naive_optimized_equivalent () =
  let config = Fig1.make_config () in
  let opt = Runtime.create ~optimized:true config in
  let naive = Runtime.create ~optimized:false config in
  let copt = Runtime.classifier opt and cnaive = Runtime.classifier naive in
  let dsts =
    [ "20.0.1.9"; "20.0.2.9"; "20.0.3.9"; "20.0.4.9"; "20.0.5.9" ]
  in
  let srcs = [ "10.0.0.1"; "200.0.0.1" ] in
  let ports = [ 80; 443; 22 ] in
  let senders = [ Fig1.asn_a; Fig1.asn_b; Fig1.asn_c; Fig1.asn_d ] in
  List.iter
    (fun sender ->
      List.iter
        (fun dst ->
          List.iter
            (fun src ->
              List.iter
                (fun dst_port ->
                  match
                    Fig1.fabric_packet opt ~sender ~src_ip:src ~dst_ip:dst
                      ~dst_port ()
                  with
                  | None -> ()
                  | Some pkt ->
                      check_bool "naive = optimized" true
                        (Sdx_policy.Classifier.eval copt pkt
                        = Sdx_policy.Classifier.eval cnaive pkt))
                ports)
            srcs)
        dsts)
    senders

let test_memoization_transparent () =
  (* The sub-compilation cache changes nothing but the work done. *)
  let config = Fig1.make_config () in
  let with_memo =
    Compile.compile ~memoize:true config (Vnh.create ())
  in
  let without =
    Compile.compile ~memoize:false config (Vnh.create ())
  in
  check_bool "identical classifiers" true
    (Compile.classifier with_memo = Compile.classifier without);
  check_bool "cache fired" true ((Compile.stats with_memo).memo_hits > 0);
  check_int "no hits without cache" 0 (Compile.stats without).memo_hits

(* The in-switch two-table variant of Figure 2: untagged ingress through
   (tagging table, policy table) behaves exactly like router-tagged
   ingress through the policy table alone. *)
let test_in_switch_tagging_equivalent () =
  let runtime = Fig1.make_runtime () in
  let config = Runtime.config runtime in
  let compiled = Runtime.compiled runtime in
  let tagging = Compile.in_switch_tagging_table compiled config in
  check_bool "one rule per announced prefix" true
    (Sdx_policy.Classifier.rule_count tagging
    >= Route_server.prefix_count (Config.server config));
  let sw = Sdx_openflow.Switch.create ~tables:2 () in
  Sdx_openflow.Switch.install_classifier sw ~table:0 tagging;
  Sdx_openflow.Switch.install_classifier sw ~table:1 (Runtime.classifier runtime);
  List.iter
    (fun (src, dst, dst_port) ->
      (* Router-tagged packet through the single-table pipeline... *)
      let tagged =
        Fig1.fabric_packet runtime ~sender:Fig1.asn_a ~src_ip:src ~dst_ip:dst
          ~dst_port ()
      in
      match tagged with
      | None -> ()
      | Some pkt ->
          let single =
            Sdx_policy.Classifier.eval (Runtime.classifier runtime) pkt
          in
          (* ...vs the raw, untagged packet through the two tables. *)
          let raw = { pkt with dst_mac = Mac.zero } in
          let two_table = Sdx_openflow.Switch.process sw raw in
          check_bool
            (Printf.sprintf "two-table = router-tagged for %s:%d" dst dst_port)
            true (two_table = single))
    [
      ("10.0.0.1", "20.0.1.9", 80);
      ("192.168.0.1", "20.0.1.9", 80);
      ("10.0.0.1", "20.0.4.9", 443);
      ("10.0.0.1", "20.0.4.9", 80);
      ("10.0.0.1", "20.0.1.9", 9999);
      ("10.0.0.1", "20.0.5.9", 9999);
      ("10.0.0.1", "20.0.3.9", 22);
    ]

(* ------------------------------------------------------------------ *)
(* Incremental fast path                                               *)

let test_incremental_withdraw_stops_diversion () =
  let runtime = Fig1.make_runtime () in
  let before =
    Option.get (Runtime.announcement runtime ~receiver:Fig1.asn_a Fig1.p1)
  in
  (* Withdraw B's route for p1: A's web traffic must stop diverting. *)
  let stats = Runtime.withdraw runtime ~peer:Fig1.asn_b Fig1.p1 in
  check_bool "best unchanged but feasibility changed" true stats.best_changed;
  (* p1 leaves its class (B's clause no longer covers it).  Whether that
     takes fresh rules depends on where it lands: migrating into an
     already-compiled class needs none, so assert the rebind itself —
     the re-advertised VNH changed — not a rule install. *)
  let after =
    Option.get (Runtime.announcement runtime ~receiver:Fig1.asn_a Fig1.p1)
  in
  check_bool "rebound to a different class" false
    (Ipv4.equal before.Route.next_hop after.Route.next_hop);
  expect_delivery runtime ~sender:Fig1.asn_a ~src:"10.0.0.1" ~dst:"20.0.1.9"
    ~dst_port:80
    (Some (Fig1.asn_c, 0))

let test_incremental_best_shift () =
  let runtime = Fig1.make_runtime () in
  (* Withdraw C's route for p1: the default shifts to B. *)
  ignore (Runtime.withdraw runtime ~peer:Fig1.asn_c Fig1.p1);
  expect_delivery runtime ~sender:Fig1.asn_a ~src:"10.0.0.1" ~dst:"20.0.1.9"
    ~dst_port:9999
    (Some (Fig1.asn_b, 0));
  (* Diversion of web traffic to B still applies (B still exports p1). *)
  expect_delivery runtime ~sender:Fig1.asn_a ~src:"10.0.0.1" ~dst:"20.0.1.9"
    ~dst_port:80
    (Some (Fig1.asn_b, 0))

let test_incremental_new_vnh () =
  let runtime = Fig1.make_runtime () in
  let before =
    Option.get (Runtime.announcement runtime ~receiver:Fig1.asn_a Fig1.p1)
  in
  ignore (Runtime.withdraw runtime ~peer:Fig1.asn_c Fig1.p1);
  let after =
    Option.get (Runtime.announcement runtime ~receiver:Fig1.asn_a Fig1.p1)
  in
  check_bool "fresh vnh assigned" false
    (Ipv4.equal before.Route.next_hop after.Route.next_hop);
  (* The fresh VNH resolves in ARP. *)
  check_bool "fresh vnh resolves" true
    (Option.is_some
       (Sdx_arp.Responder.query (Runtime.arp runtime) after.Route.next_hop))

let test_incremental_noop_update () =
  let runtime = Fig1.make_runtime () in
  (* Re-announcing an identical route changes no best path. *)
  let route =
    Route.make ~prefix:Fig1.p5 ~next_hop:(ip "172.0.0.5")
      ~as_path:[ Fig1.asn_d; Asn.of_int 65001 ]
      ~learned_from:Fig1.asn_d ()
  in
  let stats = Runtime.handle_update runtime (Update.announce route) in
  check_bool "no best change" false stats.best_changed;
  check_int "no extra rules" 0 (Runtime.extra_rule_count runtime)

let test_reoptimize_clears_extras () =
  let runtime = Fig1.make_runtime () in
  ignore (Runtime.withdraw runtime ~peer:Fig1.asn_c Fig1.p1);
  check_bool "extras present" true (Runtime.extra_rule_count runtime > 0);
  let stats = Runtime.reoptimize runtime in
  check_int "extras cleared" 0 (Runtime.extra_rule_count runtime);
  check_bool "recompiled" true (stats.rule_count > 0);
  (* Behavior after re-optimization matches the fast-path behavior. *)
  expect_delivery runtime ~sender:Fig1.asn_a ~src:"10.0.0.1" ~dst:"20.0.1.9"
    ~dst_port:9999
    (Some (Fig1.asn_b, 0))

let test_set_policies_in_place () =
  let runtime = Fig1.make_runtime () in
  (* AS A starts with the Figure 1 policy: web to p1 diverts to B. *)
  expect_delivery runtime ~sender:Fig1.asn_a ~src:"10.0.0.1" ~dst:"20.0.1.9"
    ~dst_port:80
    (Some (Fig1.asn_b, 0));
  (* A replaces its application: now HTTPS diverts to B and web follows
     BGP.  BGP state must be untouched. *)
  let stats =
    Runtime.set_policies runtime Fig1.asn_a ~inbound:[]
      ~outbound:[ Ppolicy.fwd (Sdx_policy.Pred.dst_port 443) (Ppolicy.Peer Fig1.asn_b) ]
  in
  check_bool "recompiled" true (stats.rule_count > 0);
  expect_delivery runtime ~sender:Fig1.asn_a ~src:"10.0.0.1" ~dst:"20.0.1.9"
    ~dst_port:80
    (Some (Fig1.asn_c, 0));
  expect_delivery runtime ~sender:Fig1.asn_a ~src:"10.0.0.1" ~dst:"20.0.1.9"
    ~dst_port:443
    (Some (Fig1.asn_b, 0));
  (* Routes survived the policy change. *)
  check_int "prefixes intact" 5
    (Route_server.prefix_count (Config.server (Runtime.config runtime)));
  (* Invalid replacement policies are rejected. *)
  check_bool "validation applies" true
    (try
       ignore
         (Runtime.set_policies runtime Fig1.asn_a ~inbound:[]
            ~outbound:
              [ Ppolicy.fwd Sdx_policy.Pred.True (Ppolicy.Peer (Asn.of_int 9999)) ]);
       false
     with Invalid_argument _ -> true)

let test_burst_accumulates () =
  let runtime = Fig1.make_runtime () in
  let updates =
    [
      Update.withdraw ~peer:Fig1.asn_c Fig1.p1;
      Update.withdraw ~peer:Fig1.asn_c Fig1.p2;
    ]
  in
  let stats = Runtime.handle_burst runtime updates in
  check_int "two handled" 2 (List.length stats);
  check_bool "both changed best" true
    (List.for_all (fun (s : Runtime.update_stats) -> s.best_changed) stats);
  check_bool "extras from both" true
    (Runtime.extra_rule_count runtime
    >= List.fold_left (fun n (s : Runtime.update_stats) -> n + s.extra_rules) 0 stats)

(* ------------------------------------------------------------------ *)
(* Apps: the §2 application builders                                   *)

let test_apps_peering_equivalent () =
  (* The builder produces A's Figure 1 policy clause-for-clause. *)
  let built =
    Apps.application_specific_peering ~ports:[ 80 ] ~via:Fig1.asn_b ()
    @ Apps.application_specific_peering ~ports:[ 443 ] ~via:Fig1.asn_c ()
  in
  let a = { Fig1.participant_a with outbound = built } in
  let config =
    Config.make [ a; Fig1.participant_b; Fig1.participant_c; Fig1.participant_d ]
  in
  Fig1.announce_routes config;
  let runtime = Runtime.create config in
  expect_delivery runtime ~sender:Fig1.asn_a ~src:"10.0.0.1" ~dst:"20.0.1.9"
    ~dst_port:80
    (Some (Fig1.asn_b, 0));
  expect_delivery runtime ~sender:Fig1.asn_a ~src:"10.0.0.1" ~dst:"20.0.4.9"
    ~dst_port:443
    (Some (Fig1.asn_c, 0))

let test_apps_inbound_split () =
  let built =
    Apps.inbound_split_by_source
      [ (pfx "0.0.0.0/1", 0); (pfx "128.0.0.0/1", 1) ]
  in
  let b = { Fig1.participant_b with inbound = built } in
  let config =
    Config.make [ Fig1.participant_a; b; Fig1.participant_c; Fig1.participant_d ]
  in
  Fig1.announce_routes config;
  let runtime = Runtime.create config in
  expect_delivery runtime ~sender:Fig1.asn_a ~src:"192.168.0.1" ~dst:"20.0.1.9"
    ~dst_port:80
    (Some (Fig1.asn_b, 1))

let test_apps_load_balancer_shape () =
  let pol =
    Apps.wide_area_load_balancer ~service:(ip "74.125.1.1")
      ~default_instance:(ip "184.72.0.97")
      ~pinned:[ (Prefix.make (ip "204.57.0.67") 32, ip "184.72.128.9") ]
  in
  check_int "pinned + default" 2 (List.length pol);
  check_bool "all default-target rewrites" true
    (List.for_all (fun (c : Ppolicy.clause) -> c.target = Ppolicy.Default) pol);
  (* The catch-all clause comes last so pinned clients win. *)
  check_bool "catch-all last" true
    ((List.nth pol 1).Ppolicy.mods.Sdx_policy.Mods.dst_ip = Some (ip "184.72.0.97"))

let test_apps_firewall () =
  let a =
    {
      Fig1.participant_a with
      outbound = Apps.firewall [ Sdx_policy.Pred.dst_port 23 ];
    }
  in
  let config =
    Config.make [ a; Fig1.participant_b; Fig1.participant_c; Fig1.participant_d ]
  in
  Fig1.announce_routes config;
  let runtime = Runtime.create config in
  (* Telnet is blackholed; everything else follows BGP. *)
  expect_delivery runtime ~sender:Fig1.asn_a ~src:"10.0.0.1" ~dst:"20.0.1.9"
    ~dst_port:23 None;
  expect_delivery runtime ~sender:Fig1.asn_a ~src:"10.0.0.1" ~dst:"20.0.1.9"
    ~dst_port:80
    (Some (Fig1.asn_c, 0))

let test_apps_steer_by_as_path () =
  let config = Fig1.make_config () in
  (* In the Fig1 world, B's announcements end at AS 65002 for p1/p2. *)
  let pol =
    Apps.steer_by_as_path (Config.server config) ~receiver:Fig1.asn_a
      ~regex:".*65002$" ~mbox:Fig1.asn_d
  in
  check_int "one steering clause" 1 (List.length pol);
  check_bool "redirect target" true
    ((List.hd pol).Ppolicy.target = Ppolicy.Redirect Fig1.asn_d)

(* ------------------------------------------------------------------ *)
(* Policy parser                                                       *)

let parse_ok s =
  match Policy_parser.parse s with
  | Ok p -> p
  | Error e -> Alcotest.failf "unexpected parse error: %a" Policy_parser.pp_error e

let parse_err s =
  match Policy_parser.parse s with
  | Ok _ -> Alcotest.failf "expected a parse error for %S" s
  | Error e -> e

let test_parser_paper_examples () =
  (* AS A's application-specific peering (§3.1). *)
  let p = parse_ok "match(dstport=80) >> fwd(AS200) + match(dstport=443) >> fwd(AS300)" in
  check_int "two clauses" 2 (List.length p);
  check_bool "first to AS200" true
    ((List.hd p).Ppolicy.target = Ppolicy.Peer (Asn.of_int 200));
  (* AS B's inbound traffic engineering. *)
  let p =
    parse_ok
      "match(srcip=0.0.0.0/1) >> fwd(port 0) + match(srcip=128.0.0.0/1) >> \
       fwd(port 1)"
  in
  check_bool "port targets" true
    (List.map (fun (c : Ppolicy.clause) -> c.target) p
    = [ Ppolicy.Phys 0; Ppolicy.Phys 1 ]);
  (* Wide-area load balancing rewrite. *)
  let p =
    parse_ok
      "match(dstip=74.125.1.1 && srcip=96.25.160.0/24) >> \
       mod(dstip=74.125.224.161) >> default"
  in
  check_bool "default target" true ((List.hd p).Ppolicy.target = Ppolicy.Default);
  check_bool "rewrite captured" true
    ((List.hd p).Ppolicy.mods.Sdx_policy.Mods.dst_ip
    = Some (ip "74.125.224.161"));
  (* Middlebox steering. *)
  let p = parse_ok "match(srcip=208.65.152.0/22) >> steer(AS64512)" in
  check_bool "steer target" true
    ((List.hd p).Ppolicy.target = Ppolicy.Redirect (Asn.of_int 64512))

let test_parser_pred_semantics () =
  (* Parsed predicates evaluate like hand-built ones. *)
  let pred =
    match Policy_parser.parse_pred "dstport=80 || (dstport=443 && !srcip=10.0.0.0/8)" with
    | Ok p -> p
    | Error e -> Alcotest.failf "parse_pred: %a" Policy_parser.pp_error e
  in
  let pkt ~src ~dport =
    Sdx_net.Packet.make ~src_ip:(ip src) ~dst_port:dport ()
  in
  check_bool "web matches" true (Sdx_policy.Pred.eval pred (pkt ~src:"10.1.1.1" ~dport:80));
  check_bool "https from outside" true
    (Sdx_policy.Pred.eval pred (pkt ~src:"99.1.1.1" ~dport:443));
  check_bool "https from inside excluded" false
    (Sdx_policy.Pred.eval pred (pkt ~src:"10.1.1.1" ~dport:443));
  check_bool "other dropped" false (Sdx_policy.Pred.eval pred (pkt ~src:"9.9.9.9" ~dport:22))

let test_parser_whole_pipeline () =
  (* A parsed policy compiles and forwards identically to the hand-built
     Figure 1 policy. *)
  let outbound =
    parse_ok "match(dstport=80) >> fwd(AS200) + match(dstport=443) >> fwd(AS300)"
  in
  let a = { Fig1.participant_a with outbound } in
  let config =
    Config.make [ a; Fig1.participant_b; Fig1.participant_c; Fig1.participant_d ]
  in
  Fig1.announce_routes config;
  let runtime = Runtime.create config in
  expect_delivery runtime ~sender:Fig1.asn_a ~src:"10.0.0.1" ~dst:"20.0.1.9"
    ~dst_port:80
    (Some (Fig1.asn_b, 0))

let test_parser_errors () =
  let cases =
    [
      "match(dstport=80)";  (* missing action *)
      "match(dstport=80) >> fwd(AS200) extra";
      "match(nosuchfield=1) >> drop";
      "match(dstport=80 >> drop";
      "mod(dstip=1.2.3.4) >> mod(srcip=4.3.2.1) >> drop";  (* two mods *)
      "match(srcip=999.0.0.1) >> drop";
      "fwd()";
      "match(dstport=80) >> fwd(port x)";
    ]
  in
  List.iter
    (fun s ->
      let e = parse_err s in
      check_bool "position within input" true (e.position <= String.length s))
    cases

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_parser_error_positions () =
  (* Errors carry 1-based line/column pointing at the offending token. *)
  let e = parse_err "match(dstport=80) >> fwd(AS200) extra" in
  check_int "line" 1 e.Policy_parser.line;
  check_int "column" 33 e.Policy_parser.column;
  let e = parse_err "match(dstport=80) >>\n  fwd(nonsense=)" in
  check_int "second line" 2 e.Policy_parser.line;
  check_bool "column into line 2" true (e.Policy_parser.column >= 3);
  check_bool "message names the problem" true
    (contains_sub (Format.asprintf "%a" Policy_parser.pp_error e) "line 2")

let test_parser_lint_references () =
  let known_asns = List.map Asn.of_int [ 100; 200; 300 ] in
  let checked = Policy_parser.parse_checked ~known_asns ~port_count:2 in
  (* References inside the exchange parse fine. *)
  (match checked "match(dstport=80) >> fwd(AS200) + match(srcip=0.0.0.0/1) >> fwd(port 1)" with
  | Ok p -> check_int "both clauses" 2 (List.length p)
  | Error e -> Alcotest.failf "lint rejected a valid policy: %a" Policy_parser.pp_error e);
  (* An AS outside the exchange is rejected, at the reference. *)
  (match checked "match(dstport=80) >> fwd(AS999)" with
  | Ok _ -> Alcotest.fail "unknown AS accepted"
  | Error e ->
      check_bool "message names the AS" true
        (contains_sub e.Policy_parser.message "AS999");
      check_int "points at the AS token" 26 e.Policy_parser.column);
  (match checked "match(srcip=10.0.0.0/8) >> steer(AS400)" with
  | Ok _ -> Alcotest.fail "unknown steer target accepted"
  | Error e ->
      check_bool "steer lint message" true
        (contains_sub e.Policy_parser.message "AS400"));
  (* A port index beyond the participant's own ports is rejected. *)
  (match checked "match(srcip=0.0.0.0/1) >> fwd(port 2)" with
  | Ok _ -> Alcotest.fail "out-of-range port accepted"
  | Error e ->
      check_bool "port lint message" true
        (contains_sub e.Policy_parser.message "out of range"));
  (* Without lint context the same text still parses. *)
  match Policy_parser.parse "match(dstport=80) >> fwd(AS999)" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "unchecked parse failed: %a" Policy_parser.pp_error e

(* Print/parse roundtrip over randomly generated policies: clause
   structure is preserved exactly, predicates semantically. *)
let gen_parseable_policy =
  let open QCheck2.Gen in
  let gen_pred =
    let atom =
      oneof
        [
          map Sdx_policy.Pred.dst_port (int_range 1 9999);
          map Sdx_policy.Pred.src_port (int_range 1 9999);
          map
            (fun x -> Sdx_policy.Pred.src_ip (Prefix.make (Ipv4.of_int (x lsl 24)) 8))
            (int_range 1 100);
          map
            (fun x ->
              Sdx_policy.Pred.dst_ip (Prefix.make (Ipv4.of_int (x lsl 20)) 12))
            (int_range 1 100);
          map Sdx_policy.Pred.proto (oneofl [ 6; 17 ]);
          return Sdx_policy.Pred.True;
        ]
    in
    sized_size (int_range 0 3) @@ QCheck2.Gen.fix (fun self n ->
        if n = 0 then atom
        else
          oneof
            [
              atom;
              map2 (fun a b -> Sdx_policy.Pred.And (a, b)) (self (n / 2)) (self (n / 2));
              map2 (fun a b -> Sdx_policy.Pred.Or (a, b)) (self (n / 2)) (self (n / 2));
              map (fun a -> Sdx_policy.Pred.Not a) (self (n - 1));
            ])
  in
  let gen_mods =
    let opt g = QCheck2.Gen.frequency [ (2, return None); (1, map Option.some g) ] in
    let* dst_ip = opt (map (fun x -> Ipv4.of_int (x lsl 8)) (int_range 1 1000)) in
    let* dst_port = opt (int_range 1 9999) in
    return (Sdx_policy.Mods.make ?dst_ip ?dst_port ())
  in
  let gen_target =
    oneof
      [
        map (fun n -> Ppolicy.Peer (Asn.of_int n)) (int_range 1 70000);
        map (fun k -> Ppolicy.Phys k) (int_range 0 3);
        map (fun n -> Ppolicy.Redirect (Asn.of_int n)) (int_range 1 70000);
        return Ppolicy.Default;
        return Ppolicy.Drop;
      ]
  in
  let gen_clause =
    let* pred = gen_pred in
    let* mods = gen_mods in
    let* target = gen_target in
    return (Ppolicy.clause ~mods pred target)
  in
  QCheck2.Gen.list_size (int_range 1 4) gen_clause

let sample_packets =
  List.concat_map
    (fun dst_port ->
      List.concat_map
        (fun proto ->
          List.map
            (fun x ->
              Sdx_net.Packet.make
                ~src_ip:(Ipv4.of_int (x lsl 24))
                ~dst_ip:(Ipv4.of_int (x lsl 20))
                ~proto ~src_port:dst_port ~dst_port ())
            [ 1; 5; 42; 99 ])
        [ 6; 17 ])
    [ 80; 443; 5000 ]

let prop_parser_print_roundtrip =
  QCheck2.Test.make ~name:"print/parse roundtrip preserves policies" ~count:500
    gen_parseable_policy
    (fun policy ->
      match Policy_parser.parse (Policy_parser.print policy) with
      | Error _ -> false
      | Ok policy' ->
          List.length policy = List.length policy'
          && List.for_all2
               (fun (a : Ppolicy.clause) (b : Ppolicy.clause) ->
                 a.target = b.target
                 && Sdx_policy.Mods.equal a.mods b.mods
                 && List.for_all
                      (fun pkt ->
                        Sdx_policy.Pred.eval a.pred pkt
                        = Sdx_policy.Pred.eval b.pred pkt)
                      sample_packets)
               policy policy')

(* Fuzz: arbitrary input must yield Ok or a located Error, never an
   exception ([printable] below is QCheck2's built-in char generator). *)
let prop_parser_never_crashes =
  QCheck2.Test.make ~name:"policy parser never crashes on noise" ~count:1000
    QCheck2.Gen.(string_size ~gen:printable (int_range 0 60))
    (fun s ->
      match Policy_parser.parse s with
      | Ok _ -> true
      | Error e -> e.position <= String.length s)

let prop_parser_survives_mutation =
  (* Valid policies with one random printable byte flipped still parse
     or fail cleanly. *)
  QCheck2.Test.make ~name:"policy parser survives mutations" ~count:500
    QCheck2.Gen.(pair (int_range 0 1000) (pair (int_range 0 200) printable))
    (fun (_, (pos, ch)) ->
      let base = "match(dstport=80 && srcip=10.0.0.0/8) >> fwd(AS200) + drop" in
      let b = Bytes.of_string base in
      Bytes.set b (pos mod Bytes.length b) ch;
      match Policy_parser.parse (Bytes.to_string b) with
      | Ok _ | Error _ -> true)

let prop_scenario_never_crashes =
  QCheck2.Test.make ~name:"scenario parser never crashes on noise" ~count:500
    QCheck2.Gen.(
      string_size
        ~gen:(frequency [ (8, printable); (1, return '\n'); (1, return ' ') ])
        (int_range 0 120))
    (fun s ->
      match Scenario.parse s with
      | Ok _ | Error _ -> true)

let test_parser_misc_forms () =
  check_bool "bare drop" true
    ((List.hd (parse_ok "drop")).Ppolicy.target = Ppolicy.Drop);
  check_bool "numeric asn" true
    ((List.hd (parse_ok "match(proto=17) >> fwd(200)")).Ppolicy.target
    = Ppolicy.Peer (Asn.of_int 200));
  check_bool "comma as conjunction" true
    (match Policy_parser.parse_pred "dstport=80, proto=6" with
    | Ok p ->
        Sdx_policy.Pred.eval p (Sdx_net.Packet.make ~dst_port:80 ~proto:6 ())
        && not (Sdx_policy.Pred.eval p (Sdx_net.Packet.make ~dst_port:80 ~proto:17 ()))
    | Error _ -> false);
  check_bool "host address is /32" true
    (match Policy_parser.parse_pred "dstip=1.2.3.4" with
    | Ok p ->
        Sdx_policy.Pred.eval p (Sdx_net.Packet.make ~dst_ip:(ip "1.2.3.4") ())
        && not (Sdx_policy.Pred.eval p (Sdx_net.Packet.make ~dst_ip:(ip "1.2.3.5") ()))
    | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Gateway: the wire-level BGP front door                              *)

(* The Figure 1 exchange with an EMPTY routing table: every route will
   arrive over a real BGP session as bytes. *)
let gateway_world () =
  let config =
    Config.make
      [ Fig1.participant_a; Fig1.participant_b; Fig1.participant_c; Fig1.participant_d ]
  in
  let runtime = Runtime.create config in
  let gw = Gateway.create runtime in
  Gateway.connect_all gw;
  (* Client-side routers, one per participant. *)
  let clients =
    List.map
      (fun asn ->
        let client =
          Peer.create
            ~local:{ Wire.asn; hold_time = 90; bgp_id = ip "192.0.2.1" }
            ~peer_asn:(Asn.of_int 65535)
        in
        Peer.connect client;
        (asn, client))
      [ Fig1.asn_a; Fig1.asn_b; Fig1.asn_c; Fig1.asn_d ]
  in
  (* Shuttle bytes both ways, recording every update each client's
     router learns from the route server. *)
  let received : (Asn.t, Update.t list ref) Hashtbl.t = Hashtbl.create 4 in
  List.iter (fun (asn, _) -> Hashtbl.replace received asn (ref [])) clients;
  let shuttle () =
    for _ = 1 to 6 do
      List.iter
        (fun (asn, client) ->
          List.iter
            (fun data ->
              match Gateway.deliver gw ~from:asn data with
              | Ok _ -> ()
              | Error e -> Alcotest.fail e)
            (Peer.pending_output client);
          List.iter
            (fun data ->
              match Peer.feed client data with
              | Ok us ->
                  let r = Hashtbl.find received asn in
                  r := !r @ us
              | Error e -> Alcotest.fail e)
            (Gateway.outbox gw asn))
        clients
    done
  in
  shuttle ();
  let learned asn = !(Hashtbl.find received asn) in
  (gw, clients, shuttle, learned)

let client_announce client route =
  Peer.send_update client (Update.announce route)

let test_gateway_establishes_all () =
  let gw, _, _, _ = gateway_world () in
  check_int "all sessions up" 4 (List.length (Gateway.established gw))

let test_gateway_bytes_to_readvertisement () =
  let gw, clients, shuttle, learned = gateway_world () in
  let client_b = List.assoc Fig1.asn_b clients in
  let client_a = List.assoc Fig1.asn_a clients in
  (* B announces p1 over the wire... *)
  client_announce client_b
    (Route.make ~prefix:Fig1.p1 ~next_hop:(ip "172.0.0.2")
       ~as_path:[ Fig1.asn_b; Asn.of_int 65001 ]
       ~learned_from:Fig1.asn_b ());
  shuttle ();
  (* ...the route server now knows it... *)
  let server = Config.server (Runtime.config (Gateway.runtime gw)) in
  check_bool "server learned p1" true
    (Option.is_some (Route_server.best server ~receiver:Fig1.asn_a Fig1.p1));
  ignore client_a;
  (* ...and A's router received a re-advertisement whose next hop is a
     virtual next hop resolved by the controller's ARP responder. *)
  match
    List.filter_map
      (function
        | Update.Announce (r : Route.t) when Prefix.equal r.prefix Fig1.p1 -> Some r
        | _ -> None)
      (learned Fig1.asn_a)
  with
  | r :: _ ->
      let vnh_pool = pfx "172.16.0.0/12" in
      check_bool "vnh next hop" true (Prefix.mem r.next_hop vnh_pool);
      check_bool "vnh resolves to a vmac" true
        (Option.is_some
           (Sdx_arp.Responder.query (Runtime.arp (Gateway.runtime gw)) r.next_hop))
  | [] -> Alcotest.fail "A never received the re-advertisement"

let test_gateway_withdrawal_propagates () =
  let gw, clients, shuttle, learned = gateway_world () in
  let client_b = List.assoc Fig1.asn_b clients in
  let client_a = List.assoc Fig1.asn_a clients in
  client_announce client_b
    (Route.make ~prefix:Fig1.p1 ~next_hop:(ip "172.0.0.2")
       ~as_path:[ Fig1.asn_b; Asn.of_int 65001 ]
       ~learned_from:Fig1.asn_b ());
  shuttle ();
  ignore client_a;
  Peer.send_update client_b (Update.withdraw ~peer:Fig1.asn_b Fig1.p1);
  shuttle ();
  check_bool "withdrawal relayed" true
    (List.exists
       (function
         | Update.Withdraw { prefix; _ } -> Prefix.equal prefix Fig1.p1
         | Update.Announce _ -> false)
       (learned Fig1.asn_a));
  let server = Config.server (Runtime.config (Gateway.runtime gw)) in
  check_bool "route gone" true
    (Route_server.best server ~receiver:Fig1.asn_a Fig1.p1 = None)

let test_gateway_session_loss_flushes () =
  let gw, clients, shuttle, _ = gateway_world () in
  let client_b = List.assoc Fig1.asn_b clients in
  client_announce client_b
    (Route.make ~prefix:Fig1.p1 ~next_hop:(ip "172.0.0.2")
       ~as_path:[ Fig1.asn_b; Asn.of_int 65001 ]
       ~learned_from:Fig1.asn_b ());
  shuttle ();
  let server = Config.server (Runtime.config (Gateway.runtime gw)) in
  check_int "b's table present" 1 (List.length (Route_server.prefixes_of server Fig1.asn_b));
  (* B's session dies: garbage on the wire tears it down, and the
     gateway withdraws everything B had announced. *)
  check_bool "garbage errors" true
    (Result.is_error (Gateway.deliver gw ~from:Fig1.asn_b (Bytes.make 19 '\000')));
  check_int "b's routes flushed" 0
    (List.length (Route_server.prefixes_of server Fig1.asn_b))

let test_gateway_table_transfer () =
  let gw, clients, shuttle, _ = gateway_world () in
  let client_b = List.assoc Fig1.asn_b clients in
  let client_a = List.assoc Fig1.asn_a clients in
  List.iter
    (fun prefix ->
      client_announce client_b
        (Route.make ~prefix ~next_hop:(ip "172.0.0.2")
           ~as_path:[ Fig1.asn_b; Asn.of_int 65001 ]
           ~learned_from:Fig1.asn_b ()))
    [ Fig1.p1; Fig1.p2; Fig1.p3 ];
  shuttle ();
  ignore (Gateway.outbox gw Fig1.asn_a);
  check_int "full table queued" 3 (Gateway.advertise_table gw Fig1.asn_a);
  let received = ref 0 in
  List.iter
    (fun data ->
      match Peer.feed client_a data with
      | Ok us -> received := !received + List.length us
      | Error e -> Alcotest.fail e)
    (Gateway.outbox gw Fig1.asn_a);
  check_int "full table received" 3 !received

(* ------------------------------------------------------------------ *)
(* Scenario files                                                      *)

let figure1_scenario_text =
  {|# figure 1
participant AS100 port aa:aa:aa:aa:aa:01 172.0.0.1
participant AS200 port bb:bb:bb:bb:bb:01 172.0.0.2 port bb:bb:bb:bb:bb:02 172.0.0.3
participant AS300 port cc:cc:cc:cc:cc:01 172.0.0.4
participant AS400 port dd:dd:dd:dd:dd:01 172.0.0.5
outbound AS100 match(dstport=80) >> fwd(AS200) + match(dstport=443) >> fwd(AS300)
inbound AS200 match(srcip=0.0.0.0/1) >> fwd(port 0) + match(srcip=128.0.0.0/1) >> fwd(port 1)
announce AS200 0 20.0.1.0/24 path 200,65001,65002
announce AS200 0 20.0.2.0/24 path 200,65001,65002
announce AS200 0 20.0.3.0/24 path 200,65001
announce AS300 0 20.0.1.0/24 path 300,65001
announce AS300 0 20.0.2.0/24 path 300,65001
announce AS300 0 20.0.3.0/24 path 300,65001,65002
announce AS300 0 20.0.4.0/24 path 300,65001
announce AS400 0 20.0.5.0/24 path 400,65001
|}

let test_scenario_reproduces_figure1 () =
  let config =
    match Scenario.parse figure1_scenario_text with
    | Ok c -> c
    | Error e -> Alcotest.failf "scenario: %a" Scenario.pp_error e
  in
  check_int "participants" 4 (List.length (Config.participants config));
  check_int "ports" 5 (Config.port_count config);
  let runtime = Runtime.create config in
  check_int "figure 1 groups" 3 (Runtime.group_count runtime);
  expect_delivery runtime ~sender:Fig1.asn_a ~src:"10.0.0.1" ~dst:"20.0.1.9"
    ~dst_port:80
    (Some (Fig1.asn_b, 0));
  expect_delivery runtime ~sender:Fig1.asn_a ~src:"192.168.0.1" ~dst:"20.0.1.9"
    ~dst_port:80
    (Some (Fig1.asn_b, 1))

let test_scenario_originate () =
  let text =
    {|participant AS100 port aa:aa:aa:aa:aa:01 172.0.0.1
participant AS500
originate AS500 74.125.1.0/24
inbound AS500 match(dstip=74.125.1.1) >> drop
|}
  in
  match Scenario.parse text with
  | Error e -> Alcotest.failf "scenario: %a" Scenario.pp_error e
  | Ok config ->
      let tenant = Config.participant config (Asn.of_int 500) in
      check_bool "remote" true (Participant.is_remote tenant);
      check_bool "originated" true (tenant.originated = [ pfx "74.125.1.0/24" ])

let test_scenario_errors_located () =
  let cases =
    [
      ("participant AS100 port zz 172.0.0.1", 1);
      ("participant AS100\nannounce AS999 0 1.0.0.0/8", 2);
      ("participant AS100\noutbound AS100 match(dstport=80)", 2);
      ("participant AS100\nfrobnicate AS100", 2);
      ("participant AS100\nparticipant AS100", 2);
      ("outbound AS100 drop", 1);
    ]
  in
  List.iter
    (fun (text, want_line) ->
      match Scenario.parse text with
      | Ok _ -> Alcotest.failf "expected error for %S" text
      | Error e -> check_int "error line" want_line e.line)
    cases

let test_scenario_policy_lint () =
  (* Policies may reference participants declared later in the file... *)
  (match
     Scenario.parse
       "participant AS100 port aa:aa:aa:aa:aa:01 172.0.0.1\n\
        outbound AS100 match(dstport=80) >> fwd(AS200)\n\
        participant AS200 port bb:bb:bb:bb:bb:01 172.0.0.2"
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "forward reference rejected: %a" Scenario.pp_error e);
  (* ...but a reference to no participant at all is a load-time error on
     the policy's line. *)
  (match
     Scenario.parse
       "participant AS100 port aa:aa:aa:aa:aa:01 172.0.0.1\n\
        outbound AS100 match(dstport=80) >> fwd(AS999)"
   with
  | Ok _ -> Alcotest.fail "unknown peer accepted"
  | Error e ->
      check_int "error on the policy line" 2 e.line;
      check_bool "names the AS" true (contains_sub e.message "AS999"));
  (* fwd(port k) beyond the writer's own ports is also rejected. *)
  match
    Scenario.parse
      "participant AS100 port aa:aa:aa:aa:aa:01 172.0.0.1\n\
       inbound AS100 match(srcip=0.0.0.0/1) >> fwd(port 3)"
  with
  | Ok _ -> Alcotest.fail "out-of-range port accepted"
  | Error e ->
      check_int "error on the policy line" 2 e.line;
      check_bool "out-of-range message" true (contains_sub e.message "out of range")

let test_scenario_serialization_roundtrip () =
  let config = Fig1.make_config () in
  let text = Scenario.to_string config in
  match Scenario.parse text with
  | Error e -> Alcotest.failf "reparse: %a" Scenario.pp_error e
  | Ok config' ->
      check_int "participants" 4 (List.length (Config.participants config'));
      check_int "prefixes" 5 (Route_server.prefix_count (Config.server config'));
      (* The reloaded exchange compiles and forwards identically. *)
      let runtime' = Runtime.create config' in
      check_int "groups" 3 (Runtime.group_count runtime');
      expect_delivery runtime' ~sender:Fig1.asn_a ~src:"10.0.0.1" ~dst:"20.0.1.9"
        ~dst_port:80
        (Some (Fig1.asn_b, 0));
      expect_delivery runtime' ~sender:Fig1.asn_a ~src:"192.168.0.1"
        ~dst:"20.0.1.9" ~dst_port:80
        (Some (Fig1.asn_b, 1));
      expect_delivery runtime' ~sender:Fig1.asn_a ~src:"10.0.0.1" ~dst:"20.0.4.9"
        ~dst_port:80
        (Some (Fig1.asn_c, 0))

let test_scenario_serializes_origination () =
  let tenant =
    Participant.make ~asn:(Asn.of_int 14618) ~ports:[]
      ~originated:[ pfx "74.125.1.0/24" ] ()
  in
  let config =
    Config.make
      [ Fig1.participant_a; Fig1.participant_b; Fig1.participant_c;
        Fig1.participant_d; tenant ]
  in
  Fig1.announce_routes config;
  (* Runtime.create announces the originated prefix with its placeholder
     next hop, which must serialize as an originate line, not announce. *)
  ignore (Runtime.create config);
  let text = Scenario.to_string config in
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "originate line present" true (contains "originate AS14618" text);
  check_bool "placeholder not announced" false (contains "announce AS14618" text)

let test_scenario_load_file () =
  (* The shipped examples/figure1.sdx stays loadable. *)
  let path = "../examples/figure1.sdx" in
  if Sys.file_exists path then
    match Scenario.load path with
    | Ok config -> check_int "participants" 4 (List.length (Config.participants config))
    | Error e -> Alcotest.failf "figure1.sdx: %a" Scenario.pp_error e

(* ------------------------------------------------------------------ *)
(* RPKI-gated origination                                              *)

let anycast_tenant () =
  Participant.make ~asn:(Asn.of_int 14618) ~ports:[]
    ~inbound:
      [
        Sdx_core.Ppolicy.rewrite
          (Sdx_policy.Pred.dst_ip (Prefix.make (ip "74.125.1.1") 32))
          (Sdx_policy.Mods.make ~dst_ip:(ip "20.0.1.9") ());
      ]
    ~originated:[ pfx "74.125.1.0/24" ] ()

let test_rpki_gates_origination () =
  let make_config () =
    let config =
      Config.make
        [
          Fig1.participant_a;
          Fig1.participant_b;
          Fig1.participant_c;
          Fig1.participant_d;
          anycast_tenant ();
        ]
    in
    Fig1.announce_routes config;
    config
  in
  (* Authorized: the anycast prefix is announced and grouped. *)
  let rpki_ok = Rpki.create () in
  Rpki.add_roa rpki_ok ~prefix:(pfx "74.125.1.0/24") (Asn.of_int 14618);
  let rt_ok = Runtime.create ~rpki:rpki_ok (make_config ()) in
  check_bool "no rejections" true (Runtime.rejected_originations rt_ok = []);
  check_bool "anycast announced" true
    (Option.is_some (Runtime.announcement rt_ok ~receiver:Fig1.asn_a (pfx "74.125.1.0/24")));
  (* Unauthorized: origination refused, prefix absent from the RIBs. *)
  let rpki_bad = Rpki.create () in
  Rpki.add_roa rpki_bad ~prefix:(pfx "74.125.1.0/24") (Asn.of_int 15169);
  let rt_bad = Runtime.create ~rpki:rpki_bad (make_config ()) in
  check_bool "rejection recorded" true
    (Runtime.rejected_originations rt_bad
    = [ (Asn.of_int 14618, pfx "74.125.1.0/24") ]);
  check_bool "anycast not announced" true
    (Runtime.announcement rt_bad ~receiver:Fig1.asn_a (pfx "74.125.1.0/24") = None);
  (* Without RPKI the SDX trusts the participant (the prototype's
     behavior). *)
  let rt_none = Runtime.create (make_config ()) in
  check_bool "unchecked origination allowed" true
    (Option.is_some
       (Runtime.announcement rt_none ~receiver:Fig1.asn_a (pfx "74.125.1.0/24")))

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "sdx_core"
    [
      ( "fec",
        [
          Alcotest.test_case "paper example" `Quick test_fec_paper_example;
          Alcotest.test_case "untouched excluded" `Quick test_fec_untouched_excluded;
          Alcotest.test_case "empty" `Quick test_fec_empty;
          Alcotest.test_case "default key splits" `Quick test_fec_default_key_splits;
        ]
        @ qsuite [ prop_fec_valid; prop_fec_count_consistent ] );
      ( "vnh",
        [
          Alcotest.test_case "fresh distinct" `Quick test_vnh_fresh_distinct;
          Alcotest.test_case "reset/exhaustion" `Quick test_vnh_reset_and_exhaustion;
        ] );
      ("ppolicy", [ Alcotest.test_case "builders" `Quick test_ppolicy_builders ]);
      ( "config",
        [
          Alcotest.test_case "ports" `Quick test_config_ports;
          Alcotest.test_case "duplicates rejected" `Quick test_config_duplicates_rejected;
          Alcotest.test_case "policy validation" `Quick test_config_policy_validation;
          Alcotest.test_case "unknown lookups" `Quick test_config_unknown_lookups;
        ] );
      ( "compile",
        [
          Alcotest.test_case "figure 1 groups" `Quick test_compile_figure1_groups;
          Alcotest.test_case "figure 1 announcements" `Quick
            test_compile_figure1_announcements;
          Alcotest.test_case "figure 1 forwarding" `Quick
            test_compile_figure1_forwarding;
          Alcotest.test_case "rule shape invariants" `Quick
            test_compile_rule_shape_invariants;
          Alcotest.test_case "stats" `Quick test_compile_stats;
          Alcotest.test_case "naive = optimized" `Quick
            test_naive_optimized_equivalent;
          Alcotest.test_case "in-switch tagging equivalent" `Quick
            test_in_switch_tagging_equivalent;
          Alcotest.test_case "memoization transparent" `Quick
            test_memoization_transparent;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "withdraw stops diversion" `Quick
            test_incremental_withdraw_stops_diversion;
          Alcotest.test_case "best shift" `Quick test_incremental_best_shift;
          Alcotest.test_case "fresh vnh" `Quick test_incremental_new_vnh;
          Alcotest.test_case "no-op update" `Quick test_incremental_noop_update;
          Alcotest.test_case "reoptimize clears" `Quick test_reoptimize_clears_extras;
          Alcotest.test_case "burst accumulates" `Quick test_burst_accumulates;
          Alcotest.test_case "set_policies in place" `Quick
            test_set_policies_in_place;
        ] );
      ( "apps",
        [
          Alcotest.test_case "peering builder" `Quick test_apps_peering_equivalent;
          Alcotest.test_case "inbound split" `Quick test_apps_inbound_split;
          Alcotest.test_case "load balancer shape" `Quick test_apps_load_balancer_shape;
          Alcotest.test_case "firewall" `Quick test_apps_firewall;
          Alcotest.test_case "steer by as-path" `Quick test_apps_steer_by_as_path;
        ] );
      ( "parser",
        [
          Alcotest.test_case "paper examples" `Quick test_parser_paper_examples;
          Alcotest.test_case "pred semantics" `Quick test_parser_pred_semantics;
          Alcotest.test_case "whole pipeline" `Quick test_parser_whole_pipeline;
          Alcotest.test_case "errors" `Quick test_parser_errors;
          Alcotest.test_case "error positions" `Quick test_parser_error_positions;
          Alcotest.test_case "reference lint" `Quick test_parser_lint_references;
          Alcotest.test_case "misc forms" `Quick test_parser_misc_forms;
          QCheck_alcotest.to_alcotest prop_parser_print_roundtrip;
          QCheck_alcotest.to_alcotest prop_parser_never_crashes;
          QCheck_alcotest.to_alcotest prop_parser_survives_mutation;
          QCheck_alcotest.to_alcotest prop_scenario_never_crashes;
        ] );
      ( "gateway",
        [
          Alcotest.test_case "establishes all sessions" `Quick
            test_gateway_establishes_all;
          Alcotest.test_case "bytes to re-advertisement" `Quick
            test_gateway_bytes_to_readvertisement;
          Alcotest.test_case "withdrawal propagates" `Quick
            test_gateway_withdrawal_propagates;
          Alcotest.test_case "session loss flushes" `Quick
            test_gateway_session_loss_flushes;
          Alcotest.test_case "table transfer" `Quick test_gateway_table_transfer;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "reproduces figure 1" `Quick
            test_scenario_reproduces_figure1;
          Alcotest.test_case "originate" `Quick test_scenario_originate;
          Alcotest.test_case "errors located" `Quick test_scenario_errors_located;
          Alcotest.test_case "policy lint" `Quick test_scenario_policy_lint;
          Alcotest.test_case "serialization roundtrip" `Quick
            test_scenario_serialization_roundtrip;
          Alcotest.test_case "serializes origination" `Quick
            test_scenario_serializes_origination;
          Alcotest.test_case "load shipped file" `Quick test_scenario_load_file;
        ] );
      ( "rpki",
        [ Alcotest.test_case "gates origination" `Quick test_rpki_gates_origination ]
      );
    ]
