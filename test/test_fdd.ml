(* Property tests for the FDD intermediate representation.  The
   hash-consed diagram must agree packet-for-packet with the reference
   interpreter AND with the cross-product classifier oracle, extraction
   must yield a total classifier with identical first-match semantics,
   and the hash-consing invariants (no duplicate reachable nodes,
   monotone counters) must hold under composition. *)

open Sdx_net
open Sdx_policy

let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Small-domain generators (same shape as test_policy's, with a wider
   prefix-length range so nested-prefix resolution in the diagram gets
   exercised).                                                         *)

let addr x = Ipv4.of_int (0x0A000000 lor (x land 7))
let small_mac x = Mac.of_int (x land 3)

let gen_small_prefix =
  QCheck2.Gen.(
    map2
      (fun x len -> Prefix.make (addr x) len)
      (int_range 0 7) (int_range 26 32))

let gen_pattern =
  let open QCheck2.Gen in
  let opt g = frequency [ (2, return None); (1, map Option.some g) ] in
  let* port = opt (int_range 0 3) in
  let* src_mac = opt (map small_mac (int_range 0 3)) in
  let* dst_mac = opt (map small_mac (int_range 0 3)) in
  let* src_ip = opt gen_small_prefix in
  let* dst_ip = opt gen_small_prefix in
  let* proto = opt (oneofl [ 6; 17 ]) in
  let* src_port = opt (oneofl [ 80; 443 ]) in
  let* dst_port = opt (oneofl [ 80; 443 ]) in
  return
    (Pattern.make ?port ?src_mac ?dst_mac ?src_ip ?dst_ip ?proto ?src_port
       ?dst_port ())

let gen_mods =
  let open QCheck2.Gen in
  let opt g = frequency [ (2, return None); (1, map Option.some g) ] in
  let* port = opt (int_range 0 3) in
  let* dst_mac = opt (map small_mac (int_range 0 3)) in
  let* src_ip = opt (map addr (int_range 0 7)) in
  let* dst_ip = opt (map addr (int_range 0 7)) in
  let* dst_port = opt (oneofl [ 80; 443 ]) in
  return (Mods.make ?port ?dst_mac ?src_ip ?dst_ip ?dst_port ())

let gen_packet =
  let open QCheck2.Gen in
  let* port = int_range 0 3 in
  let* src_mac = map small_mac (int_range 0 3) in
  let* dst_mac = map small_mac (int_range 0 3) in
  let* src_ip = map addr (int_range 0 7) in
  let* dst_ip = map addr (int_range 0 7) in
  let* proto = oneofl [ 6; 17 ] in
  let* src_port = oneofl [ 80; 443 ] in
  let* dst_port = oneofl [ 80; 443 ] in
  return
    (Packet.make ~port ~src_mac ~dst_mac ~src_ip ~dst_ip ~proto ~src_port
       ~dst_port ())

let gen_pred =
  QCheck2.Gen.(
    sized_size (int_range 0 4)
    @@ fix (fun self n ->
           if n = 0 then
             frequency
               [
                 (4, map (fun p -> Pred.Test p) gen_pattern);
                 (1, return Pred.True);
                 (1, return Pred.False);
               ]
           else
             frequency
               [
                 (2, map (fun p -> Pred.Test p) gen_pattern);
                 (2, map2 (fun a b -> Pred.And (a, b)) (self (n / 2)) (self (n / 2)));
                 (2, map2 (fun a b -> Pred.Or (a, b)) (self (n / 2)) (self (n / 2)));
                 (1, map (fun a -> Pred.Not a) (self (n - 1)));
               ]))

let gen_policy =
  QCheck2.Gen.(
    sized_size (int_range 0 5)
    @@ fix (fun self n ->
           if n = 0 then
             frequency
               [
                 (2, map (fun p -> Policy.Filter p) gen_pred);
                 (2, map (fun m -> Policy.Mod m) gen_mods);
               ]
           else
             frequency
               [
                 (1, map (fun p -> Policy.Filter p) gen_pred);
                 (1, map (fun m -> Policy.Mod m) gen_mods);
                 ( 2,
                   map2 (fun a b -> Policy.Union (a, b)) (self (n / 2)) (self (n / 2))
                 );
                 (2, map2 (fun a b -> Policy.Seq (a, b)) (self (n / 2)) (self (n / 2)));
                 ( 1,
                   map3
                     (fun c a b -> Policy.If (c, a, b))
                     gen_pred (self (n / 2)) (self (n / 2)) );
               ]))

(* Apply an FDD's action set to a packet — the located-packet set the
   diagram denotes, in the interpreter's canonical order. *)
let fdd_out d pkt =
  List.sort_uniq Packet.compare
    (List.map (fun m -> Mods.apply m pkt) (Fdd.eval d pkt))

(* ------------------------------------------------------------------ *)
(* Semantics: diagram = interpreter = cross-product oracle              *)

let prop_fdd_eval_correct =
  QCheck2.Test.make ~name:"fdd eval = interpreter" ~count:4000
    QCheck2.Gen.(pair gen_policy gen_packet)
    (fun (pol, pkt) ->
      let mgr = Fdd.create () in
      fdd_out (Fdd.of_policy mgr pol) pkt = Policy.eval pol pkt)

let prop_fdd_classifier_oracle =
  QCheck2.Test.make
    ~name:"extracted classifier = cross-product oracle (per packet)"
    ~count:4000
    QCheck2.Gen.(pair gen_policy gen_packet)
    (fun (pol, pkt) ->
      let mgr = Fdd.create () in
      let cls = Fdd.to_classifier (Fdd.of_policy mgr pol) in
      Classifier.eval cls pkt = Classifier.eval (Classifier.compile pol) pkt)

let prop_fdd_classifier_total =
  QCheck2.Test.make ~name:"extracted classifier is total" ~count:1000
    QCheck2.Gen.(pair gen_policy gen_packet)
    (fun (pol, pkt) ->
      let mgr = Fdd.create () in
      let cls = Fdd.to_classifier (Fdd.of_policy mgr pol) in
      Option.is_some (Classifier.first_match cls pkt))

let prop_fdd_pred =
  QCheck2.Test.make ~name:"of_pred is the predicate's indicator" ~count:4000
    QCheck2.Gen.(pair gen_pred gen_packet)
    (fun (pred, pkt) ->
      let mgr = Fdd.create () in
      let acts = Fdd.eval (Fdd.of_pred mgr pred) pkt in
      if Pred.eval pred pkt then acts = [ Mods.identity ] else acts = [])

let prop_fdd_union =
  QCheck2.Test.make ~name:"fdd union = policy union" ~count:2000
    QCheck2.Gen.(triple gen_policy gen_policy gen_packet)
    (fun (p, q, pkt) ->
      let mgr = Fdd.create () in
      let d = Fdd.union mgr (Fdd.of_policy mgr p) (Fdd.of_policy mgr q) in
      fdd_out d pkt = Policy.eval (Policy.Union (p, q)) pkt)

let prop_fdd_seq =
  QCheck2.Test.make ~name:"fdd seq = policy seq" ~count:2000
    QCheck2.Gen.(triple gen_policy gen_policy gen_packet)
    (fun (p, q, pkt) ->
      let mgr = Fdd.create () in
      let d = Fdd.seq mgr (Fdd.of_policy mgr p) (Fdd.of_policy mgr q) in
      fdd_out d pkt = Policy.eval (Policy.Seq (p, q)) pkt)

let prop_fdd_ite =
  QCheck2.Test.make ~name:"fdd ite = policy if" ~count:2000
    QCheck2.Gen.(
      pair (pair gen_pred gen_packet) (pair gen_policy gen_policy))
    (fun ((c, pkt), (p, q)) ->
      let mgr = Fdd.create () in
      let d =
        Fdd.ite mgr (Fdd.of_pred mgr c) (Fdd.of_policy mgr p)
          (Fdd.of_policy mgr q)
      in
      fdd_out d pkt = Policy.eval (Policy.If (c, p, q)) pkt)

let prop_fdd_restrict =
  QCheck2.Test.make ~name:"fdd restrict confines the diagram" ~count:2000
    QCheck2.Gen.(triple gen_pattern gen_policy gen_packet)
    (fun (pat, pol, pkt) ->
      let mgr = Fdd.create () in
      let d = Fdd.restrict mgr pat (Fdd.of_policy mgr pol) in
      let expected =
        if Pattern.matches pat pkt then Policy.eval pol pkt else []
      in
      fdd_out d pkt = expected)

(* ------------------------------------------------------------------ *)
(* Hash-consing invariants                                             *)

let prop_fdd_unique =
  QCheck2.Test.make ~name:"no duplicate reachable nodes" ~count:2000
    QCheck2.Gen.(pair gen_policy gen_policy)
    (fun (p, q) ->
      let mgr = Fdd.create () in
      let d = Fdd.seq mgr (Fdd.of_policy mgr p) (Fdd.of_policy mgr q) in
      Fdd.check_unique d)

let prop_fdd_counters_monotone =
  QCheck2.Test.make ~name:"node/memo counters are monotone" ~count:1000
    QCheck2.Gen.(triple gen_policy gen_policy gen_policy)
    (fun (p, q, r) ->
      let mgr = Fdd.create () in
      let ok = ref true in
      let prev = ref (Fdd.stats mgr) in
      let step pol =
        ignore (Fdd.of_policy mgr pol);
        let s = Fdd.stats mgr in
        ok :=
          !ok
          && s.Fdd.nodes >= !prev.Fdd.nodes
          && s.Fdd.memo_hits >= !prev.Fdd.memo_hits;
        prev := s
      in
      List.iter step [ p; q; r; Policy.Union (p, q); Policy.Seq (q, r) ];
      !ok)

let prop_fdd_sharing =
  QCheck2.Test.make ~name:"rebuilding a policy reuses the same node"
    ~count:1000 gen_policy
    (fun pol ->
      let mgr = Fdd.create () in
      let d1 = Fdd.of_policy mgr pol in
      let before = (Fdd.stats mgr).Fdd.nodes in
      let d2 = Fdd.of_policy mgr pol in
      let after = (Fdd.stats mgr).Fdd.nodes in
      Fdd.size d1 = Fdd.size d2 && before = after)

let prop_fdd_import_preserves =
  QCheck2.Test.make ~name:"import across managers preserves semantics"
    ~count:2000
    QCheck2.Gen.(triple gen_policy gen_policy gen_packet)
    (fun (p, q, pkt) ->
      (* Build the two halves in separate shard managers, merge into a
         third — the compiler's sharded-construction pattern. *)
      let shard1 = Fdd.create () and shard2 = Fdd.create () in
      let main = Fdd.create () in
      let d1 = Fdd.import main (Fdd.of_policy shard1 p) in
      let d2 = Fdd.import main (Fdd.of_policy shard2 q) in
      let d = Fdd.union main d1 d2 in
      Fdd.check_unique d
      && fdd_out d pkt = Policy.eval (Policy.Union (p, q)) pkt)

let prop_fdd_extraction_deterministic =
  QCheck2.Test.make
    ~name:"extraction is manager-independent (rule-for-rule)" ~count:1000
    QCheck2.Gen.(pair gen_policy gen_policy)
    (fun (p, q) ->
      (* Same diagram built along different routes in different managers
         must extract the same classifier — what lets the sharded
         compiler be structurally reproducible across domain counts. *)
      let m1 = Fdd.create () in
      let noise = Fdd.of_policy m1 q in
      ignore (Fdd.seq m1 noise noise);
      let c1 = Fdd.to_classifier (Fdd.of_policy m1 p) in
      let m2 = Fdd.create () in
      let c2 = Fdd.to_classifier (Fdd.of_policy m2 p) in
      List.length c1 = List.length c2
      && List.for_all2
           (fun (a : Classifier.rule) (b : Classifier.rule) ->
             Pattern.equal a.pattern b.pattern
             && List.equal Mods.equal a.action b.action)
           c1 c2)

(* ------------------------------------------------------------------ *)
(* Workload-level equivalence: the full compiler pipeline, FDD engine
   against the cross-product oracle, probed with packets aimed at the
   oracle's own rules (plus noise).                                    *)

let probe_packet rng (rules : Classifier.rule array) =
  let open Sdx_ixp in
  let rand_ip () =
    Ipv4.of_int ((Rng.int rng 0x8000 lsl 16) lor Rng.int rng 0x10000)
  in
  if Rng.bool rng ~p:0.3 || Array.length rules = 0 then
    Packet.make ~port:(Rng.int rng 32)
      ~dst_mac:(Mac.of_int (Rng.int rng 0xFFFFFF))
      ~src_ip:(rand_ip ()) ~dst_ip:(rand_ip ())
      ~dst_port:(Rng.pick rng [ 80; 443; 22 ])
      ()
  else
    let r = rules.(Rng.int rng (Array.length rules)) in
    let pat = r.Classifier.pattern in
    let inside p =
      let span = 1 lsl (32 - Prefix.length p) in
      Prefix.host p (Rng.int rng (min span 65536))
    in
    Packet.make
      ~port:(Option.value pat.Pattern.port ~default:(Rng.int rng 32))
      ~src_mac:
        (Option.value pat.src_mac ~default:(Mac.of_int (Rng.int rng 0xFFFFFF)))
      ~dst_mac:
        (Option.value pat.dst_mac ~default:(Mac.of_int (Rng.int rng 0xFFFFFF)))
      ~eth_type:(Option.value pat.eth_type ~default:Packet.ethertype_ipv4)
      ~src_ip:(match pat.src_ip with Some p -> inside p | None -> rand_ip ())
      ~dst_ip:(match pat.dst_ip with Some p -> inside p | None -> rand_ip ())
      ~proto:(Option.value pat.proto ~default:Packet.proto_tcp)
      ~src_port:(Option.value pat.src_port ~default:(Rng.int rng 65536))
      ~dst_port:
        (Option.value pat.dst_port ~default:(Rng.pick rng [ 80; 443; 22 ]))
      ()

let test_workload_equivalence () =
  let open Sdx_ixp in
  let rng = Rng.create ~seed:7 in
  let w =
    Workload.build rng ~participants:40 ~prefixes:300 ~transit_picks:2 ()
  in
  let fdd_t =
    Sdx_core.Compile.compile ~ir:`Fdd ~domains:1 w.Workload.config
      (Sdx_core.Vnh.create ())
  in
  let cp_t =
    Sdx_core.Compile.compile_crossproduct ~domains:1 w.Workload.config
      (Sdx_core.Vnh.create ())
  in
  let fdd_cls = Sdx_core.Compile.classifier fdd_t in
  let cp_cls = Sdx_core.Compile.classifier cp_t in
  let rules = Array.of_list cp_cls in
  let mismatches = ref 0 in
  for _ = 1 to 3000 do
    let pkt = probe_packet rng rules in
    if Classifier.eval fdd_cls pkt <> Classifier.eval cp_cls pkt then
      incr mismatches
  done;
  Alcotest.(check int) "per-packet identical" 0 !mismatches;
  let s = Sdx_core.Compile.stats fdd_t in
  check_bool "fdd nodes populated" true (s.Sdx_core.Compile.fdd_nodes > 0);
  check_bool "fdd memo hits populated" true (s.fdd_memo_hits > 0);
  let s0 = Sdx_core.Compile.stats cp_t in
  check_bool "oracle reports no fdd nodes" true (s0.Sdx_core.Compile.fdd_nodes = 0)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let test_fdd_paper_example () =
  (* §3.1 composition through the FDD pipeline. *)
  let open Policy in
  let pa =
    if_ (Pred.dst_port 80) (fwd 10) (if_ (Pred.dst_port 443) (fwd 20) drop)
  in
  let pb =
    if_
      (Pred.src_ip (Prefix.of_string "0.0.0.0/1"))
      (fwd 11)
      (if_ (Pred.src_ip (Prefix.of_string "128.0.0.0/1")) (fwd 12) drop)
  in
  let mgr = Fdd.create () in
  let d = Fdd.seq mgr (Fdd.of_policy mgr pa) (Fdd.of_policy mgr pb) in
  let cls = Fdd.to_classifier d in
  let run ~src ~dst_port =
    let pkt = Packet.make ~src_ip:(Ipv4.of_string src) ~dst_port () in
    List.map (fun (p : Packet.t) -> p.port) (Classifier.eval cls pkt)
  in
  check_bool "web low" true (run ~src:"10.0.0.1" ~dst_port:80 = [ 11 ]);
  check_bool "web high" true (run ~src:"192.0.0.1" ~dst_port:80 = [ 12 ]);
  check_bool "https low" true (run ~src:"10.0.0.1" ~dst_port:443 = [ 11 ]);
  check_bool "other dropped" true (run ~src:"10.0.0.1" ~dst_port:22 = []);
  check_bool "unique" true (Fdd.check_unique d)

let () =
  Alcotest.run "sdx_fdd"
    [
      ( "semantics",
        [ Alcotest.test_case "paper 3.1 composition" `Quick test_fdd_paper_example ]
        @ qsuite
            [
              prop_fdd_eval_correct;
              prop_fdd_classifier_oracle;
              prop_fdd_classifier_total;
              prop_fdd_pred;
              prop_fdd_union;
              prop_fdd_seq;
              prop_fdd_ite;
              prop_fdd_restrict;
            ] );
      ( "hashcons",
        qsuite
          [
            prop_fdd_unique;
            prop_fdd_counters_monotone;
            prop_fdd_sharing;
            prop_fdd_import_preserves;
            prop_fdd_extraction_deterministic;
          ] );
      ( "compiler",
        [
          Alcotest.test_case "workload: fdd = crossproduct oracle" `Quick
            test_workload_equivalence;
        ] );
    ]
