(* The observability layer: metric primitive correctness (including
   concurrent mutation from multiple domains — the compile pipeline fans
   out across a domain pool, so every cell must be domain-safe), render
   schema sanity, the span ring, and the end-to-end check that a compile
   and a burst actually populate the registry. *)

module Sync = Sdx_sanitize.Sync

open Sdx_obs
open Sdx_ixp

(* [Sdx_ixp] also exports a [Trace] (packet trace generation); we mean
   the span tracer here. *)
module Trace = Sdx_obs.Trace

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else String.sub haystack i nn = needle || go (i + 1)
  in
  nn = 0 || go 0

let check_float_eps msg ~eps expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %g within %g, got %g" msg expected eps actual

(* ------------------------------------------------------------------ *)
(* Counters, gauges.                                                   *)

let test_counter_basics () =
  let r = Registry.create () in
  let c = Registry.counter ~registry:r "c" in
  check_int "fresh" 0 (Registry.Counter.value c);
  Registry.Counter.incr c;
  Registry.Counter.add c 41;
  check_int "incr+add" 42 (Registry.Counter.value c);
  (match Registry.Counter.add c (-1) with
  | () -> Alcotest.fail "negative add must raise"
  | exception Invalid_argument _ -> ());
  (* Same key resolves to the same cell. *)
  Registry.Counter.incr (Registry.counter ~registry:r "c");
  check_int "interned" 43 (Registry.Counter.value c)

let test_gauge_basics () =
  let r = Registry.create () in
  let g = Registry.gauge ~registry:r "g" in
  Registry.Gauge.set g 2.5;
  Registry.Gauge.add g 0.5;
  check_float_eps "set+add" ~eps:1e-12 3.0 (Registry.Gauge.value g);
  Registry.Gauge.set_int g 7;
  check_float_eps "set_int" ~eps:0.0 7.0 (Registry.Gauge.value g)

let test_labels_distinct () =
  let r = Registry.create () in
  let a = Registry.counter ~registry:r ~labels:[ ("asn", "AS100") ] "m" in
  let b = Registry.counter ~registry:r ~labels:[ ("asn", "AS200") ] "m" in
  Registry.Counter.incr a;
  check_int "labeled cells are distinct" 0 (Registry.Counter.value b);
  (* Label order must not matter for identity. *)
  let c1 = Registry.counter ~registry:r ~labels:[ ("x", "1"); ("y", "2") ] "n" in
  let c2 = Registry.counter ~registry:r ~labels:[ ("y", "2"); ("x", "1") ] "n" in
  Registry.Counter.incr c1;
  check_int "label order normalized" 1 (Registry.Counter.value c2)

let test_kind_mismatch () =
  let r = Registry.create () in
  ignore (Registry.counter ~registry:r "m");
  match Registry.gauge ~registry:r "m" with
  | _ -> Alcotest.fail "kind mismatch must raise"
  | exception Invalid_argument _ -> ()

let test_reset_keeps_handles () =
  let r = Registry.create () in
  let c = Registry.counter ~registry:r "c" in
  let h = Registry.histogram ~registry:r "h" in
  Registry.Counter.add c 5;
  Registry.Histogram.observe h 0.5;
  Registry.reset r;
  check_int "counter zeroed" 0 (Registry.Counter.value c);
  check_int "histogram zeroed" 0 (Registry.Histogram.count h);
  Registry.Counter.incr c;
  check_int "handle still live" 1 (Registry.Counter.value c);
  check_int "still registered" 2 (List.length (Registry.samples r))

(* ------------------------------------------------------------------ *)
(* Histograms.                                                         *)

let test_histogram_percentiles () =
  let r = Registry.create () in
  let h = Registry.histogram ~registry:r ~buckets:[| 1.0; 2.0; 4.0; 8.0 |] "h" in
  check_bool "empty percentile is nan" true
    (Float.is_nan (Registry.Histogram.percentile h 0.5));
  List.iter (Registry.Histogram.observe h) [ 0.5; 1.5; 3.0; 6.0 ];
  check_int "count" 4 (Registry.Histogram.count h);
  check_float_eps "sum" ~eps:1e-9 11.0 (Registry.Histogram.sum h);
  (* target rank 2 lands at the top of bucket (1,2]. *)
  check_float_eps "p50" ~eps:1e-9 2.0 (Registry.Histogram.percentile h 0.5);
  (* target rank 3.96: 0.96 into the single-observation bucket (4,8]. *)
  check_float_eps "p99" ~eps:1e-9 7.84 (Registry.Histogram.percentile h 0.99);
  (* Overflow observations clamp to the largest finite bound. *)
  Registry.Histogram.observe h 100.0;
  check_float_eps "overflow clamps" ~eps:1e-9 8.0
    (Registry.Histogram.percentile h 1.0)

let test_histogram_default_buckets () =
  let b = Registry.Histogram.default_buckets in
  check_bool "spans 1us" true (b.(0) <= 1e-6);
  check_bool "spans 10s" true (b.(Array.length b - 1) >= 10.0);
  let sorted = Array.copy b in
  Array.sort Float.compare sorted;
  check_bool "strictly increasing" true (b = sorted)

(* ------------------------------------------------------------------ *)
(* Concurrent mutation from multiple domains.                          *)

let test_concurrent_counter () =
  let r = Registry.create () in
  let c = Registry.counter ~registry:r "c" in
  let per_domain = 25_000 and domains = 4 in
  let spawned =
    List.init domains (fun _ ->
        Sync.Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Registry.Counter.incr c
            done))
  in
  List.iter Sync.Domain.join spawned;
  check_int "no lost increments" (domains * per_domain) (Registry.Counter.value c)

let test_concurrent_histogram_and_gauge () =
  let r = Registry.create () in
  let h = Registry.histogram ~registry:r "h" in
  let g = Registry.gauge ~registry:r "g" in
  let per_domain = 10_000 and domains = 4 in
  let spawned =
    List.init domains (fun _ ->
        Sync.Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Registry.Histogram.observe h 0.0005;
              Registry.Gauge.add g 1.0
            done))
  in
  List.iter Sync.Domain.join spawned;
  let n = domains * per_domain in
  check_int "no lost observations" n (Registry.Histogram.count h);
  (* Every increment is the same value, so the float sums are exact up
     to the deterministic rounding of n equal additions. *)
  check_float_eps "sum" ~eps:1e-6 (float_of_int n *. 0.0005)
    (Registry.Histogram.sum h);
  check_float_eps "gauge CAS add" ~eps:0.0 (float_of_int n) (Registry.Gauge.value g);
  (* All mass sits in the (2.5e-4, 5e-4] bucket, so any percentile
     interpolates inside it. *)
  let p99 = Registry.Histogram.percentile h 0.99 in
  check_bool "p99 in-bucket" true (p99 > 2.5e-4 && p99 <= 5e-4)

let test_concurrent_registration () =
  let r = Registry.create () in
  let spawned =
    List.init 4 (fun d ->
        Sync.Domain.spawn (fun () ->
            for i = 1 to 100 do
              (* Every domain races on the same 100 keys. *)
              Registry.Counter.incr
                (Registry.counter ~registry:r ("m" ^ string_of_int i));
              ignore d
            done))
  in
  List.iter Sync.Domain.join spawned;
  check_int "one cell per key" 100 (List.length (Registry.samples r));
  List.iter
    (fun s ->
      match s.Registry.sample_value with
      | Registry.Counter_v n -> check_int "all increments landed" 4 n
      | _ -> Alcotest.fail "expected a counter")
    (Registry.samples r)

(* ------------------------------------------------------------------ *)
(* Rendering.                                                          *)

let test_render () =
  let r = Registry.create () in
  Registry.Counter.add (Registry.counter ~registry:r ~labels:[ ("asn", "AS1") ] "c") 3;
  Registry.Gauge.set (Registry.gauge ~registry:r "g") 1.5;
  Registry.Histogram.observe (Registry.histogram ~registry:r "h") 0.25;
  let text = Format.asprintf "%a" Registry.pp r in
  List.iter
    (fun needle ->
      check_bool (Printf.sprintf "text contains %s" needle) true
        (contains text needle))
    [ "c{asn=\"AS1\"}"; "g"; "count=1" ];
  let json = Registry.to_json r in
  List.iter
    (fun needle ->
      check_bool (Printf.sprintf "json contains %s" needle) true
        (contains json needle))
    [
      "{\"metrics\":[";
      "\"name\":\"c\"";
      "\"labels\":{\"asn\":\"AS1\"}";
      "\"type\":\"gauge\"";
      "\"type\":\"histogram\"";
      "\"count\":1";
    ]

(* ------------------------------------------------------------------ *)
(* The span ring.                                                      *)

let test_trace_ring () =
  let tr = Trace.create ~capacity:4 () in
  for i = 1 to 6 do
    Trace.record ~tracer:tr ~name:(string_of_int i) ~start_s:(float_of_int i)
      ~dur_s:0.001
      ~attrs:[ ("i", string_of_int i) ]
      ()
  done;
  check_int "recorded" 6 (Trace.recorded tr);
  check_int "dropped" 2 (Trace.dropped tr);
  Alcotest.(check (list string))
    "oldest-first window" [ "3"; "4"; "5"; "6" ]
    (List.map (fun s -> s.Trace.span_name) (Trace.spans tr));
  let jsonl = Trace.to_jsonl tr in
  check_bool "jsonl has span" true
    (contains jsonl "{\"name\":\"3\",\"start_s\":3.000000");
  check_bool "jsonl has attr" true (contains jsonl "\"i\":\"6\"");
  Trace.reset tr;
  check_int "reset" 0 (Trace.recorded tr);
  check_int "reset spans" 0 (List.length (Trace.spans tr))

(* ------------------------------------------------------------------ *)
(* End to end: a compile run populates the expected metric names.      *)

let default_counter name = Registry.counter name
let counter_value name = Registry.Counter.value (default_counter name)

let test_compile_populates_registry () =
  let compiles0 = counter_value "sdx_compile_total" in
  let bgp0 = counter_value "sdx_bgp_updates_total" in
  let batches0 = counter_value "sdx_compile_batch_total" in
  let bursts0 = counter_value "sdx_runtime_bursts_total" in
  let rng = Rng.create ~seed:7 in
  let w = Workload.build rng ~participants:15 ~prefixes:120 () in
  let runtime = Workload.runtime w in
  check_bool "compile counted" true (counter_value "sdx_compile_total" > compiles0);
  check_bool "bgp updates counted" true (counter_value "sdx_bgp_updates_total" > bgp0);
  (* Drive one best-changing burst through the fast path. *)
  let updates =
    List.init 3 (fun _ -> Workload.random_best_changing_update rng w)
  in
  ignore (Sdx_core.Runtime.handle_burst runtime updates);
  (* Materialize the compiled flows into a switch table so the
     flow-mod/occupancy metrics register and move, as sdxd does. *)
  let table = Sdx_openflow.Table.create () in
  Sdx_openflow.Table.install_all table (Sdx_core.Runtime.flows runtime);
  check_bool "flow mods counted" true
    (counter_value "sdx_openflow_flow_mods_total" > 0);
  check_bool "batch compile counted" true
    (counter_value "sdx_compile_batch_total" > batches0);
  check_bool "burst counted" true
    (counter_value "sdx_runtime_bursts_total" > bursts0);
  let names =
    List.map (fun s -> s.Registry.sample_name) (Registry.samples Registry.default)
  in
  List.iter
    (fun n ->
      check_bool (Printf.sprintf "registry has %s" n) true (List.mem n names))
    [
      "sdx_compile_total";
      "sdx_compile_seconds";
      "sdx_compile_rules";
      "sdx_compile_groups";
      "sdx_compile_seq_ops_total";
      "sdx_compile_memo_hits_total";
      "sdx_compile_batch_total";
      "sdx_compile_batch_seconds";
      "sdx_compile_batch_vnh_total";
      "sdx_runtime_bursts_total";
      "sdx_runtime_updates_total";
      "sdx_runtime_burst_seconds";
      "sdx_runtime_fastpath_blocks";
      "sdx_runtime_extra_rules";
      "sdx_bgp_updates_total";
      "sdx_bgp_best_flips_total";
      "sdx_bgp_prefixes";
      "sdx_bgp_rib_adds_total";
      "sdx_openflow_flow_mods_total";
      "sdx_openflow_table_entries";
      "sdx_fabric_packets_total";
    ];
  (* The compile span landed in the default tracer. *)
  check_bool "compile span traced" true
    (List.exists
       (fun s -> s.Trace.span_name = "compile")
       (Trace.spans Trace.default));
  (* The compile-latency histogram really carries observations. *)
  let h = Registry.histogram "sdx_compile_seconds" in
  check_bool "latency histogram non-empty" true (Registry.Histogram.count h > 0);
  check_bool "p99 is finite" true
    (not (Float.is_nan (Registry.Histogram.percentile h 0.99)))

let test_telemetry_shares_schema () =
  let t = Sdx_fabric.Telemetry.create () in
  let asn = Sdx_bgp.Asn.of_int 64512 in
  let packet = Sdx_net.Packet.make ~src_ip:(Sdx_net.Ipv4.of_string "10.0.0.1")
      ~dst_ip:(Sdx_net.Ipv4.of_string "10.0.0.2") () in
  Sdx_fabric.Telemetry.record t ~src:asn ~packet ~receivers:[ asn ];
  let samples = Sdx_fabric.Telemetry.samples t in
  check_bool "labeled tx sample" true
    (List.exists
       (fun s ->
         s.Registry.sample_name = "sdx_fabric_tx_packets"
         && s.Registry.sample_labels = [ ("asn", Sdx_bgp.Asn.to_string asn) ])
       samples);
  (* The shared renderers accept telemetry samples directly. *)
  check_bool "renders via shared path" true
    (contains
       (Registry.json_of_samples samples)
       "sdx_fabric_pair_packets")

let () =
  Alcotest.run "sdx_obs"
    [
      ( "registry",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "gauge basics" `Quick test_gauge_basics;
          Alcotest.test_case "labels distinct" `Quick test_labels_distinct;
          Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch;
          Alcotest.test_case "reset keeps handles" `Quick test_reset_keeps_handles;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "percentiles" `Quick test_histogram_percentiles;
          Alcotest.test_case "default buckets" `Quick test_histogram_default_buckets;
        ] );
      ( "domains",
        [
          Alcotest.test_case "concurrent counter" `Quick test_concurrent_counter;
          Alcotest.test_case "concurrent histogram+gauge" `Quick
            test_concurrent_histogram_and_gauge;
          Alcotest.test_case "concurrent registration" `Quick
            test_concurrent_registration;
        ] );
      ( "render",
        [ Alcotest.test_case "text and json" `Quick test_render ] );
      ("trace", [ Alcotest.test_case "ring buffer" `Quick test_trace_ring ]);
      ( "integration",
        [
          Alcotest.test_case "compile populates registry" `Quick
            test_compile_populates_registry;
          Alcotest.test_case "telemetry shares schema" `Quick
            test_telemetry_shares_schema;
        ] );
    ]
