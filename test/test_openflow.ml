(* Tests for the OpenFlow switch model: flow entries, priority tables,
   and the packet-processing pipeline. *)

open Sdx_net
open Sdx_policy
module Sync = Sdx_sanitize.Sync
open Sdx_openflow

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let flow ?(priority = 100) ?(pattern = Pattern.all) actions =
  Flow.make ~priority ~pattern ~actions

let out port = Mods.make ~port ()

(* ------------------------------------------------------------------ *)
(* Flow                                                                *)

let test_flow_of_classifier () =
  let c =
    [
      { Classifier.pattern = Pattern.make ~dst_port:80 (); action = [ out 1 ] };
      { Classifier.pattern = Pattern.all; action = [] };
    ]
  in
  let flows = Flow.of_classifier c in
  check_int "two entries" 2 (List.length flows);
  let priorities = List.map (fun (f : Flow.t) -> f.priority) flows in
  check_bool "strictly descending" true (priorities = [ 65535; 65534 ]);
  check_bool "drop preserved" true (Flow.is_drop (List.nth flows 1));
  let low = Flow.of_classifier ~base_priority:10 c in
  check_bool "base priority respected" true
    (List.map (fun (f : Flow.t) -> f.priority) low = [ 10; 9 ])

(* ------------------------------------------------------------------ *)
(* Table                                                               *)

let test_table_priority_order () =
  let t = Table.create () in
  Table.install t (flow ~priority:10 [ out 1 ]);
  Table.install t (flow ~priority:20 ~pattern:(Pattern.make ~dst_port:80 ()) [ out 2 ]);
  (match Table.lookup t (Packet.make ~dst_port:80 ()) with
  | Some f -> check_int "high priority wins" 20 f.priority
  | None -> Alcotest.fail "no match");
  match Table.lookup t (Packet.make ~dst_port:22 ()) with
  | Some f -> check_int "fallback" 10 f.priority
  | None -> Alcotest.fail "no fallback match"

let test_table_add_overwrites () =
  (* OpenFlow ADD: equal priority and match replaces the entry. *)
  let t = Table.create () in
  Table.install t (flow ~priority:10 [ out 1 ]);
  Table.install t (flow ~priority:10 [ out 2 ]);
  check_int "one entry" 1 (Table.size t);
  match Table.lookup t (Packet.make ()) with
  | Some f -> check_bool "latest wins" true (f.actions = [ out 2 ])
  | None -> Alcotest.fail "no match"

let test_table_capacity () =
  let t = Table.create ~capacity:2 () in
  Table.install t (flow ~priority:1 [ out 1 ]);
  Table.install t (flow ~priority:2 [ out 2 ]);
  check_bool "full raises" true
    (try
       Table.install t (flow ~priority:3 [ out 3 ]);
       false
     with Table.Table_full -> true);
  (* Overwriting does not count against capacity. *)
  Table.install t (flow ~priority:2 [ out 9 ]);
  check_int "still two entries" 2 (Table.size t);
  check_int "capacity reported" 2 (Option.get (Table.capacity t))

let test_table_remove () =
  let t = Table.create () in
  let p80 = Pattern.make ~dst_port:80 () in
  Table.install t (flow ~priority:10 ~pattern:p80 [ out 1 ]);
  Table.install t (flow ~priority:20 [ out 2 ]);
  Table.remove t ~priority:10 ~pattern:p80;
  check_int "one left" 1 (Table.size t);
  let removed = Table.remove_where t (fun f -> f.priority = 20) in
  check_int "remove_where count" 1 removed;
  check_int "empty" 0 (Table.size t)

let test_table_hits () =
  let t = Table.create () in
  Table.install t (flow ~priority:10 [ out 1 ]);
  ignore (Table.lookup t (Packet.make ()));
  ignore (Table.lookup t (Packet.make ~dst_port:80 ()));
  check_int "hits counted" 2 (Table.hits t ~priority:10 ~pattern:Pattern.all);
  check_int "absent entry" 0 (Table.hits t ~priority:99 ~pattern:Pattern.all)

let test_table_clear () =
  let t = Table.create () in
  Table.install_all t [ flow [ out 1 ]; flow [ out 2 ] ];
  Table.clear t;
  check_int "cleared" 0 (Table.size t);
  check_bool "no match after clear" true (Table.lookup t (Packet.make ()) = None)

(* The engine partitions rules across its three layers and merges
   priority-correctly between them. *)
let test_table_engine_layers () =
  let t = Table.create () in
  let vmac = Mac.of_int 0x020000000007 in
  let net = Prefix.of_string "10.1.0.0/16" in
  Table.install t (flow ~priority:30 ~pattern:(Pattern.make ~dst_mac:vmac ()) [ out 1 ]);
  Table.install t (flow ~priority:20 ~pattern:(Pattern.make ~dst_ip:net ()) [ out 2 ]);
  Table.install t
    (flow ~priority:10 ~pattern:(Pattern.make ~src_ip:(Prefix.of_string "10.2.0.0/16") ())
       [ out 3 ]);
  Table.install t (flow ~priority:1 [ out 9 ]);
  let s = Table.engine_stats t in
  check_int "exact layer" 1 s.Table.exact_entries;
  check_int "prefix layer (dst + src tries)" 2 s.Table.prefix_entries;
  check_int "residual layer (catch-all)" 1 s.Table.residual_entries;
  check_int "one shape" 1 s.Table.exact_shapes;
  (* A packet matching both the exact and the prefix rule: the exact one
     wins on priority, not on layer order. *)
  let pkt = Packet.make ~dst_mac:vmac ~dst_ip:(Ipv4.of_string "10.1.2.3") () in
  (match Table.lookup t pkt with
  | Some f -> check_int "priority merge across layers" 30 f.priority
  | None -> Alcotest.fail "no match");
  (* Same packet, exact rule removed: the prefix band serves it. *)
  Table.remove t ~priority:30 ~pattern:(Pattern.make ~dst_mac:vmac ());
  (match Table.lookup t pkt with
  | Some f -> check_int "prefix band fallback" 20 f.priority
  | None -> Alcotest.fail "no prefix match");
  (* The src-trie side of the prefix band. *)
  (match Table.lookup t (Packet.make ~src_ip:(Ipv4.of_string "10.2.9.9") ()) with
  | Some f -> check_int "src-trie match" 10 f.priority
  | None -> Alcotest.fail "no src-trie match");
  (* And the residual catch-all takes what no index covers. *)
  match Table.lookup t (Packet.make ~src_ip:(Ipv4.of_string "172.16.0.1") ()) with
  | Some f -> check_int "residual catch-all" 1 f.priority
  | None -> Alcotest.fail "no residual match"

let test_table_engine_rebuilds () =
  let t = Table.create () in
  (* Enough single-rule churn to blow the staleness budget repeatedly. *)
  for i = 0 to 999 do
    let pat = Pattern.make ~dst_port:(1000 + (i mod 50)) () in
    Table.install t (flow ~priority:(i mod 7) ~pattern:pat [ out 1 ]);
    if i mod 3 = 0 then Table.remove t ~priority:(i mod 7) ~pattern:pat
  done;
  let s = Table.engine_stats t in
  check_bool "staleness rebuilds happened" true (s.Table.rebuilds > 0);
  check_int "partition covers the table" (Table.size t)
    (s.Table.exact_entries + s.Table.prefix_entries + s.Table.residual_entries)

let test_table_install_all_batch () =
  (* install_all (one sort-and-build) must agree with per-flow install. *)
  let flows =
    List.init 200 (fun i ->
        flow ~priority:(i mod 11)
          ~pattern:(Pattern.make ~dst_port:(i mod 23) ~proto:(if i mod 2 = 0 then 6 else 17) ())
          [ out (i mod 4) ])
  in
  let batch = Table.create () in
  Table.install_all batch flows;
  let one_by_one = Table.create () in
  List.iter (Table.install one_by_one) flows;
  check_bool "same entries, same order" true
    (Table.entries batch = Table.entries one_by_one);
  check_int "overwrites collapsed" (Table.size one_by_one) (Table.size batch)

let test_table_overwrite_resets_counter () =
  let t = Table.create () in
  Table.install t (flow ~priority:10 [ out 1 ]);
  ignore (Table.lookup t (Packet.make ()));
  check_int "counted" 1 (Table.hits t ~priority:10 ~pattern:Pattern.all);
  Table.install t (flow ~priority:10 [ out 2 ]);
  check_int "reset on overwrite" 0 (Table.hits t ~priority:10 ~pattern:Pattern.all)

(* ------------------------------------------------------------------ *)
(* Engine vs. linear-scan oracle (qcheck)                              *)

(* A literal reimplementation of the pre-engine table: a sorted list
   with first-match lookup and in-place counters.  The engine must be
   observationally identical under any install/remove/lookup
   interleaving, including OpenFlow's overwrite-on-ADD. *)
module Model = struct
  (* sdx-owner: the oracle is driven single-threaded by the qcheck
     property; nothing here crosses a domain. *)
  type entry = { flow : Flow.t; seq : int; mutable packets : int }
  type t = { mutable entries : entry list; mutable next_seq : int }

  let create () = { entries = []; next_seq = 0 }

  let order a b =
    match Int.compare b.flow.Flow.priority a.flow.Flow.priority with
    | 0 -> Int.compare a.seq b.seq
    | c -> c

  let drop t ~priority ~pattern =
    t.entries <-
      List.filter
        (fun e ->
          not
            (e.flow.Flow.priority = priority
            && Pattern.equal e.flow.Flow.pattern pattern))
        t.entries

  let install t (flow : Flow.t) =
    drop t ~priority:flow.priority ~pattern:flow.pattern;
    let e = { flow; seq = t.next_seq; packets = 0 } in
    t.next_seq <- t.next_seq + 1;
    t.entries <- List.merge order [ e ] t.entries

  let lookup t pkt =
    let rec go = function
      | [] -> None
      | e :: rest ->
          if Pattern.matches e.flow.Flow.pattern pkt then begin
            e.packets <- e.packets + 1;
            Some e.flow
          end
          else go rest
    in
    go t.entries

  let hits t ~priority ~pattern =
    match
      List.find_opt
        (fun e ->
          e.flow.Flow.priority = priority && Pattern.equal e.flow.Flow.pattern pattern)
        t.entries
    with
    | Some e -> e.packets
    | None -> 0

  let flows t = List.map (fun e -> e.flow) t.entries
end

(* Small value pools so that installs collide (overwrites), removes hit
   live entries, and packets actually match rules. *)
let pool_mac = List.map (fun i -> Mac.of_int (0x020000000000 + i)) [ 1; 2; 3 ]
let pool_ip = List.map Ipv4.of_string [ "10.0.0.1"; "10.0.1.9"; "10.1.2.3"; "192.168.0.5" ]

let pool_prefix =
  List.map Prefix.of_string
    [ "10.0.0.0/8"; "10.0.0.0/16"; "10.0.1.0/24"; "10.1.2.3/32"; "192.168.0.0/16" ]

let gen_engine_pattern =
  let open QCheck2.Gen in
  let opt g = option ~ratio:0.4 g in
  let* port = opt (int_range 0 3) in
  let* dst_mac = opt (oneofl pool_mac) in
  let* eth_type = opt (oneofl [ 0x0800; 0x0806 ]) in
  let* proto = opt (oneofl [ 6; 17 ]) in
  let* dst_port = opt (oneofl [ 80; 443 ]) in
  let* src_ip = option ~ratio:0.2 (oneofl pool_prefix) in
  let* dst_ip = option ~ratio:0.5 (oneofl pool_prefix) in
  return
    (Pattern.make ?port ?dst_mac ?eth_type ?proto ?dst_port ?src_ip ?dst_ip ())

let gen_engine_packet =
  let open QCheck2.Gen in
  let* port = int_range 0 3 in
  let* dst_mac = oneofl (Mac.zero :: pool_mac) in
  let* eth_type = oneofl [ 0x0800; 0x0806 ] in
  let* proto = oneofl [ 6; 17 ] in
  let* dst_port = oneofl [ 80; 443; 22 ] in
  let* src_ip = oneofl pool_ip in
  let* dst_ip = oneofl pool_ip in
  return (Packet.make ~port ~dst_mac ~eth_type ~proto ~dst_port ~src_ip ~dst_ip ())

type table_op =
  | Op_install of Flow.t
  | Op_remove of int * Pattern.t
  | Op_lookup of Packet.t

let gen_op =
  let open QCheck2.Gen in
  frequency
    [
      ( 4,
        let* priority = int_range 0 4 in
        let* pattern = gen_engine_pattern in
        let* p = int_range 0 3 in
        return (Op_install (Flow.make ~priority ~pattern ~actions:[ out p ])) );
      ( 1,
        let* priority = int_range 0 4 in
        let* pattern = gen_engine_pattern in
        return (Op_remove (priority, pattern)) );
      (5, map (fun pkt -> Op_lookup pkt) gen_engine_packet);
    ]

let prop_engine_equals_linear_oracle =
  QCheck2.Test.make ~name:"engine lookup/counters = linear-scan oracle" ~count:300
    QCheck2.Gen.(list_size (int_range 20 120) gen_op)
    (fun ops ->
      let tbl = Table.create () in
      let model = Model.create () in
      let keys = ref [] in
      List.for_all
        (fun op ->
          match op with
          | Op_install f ->
              keys := (f.Flow.priority, f.Flow.pattern) :: !keys;
              Table.install tbl f;
              Model.install model f;
              true
          | Op_remove (priority, pattern) ->
              Table.remove tbl ~priority ~pattern;
              Model.drop model ~priority ~pattern;
              true
          | Op_lookup pkt ->
              (* The pure linear reference, the engine, and the model
                 must elect the same entry... *)
              let linear = Table.lookup_linear tbl pkt in
              let engine = Table.lookup tbl pkt in
              let reference = Model.lookup model pkt in
              engine = linear && engine = reference)
        ops
      (* ... and after the run, table contents and every per-entry
         packet counter must agree too. *)
      && Table.entries tbl = Model.flows model
      && Table.size tbl = List.length (Model.flows model)
      && List.for_all
           (fun (priority, pattern) ->
             Table.hits tbl ~priority ~pattern = Model.hits model ~priority ~pattern)
           !keys)

let gen_engine_flow =
  QCheck2.Gen.(
    map2
      (fun (priority, pattern) p -> Flow.make ~priority ~pattern ~actions:[ out p ])
      (pair (int_range 0 4) gen_engine_pattern)
      (int_range 0 3))

let prop_install_all_equals_sequential =
  QCheck2.Test.make ~name:"install_all batch = sequential installs" ~count:200
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 60) gen_engine_flow)
        (list_size (int_range 1 20) gen_engine_packet))
    (fun (flows, pkts) ->
      let batch = Table.create () in
      Table.install_all batch flows;
      let seq = Table.create () in
      List.iter (Table.install seq) flows;
      Table.entries batch = Table.entries seq
      && List.for_all (fun pkt -> Table.lookup batch pkt = Table.lookup seq pkt) pkts)

let prop_lookup_batch_equals_lookup =
  QCheck2.Test.make
    ~name:"lookup_batch = per-packet lookup (results, counters, oracle)"
    ~count:200
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 60) gen_engine_flow)
        (list_size (int_range 0 40) gen_engine_packet))
    (fun (flows, pkts) ->
      let a = Table.create () in
      let b = Table.create () in
      Table.install_all a flows;
      Table.install_all b flows;
      let arr = Array.of_list pkts in
      let batch = Table.lookup_batch a arr in
      let one_by_one = Array.map (Table.lookup b) arr in
      batch = one_by_one
      (* ... and agrees with the pure linear oracle ... *)
      && Array.for_all Fun.id
           (Array.mapi (fun i pkt -> batch.(i) = Table.lookup_linear a pkt) arr)
      (* ... and leaves every per-entry packet counter exactly as the
         per-packet path does. *)
      && List.for_all
           (fun (f : Flow.t) ->
             Table.hits a ~priority:f.priority ~pattern:f.pattern
             = Table.hits b ~priority:f.priority ~pattern:f.pattern)
           flows)

(* The RCU contract: a published snapshot is frozen.  A reader domain
   drains the packet vector against it while the owner domain keeps
   installing, removing, and republishing; the reader must see exactly
   the answers the snapshot's own linear scan gave before the churn
   started, and the post-churn snapshot must match the mutated table. *)
let prop_snapshot_frozen_under_churn =
  QCheck2.Test.make
    ~name:"RCU snapshot lookups are immutable under concurrent rebuilds"
    ~count:50
    QCheck2.Gen.(
      triple
        (list_size (int_range 1 50) gen_engine_flow)
        (list_size (int_range 1 30) gen_engine_flow)
        (list_size (int_range 1 30) gen_engine_packet))
    (fun (initial, later, pkts) ->
      let t = Table.create () in
      Table.install_all t initial;
      let snap = Table.snapshot t in
      let arr = Array.of_list pkts in
      let oracle = Array.map (Table.snapshot_linear snap) arr in
      let reader =
        Sync.Domain.spawn (fun () ->
            let find = Table.searcher snap in
            Array.map find arr)
      in
      List.iter
        (fun f ->
          Table.install t f;
          ignore (Table.snapshot t))
        later;
      ignore (Table.remove_where t (fun (f : Flow.t) -> f.priority = 0));
      let fresh = Table.snapshot t in
      let got = Sync.Domain.join reader in
      got = oracle
      && Array.for_all
           (fun pkt -> Table.snapshot_lookup fresh pkt = Table.lookup_linear t pkt)
           arr
      && Table.snapshot_size fresh = Table.size t)

(* ------------------------------------------------------------------ *)
(* Switch                                                              *)

let test_switch_process_basic () =
  let sw = Switch.create () in
  Switch.install_classifier sw
    (Classifier.compile
       (Policy.if_ (Pred.dst_port 80) (Policy.fwd 2) (Policy.fwd 3)));
  let outs pkt = List.map (fun (p : Packet.t) -> p.port) (Switch.process sw pkt) in
  check_bool "port 80 -> 2" true (outs (Packet.make ~dst_port:80 ()) = [ 2 ]);
  check_bool "other -> 3" true (outs (Packet.make ~dst_port:22 ()) = [ 3 ])

let test_switch_no_match_drops () =
  let sw = Switch.create () in
  check_bool "empty table drops" true (Switch.process sw (Packet.make ()) = [])

let test_switch_multicast () =
  let sw = Switch.create () in
  Switch.install_classifier sw
    [ { Classifier.pattern = Pattern.all; action = [ out 1; out 2 ] } ];
  check_int "two outputs" 2 (List.length (Switch.process sw (Packet.make ())))

let test_switch_multi_table () =
  (* Stage 1 tags (no output), stage 2 forwards on the tag — the
     multi-stage FIB of Figure 2. *)
  let sw = Switch.create ~tables:2 () in
  let tag = Mac.of_int 0x020000000001 in
  Switch.install_classifier sw ~table:0
    [
      {
        Classifier.pattern = Pattern.make ~dst_ip:(Prefix.of_string "20.0.0.0/16") ();
        action = [ Mods.make ~dst_mac:tag () ];
      };
      { Classifier.pattern = Pattern.all; action = [] };
    ];
  Switch.install_classifier sw ~table:1
    [
      { Classifier.pattern = Pattern.make ~dst_mac:tag (); action = [ out 7 ] };
      { Classifier.pattern = Pattern.all; action = [] };
    ];
  let pkt = Packet.make ~dst_ip:(Ipv4.of_string "20.0.1.1") () in
  (match Switch.process sw pkt with
  | [ p ] ->
      check_int "forwarded by tag" 7 p.port;
      check_bool "tag applied" true (Mac.equal p.dst_mac tag)
  | _ -> Alcotest.fail "expected one output");
  check_bool "unmatched dropped in stage 2" true
    (Switch.process sw (Packet.make ~dst_ip:(Ipv4.of_string "99.0.0.1") ()) = [])

let test_switch_rule_count () =
  let sw = Switch.create ~tables:2 () in
  Switch.install_classifier sw ~table:0 Classifier.drop_all;
  Switch.install_classifier sw ~table:1 Classifier.id_all;
  check_int "rules across tables" 2 (Switch.rule_count sw);
  check_int "table count" 2 (Switch.table_count sw)

let test_switch_bad_table () =
  let sw = Switch.create () in
  Alcotest.check_raises "bad table id" (Invalid_argument "Switch.table: no table 3")
    (fun () -> ignore (Switch.table sw 3))

(* Property: a classifier installed on a switch behaves exactly like the
   classifier itself. *)

let addr x = Ipv4.of_int (0x0A000000 lor (x land 7))

let gen_packet =
  let open QCheck2.Gen in
  let* port = int_range 0 3 in
  let* dst_ip = map addr (int_range 0 7) in
  let* src_ip = map addr (int_range 0 7) in
  let* dst_port = oneofl [ 80; 443 ] in
  return (Packet.make ~port ~dst_ip ~src_ip ~dst_port ())

let gen_small_policy =
  let open QCheck2.Gen in
  let gen_pred =
    oneof
      [
        map Pred.dst_port (oneofl [ 80; 443 ]);
        map (fun x -> Pred.src_ip (Prefix.make (addr x) 31)) (int_range 0 7);
        map Pred.port (int_range 0 3);
      ]
  in
  let* p1 = gen_pred in
  let* p2 = gen_pred in
  let* a = int_range 0 3 in
  let* b = int_range 0 3 in
  return
    (Policy.if_ p1 (Policy.fwd a) (Policy.if_ p2 (Policy.fwd b) Policy.drop))

let prop_switch_matches_classifier =
  QCheck2.Test.make ~name:"switch process = classifier eval" ~count:1000
    QCheck2.Gen.(pair gen_small_policy gen_packet)
    (fun (pol, pkt) ->
      let c = Classifier.compile pol in
      let sw = Switch.create () in
      Switch.install_classifier sw c;
      Switch.process sw pkt = Classifier.eval c pkt)

(* ------------------------------------------------------------------ *)
(* Messages and the control channel                                    *)

let test_connection_flow_mods () =
  let sw = Switch.create () in
  let conn = Connection.create sw in
  let f1 = flow ~priority:10 [ out 1 ] in
  let f2 = flow ~priority:20 ~pattern:(Pattern.make ~dst_port:80 ()) [ out 2 ] in
  Connection.send conn (Message.add f1);
  Connection.send conn (Message.add ~cookie:7 f2);
  check_int "two applied" 2 (Connection.flow_mods_applied conn);
  check_int "installed" 2 (List.length (Connection.installed conn));
  Connection.send conn (Message.delete f1);
  check_int "one left" 1 (List.length (Connection.installed conn));
  (* Cookie-based bulk delete. *)
  Connection.send conn (Message.delete_cookie 7);
  check_int "empty after cookie delete" 0 (List.length (Connection.installed conn))

let test_connection_barrier_echo () =
  let conn = Connection.create (Switch.create ()) in
  Connection.send conn (Message.Barrier_request 42);
  Connection.send conn (Message.Echo_request 43);
  check_bool "barrier reply" true (Connection.recv conn = Some (Message.Barrier_reply 42));
  check_bool "echo reply" true (Connection.recv conn = Some (Message.Echo_reply 43));
  check_bool "queue drained" true (Connection.recv conn = None)

let test_connection_packet_in () =
  let conn = Connection.create (Switch.create ()) in
  let pkt = Packet.make ~dst_port:80 () in
  check_bool "miss drops" true (Connection.process conn pkt = []);
  (match Connection.recv conn with
  | Some (Message.Packet_in { packet; _ }) ->
      check_bool "miss reported" true (Packet.equal packet pkt)
  | _ -> Alcotest.fail "expected packet_in");
  (* Once a matching rule exists, no packet-in. *)
  Connection.send conn (Message.add (flow [ out 3 ]));
  check_int "forwarded" 1 (List.length (Connection.process conn pkt));
  check_int "no pending" 0 (Connection.pending conn)

let test_connection_sync_diff () =
  let conn = Connection.create (Switch.create ()) in
  let f priority port = flow ~priority [ out port ] in
  let mods = Connection.sync conn [ f 10 1; f 20 2; f 30 3 ] in
  check_int "initial install" 3 mods;
  (* Identical target: nothing to do. *)
  check_int "idempotent" 0 (Connection.sync conn [ f 10 1; f 20 2; f 30 3 ]);
  (* One changed action: a single ADD overwrites in place. *)
  check_int "single change" 1 (Connection.sync conn [ f 10 1; f 20 9; f 30 3 ]);
  (* Shrink. *)
  check_int "removal" 2 (Connection.sync conn [ f 30 3 ]);
  check_int "final table" 1 (List.length (Connection.installed conn))

let test_connection_sync_duplicate_slots () =
  (* A target listing one (priority, pattern) slot twice must behave like
     sequential OpenFlow ADDs — last occurrence wins — and stay
     idempotent: the table can only ever hold one copy, so a naive
     multiset diff would re-add the duplicate on every sync. *)
  let conn = Connection.create (Switch.create ()) in
  let f priority port = flow ~priority [ out port ] in
  let target = [ f 10 1; f 20 2; f 10 7 ] in
  ignore (Connection.sync conn target);
  check_int "one copy per slot" 2 (List.length (Connection.installed conn));
  check_int "resyncing duplicates is a no-op" 0 (Connection.sync conn target);
  (* Last occurrence won the slot. *)
  check_bool "last duplicate wins" true
    (List.sort compare (Connection.installed conn)
    = List.sort compare [ f 20 2; f 10 7 ]);
  (* Equivalent deduplicated target: still nothing to do. *)
  check_int "deduplicated target settles" 0
    (Connection.sync conn [ f 10 7; f 20 2 ])

let test_connection_sync_preserves_semantics () =
  let conn = Connection.create (Switch.create ()) in
  let c =
    Classifier.compile
      (Policy.if_ (Pred.dst_port 80) (Policy.fwd 2) (Policy.fwd 3))
  in
  ignore (Connection.sync conn (Flow.of_classifier c));
  let outs pkt =
    List.map (fun (p : Packet.t) -> p.port) (Connection.process conn pkt)
  in
  check_bool "web" true (outs (Packet.make ~dst_port:80 ()) = [ 2 ]);
  check_bool "other" true (outs (Packet.make ~dst_port:22 ()) = [ 3 ])

(* Regression: [Connection.process] once looked the packet up to decide
   miss-vs-match and then ran [Switch.process], which looked it up again —
   double-counting every hit.  The miss probe must be pure. *)
let test_connection_process_counts_once () =
  let sw = Switch.create () in
  let conn = Connection.create sw in
  let f = flow ~priority:50 [ out 3 ] in
  Connection.send conn (Message.add f);
  ignore (Connection.process conn (Packet.make ~dst_port:80 ()));
  check_int "one lookup, one hit" 1
    (Table.hits (Switch.table sw 0) ~priority:50 ~pattern:Pattern.all);
  ignore (Connection.process conn (Packet.make ~dst_port:22 ()));
  check_int "two hits after two packets" 2
    (Table.hits (Switch.table sw 0) ~priority:50 ~pattern:Pattern.all)

(* Regression: the switch-to-controller queue was a single list reversed
   on every send AND every receive — O(n^2) per drain and, worse,
   re-reversal could reorder.  The two-list FIFO must deliver in arrival
   order under interleaved queue/recv. *)
let test_connection_queue_fifo_interleaved () =
  let conn = Connection.create (Switch.create ()) in
  let probe i = ignore (Connection.process conn (Packet.make ~dst_port:i ())) in
  let recv_port () =
    match Connection.recv conn with
    | Some (Message.Packet_in { packet; _ }) -> packet.Packet.dst_port
    | _ -> Alcotest.fail "expected a packet-in"
  in
  probe 1;
  probe 2;
  probe 3;
  check_int "pending" 3 (Connection.pending conn);
  check_int "first out" 1 (recv_port ());
  probe 4;
  probe 5;
  check_int "pending mid-drain" 4 (Connection.pending conn);
  check_int "second" 2 (recv_port ());
  check_int "third" 3 (recv_port ());
  check_int "fourth" 4 (recv_port ());
  check_int "fifth" 5 (recv_port ());
  check_bool "drained" true (Connection.recv conn = None);
  check_int "pending drained" 0 (Connection.pending conn)

let test_connection_barrier_helper () =
  let conn = Connection.create (Switch.create ()) in
  (* Packet-ins queued before the barrier must survive it, in order. *)
  ignore (Connection.process conn (Packet.make ~dst_port:7 ()));
  Connection.send conn (Message.add (flow [ out 2 ]));
  check_bool "barrier answered" true (Connection.barrier conn 99);
  check_int "packet-in kept" 1 (Connection.pending conn);
  (match Connection.recv conn with
  | Some (Message.Packet_in { packet; _ }) ->
      check_int "order preserved" 7 packet.Packet.dst_port
  | _ -> Alcotest.fail "expected the pre-barrier packet-in");
  check_bool "no stray reply" true (Connection.recv conn = None)

let test_connection_sync_cookied () =
  let conn = Connection.create (Switch.create ()) in
  let f p port = flow ~priority:p ~pattern:(Pattern.make ~dst_port:port ()) [ out port ] in
  ignore (Connection.sync conn [ f 10 1 ]);
  (* Additive: installs only what is missing, never deletes. *)
  check_int "adds the missing pair" 2
    (Connection.sync_cookied conn ~cookie:42 [ f 10 1; f 20 2; f 30 3 ]);
  check_int "three installed" 3 (List.length (Connection.installed conn));
  check_int "idempotent" 0
    (Connection.sync_cookied conn ~cookie:42 [ f 10 1; f 20 2; f 30 3 ]);
  (* The cookie collects exactly the block it tagged. *)
  Connection.send conn (Message.delete_cookie 42);
  check_int "cookied block collected" 1 (List.length (Connection.installed conn))

let test_connection_rejects_switch_messages () =
  let conn = Connection.create (Switch.create ()) in
  check_bool "reply rejected" true
    (try
       Connection.send conn (Message.Barrier_reply 1);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "sdx_openflow"
    [
      ("flow", [ Alcotest.test_case "of_classifier" `Quick test_flow_of_classifier ]);
      ( "table",
        [
          Alcotest.test_case "priority order" `Quick test_table_priority_order;
          Alcotest.test_case "add overwrites" `Quick test_table_add_overwrites;
          Alcotest.test_case "capacity" `Quick test_table_capacity;
          Alcotest.test_case "remove" `Quick test_table_remove;
          Alcotest.test_case "hits" `Quick test_table_hits;
          Alcotest.test_case "clear" `Quick test_table_clear;
          Alcotest.test_case "engine layers" `Quick test_table_engine_layers;
          Alcotest.test_case "engine rebuilds" `Quick test_table_engine_rebuilds;
          Alcotest.test_case "install_all batch" `Quick test_table_install_all_batch;
          Alcotest.test_case "overwrite resets counter" `Quick
            test_table_overwrite_resets_counter;
        ]
        @ qsuite
            [
              prop_engine_equals_linear_oracle;
              prop_install_all_equals_sequential;
              prop_lookup_batch_equals_lookup;
              prop_snapshot_frozen_under_churn;
            ] );
      ( "switch",
        [
          Alcotest.test_case "process" `Quick test_switch_process_basic;
          Alcotest.test_case "no match drops" `Quick test_switch_no_match_drops;
          Alcotest.test_case "multicast" `Quick test_switch_multicast;
          Alcotest.test_case "multi-table FIB" `Quick test_switch_multi_table;
          Alcotest.test_case "rule count" `Quick test_switch_rule_count;
          Alcotest.test_case "bad table" `Quick test_switch_bad_table;
        ]
        @ qsuite [ prop_switch_matches_classifier ] );
      ( "connection",
        [
          Alcotest.test_case "flow mods" `Quick test_connection_flow_mods;
          Alcotest.test_case "barrier/echo" `Quick test_connection_barrier_echo;
          Alcotest.test_case "packet in" `Quick test_connection_packet_in;
          Alcotest.test_case "sync diff" `Quick test_connection_sync_diff;
          Alcotest.test_case "sync duplicate slots" `Quick
            test_connection_sync_duplicate_slots;
          Alcotest.test_case "sync semantics" `Quick
            test_connection_sync_preserves_semantics;
          Alcotest.test_case "process counts once" `Quick
            test_connection_process_counts_once;
          Alcotest.test_case "queue FIFO interleaved" `Quick
            test_connection_queue_fifo_interleaved;
          Alcotest.test_case "barrier helper" `Quick
            test_connection_barrier_helper;
          Alcotest.test_case "sync_cookied" `Quick test_connection_sync_cookied;
          Alcotest.test_case "rejects switch messages" `Quick
            test_connection_rejects_switch_messages;
        ] );
    ]
