(* Tests for the fabric: border routers (stage-1 FIB of Figure 2), the
   wired network, and the deployment experiments of Figure 5. *)

open Sdx_net
open Sdx_bgp
open Sdx_fabric

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let ip = Ipv4.of_string

(* ------------------------------------------------------------------ *)
(* Border router                                                       *)

let test_router_sync_builds_fib () =
  let runtime = Fig1.make_runtime () in
  let config = Sdx_core.Runtime.config runtime in
  let router = Border_router.create config ~asn:Fig1.asn_a ~port:0 in
  check_int "empty before sync" 0 (Border_router.fib_size router);
  Border_router.sync router runtime;
  (* A's local RIB: p1..p5 (it announces nothing itself). *)
  check_int "five routes" 5 (Border_router.fib_size router);
  check_int "switch port" 1 (Border_router.switch_port router);
  check_bool "asn" true (Asn.equal (Border_router.asn router) Fig1.asn_a)

let test_router_next_hop_is_virtual () =
  let runtime = Fig1.make_runtime () in
  let config = Sdx_core.Runtime.config runtime in
  let router = Border_router.create config ~asn:Fig1.asn_a ~port:0 in
  Border_router.sync router runtime;
  (* Grouped prefix p1: virtual next hop in 172.16/12. *)
  (match Border_router.next_hop router (ip "20.0.1.9") with
  | Some nh -> check_bool "vnh pool" true (Prefix.mem nh (Prefix.of_string "172.16.0.0/12"))
  | None -> Alcotest.fail "no next hop for p1");
  (* Default-only prefix p5: real next hop (D's interface). *)
  match Border_router.next_hop router (ip "20.0.5.9") with
  | Some nh -> check_bool "real nh" true (Ipv4.equal nh (ip "172.0.0.5"))
  | None -> Alcotest.fail "no next hop for p5"

let test_router_send_tags () =
  let runtime = Fig1.make_runtime () in
  let config = Sdx_core.Runtime.config runtime in
  let router = Border_router.create config ~asn:Fig1.asn_a ~port:0 in
  Border_router.sync router runtime;
  let pkt = Packet.make ~src_ip:(ip "10.0.0.1") ~dst_ip:(ip "20.0.1.9") () in
  (match Border_router.send router pkt with
  | Some tagged ->
      check_int "located at fabric port" 1 tagged.port;
      check_bool "src mac set" true (Mac.equal tagged.src_mac Fig1.mac_a1);
      (* The tag is the VMAC of p1's group. *)
      let compiled = Sdx_core.Runtime.compiled runtime in
      let g = Option.get (Sdx_core.Compile.group_of_prefix compiled Fig1.p1) in
      check_bool "tagged with vmac" true (Mac.equal tagged.dst_mac g.vmac)
  | None -> Alcotest.fail "send failed");
  (* No route: nothing to send. *)
  check_bool "no route" true
    (Border_router.send router (Packet.make ~dst_ip:(ip "99.0.0.1") ()) = None)

let test_router_unknown_port () =
  let runtime = Fig1.make_runtime () in
  let config = Sdx_core.Runtime.config runtime in
  check_bool "bad port" true
    (try
       ignore (Border_router.create config ~asn:Fig1.asn_a ~port:7);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Network                                                             *)

let delivery_of net ~from ~src ~dst ~dst_port =
  let pkt =
    Packet.make ~src_ip:(ip src) ~dst_ip:(ip dst) ~dst_port ()
  in
  match Network.inject net ~from pkt with
  | [ d ] -> Some d
  | [] -> None
  | _ -> Alcotest.fail "unexpected multicast"

let test_network_figure1_deliveries () =
  let runtime = Fig1.make_runtime () in
  let net = Network.create runtime in
  let expect ~src ~dst ~dst_port want =
    match (delivery_of net ~from:Fig1.asn_a ~src ~dst ~dst_port, want) with
    | Some (d : Network.delivery), Some (asn, port) ->
        check_bool "receiver" true (Asn.equal d.receiver asn);
        check_int "port" port d.receiver_port
    | None, None -> ()
    | _ -> Alcotest.fail "unexpected delivery"
  in
  expect ~src:"10.0.0.1" ~dst:"20.0.1.9" ~dst_port:80 (Some (Fig1.asn_b, 0));
  expect ~src:"192.168.0.1" ~dst:"20.0.1.9" ~dst_port:80 (Some (Fig1.asn_b, 1));
  expect ~src:"10.0.0.1" ~dst:"20.0.4.9" ~dst_port:443 (Some (Fig1.asn_c, 0));
  expect ~src:"10.0.0.1" ~dst:"20.0.4.9" ~dst_port:80 (Some (Fig1.asn_c, 0));
  expect ~src:"10.0.0.1" ~dst:"20.0.5.9" ~dst_port:9999 (Some (Fig1.asn_d, 0))

let test_network_delivery_rewrites_mac () =
  let runtime = Fig1.make_runtime () in
  let net = Network.create runtime in
  match delivery_of net ~from:Fig1.asn_a ~src:"10.0.0.1" ~dst:"20.0.1.9" ~dst_port:80 with
  | Some d ->
      (* §4.1: the fabric rewrites the destination MAC to the physical
         address of the receiving port, or B would drop the frame. *)
      check_bool "dst mac rewritten" true (Mac.equal d.packet.dst_mac Fig1.mac_b1)
  | None -> Alcotest.fail "no delivery"

let test_network_sync_after_update () =
  let runtime = Fig1.make_runtime () in
  let net = Network.create runtime in
  ignore (Sdx_core.Runtime.withdraw runtime ~peer:Fig1.asn_b Fig1.p1);
  Network.sync net;
  (* B no longer exports p1: the diversion must stop at the fabric. *)
  match delivery_of net ~from:Fig1.asn_a ~src:"10.0.0.1" ~dst:"20.0.1.9" ~dst_port:80 with
  | Some d -> check_bool "back to C" true (Asn.equal d.receiver Fig1.asn_c)
  | None -> Alcotest.fail "traffic lost after withdrawal"

let test_network_router_access () =
  let runtime = Fig1.make_runtime () in
  let net = Network.create runtime in
  check_bool "router exists" true
    (Asn.equal (Border_router.asn (Network.router net Fig1.asn_a)) Fig1.asn_a);
  check_bool "no router for unknown" true
    (try
       ignore (Network.router net (Asn.of_int 9999));
       false
     with Not_found -> true)

let test_network_incremental_sync () =
  let runtime = Fig1.make_runtime () in
  let net = Network.create runtime in
  let full_table = Sdx_openflow.Switch.rule_count (Network.switch net) in
  (* A no-op sync sends nothing. *)
  Network.sync net;
  check_int "no-op sync" 0 (Network.last_sync_flow_mods net);
  (* One BGP update touches a handful of entries, not the whole table. *)
  ignore (Sdx_core.Runtime.withdraw runtime ~peer:Fig1.asn_c Fig1.p1);
  Network.sync net;
  let mods = Network.last_sync_flow_mods net in
  check_bool "few flow mods for one update" true (mods > 0 && mods < full_table / 2);
  (* The background re-optimization rewrites most of the table. *)
  ignore (Sdx_core.Runtime.reoptimize runtime);
  Network.sync net;
  check_bool "reoptimization is the big sync" true
    (Network.last_sync_flow_mods net >= mods)

let test_network_switch_capacity () =
  let runtime = Fig1.make_runtime () in
  (* A comfortable budget installs fine... *)
  let net = Network.create ~switch_capacity:500 runtime in
  check_bool "fits" true
    (Sdx_openflow.Switch.rule_count (Network.switch net) > 0);
  (* ...a starved one hits the hardware limit, as §4.2 warns. *)
  check_bool "table full surfaces" true
    (try
       ignore (Network.create ~switch_capacity:5 runtime);
       false
     with Sdx_openflow.Table.Table_full -> true)

let test_network_inject_frame () =
  let runtime = Fig1.make_runtime () in
  let net = Network.create runtime in
  let pkt =
    Packet.make ~src_ip:(ip "10.0.0.1") ~dst_ip:(ip "20.0.1.9") ~dst_port:80 ()
  in
  (* Wire bytes in, wire bytes out. *)
  (match Network.inject_frame net ~from:Fig1.asn_a (Codec.to_bytes pkt) with
  | Ok [ d ] ->
      check_bool "delivered to B" true (Asn.equal d.receiver Fig1.asn_b);
      let frame = Network.frame_of_delivery d in
      (match Codec.of_bytes frame with
      | Ok out ->
          check_bool "frame addressed to receiver port" true
            (Mac.equal out.dst_mac Fig1.mac_b1)
      | Error e -> Alcotest.fail e)
  | Ok _ -> Alcotest.fail "unexpected deliveries"
  | Error e -> Alcotest.fail e);
  check_bool "garbage frame rejected" true
    (Result.is_error (Network.inject_frame net ~from:Fig1.asn_a (Bytes.make 7 'x')))

let test_network_inject_at_port () =
  let runtime = Fig1.make_runtime () in
  let net = Network.create runtime in
  (* A raw frame with an unknown destination MAC is dropped. *)
  let pkt = Packet.make ~port:1 ~dst_mac:(Mac.of_string "12:34:56:78:9a:bc") () in
  check_bool "unknown tag dropped" true (Network.inject_at_port net pkt = [])

(* ------------------------------------------------------------------ *)
(* Deployment experiments (compressed Figure 5 timelines)              *)

let test_deployment_fig5a () =
  let scenario =
    Scenarios.Fig5a.scenario ~duration:30 ~policy_at:10 ~withdraw_at:20 ()
  in
  let samples = Deployment.run scenario in
  check_int "one sample per second" 30 (List.length samples);
  let at t = List.find (fun (s : Deployment.sample) -> s.time = t) samples in
  (* Phase 1: all three flows via AS A. *)
  check_bool "before: A carries all" true (Deployment.rate (at 5) "AS-A" = 3.0);
  check_bool "before: B idle" true (Deployment.rate (at 5) "AS-B" = 0.0);
  (* Phase 2: the port-80 flow diverts to AS B. *)
  check_bool "after policy: A" true (Deployment.rate (at 15) "AS-A" = 2.0);
  check_bool "after policy: B" true (Deployment.rate (at 15) "AS-B" = 1.0);
  (* Phase 3: withdrawal pulls everything back to AS A. *)
  check_bool "after withdrawal: A" true (Deployment.rate (at 25) "AS-A" = 3.0);
  check_bool "after withdrawal: B" true (Deployment.rate (at 25) "AS-B" = 0.0)

let test_deployment_fig5b () =
  let scenario = Scenarios.Fig5b.scenario ~duration:20 ~policy_at:10 () in
  let samples = Deployment.run scenario in
  let at t = List.find (fun (s : Deployment.sample) -> s.time = t) samples in
  check_bool "before: all on instance 1" true
    (Deployment.rate (at 5) "AWS Instance #1" = 2.0);
  check_bool "before: instance 2 idle" true
    (Deployment.rate (at 5) "AWS Instance #2" = 0.0);
  check_bool "after: split" true
    (Deployment.rate (at 15) "AWS Instance #1" = 1.0
    && Deployment.rate (at 15) "AWS Instance #2" = 1.0)

let test_deployment_sampling () =
  let scenario = Scenarios.Fig5b.scenario ~duration:20 ~policy_at:10 () in
  let samples = Deployment.run ~sample_every:5 scenario in
  check_int "sampled every 5s" 4 (List.length samples);
  check_bool "missing sink reads zero" true
    (Deployment.rate (List.hd samples) "nonexistent" = 0.0)

let test_deployment_announce_event () =
  (* An announce event mid-run: before it, traffic to the prefix is
     dropped; after it, delivered. *)
  let open Sdx_core in
  let a =
    Participant.make ~asn:(Asn.of_int 1)
      ~ports:[ (Mac.of_string "0a:00:00:00:00:01", ip "172.9.0.1") ]
      ()
  in
  let b =
    Participant.make ~asn:(Asn.of_int 2)
      ~ports:[ (Mac.of_string "0a:00:00:00:00:02", ip "172.9.0.2") ]
      ()
  in
  let prefix = Prefix.of_string "55.0.0.0/16" in
  let scenario =
    {
      Deployment.participants = [ a; b ];
      seed_routes = [];
      flows =
        [
          {
            Deployment.name = "probe";
            from = Asn.of_int 1;
            packet = Packet.make ~dst_ip:(ip "55.0.1.1") ();
            rate_mbps = 1.0;
          };
        ];
      events =
        [
          ( 5,
            Deployment.Announce_route
              { peer = Asn.of_int 2; port = 0; prefix; as_path = None } );
        ];
      duration = 10;
      classify =
        (fun d -> if Asn.equal d.receiver (Asn.of_int 2) then Some "B" else None);
    }
  in
  let samples = Deployment.run scenario in
  let at t = List.find (fun (s : Deployment.sample) -> s.time = t) samples in
  check_bool "before announce: dropped" true (Deployment.rate (at 2) "B" = 0.0);
  check_bool "after announce: delivered" true (Deployment.rate (at 8) "B" = 1.0)

(* ------------------------------------------------------------------ *)
(* Middleboxes and service chaining                                    *)

let mk_mbox_world () =
  let open Sdx_core in
  let open Sdx_policy in
  let mac = Mac.of_string and pfx = Prefix.of_string in
  let asn_t = Asn.of_int 10 and asn_e = Asn.of_int 20 and asn_m = Asn.of_int 30 in
  let source_pfx = pfx "208.65.152.0/22" in
  let transit =
    Participant.make ~asn:asn_t
      ~ports:[ (mac "0a:00:00:00:00:11", ip "172.8.0.1") ]
      ~outbound:[ Ppolicy.steer (Pred.src_ip source_pfx) asn_m ]
      ()
  in
  let eyeball =
    Participant.make ~asn:asn_e ~ports:[ (mac "0a:00:00:00:00:12", ip "172.8.0.2") ] ()
  in
  let mbox =
    Participant.make ~asn:asn_m ~ports:[ (mac "0a:00:00:00:00:13", ip "172.8.0.3") ] ()
  in
  let config = Config.make [ transit; eyeball; mbox ] in
  ignore (Config.announce config ~peer:asn_e ~port:0 (pfx "73.0.0.0/8"));
  let net = Network.create (Runtime.create config) in
  (net, asn_t, asn_e, asn_m, source_pfx)

let test_middlebox_steering () =
  let net, asn_t, asn_e, asn_m, _ = mk_mbox_world () in
  Network.attach_middlebox net asn_m (Middlebox.transcoder ~to_port:8080);
  let pkt =
    Packet.make ~src_ip:(ip "208.65.152.9") ~dst_ip:(ip "73.1.1.1") ~dst_port:1935 ()
  in
  (match Network.inject net ~from:asn_t pkt with
  | [ d ] ->
      check_bool "reaches the eyeball" true (Asn.equal d.receiver asn_e);
      check_int "transcoded on the way" 8080 d.packet.dst_port
  | _ -> Alcotest.fail "chain failed");
  (* Unmatched traffic bypasses the middlebox. *)
  let other =
    Packet.make ~src_ip:(ip "9.9.9.9") ~dst_ip:(ip "73.1.1.1") ~dst_port:1935 ()
  in
  match Network.inject net ~from:asn_t other with
  | [ d ] -> check_int "untouched" 1935 d.packet.dst_port
  | _ -> Alcotest.fail "bypass failed"

let test_middlebox_scrubber_drops () =
  let net, asn_t, _, asn_m, _ = mk_mbox_world () in
  Network.attach_middlebox net asn_m
    (Middlebox.scrubber ~block:(fun p -> Ipv4.equal p.src_ip (ip "208.65.152.66")));
  let attack =
    Packet.make ~src_ip:(ip "208.65.152.66") ~dst_ip:(ip "73.1.1.1") ()
  in
  check_bool "attack scrubbed" true (Network.inject net ~from:asn_t attack = []);
  let clean = Packet.make ~src_ip:(ip "208.65.152.9") ~dst_ip:(ip "73.1.1.1") () in
  check_int "clean passes" 1 (List.length (Network.inject net ~from:asn_t clean))

let test_middlebox_detach () =
  let net, asn_t, _, asn_m, _ = mk_mbox_world () in
  Network.attach_middlebox net asn_m (Middlebox.scrubber ~block:(fun _ -> true));
  let pkt = Packet.make ~src_ip:(ip "208.65.152.9") ~dst_ip:(ip "73.1.1.1") () in
  check_bool "everything scrubbed" true (Network.inject net ~from:asn_t pkt = []);
  Network.detach_middlebox net asn_m;
  (* Without the function, the steered frame lands at the host port. *)
  match Network.inject net ~from:asn_t pkt with
  | [ d ] -> check_bool "delivered at host" true (Asn.equal d.receiver asn_m)
  | _ -> Alcotest.fail "detach failed"

let test_middlebox_loop_bounded () =
  (* A middlebox that bounces every packet straight back into itself via
     the steering policy must terminate as a drop, not diverge. *)
  let net, asn_t, _, asn_m, _ = mk_mbox_world () in
  (* Echo middlebox: emits the packet unchanged; the host router re-tags
     it toward the eyeball, but we make the steering predicate loop by
     also steering the middlebox host's own output. *)
  Network.attach_middlebox net asn_m (fun p -> [ p ]);
  let pkt = Packet.make ~src_ip:(ip "208.65.152.9") ~dst_ip:(ip "73.1.1.1") () in
  (* Terminates with a delivery (no infinite loop). *)
  check_bool "bounded" true (List.length (Network.inject net ~from:asn_t pkt) <= 2)

let test_middlebox_combinators () =
  let pkt = Packet.make ~dst_port:1935 ~src_ip:(ip "1.2.3.4") () in
  check_bool "tee duplicates" true (List.length (Middlebox.tee pkt) = 2);
  (match Middlebox.nat ~public_ip:(ip "9.9.9.9") pkt with
  | [ p ] -> check_bool "nat rewrites" true (Ipv4.equal p.src_ip (ip "9.9.9.9"))
  | _ -> Alcotest.fail "nat");
  match
    Middlebox.chain
      [ Middlebox.transcoder ~to_port:80; Middlebox.nat ~public_ip:(ip "9.9.9.9") ]
      pkt
  with
  | [ p ] ->
      check_int "chained transcode" 80 p.dst_port;
      check_bool "chained nat" true (Ipv4.equal p.src_ip (ip "9.9.9.9"))
  | _ -> Alcotest.fail "chain"

let test_attach_requires_port () =
  let runtime = Fig1.make_runtime () in
  let net = Network.create runtime in
  check_bool "remote host rejected" true
    (try
       Network.attach_middlebox net (Asn.of_int 4242) (fun p -> [ p ]);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Telemetry                                                           *)

let test_telemetry_counters () =
  let runtime = Fig1.make_runtime () in
  let net = Network.create runtime in
  let send ~src ~dst ~dst_port =
    ignore
      (Network.inject net ~from:Fig1.asn_a
         (Packet.make ~src_ip:(ip src) ~dst_ip:(ip dst) ~dst_port ()))
  in
  send ~src:"10.0.0.1" ~dst:"20.0.1.9" ~dst_port:80;  (* -> B *)
  send ~src:"10.0.0.2" ~dst:"20.0.1.9" ~dst_port:80;  (* -> B *)
  send ~src:"10.0.0.1" ~dst:"20.0.4.9" ~dst_port:443;  (* -> C *)
  send ~src:"10.0.0.1" ~dst:"99.0.0.1" ~dst_port:80;  (* no route: drop *)
  let t = Network.telemetry net in
  check_int "tx" 4 (Telemetry.tx t Fig1.asn_a);
  check_int "b rx" 2 (Telemetry.rx t Fig1.asn_b);
  check_int "c rx" 1 (Telemetry.rx t Fig1.asn_c);
  check_int "drops" 1 (Telemetry.dropped t Fig1.asn_a);
  check_int "total" 4 (Telemetry.total t);
  (match Telemetry.matrix t with
  | (s, r, n) :: _ ->
      check_bool "heaviest pair" true
        (Asn.equal s Fig1.asn_a && Asn.equal r Fig1.asn_b && n = 2)
  | [] -> Alcotest.fail "empty matrix");
  (match Telemetry.top_sources t ~toward:Fig1.asn_b with
  | (src, _) :: _ ->
      check_bool "sources tracked" true
        (Ipv4.equal src (ip "10.0.0.1") || Ipv4.equal src (ip "10.0.0.2"))
  | [] -> Alcotest.fail "no sources");
  Telemetry.reset t;
  check_int "reset" 0 (Telemetry.total t)

(* ------------------------------------------------------------------ *)
(* Multi-switch topology                                               *)

let fig1_classifier () =
  let runtime = Fig1.make_runtime () in
  (runtime, Sdx_core.Runtime.classifier runtime)

(* Figure 1's five ports spread over three switches in a line. *)
let fig1_topology () =
  Topology.create ~switches:[ 1; 2; 3 ]
    ~links:[ (1, 2); (2, 3) ]
    ~port_home:[ (1, 1); (2, 2); (3, 2); (4, 3); (5, 3) ]

let test_topology_structure () =
  let topo = fig1_topology () in
  check_int "switches" 3 (Topology.switch_count topo);
  check_bool "port home" true (Topology.home_of_port topo 4 = Some 3);
  check_bool "unknown port" true (Topology.home_of_port topo 99 = None);
  check_int "tree edges" 2 (List.length (Topology.spanning_tree_edges topo));
  check_bool "next hop" true (Topology.next_hop topo ~from:1 ~toward:3 = Some 2);
  check_bool "next hop down" true (Topology.next_hop topo ~from:2 ~toward:3 = Some 3);
  check_bool "same switch" true (Topology.next_hop topo ~from:2 ~toward:2 = None)

let test_topology_cycle_breaks () =
  (* A triangle: STP must drop one link. *)
  let topo =
    Topology.create ~switches:[ 1; 2; 3 ]
      ~links:[ (1, 2); (2, 3); (1, 3) ]
      ~port_home:[ (1, 1); (2, 2); (3, 3) ]
  in
  check_int "tree uses two of three links" 2
    (List.length (Topology.spanning_tree_edges topo))

let test_topology_disconnected_rejected () =
  check_bool "disconnected raises" true
    (try
       ignore (Topology.create ~switches:[ 1; 2 ] ~links:[] ~port_home:[ (1, 1) ]);
       false
     with Invalid_argument _ -> true)

(* The distributed fabric behaves exactly like the single big switch. *)
let test_topology_equivalent_to_big_switch () =
  let runtime, classifier = fig1_classifier () in
  let topo = fig1_topology () in
  let fabric = Topology.build topo classifier in
  check_bool "per-switch tables smaller than total" true
    (Topology.rule_count fabric 1 < Sdx_policy.Classifier.rule_count classifier);
  let cases =
    [
      ("10.0.0.1", "20.0.1.9", 80);
      ("192.168.0.1", "20.0.1.9", 80);
      ("10.0.0.1", "20.0.4.9", 443);
      ("10.0.0.1", "20.0.4.9", 80);
      ("10.0.0.1", "20.0.1.9", 9999);
      ("10.0.0.1", "20.0.5.9", 9999);
      ("10.0.0.1", "20.0.3.9", 22);
    ]
  in
  List.iter
    (fun (src, dst, dst_port) ->
      match
        Fig1.fabric_packet runtime ~sender:Fig1.asn_a ~src_ip:src ~dst_ip:dst
          ~dst_port ()
      with
      | None -> ()
      | Some pkt ->
          let big = Sdx_policy.Classifier.eval classifier pkt in
          let big =
            List.filter
              (fun (p : Packet.t) -> p.port <> Sdx_core.Compile.blackhole_port)
              big
          in
          let distributed =
            List.filter
              (fun (p : Packet.t) -> p.port <> Sdx_core.Compile.blackhole_port)
              (Topology.process fabric pkt)
          in
          check_bool
            (Printf.sprintf "same outputs for %s->%s:%d" src dst dst_port)
            true (big = distributed))
    cases

let test_topology_single_switch_degenerate () =
  let _, classifier = fig1_classifier () in
  let topo =
    Topology.create ~switches:[ 7 ] ~links:[]
      ~port_home:(List.init 5 (fun i -> (i + 1, 7)))
  in
  let fabric = Topology.build topo classifier in
  check_int "no tree edges" 0 (List.length (Topology.spanning_tree_edges topo));
  check_bool "rules preserved" true (Topology.rule_count fabric 7 > 0)

(* ------------------------------------------------------------------ *)
(* Sharded fabric with two-phase consistent updates                    *)

let test_edge_core_structure () =
  let topo = Topology.edge_core ~edges:3 ~ports:[ 1; 2; 3; 4; 5 ] in
  check_int "switches" 4 (Topology.switch_count topo);
  check_bool "core hosts nothing" true (Topology.core_switches topo = [ 0 ]);
  check_bool "edges host ports" true (Topology.edge_switches topo = [ 1; 2; 3 ]);
  check_bool "round-robin" true (Topology.home_of_port topo 4 = Some 1);
  check_int "star links" 3 (List.length (Topology.spanning_tree_edges topo));
  check_bool "one edge minimum" true
    (try
       ignore (Topology.edge_core ~edges:0 ~ports:[ 1 ]);
       false
     with Invalid_argument _ -> true)

(* A Fig1 network on a sharded fabric next to the same world on the
   default single switch. *)
let mk_sharded_world edges =
  let runtime = Fig1.make_runtime () in
  let single = Network.create (Sdx_core.Runtime.create (Fig1.make_config ())) in
  let topology = Topology.edge_core ~edges ~ports:[ 1; 2; 3; 4; 5 ] in
  let sharded = Network.create ~topology runtime in
  (single, sharded)

let delivery_key (d : Network.delivery) =
  (Asn.to_int d.receiver, d.receiver_port, d.packet)

let inject_sorted net ~from pkt =
  List.sort compare (List.map delivery_key (Network.inject net ~from pkt))

let probe_cases =
  [
    (Fig1.asn_a, "10.0.0.1", "20.0.1.9", 80);
    (Fig1.asn_a, "10.0.0.1", "20.0.1.9", 443);
    (Fig1.asn_a, "192.168.7.1", "20.0.2.9", 22);
    (Fig1.asn_a, "10.0.0.1", "20.0.3.9", 8080);
    (Fig1.asn_a, "10.0.0.1", "20.0.4.9", 443);
    (Fig1.asn_a, "10.0.0.1", "20.0.5.9", 80);
    (Fig1.asn_a, "10.0.0.1", "99.0.0.1", 80);
    (Fig1.asn_b, "20.0.1.7", "20.0.4.9", 443);
    (Fig1.asn_b, "20.0.2.7", "20.0.5.9", 9999);
    (Fig1.asn_c, "20.0.4.7", "20.0.1.9", 80);
    (Fig1.asn_d, "20.0.5.7", "20.0.3.9", 443);
  ]

let test_fabric_delivery_equivalence () =
  List.iter
    (fun edges ->
      let single, sharded = mk_sharded_world edges in
      List.iter
        (fun (from, src, dst, dst_port) ->
          let pkt = Packet.make ~src_ip:(ip src) ~dst_ip:(ip dst) ~dst_port () in
          check_bool
            (Printf.sprintf "%d edges: %s->%s:%d" edges src dst dst_port)
            true
            (inject_sorted single ~from pkt = inject_sorted sharded ~from pkt))
        probe_cases;
      check_int
        (Printf.sprintf "%d edges: no mixed-version packets" edges)
        0
        (Fabric.mixed_version_packets (Network.fabric sharded)))
    [ 1; 2; 4 ]

(* qcheck: random headers, random shard count — delivery sets match the
   single big switch packet for packet. *)
let prop_sharded_matches_single =
  let worlds = List.map (fun e -> (e, mk_sharded_world e)) [ 1; 2; 3 ] in
  QCheck.Test.make ~count:300 ~name:"sharded fabric = single switch"
    QCheck.(
      quad (int_range 0 2)
        (int_range 0 3)
        (int_range 1 6)
        (pair (int_range 0 255) small_nat))
    (fun (world_i, sender_i, third_octet, (last_octet, port_seed)) ->
      let _, (single, sharded) = List.nth worlds world_i in
      let from =
        List.nth [ Fig1.asn_a; Fig1.asn_b; Fig1.asn_c; Fig1.asn_d ] sender_i
      in
      let dst =
        ip (Printf.sprintf "20.0.%d.%d" third_octet last_octet)
      in
      let pkt =
        Packet.make ~src_ip:(ip "10.0.0.1") ~dst_ip:dst
          ~dst_port:(List.nth [ 80; 443; 22; 4321 ] (port_seed mod 4))
          ()
      in
      inject_sorted single ~from pkt = inject_sorted sharded ~from pkt
      && Fabric.mixed_version_packets (Network.fabric sharded) = 0)

let test_fabric_two_phase_commit_clean () =
  let single, sharded = mk_sharded_world 2 in
  let fab = Network.fabric sharded in
  check_int "version after create" 1 (Fabric.version fab);
  let probe msg =
    List.iter
      (fun (from, src, dst, dst_port) ->
        let pkt = Packet.make ~src_ip:(ip src) ~dst_ip:(ip dst) ~dst_port () in
        ignore (Network.inject sharded ~from pkt))
      probe_cases;
    check_int msg 0 (Fabric.mixed_version_packets fab)
  in
  (* A real control-plane change, committed with probe traffic injected
     inside every phase window. *)
  ignore
    (Sdx_core.Runtime.withdraw (Network.runtime sharded) ~peer:Fig1.asn_d
       Fig1.p5);
  let phases = ref [] in
  let stats =
    Network.commit sharded ~on_phase:(fun ph ->
        phases := ph :: !phases;
        match ph with
        | Fabric.Installed v -> probe (Printf.sprintf "clean at install v%d" v)
        | Fabric.Flipped v -> probe (Printf.sprintf "clean at flip v%d" v)
        | Fabric.Collected v -> probe (Printf.sprintf "clean after gc v%d" v)
        | Fabric.Synced_member _ -> ())
  in
  check_int "moved to v2" 2 stats.Fabric.version;
  check_int "fabric agrees" 2 (Fabric.version fab);
  check_bool "installed the new transit band" true (stats.Fabric.install_mods > 0);
  check_bool "collected the old transit band" true (stats.Fabric.gc_mods > 0);
  check_bool "three phases fired" true
    (match List.rev !phases with
    | [ Fabric.Installed 2; Fabric.Flipped 2; Fabric.Collected 1 ] -> true
    | _ -> false);
  (* Converged state still matches the big switch after the same update
     there. *)
  ignore
    (Sdx_core.Runtime.withdraw (Network.runtime single) ~peer:Fig1.asn_d
       Fig1.p5);
  Network.sync single;
  (* The sharded commit above covered the data plane; this refreshes the
     router FIBs and must send no further flow-mods. *)
  Network.sync sharded;
  check_int "commit already covered the generation" 0
    (Network.last_sync_flow_mods sharded);
  List.iter
    (fun (from, src, dst, dst_port) ->
      let pkt = Packet.make ~src_ip:(ip src) ~dst_ip:(ip dst) ~dst_port () in
      check_bool "post-commit equivalence" true
        (inject_sorted single ~from pkt = inject_sorted sharded ~from pkt))
    probe_cases;
  check_int "still no mixed packets" 0 (Fabric.mixed_version_packets fab)

let test_fabric_unsafe_commit_detects_mixing () =
  let _, sharded = mk_sharded_world 2 in
  let fab = Network.fabric sharded in
  ignore
    (Sdx_core.Runtime.withdraw (Network.runtime sharded) ~peer:Fig1.asn_d
       Fig1.p5);
  (* Cut over switch by switch with no make-before-break: once the first
     switch (the core) runs the new ruleset, frames stamped with the old
     version find no transit rule there. *)
  ignore
    (Network.commit sharded ~protocol:`Unsafe_single_phase
       ~on_phase:(fun ph ->
         match ph with
         | Fabric.Synced_member _ ->
             List.iter
               (fun (from, src, dst, dst_port) ->
                 let pkt =
                   Packet.make ~src_ip:(ip src) ~dst_ip:(ip dst) ~dst_port ()
                 in
                 ignore (Network.inject sharded ~from pkt))
               probe_cases
         | _ -> ()));
  check_bool "monitor caught mixed-ruleset packets" true
    (Fabric.mixed_version_packets fab > 0);
  check_bool "including transit misses" true (Fabric.transit_misses fab > 0);
  (* The same counters surface as sdx_check findings. *)
  let findings = Sdx_check.Check.network_lints sharded in
  check_bool "mixed-version lint is an error" true
    (List.exists
       (fun (f : Sdx_check.Check.finding) ->
         f.code = "mixed-version-packets" && f.severity = Sdx_check.Check.Error)
       findings);
  check_bool "transit-miss lint present" true
    (List.exists
       (fun (f : Sdx_check.Check.finding) -> f.code = "transit-miss")
       findings)

let test_fabric_commit_skips_unchanged () =
  let _, sharded = mk_sharded_world 2 in
  Network.sync sharded;
  check_int "no-op sync sends nothing" 0 (Network.last_sync_flow_mods sharded);
  check_int "version unchanged" 1 (Fabric.version (Network.fabric sharded));
  ignore
    (Sdx_core.Runtime.withdraw (Network.runtime sharded) ~peer:Fig1.asn_d
       Fig1.p5);
  Network.sync sharded;
  check_bool "real change commits" true (Network.last_sync_flow_mods sharded > 0);
  check_int "version bumped" 2 (Fabric.version (Network.fabric sharded));
  Network.sync sharded;
  check_int "and settles again" 0 (Network.last_sync_flow_mods sharded)

let test_fabric_sharding_shrinks_edges () =
  let _, net1 = mk_sharded_world 1 in
  let _, net4 = mk_sharded_world 4 in
  let max_edge net =
    List.fold_left
      (fun acc (s, n) -> if s = 0 then acc else max acc n)
      0
      (Fabric.rule_counts (Network.fabric net))
  in
  check_bool "per-edge rules shrink with more edges" true
    (max_edge net4 < max_edge net1);
  (* The core forwards on tags only: every rule sits in a transit band. *)
  let core = Fabric.switch (Network.fabric net4) 0 in
  check_bool "core is populated" true (Sdx_openflow.Switch.rule_count core > 0);
  List.iter
    (fun (f : Sdx_openflow.Flow.t) ->
      check_bool "core rule is transit" true (f.priority >= Fabric.transit_base))
    (Sdx_openflow.Table.entries (Sdx_openflow.Switch.table core 0));
  (* Loop freedom over the live sharded tables. *)
  let loops =
    List.filter
      (fun (f : Sdx_check.Check.finding) ->
        f.Sdx_check.Check.severity = Sdx_check.Check.Error)
      (Sdx_check.Check.fabric_loops (Fabric.check_view (Network.fabric net4)))
  in
  check_int "no forwarding loops over trunks" 0 (List.length loops)

let test_fabric_steering_drops_counted () =
  (* Two middlebox hosts steering the same sources at each other: echo
     functions ping-pong the packet forever, so the chain can only end
     at the re-injection depth bound. *)
  let open Sdx_core in
  let open Sdx_policy in
  let mac = Mac.of_string and pfx = Prefix.of_string in
  let asn_e = Asn.of_int 20 and asn_m1 = Asn.of_int 30 and asn_m2 = Asn.of_int 40 in
  let src_pfx = pfx "208.65.152.0/22" in
  let eyeball =
    Participant.make ~asn:asn_e ~ports:[ (mac "0a:00:00:00:00:12", ip "172.8.0.2") ] ()
  in
  let m1 =
    Participant.make ~asn:asn_m1
      ~ports:[ (mac "0a:00:00:00:00:13", ip "172.8.0.3") ]
      ~outbound:[ Ppolicy.steer (Pred.src_ip src_pfx) asn_m2 ]
      ()
  in
  let m2 =
    Participant.make ~asn:asn_m2
      ~ports:[ (mac "0a:00:00:00:00:14", ip "172.8.0.4") ]
      ~outbound:[ Ppolicy.steer (Pred.src_ip src_pfx) asn_m1 ]
      ()
  in
  let config = Config.make [ eyeball; m1; m2 ] in
  ignore (Config.announce config ~peer:asn_e ~port:0 (pfx "73.0.0.0/8"));
  let topology = Topology.edge_core ~edges:2 ~ports:[ 1; 2; 3 ] in
  let net = Network.create ~topology (Runtime.create config) in
  Network.attach_middlebox net asn_m1 (fun p -> [ p ]);
  Network.attach_middlebox net asn_m2 (fun p -> [ p ]);
  let pkt = Packet.make ~src_ip:(ip "208.65.152.9") ~dst_ip:(ip "73.1.1.1") () in
  check_bool "loop degrades to a drop" true
    (Network.inject net ~from:asn_m1 pkt = []);
  check_bool "and the loss is counted" true (Network.steering_drops net > 0);
  check_int "telemetry agrees" (Network.steering_drops net)
    (Telemetry.steering_drops (Network.telemetry net));
  let findings = Sdx_check.Check.network_lints net in
  check_bool "steering-chain-drops lint" true
    (List.exists
       (fun (f : Sdx_check.Check.finding) ->
         f.code = "steering-chain-drops"
         && f.severity = Sdx_check.Check.Warning)
       findings)

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "sdx_fabric"
    [
      ( "border_router",
        [
          Alcotest.test_case "sync builds fib" `Quick test_router_sync_builds_fib;
          Alcotest.test_case "virtual next hops" `Quick test_router_next_hop_is_virtual;
          Alcotest.test_case "send tags" `Quick test_router_send_tags;
          Alcotest.test_case "unknown port" `Quick test_router_unknown_port;
        ] );
      ( "network",
        [
          Alcotest.test_case "figure 1 deliveries" `Quick test_network_figure1_deliveries;
          Alcotest.test_case "delivery rewrites mac" `Quick
            test_network_delivery_rewrites_mac;
          Alcotest.test_case "sync after update" `Quick test_network_sync_after_update;
          Alcotest.test_case "router access" `Quick test_network_router_access;
          Alcotest.test_case "incremental sync" `Quick test_network_incremental_sync;
          Alcotest.test_case "switch capacity" `Quick test_network_switch_capacity;
          Alcotest.test_case "inject frame" `Quick test_network_inject_frame;
          Alcotest.test_case "inject at port" `Quick test_network_inject_at_port;
        ] );
      ( "deployment",
        [
          Alcotest.test_case "figure 5a" `Quick test_deployment_fig5a;
          Alcotest.test_case "figure 5b" `Quick test_deployment_fig5b;
          Alcotest.test_case "sampling" `Quick test_deployment_sampling;
          Alcotest.test_case "announce event" `Quick test_deployment_announce_event;
        ] );
      ( "middlebox",
        [
          Alcotest.test_case "steering" `Quick test_middlebox_steering;
          Alcotest.test_case "scrubber drops" `Quick test_middlebox_scrubber_drops;
          Alcotest.test_case "detach" `Quick test_middlebox_detach;
          Alcotest.test_case "loop bounded" `Quick test_middlebox_loop_bounded;
          Alcotest.test_case "combinators" `Quick test_middlebox_combinators;
          Alcotest.test_case "attach requires port" `Quick test_attach_requires_port;
        ] );
      ( "telemetry",
        [ Alcotest.test_case "counters" `Quick test_telemetry_counters ] );
      ( "topology",
        [
          Alcotest.test_case "structure" `Quick test_topology_structure;
          Alcotest.test_case "cycle breaks" `Quick test_topology_cycle_breaks;
          Alcotest.test_case "disconnected rejected" `Quick
            test_topology_disconnected_rejected;
          Alcotest.test_case "equivalent to big switch" `Quick
            test_topology_equivalent_to_big_switch;
          Alcotest.test_case "single switch degenerate" `Quick
            test_topology_single_switch_degenerate;
        ] );
      ( "fabric",
        [
          Alcotest.test_case "edge-core structure" `Quick test_edge_core_structure;
          Alcotest.test_case "delivery equivalence" `Quick
            test_fabric_delivery_equivalence;
          Alcotest.test_case "two-phase commit clean" `Quick
            test_fabric_two_phase_commit_clean;
          Alcotest.test_case "unsafe commit detects mixing" `Quick
            test_fabric_unsafe_commit_detects_mixing;
          Alcotest.test_case "commit skips unchanged" `Quick
            test_fabric_commit_skips_unchanged;
          Alcotest.test_case "sharding shrinks edges" `Quick
            test_fabric_sharding_shrinks_edges;
          Alcotest.test_case "steering drops counted" `Quick
            test_fabric_steering_drops_counted;
        ]
        @ qsuite [ prop_sharded_matches_single ] );
    ]
