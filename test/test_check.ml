(* The sdx_check static analyzer: clean artifacts verify clean, and each
   seeded violation class is caught by the matching pass. *)

open Sdx_net
open Sdx_policy
open Sdx_bgp
open Sdx_core
open Sdx_fabric
open Sdx_ixp
module Check = Sdx_check.Check

let check_bool = Alcotest.(check bool)

let has_code code (findings : Check.finding list) =
  List.exists (fun (f : Check.finding) -> f.Check.code = code) findings

let error_with_code code report =
  has_code code (Check.errors report)

let pp_errors r =
  Format.asprintf "%a" Check.pp_report
    { r with Check.findings = Check.errors r }

(* ------------------------------------------------------------------ *)
(* Clean artifacts.                                                    *)

let test_fig1_clean () =
  let runtime = Fig1.make_runtime () in
  let report = Check.runtime runtime in
  check_bool
    (Format.asprintf "figure 1 verifies clean: %s" (pp_errors report))
    false (Check.has_errors report);
  check_bool "checked the whole classifier" true
    (report.Check.rules_checked > 0)

let test_fig1_clean_after_updates () =
  let runtime = Fig1.make_runtime () in
  ignore
    (Runtime.announce runtime ~peer:Fig1.asn_d ~port:0
       (Prefix.of_string "50.0.0.0/8"));
  ignore (Runtime.withdraw runtime ~peer:Fig1.asn_b Fig1.p3);
  let report = Check.runtime runtime in
  check_bool
    (Format.asprintf "fast-path blocks verify clean: %s" (pp_errors report))
    false (Check.has_errors report)

let test_workload_clean () =
  let w = Workload.build (Rng.create ~seed:7) ~participants:15 ~prefixes:120 () in
  let runtime = Workload.runtime w in
  let report = Check.runtime runtime in
  check_bool
    (Format.asprintf "workload verifies clean: %s" (pp_errors report))
    false (Check.has_errors report)

let prop_generated_workloads_clean =
  QCheck.Test.make ~count:8 ~name:"generated workloads verify clean"
    QCheck.(pair (int_range 1 1000) (int_range 4 14))
    (fun (seed, participants) ->
      let w =
        Workload.build (Rng.create ~seed) ~participants
          ~prefixes:(participants * 6) ()
      in
      let runtime = Workload.runtime w in
      let report = Check.runtime runtime in
      if Check.has_errors report then
        QCheck.Test.fail_reportf "seed %d: %s" seed (pp_errors report)
      else true)

let prop_bursts_stay_clean =
  QCheck.Test.make ~count:6 ~name:"fast-path bursts stay clean"
    QCheck.(int_range 1 1000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let w = Workload.build rng ~participants:10 ~prefixes:80 () in
      let runtime = Workload.runtime w in
      ignore (Runtime.handle_burst runtime (Workload.burst rng w ~size:5));
      ignore (Runtime.handle_burst runtime (Workload.burst rng w ~size:3));
      let report = Check.runtime runtime in
      if Check.has_errors report then
        QCheck.Test.fail_reportf "seed %d: %s" seed (pp_errors report)
      else true)

(* A 2-switch fabric over the Figure 1 ports: A and B1 on switch 1,
   B2/C/D on switch 2. *)
let two_switch_fabric runtime =
  let topo =
    Topology.create ~switches:[ 1; 2 ]
      ~links:[ (1, 2) ]
      ~port_home:[ (1, 1); (2, 1); (3, 2); (4, 2); (5, 2) ]
  in
  Topology.build topo (Runtime.classifier runtime)

let test_fabric_clean () =
  let runtime = Fig1.make_runtime () in
  let fab = two_switch_fabric runtime in
  let findings = Check.fabric_loops fab in
  check_bool "tree-trunked fabric has no cycles" false
    (has_code "fabric-cycle" findings
    || has_code "hop-bound-exceeded" findings)

(* ------------------------------------------------------------------ *)
(* Seeded mutations: each violation class is caught by its pass.       *)

(* Mutation 1: strip the in-port pinning from a policy rule — the §4.1
   isolation augmentation — and the isolation pass must object. *)
let test_mutation_unpinned_rule () =
  let runtime = Fig1.make_runtime () in
  let subject = Check.subject_of_runtime runtime in
  let dropped = ref false in
  let rules =
    List.map
      (fun ((r : Classifier.rule), prov) ->
        match prov with
        | Compile.Outbound { via = Some _; _ } when not !dropped ->
            dropped := true;
            ({ r with Classifier.pattern = { r.pattern with Pattern.port = None } }, prov)
        | _ -> (r, prov))
      (Check.rules subject)
  in
  check_bool "found a policy rule to mutate" true !dropped;
  let report = Check.run (Check.with_rules subject rules) in
  check_bool "unpinned rule caught" true
    (error_with_code "unpinned-policy-rule" report);
  let witness =
    List.find_map
      (fun (f : Check.finding) ->
        if f.Check.code = "unpinned-policy-rule" then f.Check.witness else None)
      (Check.errors report)
  in
  check_bool "witness packet provided" true (witness <> None)

(* Mutation 2: re-pin a policy rule to another participant's port. *)
let test_mutation_foreign_ingress () =
  let runtime = Fig1.make_runtime () in
  let config = Runtime.config runtime in
  let subject = Check.subject_of_runtime runtime in
  let mutated = ref false in
  let rules =
    List.map
      (fun ((r : Classifier.rule), prov) ->
        match prov with
        | Compile.Outbound { sender; via = Some _; _ } when not !mutated ->
            let foreign =
              List.concat_map
                (fun (p : Participant.t) ->
                  if Asn.equal p.asn sender then []
                  else Config.switch_ports_of config p.asn)
                (Config.participants config)
            in
            mutated := true;
            ( {
                r with
                Classifier.pattern =
                  { r.pattern with Pattern.port = Some (List.hd foreign) };
              },
              prov )
        | _ -> (r, prov))
      (Check.rules subject)
  in
  check_bool "found a policy rule to mutate" true !mutated;
  let report = Check.run (Check.with_rules subject rules) in
  check_bool "foreign in-port caught" true
    (error_with_code "foreign-ingress" report)

(* Mutation 3: forward toward a prefix the route server no longer
   exports — withdraw behind the runtime's back so the classifier goes
   stale, the situation the BGP pass exists to catch. *)
let test_mutation_stale_export () =
  let runtime = Fig1.make_runtime () in
  let config = Runtime.config runtime in
  (* Both announcers of p3 withdraw directly on the route server; no
     recompilation happens, so every p3 rule is now stale. *)
  ignore (Config.withdraw config ~peer:Fig1.asn_b Fig1.p3);
  ignore (Config.withdraw config ~peer:Fig1.asn_c Fig1.p3);
  let report = Check.runtime runtime in
  check_bool "stale diversion caught" true
    (error_with_code "forward-beyond-export" report);
  check_bool "stale default forwarding caught" true
    (error_with_code "stale-default-forward" report)

(* Mutation 4: splice a forwarding cycle across the two-switch fabric's
   trunk; the symbolic walk must find it. *)
let test_mutation_spliced_cycle () =
  let runtime = Fig1.make_runtime () in
  let fab = two_switch_fabric runtime in
  let topo = Topology.topo fab in
  let p1t = Topology.trunk_port topo ~from:1 ~toward_neighbor:2 in
  let p2t = Topology.trunk_port topo ~from:2 ~toward_neighbor:1 in
  let rule ~in_port ~out =
    {
      Classifier.pattern = Pattern.make ~port:in_port ~dst_port:9999 ();
      action = [ Mods.make ~port:out () ];
    }
  in
  let table s = Option.get (Topology.table fab s) in
  (* Physical ingress on switch 1 enters the bounce; each trunk side
     reflects the packet back across the link. *)
  Topology.set_table fab 1
    (rule ~in_port:1 ~out:p1t :: rule ~in_port:p1t ~out:p1t :: table 1);
  Topology.set_table fab 2 (rule ~in_port:p2t ~out:p2t :: table 2);
  let findings = Check.fabric_loops fab in
  check_bool "spliced cycle caught" true (has_code "fabric-cycle" findings);
  let witness =
    List.find_map
      (fun (f : Check.finding) ->
        if f.Check.code = "fabric-cycle" then f.Check.witness else None)
      findings
  in
  check_bool "cycle witness provided" true (witness <> None)

(* Mutation 5: a middlebox service chain that bites its own tail — the
   Prelude failure mode. *)
let test_mutation_redirect_cycle () =
  let mac = Mac.of_string and ip = Ipv4.of_string in
  let m1 =
    Participant.make ~asn:(Asn.of_int 65101)
      ~ports:[ (mac "0a:00:00:00:00:01", ip "172.1.0.1") ]
      ~outbound:[ Ppolicy.steer (Pred.dst_port 80) (Asn.of_int 65102) ]
      ()
  in
  let m2 =
    Participant.make ~asn:(Asn.of_int 65102)
      ~ports:[ (mac "0a:00:00:00:00:02", ip "172.1.0.2") ]
      ~outbound:[ Ppolicy.steer (Pred.dst_port 80) (Asn.of_int 65101) ]
      ()
  in
  let runtime = Runtime.create (Config.make [ m1; m2 ]) in
  let report = Check.runtime runtime in
  check_bool "redirect cycle caught" true
    (error_with_code "redirect-cycle" report)

(* Disjoint steering predicates break the cycle: structural cycle only,
   no error. *)
let test_redirect_cycle_unsatisfiable () =
  let mac = Mac.of_string and ip = Ipv4.of_string in
  let m1 =
    Participant.make ~asn:(Asn.of_int 65101)
      ~ports:[ (mac "0a:00:00:00:00:01", ip "172.1.0.1") ]
      ~outbound:[ Ppolicy.steer (Pred.dst_port 80) (Asn.of_int 65102) ]
      ()
  in
  let m2 =
    Participant.make ~asn:(Asn.of_int 65102)
      ~ports:[ (mac "0a:00:00:00:00:02", ip "172.1.0.2") ]
      ~outbound:[ Ppolicy.steer (Pred.dst_port 443) (Asn.of_int 65101) ]
      ()
  in
  let runtime = Runtime.create (Config.make [ m1; m2 ]) in
  let report = Check.runtime runtime in
  check_bool "no satisfiable cycle" false (error_with_code "redirect-cycle" report);
  check_bool "structural cycle still noted" true
    (has_code "redirect-cycle-unsatisfiable" report.Check.findings)

(* Mutation 6: delete a prefix group's stage-2 handler rules; the
   tagging table still writes its VMAC, so the lint pass must flag the
   blackhole. *)
let test_mutation_unhandled_vmac () =
  let runtime = Fig1.make_runtime () in
  let subject = Check.subject_of_runtime runtime in
  let victim =
    match Compile.groups (Runtime.compiled runtime) with
    | g :: _ -> g
    | [] -> Alcotest.fail "no prefix groups"
  in
  let rules =
    List.filter
      (fun ((r : Classifier.rule), _) ->
        match r.Classifier.pattern.Pattern.dst_mac with
        | Some m -> not (Mac.equal m victim.Compile.vmac)
        | None -> true)
      (Check.rules subject)
  in
  let report = Check.run (Check.with_rules subject rules) in
  check_bool "unhandled stage-1 tag caught" true
    (error_with_code "stage1-tag-unhandled" report)

(* Shadowed rules surface as warnings with both rule indices. *)
let test_shadow_lint () =
  let runtime = Fig1.make_runtime () in
  let subject = Check.subject_of_runtime runtime in
  let rules = Check.rules subject in
  let shadowed =
    (* Appended after the catch-all, so the catch-all covers it with a
       different action. *)
    ( {
        Classifier.pattern = Pattern.make ~dst_port:8080 ();
        action = [ Mods.make ~port:1 () ];
      },
      Compile.Unattributed )
  in
  let report =
    Check.run ~passes:[ "lints" ] (Check.with_rules subject (rules @ [ shadowed ]))
  in
  check_bool "shadowed rule reported" true
    (has_code "shadowed-rule" (Check.warnings report))

(* ------------------------------------------------------------------ *)
(* Incremental checking: the dirty-set protocol cross-validated against
   the full pass.                                                       *)

let test_incremental_after_burst () =
  let runtime = Fig1.make_runtime () in
  (* Creation rebuilds the whole table, so the first consumer must fall
     back to a full pass. *)
  check_bool "fresh runtime reports a rebuild" true
    (Runtime.consume_dirty runtime = None);
  let stats =
    Runtime.announce runtime ~peer:Fig1.asn_d ~port:0
      (Prefix.of_string "50.0.0.0/8")
  in
  check_bool "fast path installed rules" true (stats.Runtime.extra_rules > 0);
  (match Runtime.last_dirty runtime with
  | None -> Alcotest.fail "expected a dirty-set after a fast-path burst"
  | Some d ->
      check_bool "dirty rules recorded" true (d.Runtime.dirty_rules <> []);
      check_bool "dirty groups recorded" true (d.Runtime.dirty_groups <> []);
      let subject = Check.subject_of_runtime runtime in
      let report = Check.run_incremental ~dirty:d subject in
      check_bool
        (Format.asprintf "incremental verifies clean: %s" (pp_errors report))
        false (Check.has_errors report);
      check_bool "scoped to the dirty rules" true
        (report.Check.rules_checked > 0
        && report.Check.rules_checked <= List.length d.Runtime.dirty_rules);
      check_bool "loop pass skipped" false
        (List.mem "loops" report.Check.passes_run));
  ignore (Runtime.consume_dirty runtime);
  (* Consuming resets the accumulator to the empty dirty-set... *)
  (match Runtime.consume_dirty runtime with
  | Some d -> check_bool "empty after consume" true (d.Runtime.dirty_rules = [])
  | None -> Alcotest.fail "expected the empty dirty-set after consuming");
  (* ...and a re-optimization invalidates it outright, forcing the
     runtime_incremental entry point into its full-pass fallback. *)
  ignore (Runtime.reoptimize runtime);
  let report = Check.runtime_incremental runtime in
  check_bool "fallback ran the full pass" true
    (List.mem "loops" report.Check.passes_run);
  check_bool
    (Format.asprintf "fallback verifies clean: %s" (pp_errors report))
    false (Check.has_errors report)

(* Staleness seeded into the dirty rules themselves must be caught by the
   inline incremental check — the per-burst always-on mode. *)
let test_incremental_catches_stale_burst () =
  let runtime = Fig1.make_runtime () in
  ignore (Runtime.consume_dirty runtime);
  let p_new = Prefix.of_string "50.0.0.0/8" in
  ignore (Runtime.announce runtime ~peer:Fig1.asn_d ~port:0 p_new);
  (* Withdraw behind the runtime's back: the just-installed fast-path
     block goes stale, and its rules are exactly the dirty ones. *)
  ignore (Config.withdraw (Runtime.config runtime) ~peer:Fig1.asn_d p_new);
  let report = Check.runtime_incremental runtime in
  check_bool "incremental passes only" false
    (List.mem "loops" report.Check.passes_run);
  check_bool "stale dirty rules caught incrementally" true
    (error_with_code "forward-beyond-export" report
    || error_with_code "stale-default-forward" report)

(* Precision: a violation seeded OUTSIDE the dirty-set is skipped by the
   incremental pass (that is the whole point — the periodic full
   checkpoints cover untouched rules) while the full pass still sees it. *)
let test_incremental_scopes_to_dirty () =
  let runtime = Fig1.make_runtime () in
  ignore (Runtime.consume_dirty runtime);
  ignore
    (Runtime.announce runtime ~peer:Fig1.asn_d ~port:0
       (Prefix.of_string "50.0.0.0/8"));
  let dirty =
    match Runtime.consume_dirty runtime with
    | Some d -> d
    | None -> Alcotest.fail "expected a dirty-set"
  in
  let subject = Check.subject_of_runtime runtime in
  let mutated = ref None in
  let rules =
    List.mapi
      (fun i ((r : Classifier.rule), prov) ->
        match prov with
        | Compile.Outbound { via = Some _; _ }
          when !mutated = None && not (List.mem i dirty.Runtime.dirty_rules) ->
            mutated := Some i;
            ( {
                r with
                Classifier.pattern = { r.pattern with Pattern.port = None };
              },
              prov )
        | _ -> (r, prov))
      (Check.rules subject)
  in
  check_bool "found an untouched policy rule to mutate" true (!mutated <> None);
  let mutated_subject = Check.with_rules subject rules in
  let full = Check.run mutated_subject in
  check_bool "full pass catches the mutation" true
    (error_with_code "unpinned-policy-rule" full);
  let inc = Check.run_incremental ~dirty mutated_subject in
  check_bool "incremental skips the untouched rule" false
    (error_with_code "unpinned-policy-rule" inc)

let prop_incremental_cross_validates =
  QCheck.Test.make ~count:6
    ~name:"incremental findings cross-validate against the full pass"
    QCheck.(int_range 1 1000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let w = Workload.build rng ~participants:10 ~prefixes:80 () in
      let runtime = Workload.runtime w in
      ignore (Runtime.consume_dirty runtime);
      ignore (Runtime.handle_burst runtime (Workload.burst rng w ~size:5));
      ignore (Runtime.handle_burst runtime (Workload.burst rng w ~size:3));
      match Runtime.consume_dirty runtime with
      | None -> true (* a burst fell forward into a rebuild; full pass covers it *)
      | Some dirty ->
          let subject = Check.subject_of_runtime runtime in
          let inc = Check.run_incremental ~dirty subject in
          let full = Check.run ~passes:Check.incremental_passes subject in
          let key (f : Check.finding) =
            (f.Check.pass, f.Check.code, f.Check.rules)
          in
          let full_keys = List.map key full.Check.findings in
          let missing =
            List.filter
              (fun f -> not (List.mem (key f) full_keys))
              inc.Check.findings
          in
          if missing <> [] then
            QCheck.Test.fail_reportf
              "seed %d: incremental-only finding(s) absent from the full \
               pass: %s"
              seed
              (pp_errors { inc with Check.findings = missing })
          else if Check.has_errors inc then
            QCheck.Test.fail_reportf "seed %d: %s" seed (pp_errors inc)
          else true)

let () =
  Alcotest.run "sdx_check"
    [
      ( "clean",
        [
          Alcotest.test_case "figure 1" `Quick test_fig1_clean;
          Alcotest.test_case "figure 1 + updates" `Quick
            test_fig1_clean_after_updates;
          Alcotest.test_case "workload" `Quick test_workload_clean;
          Alcotest.test_case "two-switch fabric" `Quick test_fabric_clean;
          QCheck_alcotest.to_alcotest prop_generated_workloads_clean;
          QCheck_alcotest.to_alcotest prop_bursts_stay_clean;
        ] );
      ( "mutations",
        [
          Alcotest.test_case "unpinned policy rule" `Quick
            test_mutation_unpinned_rule;
          Alcotest.test_case "foreign ingress" `Quick
            test_mutation_foreign_ingress;
          Alcotest.test_case "stale export" `Quick test_mutation_stale_export;
          Alcotest.test_case "spliced fabric cycle" `Quick
            test_mutation_spliced_cycle;
          Alcotest.test_case "redirect cycle" `Quick
            test_mutation_redirect_cycle;
          Alcotest.test_case "unsatisfiable redirect cycle" `Quick
            test_redirect_cycle_unsatisfiable;
          Alcotest.test_case "unhandled VMAC" `Quick
            test_mutation_unhandled_vmac;
          Alcotest.test_case "shadowed rule lint" `Quick test_shadow_lint;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "dirty-set after a burst" `Quick
            test_incremental_after_burst;
          Alcotest.test_case "catches a stale burst inline" `Quick
            test_incremental_catches_stale_burst;
          Alcotest.test_case "scopes to the dirty rules" `Quick
            test_incremental_scopes_to_dirty;
          QCheck_alcotest.to_alcotest prop_incremental_cross_validates;
        ] );
    ]
