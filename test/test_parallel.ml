(* The parallel-compilation and burst-batching equivalence suite:
   (a) parallel and sequential [Compile.compile] produce identical rule
       lists, (b) [Classifier.optimize] preserves [Classifier.eval] on
   random packets, (c) burst-batched fast-path deltas agree with a full
   [reoptimize], plus the same-prefix-burst regression and the
   2-domain smoke test that exercises the pool on every run. *)

open Sdx_net
open Sdx_policy
open Sdx_bgp
open Sdx_core
open Sdx_ixp

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* The domain pool itself.                                             *)

let test_pool_map_order () =
  Parallel.with_pool ~domains:3 (fun pool ->
      let xs = List.init 100 Fun.id in
      Alcotest.(check (list int))
        "results in input order"
        (List.map (fun x -> x * x) xs)
        (Parallel.map pool (fun x -> x * x) xs);
      Alcotest.(check (list int)) "empty" [] (Parallel.map pool Fun.id []))

let test_pool_map_exception () =
  Parallel.with_pool ~domains:2 (fun pool ->
      match
        Parallel.map pool (fun x -> if x = 3 then failwith "boom" else x)
          [ 1; 2; 3; 4 ]
      with
      | _ -> Alcotest.fail "expected the task's exception to propagate"
      | exception Failure msg -> Alcotest.(check string) "message" "boom" msg)

let test_pool_reusable () =
  (* Several batches through one pool; also covers size 1 (inline). *)
  List.iter
    (fun domains ->
      Parallel.with_pool ~domains (fun pool ->
          List.iter
            (fun n ->
              let xs = List.init n (fun i -> i - 5) in
              Alcotest.(check (list int))
                "batch" (List.map abs xs)
                (Parallel.map pool abs xs))
            [ 0; 1; 7; 64 ]))
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* (a) Parallel vs sequential full compilation.                        *)

let test_parallel_identical () =
  List.iter
    (fun seed ->
      let rng = Rng.create ~seed in
      let w = Workload.build rng ~participants:20 ~prefixes:200 () in
      let compile domains =
        Compile.classifier (Compile.compile ~domains w.Workload.config (Vnh.create ()))
      in
      let seq = compile 1 in
      let par = compile 3 in
      check_int
        (Printf.sprintf "seed %d: same rule count" seed)
        (Classifier.rule_count seq) (Classifier.rule_count par);
      check_bool
        (Printf.sprintf "seed %d: rule-for-rule identical" seed)
        true (seq = par))
    [ 1; 7; 42 ]

(* The dune-runtest smoke test required by the issue: a small scenario
   compiled with the pool forced to 2 domains. *)
let test_two_domain_smoke () =
  let sequential = Runtime.create ~domains:1 (Fig1.make_config ()) in
  let parallel = Runtime.create ~domains:2 (Fig1.make_config ()) in
  check_bool "2-domain classifier identical to sequential" true
    (Runtime.classifier parallel = Runtime.classifier sequential);
  check_int "groups" (Runtime.group_count sequential)
    (Runtime.group_count parallel);
  (* And the compiled fabric actually forwards: A's port-80 traffic to
     p1 goes to B (application-specific peering). *)
  match
    Fig1.fabric_packet parallel ~sender:Fig1.asn_a ~src_ip:"10.0.0.1"
      ~dst_ip:"20.0.1.9" ~dst_port:80 ()
  with
  | None -> Alcotest.fail "no fabric packet for p1"
  | Some pkt ->
      Alcotest.(check bool)
        "port-80 diverted to B" true
        (List.mem (Fig1.asn_b, 0) (Fig1.deliveries parallel pkt))

(* ------------------------------------------------------------------ *)
(* (b) optimize preserves eval.                                        *)

let small_prefixes =
  List.map Prefix.of_string
    [ "10.0.0.0/8"; "10.1.0.0/16"; "10.1.2.0/24"; "20.0.0.0/8"; "20.3.0.0/16" ]

let small_ips =
  List.map Ipv4.of_string
    [ "10.1.2.3"; "10.200.0.1"; "20.3.4.5"; "20.0.0.7"; "9.9.9.9" ]

let gen_pattern =
  let open QCheck2.Gen in
  let opt g = frequency [ (2, return None); (1, map Option.some g) ] in
  let* port = opt (int_range 1 3) in
  let* dst_mac = opt (map Mac.of_int (int_range 1 2)) in
  let* src_ip = opt (oneofl small_prefixes) in
  let* dst_ip = opt (oneofl small_prefixes) in
  let* proto = opt (oneofl [ 6; 17 ]) in
  let* dst_port = opt (oneofl [ 80; 443 ]) in
  return (Pattern.make ?port ?dst_mac ?src_ip ?dst_ip ?proto ?dst_port ())

let gen_mods =
  let open QCheck2.Gen in
  let opt g = frequency [ (2, return None); (1, map Option.some g) ] in
  let* port = opt (int_range 0 3) in
  let* dst_ip = opt (oneofl small_ips) in
  let* dst_port = opt (oneofl [ 80; 443 ]) in
  return (Mods.make ?port ?dst_ip ?dst_port ())

let gen_classifier =
  let open QCheck2.Gen in
  let gen_action = list_size (int_range 0 2) gen_mods in
  let gen_rule =
    let* pattern = gen_pattern in
    let* action = gen_action in
    return { Classifier.pattern; action }
  in
  (* Compiled classifiers are total; [optimize]'s catch-all pruning
     relies on that, so the generator appends one. *)
  let* body = list_size (int_range 0 15) gen_rule in
  let* tail = gen_action in
  return (body @ [ { Classifier.pattern = Pattern.all; action = tail } ])

let gen_packet =
  let open QCheck2.Gen in
  let* port = int_range 0 4 in
  let* dst_mac = map Mac.of_int (int_range 1 3) in
  let* src_ip = oneofl small_ips in
  let* dst_ip = oneofl small_ips in
  let* proto = oneofl [ 6; 17 ] in
  let* dst_port = oneofl [ 80; 443; 9999 ] in
  return (Packet.make ~port ~dst_mac ~src_ip ~dst_ip ~proto ~dst_port ())

let prop_optimize_preserves_eval =
  QCheck2.Test.make ~name:"optimize preserves eval on random packets"
    ~count:500
    QCheck2.Gen.(pair gen_classifier (list_size (int_range 1 20) gen_packet))
    (fun (c, pkts) -> Classifier.equivalent_on c (Classifier.optimize c) pkts)

let prop_optimize_no_growth =
  QCheck2.Test.make ~name:"optimize never adds rules" ~count:500 gen_classifier
    (fun c ->
      Classifier.rule_count (Classifier.optimize c) <= Classifier.rule_count c)

(* ------------------------------------------------------------------ *)
(* (c) Burst batching vs full reoptimize.                              *)

(* Where the runtime delivers a flow, resolved the way a border router
   would: best route for the destination, VNH from the re-advertised
   announcement, tag from ARP, then the classifier.  Returns the tagged
   packet and the sorted (participant, port) delivery set. *)
let delivery runtime ~sender ~dst_ip ~dst_port =
  let config = Runtime.config runtime in
  let server = Config.server config in
  match Route_server.lookup_best server ~receiver:sender dst_ip with
  | None -> None
  | Some (prefix, _) -> (
      match Runtime.announcement runtime ~receiver:sender prefix with
      | None -> None
      | Some route -> (
          match
            Sdx_arp.Responder.query (Runtime.arp runtime) route.Route.next_hop
          with
          | None -> None
          | Some tag ->
              let pkt =
                Packet.make
                  ~port:(Config.switch_port config sender 0)
                  ~dst_mac:tag
                  ~src_ip:(Ipv4.of_string "99.0.0.1")
                  ~dst_ip ~dst_port ()
              in
              Some (pkt, List.sort compare (Fig1.deliveries runtime pkt))))

let test_batch_matches_reoptimize () =
  let rng = Rng.create ~seed:11 in
  let w = Workload.build rng ~participants:15 ~prefixes:150 () in
  let runtime = Workload.runtime w in
  let burst = Workload.burst rng w ~size:6 in
  (* Re-deliver two of the updates so the burst has same-prefix
     duplicates for the coalescing path. *)
  let burst = burst @ [ List.nth burst 0; List.nth burst 2 ] in
  let stats = Runtime.handle_burst runtime burst in
  check_int "one fast-path block per burst" 1
    (Runtime.fast_path_block_count runtime);
  check_int "stats for every update" (List.length burst) (List.length stats);
  let installed =
    List.fold_left
      (fun n (s : Runtime.update_stats) -> n + s.extra_rules)
      0 stats
  in
  check_int "extra_rules sums to the installed block"
    (Runtime.extra_rule_count runtime)
    installed;
  let senders =
    List.filteri
      (fun i _ -> i < 3)
      (List.filter
         (fun (p : Participant.t) ->
           Config.switch_ports_of (Runtime.config runtime) p.asn <> [])
         (Config.participants (Runtime.config runtime)))
  in
  let dsts =
    List.sort_uniq Prefix.compare
      (List.map Update.prefix burst
      @ List.filteri (fun i _ -> i < 20) w.universe)
  in
  let probe () =
    List.concat_map
      (fun (s : Participant.t) ->
        List.concat_map
          (fun prefix ->
            List.map
              (fun dst_port ->
                delivery runtime ~sender:s.asn ~dst_ip:(Prefix.host prefix 9)
                  ~dst_port)
              [ 80; 9999 ])
          dsts)
      senders
  in
  let before = probe () in
  let fast_cls = Runtime.classifier runtime in
  ignore (Runtime.reoptimize runtime);
  let after = probe () in
  List.iteri
    (fun i (b, a) ->
      check_bool
        (Printf.sprintf "flow %d: fast path matches reoptimize" i)
        true
        (Option.map snd b = Option.map snd a))
    (List.combine before after);
  (* For flows whose tag survived re-optimization unchanged, the raw
     classifiers must agree pointwise too. *)
  let shared =
    List.concat_map
      (fun (b, a) ->
        match (b, a) with
        | Some (pb, _), Some (pa, _) when pb = pa -> [ pb ]
        | _ -> [])
      (List.combine before after)
  in
  check_bool "some packets survive with stable tags" true (shared <> []);
  check_bool "equivalent_on stable-tag packets" true
    (Classifier.equivalent_on fast_cls (Runtime.classifier runtime) shared)

(* The issue's regression: a 3-update burst on one prefix must install
   exactly one fast-path block reflecting the final route state. *)
let test_same_prefix_burst_single_block () =
  let runtime = Fig1.make_runtime () in
  let better pref =
    Update.announce
      (Route.make ~prefix:Fig1.p1
         ~next_hop:(Ipv4.of_string "172.0.0.5")
         ~as_path:[ Fig1.asn_d; Asn.of_int 65001 ]
         ~local_pref:pref ~learned_from:Fig1.asn_d ())
  in
  let updates =
    [ better 200; better 300; Update.withdraw ~peer:Fig1.asn_d Fig1.p1 ]
  in
  let stats = Runtime.handle_burst runtime updates in
  check_int "exactly one fast-path block" 1
    (Runtime.fast_path_block_count runtime);
  check_bool "every update changed a best route" true
    (List.for_all (fun (s : Runtime.update_stats) -> s.best_changed) stats);
  let flows runtime =
    List.map
      (fun dst_port ->
        match
          Fig1.fabric_packet runtime ~sender:Fig1.asn_a ~src_ip:"10.0.0.1"
            ~dst_ip:"20.0.1.9" ~dst_port ()
        with
        | None -> []
        | Some pkt -> List.sort compare (Fig1.deliveries runtime pkt))
      [ 80; 443; 9999 ]
  in
  let before = flows runtime in
  ignore (Runtime.reoptimize runtime);
  check_bool "burst result matches reoptimize on sampled packets" true
    (before = flows runtime);
  (* The withdrawal ended D's episode: default p1 traffic is back on C. *)
  check_bool "default flow delivered to C" true
    (List.mem [ (Fig1.asn_c, 0) ] before)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "sdx_parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map preserves order" `Quick test_pool_map_order;
          Alcotest.test_case "exceptions propagate" `Quick
            test_pool_map_exception;
          Alcotest.test_case "pools are reusable" `Quick test_pool_reusable;
        ] );
      ( "parallel compile",
        [
          Alcotest.test_case "parallel = sequential (workloads)" `Quick
            test_parallel_identical;
          Alcotest.test_case "2-domain smoke (Figure 1)" `Quick
            test_two_domain_smoke;
        ] );
      ( "optimize",
        qsuite [ prop_optimize_preserves_eval; prop_optimize_no_growth ] );
      ( "burst batching",
        [
          Alcotest.test_case "batch matches reoptimize" `Quick
            test_batch_matches_reoptimize;
          Alcotest.test_case "same-prefix burst installs one block" `Quick
            test_same_prefix_burst_single_block;
        ] );
    ]
