(* Tests for the sdx_race sanitizer.

   Four layers, mirroring the detector's architecture:

   - vector-clock algebra (qcheck): join is an associative, commutative,
     idempotent least upper bound for the leq partial order; tick is
     strictly monotone; concurrent is the symmetric complement of
     comparability.  These laws are what make the happens-before
     relation a sound race criterion.

   - interleaving explorer: same seed => identical visit order
     (first_trace, executions, pruned); the sleep-set reduction
     (dpor:true) finds exactly the races full enumeration finds; clean
     scenarios verify exhaustively, racy ones are flagged.

   - seeded mutations: every buggy variant in Race_suite.seeded is
     caught under Record mode (real domains) AND under the explorer,
     with the expected report kind and the tracked location's name in
     the report; every clean variant stays silent.

   - concurrency lint: raw primitives flagged, shimmed uses and
     comment/string mentions not, mutable fields in Sync-using modules
     require an sdx-owner: annotation. *)

module Sync = Sdx_sanitize.Sync
module Vclock = Sdx_sanitize.Vclock
module Explore = Sdx_sanitize.Explore
module Lint = Sdx_check.Lint
module Race_suite = Sdx_check.Race_suite

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains_sub hay needle =
  let ln = String.length needle and lh = String.length hay in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Vector-clock algebra                                               *)

let gen_clock =
  QCheck2.Gen.(
    map Vclock.of_array (array_size (int_range 0 4) (int_range 0 5)))

let gen_pair = QCheck2.Gen.pair gen_clock gen_clock
let gen_triple = QCheck2.Gen.triple gen_clock gen_clock gen_clock

let prop_join_assoc =
  QCheck2.Test.make ~name:"vclock: join associative" ~count:1000 gen_triple
    (fun (a, b, c) ->
      Vclock.equal (Vclock.join a (Vclock.join b c))
        (Vclock.join (Vclock.join a b) c))

let prop_join_comm =
  QCheck2.Test.make ~name:"vclock: join commutative" ~count:1000 gen_pair
    (fun (a, b) -> Vclock.equal (Vclock.join a b) (Vclock.join b a))

let prop_join_idem =
  QCheck2.Test.make ~name:"vclock: join idempotent" ~count:1000 gen_clock
    (fun a -> Vclock.equal (Vclock.join a a) a)

let prop_leq_refl =
  QCheck2.Test.make ~name:"vclock: leq reflexive" ~count:1000 gen_clock
    (fun a -> Vclock.leq a a)

let prop_leq_antisym =
  QCheck2.Test.make ~name:"vclock: leq antisymmetric" ~count:1000 gen_pair
    (fun (a, b) ->
      (not (Vclock.leq a b && Vclock.leq b a)) || Vclock.equal a b)

let prop_leq_trans =
  QCheck2.Test.make ~name:"vclock: leq transitive" ~count:1000 gen_triple
    (fun (a, b, c) ->
      (* condition the generated triple into a chain via join so the
         premise is non-vacuous on every sample *)
      let b = Vclock.join a b in
      let c = Vclock.join b c in
      Vclock.leq a b && Vclock.leq b c && Vclock.leq a c)

let prop_join_is_lub =
  QCheck2.Test.make ~name:"vclock: join is least upper bound" ~count:1000
    gen_triple (fun (a, b, c) ->
      let j = Vclock.join a b in
      Vclock.leq a j && Vclock.leq b j
      && Bool.equal (Vclock.leq j c) (Vclock.leq a c && Vclock.leq b c))

let prop_tick_monotone =
  QCheck2.Test.make ~name:"vclock: tick strictly monotone" ~count:1000
    QCheck2.Gen.(pair gen_clock (int_range 0 5))
    (fun (a, i) ->
      let a' = Vclock.tick a i in
      Vclock.leq a a'
      && (not (Vclock.leq a' a))
      && Vclock.get a' i = Vclock.get a i + 1)

let prop_concurrent =
  QCheck2.Test.make ~name:"vclock: concurrent = incomparable, symmetric"
    ~count:1000 gen_pair (fun (a, b) ->
      Bool.equal (Vclock.concurrent a b)
        ((not (Vclock.leq a b)) && not (Vclock.leq b a))
      && Bool.equal (Vclock.concurrent a b) (Vclock.concurrent b a))

let prop_of_array_get =
  QCheck2.Test.make ~name:"vclock: of_array/get roundtrip" ~count:1000
    QCheck2.Gen.(array_size (int_range 0 4) (int_range 0 5))
    (fun arr ->
      let c = Vclock.of_array arr in
      Array.for_all (fun ok -> ok)
        (Array.mapi (fun i v -> Vclock.get c i = v) arr)
      && Vclock.get c (Array.length arr) = 0)

let test_empty_bottom () =
  check_bool "empty <= empty" true Vclock.(leq empty empty);
  check_bool "empty <= any" true Vclock.(leq empty (of_array [| 3; 0; 7 |]));
  check_bool "normalized trailing zeros" true
    Vclock.(equal (of_array [| 1; 2; 0; 0 |]) (of_array [| 1; 2 |]))

(* ------------------------------------------------------------------ *)
(* Explorer: determinism, DPOR cross-validation, verdicts             *)

(* Two writers bump a shared location; [locked] guards the write with a
   mutex (race-free), otherwise the writes are concurrent (write-write
   race in some interleaving). *)
let counter_scenario ~locked () =
  let c = Sync.Tracked.create "test_race.counter" in
  let m = Sync.Mutex.create ~name:"test_race.counter.m" () in
  let work () =
    if locked then Sync.Mutex.protect m (fun () -> Sync.Tracked.write c)
    else Sync.Tracked.write c
  in
  let d1 = Sync.Domain.spawn ~name:"w1" work in
  let d2 = Sync.Domain.spawn ~name:"w2" work in
  Sync.Domain.join d1;
  Sync.Domain.join d2

let race_keys (r : Explore.result) =
  List.sort_uniq String.compare
    (List.map (fun (x : Sync.report) -> x.r_kind ^ "|" ^ x.r_location) r.races)

let test_explorer_clean () =
  let r = Explore.run (counter_scenario ~locked:true) in
  check_bool "locked counter ok" true (Explore.ok r);
  check_int "no races" 0 (List.length r.races);
  check_bool "exhaustive" false r.truncated;
  check_bool "explored several interleavings" true (r.executions > 1)

let test_explorer_racy () =
  let r = Explore.run (counter_scenario ~locked:false) in
  check_bool "unlocked counter not ok" false (Explore.ok r);
  check_bool "race found" true (r.races <> []);
  check_int "no deadlocks" 0 r.deadlocks;
  check_bool "exhaustive" false r.truncated;
  check_bool "race names the location" true
    (List.exists
       (fun (x : Sync.report) -> contains_sub x.r_location "test_race.counter")
       r.races);
  check_bool "race carries an interleaving" true
    (List.exists (fun (x : Sync.report) -> x.r_trace <> []) r.races)

let test_explorer_deterministic () =
  let run () = Explore.run ~seed:7 (counter_scenario ~locked:false) in
  let r1 = run () and r2 = run () in
  check_int "executions stable" r1.executions r2.executions;
  check_int "pruned stable" r1.pruned r2.pruned;
  check_int "max_depth stable" r1.max_depth r2.max_depth;
  Alcotest.(check (list string))
    "first trace identical" r1.first_trace r2.first_trace

let test_explorer_seed_independent () =
  (* the seed permutes visit order, never the verdict or the race set *)
  let a = Explore.run ~seed:0 (counter_scenario ~locked:false) in
  let b = Explore.run ~seed:11 (counter_scenario ~locked:false) in
  Alcotest.(check (list string)) "same race set" (race_keys a) (race_keys b);
  check_bool "same verdict" (Explore.ok a) (Explore.ok b);
  let c = Explore.run ~seed:0 (counter_scenario ~locked:true) in
  let d = Explore.run ~seed:11 (counter_scenario ~locked:true) in
  check_bool "clean under any seed" true (Explore.ok c && Explore.ok d)

let test_dpor_cross_check () =
  (* sleep-set reduction must agree with full enumeration on both the
     race set and the verdict, while never exploring more *)
  List.iter
    (fun locked ->
      let red = Explore.run ~dpor:true (counter_scenario ~locked) in
      let full = Explore.run ~dpor:false (counter_scenario ~locked) in
      Alcotest.(check (list string))
        "dpor finds the same races" (race_keys full) (race_keys red);
      check_bool "same verdict" (Explore.ok full) (Explore.ok red);
      check_bool "reduction explores no more than full" true
        (red.executions <= full.executions);
      check_bool "full enumeration prunes nothing" true (full.pruned = 0))
    [ true; false ]

(* ------------------------------------------------------------------ *)
(* Seeded mutations: Record mode (real domains) and the explorer      *)

let test_seeded_record () =
  List.iter
    (fun (sc : Race_suite.scenario) ->
      let buggy = Race_suite.run_record (sc.sc_run ~bug:true) in
      check_bool
        (sc.sc_name ^ ": buggy variant flagged under Record")
        true
        (List.exists
           (fun (r : Sync.report) -> contains_sub r.r_kind sc.sc_kind)
           buggy);
      check_bool
        (sc.sc_name ^ ": report names a race_suite location")
        true
        (List.exists
           (fun (r : Sync.report) -> contains_sub r.r_location "race_suite")
           buggy);
      let clean = Race_suite.run_record (sc.sc_run ~bug:false) in
      check_int (sc.sc_name ^ ": clean variant silent") 0 (List.length clean))
    Race_suite.seeded

let test_seeded_explorer () =
  List.iter
    (fun (sc : Race_suite.scenario) ->
      let buggy = Explore.run (sc.sc_run ~bug:true) in
      check_bool
        (sc.sc_name ^ ": explorer flags the buggy variant")
        true
        (List.exists
           (fun (r : Sync.report) -> contains_sub r.r_kind sc.sc_kind)
           buggy.races);
      check_bool (sc.sc_name ^ ": buggy exploration exhaustive") false
        buggy.truncated;
      let clean = Explore.run (sc.sc_run ~bug:false) in
      check_bool (sc.sc_name ^ ": explorer passes the clean variant") true
        (Explore.ok clean))
    Race_suite.seeded

let test_model_scenarios () =
  (* the two cheap real-structure models; the expensive pool-shutdown
     model runs under `sdxd race` (CI race job) instead *)
  check_bool "rcu snapshot model race-free" true
    (Explore.ok (Explore.run Race_suite.model_rcu_snapshot));
  check_bool "dls epoch model race-free" true
    (Explore.ok (Explore.run Race_suite.model_dls_epoch));
  let misuse = Explore.run Race_suite.model_rcu_misuse in
  check_bool "second snapshot builder violates the owner contract" true
    (List.exists
       (fun (r : Sync.report) ->
         contains_sub r.r_kind "single-writer violation")
       misuse.races)

(* ------------------------------------------------------------------ *)
(* Concurrency lint                                                   *)

let scan src = Lint.scan_source ~path:"synthetic.ml" src

let rules fs =
  List.sort_uniq String.compare (List.map (fun f -> f.Lint.lint_rule) fs)

let test_lint_raw_primitive () =
  let fs = scan "let () = Mutex.lock m\n" in
  Alcotest.(check (list string))
    "raw Mutex flagged" [ "raw-primitive" ] (rules fs);
  check_int "on the right line" 1 (List.hd fs).Lint.lint_line;
  check_int "raw Domain.spawn flagged" 1
    (List.length (scan "let d = Domain.spawn f\n"));
  check_int "raw Atomic flagged" 1
    (List.length (scan "let a = Atomic.make 0\n"))

let test_lint_shim_allowed () =
  check_int "Sync.Mutex passes" 0
    (List.length (scan "let () = Sync.Mutex.lock m\n"));
  check_int "Sdx_sanitize.Sync.Atomic passes" 0
    (List.length (scan "let a = Sdx_sanitize.Sync.Atomic.make 0\n"));
  check_int "recommended_domain_count allowed" 0
    (List.length (scan "let n = Domain.recommended_domain_count ()\n"));
  check_int "RMutex is not Mutex" 0
    (List.length (scan "let () = RMutex.lock m\n"))

let test_lint_comments_strings () =
  check_int "comment mention passes" 0
    (List.length (scan "(* grab Mutex.lock first *)\nlet x = 1\n"));
  check_int "string mention passes" 0
    (List.length (scan "let s = \"Atomic.get is racy\"\n"));
  check_int "quoted-string mention passes" 0
    (List.length (scan "let s = {|Domain.spawn|}\n"));
  check_int "nested comment passes" 0
    (List.length (scan "(* outer (* Condition.wait *) still out *)\n"))

let test_lint_unowned_mutable () =
  let unowned =
    "module Sync = Sdx_sanitize.Sync\ntype t = { mutable x : int }\n"
  in
  Alcotest.(check (list string))
    "mutable without owner flagged" [ "unowned-mutable" ]
    (rules (scan unowned));
  let owned =
    "module Sync = Sdx_sanitize.Sync\n\
     type t = {\n\
    \  (* sdx-owner: guarded by [m] *)\n\
    \  mutable x : int;\n\
     }\n"
  in
  check_int "annotated mutable passes" 0 (List.length (scan owned));
  let doc_above =
    "module Sync = Sdx_sanitize.Sync\n\
     (* sdx-owner: coordinator only *)\n\
     type t = { mutable x : int }\n"
  in
  check_int "annotation attached above the item passes" 0
    (List.length (scan doc_above));
  let no_sync = "type t = { mutable x : int }\n" in
  check_int "sequential module exempt" 0 (List.length (scan no_sync));
  let mli =
    "module Sync = Sdx_sanitize.Sync\ntype t = { mutable x : int }\n"
  in
  check_int "mli exempt from the mutable rule" 0
    (List.length (Lint.scan_source ~path:"synthetic.mli" mli))

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "race"
    [
      ( "vclock",
        qsuite
          [
            prop_join_assoc;
            prop_join_comm;
            prop_join_idem;
            prop_leq_refl;
            prop_leq_antisym;
            prop_leq_trans;
            prop_join_is_lub;
            prop_tick_monotone;
            prop_concurrent;
            prop_of_array_get;
          ]
        @ [ Alcotest.test_case "empty is bottom" `Quick test_empty_bottom ] );
      ( "explorer",
        [
          Alcotest.test_case "clean scenario verifies" `Quick
            test_explorer_clean;
          Alcotest.test_case "racy scenario flagged" `Quick test_explorer_racy;
          Alcotest.test_case "same seed, same exploration" `Quick
            test_explorer_deterministic;
          Alcotest.test_case "seed never changes the verdict" `Quick
            test_explorer_seed_independent;
          Alcotest.test_case "dpor = full enumeration" `Quick
            test_dpor_cross_check;
        ] );
      ( "seeded",
        [
          Alcotest.test_case "record mode catches every mutation" `Quick
            test_seeded_record;
          Alcotest.test_case "explorer catches every mutation" `Quick
            test_seeded_explorer;
          Alcotest.test_case "real-structure models" `Quick
            test_model_scenarios;
        ] );
      ( "lint",
        [
          Alcotest.test_case "raw primitives flagged" `Quick
            test_lint_raw_primitive;
          Alcotest.test_case "shimmed uses pass" `Quick test_lint_shim_allowed;
          Alcotest.test_case "comments and strings ignored" `Quick
            test_lint_comments_strings;
          Alcotest.test_case "unowned mutable fields" `Quick
            test_lint_unowned_mutable;
        ] );
    ]
