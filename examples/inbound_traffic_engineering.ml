(* Inbound traffic engineering (§2, §3.1).

   BGP gives an AS almost no control over how traffic *enters* it —
   operators resort to AS-path prepending and selective advertisements.
   At an SDX, AS B simply installs forwarding rules on its virtual
   switch: traffic from sources in 0.0.0.0/1 enters on port B1, the rest
   on port B2.  This example shows the split working on default traffic,
   then AS B rebalancing by swapping the policy at runtime — no BGP
   gymnastics, no global route-table pollution.

   Run with: dune exec examples/inbound_traffic_engineering.exe *)

open Sdx_net
open Sdx_policy
open Sdx_bgp
open Sdx_core

let mac = Mac.of_string
let ip = Ipv4.of_string
let pfx = Prefix.of_string
let asn_a = Asn.of_int 100
let asn_b = Asn.of_int 200
let b_prefix = pfx "20.7.0.0/16"

let split_policy =
  [
    Ppolicy.fwd (Pred.src_ip (pfx "0.0.0.0/1")) (Ppolicy.Phys 0);
    Ppolicy.fwd (Pred.src_ip (pfx "128.0.0.0/1")) (Ppolicy.Phys 1);
  ]

(* Rebalanced: move everything except 0.0.0.0/2 onto port B2. *)
let rebalanced_policy =
  [
    Ppolicy.fwd (Pred.src_ip (pfx "0.0.0.0/2")) (Ppolicy.Phys 0);
    Ppolicy.fwd Pred.True (Ppolicy.Phys 1);
  ]

let build inbound =
  let a = Participant.make ~asn:asn_a ~ports:[ (mac "0a:00:00:00:0a:01", ip "172.3.0.1") ] () in
  let b =
    Participant.make ~asn:asn_b
      ~ports:
        [
          (mac "0b:00:00:00:0b:01", ip "172.3.0.2");
          (mac "0b:00:00:00:0b:02", ip "172.3.0.3");
        ]
      ~inbound ()
  in
  let config = Config.make [ a; b ] in
  ignore (Config.announce config ~peer:asn_b ~port:0 b_prefix);
  Sdx_fabric.Network.create (Runtime.create config)

let sources =
  [ "9.0.0.1"; "55.1.2.3"; "77.0.0.9"; "130.0.0.1"; "200.200.1.1"; "99.9.9.9" ]

let show net =
  List.iter
    (fun src ->
      let packet =
        Packet.make ~src_ip:(ip src) ~dst_ip:(ip "20.7.1.1") ~dst_port:80 ()
      in
      match Sdx_fabric.Network.inject net ~from:asn_a packet with
      | [ (d : Sdx_fabric.Network.delivery) ] ->
          Format.printf "  traffic from %-12s enters AS B on port B%d@." src
            (d.receiver_port + 1)
      | _ -> Format.printf "  traffic from %-12s dropped@." src)
    sources

(* Every compilation in this example is statically verified by
   sdx_check (isolation, BGP consistency, loop freedom); an error
   finding aborts the run. *)
let () = Sdx_check.Check.install_runtime_hook ~fail:true ()

let () =
  Format.printf "=== Inbound traffic engineering ===@.@.";
  Format.printf "AS B's inbound policy:@.  %a@.@." Ppolicy.pp split_policy;
  let net = build split_policy in
  show net;
  Format.printf
    "@.AS B rebalances (no prepending, no selective advertisements):@.  %a@.@."
    Ppolicy.pp rebalanced_policy;
  let net = build rebalanced_policy in
  show net;
  Format.printf "@.Inbound port selection is under AS B's direct control.@."
