(* Quickstart: the running example of the paper's Figure 1.

   AS A peers with AS B and AS C at the SDX.  A's outbound policy sends
   web traffic via B and HTTPS via C; B's inbound policy splits traffic
   across its two ports by source address; everything else follows the
   BGP best routes computed by the route server.

   Run with: dune exec examples/quickstart.exe *)

open Sdx_net
open Sdx_policy
open Sdx_bgp
open Sdx_core

let mac = Mac.of_string
let ip = Ipv4.of_string
let pfx = Prefix.of_string

(* Prefixes p1..p5 of Figure 1b. *)
let p1 = pfx "20.0.1.0/24"
let p2 = pfx "20.0.2.0/24"
let p3 = pfx "20.0.3.0/24"
let p4 = pfx "20.0.4.0/24"
let p5 = pfx "20.0.5.0/24"

let asn_a = Asn.of_int 100
let asn_b = Asn.of_int 200
let asn_c = Asn.of_int 300
let asn_d = Asn.of_int 400

(* AS A: application-specific peering —
     match(dstport = 80)  >> fwd(B)
   + match(dstport = 443) >> fwd(C) *)
let participant_a =
  Participant.make ~asn:asn_a
    ~ports:[ (mac "aa:aa:aa:aa:aa:01", ip "172.0.0.1") ]
    ~outbound:
      [
        Ppolicy.fwd (Pred.dst_port 80) (Ppolicy.Peer asn_b);
        Ppolicy.fwd (Pred.dst_port 443) (Ppolicy.Peer asn_c);
      ]
    ()

(* AS B: inbound traffic engineering over its two ports —
     match(srcip = 0.0.0.0/1)   >> fwd(B1)
   + match(srcip = 128.0.0.0/1) >> fwd(B2) *)
let participant_b =
  Participant.make ~asn:asn_b
    ~ports:
      [
        (mac "bb:bb:bb:bb:bb:01", ip "172.0.0.2");
        (mac "bb:bb:bb:bb:bb:02", ip "172.0.0.3");
      ]
    ~inbound:
      [
        Ppolicy.fwd (Pred.src_ip (pfx "0.0.0.0/1")) (Ppolicy.Phys 0);
        Ppolicy.fwd (Pred.src_ip (pfx "128.0.0.0/1")) (Ppolicy.Phys 1);
      ]
    ()

let participant_c =
  Participant.make ~asn:asn_c
    ~ports:[ (mac "cc:cc:cc:cc:cc:01", ip "172.0.0.4") ]
    ()

let participant_d =
  Participant.make ~asn:asn_d
    ~ports:[ (mac "dd:dd:dd:dd:dd:01", ip "172.0.0.5") ]
    ()

(* Every compilation in this example is statically verified by
   sdx_check (isolation, BGP consistency, loop freedom); an error
   finding aborts the run. *)
let () = Sdx_check.Check.install_runtime_hook ~fail:true ()

let () =
  let config =
    Config.make [ participant_a; participant_b; participant_c; participant_d ]
  in
  (* Figure 1b's announcements: B announces p1-p3, C announces p1-p4 with
     shorter paths for p1/p2 (so their best routes point at C), D
     announces p5, which no policy touches. *)
  let far1 = Asn.of_int 65001 and far2 = Asn.of_int 65002 in
  List.iter
    (fun (peer, prefix, as_path) ->
      ignore (Config.announce config ~peer ~port:0 ~as_path prefix))
    [
      (asn_b, p1, [ asn_b; far1; far2 ]);
      (asn_b, p2, [ asn_b; far1; far2 ]);
      (asn_b, p3, [ asn_b; far1 ]);
      (asn_c, p1, [ asn_c; far1 ]);
      (asn_c, p2, [ asn_c; far1 ]);
      (asn_c, p3, [ asn_c; far1; far2 ]);
      (asn_c, p4, [ asn_c; far1 ]);
      (asn_d, p5, [ asn_d; far1 ]);
    ];
  let runtime = Runtime.create config in
  let compiled = Runtime.compiled runtime in

  Format.printf "=== SDX quickstart (Figure 1) ===@.@.";
  List.iter
    (fun p -> Format.printf "%a@.@." Participant.pp p)
    (Config.participants config);

  Format.printf "--- Prefix groups (forwarding equivalence classes) ---@.";
  List.iter
    (fun (g : Compile.group) ->
      Format.printf "group %d: vnh=%a vmac=%a prefixes={%s}@." g.id Ipv4.pp
        g.vnh Mac.pp g.vmac
        (String.concat ", " (List.map Prefix.to_string g.prefixes)))
    (Compile.groups compiled);

  Format.printf "@.--- Routes re-advertised to AS A ---@.";
  List.iter
    (fun prefix ->
      match Runtime.announcement runtime ~receiver:asn_a prefix with
      | Some r -> Format.printf "%a@." Route.pp r
      | None -> Format.printf "%a: (no route)@." Prefix.pp prefix)
    [ p1; p2; p3; p4; p5 ];

  Format.printf "@.--- Fabric flow rules (%d) ---@."
    (Runtime.rule_count runtime);
  Format.printf "%a@." Classifier.pp (Runtime.classifier runtime);

  (* Exercise the data plane end to end. *)
  let network = Sdx_fabric.Network.create runtime in
  let show ~label ~dst_ip ~dst_port ~src_ip =
    let packet =
      Packet.make ~src_ip:(ip src_ip) ~dst_ip:(ip dst_ip) ~dst_port ()
    in
    let deliveries = Sdx_fabric.Network.inject network ~from:asn_a packet in
    match deliveries with
    | [] -> Format.printf "%-28s -> dropped@." label
    | ds ->
        List.iter
          (fun (d : Sdx_fabric.Network.delivery) ->
            Format.printf "%-28s -> %s port %d@." label
              (Asn.to_string d.receiver) d.receiver_port)
          ds
  in
  Format.printf "@.--- Packets sent by AS A ---@.";
  show ~label:"web to p1 (low src)" ~dst_ip:"20.0.1.9" ~dst_port:80
    ~src_ip:"10.0.0.1";
  show ~label:"web to p1 (high src)" ~dst_ip:"20.0.1.9" ~dst_port:80
    ~src_ip:"192.168.0.1";
  show ~label:"https to p4" ~dst_ip:"20.0.4.9" ~dst_port:443 ~src_ip:"10.0.0.1";
  show ~label:"web to p4 (B exports none)" ~dst_ip:"20.0.4.9" ~dst_port:80
    ~src_ip:"10.0.0.1";
  show ~label:"other to p1 (default, C)" ~dst_ip:"20.0.1.9" ~dst_port:9999
    ~src_ip:"10.0.0.1";
  show ~label:"other to p5 (default, D)" ~dst_ip:"20.0.5.9" ~dst_port:9999
    ~src_ip:"10.0.0.1"
