(* Anycast across multiple SDX locations (§3.2).

   "AS D could announce the anycast prefix at multiple SDXs that each
   run the load-balancing application, to ensure that all client
   requests flow through a nearby SDX."

   Here the same remote tenant participates at two exchanges — one on
   each coast — originating the same anycast service prefix at both and
   installing the same load-balancing policy.  Clients at each exchange
   are served by their local instance; when the tenant drains the west
   instance (one policy change at one exchange), only west-coast clients
   move, and they move without any DNS TTL wait.

   Run with: dune exec examples/anycast_multi_sdx.exe *)

open Sdx_net
open Sdx_policy
open Sdx_bgp
open Sdx_core

let mac = Mac.of_string
let ip = Ipv4.of_string
let pfx = Prefix.of_string
let tenant = Asn.of_int 14618
let anycast_prefix = pfx "74.125.1.0/24"
let service = ip "74.125.1.1"

(* One exchange: a client-side AS, a transit AS hosting the tenant's
   instances behind it, and the remote tenant originating the anycast
   prefix with a rewrite policy toward [instance]. *)
let build_exchange ~label ~client_asn ~transit_asn ~instance_prefix ~instance =
  let client =
    Participant.make ~asn:client_asn
      ~ports:[ (mac (Printf.sprintf "0a:0a:0a:0a:%02x:01" label), ip (Printf.sprintf "172.%d.0.1" label)) ]
      ()
  in
  let transit =
    Participant.make ~asn:transit_asn
      ~ports:[ (mac (Printf.sprintf "0b:0b:0b:0b:%02x:01" label), ip (Printf.sprintf "172.%d.0.2" label)) ]
      ()
  in
  let tenant_participant =
    Participant.make ~asn:tenant ~ports:[]
      ~inbound:
        [
          Ppolicy.rewrite
            (Pred.dst_ip (Prefix.make service 32))
            (Mods.make ~dst_ip:instance ());
        ]
      ~originated:[ anycast_prefix ] ()
  in
  let config = Config.make [ client; transit; tenant_participant ] in
  ignore (Config.announce config ~peer:transit_asn ~port:0 instance_prefix);
  Sdx_fabric.Network.create (Runtime.create config)

let probe net ~from =
  let packet =
    Packet.make ~src_ip:(ip "198.51.100.7") ~dst_ip:service ~dst_port:443 ()
  in
  match Sdx_fabric.Network.inject net ~from packet with
  | [ (d : Sdx_fabric.Network.delivery) ] ->
      Printf.sprintf "served by instance %s (via %s)"
        (Ipv4.to_string d.packet.dst_ip)
        (Asn.to_string d.receiver)
  | [] -> "dropped"
  | _ -> "multicast?"

(* Every compilation in this example is statically verified by
   sdx_check (isolation, BGP consistency, loop freedom); an error
   finding aborts the run. *)
let () = Sdx_check.Check.install_runtime_hook ~fail:true ()

let () =
  Format.printf "=== One anycast service at two SDX locations ===@.@.";
  let east_instance = ip "184.72.0.10" in
  let west_instance = ip "184.108.0.10" in
  let east =
    build_exchange ~label:10 ~client_asn:(Asn.of_int 701)
      ~transit_asn:(Asn.of_int 3356) ~instance_prefix:(pfx "184.72.0.0/16")
      ~instance:east_instance
  in
  let west =
    build_exchange ~label:11 ~client_asn:(Asn.of_int 209)
      ~transit_asn:(Asn.of_int 2914) ~instance_prefix:(pfx "184.108.0.0/16")
      ~instance:west_instance
  in
  Format.printf "Tenant %s originates %s at both exchanges.@.@."
    (Asn.to_string tenant)
    (Prefix.to_string anycast_prefix);
  Format.printf "east client -> %s@." (probe east ~from:(Asn.of_int 701));
  Format.printf "west client -> %s@.@." (probe west ~from:(Asn.of_int 209));

  (* Drain the west instance: re-point west's policy at the east
     instance (which west reaches through its own transit). *)
  Format.printf "--- Draining the west instance (policy change at one SDX) ---@.";
  let west_drained =
    build_exchange ~label:11 ~client_asn:(Asn.of_int 209)
      ~transit_asn:(Asn.of_int 2914) ~instance_prefix:(pfx "184.0.0.0/8")
      ~instance:east_instance
  in
  Format.printf "east client -> %s (unchanged)@." (probe east ~from:(Asn.of_int 701));
  Format.printf "west client -> %s@.@." (probe west_drained ~from:(Asn.of_int 209));
  assert (probe east ~from:(Asn.of_int 701) |> String.length > 0);
  Format.printf
    "Each client is served through its nearby exchange, and shifting load@.\
     is one policy change at one SDX — no DNS caches to wait out.@."
