(* Wide-area server load balancing (§2, §3.1, §5.2, Figure 4b/5b).

   A remote AWS tenant — a participant with no physical port at the
   exchange — originates an anycast service prefix at the SDX and
   rewrites request destinations to concrete instances in the middle of
   the network, replacing slow DNS-based load balancing.  At t=246s it
   installs a policy steering one client source to instance #2.

   Run with: dune exec examples/wide_area_load_balancer.exe *)

open Sdx_fabric

(* Every compilation in this example is statically verified by
   sdx_check (isolation, BGP consistency, loop freedom); an error
   finding aborts the run. *)
let () = Sdx_check.Check.install_runtime_hook ~fail:true ()

let () =
  Format.printf "=== Wide-area load balancer (Figure 5b) ===@.@.";
  Format.printf
    "The tenant (AS 14618, remote) originates 74.125.1.0/24 at the SDX.@.\
     Base policy:  match(dstip=74.125.1.1) >> mod(dstip=instance#1)@.\
     At t=246s:    match(dstip=74.125.1.1 && srcip=204.57.0.67) >> \
     mod(dstip=instance#2)@.@.";
  let scenario = Scenarios.Fig5b.scenario () in
  let samples = Deployment.run ~sample_every:1 scenario in
  Format.printf "%8s %15s %15s@." "t(s)" "instance #1" "instance #2";
  List.iter
    (fun (s : Deployment.sample) ->
      if s.time mod 40 = 0 then
        Format.printf "%8d %11.1f Mbps %11.1f Mbps@." s.time
          (Deployment.rate s "AWS Instance #1")
          (Deployment.rate s "AWS Instance #2"))
    samples;
  let at t = List.find (fun (s : Deployment.sample) -> s.time = t) samples in
  assert (Deployment.rate (at 120) "AWS Instance #1" = 2.0);
  assert (Deployment.rate (at 400) "AWS Instance #1" = 1.0);
  assert (Deployment.rate (at 400) "AWS Instance #2" = 1.0);
  Format.printf
    "@.At t=246s the flow from 204.57.0.67 shifts to instance #2, as in \
     Figure 5b.@."
