(* The SDX over real BGP messages (§5.1's route-server pipeline).

   Participants' border routers speak ordinary RFC 4271 BGP — the SDX
   works with unmodified routers.  This example drives the whole loop at
   the byte level: sessions are negotiated (OPEN/KEEPALIVE), a route
   arrives as an encoded UPDATE, the runtime recompiles through the fast
   path, and the other participants receive re-advertisements whose
   next hops are virtual — the control-plane signal that makes their
   routers tag data packets with the prefix group's virtual MAC.

   Run with: dune exec examples/bgp_gateway.exe *)

open Sdx_net
open Sdx_bgp
open Sdx_core

let mac = Mac.of_string
let ip = Ipv4.of_string
let pfx = Prefix.of_string
let asn_a = Asn.of_int 100
let asn_b = Asn.of_int 200

(* Every compilation in this example is statically verified by
   sdx_check (isolation, BGP consistency, loop freedom); an error
   finding aborts the run. *)
let () = Sdx_check.Check.install_runtime_hook ~fail:true ()

let () =
  Format.printf "=== The SDX speaking real BGP ===@.@.";
  let a =
    Participant.make ~asn:asn_a
      ~ports:[ (mac "aa:00:00:00:00:31", ip "172.2.0.1") ]
      ~outbound:
        [ Ppolicy.fwd (Sdx_policy.Pred.dst_port 80) (Ppolicy.Peer asn_b) ]
      ()
  in
  let b =
    Participant.make ~asn:asn_b
      ~ports:[ (mac "bb:00:00:00:00:31", ip "172.2.0.2") ]
      ()
  in
  let runtime = Runtime.create (Config.make [ a; b ]) in
  let gw = Gateway.create runtime in
  Gateway.connect_all gw;

  (* The participants' routers (client side of each session). *)
  let router asn =
    let p =
      Peer.create
        ~local:{ Wire.asn; hold_time = 90; bgp_id = ip "192.0.2.9" }
        ~peer_asn:(Asn.of_int 65535)
    in
    Peer.connect p;
    p
  in
  let router_a = router asn_a and router_b = router asn_b in
  let learned_by_a = ref [] in
  let shuttle () =
    for _ = 1 to 6 do
      List.iter
        (fun (asn, client, sink) ->
          List.iter
            (fun data ->
              Format.printf "  %s -> SDX: %d bytes%s@." (Asn.to_string asn)
                (Bytes.length data)
                (match Wire.decode data with
                | Ok msg -> Format.asprintf "  (%a)" Wire.pp msg
                | Error _ -> "");
              ignore (Result.get_ok (Gateway.deliver gw ~from:asn data)))
            (Peer.pending_output client);
          List.iter
            (fun data ->
              Format.printf "  SDX -> %s: %d bytes%s@." (Asn.to_string asn)
                (Bytes.length data)
                (match Wire.decode data with
                | Ok msg -> Format.asprintf "  (%a)" Wire.pp msg
                | Error _ -> "");
              match Peer.feed client data with
              | Ok us -> sink := !sink @ us
              | Error e -> failwith e)
            (Gateway.outbox gw asn))
        [ (asn_a, router_a, learned_by_a); (asn_b, router_b, ref []) ]
    done
  in
  Format.printf "--- Session negotiation ---@.";
  shuttle ();
  Format.printf "@.Sessions established: %s@.@."
    (String.concat ", " (List.map Asn.to_string (Gateway.established gw)));

  Format.printf "--- AS B announces 20.0.1.0/24 over its session ---@.";
  Peer.send_update router_b
    (Update.announce
       (Route.make ~prefix:(pfx "20.0.1.0/24") ~next_hop:(ip "172.2.0.2")
          ~as_path:[ asn_b; Asn.of_int 65001 ]
          ~learned_from:asn_b ()));
  shuttle ();

  Format.printf "@.--- What AS A's router learned ---@.";
  List.iter
    (fun u ->
      match u with
      | Update.Announce (r : Route.t) ->
          Format.printf "  %a@." Route.pp r;
          let virtual_nh = Prefix.mem r.next_hop (pfx "172.16.0.0/12") in
          Format.printf "  next hop %s is %s@."
            (Ipv4.to_string r.next_hop)
            (if virtual_nh then "a VIRTUAL next hop (the VNH tag channel)"
             else "a real interface");
          (match Sdx_arp.Responder.query (Runtime.arp runtime) r.next_hop with
          | Some vmac ->
              Format.printf
                "  the controller's ARP responder answers: %s is-at %s (the \
                 prefix group's VMAC)@."
                (Ipv4.to_string r.next_hop) (Mac.to_string vmac)
          | None -> ());
          assert virtual_nh
      | Update.Withdraw _ -> ())
    !learned_by_a;
  Format.printf
    "@.AS A's unmodified router will now resolve that next hop via ARP and@.\
     tag its packets with the virtual MAC — one fabric rule per prefix@.\
     group, no matter how many prefixes the group holds.@."
