(* Redirection through middleboxes (§2) with traffic grouped on BGP
   attributes (§3.2), and service chaining (§8).

   A transit AS carries YouTube's prefixes at the exchange.  The paper's
   example policy:

     YouTubePrefixes = RIB.filter('as_path', .*43515$)
     match(srcip={YouTubePrefixes}) >> fwd(E1)

   Here the transit AS steers all traffic *from* YouTube's address space
   through a video transcoder hosted at the SDX before it continues to
   the eyeball network — and then through a second middlebox (a traffic
   scrubber), demonstrating a two-stage service chain.

   Run with: dune exec examples/middlebox_redirection.exe *)

open Sdx_net
open Sdx_policy
open Sdx_bgp
open Sdx_core

let mac = Mac.of_string
let ip = Ipv4.of_string
let pfx = Prefix.of_string
let asn_transit = Asn.of_int 3356
let asn_eyeball = Asn.of_int 7922
let asn_transcoder = Asn.of_int 64512 (* middlebox host 1 *)
let asn_scrubber = Asn.of_int 64513 (* middlebox host 2 *)
let asn_youtube = Asn.of_int 43515
let youtube_pfx = pfx "208.65.152.0/22"
let other_pfx = pfx "198.51.0.0/16"
let eyeball_pfx = pfx "73.0.0.0/8"

(* Every compilation in this example is statically verified by
   sdx_check (isolation, BGP consistency, loop freedom); an error
   finding aborts the run. *)
let () = Sdx_check.Check.install_runtime_hook ~fail:true ()

let () =
  Format.printf "=== Middlebox redirection and service chaining ===@.@.";
  (* Wire the exchange: a transit AS, an eyeball, and two middlebox
     hosts that announce nothing. *)
  let transit0 =
    Participant.make ~asn:asn_transit ~ports:[ (mac "0a:0a:0a:0a:0a:01", ip "172.5.0.1") ] ()
  in
  let eyeball =
    Participant.make ~asn:asn_eyeball ~ports:[ (mac "0b:0b:0b:0b:0b:01", ip "172.5.0.2") ] ()
  in
  let transcoder_host =
    Participant.make ~asn:asn_transcoder
      ~ports:[ (mac "0c:0c:0c:0c:0c:01", ip "172.5.0.3") ]
      (* Stage 2 of the chain: after transcoding, hand YouTube traffic to
         the scrubber. *)
      ~outbound:[ Ppolicy.steer (Pred.src_ip youtube_pfx) asn_scrubber ]
      ()
  in
  let scrubber_host =
    Participant.make ~asn:asn_scrubber
      ~ports:[ (mac "0d:0d:0d:0d:0d:01", ip "172.5.0.4") ]
      ()
  in
  let config = Config.make [ transit0; eyeball; transcoder_host; scrubber_host ] in
  (* The transit AS carries YouTube's prefixes (AS path ending at
     43515) plus unrelated space; the eyeball announces its own. *)
  ignore
    (Config.announce config ~peer:asn_transit ~port:0
       ~as_path:[ asn_transit; asn_youtube ] youtube_pfx);
  ignore
    (Config.announce config ~peer:asn_transit ~port:0
       ~as_path:[ asn_transit; Asn.of_int 65010 ] other_pfx);
  ignore (Config.announce config ~peer:asn_eyeball ~port:0 eyeball_pfx);

  (* The §3.2 policy: derive the YouTube prefix list from the RIB with an
     AS-path regular expression, then steer matching sources through the
     transcoder. *)
  let server = Config.server config in
  let regex = As_path_regex.compile ".*43515$" in
  let youtube_prefixes =
    Route_server.filter_prefixes_by_as_path server ~receiver:asn_eyeball regex
  in
  Format.printf "YouTubePrefixes = RIB.filter('as_path', .*43515$) = {%s}@.@."
    (String.concat ", " (List.map Prefix.to_string youtube_prefixes));
  let steering_pred =
    Pred.disj (List.map Pred.src_ip youtube_prefixes)
  in
  let transit =
    { transit0 with outbound = [ Ppolicy.steer steering_pred asn_transcoder ] }
  in
  let config = Config.make [ transit; eyeball; transcoder_host; scrubber_host ] in
  ignore
    (Config.announce config ~peer:asn_transit ~port:0
       ~as_path:[ asn_transit; asn_youtube ] youtube_pfx);
  ignore
    (Config.announce config ~peer:asn_transit ~port:0
       ~as_path:[ asn_transit; Asn.of_int 65010 ] other_pfx);
  ignore (Config.announce config ~peer:asn_eyeball ~port:0 eyeball_pfx);
  let runtime = Runtime.create config in
  let net = Sdx_fabric.Network.create runtime in
  (* Attach the middlebox functions behind their hosts' ports: the
     transcoder rewrites the video stream's port, the scrubber drops a
     known-bad source. *)
  Sdx_fabric.Network.attach_middlebox net asn_transcoder
    (Sdx_fabric.Middlebox.transcoder ~to_port:8080);
  Sdx_fabric.Network.attach_middlebox net asn_scrubber
    (Sdx_fabric.Middlebox.scrubber ~block:(fun p ->
         Ipv4.equal p.src_ip (ip "208.65.153.66")));

  let send ~label ~src =
    let packet =
      Packet.make ~src_ip:(ip src) ~dst_ip:(ip "73.1.2.3")
        ~proto:Packet.proto_tcp ~src_port:443 ~dst_port:1935 ()
    in
    match Sdx_fabric.Network.inject net ~from:asn_transit packet with
    | [] -> Format.printf "%-34s -> scrubbed (dropped)@." label
    | ds ->
        List.iter
          (fun (d : Sdx_fabric.Network.delivery) ->
            Format.printf "%-34s -> %s port %d, dst_port=%d@." label
              (Asn.to_string d.receiver) d.receiver_port d.packet.dst_port)
          ds
  in
  Format.printf "Traffic entering from %s toward the eyeball:@."
    (Asn.to_string asn_transit);
  send ~label:"from YouTube (208.65.152.7)" ~src:"208.65.152.7";
  send ~label:"from YouTube attacker (.153.66)" ~src:"208.65.153.66";
  send ~label:"from unrelated space (198.51.7.7)" ~src:"198.51.7.7";
  Format.printf
    "@.YouTube-sourced traffic traversed transcoder -> scrubber -> eyeball@.\
     (dst_port rewritten 1935 -> 8080 on the way); the attack source was@.\
     scrubbed; unrelated traffic went straight to the eyeball untouched.@."
