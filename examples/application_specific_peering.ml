(* Application-specific peering (§2, §5.2, Figure 4a/5a).

   AS C can reach an AWS prefix through both AS A and AS B.  BGP picks
   AS A.  At t=565s, AS C installs an SDX policy diverting its web
   (port-80) traffic through AS B while everything else keeps following
   BGP; at t=1253s AS B's route is withdrawn and the SDX immediately
   pulls the diverted traffic back to AS A, keeping the data plane in
   sync with the control plane.

   Run with: dune exec examples/application_specific_peering.exe *)

open Sdx_fabric

(* Every compilation in this example is statically verified by
   sdx_check (isolation, BGP consistency, loop freedom); an error
   finding aborts the run. *)
let () = Sdx_check.Check.install_runtime_hook ~fail:true ()

let () =
  Format.printf "=== Application-specific peering (Figure 5a) ===@.@.";
  let scenario = Scenarios.Fig5a.scenario () in
  Format.printf
    "AS C's policy (installed at t=565s):@.  match(dstip=54.192.0.0/16 && \
     dstport=80) >> fwd(AS B)@.@.";
  let samples = Deployment.run ~sample_every:1 scenario in
  Format.printf "%8s %12s %12s@." "t(s)" "via AS-A" "via AS-B";
  List.iter
    (fun (s : Deployment.sample) ->
      if s.time mod 100 = 0 then
        Format.printf "%8d %8.1f Mbps %8.1f Mbps@." s.time
          (Deployment.rate s "AS-A") (Deployment.rate s "AS-B"))
    samples;
  let at t = List.find (fun (s : Deployment.sample) -> s.time = t) samples in
  let phase name t =
    let s = at t in
    Format.printf "@.%s (t=%ds): A=%.0f Mbps, B=%.0f Mbps@." name t
      (Deployment.rate s "AS-A") (Deployment.rate s "AS-B")
  in
  phase "Before the policy" 300;
  phase "Policy active (port 80 diverted)" 900;
  phase "After AS B withdrew its route" 1500;
  (* The shape the paper's Figure 5a shows. *)
  assert (Deployment.rate (at 300) "AS-A" = 3.0);
  assert (Deployment.rate (at 900) "AS-B" = 1.0);
  assert (Deployment.rate (at 1500) "AS-B" = 0.0);
  Format.printf "@.All traffic shifts match the paper's Figure 5a.@."
