(* Reactive DoS mitigation (§2, "redirection through middleboxes").

   "When traffic measurements suggest a possible denial-of-service
   attack, an ISP can [...] forward it through a traffic scrubber" — but
   with BGP the ISP must hijack far more traffic than necessary.  At the
   SDX, the defense is surgical: telemetry identifies the offending
   source, and a steering policy sends only that source's traffic through
   the scrubber, leaving everything else untouched.

   This example runs a small control loop: generate traffic, watch the
   counters, and when one source crosses a threshold, install the
   steering policy and keep serving legitimate clients.

   Run with: dune exec examples/dos_mitigation.exe *)

open Sdx_net
open Sdx_policy
open Sdx_bgp
open Sdx_core

let mac = Mac.of_string
let ip = Ipv4.of_string
let pfx = Prefix.of_string
let asn_transit = Asn.of_int 3356
let asn_victim = Asn.of_int 7922
let asn_scrubber = Asn.of_int 64513
let victim_pfx = pfx "73.0.0.0/8"
let attacker = ip "185.0.0.66"
let legit_clients = [ ip "8.8.4.4"; ip "9.9.9.9"; ip "185.0.0.7" ]

let build_network steering =
  let transit =
    Participant.make ~asn:asn_transit
      ~ports:[ (mac "0a:00:00:00:00:21", ip "172.6.0.1") ]
      ~outbound:steering ()
  in
  let victim =
    Participant.make ~asn:asn_victim
      ~ports:[ (mac "0b:00:00:00:00:21", ip "172.6.0.2") ]
      ()
  in
  let scrubber =
    Participant.make ~asn:asn_scrubber
      ~ports:[ (mac "0c:00:00:00:00:21", ip "172.6.0.3") ]
      ()
  in
  let config = Config.make [ transit; victim; scrubber ] in
  ignore (Config.announce config ~peer:asn_victim ~port:0 victim_pfx);
  let net = Sdx_fabric.Network.create (Runtime.create config) in
  (* The scrubber forwards clean traffic and swallows the attack. *)
  Sdx_fabric.Network.attach_middlebox net asn_scrubber
    (Sdx_fabric.Middlebox.scrubber ~block:(fun p -> Ipv4.equal p.src_ip attacker));
  net

let traffic_round net ~attack_pps =
  (* One simulated second: each legitimate client sends one request, the
     attacker sends [attack_pps]. *)
  let send src =
    ignore
      (Sdx_fabric.Network.inject net ~from:asn_transit
         (Packet.make ~src_ip:src ~dst_ip:(ip "73.1.2.3") ~dst_port:443 ()))
  in
  List.iter send legit_clients;
  for _ = 1 to attack_pps do
    send attacker
  done

(* The control loop's detection rule: any single source responsible for
   more than half the victim's traffic is an attack. *)
let detect net =
  let telemetry = Sdx_fabric.Network.telemetry net in
  let received = Sdx_fabric.Telemetry.rx telemetry asn_victim in
  match Sdx_fabric.Telemetry.top_sources telemetry ~toward:asn_victim with
  | (src, n) :: _ when received > 20 && 2 * n > received -> Some src
  | _ -> None

(* Every compilation in this example is statically verified by
   sdx_check (isolation, BGP consistency, loop freedom); an error
   finding aborts the run. *)
let () = Sdx_check.Check.install_runtime_hook ~fail:true ()

let () =
  Format.printf "=== Reactive DoS mitigation ===@.@.";
  let net = ref (build_network []) in
  let mitigated = ref false in
  for second = 1 to 10 do
    traffic_round !net ~attack_pps:(if second >= 3 then 40 else 0);
    let telemetry = Sdx_fabric.Network.telemetry !net in
    Format.printf "t=%2ds: victim rx=%4d dropped-at-scrubber=%d%s@." second
      (Sdx_fabric.Telemetry.rx telemetry asn_victim)
      (Sdx_fabric.Telemetry.dropped telemetry asn_transit)
      (if !mitigated then "  [scrubbing]" else "");
    match detect !net with
    | Some src when not !mitigated ->
        Format.printf
          "@.  !! %s dominates the victim's traffic -> steering it through \
           the scrubber@.@."
          (Ipv4.to_string src);
        let steering =
          [
            Ppolicy.steer
              (Pred.src_ip (Prefix.make src 32))
              asn_scrubber;
          ]
        in
        net := build_network steering;
        mitigated := true
    | _ -> ()
  done;
  (* After mitigation: the attacker's packets die at the scrubber while
     legitimate clients still reach the victim. *)
  let telemetry = Sdx_fabric.Network.telemetry !net in
  let legit_delivered =
    List.for_all
      (fun src ->
        List.mem_assoc src
          (Sdx_fabric.Telemetry.top_sources telemetry ~toward:asn_victim))
      legit_clients
  in
  let attacker_blocked =
    not
      (List.mem_assoc attacker
         (Sdx_fabric.Telemetry.top_sources telemetry ~toward:asn_victim))
  in
  assert !mitigated;
  assert legit_delivered;
  assert attacker_blocked;
  Format.printf
    "@.Attack traffic is scrubbed surgically; the legitimate clients (%s)@.\
     kept flowing the whole time — no BGP hijack of unrelated traffic.@."
    (String.concat ", " (List.map Ipv4.to_string legit_clients))
