(** The [sdx_race] synchronization shim: the only way the rest of the
    tree is allowed to touch [Mutex], [Condition], [Atomic], [Domain]
    and [Domain.DLS] (the concurrency lint rejects raw usage outside
    [lib/sanitize]).

    In [Off] mode (the default, the production path) every wrapper is a
    passthrough; locations created while the detector is off carry no
    state.  In [Record] mode every operation records vector-clock
    happens-before edges and {!Tracked} plain locations are checked for
    data races, attributed with allocation and access backtraces.  In
    [Model] mode (entered by {!Explore.run}) operations on tracked
    objects become deterministic-scheduler yield points over virtual
    threads.

    [SDX_RACE=1] in the environment enables Record mode from process
    start and installs an exit hook that prints any findings (and
    writes them as JSON to [SDX_RACE_REPORT] if set). *)

type mode = Off | Record | Model

val mode : unit -> mode

val set_mode : mode -> unit
(** Switching to [Record] or [Model] resets the detector session:
    thread registrations and per-location clocks from earlier sessions
    are invalidated lazily.  Locations created while the mode was [Off]
    remain untracked for their lifetime. *)

(** {1 Race reports} *)

type access = { a_tid : int; a_thread : string; a_site : string }

type report = {
  r_kind : string;  (** e.g. ["write-write race"], ["single-writer violation"] *)
  r_location : string;
  r_alloc_site : string;  (** backtrace captured at [Tracked.create] *)
  r_first : access;
  r_second : access;
  r_trace : string list;  (** model-mode interleaving, oldest first *)
}

val races : unit -> report list
val clear_races : unit -> unit
val report_summary : report -> string
val reports_json : report list -> string

(** {1 Shims} *)

module Mutex : sig
  type t

  val create : ?name:string -> unit -> t
  val lock : t -> unit
  val unlock : t -> unit
  val protect : t -> (unit -> 'a) -> 'a
end

module Condition : sig
  type t

  val create : ?name:string -> unit -> t
  val wait : t -> Mutex.t -> unit
  val signal : t -> unit
  val broadcast : t -> unit
end

module Atomic : sig
  type 'a t

  val make : ?name:string -> 'a -> 'a t
  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit
  val exchange : 'a t -> 'a -> 'a
  val compare_and_set : 'a t -> 'a -> 'a -> bool
  val fetch_and_add : int t -> int -> int
  val incr : int t -> unit
end

(** Explicitly tracked plain mutable locations: the structure's owner
    calls {!Tracked.write} next to every mutation of the location and
    {!Tracked.read} next to every read that may run concurrently.  The
    detector flags any pair of accesses not ordered by happens-before
    (write/write, write/read or read/write), with the location's
    allocation site and both access sites. *)
module Tracked : sig
  type t

  val create : string -> t
  val read : t -> unit
  val write : t -> unit
end

(** Single-writer contract assertions: {!Owner.assert_owner} binds the
    location to the first asserting thread of the detector session and
    reports any later assertion from a different thread. *)
module Owner : sig
  type t

  val create : string -> t
  val assert_owner : t -> unit
end

module Domain : sig
  type 'a t

  val spawn : ?name:string -> (unit -> 'a) -> 'a t
  val join : 'a t -> 'a

  val self_index : unit -> int
  (** The detector's dense index for the calling thread (registers it
      if needed). *)

  val recommended_count : unit -> int
  (** [Domain.recommended_domain_count] passthrough. *)
end

module Dls : sig
  type 'a key

  val new_key : (unit -> 'a) -> 'a key
  val get : 'a key -> 'a
  val set : 'a key -> 'a -> unit
end

(** {1 Internal interfaces for the explorer}

    Everything below is the contract between this module and
    {!Explore}; scenario and production code never touches it. *)

type pending_op = { op_loc : int; op_write : bool; op_desc : string }

type _ Effect.t +=
  | Yield : pending_op -> unit Effect.t
  | Block : pending_op * (unit -> bool) -> unit Effect.t
  | Spawn : string * (unit -> unit) -> int Effect.t

module Model : sig
  val begin_execution : unit -> unit
  val new_vthread : string -> int
  val set_current : int -> unit
  val clear_current : unit -> unit
  val set_trace_hook : (unit -> string list) -> unit
  val set_done_hook : (int -> bool) -> unit
end
