(** Vector clocks for the happens-before race detector.

    Values are immutable and normalized (no trailing zero components),
    so {!equal} is structural and the algebra laws the qcheck suite
    exercises — [join] is associative, commutative and idempotent,
    [tick] is strictly monotone, [leq] is a partial order with [join]
    as least upper bound — hold on the representation itself. *)

type t

val empty : t
(** The zero clock: [leq empty c] for every [c]. *)

val of_array : int array -> t
(** Clock with component [i] = [a.(i)].  Raises [Invalid_argument] on a
    negative component. *)

val to_array : t -> int array
val get : t -> int -> int

val tick : t -> int -> t
(** [tick c i] increments thread [i]'s component: the thread's local
    step after a release operation. *)

val join : t -> t -> t
(** Pointwise maximum: what a thread learns when it acquires a lock or
    reads a released atomic. *)

val leq : t -> t -> bool
(** [leq a b] iff every component of [a] is <= the same component of
    [b]: [a] happens-before-or-equals [b]. *)

val equal : t -> t -> bool

val concurrent : t -> t -> bool
(** Neither [leq a b] nor [leq b a]: the defining condition of a data
    race between the two accesses' clocks. *)

val to_string : t -> string
