(* Vector clocks for the happens-before race detector.

   A clock maps a thread index (a small dense int assigned by the
   detector, not a raw [Domain.id]) to the number of release operations
   that thread has performed.  The representation is a plain int array
   indexed by thread, with missing entries meaning 0; values are
   normalized so trailing zeroes never survive a constructor, which
   makes structural equality coincide with clock equality.

   Operations are functional — arrays are never mutated after they are
   returned — so the qcheck algebra suite can treat clocks as values and
   the detector can hand snapshots across threads without defensive
   copies. *)

type t = int array

let empty : t = [||]

let normalize (a : int array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do decr n done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_array a =
  if Array.exists (fun x -> x < 0) a then
    invalid_arg "Vclock.of_array: negative component";
  normalize (Array.copy a)

let to_array (t : t) = Array.copy t
let get (t : t) i = if i < 0 then invalid_arg "Vclock.get" else if i < Array.length t then t.(i) else 0

let tick (t : t) i =
  if i < 0 then invalid_arg "Vclock.tick";
  let n = max (Array.length t) (i + 1) in
  let out = Array.make n 0 in
  Array.blit t 0 out 0 (Array.length t);
  out.(i) <- out.(i) + 1;
  (* ticking can only grow a component, never zero a trailing one *)
  out

let join (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 then b
  else if lb = 0 then a
  else begin
    let n = max la lb in
    let out = Array.make n 0 in
    for i = 0 to n - 1 do
      let x = if i < la then a.(i) else 0 and y = if i < lb then b.(i) else 0 in
      out.(i) <- if x > y then x else y
    done;
    (* both inputs are normalized, so the longer one's last component is
       non-zero and the join needs no re-normalization *)
    out
  end

let leq (a : t) (b : t) =
  let lb = Array.length b in
  let rec go i =
    if i >= Array.length a then true
    else if a.(i) <= (if i < lb then b.(i) else 0) then go (i + 1)
    else false
  in
  go 0

let equal (a : t) (b : t) = a = b
let concurrent a b = (not (leq a b)) && not (leq b a)

let to_string (t : t) =
  "<"
  ^ String.concat ","
      (List.init (Array.length t) (fun i -> string_of_int t.(i)))
  ^ ">"
