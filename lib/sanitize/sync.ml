(* sdx_race: a happens-before race detector behind shims for [Mutex],
   [Condition], [Atomic], [Domain] and [Domain.DLS].

   The rest of the tree never touches the raw primitives (the
   concurrency lint enforces this); it goes through this module, which
   has three modes:

   - [Off] (production): every wrapper is a direct passthrough.  A
     location created while the detector is off carries no state at
     all, so the hot paths (obs counters, RCU snapshot publication) pay
     one immutable-field load and a branch.

   - [Record]: real domains run for real, and every shim operation
     additionally records vector-clock happens-before edges under one
     detector lock: lock release/acquire, atomic release/acquire
     (modelled conservatively: release edges are recorded before the
     physical store and acquire edges after the physical load, so the
     approximation can only add ordering — the detector never reports
     a false race, it can only miss one), spawn and join edges.
     Explicitly {!Tracked} plain locations are checked on every access:
     a write must happen-after every prior access, a read must
     happen-after every prior write, and a violation is reported with
     the location's allocation site and both access sites.

   - [Model]: the deterministic interleaving explorer ({!Explore}) is
     driving.  Everything runs on one real domain; [Domain.spawn]
     creates a cooperative virtual thread, and every operation on a
     tracked object is a scheduler yield point (declared via an effect
     before it executes, so the scheduler knows each thread's pending
     operation and can prune independent interleavings).  Objects
     created while the detector was off stay invisible: their
     operations neither yield nor record, which keeps incidental
     global state (metric counters, the interning registry) out of the
     model's state space — model scenarios must create the structures
     under test inside the scenario body.

   Thread identity is a small dense index ("tid"): the detector
   registers real domains lazily (and eagerly on [Domain.spawn], which
   is what carries the parent's clock into the child) and virtual
   threads are numbered by the explorer.  All detector state is
   guarded by [master]; in Record mode this serializes instrumented
   operations, which is the usual cost of a software race detector and
   irrelevant to the Off-mode production path. *)

module RMutex = Stdlib.Mutex
module RCondition = Stdlib.Condition
module RAtomic = Stdlib.Atomic
module RDomain = Stdlib.Domain

type mode = Off | Record | Model

(* ------------------------------------------------------------------ *)
(* Detector state                                                      *)

let master = RMutex.create ()

let locked f =
  RMutex.lock master;
  match f () with
  | v ->
      RMutex.unlock master;
      v
  | exception e ->
      RMutex.unlock master;
      raise e

let mode_ref = ref Off

(* Bumped on every detector reset ([set_mode], each model execution);
   per-object state carries the session it belongs to and is lazily
   re-initialized when it leaks across sessions (a table created in one
   test must not poison the next test's clocks). *)
let session = ref 1

(* Model-mode scheduler context, maintained by Explore. *)
let model_current = ref (-1)
let model_exec = ref 0
let model_trace_hook : (unit -> string list) ref = ref (fun () -> [])
let model_done_hook : (int -> bool) ref = ref (fun _ -> true)

(* Thread registry: dense tids, a clock and a name per tid. *)
let clocks = ref (Array.make 8 Vclock.empty)
let names = ref (Array.make 8 "?")
let nthreads = ref 0
let domain_tids : (int, int) Hashtbl.t = Hashtbl.create 16

let ensure_threads n =
  if n > Array.length !clocks then begin
    let size = max n (2 * Array.length !clocks) in
    let c = Array.make size Vclock.empty and nm = Array.make size "?" in
    Array.blit !clocks 0 c 0 !nthreads;
    Array.blit !names 0 nm 0 !nthreads;
    clocks := c;
    names := nm
  end

let new_tid_locked name parent_vc =
  let tid = !nthreads in
  (* grow before bumping the count: [ensure_threads] blits [!nthreads]
     live entries out of the old arrays *)
  ensure_threads (tid + 1);
  incr nthreads;
  (* self component starts at 1 so epoch 0 always means "no access" *)
  !clocks.(tid) <- Vclock.tick parent_vc tid;
  !names.(tid) <- name;
  tid

let current_tid_locked () =
  if !mode_ref = Model && !model_current >= 0 then !model_current
  else begin
    let d = (RDomain.self () :> int) in
    match Hashtbl.find_opt domain_tids d with
    | Some t -> t
    | None ->
        let t = new_tid_locked (Printf.sprintf "domain-%d" d) Vclock.empty in
        Hashtbl.replace domain_tids d t;
        t
  end

let thread_name_locked tid =
  if tid >= 0 && tid < !nthreads then !names.(tid) else Printf.sprintf "t%d" tid

let reset_locked () =
  incr session;
  nthreads := 0;
  Hashtbl.reset domain_tids

(* Location ids: one dense space across mutexes, atomics, tracked
   locations, owners and thread handles, so the explorer's independence
   relation is a plain int comparison. *)
let next_loc = RAtomic.make 1
let fresh_loc () = RAtomic.fetch_and_add next_loc 1

let enabled () = !mode_ref <> Off

(* A trimmed backtrace for attribution: the sanitizer's own frames at
   the top are noise — the reader wants the first frame in user code. *)
let site () =
  let s = Printexc.raw_backtrace_to_string (Printexc.get_callstack 14) in
  let lines = String.split_on_char '\n' s in
  let is_own l =
    let rec has i =
      i + 15 <= String.length l
      && (String.sub l i 15 = "Sdx_sanitize__S" || has (i + 1))
    in
    has 0
  in
  let rec drop = function
    | l :: rest when is_own l -> drop rest
    | rest -> rest
  in
  let kept = drop lines in
  String.trim (String.concat "\n" (if kept = [] then lines else kept))

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)

type access = { a_tid : int; a_thread : string; a_site : string }

type report = {
  r_kind : string;
  r_location : string;
  r_alloc_site : string;
  r_first : access;
  r_second : access;
  r_trace : string list;  (* model-mode interleaving, oldest first *)
}

let race_buf : report list ref = ref []

let record_report_locked ~kind ~location ~alloc ~first ~second =
  let trace = if !mode_ref = Model then !model_trace_hook () else [] in
  race_buf :=
    {
      r_kind = kind;
      r_location = location;
      r_alloc_site = alloc;
      r_first = first;
      r_second = second;
      r_trace = trace;
    }
    :: !race_buf

let races () = locked (fun () -> List.rev !race_buf)
let clear_races () = locked (fun () -> race_buf := [])

let first_line s = match String.index_opt s '\n' with None -> s | Some i -> String.sub s 0 i

let report_summary r =
  Printf.sprintf "%s on %s: %s (%s) vs %s (%s)" r.r_kind r.r_location
    r.r_first.a_thread
    (first_line r.r_first.a_site)
    r.r_second.a_thread
    (first_line r.r_second.a_site)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_of_access buf (a : access) =
  Buffer.add_string buf
    (Printf.sprintf "{\"tid\":%d,\"thread\":\"%s\",\"site\":\"%s\"}" a.a_tid
       (json_escape a.a_thread) (json_escape a.a_site))

let reports_json reports =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"races\":[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"kind\":\"%s\",\"location\":\"%s\",\"alloc_site\":\"%s\",\"first\":"
           (json_escape r.r_kind) (json_escape r.r_location)
           (json_escape r.r_alloc_site));
      json_of_access buf r.r_first;
      Buffer.add_string buf ",\"second\":";
      json_of_access buf r.r_second;
      Buffer.add_string buf ",\"trace\":[";
      List.iteri
        (fun j s ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (Printf.sprintf "\"%s\"" (json_escape s)))
        r.r_trace;
      Buffer.add_string buf "]}")
    reports;
  Buffer.add_string buf "]}";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Model-mode effects: declared here so the wrappers can perform them
   and Explore can handle them without a dependency cycle.             *)

type pending_op = { op_loc : int; op_write : bool; op_desc : string }

type _ Effect.t +=
  | Yield : pending_op -> unit Effect.t
  | Block : pending_op * (unit -> bool) -> unit Effect.t
  | Spawn : string * (unit -> unit) -> int Effect.t

let in_model () = !mode_ref = Model && !model_current >= 0
let model_yield op = if in_model () then Effect.perform (Yield op)

(* ------------------------------------------------------------------ *)
(* Vector-clock edges                                                  *)

(* acquire: the running thread learns everything the location's last
   releaser knew. *)
let acquire_edge_locked vc_of =
  let tid = current_tid_locked () in
  !clocks.(tid) <- Vclock.join !clocks.(tid) (vc_of ());
  tid

(* release: the location learns the thread's clock and the thread
   steps its own component. *)
let release_edge_locked get set =
  let tid = current_tid_locked () in
  set (Vclock.join (get ()) !clocks.(tid));
  !clocks.(tid) <- Vclock.tick !clocks.(tid) tid;
  tid

(* ------------------------------------------------------------------ *)
(* Mutex                                                               *)

module Mutex = struct
  type state = {
    l_id : int;
    l_name : string;
    mutable l_session : int;
    mutable l_vc : Vclock.t;
    mutable l_holder : int;  (* model mode: vthread holding it, -1 free *)
  }

  type t = { rm : RMutex.t; st : state option }

  let create ?(name = "mutex") () =
    let st =
      if enabled () then
        Some { l_id = fresh_loc (); l_name = name; l_session = !session; l_vc = Vclock.empty; l_holder = -1 }
      else None
    in
    { rm = RMutex.create (); st }

  let fresh st =
    if st.l_session <> !session then begin
      st.l_session <- !session;
      st.l_vc <- Vclock.empty;
      st.l_holder <- -1
    end

  let lock t =
    match t.st with
    | None -> RMutex.lock t.rm
    | Some st when !mode_ref = Off -> ignore st; RMutex.lock t.rm
    | Some st ->
        if in_model () then begin
          model_yield { op_loc = st.l_id; op_write = true; op_desc = "lock " ^ st.l_name };
          locked (fun () -> fresh st);
          if st.l_holder >= 0 then
            Effect.perform
              (Block
                 ( { op_loc = st.l_id; op_write = true; op_desc = "lock(blocked) " ^ st.l_name },
                   fun () -> st.l_holder < 0 ));
          locked (fun () ->
              st.l_holder <- current_tid_locked ();
              ignore (acquire_edge_locked (fun () -> st.l_vc)))
        end
        else begin
          RMutex.lock t.rm;
          locked (fun () ->
              fresh st;
              ignore (acquire_edge_locked (fun () -> st.l_vc)))
        end

  let unlock t =
    match t.st with
    | None -> RMutex.unlock t.rm
    | Some st when !mode_ref = Off -> ignore st; RMutex.unlock t.rm
    | Some st ->
        if in_model () then begin
          model_yield { op_loc = st.l_id; op_write = true; op_desc = "unlock " ^ st.l_name };
          locked (fun () ->
              fresh st;
              ignore (release_edge_locked (fun () -> st.l_vc) (fun vc -> st.l_vc <- vc));
              st.l_holder <- -1)
        end
        else begin
          locked (fun () ->
              fresh st;
              ignore (release_edge_locked (fun () -> st.l_vc) (fun vc -> st.l_vc <- vc)));
          RMutex.unlock t.rm
        end

  let protect t f =
    lock t;
    match f () with
    | v ->
        unlock t;
        v
    | exception e ->
        unlock t;
        raise e
end

(* ------------------------------------------------------------------ *)
(* Condition                                                           *)

module Condition = struct
  type state = {
    c_id : int;
    c_name : string;
    mutable c_session : int;
    mutable c_gen : int;  (* model mode: wakeup generation *)
  }

  type t = { rc : RCondition.t; st : state option }

  let create ?(name = "cond") () =
    let st =
      if enabled () then Some { c_id = fresh_loc (); c_name = name; c_session = !session; c_gen = 0 }
      else None
    in
    { rc = RCondition.create (); st }

  let fresh st =
    if st.c_session <> !session then begin
      st.c_session <- !session;
      st.c_gen <- 0
    end

  (* The happens-before carried by a condition is exactly the one its
     mutex carries (wait releases and re-acquires it), so Record mode
     only needs the mutex edges around the real wait. *)
  let wait t (m : Mutex.t) =
    match t.st with
    | None -> RCondition.wait t.rc m.Mutex.rm
    | Some st when !mode_ref = Off -> ignore st; RCondition.wait t.rc m.Mutex.rm
    | Some st ->
        if in_model () then begin
          model_yield { op_loc = st.c_id; op_write = true; op_desc = "wait " ^ st.c_name };
          locked (fun () -> fresh st);
          let gen = st.c_gen in
          Mutex.unlock m;
          Effect.perform
            (Block
               ( { op_loc = st.c_id; op_write = true; op_desc = "wait(blocked) " ^ st.c_name },
                 fun () -> st.c_gen > gen ));
          Mutex.lock m
        end
        else begin
          (match m.Mutex.st with
          | Some lst when !mode_ref <> Off ->
              locked (fun () ->
                  Mutex.fresh lst;
                  ignore
                    (release_edge_locked
                       (fun () -> lst.Mutex.l_vc)
                       (fun vc -> lst.Mutex.l_vc <- vc)))
          | _ -> ());
          RCondition.wait t.rc m.Mutex.rm;
          match m.Mutex.st with
          | Some lst when !mode_ref <> Off ->
              locked (fun () ->
                  Mutex.fresh lst;
                  ignore (acquire_edge_locked (fun () -> lst.Mutex.l_vc)))
          | _ -> ()
        end

  (* Model mode gives [signal] broadcast semantics: every current
     waiter's predicate sees the new generation.  The tree only uses
     [broadcast], so the model never weakens a real wakeup pattern. *)
  let wake t =
    match t.st with
    | Some st when in_model () ->
        model_yield { op_loc = st.c_id; op_write = true; op_desc = "broadcast " ^ st.c_name };
        locked (fun () ->
            fresh st;
            st.c_gen <- st.c_gen + 1)
    | _ -> ()

  let signal t = if in_model () && t.st <> None then wake t else RCondition.signal t.rc
  let broadcast t = if in_model () && t.st <> None then wake t else RCondition.broadcast t.rc
end

(* ------------------------------------------------------------------ *)
(* Atomic                                                              *)

module Atomic = struct
  type state = {
    at_id : int;
    at_name : string;
    mutable at_session : int;
    mutable at_vc : Vclock.t;
  }

  type 'a t = { ra : 'a RAtomic.t; st : state option }

  let make ?(name = "atomic") v =
    let st =
      if enabled () then Some { at_id = fresh_loc (); at_name = name; at_session = !session; at_vc = Vclock.empty }
      else None
    in
    { ra = RAtomic.make v; st }

  let fresh st = if st.at_session <> !session then begin st.at_session <- !session; st.at_vc <- Vclock.empty end

  let pre_release st =
    locked (fun () ->
        fresh st;
        ignore (release_edge_locked (fun () -> st.at_vc) (fun vc -> st.at_vc <- vc)))

  let post_acquire st =
    locked (fun () ->
        fresh st;
        ignore (acquire_edge_locked (fun () -> st.at_vc)))

  let tracked_op st ~write ~desc f =
    if in_model () then begin
      model_yield { op_loc = st.at_id; op_write = write; op_desc = desc ^ " " ^ st.at_name };
      (* single real domain: edge-vs-store ordering is immaterial here *)
      if write then pre_release st;
      let r = f () in
      if not write then post_acquire st else post_acquire st;
      r
    end
    else begin
      (* release edges recorded before the physical store, acquire edges
         after the physical load: the approximation can only add
         happens-before, never invent a race *)
      if write then pre_release st;
      let r = f () in
      post_acquire st;
      r
    end

  let get t =
    match t.st with
    | None -> RAtomic.get t.ra
    | Some st when !mode_ref = Off -> ignore st; RAtomic.get t.ra
    | Some st -> tracked_op st ~write:false ~desc:"get" (fun () -> RAtomic.get t.ra)

  let set t v =
    match t.st with
    | None -> RAtomic.set t.ra v
    | Some st when !mode_ref = Off -> ignore st; RAtomic.set t.ra v
    | Some st -> tracked_op st ~write:true ~desc:"set" (fun () -> RAtomic.set t.ra v)

  let exchange t v =
    match t.st with
    | None -> RAtomic.exchange t.ra v
    | Some st when !mode_ref = Off -> ignore st; RAtomic.exchange t.ra v
    | Some st -> tracked_op st ~write:true ~desc:"exchange" (fun () -> RAtomic.exchange t.ra v)

  let compare_and_set t old v =
    match t.st with
    | None -> RAtomic.compare_and_set t.ra old v
    | Some st when !mode_ref = Off -> ignore st; RAtomic.compare_and_set t.ra old v
    | Some st ->
        tracked_op st ~write:true ~desc:"cas" (fun () -> RAtomic.compare_and_set t.ra old v)

  let fetch_and_add t n =
    match t.st with
    | None -> RAtomic.fetch_and_add t.ra n
    | Some st when !mode_ref = Off -> ignore st; RAtomic.fetch_and_add t.ra n
    | Some st ->
        tracked_op st ~write:true ~desc:"fetch_and_add" (fun () -> RAtomic.fetch_and_add t.ra n)

  let incr t = ignore (fetch_and_add t 1)
end

(* ------------------------------------------------------------------ *)
(* Tracked plain locations                                             *)

module Tracked = struct
  type t = {
    tr_id : int;
    tr_name : string;
    tr_alloc : string;
    mutable tr_session : int;
    mutable tr_w : int array;  (* per-tid epoch of last write, 0 = none *)
    mutable tr_r : int array;
    mutable tr_wsite : string array;
    mutable tr_rsite : string array;
    mutable tr_reports : int;
  }

  let max_reports_per_location = 8

  let create name =
    let alloc = if enabled () then site () else "" in
    {
      tr_id = fresh_loc ();
      tr_name = name;
      tr_alloc = alloc;
      tr_session = !session;
      tr_w = [||];
      tr_r = [||];
      tr_wsite = [||];
      tr_rsite = [||];
      tr_reports = 0;
    }

  let fresh tr n =
    if tr.tr_session <> !session then begin
      tr.tr_session <- !session;
      tr.tr_w <- [||];
      tr.tr_r <- [||];
      tr.tr_wsite <- [||];
      tr.tr_rsite <- [||];
      tr.tr_reports <- 0
    end;
    if Array.length tr.tr_w < n then begin
      let grow a v =
        let out = Array.make n v in
        Array.blit a 0 out 0 (Array.length a);
        out
      in
      tr.tr_w <- grow tr.tr_w 0;
      tr.tr_r <- grow tr.tr_r 0;
      tr.tr_wsite <- grow tr.tr_wsite "";
      tr.tr_rsite <- grow tr.tr_rsite ""
    end

  let report_locked tr ~kind ~u ~usite ~tid ~here =
    if tr.tr_reports < max_reports_per_location then begin
      tr.tr_reports <- tr.tr_reports + 1;
      record_report_locked ~kind ~location:tr.tr_name ~alloc:tr.tr_alloc
        ~first:{ a_tid = u; a_thread = thread_name_locked u; a_site = usite }
        ~second:{ a_tid = tid; a_thread = thread_name_locked tid; a_site = here }
    end

  let access tr ~write =
    let here = site () in
    locked (fun () ->
        let tid = current_tid_locked () in
        fresh tr !nthreads;
        let vc = !clocks.(tid) in
        let n = Array.length tr.tr_w in
        for u = 0 to n - 1 do
          if u <> tid then begin
            if tr.tr_w.(u) > 0 && tr.tr_w.(u) > Vclock.get vc u then
              report_locked tr
                ~kind:(if write then "write-write race" else "write-read race")
                ~u ~usite:tr.tr_wsite.(u) ~tid ~here
            else if write && tr.tr_r.(u) > 0 && tr.tr_r.(u) > Vclock.get vc u then
              report_locked tr ~kind:"read-write race" ~u ~usite:tr.tr_rsite.(u) ~tid ~here
          end
        done;
        if write then begin
          tr.tr_w.(tid) <- Vclock.get vc tid;
          tr.tr_wsite.(tid) <- here
        end
        else begin
          tr.tr_r.(tid) <- Vclock.get vc tid;
          tr.tr_rsite.(tid) <- here
        end)

  let op tr ~write ~desc =
    if !mode_ref = Off then ()
    else begin
      model_yield { op_loc = tr.tr_id; op_write = write; op_desc = desc ^ " " ^ tr.tr_name };
      access tr ~write
    end

  let read tr = op tr ~write:false ~desc:"read"
  let write tr = op tr ~write:true ~desc:"write"
end

(* ------------------------------------------------------------------ *)
(* Single-writer ownership assertions                                  *)

module Owner = struct
  type t = {
    o_id : int;
    o_name : string;
    mutable o_session : int;
    mutable o_tid : int;
    mutable o_site : string;
  }

  let create name = { o_id = fresh_loc (); o_name = name; o_session = !session; o_tid = -1; o_site = "" }

  (* Binds to the first asserting thread of the detector session; any
     other thread asserting afterwards is a single-writer contract
     violation, reported like a race (the "first access" is the
     binding site). *)
  let assert_owner o =
    if !mode_ref <> Off then begin
      model_yield { op_loc = o.o_id; op_write = true; op_desc = "owner " ^ o.o_name };
      let here = site () in
      locked (fun () ->
          let tid = current_tid_locked () in
          if o.o_session <> !session then begin
            o.o_session <- !session;
            o.o_tid <- -1;
            o.o_site <- ""
          end;
          if o.o_tid < 0 then begin
            o.o_tid <- tid;
            o.o_site <- here
          end
          else if o.o_tid <> tid then
            record_report_locked ~kind:"single-writer violation" ~location:o.o_name
              ~alloc:""
              ~first:{ a_tid = o.o_tid; a_thread = thread_name_locked o.o_tid; a_site = o.o_site }
              ~second:{ a_tid = tid; a_thread = thread_name_locked tid; a_site = here })
    end
end

(* ------------------------------------------------------------------ *)
(* Domain                                                              *)

(* One shared location id standing for "the thread table": every spawn
   and join conflicts with every other, which is conservative and keeps
   the explorer's pending-op relation simple. *)
let threads_loc = fresh_loc ()

module Domain = struct
  type 'a t =
    | H_real of 'a RDomain.t * Vclock.t option ref
    | H_virtual of int * 'a option ref

  let spawn ?(name = "worker") f =
    match !mode_ref with
    | Off -> H_real (RDomain.spawn f, ref None)
    | Record ->
        let parent_vc =
          locked (fun () ->
              let tid = current_tid_locked () in
              let vc = !clocks.(tid) in
              !clocks.(tid) <- Vclock.tick vc tid;
              vc)
        in
        let fin = ref None in
        H_real
          ( RDomain.spawn (fun () ->
                locked (fun () ->
                    let d = (RDomain.self () :> int) in
                    Hashtbl.replace domain_tids d (new_tid_locked name parent_vc));
                let r = f () in
                locked (fun () ->
                    let tid = current_tid_locked () in
                    fin := Some !clocks.(tid));
                r),
            fin )
    | Model ->
        model_yield { op_loc = threads_loc; op_write = true; op_desc = "spawn " ^ name };
        let cell = ref None in
        let parent = !model_current in
        let child = Effect.perform (Spawn (name, fun () -> cell := Some (f ()))) in
        locked (fun () ->
            !clocks.(child) <- Vclock.join !clocks.(child) !clocks.(parent);
            !clocks.(parent) <- Vclock.tick !clocks.(parent) parent);
        H_virtual (child, cell)

  let join (h : 'a t) : 'a =
    match h with
    | H_real (d, fin) ->
        let r = RDomain.join d in
        (if !mode_ref = Record then
           locked (fun () ->
               match !fin with
               | Some vc ->
                   let tid = current_tid_locked () in
                   !clocks.(tid) <- Vclock.join !clocks.(tid) vc
               | None -> ()));
        r
    | H_virtual (id, cell) ->
        model_yield { op_loc = threads_loc; op_write = true; op_desc = Printf.sprintf "join t%d" id };
        if not (!model_done_hook id) then
          Effect.perform
            (Block
               ( { op_loc = threads_loc; op_write = true; op_desc = Printf.sprintf "join(blocked) t%d" id },
                 fun () -> !model_done_hook id ));
        locked (fun () ->
            let tid = current_tid_locked () in
            !clocks.(tid) <- Vclock.join !clocks.(tid) !clocks.(id));
        (match !cell with
        | Some r -> r
        | None -> failwith "Sync.Domain.join: virtual thread died without a result")

  let self_index () = locked current_tid_locked
  let recommended_count () = RDomain.recommended_domain_count ()
end

(* ------------------------------------------------------------------ *)
(* Domain-local storage                                                *)

module Dls = struct
  (* Model mode keys per (execution, vthread): vthread numbers repeat
     across explorer executions, and a fresh execution must never see a
     previous one's cached value. *)
  type 'a key = {
    rk : 'a RDomain.DLS.key;
    tbl : (int * int, 'a) Hashtbl.t;
    init : unit -> 'a;
  }

  let new_key init = { rk = RDomain.DLS.new_key init; tbl = Hashtbl.create 8; init }

  let get k =
    if in_model () then begin
      let key = (!model_exec, !model_current) in
      match Hashtbl.find_opt k.tbl key with
      | Some v -> v
      | None ->
          let v = k.init () in
          Hashtbl.replace k.tbl key v;
          v
    end
    else RDomain.DLS.get k.rk

  let set k v =
    if in_model () then Hashtbl.replace k.tbl (!model_exec, !model_current) v
    else RDomain.DLS.set k.rk v
end

(* ------------------------------------------------------------------ *)
(* Mode control & the Model-side hooks Explore drives                  *)

let mode () = !mode_ref

let set_mode m =
  locked (fun () ->
      mode_ref := m;
      if m <> Off then reset_locked ())

module Model = struct
  let begin_execution () =
    locked (fun () ->
        reset_locked ();
        let t0 = new_tid_locked "main" Vclock.empty in
        assert (t0 = 0));
    model_current := 0;
    incr model_exec

  let new_vthread name = locked (fun () -> new_tid_locked name Vclock.empty)
  let set_current tid = model_current := tid
  let clear_current () = model_current := -1
  let set_trace_hook f = model_trace_hook := f
  let set_done_hook f = model_done_hook := f
end

(* ------------------------------------------------------------------ *)
(* Env-var activation: SDX_RACE=1 turns Record mode on from process
   start (so every location in the process is tracked), and the exit
   hook makes any findings loud and, with SDX_RACE_REPORT=path, durable
   — CI uploads that file as an artifact.                              *)

let () =
  match Sys.getenv_opt "SDX_RACE" with
  | Some ("1" | "on" | "true" | "record") ->
      mode_ref := Record;
      at_exit (fun () ->
          let rs = races () in
          if rs <> [] then begin
            Printf.eprintf "sdx_race: %d race report(s):\n" (List.length rs);
            List.iter (fun r -> Printf.eprintf "  %s\n" (report_summary r)) rs;
            match Sys.getenv_opt "SDX_RACE_REPORT" with
            | Some path ->
                let oc = open_out path in
                output_string oc (reports_json rs);
                close_out oc;
                Printf.eprintf "sdx_race: wrote %s\n" path
            | None -> ()
          end)
  | _ -> ()
