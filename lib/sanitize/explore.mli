(** Deterministic interleaving explorer over {!Sync}'s Model mode.

    {!run} executes a scenario under a cooperative scheduler that
    enumerates interleavings of the scenario's visible operations
    (lock/unlock, atomic ops, tracked reads/writes, spawn/join,
    condition wait/signal) by depth-first stateless re-execution,
    pruned by sleep sets ("DPOR-lite").  Exploration is exhaustive
    whenever [truncated] comes back [false].

    Scenarios must be deterministic apart from scheduling and must
    create every structure under test inside the scenario body, so the
    structure is tracked and its operations become yield points.
    Structures created while the detector was off are passthrough even
    in Model mode and execute atomically within a scheduling step. *)

type result = {
  executions : int;  (** complete interleavings explored *)
  pruned : int;  (** executions cut short by the sleep-set reduction *)
  max_depth : int;  (** most choice points along one schedule *)
  deadlocks : int;
  deadlock_trace : string list;  (** first deadlock's interleaving *)
  races : Sync.report list;
      (** deduplicated by (kind, location) across interleavings; each
          report carries the interleaving that produced it *)
  errors : string list;  (** exceptions escaping scenario threads *)
  truncated : bool;  (** hit [max_execs] or [max_steps]: NOT exhaustive *)
  first_trace : string list;  (** the first execution's interleaving *)
}

val ok : result -> bool
(** No deadlocks, races or errors, and the exploration was exhaustive. *)

val pp_summary : Format.formatter -> result -> unit

val run :
  ?seed:int ->
  ?dpor:bool ->
  ?max_execs:int ->
  ?max_steps:int ->
  (unit -> unit) ->
  result
(** [run scenario] explores [scenario]'s interleavings and restores the
    previous {!Sync.mode} when done (clearing the global race buffer).

    [seed] permutes the candidate order at each choice point — it
    changes the visit order, never the set of explored interleavings.
    [dpor:false] disables sleep-set pruning (full enumeration), for
    cross-checking the reduction.  [max_execs] (default 20000) and
    [max_steps] (default 5000, per execution) bound the search; hitting
    either sets [truncated]. *)
