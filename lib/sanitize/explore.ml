(* Deterministic interleaving explorer (DPOR-lite).

   A scenario is a function run as virtual thread 0 under [Sync]'s
   Model mode: every operation on a tracked object declares itself
   (via an effect) and yields to this scheduler *before* executing, so
   at each scheduling point the explorer knows every runnable thread's
   pending operation.  The explorer enumerates interleavings by
   stateless re-execution: a DFS over the tree of scheduling choices,
   where each execution replays a prefix of recorded decisions and then
   follows a deterministic default policy, recording the choice points
   it passes for later backtracking.

   Reduction ("DPOR-lite") is by sleep sets over a conservative
   dependence relation: two pending operations are independent iff they
   touch different locations or are both reads.  After a branch [t] is
   fully explored at a node, [t] joins the node's sleep set; subsequent
   branches at that node do not re-explore [t] first, and the sleep set
   is propagated down every transition, dropping entries whose pending
   operation conflicts with the executed one (thread termination
   conservatively wakes every sleeper, since it can enable joiners).
   If every enabled thread at a node is asleep the execution is
   redundant and pruned.  With [~dpor:false] the sleep machinery is
   bypassed and the state space is enumerated in full — the test suite
   cross-checks the two modes against each other on the seeded-race
   scenarios.

   Determinism: given the same scenario and seed, the explorer makes
   identical choices (the seed only permutes candidate order at each
   node), visits interleavings in the same order and reports identical
   traces — a property the test suite asserts, since reproducibility is
   what makes an explorer-found race debuggable.  Scenarios must
   therefore be deterministic apart from scheduling: no wall-clock, no
   [Random], and every shared structure under test created inside the
   scenario body (so it is tracked and its operations yield). *)

module ED = Effect.Deep

type step =
  | Done_
  | Raised of exn
  | Yielded of Sync.pending_op * (unit, step) ED.continuation
  | Blocked of Sync.pending_op * (unit -> bool) * (unit, step) ED.continuation
  | Spawned of string * (unit -> unit) * (int, step) ED.continuation

let run_body (body : unit -> unit) : step =
  ED.match_with body ()
    {
      retc = (fun () -> Done_);
      exnc = (fun e -> Raised e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Sync.Yield op ->
              Some (fun (k : (a, step) ED.continuation) -> Yielded (op, k))
          | Sync.Block (op, pred) ->
              Some (fun (k : (a, step) ED.continuation) -> Blocked (op, pred, k))
          | Sync.Spawn (name, fn) ->
              Some (fun (k : (a, step) ED.continuation) -> Spawned (name, fn, k))
          | _ -> None);
    }

(* The op a thread will perform when next resumed.  [op_loc = -1] marks
   "not yet known" (a thread that has not reached its first yield) and
   is treated as conflicting with everything. *)
let unknown_op = { Sync.op_loc = -1; op_write = true; op_desc = "start" }

let independent (a : Sync.pending_op) (b : Sync.pending_op) =
  a.Sync.op_loc >= 0 && b.Sync.op_loc >= 0
  && (a.Sync.op_loc <> b.Sync.op_loc
     || ((not a.Sync.op_write) && not b.Sync.op_write))

type tstate =
  | Ready of (unit -> step)
  | Waiting of (unit -> bool) * (unit -> step)
  | Finished
  | Crashed of exn

type trec = {
  tid : int;
  tname : string;
  mutable st : tstate;
  mutable pending : Sync.pending_op;
}

(* A choice point along the current path.  Sleep and tried sets store
   tids only: re-execution is deterministic, so when a later run replays
   up to this frame, each such thread's live [pending] op is exactly the
   op it had when the frame was first created. *)
type frame = {
  f_enabled : int list;  (* tids enabled here, ascending *)
  f_sleep : int list;  (* inherited sleep set at this node *)
  mutable f_chosen : int;
  mutable f_tried : int list;  (* branches fully explored here *)
}

type result = {
  executions : int;
  pruned : int;  (* executions cut short by the sleep-set reduction *)
  max_depth : int;  (* most choice points seen along one schedule *)
  deadlocks : int;
  deadlock_trace : string list;  (* first deadlock's interleaving *)
  races : Sync.report list;  (* deduplicated across interleavings *)
  errors : string list;  (* exceptions escaping scenario threads *)
  truncated : bool;  (* hit max_execs or max_steps: NOT exhaustive *)
  first_trace : string list;  (* the first execution's interleaving *)
}

let ok r = r.deadlocks = 0 && r.races = [] && r.errors = [] && not r.truncated

let pp_summary fmt r =
  Format.fprintf fmt
    "%d interleavings (%d pruned, depth<=%d)%s: %d deadlock(s), %d race(s), %d error(s)"
    r.executions r.pruned r.max_depth
    (if r.truncated then " TRUNCATED" else "")
    r.deadlocks (List.length r.races) (List.length r.errors)

exception Prune
exception Step_limit

(* Deterministic candidate rotation: the only effect of [seed]. *)
let mix seed depth n =
  if n <= 1 then 0
  else
    let h = (seed * 48271) + (depth * 40503) + 12345 in
    (h land max_int) mod n

let run ?(seed = 0) ?(dpor = true) ?(max_execs = 20_000) ?(max_steps = 5_000)
    (scenario : unit -> unit) : result =
  let prev_mode = Sync.mode () in
  let stack : frame list ref = ref [] in  (* deepest first *)
  let executions = ref 0 in
  let pruned = ref 0 in
  let max_depth = ref 0 in
  let deadlocks = ref 0 in
  let deadlock_trace = ref [] in
  let errors : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let race_keys : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let races = ref [] in
  let truncated = ref false in
  let first_trace = ref [] in

  (* One execution: replay the decisions recorded in [stack] (oldest
     first), then follow the default policy, pushing a frame at every
     choice point passed beyond the replayed prefix. *)
  let exec () =
    Sync.Model.begin_execution ();
    let threads : trec array ref = ref [||] in
    let add_thread tid name st =
      if tid <> Array.length !threads then
        invalid_arg "Explore: non-dense vthread ids";
      threads :=
        Array.append !threads [| { tid; tname = name; st; pending = unknown_op } |]
    in
    add_thread 0 "main" (Ready (fun () -> run_body scenario));
    Sync.Model.set_done_hook (fun tid ->
        tid >= Array.length !threads
        || match !threads.(tid).st with Finished | Crashed _ -> true | _ -> false);
    let trace = ref [] in
    Sync.Model.set_trace_hook (fun () -> List.rev !trace);
    let op_of tid = !threads.(tid).pending in
    let replay_left = ref (List.rev !stack) in  (* oldest first *)
    let new_frames = ref [] in  (* deepest first *)
    let depth = ref 0 in
    let steps = ref 0 in
    let cur_sleep : int list ref = ref [] in
    let rec advance (t : trec) thunk =
      match thunk () with
      | Done_ -> t.st <- Finished
      | Raised e ->
          t.st <- Crashed e;
          Hashtbl.replace errors
            (Printf.sprintf "%s (thread %d/%s)" (Printexc.to_string e) t.tid
               t.tname)
            ()
      | Yielded (op, k) ->
          t.pending <- op;
          t.st <- Ready (fun () -> ED.continue k ())
      | Blocked (op, pred, k) ->
          t.pending <- op;
          t.st <- Waiting (pred, fun () -> ED.continue k ())
      | Spawned (name, fn, k) ->
          let child = Sync.Model.new_vthread name in
          add_thread child name (Ready (fun () -> run_body fn));
          advance t (fun () -> ED.continue k child)
    in
    let outcome = ref `Ok in
    (try
       let running = ref true in
       while !running do
         incr steps;
         if !steps > max_steps then raise Step_limit;
         let enabled =
           Array.to_list !threads
           |> List.filter_map (fun tr ->
                  match tr.st with
                  | Ready _ -> Some tr.tid
                  | Waiting (pred, _) -> if pred () then Some tr.tid else None
                  | Finished | Crashed _ -> None)
         in
         match enabled with
         | [] ->
             let stuck =
               Array.exists
                 (fun tr -> match tr.st with Waiting _ -> true | _ -> false)
                 !threads
             in
             if stuck then begin
               incr deadlocks;
               if !deadlock_trace = [] then deadlock_trace := List.rev !trace;
               outcome := `Deadlock
             end;
             running := false
         | _ ->
             let asleep tid = dpor && List.mem tid !cur_sleep in
             let chosen =
               match (!replay_left, enabled) with
               | fr :: rest, _ :: _ :: _ ->
                   (* replayed choice point *)
                   replay_left := rest;
                   incr depth;
                   if not (List.mem fr.f_chosen enabled) then
                     failwith
                       "Explore: scenario is nondeterministic (replayed choice \
                        not enabled)";
                   cur_sleep :=
                     List.filter
                       (fun u -> independent (op_of u) (op_of fr.f_chosen))
                       (fr.f_sleep @ fr.f_tried);
                   fr.f_chosen
               | _, [ only ] ->
                   if asleep only then begin
                     incr pruned;
                     outcome := `Pruned;
                     raise Prune
                   end;
                   only
               | _, _ -> (
                   (* fresh choice point *)
                   incr depth;
                   let candidates =
                     List.filter (fun tid -> not (asleep tid)) enabled
                   in
                   match candidates with
                   | [] ->
                       incr pruned;
                       outcome := `Pruned;
                       raise Prune
                   | _ ->
                       let c =
                         List.nth candidates
                           (mix seed !depth (List.length candidates))
                       in
                       new_frames :=
                         {
                           f_enabled = enabled;
                           f_sleep = !cur_sleep;
                           f_chosen = c;
                           f_tried = [];
                         }
                         :: !new_frames;
                       cur_sleep :=
                         List.filter
                           (fun u -> independent (op_of u) (op_of c))
                           !cur_sleep;
                       c)
             in
             let tr = !threads.(chosen) in
             let op = tr.pending in
             trace :=
               Printf.sprintf "t%d(%s): %s" chosen tr.tname op.Sync.op_desc
               :: !trace;
             (* the executed operation wakes conflicting sleepers *)
             cur_sleep :=
               List.filter (fun u -> independent (op_of u) op) !cur_sleep;
             let thunk =
               match tr.st with
               | Ready f -> f
               | Waiting (_, f) -> f
               | Finished | Crashed _ -> assert false
             in
             Sync.Model.set_current chosen;
             advance tr thunk;
             (match tr.st with
             | Finished | Crashed _ ->
                 (* termination can enable joiners: conservatively wake
                    every sleeper *)
                 cur_sleep := []
             | _ -> ())
       done
     with
    | Prune -> ()
    | Step_limit ->
        truncated := true;
        outcome := `StepLimit);
    Sync.Model.clear_current ();
    (* fold this execution's races into the deduplicated set *)
    List.iter
      (fun (r : Sync.report) ->
        let key = r.Sync.r_kind ^ "|" ^ r.Sync.r_location in
        if not (Hashtbl.mem race_keys key) then begin
          Hashtbl.replace race_keys key ();
          races := r :: !races
        end)
      (Sync.races ());
    Sync.clear_races ();
    if !depth > !max_depth then max_depth := !depth;
    (* graft the new frames onto the path (both lists deepest first) *)
    stack := !new_frames @ !stack;
    (List.rev !trace, !outcome)
  in

  (* Advance the deepest frame with untried, non-sleeping candidates to
     its next branch; pop exhausted frames.  Returns false when the
     whole tree is explored. *)
  let rec backtrack () =
    match !stack with
    | [] -> false
    | fr :: rest -> (
        fr.f_tried <- fr.f_chosen :: fr.f_tried;
        let candidates =
          List.filter
            (fun tid ->
              (not (List.mem tid fr.f_tried))
              && not (dpor && List.mem tid fr.f_sleep))
            fr.f_enabled
        in
        match candidates with
        | [] ->
            stack := rest;
            backtrack ()
        | c :: _ ->
            fr.f_chosen <- c;
            true)
  in

  Fun.protect
    ~finally:(fun () -> Sync.set_mode prev_mode)
    (fun () ->
      Sync.set_mode Model;
      Sync.clear_races ();
      let continue_ = ref true in
      while !continue_ do
        if !executions >= max_execs then begin
          truncated := true;
          continue_ := false
        end
        else begin
          let trace, outcome = exec () in
          (match outcome with `Pruned -> () | _ -> incr executions);
          if !first_trace = [] && outcome <> `Pruned then first_trace := trace;
          if not (backtrack ()) then continue_ := false
        end
      done;
      {
        executions = !executions;
        pruned = !pruned;
        max_depth = !max_depth;
        deadlocks = !deadlocks;
        deadlock_trace = !deadlock_trace;
        races = List.rev !races;
        errors =
          List.sort compare (Hashtbl.fold (fun e () acc -> e :: acc) errors []);
        truncated = !truncated;
        first_trace = !first_trace;
      })
