(** Classifier compilation: from policies to prioritized match/action
    rules, the form installable on an OpenFlow switch.

    A classifier is a first-match-wins rule list.  Compiled classifiers
    are {e total}: the last rule matches every packet, so every packet is
    decided by some rule.  An action is a set of header modifications;
    each modification yields one output packet (multicast), and the empty
    set drops the packet. *)

open Sdx_net

type rule = { pattern : Pattern.t; action : Mods.t list }
(** [action] is kept duplicate-free and sorted, so rules compare
    structurally. *)

type t = rule list

val drop_all : t
(** The classifier that drops everything. *)

val id_all : t
(** The classifier that passes everything through unchanged. *)

val compile : Policy.t -> t
(** Compile a policy to an equivalent total classifier.  The result
    agrees with {!Policy.eval} on every packet. *)

val compile_pred : Pred.t -> t
(** Classifier acting as a filter: identity on packets satisfying the
    predicate, drop elsewhere. *)

val eval : t -> Packet.t -> Packet.t list
(** First-match semantics; duplicate-free, sorted like {!Policy.eval}. *)

val first_match : t -> Packet.t -> rule option

val par : t -> t -> t
(** Parallel composition of total classifiers: a packet receives the
    union of the actions of its first match in each operand. *)

val seq : t -> t -> t
(** Sequential composition of total classifiers: actions of the first
    operand feed the second. *)

val restrict : Pattern.t -> t -> t
(** [restrict p c] confines [c] to packets matching [p]; packets outside
    [p] are dropped.  The result is total. *)

val optimize : t -> t
(** Sound rule-count reduction: removes rules shadowed by an earlier
    superset rule, rules made redundant by an identical-action catch-all,
    and duplicate patterns.  Semantics are preserved. *)

val shadows : t -> (int * int) list
(** Report (without removing) rules an earlier superset rule shadows:
    [(i, j)] means rule [i] can never match because rule [j < i] matches
    every packet rule [i] does.  Index order, lowest shadowing index
    preferred per rule — the diagnostic counterpart of the pruning
    {!optimize} performs. *)

val rule_count : t -> int

val equivalent_on : t -> t -> Packet.t list -> bool
(** [equivalent_on c1 c2 pkts] checks pointwise agreement on [pkts]. *)

val pp : Format.formatter -> t -> unit
val pp_rule : Format.formatter -> rule -> unit
