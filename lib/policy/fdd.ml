open Sdx_net

(* ------------------------------------------------------------------ *)
(* Keys: one field test.                                               *)

type key =
  | Port of int
  | Src_mac of Mac.t
  | Dst_mac of Mac.t
  | Eth_type of int
  | Src_ip of Prefix.t
  | Dst_ip of Prefix.t
  | Proto of int
  | Src_port of int
  | Dst_port of int

let field_index = function
  | Port _ -> 0
  | Src_mac _ -> 1
  | Dst_mac _ -> 2
  | Eth_type _ -> 3
  | Src_ip _ -> 4
  | Dst_ip _ -> 5
  | Proto _ -> 6
  | Src_port _ -> 7
  | Dst_port _ -> 8

(* Longer prefixes order before shorter ones: a path's positive prefix
   tests then go specific-to-coarse, so by the time a coarse test is
   reached a more specific positive test (which would decide it) has
   already been resolved by [assume]. *)
let prefix_compare p q =
  let c = Int.compare (Prefix.length q) (Prefix.length p) in
  if c <> 0 then c else Prefix.compare p q

let key_compare a b =
  let c = Int.compare (field_index a) (field_index b) in
  if c <> 0 then c
  else
    match (a, b) with
    | Port x, Port y
    | Eth_type x, Eth_type y
    | Proto x, Proto y
    | Src_port x, Src_port y
    | Dst_port x, Dst_port y -> Int.compare x y
    | Src_mac x, Src_mac y | Dst_mac x, Dst_mac y -> Mac.compare x y
    | Src_ip x, Src_ip y | Dst_ip x, Dst_ip y -> prefix_compare x y
    | _ -> assert false

let key_equal a b = key_compare a b = 0

let key_hash k =
  let mix tag v = (tag * 0x01000193) lxor (v land max_int) in
  match k with
  | Port v -> mix 1 v
  | Src_mac m -> mix 2 (Mac.to_int m)
  | Dst_mac m -> mix 3 (Mac.to_int m)
  | Eth_type v -> mix 4 v
  | Src_ip p -> mix 5 (Prefix.hash p)
  | Dst_ip p -> mix 6 (Prefix.hash p)
  | Proto v -> mix 7 v
  | Src_port v -> mix 8 v
  | Dst_port v -> mix 9 v

(* [a] true forces [b] true — both on the same field. *)
let implies a b =
  match (a, b) with
  | Port x, Port y
  | Eth_type x, Eth_type y
  | Proto x, Proto y
  | Src_port x, Src_port y
  | Dst_port x, Dst_port y -> x = y
  | Src_mac x, Src_mac y | Dst_mac x, Dst_mac y -> Mac.equal x y
  | Src_ip x, Src_ip y | Dst_ip x, Dst_ip y -> Prefix.subset x y
  | _ -> false

(* [a] true forces [b] false — both on the same field. *)
let excludes a b =
  match (a, b) with
  | Port x, Port y
  | Eth_type x, Eth_type y
  | Proto x, Proto y
  | Src_port x, Src_port y
  | Dst_port x, Dst_port y -> x <> y
  | Src_mac x, Src_mac y | Dst_mac x, Dst_mac y -> not (Mac.equal x y)
  | Src_ip x, Src_ip y | Dst_ip x, Dst_ip y -> not (Prefix.overlaps x y)
  | _ -> false

(* [a] false forces [b] false — both on the same field. *)
let neg_implies_neg a b =
  match (a, b) with
  | Port x, Port y
  | Eth_type x, Eth_type y
  | Proto x, Proto y
  | Src_port x, Src_port y
  | Dst_port x, Dst_port y -> x = y
  | Src_mac x, Src_mac y | Dst_mac x, Dst_mac y -> Mac.equal x y
  | Src_ip x, Src_ip y | Dst_ip x, Dst_ip y -> Prefix.subset y x
  | _ -> false

let key_matches k (p : Packet.t) =
  match k with
  | Port v -> p.port = v
  | Src_mac m -> Mac.equal p.src_mac m
  | Dst_mac m -> Mac.equal p.dst_mac m
  | Eth_type v -> p.eth_type = v
  | Src_ip pre -> Prefix.mem p.src_ip pre
  | Dst_ip pre -> Prefix.mem p.dst_ip pre
  | Proto v -> p.proto = v
  | Src_port v -> p.src_port = v
  | Dst_port v -> p.dst_port = v

(* Whether a modification fixes the outcome of a test: [Some b] when the
   modified field makes [k] evaluate to [b] regardless of the incoming
   packet; [None] when the field is untouched. *)
let mod_determines (m : Mods.t) k =
  match k with
  | Port v -> Option.map (Int.equal v) m.Mods.port
  | Src_mac x -> Option.map (Mac.equal x) m.src_mac
  | Dst_mac x -> Option.map (Mac.equal x) m.dst_mac
  | Eth_type v -> Option.map (Int.equal v) m.eth_type
  | Src_ip pre -> Option.map (fun ip -> Prefix.mem ip pre) m.src_ip
  | Dst_ip pre -> Option.map (fun ip -> Prefix.mem ip pre) m.dst_ip
  | Proto v -> Option.map (Int.equal v) m.proto
  | Src_port v -> Option.map (Int.equal v) m.src_port
  | Dst_port v -> Option.map (Int.equal v) m.dst_port

(* A pattern's tests in ascending key order. *)
let keys_of_pattern (p : Pattern.t) =
  let add f v acc = match v with None -> acc | Some x -> f x :: acc in
  []
  |> add (fun v -> Dst_port v) p.dst_port
  |> add (fun v -> Src_port v) p.src_port
  |> add (fun v -> Proto v) p.proto
  |> add (fun v -> Dst_ip v) p.dst_ip
  |> add (fun v -> Src_ip v) p.src_ip
  |> add (fun v -> Eth_type v) p.eth_type
  |> add (fun v -> Dst_mac v) p.dst_mac
  |> add (fun v -> Src_mac v) p.src_mac
  |> add (fun v -> Port v) p.port

(* Conjoin one positive test onto a pattern; [None] if unsatisfiable. *)
let refine_pattern (pat : Pattern.t) k =
  let exact eq cur v set =
    match cur with
    | None -> Some (set (Some v))
    | Some w -> if eq w v then Some pat else None
  in
  let prefix cur v set =
    match cur with
    | None -> Some (set (Some v))
    | Some w -> (
        match Prefix.inter w v with
        | Some r -> Some (set (Some r))
        | None -> None)
  in
  match k with
  | Port v -> exact Int.equal pat.port v (fun x -> { pat with port = x })
  | Src_mac v -> exact Mac.equal pat.src_mac v (fun x -> { pat with src_mac = x })
  | Dst_mac v -> exact Mac.equal pat.dst_mac v (fun x -> { pat with dst_mac = x })
  | Eth_type v ->
      exact Int.equal pat.eth_type v (fun x -> { pat with eth_type = x })
  | Src_ip v -> prefix pat.src_ip v (fun x -> { pat with src_ip = x })
  | Dst_ip v -> prefix pat.dst_ip v (fun x -> { pat with dst_ip = x })
  | Proto v -> exact Int.equal pat.proto v (fun x -> { pat with proto = x })
  | Src_port v ->
      exact Int.equal pat.src_port v (fun x -> { pat with src_port = x })
  | Dst_port v ->
      exact Int.equal pat.dst_port v (fun x -> { pat with dst_port = x })

let pp_key fmt k =
  let p name to_s v = Format.fprintf fmt "%s=%s" name (to_s v) in
  match k with
  | Port v -> p "port" string_of_int v
  | Src_mac v -> p "src_mac" Mac.to_string v
  | Dst_mac v -> p "dst_mac" Mac.to_string v
  | Eth_type v -> p "eth_type" (Printf.sprintf "0x%04x") v
  | Src_ip v -> p "src_ip" Prefix.to_string v
  | Dst_ip v -> p "dst_ip" Prefix.to_string v
  | Proto v -> p "proto" string_of_int v
  | Src_port v -> p "src_port" string_of_int v
  | Dst_port v -> p "dst_port" string_of_int v

(* ------------------------------------------------------------------ *)
(* Nodes and the manager.                                              *)

type t = { id : int; node : node }
and node = Leaf of Mods.t list | Branch of key * t * t

module Leaf_key = struct
  type t = Mods.t list

  let equal = List.equal Mods.equal
  let hash l = List.fold_left (fun h m -> (h * 31) + Mods.hash m) 0x1505 l
end

module Leaf_tbl = Hashtbl.Make (Leaf_key)

module Branch_key = struct
  type nonrec t = key * int * int

  let equal (k1, h1, l1) (k2, h2, l2) = h1 = h2 && l1 = l2 && key_equal k1 k2
  let hash (k, h, l) = (((key_hash k * 31) + h) * 31) + l
end

module Branch_tbl = Hashtbl.Make (Branch_key)

module Pair_key = struct
  type t = int * int

  let equal (a1, b1) (a2, b2) = a1 = a2 && b1 = b2
  let hash (a, b) = (a * 0x01000193) lxor b
end

module Pair_tbl = Hashtbl.Make (Pair_key)

module Triple_key = struct
  type t = int * int * int

  let equal (a1, b1, c1) (a2, b2, c2) = a1 = a2 && b1 = b2 && c1 = c2
  let hash (a, b, c) = (((a * 31) + b) * 31) + c
end

module Triple_tbl = Hashtbl.Make (Triple_key)

module Assume_key = struct
  type nonrec t = key * int * bool

  let equal (k1, d1, s1) (k2, d2, s2) = d1 = d2 && s1 = s2 && key_equal k1 k2
  let hash (k, d, s) = (((key_hash k * 31) + d) * 2) + Bool.to_int s
end

module Assume_tbl = Hashtbl.Make (Assume_key)

module Push_key = struct
  type t = Mods.t * int

  let equal (m1, d1) (m2, d2) = d1 = d2 && Mods.equal m1 m2
  let hash (m, d) = (Mods.hash m * 31) + d
end

module Push_tbl = Hashtbl.Make (Push_key)

type manager = {
  mutable next_id : int;
  leaves : t Leaf_tbl.t;
  branches : t Branch_tbl.t;
  memo_union : t Pair_tbl.t;
  memo_inter : t Pair_tbl.t;
  memo_seq : t Pair_tbl.t;
  memo_ite : t Triple_tbl.t;
  memo_cond : t Branch_tbl.t;
  memo_assume : t Assume_tbl.t;
  memo_push : t Push_tbl.t;
  memo_neg : (int, t) Hashtbl.t;
  mutable hits : int;
}

let create () =
  {
    next_id = 0;
    leaves = Leaf_tbl.create 256;
    branches = Branch_tbl.create 1024;
    memo_union = Pair_tbl.create 1024;
    memo_inter = Pair_tbl.create 256;
    memo_seq = Pair_tbl.create 1024;
    memo_ite = Triple_tbl.create 256;
    memo_cond = Branch_tbl.create 1024;
    memo_assume = Assume_tbl.create 1024;
    memo_push = Push_tbl.create 1024;
    memo_neg = Hashtbl.create 64;
    hits = 0;
  }

let canon_actions = List.sort_uniq Mods.compare

let leaf mgr acts =
  let acts = canon_actions acts in
  match Leaf_tbl.find_opt mgr.leaves acts with
  | Some d -> d
  | None ->
      let d = { id = mgr.next_id; node = Leaf acts } in
      mgr.next_id <- mgr.next_id + 1;
      Leaf_tbl.replace mgr.leaves acts d;
      d

let branch mgr k hi lo =
  if hi.id = lo.id then hi
  else
    let key = (k, hi.id, lo.id) in
    match Branch_tbl.find_opt mgr.branches key with
    | Some d -> d
    | None ->
        let d = { id = mgr.next_id; node = Branch (k, hi, lo) } in
        mgr.next_id <- mgr.next_id + 1;
        Branch_tbl.replace mgr.branches key d;
        d

let drop mgr = leaf mgr []
let id mgr = leaf mgr [ Mods.identity ]
let const mgr acts = leaf mgr acts
let root_key d = match d.node with Leaf _ -> None | Branch (k, _, _) -> Some k

(* ------------------------------------------------------------------ *)
(* Restriction: rewrite a diagram under a decided key.                  *)

(* [assume mgr k sense d] is [d] specialized to packets on which test
   [k] evaluates to [sense], resolving every same-field test the
   assumption decides.  Tests on later fields are unaffected, and keys
   only grow along a path, so the walk stops at the first node past
   [k]'s field. *)
let rec assume mgr k sense d =
  match d.node with
  | Leaf _ -> d
  | Branch (k2, _, _) when field_index k2 > field_index k -> d
  | Branch (k2, hi, lo) -> (
      let mkey = (k, d.id, sense) in
      match Assume_tbl.find_opt mgr.memo_assume mkey with
      | Some r ->
          mgr.hits <- mgr.hits + 1;
          r
      | None ->
          let r =
            if field_index k2 = field_index k then
              if sense then
                if implies k k2 then assume mgr k sense hi
                else if excludes k k2 then assume mgr k sense lo
                else
                  branch mgr k2 (assume mgr k sense hi) (assume mgr k sense lo)
              else if neg_implies_neg k k2 then assume mgr k sense lo
              else branch mgr k2 (assume mgr k sense hi) (assume mgr k sense lo)
            else branch mgr k2 (assume mgr k sense hi) (assume mgr k sense lo)
          in
          Assume_tbl.replace mgr.memo_assume mkey r;
          r)

(* [cond mgr k t f]: the diagram that tests [k] and behaves as [t] on
   true, [f] on false — re-establishing the canonical order when [k] is
   not the smallest key involved. *)
let rec cond mgr k t f =
  if t.id = f.id then t
  else
    let mkey = (k, t.id, f.id) in
    match Branch_tbl.find_opt mgr.memo_cond mkey with
    | Some d ->
        mgr.hits <- mgr.hits + 1;
        d
    | None ->
        let le d =
          match root_key d with
          | None -> true
          | Some k2 -> key_compare k k2 <= 0
        in
        let d =
          if le t && le f then
            branch mgr k (assume mgr k true t) (assume mgr k false f)
          else
            let m =
              match (root_key t, root_key f) with
              | Some a, Some b -> if key_compare a b <= 0 then a else b
              | Some a, None -> a
              | None, Some b -> b
              | None, None -> assert false
            in
            (* [m] precedes [k]; hoist it and push the conditional down. *)
            let split_hi d =
              match d.node with
              | Branch (k2, hi, _) when key_equal k2 m -> hi
              | _ -> d
            and split_lo d =
              match d.node with
              | Branch (k2, _, lo) when key_equal k2 m -> lo
              | _ -> d
            in
            branch mgr m
              (cond mgr k (split_hi t) (split_hi f))
              (cond mgr k (split_lo t) (split_lo f))
        in
        Branch_tbl.replace mgr.memo_cond mkey d;
        d

(* ------------------------------------------------------------------ *)
(* Composition.                                                         *)

let rec union mgr a b =
  if a.id = b.id then a
  else
    match (a.node, b.node) with
    | Leaf [], _ -> b
    | _, Leaf [] -> a
    | _ -> (
        let mkey = if a.id < b.id then (a.id, b.id) else (b.id, a.id) in
        match Pair_tbl.find_opt mgr.memo_union mkey with
        | Some d ->
            mgr.hits <- mgr.hits + 1;
            d
        | None ->
            let d =
              match (a.node, b.node) with
              | Leaf x, Leaf y -> leaf mgr (List.rev_append x y)
              | Leaf _, Branch (k, hi, lo) ->
                  branch mgr k (union mgr a hi) (union mgr a lo)
              | Branch (k, hi, lo), Leaf _ ->
                  branch mgr k (union mgr hi b) (union mgr lo b)
              | Branch (k1, h1, l1), Branch (k2, h2, l2) ->
                  let c = key_compare k1 k2 in
                  if c = 0 then
                    branch mgr k1 (union mgr h1 h2) (union mgr l1 l2)
                  else if c < 0 then
                    branch mgr k1 (union mgr h1 b) (union mgr l1 b)
                  else branch mgr k2 (union mgr a h2) (union mgr a l2)
            in
            Pair_tbl.replace mgr.memo_union mkey d;
            d)

(* Boolean conjunction — both operands must be predicate diagrams
   (leaves empty or [[identity]]). *)
let rec inter mgr a b =
  if a.id = b.id then a
  else
    match (a.node, b.node) with
    | Leaf [], _ | _, Leaf [] -> drop mgr
    | Leaf _, _ -> b
    | _, Leaf _ -> a
    | _ -> (
        let mkey = if a.id < b.id then (a.id, b.id) else (b.id, a.id) in
        match Pair_tbl.find_opt mgr.memo_inter mkey with
        | Some d ->
            mgr.hits <- mgr.hits + 1;
            d
        | None ->
            let d =
              match (a.node, b.node) with
              | Branch (k1, h1, l1), Branch (k2, h2, l2) ->
                  let c = key_compare k1 k2 in
                  if c = 0 then
                    branch mgr k1 (inter mgr h1 h2) (inter mgr l1 l2)
                  else if c < 0 then
                    branch mgr k1 (inter mgr h1 b) (inter mgr l1 b)
                  else branch mgr k2 (inter mgr a h2) (inter mgr a l2)
              | _ -> assert false
            in
            Pair_tbl.replace mgr.memo_inter mkey d;
            d)

(* Boolean negation of a predicate diagram. *)
let rec neg mgr d =
  match d.node with
  | Leaf [] -> id mgr
  | Leaf _ -> drop mgr
  | Branch (k, hi, lo) -> (
      match Hashtbl.find_opt mgr.memo_neg d.id with
      | Some r ->
          mgr.hits <- mgr.hits + 1;
          r
      | None ->
          let r = branch mgr k (neg mgr hi) (neg mgr lo) in
          Hashtbl.replace mgr.memo_neg d.id r;
          r)

(* [push mgr m d] is [fun pkt -> d (Mods.apply m pkt)], with [m]
   composed onto every resulting action — one atom of [seq].  Tests on
   fields [m] writes are decided statically (the diagram-level
   counterpart of {!Pattern.pull_back}). *)
let rec push mgr m d =
  let mkey = (m, d.id) in
  match Push_tbl.find_opt mgr.memo_push mkey with
  | Some r ->
      mgr.hits <- mgr.hits + 1;
      r
  | None ->
      let r =
        match d.node with
        | Leaf acts -> leaf mgr (List.map (fun b -> Mods.then_ m b) acts)
        | Branch (k, hi, lo) -> (
            match mod_determines m k with
            | Some true -> push mgr m hi
            | Some false -> push mgr m lo
            | None -> branch mgr k (push mgr m hi) (push mgr m lo))
      in
      Push_tbl.replace mgr.memo_push mkey r;
      r

let rec seq mgr a b =
  match a.node with
  | Leaf [] -> a
  | _ -> (
      let mkey = (a.id, b.id) in
      match Pair_tbl.find_opt mgr.memo_seq mkey with
      | Some d ->
          mgr.hits <- mgr.hits + 1;
          d
      | None ->
          let d =
            match a.node with
            | Leaf acts ->
                List.fold_left
                  (fun acc m -> union mgr acc (push mgr m b))
                  (drop mgr) acts
            | Branch (k, hi, lo) ->
                cond mgr k (seq mgr hi b) (seq mgr lo b)
          in
          Pair_tbl.replace mgr.memo_seq mkey d;
          d)

let rec ite mgr c a b =
  match c.node with
  | Leaf [] -> b
  | Leaf _ -> a
  | Branch (k, hi, lo) ->
      if a.id = b.id then a
      else (
        let mkey = (c.id, a.id, b.id) in
        match Triple_tbl.find_opt mgr.memo_ite mkey with
        | Some d ->
            mgr.hits <- mgr.hits + 1;
            d
        | None ->
            let d = cond mgr k (ite mgr hi a b) (ite mgr lo a b) in
            Triple_tbl.replace mgr.memo_ite mkey d;
            d)

(* ------------------------------------------------------------------ *)
(* Front end.                                                          *)

let of_pattern mgr pat =
  List.fold_right
    (fun k acc -> branch mgr k acc (drop mgr))
    (keys_of_pattern pat) (id mgr)

let rec of_pred mgr (p : Pred.t) =
  match p with
  | Pred.True -> id mgr
  | Pred.False -> drop mgr
  | Pred.Test pat -> of_pattern mgr pat
  | Pred.And (a, b) -> inter mgr (of_pred mgr a) (of_pred mgr b)
  | Pred.Or (a, b) -> union mgr (of_pred mgr a) (of_pred mgr b)
  | Pred.Not a -> neg mgr (of_pred mgr a)

let rec of_policy mgr (pol : Policy.t) =
  match pol with
  | Policy.Filter p -> of_pred mgr p
  | Policy.Mod m -> leaf mgr [ m ]
  | Policy.Union (a, b) -> union mgr (of_policy mgr a) (of_policy mgr b)
  | Policy.Seq (a, b) -> seq mgr (of_policy mgr a) (of_policy mgr b)
  | Policy.If (c, a, b) ->
      ite mgr (of_pred mgr c) (of_policy mgr a) (of_policy mgr b)

let restrict mgr pat d = ite mgr (of_pattern mgr pat) d (drop mgr)

(* ------------------------------------------------------------------ *)
(* Consumption.                                                        *)

let rec eval d pkt =
  match d.node with
  | Leaf acts -> acts
  | Branch (k, hi, lo) -> eval (if key_matches k pkt then hi else lo) pkt

(* Depth-first, true edge first: a packet's first matching rule is the
   rule of its own root-to-leaf path.  Positive tests refine the
   pattern; a refinement failure means the path is unsatisfiable.
   Paths whose pattern already appeared can never be a first match, so
   they are dropped (the same dedup the cross-product engine does). *)
let to_classifier d =
  let seen = Pattern.Tbl.create 64 in
  let acc = ref [] in
  let rec go pat d =
    match d.node with
    | Leaf acts ->
        if not (Pattern.Tbl.mem seen pat) then begin
          Pattern.Tbl.replace seen pat ();
          acc := { Classifier.pattern = pat; action = acts } :: !acc
        end
    | Branch (k, hi, lo) ->
        (match refine_pattern pat k with
        | Some pat' -> go pat' hi
        | None -> ());
        go pat lo
  in
  go Pattern.all d;
  List.rev !acc

let import mgr d =
  let memo = Hashtbl.create 256 in
  let rec go d =
    match Hashtbl.find_opt memo d.id with
    | Some r -> r
    | None ->
        let r =
          match d.node with
          | Leaf acts -> leaf mgr acts
          | Branch (k, hi, lo) -> branch mgr k (go hi) (go lo)
        in
        Hashtbl.replace memo d.id r;
        r
  in
  go d

let node_id (d : t) = d.id

let size d =
  let seen = Hashtbl.create 64 in
  let rec go d =
    if not (Hashtbl.mem seen d.id) then begin
      Hashtbl.replace seen d.id ();
      match d.node with
      | Leaf _ -> ()
      | Branch (_, hi, lo) ->
          go hi;
          go lo
    end
  in
  go d;
  Hashtbl.length seen

type stats = { nodes : int; memo_hits : int; unique_table_size : int }

let stats mgr =
  {
    nodes = mgr.next_id;
    memo_hits = mgr.hits;
    unique_table_size =
      Leaf_tbl.length mgr.leaves + Branch_tbl.length mgr.branches;
  }

let check_unique d =
  let ok = ref true in
  let seen = Hashtbl.create 64 in
  let leaves = Leaf_tbl.create 64 in
  let branches = Branch_tbl.create 64 in
  let rec go d =
    if not (Hashtbl.mem seen d.id) then begin
      Hashtbl.replace seen d.id ();
      match d.node with
      | Leaf acts -> (
          match Leaf_tbl.find_opt leaves acts with
          | Some id' when id' <> d.id -> ok := false
          | _ -> Leaf_tbl.replace leaves acts d.id)
      | Branch (k, hi, lo) ->
          let key = (k, hi.id, lo.id) in
          (match Branch_tbl.find_opt branches key with
          | Some id' when id' <> d.id -> ok := false
          | _ -> Branch_tbl.replace branches key d.id);
          go hi;
          go lo
    end
  in
  go d;
  !ok

let rec pp fmt d =
  match d.node with
  | Leaf [] -> Format.pp_print_string fmt "drop"
  | Leaf acts ->
      Format.fprintf fmt "{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " + ")
           Mods.pp)
        acts
  | Branch (k, hi, lo) ->
      Format.fprintf fmt "@[<hv 2>(%a@ ? %a@ : %a)@]" pp_key k pp hi pp lo
