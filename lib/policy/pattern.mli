(** Match patterns: the predicate half of a flow rule.

    Each field is either wildcarded ([None]) or constrained; IP fields are
    constrained by CIDR prefixes, all other fields by exact values.  A
    pattern denotes the set of packets satisfying every constraint, so
    [all] denotes the full flow space and intersection is per-field. *)

open Sdx_net

type t = {
  port : int option;
  src_mac : Mac.t option;
  dst_mac : Mac.t option;
  eth_type : int option;
  src_ip : Prefix.t option;
  dst_ip : Prefix.t option;
  proto : int option;
  src_port : int option;
  dst_port : int option;
}

val all : t
(** The wildcard pattern, matching every packet. *)

val is_all : t -> bool

val make :
  ?port:int ->
  ?src_mac:Mac.t ->
  ?dst_mac:Mac.t ->
  ?eth_type:int ->
  ?src_ip:Prefix.t ->
  ?dst_ip:Prefix.t ->
  ?proto:int ->
  ?src_port:int ->
  ?dst_port:int ->
  unit ->
  t

val matches : t -> Packet.t -> bool

val inter : t -> t -> t option
(** Set intersection; [None] when the patterns are disjoint. *)

val subset : t -> t -> bool
(** [subset p q] is [true] iff every packet matching [p] matches [q]. *)

val pull_back : Mods.t -> t -> t option
(** [pull_back m p] is the weakest pattern [p'] such that a packet
    matches [p'] iff it matches [p] after [m] is applied.  [None] when no
    packet can match [p] after [m] (a field [m] sets conflicts with [p]'s
    constraint on it). *)

val field_count : t -> int
(** Number of constrained (non-wildcard) fields. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val hash : t -> int
(** Structural hash consistent with {!equal}; wildcarded and constrained
    fields never collide. *)

module Fields : sig
  val port : int
  val src_mac : int
  val dst_mac : int
  val eth_type : int
  val proto : int
  val src_port : int
  val dst_port : int
end
(** Bit constants naming the discrete (exact-match) fields, for
    {!pinned_mask} masks.  The two IP fields are not listed: they are
    prefix-shaped and visible directly as [src_ip]/[dst_ip]. *)

val pinned_mask : t -> int
(** Bitmask (over {!Fields}) of the discrete fields this pattern pins to
    an exact value.  A pattern with [pinned_mask p <> 0] and no IP
    constraint is fully decided by a hash probe on those fields — the
    shape the data-plane engine's exact layer dispatches on. *)

val pinned_key : t -> int
(** Hash of the pattern's pinned discrete values.  Agrees with
    {!packet_key} on [pinned_mask t]: for any packet [pk] matching [t],
    [packet_key (pinned_mask t) pk = pinned_key t].  Not injective;
    callers must re-verify candidates with {!matches}. *)

val packet_key : int -> Packet.t -> int
(** [packet_key mask pk] hashes [pk]'s values on the fields in [mask];
    allocation-free. *)

module Tbl : Hashtbl.S with type key = t
(** Hashtables keyed on patterns via {!hash}/{!equal}, replacing
    polymorphic hashing on the hot composition paths. *)

val pp : Format.formatter -> t -> unit
