open Sdx_net

type t = {
  port : int option;
  src_mac : Mac.t option;
  dst_mac : Mac.t option;
  eth_type : int option;
  src_ip : Prefix.t option;
  dst_ip : Prefix.t option;
  proto : int option;
  src_port : int option;
  dst_port : int option;
}

let all =
  {
    port = None;
    src_mac = None;
    dst_mac = None;
    eth_type = None;
    src_ip = None;
    dst_ip = None;
    proto = None;
    src_port = None;
    dst_port = None;
  }

let is_all t = t = all

let make ?port ?src_mac ?dst_mac ?eth_type ?src_ip ?dst_ip ?proto ?src_port
    ?dst_port () =
  { port; src_mac; dst_mac; eth_type; src_ip; dst_ip; proto; src_port; dst_port }

let matches t (p : Packet.t) =
  let exact eq c v =
    match c with
    | None -> true
    | Some c -> eq c v
  in
  let in_prefix c v =
    match c with
    | None -> true
    | Some pre -> Prefix.mem v pre
  in
  exact Int.equal t.port p.port
  && exact Mac.equal t.src_mac p.src_mac
  && exact Mac.equal t.dst_mac p.dst_mac
  && exact Int.equal t.eth_type p.eth_type
  && in_prefix t.src_ip p.src_ip
  && in_prefix t.dst_ip p.dst_ip
  && exact Int.equal t.proto p.proto
  && exact Int.equal t.src_port p.src_port
  && exact Int.equal t.dst_port p.dst_port

exception Empty

let inter_exact eq a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some x, Some y -> if eq x y then a else raise Empty

let inter_prefix a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some x, Some y -> (
      match Prefix.inter x y with
      | Some p -> Some p
      | None -> raise Empty)

let inter a b =
  match
    {
      port = inter_exact Int.equal a.port b.port;
      src_mac = inter_exact Mac.equal a.src_mac b.src_mac;
      dst_mac = inter_exact Mac.equal a.dst_mac b.dst_mac;
      eth_type = inter_exact Int.equal a.eth_type b.eth_type;
      src_ip = inter_prefix a.src_ip b.src_ip;
      dst_ip = inter_prefix a.dst_ip b.dst_ip;
      proto = inter_exact Int.equal a.proto b.proto;
      src_port = inter_exact Int.equal a.src_port b.src_port;
      dst_port = inter_exact Int.equal a.dst_port b.dst_port;
    }
  with
  | t -> Some t
  | exception Empty -> None

let subset_exact eq a b =
  match (a, b) with
  | _, None -> true
  | None, Some _ -> false
  | Some x, Some y -> eq x y

let subset_prefix a b =
  match (a, b) with
  | _, None -> true
  | None, Some _ -> false
  | Some x, Some y -> Prefix.subset x y

let subset a b =
  subset_exact Int.equal a.port b.port
  && subset_exact Mac.equal a.src_mac b.src_mac
  && subset_exact Mac.equal a.dst_mac b.dst_mac
  && subset_exact Int.equal a.eth_type b.eth_type
  && subset_prefix a.src_ip b.src_ip
  && subset_prefix a.dst_ip b.dst_ip
  && subset_exact Int.equal a.proto b.proto
  && subset_exact Int.equal a.src_port b.src_port
  && subset_exact Int.equal a.dst_port b.dst_port

(* For a field the modification sets, the post-mod value is fixed: either
   it satisfies the pattern's constraint (in which case the pulled-back
   pattern is unconstrained on that field) or no packet can match. *)
let pull_exact eq set constr =
  match (set, constr) with
  | None, c -> c
  | Some _, None -> None
  | Some v, Some c -> if eq v c then None else raise Empty

let pull_prefix set constr =
  match (set, constr) with
  | None, c -> c
  | Some _, None -> None
  | Some v, Some c -> if Prefix.mem v c then None else raise Empty

let pull_back (m : Mods.t) t =
  match
    {
      port = pull_exact Int.equal m.port t.port;
      src_mac = pull_exact Mac.equal m.src_mac t.src_mac;
      dst_mac = pull_exact Mac.equal m.dst_mac t.dst_mac;
      eth_type = pull_exact Int.equal m.eth_type t.eth_type;
      src_ip = pull_prefix m.src_ip t.src_ip;
      dst_ip = pull_prefix m.dst_ip t.dst_ip;
      proto = pull_exact Int.equal m.proto t.proto;
      src_port = pull_exact Int.equal m.src_port t.src_port;
      dst_port = pull_exact Int.equal m.dst_port t.dst_port;
    }
  with
  | t -> Some t
  | exception Empty -> None

let field_count t =
  let b o = if Option.is_some o then 1 else 0 in
  b t.port + b t.src_mac + b t.dst_mac + b t.eth_type + b t.src_ip + b t.dst_ip
  + b t.proto + b t.src_port + b t.dst_port

let compare = Stdlib.compare

let equal a b =
  Option.equal Int.equal a.port b.port
  && Option.equal Mac.equal a.src_mac b.src_mac
  && Option.equal Mac.equal a.dst_mac b.dst_mac
  && Option.equal Int.equal a.eth_type b.eth_type
  && Option.equal Prefix.equal a.src_ip b.src_ip
  && Option.equal Prefix.equal a.dst_ip b.dst_ip
  && Option.equal Int.equal a.proto b.proto
  && Option.equal Int.equal a.src_port b.src_port
  && Option.equal Int.equal a.dst_port b.dst_port

(* FNV-style field mix.  Wildcards get a fixed sentinel so that a
   constrained field never collides with an absent one; values are
   offset by one to keep 0 distinct from the sentinel. *)
let mix h v = (h * 0x01000193) lxor (v land max_int)
let wildcard = 0x5bd1e995

let hash t =
  let exact h = function None -> mix h wildcard | Some v -> mix h (v + 1) in
  let exact_mac h = function
    | None -> mix h wildcard
    | Some m -> mix h (Mac.to_int m + 1)
  in
  let prefix h = function
    | None -> mix h wildcard
    | Some p -> mix h (Prefix.hash p + 1)
  in
  let h = exact 0x811c9dc5 t.port in
  let h = exact_mac h t.src_mac in
  let h = exact_mac h t.dst_mac in
  let h = exact h t.eth_type in
  let h = prefix h t.src_ip in
  let h = prefix h t.dst_ip in
  let h = exact h t.proto in
  let h = exact h t.src_port in
  exact h t.dst_port

(* Engine support: the data-plane match engine (Sdx_openflow.Table)
   partitions rules by which discrete fields they exactly pin.  The
   bitmask and the two key functions below are its vocabulary: a rule
   whose every constraint is discrete-exact can be dispatched by hashing
   the packet's values on exactly the fields in [pinned_mask], and
   [pinned_key]/[packet_key] are built to agree on that mask.  Key
   collisions are harmless — the engine re-verifies candidates with
   [matches] — so the keys need not be injective. *)

module Fields = struct
  let port = 1
  let src_mac = 2
  let dst_mac = 4
  let eth_type = 8
  let proto = 16
  let src_port = 32
  let dst_port = 64
end

let pinned_mask t =
  let b mask = function Some _ -> mask | None -> 0 in
  b Fields.port t.port
  lor b Fields.src_mac t.src_mac
  lor b Fields.dst_mac t.dst_mac
  lor b Fields.eth_type t.eth_type
  lor b Fields.proto t.proto
  lor b Fields.src_port t.src_port
  lor b Fields.dst_port t.dst_port

let seed = 0x811c9dc5

let pinned_key t =
  let h = seed in
  let h = match t.port with Some v -> mix h v | None -> h in
  let h = match t.src_mac with Some m -> mix h (Mac.to_int m) | None -> h in
  let h = match t.dst_mac with Some m -> mix h (Mac.to_int m) | None -> h in
  let h = match t.eth_type with Some v -> mix h v | None -> h in
  let h = match t.proto with Some v -> mix h v | None -> h in
  let h = match t.src_port with Some v -> mix h v | None -> h in
  match t.dst_port with Some v -> mix h v | None -> h

let packet_key mask (p : Packet.t) =
  let h = seed in
  let h = if mask land Fields.port <> 0 then mix h p.port else h in
  let h =
    if mask land Fields.src_mac <> 0 then mix h (Mac.to_int p.src_mac) else h
  in
  let h =
    if mask land Fields.dst_mac <> 0 then mix h (Mac.to_int p.dst_mac) else h
  in
  let h = if mask land Fields.eth_type <> 0 then mix h p.eth_type else h in
  let h = if mask land Fields.proto <> 0 then mix h p.proto else h in
  let h = if mask land Fields.src_port <> 0 then mix h p.src_port else h in
  if mask land Fields.dst_port <> 0 then mix h p.dst_port else h

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

let pp fmt t =
  let parts = ref [] in
  let add name to_s = function
    | Some v -> parts := Printf.sprintf "%s=%s" name (to_s v) :: !parts
    | None -> ()
  in
  add "port" string_of_int t.port;
  add "src_mac" Mac.to_string t.src_mac;
  add "dst_mac" Mac.to_string t.dst_mac;
  add "eth_type" (Printf.sprintf "0x%04x") t.eth_type;
  add "src_ip" Prefix.to_string t.src_ip;
  add "dst_ip" Prefix.to_string t.dst_ip;
  add "proto" string_of_int t.proto;
  add "src_port" string_of_int t.src_port;
  add "dst_port" string_of_int t.dst_port;
  if !parts = [] then Format.pp_print_string fmt "*"
  else Format.fprintf fmt "{%s}" (String.concat "; " (List.rev !parts))
