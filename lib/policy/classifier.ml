open Sdx_net

type rule = { pattern : Pattern.t; action : Mods.t list }
type t = rule list

let canon_action atoms = List.sort_uniq Mods.compare atoms
let rule pattern action = { pattern; action = canon_action action }
let drop_all = [ rule Pattern.all [] ]
let id_all = [ rule Pattern.all [ Mods.identity ] ]

(* Cross products routinely emit the same pattern several times; only the
   first occurrence can ever match, so later ones are dropped via a
   hashtable — an O(1) shadow check that keeps composition linear in the
   output size.  Full (superset) shadow elimination lives in [optimize]. *)
let dedupe_patterns rules =
  let seen = Pattern.Tbl.create 64 in
  List.filter
    (fun r ->
      if Pattern.Tbl.mem seen r.pattern then false
      else begin
        Pattern.Tbl.add seen r.pattern ();
        true
      end)
    rules

let par c1 c2 =
  let cross =
    List.concat_map
      (fun r1 ->
        List.filter_map
          (fun r2 ->
            match Pattern.inter r1.pattern r2.pattern with
            | Some p -> Some (rule p (r1.action @ r2.action))
            | None -> None)
          c2)
      c1
  in
  dedupe_patterns cross

(* An atom that writes value [v] into an exact-match field can only pull
   back rules whose constraint on that field is absent or equal to [v]
   ([pull_exact] raises Empty otherwise).  [Seq_index] indexes the
   right-hand classifier of a [seq] once, per exact field: for each atom
   it picks the field whose candidate set (matching bucket plus
   unconstrained rules) is smallest, and only those rules are pulled
   back.  Prefix fields are containment-, not equality-, constrained, so
   they are left unindexed.  Buckets carry original rule positions and
   are merged on position, preserving first-match order. *)
module Seq_index = struct
  type entry = { pos : int; er : rule }

  type field = {
    get_mod : Mods.t -> int option;
    by_value : (int, entry list) Hashtbl.t;  (* ascending [pos] *)
    wild : entry list;  (* rules without this field, ascending [pos] *)
    wild_count : int;
  }

  type t = { all : rule list; fields : field list }

  let specs :
      ((Pattern.t -> int option) * (Mods.t -> int option)) list =
    [
      ((fun p -> p.Pattern.port), fun m -> m.Mods.port);
      ( (fun p -> Option.map Mac.to_int p.Pattern.src_mac),
        fun m -> Option.map Mac.to_int m.Mods.src_mac );
      ( (fun p -> Option.map Mac.to_int p.Pattern.dst_mac),
        fun m -> Option.map Mac.to_int m.Mods.dst_mac );
      ((fun p -> p.Pattern.eth_type), fun m -> m.Mods.eth_type);
      ((fun p -> p.Pattern.proto), fun m -> m.Mods.proto);
      ((fun p -> p.Pattern.src_port), fun m -> m.Mods.src_port);
      ((fun p -> p.Pattern.dst_port), fun m -> m.Mods.dst_port);
    ]

  let build_field c2 (get_pat, get_mod) =
    let by_value = Hashtbl.create 16 in
    let wild = ref [] in
    let wild_count = ref 0 in
    let constrained = ref 0 in
    List.iteri
      (fun pos r ->
        let e = { pos; er = r } in
        match get_pat r.pattern with
        | None ->
            incr wild_count;
            wild := e :: !wild
        | Some v ->
            incr constrained;
            Hashtbl.replace by_value v
              (e :: Option.value (Hashtbl.find_opt by_value v) ~default:[]))
      c2;
    (* A field nothing constrains can never narrow the scan. *)
    if !constrained = 0 then None
    else begin
      let sorted = Hashtbl.create (Hashtbl.length by_value) in
      Hashtbl.iter (fun v es -> Hashtbl.replace sorted v (List.rev es)) by_value;
      Some
        { get_mod; by_value = sorted; wild = List.rev !wild;
          wild_count = !wild_count }
    end

  let create c2 = { all = c2; fields = List.filter_map (build_field c2) specs }

  let rec merge a b =
    match (a, b) with
    | [], es | es, [] -> es
    | x :: xs, y :: ys ->
        if x.pos < y.pos then x :: merge xs (y :: ys)
        else y :: merge (x :: xs) ys

  let candidates t (a : Mods.t) =
    let best =
      List.fold_left
        (fun best f ->
          match f.get_mod a with
          | None -> best
          | Some v ->
              let bucket =
                Option.value (Hashtbl.find_opt f.by_value v) ~default:[]
              in
              let n = List.length bucket + f.wild_count in
              (match best with
              | Some (n', _, _) when n' <= n -> best
              | _ -> Some (n, bucket, f.wild)))
        None t.fields
    in
    match best with
    | None -> t.all
    | Some (_, bucket, wild) -> List.map (fun e -> e.er) (merge bucket wild)
end

(* Sequential composition of one action atom with the second classifier:
   pull each candidate pattern of [c2] back through the modification. *)
let seq_atom idx (a : Mods.t) =
  List.filter_map
    (fun r2 ->
      match Pattern.pull_back a r2.pattern with
      | Some p -> Some (rule p (List.map (fun b -> Mods.then_ a b) r2.action))
      | None -> None)
    (Seq_index.candidates idx a)

let restrict p c =
  let confined =
    List.filter_map
      (fun r ->
        match Pattern.inter p r.pattern with
        | Some q -> Some { r with pattern = q }
        | None -> None)
      c
  in
  (* Total again: everything outside [p] is dropped. *)
  dedupe_patterns (confined @ drop_all)

let seq c1 c2 =
  let idx = Seq_index.create c2 in
  let block r1 =
    match r1.action with
    | [] -> [ r1 ]
    | atoms ->
        let subs = List.map (fun a -> seq_atom idx a) atoms in
        let combined =
          match subs with
          | [] -> drop_all
          | first :: rest -> List.fold_left par first rest
        in
        List.filter_map
          (fun r ->
            match Pattern.inter r1.pattern r.pattern with
            | Some p -> Some { r with pattern = p }
            | None -> None)
          combined
  in
  dedupe_patterns (List.concat_map block c1)

(* Predicates compile to classifiers whose action is pass ([id]) or drop
   ([]); boolean connectives are cross products over those. *)
let bool_action b = if b then [ Mods.identity ] else []
let is_pass action = action <> []

let rec compile_pred (pred : Pred.t) : t =
  match pred with
  | True -> id_all
  | False -> drop_all
  | Test p -> dedupe_patterns [ rule p [ Mods.identity ]; rule Pattern.all [] ]
  | And (a, b) -> cross_bool (compile_pred a) (compile_pred b) ( && )
  | Or (a, b) -> cross_bool (compile_pred a) (compile_pred b) ( || )
  | Not a ->
      List.map
        (fun r -> { r with action = bool_action (not (is_pass r.action)) })
        (compile_pred a)

and cross_bool c1 c2 f =
  let cross =
    List.concat_map
      (fun r1 ->
        List.filter_map
          (fun r2 ->
            match Pattern.inter r1.pattern r2.pattern with
            | Some p ->
                Some (rule p (bool_action (f (is_pass r1.action) (is_pass r2.action))))
            | None -> None)
          c2)
      c1
  in
  dedupe_patterns cross

let rec compile (pol : Policy.t) : t =
  match pol with
  | Filter pred -> compile_pred pred
  | Mod m -> [ rule Pattern.all [ m ] ]
  | Union (p, q) -> par (compile p) (compile q)
  | Seq (p, q) -> seq (compile p) (compile q)
  | If (c, p, q) ->
      let cond = compile_pred c in
      let then_ = seq cond (compile p) in
      let else_ = seq (compile_pred (Pred.not_ c)) (compile q) in
      par then_ else_

let first_match c pkt = List.find_opt (fun r -> Pattern.matches r.pattern pkt) c

let eval c pkt =
  match first_match c pkt with
  | None -> []
  | Some r ->
      Packet.Set.elements
        (Packet.Set.of_list (List.map (fun m -> Mods.apply m pkt) r.action))

(* Shadow elimination: a rule is dead when an earlier rule's pattern is a
   superset of its own.  Any superset of pattern [p] must constrain a
   subset of [p]'s fields, with equal values on exact fields and
   containing prefixes on IP fields — so earlier patterns are bucketed by
   (constrained-prefix-fields mask, pattern with prefixes erased), and
   for each candidate we probe only the buckets of its generalizations
   (each constrained field kept or dropped) instead of scanning every
   kept rule.  2^k probes for k constrained fields (k <= 9, typically
   2-3) replace the O(n) scan per rule. *)
module Shadow_tbl = Hashtbl.Make (struct
  type t = int * Pattern.t

  let equal (a, p) (b, q) = Int.equal a b && Pattern.equal p q
  let hash (a, p) = (Pattern.hash p * 31) + a
end)

let erase_prefixes (p : Pattern.t) = { p with src_ip = None; dst_ip = None }

let prefix_bits (p : Pattern.t) =
  (if Option.is_some p.src_ip then 1 else 0)
  lor if Option.is_some p.dst_ip then 2 else 0

(* One clearing function per constrained exact field of [p]. *)
let exact_clearers (p : Pattern.t) =
  let add clear field acc = if Option.is_some field then clear :: acc else acc in
  add (fun (q : Pattern.t) -> { q with port = None }) p.port
  @@ add (fun (q : Pattern.t) -> { q with src_mac = None }) p.src_mac
  @@ add (fun (q : Pattern.t) -> { q with dst_mac = None }) p.dst_mac
  @@ add (fun (q : Pattern.t) -> { q with eth_type = None }) p.eth_type
  @@ add (fun (q : Pattern.t) -> { q with proto = None }) p.proto
  @@ add (fun (q : Pattern.t) -> { q with src_port = None }) p.src_port
  @@ add (fun (q : Pattern.t) -> { q with dst_port = None }) p.dst_port
  @@ []

let shadow_prune c =
  let tbl = Shadow_tbl.create 256 in
  let shadowed p =
    let base = erase_prefixes p in
    let clears = Array.of_list (exact_clearers p) in
    let k = Array.length clears in
    let pb = prefix_bits p in
    let found = ref false in
    let emask = ref 0 in
    let continue = ref true in
    while !continue do
      let e = ref base in
      for i = 0 to k - 1 do
        if !emask land (1 lsl i) <> 0 then e := clears.(i) !e
      done;
      (* Probe every sub-selection of the constrained prefix fields. *)
      let pmask = ref pb in
      let more_pmasks = ref true in
      while !more_pmasks && not !found do
        (match Shadow_tbl.find_opt tbl (!pmask, !e) with
        | Some earlier ->
            if List.exists (fun q -> Pattern.subset p q) !earlier then
              found := true
        | None -> ());
        if !pmask = 0 then more_pmasks := false
        else pmask := (!pmask - 1) land pb
      done;
      if !found || !emask = (1 lsl k) - 1 then continue := false
      else incr emask
    done;
    !found
  in
  let insert p =
    let key = (prefix_bits p, erase_prefixes p) in
    match Shadow_tbl.find_opt tbl key with
    | Some earlier -> earlier := p :: !earlier
    | None -> Shadow_tbl.add tbl key (ref [ p ])
  in
  List.filter
    (fun r ->
      if shadowed r.pattern then false
      else begin
        insert r.pattern;
        true
      end)
    c

(* Report (without removing) which rules an earlier superset rule
   shadows: [(i, j)] means rule [i] can never match because rule [j < i]
   matches every packet rule [i] does.  Same bucketed generalization
   probe as [shadow_prune], with rule indices carried in the buckets. *)
let shadows c =
  let tbl = Shadow_tbl.create 256 in
  let shadowed_by p =
    let base = erase_prefixes p in
    let clears = Array.of_list (exact_clearers p) in
    let k = Array.length clears in
    let pb = prefix_bits p in
    let found = ref None in
    let emask = ref 0 in
    let continue = ref true in
    while !continue do
      let e = ref base in
      for i = 0 to k - 1 do
        if !emask land (1 lsl i) <> 0 then e := clears.(i) !e
      done;
      let pmask = ref pb in
      let more_pmasks = ref true in
      while !more_pmasks && !found = None do
        (match Shadow_tbl.find_opt tbl (!pmask, !e) with
        | Some earlier ->
            List.iter
              (fun (q, j) ->
                let better =
                  match !found with None -> true | Some j' -> j < j'
                in
                if better && Pattern.subset p q then found := Some j)
              !earlier
        | None -> ());
        if !pmask = 0 then more_pmasks := false
        else pmask := (!pmask - 1) land pb
      done;
      if !found <> None || !emask = (1 lsl k) - 1 then continue := false
      else incr emask
    done;
    !found
  in
  let insert p i =
    let key = (prefix_bits p, erase_prefixes p) in
    match Shadow_tbl.find_opt tbl key with
    | Some earlier -> earlier := (p, i) :: !earlier
    | None -> Shadow_tbl.add tbl key (ref [ (p, i) ])
  in
  let _, pairs =
    List.fold_left
      (fun (i, acc) r ->
        let acc =
          match shadowed_by r.pattern with Some j -> (i, j) :: acc | None -> acc
        in
        insert r.pattern i;
        (i + 1, acc))
      (0, []) c
  in
  List.rev pairs

(* Remove rules shadowed by an earlier superset rule, and remove
   non-final rules whose action equals the final catch-all's action
   provided no rule in between intersects them with a different action
   (first-match would fall through to the same result). *)
let optimize c =
  let shadow_pruned = shadow_prune c in
  match List.rev shadow_pruned with
  | [] -> []
  | last :: rev_body ->
      let body = List.rev rev_body in
      let rec prune = function
        | [] -> []
        | r :: rest ->
            let rest' = prune rest in
            let redundant =
              r.action = last.action
              && List.for_all
                   (fun r' ->
                     r'.action = r.action
                     || Pattern.inter r.pattern r'.pattern = None)
                   rest'
            in
            if redundant then rest' else r :: rest'
      in
      prune body @ [ last ]

let rule_count = List.length

let equivalent_on c1 c2 pkts =
  List.for_all (fun pkt -> eval c1 pkt = eval c2 pkt) pkts

let pp_rule fmt r =
  Format.fprintf fmt "@[<h>%a -> [%a]@]" Pattern.pp r.pattern
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       Mods.pp)
    r.action

let pp fmt c =
  Format.fprintf fmt "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_rule)
    c
