(** Hash-consed forwarding decision diagrams (FDDs) — the compiler's
    intermediate representation for policy composition.

    An FDD is an ordered binary decision diagram whose internal nodes
    test one header field against one value (an exact match, or a CIDR
    prefix for the IP fields) and whose leaves are action sets
    ({!Mods.t} lists, duplicate-free and sorted, exactly a classifier
    rule's action).  Taking the true edge of every test along a path and
    reading the leaf gives the packet's action set, so an FDD denotes
    the same [packet -> action set] function a total classifier does —
    but composition ([union], [seq], [ite]) is a memoized graph walk
    instead of a rule cross-product, and structurally equal
    sub-diagrams are shared through a unique table.

    Tests along every root-to-leaf path are strictly increasing in a
    canonical key order: field index first (port, src_mac, dst_mac,
    eth_type, src_ip, dst_ip, proto, src_port, dst_port), then value
    (longer prefixes before shorter ones, so a path's positive prefix
    tests refine left to right).  The order is what makes hash-consing
    effective: equal functions built along different routes tend to
    collapse to the same node.

    All nodes, the unique table and the memo tables live in a
    {!manager}.  A manager is {e not} domain-safe — the compiler gives
    each pool domain its own manager (sharded construction) and merges
    the shards' diagrams into one manager with {!import}, a final
    hash-cons pass.  Diagrams from different managers must never be
    mixed in one operation. *)

open Sdx_net

type manager
(** Unique table + memo caches + counters.  One per domain. *)

type t
(** A diagram handle.  Only valid with the manager that built it
    (or, after {!import}, the manager it was imported into). *)

val create : unit -> manager

val drop : manager -> t
(** The diagram mapping every packet to the empty action set. *)

val id : manager -> t
(** The diagram mapping every packet to [[Mods.identity]]. *)

val node_id : t -> int
(** The node's unique id within its manager — hash-consing makes it a
    structural identity, so it can key caches of per-diagram results
    (e.g. the compiler's extraction cache). *)

val const : manager -> Mods.t list -> t
(** A single leaf holding the (canonicalized) action set. *)

val of_pred : manager -> Pred.t -> t
(** A boolean diagram: [[Mods.identity]] where the predicate holds,
    empty elsewhere — the FDD counterpart of
    {!Classifier.compile_pred}. *)

val of_policy : manager -> Policy.t -> t
(** Compile a policy; agrees with {!Policy.eval} on every packet. *)

val union : manager -> t -> t -> t
(** Parallel composition: pointwise union of action sets. *)

val seq : manager -> t -> t -> t
(** Sequential composition: each action of the first diagram rewrites
    the packet and feeds the second; the results are unioned. *)

val ite : manager -> t -> t -> t -> t
(** [ite mgr c a b]: where boolean diagram [c] passes, behave as [a],
    elsewhere as [b]. *)

val restrict : manager -> Pattern.t -> t -> t
(** [restrict mgr p d] confines [d] to packets matching [p]; packets
    outside [p] get the empty action set. *)

val eval : t -> Packet.t -> Mods.t list
(** The action set of one packet, by walking the diagram. *)

val to_classifier : t -> Classifier.t
(** Extract a priority-ordered total classifier with identical
    first-match semantics: paths are emitted depth-first, true edge
    before false edge, each rule's pattern the conjunction of the
    positive tests on its path.  Unsatisfiable paths are skipped and
    duplicate patterns deduplicated (a later equal pattern can never be
    the first match).  The result is deterministic: it depends only on
    the diagram's structure, not on the manager or construction
    order. *)

val import : manager -> t -> t
(** Hash-cons a diagram (from any manager) into [mgr], sharing
    structure with everything already there — the shard-merge pass. *)

val size : t -> int
(** Reachable node count (shared nodes counted once). *)

type stats = {
  nodes : int;  (** nodes ever created in the manager (monotone) *)
  memo_hits : int;  (** memo-cache hits across all operations (monotone) *)
  unique_table_size : int;  (** live entries in the unique table *)
}

val stats : manager -> stats

val check_unique : t -> bool
(** Hash-consing invariant: no two distinct reachable nodes are
    structurally equal.  For property tests. *)

val pp : Format.formatter -> t -> unit
