(* Seeded-race mutation suite and model-checking scenarios for the
   sdx_race sanitizer.

   Two families:

   - {!seeded}: four miniature scenarios, each replicating one of the
     runtime's synchronization protocols (RCU publish/acquire, the
     pool's batch-counter lock, the table's single-writer snapshot
     counter, the DLS epoch cache) with a [bug] switch that removes
     exactly one happens-before edge.  The clean variant must be silent
     under the detector; the buggy variant must be flagged.  Detection
     is deterministic in Record mode: the vector clocks of the two
     accesses are unordered regardless of how the real domains happen to
     interleave, so the report does not depend on timing.  Each scenario
     is also explorer-safe (finite, no spin loops), which lets the test
     suite cross-check DPOR against full enumeration on them.

   - the [model_*] scenarios: the real structures — [Openflow.Table]'s
     RCU snapshot path, [Parallel]'s pool shutdown and batch protocol,
     the [Parallel.Local] epoch cache — driven under {!Explore.run} at
     unit-test scale, exhaustively over every interleaving.  The clean
     models must come back {!Explore.ok}; [model_rcu_misuse] breaks the
     single-writer contract on purpose and must be caught.

   Everything here creates its structures inside the scenario body, so
   they are tracked in whichever mode the caller enabled. *)

module Sync = Sdx_sanitize.Sync
module Explore = Sdx_sanitize.Explore
open Sdx_openflow

(* ------------------------------------------------------------------ *)
(* Seeded scenarios                                                    *)

type scenario = {
  sc_name : string;
  sc_bug : string;  (* what the buggy variant breaks *)
  sc_kind : string;  (* substring expected in the buggy report kind *)
  sc_run : bug:bool -> unit -> unit;
}

(* RCU publish/acquire (Table.invalidate_snapshot / snapshot): a writer
   prepares state and publishes it through an atomic; the reader must
   acquire through the same atomic before touching the state.  The bug
   skips the acquire — the stale-snapshot read that a forgotten
   [invalidate_snapshot] would permit. *)
let rcu_publish ~bug () =
  let state = Sync.Tracked.create "race_suite.rcu.state" in
  let published = Sync.Atomic.make ~name:"race_suite.rcu.flag" false in
  let writer =
    Sync.Domain.spawn ~name:"rcu-writer" (fun () ->
        Sync.Tracked.write state;
        Sync.Atomic.set published true)
  in
  if bug then Sync.Tracked.read state
  else if Sync.Atomic.get published then Sync.Tracked.read state;
  Sync.Domain.join writer

(* The pool's batch counter ([Parallel.run_chunks.remaining]): two
   threads decrement a shared counter under a mutex.  The bug drops one
   side's lock — the seeded "drop a Mutex.lock in map_array". *)
let pool_counter ~bug () =
  let m = Sync.Mutex.create ~name:"race_suite.pool.batch" () in
  let remaining = Sync.Tracked.create "race_suite.pool.remaining" in
  let work ~skip_lock =
    if skip_lock then Sync.Tracked.write remaining
    else begin
      Sync.Mutex.lock m;
      Sync.Tracked.write remaining;
      Sync.Mutex.unlock m
    end
  in
  let worker =
    Sync.Domain.spawn ~name:"pool-worker" (fun () -> work ~skip_lock:bug)
  in
  work ~skip_lock:false;
  Sync.Domain.join worker

(* The table's snapshot counter: single-writer by contract, encoded as
   an [Owner] assertion.  The bug bumps it from the reader thread. *)
let snapshot_counter ~bug () =
  let owner = Sync.Owner.create "race_suite.table.writer" in
  let snapshots = Sync.Tracked.create "race_suite.table.snapshots" in
  let bump () =
    Sync.Owner.assert_owner owner;
    Sync.Tracked.write snapshots
  in
  let reader =
    Sync.Domain.spawn ~name:"table-reader" (fun () -> if bug then bump ())
  in
  bump ();
  Sync.Domain.join reader

(* The DLS epoch cache: engine state is rebuilt and the new epoch
   released through an atomic; a worker must re-acquire the epoch before
   touching engine state.  The bug reuses the stale cached view without
   the epoch check. *)
let dls_epoch ~bug () =
  let engine = Sync.Tracked.create "race_suite.dls.engine" in
  let epoch = Sync.Atomic.make ~name:"race_suite.dls.epoch" 0 in
  let worker =
    Sync.Domain.spawn ~name:"dls-worker" (fun () ->
        if bug then Sync.Tracked.read engine
        else if Sync.Atomic.get epoch = 1 then Sync.Tracked.read engine)
  in
  Sync.Tracked.write engine;
  Sync.Atomic.set epoch 1;
  Sync.Domain.join worker

let seeded =
  [
    {
      sc_name = "rcu-publish";
      sc_bug = "reader skips the snapshot acquire (missed invalidate)";
      sc_kind = "race";
      sc_run = rcu_publish;
    };
    {
      sc_name = "pool-counter";
      sc_bug = "one worker skips the batch mutex";
      sc_kind = "write-write race";
      sc_run = pool_counter;
    };
    {
      sc_name = "snapshot-counter";
      sc_bug = "reader bumps the single-writer snapshots counter";
      sc_kind = "single-writer violation";
      sc_run = snapshot_counter;
    };
    {
      sc_name = "dls-epoch";
      sc_bug = "worker reuses a stale epoch's engine view";
      sc_kind = "race";
      sc_run = dls_epoch;
    };
  ]

(* Run [f] under Record mode with real domains and hand back what the
   detector saw.  Restores the previous mode. *)
let run_record f =
  let prev = Sync.mode () in
  Sync.set_mode Record;
  Fun.protect
    ~finally:(fun () -> Sync.set_mode prev)
    (fun () ->
      f ();
      let rs = Sync.races () in
      Sync.clear_races ();
      rs)

(* ------------------------------------------------------------------ *)
(* Model scenarios over the real structures                            *)

let mk_flow ?(priority = 100) ?(pattern = Sdx_policy.Pattern.all) port =
  Flow.make ~priority ~pattern ~actions:[ Sdx_policy.Mods.make ~port () ]

(* RCU snapshot vs. concurrent mutation: the writer keeps installing and
   re-snapshotting while a reader probes whatever snapshot is currently
   published.  Correct under every interleaving: the reader only touches
   frozen state, and only the writer ever builds. *)
let model_rcu_snapshot () =
  let t = Table.create () in
  Table.install t (mk_flow ~priority:10 1);
  ignore (Table.snapshot t);
  let pkt = Sdx_net.Packet.make ~dst_port:80 () in
  let reader =
    Sync.Domain.spawn ~name:"snap-reader" (fun () ->
        match Table.published_snapshot t with
        | Some s -> ignore (Table.snapshot_lookup s pkt)
        | None -> ())
  in
  Table.install t
    (mk_flow ~priority:20 ~pattern:(Sdx_policy.Pattern.make ~dst_port:80 ()) 2);
  let s = Table.snapshot t in
  Sync.Domain.join reader;
  if Table.snapshot_size s <> 2 then failwith "model_rcu_snapshot: bad snapshot"

(* Same shape, but the reader violates the single-writer contract by
   calling [snapshot] (which may build) instead of
   [published_snapshot].  In the interleavings where the writer's
   mutation has retired the snapshot, the reader hits the build path and
   the Owner assertion must fire. *)
let model_rcu_misuse () =
  let t = Table.create () in
  Table.install t (mk_flow ~priority:10 1);
  ignore (Table.snapshot t);
  let reader =
    Sync.Domain.spawn ~name:"bad-reader" (fun () -> ignore (Table.snapshot t))
  in
  Table.install t (mk_flow ~priority:20 2);
  ignore (Table.snapshot t);
  Sync.Domain.join reader

(* Pool shutdown vs. in-flight batch: a two-domain pool maps a batch and
   shuts down.  Every interleaving of worker wakeup, queue drain,
   completion broadcast and shutdown must terminate (no deadlock, no
   lost wakeup) with the right answer. *)
let model_pool_shutdown () =
  Sdx_core.Parallel.with_pool ~domains:2 (fun p ->
      let out = Sdx_core.Parallel.map_array p (fun x -> x + 1) [| 1; 2 |] in
      if out <> [| 2; 3 |] then failwith "model_pool_shutdown: wrong result")

(* DLS epoch cache vs. engine rebuild: a worker acquires the epoch,
   caches through [Parallel.Local] and reads engine state; the rebuild
   happens strictly after the worker joins, publishing a new epoch, and
   a second worker must see the new epoch (its cache misses) and read
   the rebuilt engine — with no unordered access in any interleaving. *)
let model_dls_epoch () =
  let engine = Sync.Tracked.create "model.dls.engine" in
  let epoch = Sync.Atomic.make ~name:"model.dls.epoch" 1 in
  let slot : int Sdx_core.Parallel.Local.t = Sdx_core.Parallel.Local.create () in
  Sync.Tracked.write engine;
  let use_engine () =
    let e = Sync.Atomic.get epoch in
    (match Sdx_core.Parallel.Local.find slot ~epoch:e with
    | Some cached -> if cached <> e then failwith "model_dls_epoch: stale cache"
    | None -> Sdx_core.Parallel.Local.set slot ~epoch:e e);
    Sync.Tracked.read engine
  in
  let w1 = Sync.Domain.spawn ~name:"epoch-w1" use_engine in
  Sync.Domain.join w1;
  (* rebuild between runs: new engine state, then release the epoch *)
  Sync.Tracked.write engine;
  Sync.Atomic.set epoch 2;
  let w2 = Sync.Domain.spawn ~name:"epoch-w2" use_engine in
  Sync.Domain.join w2

(* ------------------------------------------------------------------ *)
(* The full suite, as run by [sdxd race] and CI                        *)

type item = {
  item_name : string;
  item_ok : bool;
  item_detail : string;
  item_reports : Sync.report list;
}

let contains_sub hay needle =
  let ln = String.length needle and lh = String.length hay in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let seeded_items () =
  List.concat_map
    (fun sc ->
      let clean = run_record (sc.sc_run ~bug:false) in
      let buggy = run_record (sc.sc_run ~bug:true) in
      let caught =
        List.exists (fun r -> contains_sub r.Sync.r_kind sc.sc_kind) buggy
      in
      [
        {
          item_name = Printf.sprintf "seeded/%s/clean" sc.sc_name;
          item_ok = clean = [];
          item_detail =
            (if clean = [] then "no race on the correct protocol"
             else Printf.sprintf "%d spurious report(s)" (List.length clean));
          item_reports = clean;
        };
        {
          item_name = Printf.sprintf "seeded/%s/buggy" sc.sc_name;
          item_ok = caught;
          item_detail =
            (if caught then
               Printf.sprintf "caught: %s" (List.hd buggy).Sync.r_kind
             else
               Printf.sprintf "MISSED (%s; wanted kind ~ %S, got %d report(s))"
                 sc.sc_bug sc.sc_kind (List.length buggy));
          item_reports = buggy;
        };
      ])
    seeded

(* Record-mode smoke over the real pool: a parallel map on real domains
   with the detector on must be race-free. *)
let pool_smoke ~domains () =
  let reports =
    run_record (fun () ->
        Sdx_core.Parallel.with_pool ~domains (fun p ->
            let out =
              Sdx_core.Parallel.map_array p (fun x -> (2 * x) + 1)
                (Array.init 64 Fun.id)
            in
            if Array.length out <> 64 then failwith "pool_smoke: bad result"))
  in
  {
    item_name = Printf.sprintf "record/pool-smoke(domains=%d)" domains;
    item_ok = reports = [];
    item_detail =
      (if reports = [] then "instrumented map_array on real domains: clean"
       else Printf.sprintf "%d report(s)" (List.length reports));
    item_reports = reports;
  }

let explorer_item ?max_execs name ~expect_race scenario =
  let r = Explore.run ?max_execs scenario in
  let detail = Format.asprintf "%a" Explore.pp_summary r in
  let ok =
    if expect_race then
      r.Explore.races <> [] && r.Explore.deadlocks = 0 && r.Explore.errors = []
      && not r.Explore.truncated
    else Explore.ok r
  in
  {
    item_name = "model/" ^ name;
    item_ok = ok;
    item_detail = detail;
    item_reports = r.Explore.races;
  }

let model_items () =
  [
    explorer_item "rcu-snapshot" ~expect_race:false model_rcu_snapshot;
    explorer_item "rcu-misuse" ~expect_race:true model_rcu_misuse;
    (* ~19k interleavings when exhaustive; the raised cap is headroom so
       a shifted exploration order never reads as truncation *)
    explorer_item "pool-shutdown" ~max_execs:100_000 ~expect_race:false
      model_pool_shutdown;
    explorer_item "dls-epoch" ~expect_race:false model_dls_epoch;
  ]
  @ List.map
      (fun sc ->
        explorer_item
          (Printf.sprintf "seeded-%s" sc.sc_name)
          ~expect_race:true
          (sc.sc_run ~bug:true))
      seeded

let run_all ?(domains = 2) () =
  seeded_items () @ [ pool_smoke ~domains () ] @ model_items ()

let all_ok items = List.for_all (fun i -> i.item_ok) items

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let items_json items =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"items\":[";
  List.iteri
    (fun i it ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"ok\":%b,\"detail\":\"%s\",\"reports\":%s}"
           (json_escape it.item_name) it.item_ok
           (json_escape it.item_detail)
           (Sync.reports_json it.item_reports)))
    items;
  Buffer.add_string buf (Printf.sprintf "],\"ok\":%b}" (all_ok items));
  Buffer.contents buf
