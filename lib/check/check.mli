(** Static verification of compiled SDX state (§4.1/§4.2 invariants).

    A header-space-style analyzer over [Classifier.t] plus runtime
    state, using the {!Sdx_policy.Pattern} algebra as its symbolic
    domain.  Five passes:

    - {b isolation}: no packet entering on participant A's ports can be
      forwarded or modified by rules derived from participant B's policy
      except via an explicit B->A peering — every rule is attributed to
      its originating participant through {!Sdx_core.Compile.provenance}
      and its in-port pinning and egress set are verified;
    - {b bgp}: every forwarding rule's destination prefix/VMAC is
      covered by a route the route server currently exports to that
      participant, cross-checked against the Loc-RIBs — including rules
      installed by the incremental fast path;
    - {b loops}: forwarding-cycle detection over middlebox redirect
      chains (the Prelude failure mode) and, when a fabric is supplied,
      symbolic reachability over the multi-switch tables;
    - {b arp}: the ARP responder answers exactly the live binding
      universe — every participant port and every active VNH resolves to
      its MAC, and no retired VNH still answers
      ({!Sdx_arp.Responder.diff} against
      {!Sdx_core.Compile.active_groups});
    - {b lints}: shadowed/unreachable rules, stage-1/stage-2 VMAC tag
      mismatches in the two-table variant, and priority-band overlap
      between fast-path blocks and the base classifier.

    Every finding carries a severity, the offending rule indices, and a
    concrete witness packet built from the offending pattern. *)

open Sdx_net
open Sdx_core
open Sdx_fabric

type severity = Info | Warning | Error

val severity_label : severity -> string
val pp_severity : Format.formatter -> severity -> unit

type finding = {
  pass : string;  (** "isolation", "bgp", "loops", "arp", or "lints" *)
  code : string;  (** stable machine-readable finding kind *)
  severity : severity;
  detail : string;
  rules : int list;  (** offending rule indices into the checked ruleset *)
  witness : Packet.t option;
      (** a concrete packet exhibiting the problem, when constructible *)
}

type report = {
  findings : finding list;
  rules_checked : int;
  passes_run : string list;
  elapsed_s : float;
}

val all_passes : string list

(** {1 Subjects} *)

type subject
(** The artifact under analysis: a configuration, its compiled state,
    and the effective provenance-attributed ruleset. *)

val subject_of_runtime : Runtime.t -> subject
(** Fast-path blocks stacked above the base classifier, with the
    runtime's priority-band layout. *)

val subject_of_compiled : Compile.t -> Config.t -> subject

val rules : subject -> (Sdx_policy.Classifier.rule * Compile.provenance) list

val with_rules :
  subject -> (Sdx_policy.Classifier.rule * Compile.provenance) list -> subject
(** A subject with its ruleset replaced — the fault-injection surface
    the mutation tests use. *)

(** {1 Running} *)

val run : ?fabric:Topology.fabric -> ?passes:string list -> subject -> report
(** Runs the selected passes (default: all).  [fabric] enables the
    multi-switch symbolic-reachability half of the loop pass.  Records
    [sdx_check_*] metrics and a ["check"] trace span. *)

val runtime :
  ?fabric:Topology.fabric -> ?passes:string list -> Runtime.t -> report

(** {1 Incremental checking}

    The always-on mode: instead of re-verifying the whole table after
    every burst, re-verify only the obligations the burst touched — the
    {!Sdx_core.Runtime.dirty} rule indices (isolation and the per-rule
    half of the BGP pass) and provenance groups (the per-group trace
    half of the BGP pass).  The ARP pass is global but cheap and
    burst-affected, so it always runs in full; lints run shallow
    (priority-band layout and provenance coverage only); the loop pass
    is skipped because its obligations derive from policies and the
    fabric, which BGP bursts never change (policy changes reoptimize,
    which resets the dirty-set and forces a full check).  Staleness a
    burst induces on {e untouched} rules is the one class this misses —
    the periodic full checkpoints cover it. *)

val incremental_passes : string list
(** [["isolation"; "bgp"; "arp"; "lints"]]. *)

val run_incremental :
  ?passes:string list -> dirty:Runtime.dirty -> subject -> report
(** Findings are reported with the same codes, details, rule indices and
    witnesses the full {!run} would produce for the dirty subset, so the
    two cross-validate (the qcheck suite asserts it).  [rules_checked]
    counts the dirty rules actually in range. *)

val runtime_incremental : ?fabric:Topology.fabric -> Runtime.t -> report
(** Per-burst entry point: {!Sdx_core.Runtime.consume_dirty}, then
    {!run_incremental} over [Some] dirty-set or a full {!runtime} pass
    after a rebuild ([None]).  Wire it into [Replay.soak]'s
    [check_incremental] callback to verify every burst commit inline. *)

val compiled :
  ?fabric:Topology.fabric ->
  ?passes:string list ->
  Compile.t ->
  Config.t ->
  report

val fabric_loops : ?max_states:int -> Topology.fabric -> finding list
(** Just the symbolic walk over one fabric's tables (also reachable via
    [run ~fabric]). *)

val network_lints : Network.t -> finding list
(** Dynamic lints over a live {!Sdx_fabric.Network}: packets lost at the
    middlebox steering-chain depth bound (Warning,
    ["steering-chain-drops"]), mixed-version packets the fabric's
    consistency monitor counted (Error, ["mixed-version-packets"]) and
    the tagged-frame transit misses among them (Error,
    ["transit-miss"]) — plus a {!fabric_loops} walk over the live
    per-switch tables (version-tagged transit rules included). *)

val witness_of_pattern : Sdx_policy.Pattern.t -> Packet.t
(** A concrete packet inside a pattern: constrained exact fields keep
    their value, prefix fields take their first address, free fields
    take {!Sdx_net.Packet.make} defaults. *)

(** {1 Reports} *)

val errors : report -> finding list
val warnings : report -> finding list
val has_errors : report -> bool
val count : severity -> report -> int
val summary : report -> string
val pp_finding : Format.formatter -> finding -> unit
val pp_report : Format.formatter -> report -> unit

exception Violation of report

(** {1 Hooks} *)

val install_runtime_hook : ?fail:bool -> unit -> unit
(** Installs the process-wide {!Sdx_core.Runtime.set_check_hook}: every
    compilation the runtime performs (initial, re-optimization,
    fast-path install) is verified.  Error findings raise {!Violation}
    when [fail] is set and are printed to stderr otherwise. *)

val uninstall_runtime_hook : unit -> unit
