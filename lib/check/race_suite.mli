(** Seeded-race mutation scenarios and model-checking drivers for the
    sdx_race sanitizer ([sdxd race] and the CI race job run these).

    {!seeded} replicates four of the runtime's synchronization
    protocols, each with a [bug] switch removing exactly one
    happens-before edge; the detector must flag every buggy variant and
    stay silent on every clean one.  The [model_*] scenarios drive the
    real structures (RCU table snapshots, the domain pool, the DLS
    epoch cache) under the {!Sdx_sanitize.Explore} interleaving
    explorer, exhaustively at unit-test scale. *)

module Sync := Sdx_sanitize.Sync

type scenario = {
  sc_name : string;
  sc_bug : string;  (** what the buggy variant breaks *)
  sc_kind : string;  (** substring expected in the buggy report's kind *)
  sc_run : bug:bool -> unit -> unit;
}

val seeded : scenario list

val run_record : (unit -> unit) -> Sync.report list
(** Run under Record mode with real domains; returns (and clears) the
    detector's reports, restoring the previous mode. *)

val model_rcu_snapshot : unit -> unit
(** RCU snapshot vs. concurrent mutation on a real [Openflow.Table]:
    race-free in every interleaving. *)

val model_rcu_misuse : unit -> unit
(** A reader building snapshots concurrently with the writer: the
    single-writer Owner assertion must fire in some interleaving. *)

val model_pool_shutdown : unit -> unit
(** Pool shutdown vs. in-flight batch on a real [Parallel] pool. *)

val model_dls_epoch : unit -> unit
(** DLS epoch cache vs. engine rebuild. *)

(** One pass/fail entry of the suite. *)
type item = {
  item_name : string;
  item_ok : bool;
  item_detail : string;
  item_reports : Sync.report list;
}

val run_all : ?domains:int -> unit -> item list
(** Seeded clean/buggy pairs under Record mode, a Record-mode smoke of
    the real pool at [domains] domains, and the exhaustive explorer
    models (including the seeded buggy variants re-checked under the
    explorer). *)

val all_ok : item list -> bool
val items_json : item list -> string
