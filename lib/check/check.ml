open Sdx_net
open Sdx_policy
open Sdx_bgp
open Sdx_core
open Sdx_fabric

type severity = Info | Warning | Error

let severity_label = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let pp_severity ppf s = Format.pp_print_string ppf (severity_label s)

type finding = {
  pass : string;
  code : string;
  severity : severity;
  detail : string;
  rules : int list;
  witness : Packet.t option;
}

type report = {
  findings : finding list;
  rules_checked : int;
  passes_run : string list;
  elapsed_s : float;
}

let all_passes = [ "isolation"; "bgp"; "loops"; "arp"; "lints" ]

module Obs = struct
  open Sdx_obs.Registry

  let checks = counter "sdx_check_total"
  let seconds = histogram "sdx_check_seconds"

  let findings_error =
    counter ~labels:[ ("severity", "error") ] "sdx_check_findings_total"

  let findings_warning =
    counter ~labels:[ ("severity", "warning") ] "sdx_check_findings_total"

  let findings_info =
    counter ~labels:[ ("severity", "info") ] "sdx_check_findings_total"

  let of_severity = function
    | Error -> findings_error
    | Warning -> findings_warning
    | Info -> findings_info

  (* The incremental path gets its own family: its per-call cost is what
     lets the soak harness verify every burst, so it must be observable
     separately from full passes. *)
  let incremental = counter "sdx_check_incremental_total"
  let incremental_seconds = histogram "sdx_check_incremental_seconds"
  let incremental_dirty_rules = gauge "sdx_check_incremental_dirty_rules"
  let incremental_dirty_groups = gauge "sdx_check_incremental_dirty_groups"
end

(* ------------------------------------------------------------------ *)
(* Subjects: the artifact under analysis.                              *)

type subject = {
  config : Config.t;
  compiled : Compile.t;
  rules : (Classifier.rule * Compile.provenance) array;
  bands : (int * int) list;  (* fast-path (floor, rule count), oldest first *)
  base_rules : int;
  fastpath : bool;
      (* the subject came from a live runtime, whose fast-path machinery
         will install blocks in the [Runtime.extras_floor] band — a base
         classifier reaching that band is then a hard layout violation.
         A bare compile has no priority assignment yet, so the same
         overlap is advisory. *)
  attribution_gap : int;  (* rules the provenance blocks fail to cover *)
}

(* Expand block-level provenance into a per-rule attribution. *)
let attribute classifier provs =
  let arr =
    Array.of_list
      (List.map (fun r -> (r, Compile.Unattributed)) classifier)
  in
  let i = ref 0 in
  List.iter
    (fun (p, n) ->
      for k = !i to min (Array.length arr) (!i + n) - 1 do
        let r, _ = arr.(k) in
        arr.(k) <- (r, p)
      done;
      i := !i + n)
    provs;
  (arr, Array.length arr - min (Array.length arr) !i)

let subject_of_compiled compiled config =
  let classifier = Compile.classifier compiled in
  let rules, gap = attribute classifier (Compile.provenance compiled) in
  {
    config;
    compiled;
    rules;
    bands = [];
    base_rules = Classifier.rule_count classifier;
    fastpath = false;
    attribution_gap = gap;
  }

let subject_of_runtime rt =
  let classifier = Runtime.classifier rt in
  let rules, gap = attribute classifier (Runtime.provenance rt) in
  {
    config = Runtime.config rt;
    compiled = Runtime.compiled rt;
    rules;
    bands = Runtime.extras_bands rt;
    base_rules = Runtime.base_rule_count rt;
    fastpath = true;
    attribution_gap = gap;
  }

let rules subj = Array.to_list subj.rules

let with_rules subj rules =
  { subj with rules = Array.of_list rules; attribution_gap = 0 }

let subject_classifier subj = Array.to_list (Array.map fst subj.rules)

(* ------------------------------------------------------------------ *)
(* Witness packets.                                                    *)

(* A concrete packet inside a pattern: constrained exact fields keep
   their value, prefix fields take their first address, everything else
   takes [Packet.make]'s defaults. *)
let witness_of_pattern (p : Pattern.t) =
  Packet.make ?port:p.port ?src_mac:p.src_mac ?dst_mac:p.dst_mac
    ?eth_type:p.eth_type
    ?src_ip:(Option.map Prefix.first p.src_ip)
    ?dst_ip:(Option.map Prefix.first p.dst_ip)
    ?proto:p.proto ?src_port:p.src_port ?dst_port:p.dst_port ()

(* ------------------------------------------------------------------ *)
(* Shared config lookups.                                              *)

let group_by_id subj id =
  List.find_opt
    (fun (g : Compile.group) -> g.id = id)
    (Compile.all_groups subj.compiled)

(* Prefixes of [g] still bound to [g] — older fast-path blocks may
   reference groups a later burst superseded; their rules are dead, not
   unsafe. *)
let live_prefixes subj (g : Compile.group) =
  List.filter
    (fun p ->
      match Compile.group_of_prefix subj.compiled p with
      | Some g' -> g'.Compile.id = g.Compile.id
      | None -> false)
    g.Compile.prefixes

let originator_of config prefix =
  List.find_opt
    (fun (p : Participant.t) -> List.exists (Prefix.equal prefix) p.originated)
    (Config.participants config)

(* Fabric ports a packet handed to [p]'s inbound pipeline can leave on:
   [p]'s own ports, its redirect targets' ports, and the delivery port of
   any Default-with-rewrite clause (re-resolved through [p]'s RIB). *)
let inbound_delivery_ports config (p : Participant.t) =
  let own = Config.switch_ports_of config p.asn in
  let of_clause (c : Ppolicy.clause) =
    match c.target with
    | Ppolicy.Redirect m -> Config.switch_ports_of config m
    | Ppolicy.Default -> (
        match c.mods.Mods.dst_ip with
        | None -> []
        | Some addr -> (
            match
              Route_server.lookup_best (Config.server config) ~receiver:p.asn
                addr
            with
            | None -> []
            | Some (_, route) -> (
                match Config.port_of_next_hop config route.next_hop with
                | None -> []
                | Some (_, _, n) -> [ n ])))
    | Ppolicy.Peer _ | Ppolicy.Phys _ | Ppolicy.Drop -> []
  in
  own @ List.concat_map of_clause p.inbound

(* Ports a direct (no-via) outbound clause of [sender] may deliver on. *)
let direct_delivery_ports config (sender : Participant.t) =
  let own = Config.switch_ports_of config sender.asn in
  let of_clause (c : Ppolicy.clause) =
    match c.target with
    | Ppolicy.Redirect m -> Config.switch_ports_of config m
    | Ppolicy.Default -> (
        match c.mods.Mods.dst_ip with
        | None -> []
        | Some addr -> (
            match
              Route_server.lookup_best (Config.server config)
                ~receiver:sender.asn addr
            with
            | None -> []
            | Some (_, route) -> (
                match Config.port_of_next_hop config route.next_hop with
                | None -> []
                | Some (_, _, n) -> [ n ])))
    | Ppolicy.Peer _ | Ppolicy.Phys _ | Ppolicy.Drop -> []
  in
  own @ List.concat_map of_clause sender.outbound

let output_ports (r : Classifier.rule) =
  List.filter_map (fun (m : Mods.t) -> m.port) r.action

let mem_port p ports = List.exists (Int.equal p) ports

(* ------------------------------------------------------------------ *)
(* Pass 1: isolation (§4.1, "Isolating participants from one           *)
(* another").                                                          *)

(* Every rule derived from participant A's policy must (a) match only
   packets entering on A's own ports, and (b) deliver only to ports an
   explicit peering, redirect, or default-route resolution justifies.

   Obligations are per-rule and independent, so [only] restricts the
   pass to a dirty subset with findings (indices, details, witnesses)
   identical to what the full pass reports for those rules. *)
let isolation ?(only = fun _ -> true) subj =
  let config = subj.config in
  let findings = ref [] in
  let add f = findings := f :: !findings in
  let foreign_witness (pat : Pattern.t) sender_ports =
    (* A packet matching the rule from a port the sender does not own. *)
    let foreign =
      List.find_opt
        (fun (p : Participant.t) ->
          List.exists
            (fun n -> not (mem_port n sender_ports))
            (Config.switch_ports_of config p.asn))
        (Config.participants config)
    in
    let port =
      match foreign with
      | Some p ->
          List.find
            (fun n -> not (mem_port n sender_ports))
            (Config.switch_ports_of config p.asn)
      | None -> 0
    in
    witness_of_pattern { pat with Pattern.port = Some port }
  in
  Array.iteri
    (fun i ((r : Classifier.rule), prov) ->
      if only i then
      match prov with
      | Compile.Outbound { sender; via; group = _ } -> (
          let sender_ports = Config.switch_ports_of config sender in
          (match r.pattern.Pattern.port with
          | None ->
              if sender_ports <> [] then
                add
                  {
                    pass = "isolation";
                    code = "unpinned-policy-rule";
                    severity = Error;
                    detail =
                      Format.asprintf
                        "rule %d from %a's outbound policy is not pinned to \
                         %a's in-ports: traffic from any participant can \
                         trigger it"
                        i Asn.pp sender Asn.pp sender;
                    rules = [ i ];
                    witness = Some (foreign_witness r.pattern sender_ports);
                  }
          | Some p ->
              if not (mem_port p sender_ports) then
                add
                  {
                    pass = "isolation";
                    code = "foreign-ingress";
                    severity = Error;
                    detail =
                      Format.asprintf
                        "rule %d from %a's outbound policy matches in-port \
                         %d, which %a does not own"
                        i Asn.pp sender p Asn.pp sender;
                    rules = [ i ];
                    witness = Some (witness_of_pattern r.pattern);
                  });
          (match via with
          | Some v ->
              let declared =
                List.exists
                  (fun (c : Ppolicy.clause) ->
                    match c.target with
                    | Ppolicy.Peer v' -> Asn.equal v v'
                    | _ -> false)
                  (Config.participant config sender).outbound
              in
              if not declared then
                add
                  {
                    pass = "isolation";
                    code = "unjustified-peering";
                    severity = Error;
                    detail =
                      Format.asprintf
                        "rule %d claims a %a->%a peering, but %a's outbound \
                         policy has no fwd(%a) clause"
                        i Asn.pp sender Asn.pp v Asn.pp sender Asn.pp v;
                    rules = [ i ];
                    witness = Some (witness_of_pattern r.pattern);
                  }
          | None -> ());
          let allowed =
            Compile.blackhole_port
            ::
            (match via with
            | Some v ->
                inbound_delivery_ports config (Config.participant config v)
            | None ->
                direct_delivery_ports config (Config.participant config sender))
          in
          match
            List.find_opt (fun o -> not (mem_port o allowed)) (output_ports r)
          with
          | None -> ()
          | Some o ->
              add
                {
                  pass = "isolation";
                  code = "leaked-egress";
                  severity = Error;
                  detail =
                    Format.asprintf
                      "rule %d from %a's policy (%a) outputs on port %d, \
                       which no peering, redirect, or default route \
                       justifies"
                      i Asn.pp sender Compile.pp_provenance prov o;
                  rules = [ i ];
                  witness = Some (witness_of_pattern r.pattern);
                })
      | Compile.Untagged { owner } -> (
          let macs =
            List.map
              (fun (port : Participant.port) -> port.mac)
              (Config.participant config owner).ports
          in
          (match r.pattern.Pattern.dst_mac with
          | Some m when List.exists (Mac.equal m) macs -> ()
          | _ ->
              add
                {
                  pass = "isolation";
                  code = "untagged-tag-mismatch";
                  severity = Error;
                  detail =
                    Format.asprintf
                      "untagged rule %d for %a does not match one of %a's \
                       interface MACs"
                      i Asn.pp owner Asn.pp owner;
                  rules = [ i ];
                  witness = Some (witness_of_pattern r.pattern);
                });
          let allowed =
            Compile.blackhole_port
            :: inbound_delivery_ports config (Config.participant config owner)
          in
          match
            List.find_opt (fun o -> not (mem_port o allowed)) (output_ports r)
          with
          | None -> ()
          | Some o ->
              add
                {
                  pass = "isolation";
                  code = "leaked-egress";
                  severity = Error;
                  detail =
                    Format.asprintf
                      "untagged rule %d for %a outputs on port %d outside \
                       %a's inbound pipeline"
                      i Asn.pp owner o Asn.pp owner;
                  rules = [ i ];
                  witness = Some (witness_of_pattern r.pattern);
                })
      | Compile.Group_default { group } -> (
          match group_by_id subj group with
          | None ->
              add
                {
                  pass = "isolation";
                  code = "unknown-group";
                  severity = Warning;
                  detail =
                    Format.asprintf
                      "rule %d references prefix group %d, which the \
                       compiler state does not know"
                      i group;
                  rules = [ i ];
                  witness = Some (witness_of_pattern r.pattern);
                }
          | Some g ->
              (match r.pattern.Pattern.dst_mac with
              | Some m when Mac.equal m g.Compile.vmac -> ()
              | _ ->
                  add
                    {
                      pass = "isolation";
                      code = "default-tag-mismatch";
                      severity = Error;
                      detail =
                        Format.asprintf
                          "default rule %d for group %d does not match the \
                           group's VMAC"
                          i group;
                      rules = [ i ];
                      witness = Some (witness_of_pattern r.pattern);
                    });
              let allowed =
                Compile.blackhole_port
                :: List.concat_map
                     (fun (nh_opt, _) ->
                       match nh_opt with
                       | Some nh -> (
                           match Config.port_of_next_hop config nh with
                           | Some (owner, _, _) ->
                               inbound_delivery_ports config owner
                           | None -> [])
                       | None -> (
                           (* Migration can leave a group momentarily
                              memberless without retiring it; an empty
                              group has no originator to deliver to. *)
                           match g.Compile.prefixes with
                           | [] -> []
                           | head :: _ -> (
                               match originator_of config head with
                               | Some owner ->
                                   inbound_delivery_ports config owner
                               | None -> [])))
                     g.Compile.default_variants
              in
              (match
                 List.find_opt
                   (fun o -> not (mem_port o allowed))
                   (output_ports r)
               with
              | None -> ()
              | Some o ->
                  add
                    {
                      pass = "isolation";
                      code = "leaked-egress";
                      severity = Error;
                      detail =
                        Format.asprintf
                          "default rule %d for group %d outputs on port %d, \
                           which no best route for the group justifies"
                          i group o;
                      rules = [ i ];
                      witness = Some (witness_of_pattern r.pattern);
                    }))
      | Compile.Catch_all ->
          if r.action <> [] then
            add
              {
                pass = "isolation";
                code = "forwarding-catch-all";
                severity = Error;
                detail =
                  Format.asprintf
                    "catch-all rule %d forwards instead of dropping" i;
                rules = [ i ];
                witness = Some (witness_of_pattern r.pattern);
              }
      | Compile.Unattributed -> ())
    subj.rules;
  List.rev !findings

(* ------------------------------------------------------------------ *)
(* Pass 2: BGP consistency (§4.1, "Enforcing consistency with BGP      *)
(* advertisements" and "Enforcing default forwarding along best        *)
(* routes").                                                           *)

(* (a) Every rule diverting [sender]'s traffic to [via] must cover only
   prefixes [via] currently announces and the route server exports to
   [sender] — re-checked against the live Loc-RIBs, so withdrawn routes
   turn stale diversions into findings even before the background
   re-optimization runs.  (b) Every default-forwarding rule must deliver
   along a route currently feasible for the emitting participant.

   [only] restricts part (a) to a dirty rule subset; [only_group]
   restricts part (b)'s per-(sender, group) traces to dirty provenance
   groups.  Part (a) obligations are per-rule and part (b) obligations
   per-group, so both filters preserve finding-for-finding agreement
   with the full pass on the restricted sets. *)
let bgp_consistency ?(only = fun _ -> true) ?(only_group = fun _ -> true) subj =
  let config = subj.config in
  let server = Config.server config in
  let findings = ref [] in
  let add f = findings := f :: !findings in
  let reach_memo = Hashtbl.create 16 in
  let reachable sender via =
    let key = (sender, via) in
    match Hashtbl.find_opt reach_memo key with
    | Some s -> s
    | None ->
        let s =
          Prefix.Set.of_list
            (Route_server.reachable_prefixes server ~receiver:sender ~via)
        in
        Hashtbl.replace reach_memo key s;
        s
  in
  Array.iteri
    (fun i ((r : Classifier.rule), prov) ->
      if only i then
      match prov with
      | Compile.Outbound { sender; via = Some via; group = Some gid } -> (
          match group_by_id subj gid with
          | None -> ()
          | Some g -> (
              (match r.pattern.Pattern.dst_mac with
              | Some m when Mac.equal m g.Compile.vmac -> ()
              | _ ->
                  add
                    {
                      pass = "bgp";
                      code = "vmac-mismatch";
                      severity = Error;
                      detail =
                        Format.asprintf
                          "rule %d compiled for group %d does not match the \
                           group's VMAC tag"
                          i gid;
                      rules = [ i ];
                      witness = Some (witness_of_pattern r.pattern);
                    });
              let live = live_prefixes subj g in
              let exported = reachable sender via in
              match
                List.find_opt
                  (fun p -> not (Prefix.Set.mem p exported))
                  live
              with
              | None -> ()
              | Some p ->
                  add
                    {
                      pass = "bgp";
                      code = "forward-beyond-export";
                      severity = Error;
                      detail =
                        Format.asprintf
                          "rule %d diverts %a's traffic for %a to %a, but \
                           the route server no longer exports a route for \
                           %a via %a"
                          i Asn.pp sender Prefix.pp p Asn.pp via Prefix.pp p
                          Asn.pp via;
                      rules = [ i ];
                      witness =
                        Some
                          (witness_of_pattern
                             {
                               r.pattern with
                               Pattern.dst_ip = Some p;
                             });
                    }))
      | _ -> ())
    subj.rules;
  (* (b) Trace one representative tagged packet per (sender, live group)
     through the classifier and compare the delivery against the routes
     currently feasible for that sender. *)
  let first_match_index pkt =
    let n = Array.length subj.rules in
    let rec go i =
      if i >= n then None
      else
        let (r : Classifier.rule), prov = subj.rules.(i) in
        if Pattern.matches r.pattern pkt then Some (i, r, prov) else go (i + 1)
    in
    go 0
  in
  let groups =
    List.filter_map
      (fun (g : Compile.group) ->
        if not (only_group g.id) then None
        else
          match live_prefixes subj g with
          | [] -> None
          | live -> Some (g, List.hd live))
      (Compile.all_groups subj.compiled)
  in
  List.iter
    (fun (sender : Participant.t) ->
      match Config.switch_ports_of config sender.asn with
      | [] -> ()
      | sport :: _ ->
          List.iter
            (fun ((g : Compile.group), prefix) ->
              let feas = Route_server.feasible server ~receiver:sender.asn prefix in
              let candidates = Route_server.candidates server prefix in
              let originated = originator_of config prefix <> None in
              (* No feasible route but other candidates remain: export
                 policy or loop prevention hides the prefix from this
                 sender, so the SDX never announces it a VMAC and it
                 cannot legitimately emit the tag — the rule is
                 unreachable for this sender, not unsafe. *)
              if feas = [] && (candidates <> [] || originated) then ()
              else
              let pkt =
                Packet.make ~port:sport ~dst_mac:g.vmac
                  ~dst_ip:(Prefix.first prefix) ()
              in
              match first_match_index pkt with
              | None -> ()
              | Some (i, r, prov) -> (
                  match prov with
                  | Compile.Outbound _ | Compile.Unattributed ->
                      (* A policy diversion; pass (a) and the isolation
                         pass cover it. *)
                      ()
                  | Compile.Catch_all | Compile.Untagged _
                  | Compile.Group_default _ -> (
                      let outs =
                        List.filter
                          (fun o -> o <> Compile.blackhole_port)
                          (output_ports r)
                      in
                      match outs with
                      | [] -> ()
                      | _ ->
                          let expected =
                            List.concat_map
                              (fun (route : Route.t) ->
                                match
                                  Config.port_of_next_hop config
                                    route.next_hop
                                with
                                | Some (owner, _, _) ->
                                    inbound_delivery_ports config owner
                                | None -> (
                                    match originator_of config prefix with
                                    | Some owner ->
                                        inbound_delivery_ports config owner
                                    | None -> []))
                              feas
                            @ (match originator_of config prefix with
                              | Some owner ->
                                  inbound_delivery_ports config owner
                              | None -> [])
                          in
                          (match
                             List.find_opt
                               (fun o -> not (mem_port o expected))
                               outs
                           with
                          | None -> ()
                          | Some o ->
                              let code, detail =
                                if feas = [] then
                                  ( "stale-default-forward",
                                    Format.asprintf
                                      "default rule %d still forwards %a's \
                                       traffic for %a (port %d), but no \
                                       feasible route remains"
                                      i Asn.pp sender.asn Prefix.pp prefix o )
                                else
                                  ( "default-route-divergence",
                                    Format.asprintf
                                      "default rule %d delivers %a's \
                                       traffic for %a on port %d, which no \
                                       feasible route's next hop justifies"
                                      i Asn.pp sender.asn Prefix.pp prefix o )
                              in
                              add
                                {
                                  pass = "bgp";
                                  code;
                                  severity = Error;
                                  detail;
                                  rules = [ i ];
                                  witness = Some pkt;
                                }))))
            groups)
    (Config.participants config);
  List.rev !findings

(* ------------------------------------------------------------------ *)
(* Pass 3: loop freedom (the Prelude failure mode).                    *)

(* Apply a modification to a pattern: fields the modification sets
   become exact constraints (IPs as /32s), everything else is kept. *)
let apply_mods_pattern (m : Mods.t) (p : Pattern.t) =
  let keep v cur = match v with Some x -> Some x | None -> cur in
  {
    Pattern.port = keep m.port p.Pattern.port;
    src_mac = keep m.src_mac p.Pattern.src_mac;
    dst_mac = keep m.dst_mac p.Pattern.dst_mac;
    eth_type = keep m.eth_type p.Pattern.eth_type;
    src_ip =
      (match m.src_ip with
      | Some a -> Some (Prefix.make a 32)
      | None -> p.Pattern.src_ip);
    dst_ip =
      (match m.dst_ip with
      | Some a -> Some (Prefix.make a 32)
      | None -> p.Pattern.dst_ip);
    proto = keep m.proto p.Pattern.proto;
    src_port = keep m.src_port p.Pattern.src_port;
    dst_port = keep m.dst_port p.Pattern.dst_port;
  }

(* (a) Redirect chains: a middlebox delivery re-enters the fabric
   through the host's border router, so its policies apply again.  A
   cycle in the participant-level redirect graph whose clause predicates
   have a common packet is a forwarding loop BGP's loop prevention never
   sees. *)
let redirect_loops config =
  let edges =
    List.concat_map
      (fun (p : Participant.t) ->
        List.filter_map
          (fun (c : Ppolicy.clause) ->
            match c.target with
            | Ppolicy.Redirect m -> Some (p.asn, m, c.pred)
            | _ -> None)
          (p.inbound @ p.outbound))
      (Config.participants config)
  in
  let succs a =
    List.filter (fun (x, _, _) -> Asn.equal x a) edges
  in
  (* Identity patterns of the predicate: the packet sets the clause
     steers. *)
  let pass_patterns pred =
    List.filter_map
      (fun (r : Classifier.rule) ->
        if r.action = [] then None else Some r.pattern)
      (Classifier.compile_pred pred)
  in
  let findings = ref [] in
  let seen_cycles = Hashtbl.create 8 in
  (* [path] is the DFS stack, most recent first. *)
  let rec dfs path pats a =
    List.iter
      (fun (_, target, pred) ->
        let step = pass_patterns pred in
        let pats' =
          List.concat_map
            (fun p -> List.filter_map (fun q -> Pattern.inter p q) step)
            pats
        in
        if List.exists (Asn.equal target) path then begin
          (* Back edge: the cycle is the path suffix down to [target]. *)
          let rec suffix acc = function
            | [] -> acc
            | asn :: rest ->
                if Asn.equal asn target then asn :: acc
                else suffix (asn :: acc) rest
          in
          let cycle = suffix [] path in
          let key =
            String.concat ">"
              (List.sort compare (List.map Asn.to_string cycle))
          in
          begin
            if not (Hashtbl.mem seen_cycles key) then begin
              Hashtbl.replace seen_cycles key ();
              let names =
                String.concat " -> " (List.map Asn.to_string cycle)
              in
              match pats' with
              | wit :: _ ->
                  findings :=
                    {
                      pass = "loops";
                      code = "redirect-cycle";
                      severity = Error;
                      detail =
                        Format.asprintf
                          "middlebox redirect cycle %s: a packet matching \
                           every steering predicate re-enters the chain \
                           forever"
                          names;
                      rules = [];
                      witness = Some (witness_of_pattern wit);
                    }
                    :: !findings
              | [] ->
                  findings :=
                    {
                      pass = "loops";
                      code = "redirect-cycle-unsatisfiable";
                      severity = Info;
                      detail =
                        Format.asprintf
                          "structural redirect cycle %s, but the steering \
                           predicates share no packet"
                          names;
                      rules = [];
                      witness = None;
                    }
                    :: !findings
            end
          end
        end
        else if pats' <> [] && List.length path < 16 then
          dfs (target :: path) pats' target)
      (succs a)
  in
  List.iter
    (fun (p : Participant.t) -> dfs [ p.asn ] [ Pattern.all ] p.asn)
    (Config.participants config);
  List.rev !findings

(* (b) Symbolic reachability over a multi-switch fabric: walk every
   packet set entering on a physical port through the per-switch tables,
   crossing trunks, and flag any return to an already-visited
   (switch, in-port) with a non-empty packet set — a forwarding cycle
   the spanning-tree construction should make impossible. *)
let fabric_loops ?(max_states = 20_000) fab =
  let topo = Topology.topo fab in
  let findings = ref [] in
  let truncated = ref false in
  let budget = ref max_states in
  let hop_bound = 4 * Topology.switch_count topo in
  let rec walk path s (pat : Pattern.t) =
    if !budget <= 0 then truncated := true
    else begin
      decr budget;
      match Topology.table fab s with
      | None -> ()
      | Some table ->
          List.iter
            (fun (r : Classifier.rule) ->
              match Pattern.inter pat r.pattern with
              | None -> ()
              | Some hit ->
                  List.iter
                    (fun (m : Mods.t) ->
                      match m.port with
                      | None -> ()
                      | Some o when o = Sdx_core.Compile.blackhole_port -> ()
                      | Some o -> (
                          match Topology.trunk_destination topo o with
                          | None -> ()  (* leaves on a physical port *)
                          | Some (owner, neighbor) when owner = s -> (
                              let inp =
                                Topology.trunk_port topo ~from:neighbor
                                  ~toward_neighbor:s
                              in
                              let pat' =
                                {
                                  (apply_mods_pattern m hit) with
                                  Pattern.port = Some inp;
                                }
                              in
                              match
                                List.find_opt
                                  (fun ((sw, ip), q) ->
                                    sw = neighbor && ip = inp
                                    && Pattern.subset pat' q)
                                  path
                              with
                              | Some _ ->
                                  findings :=
                                    {
                                      pass = "loops";
                                      code = "fabric-cycle";
                                      severity = Error;
                                      detail =
                                        Format.asprintf
                                          "forwarding cycle: packets \
                                           re-enter switch %d on trunk \
                                           port %d after %d hops"
                                          neighbor inp (List.length path);
                                      rules = [];
                                      witness =
                                        Some (witness_of_pattern pat');
                                    }
                                    :: !findings
                              | None ->
                                  if List.length path >= hop_bound then
                                    findings :=
                                      {
                                        pass = "loops";
                                        code = "hop-bound-exceeded";
                                        severity = Error;
                                        detail =
                                          Format.asprintf
                                            "packet set wandered %d trunk \
                                             hops without leaving the \
                                             fabric"
                                            hop_bound;
                                        rules = [];
                                        witness =
                                          Some (witness_of_pattern pat');
                                      }
                                      :: !findings
                                  else
                                    walk
                                      (((neighbor, inp), pat') :: path)
                                      neighbor pat')
                          | Some _ ->
                              findings :=
                                {
                                  pass = "loops";
                                  code = "foreign-trunk-output";
                                  severity = Error;
                                  detail =
                                    Format.asprintf
                                      "switch %d outputs on trunk port %d, \
                                       which belongs to another switch"
                                      s o;
                                  rules = [];
                                  witness = Some (witness_of_pattern hit);
                                }
                                :: !findings))
                    r.action)
            table
    end
  in
  List.iter
    (fun (port, s) ->
      walk
        [ ((s, port), Pattern.make ~port ()) ]
        s
        (Pattern.make ~port ()))
    (Topology.physical_ports topo);
  let fs = List.rev !findings in
  if !truncated then
    fs
    @ [
        {
          pass = "loops";
          code = "loop-check-truncated";
          severity = Info;
          detail =
            Format.asprintf
              "symbolic walk stopped after %d states; coverage is partial"
              max_states;
          rules = [];
          witness = None;
        };
      ]
  else fs

let loops ?fabric subj =
  redirect_loops subj.config
  @ match fabric with None -> [] | Some f -> fabric_loops f

(* ------------------------------------------------------------------ *)
(* Pass 4: ARP consistency.                                            *)

(* The responder's table must agree exactly with the live binding
   universe: every participant port and every active (non-retired) group
   resolves, and nothing else does.  A missing or stale VNH binding
   blackholes announced traffic (the border router cannot resolve the
   next hop the SDX advertised); an orphaned one means a retired VNH
   still answers — the §4.3.2 fast path re-binds VNHs on every burst, so
   a leak here grows without bound under churn. *)
let arp_consistency subj =
  let config = subj.config in
  let expected =
    List.concat_map
      (fun (p : Participant.t) ->
        List.map
          (fun (port : Participant.port) -> (port.Participant.ip, port.Participant.mac))
          p.ports)
      (Config.participants config)
    @ List.map
        (fun (g : Compile.group) -> (g.Compile.vnh, g.Compile.vmac))
        (Compile.active_groups subj.compiled)
  in
  List.map
    (fun drift ->
      let code, detail =
        match drift with
        | Sdx_arp.Responder.Missing (ip, mac) ->
            ( "arp-binding-missing",
              Format.asprintf
                "no ARP binding for %a (expected %a): announced traffic \
                 toward this next hop cannot resolve"
                Ipv4.pp ip Mac.pp mac )
        | Sdx_arp.Responder.Stale (ip, expected, actual) ->
            ( "arp-binding-stale",
              Format.asprintf
                "ARP answers %a with %a, but the live binding is %a"
                Ipv4.pp ip Mac.pp actual Mac.pp expected )
        | Sdx_arp.Responder.Orphaned (ip, mac) ->
            ( "orphaned-arp-binding",
              Format.asprintf
                "ARP still answers %a with %a, but no live group or port \
                 owns that address (a retired VNH was not unregistered)"
                Ipv4.pp ip Mac.pp mac )
      in
      {
        pass = "arp";
        code;
        severity = Error;
        detail;
        rules = [];
        witness = None;
      })
    (Sdx_arp.Responder.diff (Compile.arp subj.compiled) ~expected)

(* ------------------------------------------------------------------ *)
(* Pass 5: classifier lints.                                           *)

let max_shadow_findings = 50

(* [deep:false] (the incremental mode) keeps the cheap global
   obligations — provenance coverage and the priority-band layout, both
   burst-affected — and skips the O(n^2) shadow scan and the stage-1
   tagging sweep, which depend on the whole ruleset and are re-verified
   by the periodic full checkpoints. *)
let lints ?(deep = true) subj =
  let config = subj.config in
  let findings = ref [] in
  let add f = findings := f :: !findings in
  if subj.attribution_gap > 0 then
    add
      {
        pass = "lints";
        code = "provenance-gap";
        severity = Error;
        detail =
          Format.asprintf
            "%d trailing rules are not covered by any provenance block"
            subj.attribution_gap;
        rules = [];
        witness = None;
      };
  if deep then begin
  (* Shadowed / unreachable rules. *)
  let classifier = subject_classifier subj in
  let pairs = Classifier.shadows classifier in
  let shown = ref 0 in
  List.iter
    (fun (i, j) ->
      if !shown < max_shadow_findings then begin
        incr shown;
        let ri = fst subj.rules.(i) and rj = fst subj.rules.(j) in
        let same = ri.Classifier.action = rj.Classifier.action in
        add
          {
            pass = "lints";
            code = (if same then "redundant-rule" else "shadowed-rule");
            severity = (if same then Info else Warning);
            detail =
              Format.asprintf
                "rule %d (%a) can never match: rule %d (%a) covers every \
                 packet it does%s"
                i Compile.pp_provenance (snd subj.rules.(i)) j
                Compile.pp_provenance (snd subj.rules.(j))
                (if same then " with the same action" else "");
            rules = [ i; j ];
            witness = Some (witness_of_pattern ri.Classifier.pattern);
          }
      end)
    pairs;
  (match List.length pairs with
  | n when n > max_shadow_findings ->
      add
        {
          pass = "lints";
          code = "shadowed-rules-elided";
          severity = Info;
          detail =
            Format.asprintf "%d further shadowed rules not listed"
              (n - max_shadow_findings);
          rules = [];
          witness = None;
        }
  | _ -> ());
  (* Stage-1 / stage-2 VMAC agreement for the Figure 2 two-table
     variant: every VMAC the in-switch tagging table writes must have a
     handler in the policy classifier, or announced traffic blackholes
     between the stages. *)
  let tagging = Compile.in_switch_tagging_table subj.compiled config in
  let handled_macs =
    let tbl = Hashtbl.create 64 in
    Array.iter
      (fun ((r : Classifier.rule), _) ->
        match r.pattern.Pattern.dst_mac with
        | Some m -> Hashtbl.replace tbl m ()
        | None -> ())
      subj.rules;
    tbl
  in
  let vmacs =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun (g : Compile.group) -> Hashtbl.replace tbl g.vmac ())
      (Compile.all_groups subj.compiled);
    tbl
  in
  List.iter
    (fun (r : Classifier.rule) ->
      List.iter
        (fun (m : Mods.t) ->
          match m.dst_mac with
          | None -> ()
          | Some mac ->
              if not (Hashtbl.mem handled_macs mac) then
                let is_vmac = Hashtbl.mem vmacs mac in
                add
                  {
                    pass = "lints";
                    code =
                      (if is_vmac then "stage1-tag-unhandled"
                       else "stage1-unknown-mac");
                    severity = (if is_vmac then Error else Warning);
                    detail =
                      Format.asprintf
                        "stage-1 tagging rule writes %a, but no stage-2 \
                         rule matches that destination MAC%s"
                        Mac.pp mac
                        (if is_vmac then " (announced traffic blackholes)"
                         else "");
                    rules = [];
                    witness = Some (witness_of_pattern r.pattern);
                  })
        r.action)
    tagging
  end;
  (* Priority-band layout: the base classifier must stay below the
     fast-path floor, and stacked blocks below the ceiling. *)
  let base_top = max Runtime.base_priority_top subj.base_rules in
  if base_top >= Runtime.extras_floor then
    add
      {
        pass = "lints";
        code = "priority-band-overlap";
        (* In a live runtime the extras band is real machinery the base
           table must stay clear of; a bare compile has no installed
           priorities yet, so the overflow is a capacity advisory. *)
        severity = (if subj.fastpath then Error else Warning);
        detail =
          Format.asprintf
            "base classifier (%d rules) reaches priority %d, overlapping \
             the fast-path band at %d%s"
            subj.base_rules base_top Runtime.extras_floor
            (if subj.fastpath then ""
             else " (standalone compile: advisory — installing it under a \
                   runtime would require a larger band layout)");
        rules = [];
        witness = None;
      };
  let rec check_bands = function
    | (floor, count) :: rest ->
        if floor + count > Runtime.extras_ceiling then
          add
            {
              pass = "lints";
              code = "priority-ceiling-exceeded";
              severity = Error;
              detail =
                Format.asprintf
                  "fast-path block at floor %d (%d rules) crosses the \
                   ceiling %d"
                  floor count Runtime.extras_ceiling;
              rules = [];
              witness = None;
            };
        (match rest with
        | (floor', _) :: _ when floor' < floor + count ->
            add
              {
                pass = "lints";
                code = "priority-band-overlap";
                severity = Error;
                detail =
                  Format.asprintf
                    "fast-path blocks overlap: floor %d begins below %d"
                    floor' (floor + count);
                rules = [];
                witness = None;
              }
        | _ -> ());
        check_bands rest
    | [] -> ()
  in
  check_bands subj.bands;
  List.rev !findings

(* ------------------------------------------------------------------ *)
(* Driver.                                                             *)

let run ?fabric ?(passes = all_passes) subj =
  let t0 = Unix.gettimeofday () in
  let wants p = List.mem p passes in
  let findings =
    (if wants "isolation" then isolation subj else [])
    @ (if wants "bgp" then bgp_consistency subj else [])
    @ (if wants "loops" then loops ?fabric subj else [])
    @ (if wants "arp" then arp_consistency subj else [])
    @ if wants "lints" then lints subj else []
  in
  let findings =
    List.filter (fun f -> wants f.pass) findings
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  Sdx_obs.Registry.Counter.incr Obs.checks;
  Sdx_obs.Registry.Histogram.observe Obs.seconds elapsed;
  List.iter
    (fun f -> Sdx_obs.Registry.Counter.incr (Obs.of_severity f.severity))
    findings;
  Sdx_obs.Trace.record ~name:"check" ~start_s:t0 ~dur_s:elapsed
    ~attrs:
      [
        ("rules", string_of_int (Array.length subj.rules));
        ("findings", string_of_int (List.length findings));
        ( "errors",
          string_of_int
            (List.length (List.filter (fun f -> f.severity = Error) findings))
        );
      ]
    ();
  {
    findings;
    rules_checked = Array.length subj.rules;
    passes_run = List.filter wants all_passes;
    elapsed_s = elapsed;
  }

let runtime ?fabric ?passes rt = run ?fabric ?passes (subject_of_runtime rt)

let compiled ?fabric ?passes c config =
  run ?fabric ?passes (subject_of_compiled c config)

(* ------------------------------------------------------------------ *)
(* Incremental driver: re-verify only the obligations a burst touched.  *)

let incremental_passes = [ "isolation"; "bgp"; "arp"; "lints" ]

(* The dirty-set protocol (see DESIGN.md): isolation and BGP part (a)
   are per-rule obligations, filtered to the dirty rule indices; BGP
   part (b) is per-(sender, group), filtered to the dirty provenance
   groups; the ARP pass is global but cheap and burst-affected, so it
   always runs in full; lints run shallow (band layout + provenance
   coverage).  The loop pass is skipped entirely: its obligations derive
   from policies and the fabric topology, which BGP bursts never touch —
   policy changes go through [Runtime.reoptimize], which resets the
   dirty-set and forces a full check.  RIB-induced staleness of rules
   the burst did NOT touch (e.g. a withdrawal invalidating an old
   block's diversion) is caught by the periodic full checkpoints, not
   here. *)
let run_incremental ?(passes = incremental_passes) ~dirty:(d : Runtime.dirty)
    subj =
  let t0 = Unix.gettimeofday () in
  let wants p = List.mem p passes in
  let n = Array.length subj.rules in
  let rule_set = Hashtbl.create (List.length d.dirty_rules) in
  List.iter
    (fun i -> if i >= 0 && i < n then Hashtbl.replace rule_set i ())
    d.Runtime.dirty_rules;
  let group_set = Hashtbl.create (List.length d.dirty_groups) in
  List.iter (fun g -> Hashtbl.replace group_set g ()) d.Runtime.dirty_groups;
  let only i = Hashtbl.mem rule_set i in
  let only_group g = Hashtbl.mem group_set g in
  let findings =
    (if wants "isolation" then isolation ~only subj else [])
    @ (if wants "bgp" then bgp_consistency ~only ~only_group subj else [])
    @ (if wants "arp" then arp_consistency subj else [])
    @ if wants "lints" then lints ~deep:false subj else []
  in
  let findings = List.filter (fun f -> wants f.pass) findings in
  let elapsed = Unix.gettimeofday () -. t0 in
  Sdx_obs.Registry.Counter.incr Obs.incremental;
  Sdx_obs.Registry.Histogram.observe Obs.incremental_seconds elapsed;
  Sdx_obs.Registry.Gauge.set_int Obs.incremental_dirty_rules
    (Hashtbl.length rule_set);
  Sdx_obs.Registry.Gauge.set_int Obs.incremental_dirty_groups
    (Hashtbl.length group_set);
  List.iter
    (fun f -> Sdx_obs.Registry.Counter.incr (Obs.of_severity f.severity))
    findings;
  Sdx_obs.Trace.record ~name:"check_incremental" ~start_s:t0 ~dur_s:elapsed
    ~attrs:
      [
        ("dirty_rules", string_of_int (Hashtbl.length rule_set));
        ("dirty_groups", string_of_int (Hashtbl.length group_set));
        ("findings", string_of_int (List.length findings));
      ]
    ();
  {
    findings;
    rules_checked = Hashtbl.length rule_set;
    passes_run = List.filter wants incremental_passes;
    elapsed_s = elapsed;
  }

(* Per-burst entry point: incremental over the runtime's accumulated
   dirty-set when one is available, a full pass when the table was
   rebuilt since the last consume.  Either way the runtime's current
   state counts as verified afterwards ([Runtime.consume_dirty]). *)
let runtime_incremental ?fabric rt =
  match Runtime.consume_dirty rt with
  | Some dirty -> run_incremental ~dirty (subject_of_runtime rt)
  | None -> runtime ?fabric rt

(* ------------------------------------------------------------------ *)
(* Live-network lints: dynamic counters the static passes cannot see.  *)

let network_lints net =
  let fab = Network.fabric net in
  let counter_findings =
    List.filter_map
      (fun f -> f)
      [
        (match Network.steering_drops net with
        | 0 -> None
        | n ->
            Some
              {
                pass = "lints";
                code = "steering-chain-drops";
                severity = Warning;
                detail =
                  Printf.sprintf
                    "%d packet(s) silently dropped at the middlebox \
                     steering-chain depth bound — a steering loop or an \
                     over-long function chain"
                    n;
                rules = [];
                witness = None;
              });
        (match Fabric.mixed_version_packets fab with
        | 0 -> None
        | n ->
            Some
              {
                pass = "lints";
                code = "mixed-version-packets";
                severity = Error;
                detail =
                  Printf.sprintf
                    "%d packet(s) crossed a mixed ruleset (version tag \
                     with no transit rule, tag falling through to the \
                     ingress band, both parities on one delivery tree, \
                     or a tag leaking out of a delivered frame) — the \
                     two-phase update invariant is broken"
                    n;
                rules = [];
                witness = None;
              });
        (match Fabric.transit_misses fab with
        | 0 -> None
        | n ->
            Some
              {
                pass = "lints";
                code = "transit-miss";
                severity = Error;
                detail =
                  Printf.sprintf
                    "%d tagged frame(s) found no transit rule at some \
                     switch — an edge stamped a version before its \
                     transit band existed everywhere"
                    n;
                rules = [];
                witness = None;
              });
      ]
  in
  (* The loop pass over the live sharded tables rides along: version
     tags move loop freedom from the policy layer to the installed
     per-switch rules, so walk what is actually installed. *)
  counter_findings @ fabric_loops (Fabric.check_view fab)

let errors r = List.filter (fun f -> f.severity = Error) r.findings
let warnings r = List.filter (fun f -> f.severity = Warning) r.findings
let has_errors r = errors r <> []

let count sev r =
  List.length (List.filter (fun f -> f.severity = sev) r.findings)

let summary r =
  Format.asprintf "%d rules checked, %d errors, %d warnings, %d info (%.1f ms)"
    r.rules_checked (count Error r) (count Warning r) (count Info r)
    (r.elapsed_s *. 1000.)

let pp_finding ppf f =
  Format.fprintf ppf "@[<v 2>[%a] %s/%s: %s" pp_severity f.severity f.pass
    f.code f.detail;
  (match f.rules with
  | [] -> ()
  | rs ->
      Format.fprintf ppf "@,rules: %s"
        (String.concat ", " (List.map string_of_int rs)));
  (match f.witness with
  | Some w -> Format.fprintf ppf "@,witness: %a" Packet.pp w
  | None -> ());
  Format.fprintf ppf "@]"

let pp_report ppf r =
  Format.fprintf ppf "@[<v>";
  List.iter (fun f -> Format.fprintf ppf "%a@," pp_finding f) r.findings;
  Format.fprintf ppf "%s@]" (summary r)

exception Violation of report

let install_runtime_hook ?(fail = false) () =
  Runtime.set_check_hook
    (Some
       (fun rt ->
         let r = runtime rt in
         if has_errors r then
           if fail then raise (Violation r)
           else
             Format.eprintf "sdx_check: %a@." pp_report r))

let uninstall_runtime_hook () = Runtime.set_check_hook None
