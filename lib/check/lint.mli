(** Source-level concurrency lint.

    Rejects raw [Mutex.]/[Condition.]/[Atomic.]/[Thread.]/[Domain.]
    usage outside [lib/sanitize] (everything must go through the
    [Sdx_sanitize.Sync] shim so the race detector sees it), and flags
    [mutable] record fields in Sync-using modules that lack an
    [sdx-owner:] ownership annotation in their enclosing top-level
    item.  Comments, string and character literals are stripped before
    matching.  Run by [sdxd lint] and [scripts/lint_concurrency.sh]. *)

type finding = {
  lint_file : string;
  lint_line : int;  (** 1-based *)
  lint_rule : string;  (** ["raw-primitive"] or ["unowned-mutable"] *)
  lint_message : string;
}

val scan_source : path:string -> string -> finding list
(** Lint one compilation unit's source text (exposed for tests). *)

val scan_file : string -> finding list
(** Lint one file; [lib/sanitize] paths return no findings. *)

val scan_dirs : string list -> finding list
(** Recursively lint every [.ml]/[.mli] under the given directories,
    skipping [_build], [.git] and [lib/sanitize]. *)

val pp_finding : Format.formatter -> finding -> unit
