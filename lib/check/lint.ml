(* Source-level concurrency lint.

   Two rules, enforced over every .ml/.mli in the tree except
   [lib/sanitize] (the one module allowed to touch the raw primitives):

   - raw-primitive: no direct use of [Mutex.], [Condition.], [Atomic.],
     [Thread.] or [Domain.] — all synchronization must go through the
     [Sdx_sanitize.Sync] shim so the race detector and the model
     explorer see it.  A token prefixed by a module path (as in
     [Sync.Mutex.lock]) is fine; the lint only fires on bare uses.

   - unowned-mutable: in any file that participates in the concurrent
     runtime (detected as: it uses [Sync.] directly), every [mutable]
     record field must sit under an [sdx-owner:] comment inside its
     enclosing top-level item, documenting which thread owns the field
     or which lock guards it.  Files with no [Sync.] use are purely
     sequential from the runtime's point of view and are exempt.

   The scanner strips comments (nested [(* *)]), string literals
   (including [{|...|}] quoted strings) and character literals before
   matching, preserving line structure, so doc-comments that *mention*
   [Mutex.lock] — or this very file's pattern table — never trip it. *)

type finding = {
  lint_file : string;
  lint_line : int;  (* 1-based *)
  lint_rule : string;  (* "raw-primitive" or "unowned-mutable" *)
  lint_message : string;
}

let exempt_fragment = Filename.concat "lib" "sanitize"

let is_exempt path =
  (* normalize ./foo and backslash-free unix paths; the tree is built on
     linux so a plain substring test on the joined fragment suffices *)
  let path = if Filename.is_relative path then path else path in
  let rec has_fragment p =
    if String.length p < String.length exempt_fragment then false
    else if String.sub p 0 (String.length exempt_fragment) = exempt_fragment
    then true
    else
      match String.index_opt p '/' with
      | Some i -> has_fragment (String.sub p (i + 1) (String.length p - i - 1))
      | None -> false
  in
  has_fragment path

(* Replace comments, strings and char literals with spaces, keeping
   newlines so line numbers survive. *)
let strip (src : string) : string =
  let n = String.length src in
  let out = Bytes.of_string src in
  let blank i = if Bytes.get out i <> '\n' then Bytes.set out i ' ' in
  let i = ref 0 in
  let in_comment = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if !in_comment > 0 then begin
      if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
        blank !i;
        blank (!i + 1);
        incr in_comment;
        i := !i + 2
      end
      else if c = '*' && !i + 1 < n && src.[!i + 1] = ')' then begin
        blank !i;
        blank (!i + 1);
        decr in_comment;
        i := !i + 2
      end
      else begin
        blank !i;
        incr i
      end
    end
    else if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      blank !i;
      blank (!i + 1);
      in_comment := 1;
      i := !i + 2
    end
    else if c = '"' then begin
      (* string literal, with escapes *)
      blank !i;
      incr i;
      let fin = ref false in
      while (not !fin) && !i < n do
        (match src.[!i] with
        | '\\' when !i + 1 < n ->
            blank !i;
            blank (!i + 1);
            i := !i + 1
        | '"' ->
            blank !i;
            fin := true
        | _ -> blank !i);
        incr i
      done
    end
    else if c = '{' && !i + 1 < n
            && (src.[!i + 1] = '|'
               ||
               let rec ident j =
                 j < n
                 &&
                 match src.[j] with
                 | 'a' .. 'z' | '_' -> ident (j + 1)
                 | '|' -> true
                 | _ -> false
               in
               ident (!i + 1))
    then begin
      (* quoted string {id|...|id} *)
      let j = ref (!i + 1) in
      while !j < n && src.[!j] <> '|' do incr j done;
      let id = String.sub src (!i + 1) (!j - !i - 1) in
      let closer = "|" ^ id ^ "}" in
      let cl = String.length closer in
      let k = ref (!j + 1) in
      let fin = ref false in
      while (not !fin) && !k < n do
        if !k + cl <= n && String.sub src !k cl = closer then begin
          fin := true;
          k := !k + cl
        end
        else incr k
      done;
      for p = !i to min (n - 1) (!k - 1) do blank p done;
      i := !k
    end
    else if
      c = '\''
      && !i + 1 < n
      && (src.[!i + 1] = '\\'
         || (!i + 2 < n && src.[!i + 2] = '\'' && src.[!i + 1] <> '\''))
    then begin
      (* char literal: '\x..' or 'c' — NOT a type variable 'a *)
      blank !i;
      incr i;
      let fin = ref false in
      while (not !fin) && !i < n do
        (match src.[!i] with
        | '\'' ->
            blank !i;
            fin := true
        | '\\' when !i + 1 < n ->
            blank !i;
            blank (!i + 1);
            i := !i + 1
        | _ -> blank !i);
        incr i
      done
    end
    else incr i
  done;
  Bytes.to_string out

let is_ident_char = function
  | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '_' | '\'' -> true
  | _ -> false

(* [find_token text tok] yields every offset where [tok] occurs and is
   not preceded by '.' (module path: someone else's [Mutex]) or an
   identifier character (e.g. [RMutex.]). *)
let token_occurrences text tok =
  let lt = String.length tok and n = String.length text in
  let out = ref [] in
  let i = ref 0 in
  while !i + lt <= n do
    if
      String.sub text !i lt = tok
      && (!i = 0
         ||
         let p = text.[!i - 1] in
         p <> '.' && not (is_ident_char p))
    then out := !i :: !out;
    incr i
  done;
  List.rev !out

let forbidden =
  [
    ("Mutex.", "use Sdx_sanitize.Sync.Mutex");
    ("Condition.", "use Sdx_sanitize.Sync.Condition");
    ("Atomic.", "use Sdx_sanitize.Sync.Atomic");
    ("Thread.", "domains only; use Sdx_sanitize.Sync.Domain");
    ("Domain.", "use Sdx_sanitize.Sync.Domain (or Sync.Dls)");
  ]

(* [Domain.] uses that are pure queries with no synchronization role. *)
let allowed_suffixes = [ "Domain.recommended_domain_count" ]

let line_of_offset src off =
  let line = ref 1 in
  for i = 0 to off - 1 do
    if src.[i] = '\n' then incr line
  done;
  !line

let line_bounds src off =
  let n = String.length src in
  let s = ref off and e = ref off in
  while !s > 0 && src.[!s - 1] <> '\n' do decr s done;
  while !e < n && src.[!e] <> '\n' do incr e done;
  (!s, !e)

let owner_tag = "sdx-owner:"

let contains_sub hay needle =
  let ln = String.length needle and lh = String.length hay in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let scan_source ~path (src : string) : finding list =
  let text = strip src in
  let findings = ref [] in
  let add line rule msg =
    findings :=
      { lint_file = path; lint_line = line; lint_rule = rule; lint_message = msg }
      :: !findings
  in
  (* rule 1: raw primitives *)
  List.iter
    (fun (tok, hint) ->
      List.iter
        (fun off ->
          let allowed =
            List.exists
              (fun a ->
                let la = String.length a in
                off + la <= String.length text && String.sub text off la = a)
              allowed_suffixes
          in
          if not allowed then
            let s, e = line_bounds text off in
            let frag = String.trim (String.sub text s (e - s)) in
            add (line_of_offset text off) "raw-primitive"
              (Printf.sprintf "raw %s outside lib/sanitize (%s): %s" tok hint
                 (if String.length frag > 60 then String.sub frag 0 60 ^ "..."
                  else frag)))
        (token_occurrences text tok))
    forbidden;
  (* rule 2: unowned mutable fields, in files that use Sync directly *)
  let uses_sync =
    token_occurrences text "Sync." <> []
    || token_occurrences text "Sdx_sanitize." <> []
  in
  if uses_sync && Filename.check_suffix path ".ml" then begin
    let lines = String.split_on_char '\n' text in
    let orig_lines = Array.of_list (String.split_on_char '\n' src) in
    let item_start = ref 0 in
    List.iteri
      (fun idx line ->
        (* a column-0 code character starts a new top-level item *)
        (if String.length line > 0 then
           match line.[0] with ' ' | '\t' -> () | _ -> item_start := idx);
        List.iter
          (fun off ->
            if
              (off = 0 || not (is_ident_char line.[off - 1]))
              && (off + 7 >= String.length line
                 || not (is_ident_char line.[off + 7]))
            then begin
              (* covered iff an sdx-owner: comment appears in the
                 enclosing item above this line (in the original,
                 comment-bearing source), or in the contiguous comment
                 block attached directly above the item.  A pure-comment
                 line is one that is non-blank in the original but blank
                 once stripped. *)
              let stripped = Array.of_list lines in
              let is_comment_line l =
                l >= 0
                && l < Array.length orig_lines
                && String.trim orig_lines.(l) <> ""
                && (l >= Array.length stripped
                   || String.trim stripped.(l) = "")
              in
              let doc_start = ref !item_start in
              while is_comment_line (!doc_start - 1) do decr doc_start done;
              let covered = ref false in
              for l = !doc_start to idx do
                if
                  l < Array.length orig_lines
                  && contains_sub orig_lines.(l) owner_tag
                then covered := true
              done;
              if not !covered then
                add (idx + 1) "unowned-mutable"
                  "mutable field in a Sync-using module without an \
                   sdx-owner: annotation in its enclosing item"
            end)
          (token_occurrences line "mutable"))
      lines
  end;
  List.rev !findings

let scan_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  if is_exempt path then [] else scan_source ~path src

let rec walk acc path =
  let base = Filename.basename path in
  if base = "_build" || base = ".git" || base = "_opam" then acc
  else if Sys.is_directory path then
    Array.fold_left
      (fun acc entry -> walk acc (Filename.concat path entry))
      acc (Sys.readdir path)
  else if
    Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
  then path :: acc
  else acc

let scan_dirs dirs =
  let files =
    List.sort String.compare
      (List.fold_left (fun acc d -> walk acc d) [] dirs)
  in
  List.concat_map scan_file files

let pp_finding fmt f =
  Format.fprintf fmt "%s:%d: [%s] %s" f.lint_file f.lint_line f.lint_rule
    f.lint_message
