(** Binary tries keyed by IPv4 prefixes, supporting exact lookup and
    longest-prefix match.  This is the data structure backing border-router
    FIBs and the route server's RIBs. *)

type 'a t

val empty : 'a t
val is_empty : 'a t -> bool

val add : Prefix.t -> 'a -> 'a t -> 'a t
(** [add p v t] binds [p] to [v], replacing any previous binding for [p]. *)

val remove : Prefix.t -> 'a t -> 'a t

val find_opt : Prefix.t -> 'a t -> 'a option
(** Exact-prefix lookup. *)

val mem : Prefix.t -> 'a t -> bool

val longest_match : Ipv4.t -> 'a t -> (Prefix.t * 'a) option
(** [longest_match addr t] is the binding whose prefix contains [addr]
    and has the greatest mask length, if any. *)

val matches : Ipv4.t -> 'a t -> (Prefix.t * 'a) list
(** All bindings whose prefix contains [addr], most-specific first. *)

val iter_matches : Ipv4.t -> ('a -> unit) -> 'a t -> unit
(** [iter_matches addr f t] applies [f] to the value of every binding
    whose prefix contains [addr], most-general (shortest prefix) first.
    Unlike {!matches} it allocates nothing — this is the per-packet hot
    path of the data-plane match engine. *)

val fold_overlapping :
  Prefix.t -> (Prefix.t -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
(** [fold_overlapping p f t init] folds over every binding whose prefix
    overlaps [p] — contains it or is contained by it (including [p]
    itself).  Covering bindings are visited shortest-prefix first, then
    the subtree under [p] in increasing prefix order.  Costs
    O(length of [p] + size of the overlapped subtree), independent of
    the trie's total population. *)

val update : Prefix.t -> ('a option -> 'a option) -> 'a t -> 'a t
(** [update p f t] applies [f] to the current binding for [p]; [f]
    returning [None] removes the binding. *)

val fold : (Prefix.t -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
(** Folds over bindings in increasing prefix order. *)

val iter : (Prefix.t -> 'a -> unit) -> 'a t -> unit
val cardinal : 'a t -> int
val bindings : 'a t -> (Prefix.t * 'a) list
val of_list : (Prefix.t * 'a) list -> 'a t
