(* A node at depth [d] represents the prefix formed by the path from the
   root; [value] is the binding for that prefix, if any.  Children branch on
   the next address bit (0 = left, 1 = right). *)
type 'a t = Leaf | Node of { value : 'a option; left : 'a t; right : 'a t }

let empty = Leaf

let is_empty = function
  | Leaf -> true
  | Node _ -> false

let node value left right =
  match (value, left, right) with
  | None, Leaf, Leaf -> Leaf
  | _ -> Node { value; left; right }

(* Bit [i] of an address, counting from the most significant (i = 0). *)
let bit addr i = (Ipv4.to_int addr lsr (31 - i)) land 1

let add prefix v t =
  let addr = Prefix.network prefix and len = Prefix.length prefix in
  let rec go t depth =
    match t with
    | Leaf ->
        if depth = len then Node { value = Some v; left = Leaf; right = Leaf }
        else if bit addr depth = 0 then
          Node { value = None; left = go Leaf (depth + 1); right = Leaf }
        else Node { value = None; left = Leaf; right = go Leaf (depth + 1) }
    | Node { value; left; right } ->
        if depth = len then Node { value = Some v; left; right }
        else if bit addr depth = 0 then
          Node { value; left = go left (depth + 1); right }
        else Node { value; left; right = go right (depth + 1) }
  in
  go t 0

let remove prefix t =
  let addr = Prefix.network prefix and len = Prefix.length prefix in
  let rec go t depth =
    match t with
    | Leaf -> Leaf
    | Node { value; left; right } ->
        if depth = len then node None left right
        else if bit addr depth = 0 then node value (go left (depth + 1)) right
        else node value left (go right (depth + 1))
  in
  go t 0

let find_opt prefix t =
  let addr = Prefix.network prefix and len = Prefix.length prefix in
  let rec go t depth =
    match t with
    | Leaf -> None
    | Node { value; left; right } ->
        if depth = len then value
        else if bit addr depth = 0 then go left (depth + 1)
        else go right (depth + 1)
  in
  go t 0

let mem prefix t = Option.is_some (find_opt prefix t)

let longest_match addr t =
  let rec go t depth best =
    match t with
    | Leaf -> best
    | Node { value; left; right } ->
        let best =
          match value with
          | Some v -> Some (Prefix.make addr depth, v)
          | None -> best
        in
        if depth = 32 then best
        else if bit addr depth = 0 then go left (depth + 1) best
        else go right (depth + 1) best
  in
  go t 0 None

let matches addr t =
  let rec go t depth acc =
    match t with
    | Leaf -> acc
    | Node { value; left; right } ->
        let acc =
          match value with
          | Some v -> (Prefix.make addr depth, v) :: acc
          | None -> acc
        in
        if depth = 32 then acc
        else if bit addr depth = 0 then go left (depth + 1) acc
        else go right (depth + 1) acc
  in
  go t 0 []

(* Like [matches] but without materializing prefixes or a result list:
   the data-plane engine walks this once per packet, so the traversal
   must not allocate. *)
let iter_matches addr f t =
  let rec go t depth =
    match t with
    | Leaf -> ()
    | Node { value; left; right } ->
        (match value with
        | Some v -> f v
        | None -> ());
        if depth < 32 then
          if bit addr depth = 0 then go left (depth + 1)
          else go right (depth + 1)
  in
  go t 0

(* Overlap = one prefix contains the other: walk the query prefix's
   path collecting covering bindings, then fold the whole subtree under
   it (the covered bindings).  Cost is O(len + |subtree|), independent
   of the trie's total population — the point of the export-vector
   pipeline's restricted-spec fast path. *)
let fold_overlapping prefix f t init =
  let addr = Prefix.network prefix and len = Prefix.length prefix in
  let rec subtree t depth path acc =
    match t with
    | Leaf -> acc
    | Node { value; left; right } ->
        let acc =
          match value with
          | Some v -> f (Prefix.make (Ipv4.of_int path) depth) v acc
          | None -> acc
        in
        let acc = subtree left (depth + 1) path acc in
        if depth = 32 then acc
        else subtree right (depth + 1) (path lor (1 lsl (31 - depth))) acc
  in
  let rec walk t depth acc =
    match t with
    | Leaf -> acc
    | Node { value; left; right } ->
        if depth = len then subtree t depth (Ipv4.to_int addr) acc
        else
          let acc =
            match value with
            | Some v -> f (Prefix.make addr depth) v acc
            | None -> acc
          in
          if bit addr depth = 0 then walk left (depth + 1) acc
          else walk right (depth + 1) acc
  in
  walk t 0 init

let update prefix f t =
  match f (find_opt prefix t) with
  | Some v -> add prefix v t
  | None -> remove prefix t

let fold f t init =
  (* Accumulate path bits so we can rebuild each node's prefix. *)
  let rec go t depth path acc =
    match t with
    | Leaf -> acc
    | Node { value; left; right } ->
        let acc =
          match value with
          | Some v -> f (Prefix.make (Ipv4.of_int path) depth) v acc
          | None -> acc
        in
        let acc = go left (depth + 1) path acc in
        if depth = 32 then acc
        else go right (depth + 1) (path lor (1 lsl (31 - depth))) acc
  in
  go t 0 0 init

let iter f t = fold (fun p v () -> f p v) t ()
let cardinal t = fold (fun _ _ n -> n + 1) t 0
let bindings t = List.rev (fold (fun p v acc -> (p, v) :: acc) t [])
let of_list l = List.fold_left (fun t (p, v) -> add p v t) empty l
