(** The SDX route server (§3.2, §5.1).

    Collects announcements from every participant, runs the BGP decision
    process on behalf of each participant (respecting export policies),
    and exposes both the per-participant best route and the full feasible
    set — the SDX lets a participant forward to {e any} feasible next-hop
    AS, not only the best one. *)

open Sdx_net

type t

type change = {
  prefix : Prefix.t;
  best_changed_for : Asn.t list;
      (** receivers whose best route for [prefix] changed *)
}

val create :
  ?export:(advertiser:Asn.t -> receiver:Asn.t -> bool) ->
  ?route_filter:(Route.t -> receiver:Asn.t -> bool) ->
  Asn.t list ->
  t
(** [create participants] builds a route server for the given peers.
    [export] is the static export-policy matrix; [route_filter] is the
    per-route refinement (e.g. the community conventions of
    {!Peering.community_filter}).  Defaults export every route to every
    other participant.  A route is never exported back to its
    advertiser. *)

val participants : t -> Asn.t list
val is_participant : t -> Asn.t -> bool

val exports_to : t -> advertiser:Asn.t -> receiver:Asn.t -> bool

val loop_free : Route.t -> receiver:Asn.t -> bool
(** Standard BGP loop prevention, applied on every export: a route whose
    AS path contains the receiver's own AS number is never handed to it
    (one half of §4.1's forwarding-loop invariants). *)

val apply : t -> Update.t -> change
(** Process one update; [change.best_changed_for] is empty when the
    update did not alter any participant's best route.
    @raise Invalid_argument if the update's peer is not a participant. *)

val apply_burst : t -> Update.t list -> change list

val load : t -> Update.t -> unit
(** Notification-free bulk load: the same RIB mutations as {!apply} but
    without computing which receivers' best routes changed — O(1) per
    update instead of O(participants x candidates).  Only for initial
    table builds, before any state derived from the server exists.
    @raise Invalid_argument if the update's peer is not a participant. *)

val fold_adj_in :
  t -> via:Asn.t -> (Prefix.t -> Route.t -> 'a -> 'a) -> 'a -> 'a
(** Folds over every route [via] currently announces, in increasing
    prefix order.  One shared scan here replaces the per-spec
    {!reachable_prefixes} materialization in the compiler's
    export-vector pipeline. *)

val fold_announced_overlapping :
  t -> Prefix.t -> (Prefix.t -> 'a -> 'a) -> 'a -> 'a
(** Folds over announced prefixes overlapping the argument (covering or
    covered by it), without touching the rest of the table — covering
    bindings shortest first, then the covered subtree in prefix order. *)

val trivial_route_filter : t -> bool
(** Whether the server was built with the default (all-accepting)
    [route_filter] — callers may then skip per-(route, receiver) filter
    calls in bulk scans. *)

val route_filter_passes : t -> Route.t -> receiver:Asn.t -> bool
(** The server's [route_filter] verdict for one route and receiver
    (export-policy and loop checks NOT included). *)

val candidates : t -> Prefix.t -> Route.t list
(** Every route currently announced for the prefix, one per advertiser. *)

val best : t -> receiver:Asn.t -> Prefix.t -> Route.t option
(** The route the server advertises to [receiver] for this prefix. *)

val feasible : t -> receiver:Asn.t -> Prefix.t -> Route.t list
(** All routes exported to [receiver] for this prefix, best first.  SDX
    policies may forward along any of them. *)

val reachable_prefixes : t -> receiver:Asn.t -> via:Asn.t -> Prefix.t list
(** Prefixes for which [via] announced a route exported to [receiver] —
    the BGP filter inserted into outbound policies forwarding to [via]
    (§4.1, "Enforcing consistency with BGP advertisements"). *)

val all_prefixes : t -> Prefix.t list
(** Every prefix with at least one candidate route, in prefix order. *)

val prefix_count : t -> int

val prefixes_of : t -> Asn.t -> Prefix.t list
(** Prefixes currently announced by the given participant. *)

val fold_best :
  t -> receiver:Asn.t -> (Prefix.t -> Route.t -> 'a -> 'a) -> 'a -> 'a
(** Folds over [receiver]'s local RIB (its best route per prefix). *)

val lookup_best : t -> receiver:Asn.t -> Ipv4.t -> (Prefix.t * Route.t) option
(** Longest-prefix match over [receiver]'s local RIB: the most specific
    announced prefix containing the address that has a best route for
    this receiver. *)

val filter_prefixes_by_as_path :
  t -> receiver:Asn.t -> As_path_regex.t -> Prefix.t list
(** The paper's [RIB.filter('as_path', regex)]: prefixes whose best route
    for [receiver] has a matching AS path. *)

val filter_prefixes_by_community :
  t -> receiver:Asn.t -> int * int -> Prefix.t list
(** Prefixes whose best route for [receiver] carries the community —
    the other attribute-based grouping §3.2 sketches. *)
