open Sdx_net

let origin_rank = function
  | Route.Igp -> 0
  | Route.Egp -> 1
  | Route.Incomplete -> 2

(* Returns > 0 when [a] is preferred over [b].  Straight-line tie-break
   chain: this comparator sits under every [sort]/[best] in the decision
   process and runs once per candidate pair per covered prefix in both
   grouping pipelines, so it must not allocate. *)
let prefer (a : Route.t) (b : Route.t) =
  let c = Int.compare a.local_pref b.local_pref in
  if c <> 0 then c
  else
    let c = Int.compare (List.length b.as_path) (List.length a.as_path) in
    if c <> 0 then c
    else
      let c = Int.compare (origin_rank b.origin) (origin_rank a.origin) in
      if c <> 0 then c
      else
        let c = Int.compare b.med a.med in
        if c <> 0 then c
        else
          let c =
            Int.compare (Asn.to_int b.learned_from) (Asn.to_int a.learned_from)
          in
          if c <> 0 then c
          else Int.compare (Ipv4.to_int b.next_hop) (Ipv4.to_int a.next_hop)

let best = function
  | [] -> None
  | r :: rest ->
      Some (List.fold_left (fun acc r -> if prefer r acc > 0 then r else acc) r rest)

let sort routes = List.sort (fun a b -> prefer b a) routes
