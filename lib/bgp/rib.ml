open Sdx_net

(* Adj-in churn counters, aggregated across every per-peer instance —
   the route server owns one Adj_in per participant. *)
let m_adds = Sdx_obs.Registry.counter "sdx_bgp_rib_adds_total"
let m_removes = Sdx_obs.Registry.counter "sdx_bgp_rib_removes_total"

module Adj_in = struct
  type t = { mutable trie : Route.t Prefix_trie.t }

  let create () = { trie = Prefix_trie.empty }

  let add t (r : Route.t) =
    Sdx_obs.Registry.Counter.incr m_adds;
    t.trie <- Prefix_trie.add r.prefix r t.trie

  let remove t prefix =
    Sdx_obs.Registry.Counter.incr m_removes;
    t.trie <- Prefix_trie.remove prefix t.trie
  let find t prefix = Prefix_trie.find_opt prefix t.trie
  let cardinal t = Prefix_trie.cardinal t.trie
  let prefixes t = List.map fst (Prefix_trie.bindings t.trie)
  let fold f t init = Prefix_trie.fold f t.trie init
end

module Loc = struct
  type t = { mutable trie : Route.t Prefix_trie.t }

  let create () = { trie = Prefix_trie.empty }
  let set t prefix r = t.trie <- Prefix_trie.add prefix r t.trie
  let clear t prefix = t.trie <- Prefix_trie.remove prefix t.trie
  let find t prefix = Prefix_trie.find_opt prefix t.trie
  let lookup t addr = Prefix_trie.longest_match addr t.trie
  let cardinal t = Prefix_trie.cardinal t.trie
  let fold f t init = Prefix_trie.fold f t.trie init
end
