open Sdx_net

type t = {
  peers : Asn.t list;
  peer_set : Asn.Set.t;
  export : advertiser:Asn.t -> receiver:Asn.t -> bool;
  route_filter : Route.t -> receiver:Asn.t -> bool;
  adj_in : (Asn.t, Rib.Adj_in.t) Hashtbl.t;
  (* Candidate routes per prefix, keyed by advertiser; the per-receiver
     best is derived on demand, which keeps state linear in the number of
     announced routes rather than #prefixes x #participants. *)
  by_prefix : (Prefix.t, Route.t Asn.Map.t) Hashtbl.t;
  mutable prefix_index : unit Prefix_trie.t;
}

type change = { prefix : Prefix.t; best_changed_for : Asn.t list }

module Obs = struct
  open Sdx_obs.Registry

  let updates = counter "sdx_bgp_updates_total"
  let announces = counter "sdx_bgp_announce_total"
  let withdraws = counter "sdx_bgp_withdraw_total"

  (* One flip per (update, receiver) whose best route moved — the raw
     event count behind the paper's "data plane stays in sync with BGP"
     claim. *)
  let best_flips = counter "sdx_bgp_best_flips_total"
  let prefixes = gauge "sdx_bgp_prefixes"
end

let default_export ~advertiser:_ ~receiver:_ = true
let default_route_filter _route ~receiver:_ = true

let create ?(export = default_export) ?(route_filter = default_route_filter)
    peers =
  let adj_in = Hashtbl.create (List.length peers) in
  List.iter (fun p -> Hashtbl.replace adj_in p (Rib.Adj_in.create ())) peers;
  {
    peers;
    peer_set = Asn.Set.of_list peers;
    export;
    route_filter;
    adj_in;
    by_prefix = Hashtbl.create 4096;
    prefix_index = Prefix_trie.empty;
  }

let participants t = t.peers
let is_participant t asn = Asn.Set.mem asn t.peer_set

let exports_to t ~advertiser ~receiver =
  (not (Asn.equal advertiser receiver)) && t.export ~advertiser ~receiver

let candidates t prefix =
  match Hashtbl.find_opt t.by_prefix prefix with
  | None -> []
  | Some m ->
      (* ascending advertiser order, same as [Asn.Map.bindings], without
         materializing the intermediate pair list — this runs once per
         covered prefix in both grouping pipelines. *)
      List.rev (Asn.Map.fold (fun _ r acc -> r :: acc) m [])

(* Standard BGP loop prevention: never hand a route to a receiver whose
   own AS number already appears in its path — one half of the §4.1
   forwarding-loop invariants. *)
let loop_free (r : Route.t) ~receiver =
  not (List.exists (Asn.equal receiver) r.as_path)

let exported_candidates t ~receiver prefix =
  List.filter
    (fun (r : Route.t) ->
      exports_to t ~advertiser:r.learned_from ~receiver
      && loop_free r ~receiver
      && t.route_filter r ~receiver)
    (candidates t prefix)

let best t ~receiver prefix = Decision.best (exported_candidates t ~receiver prefix)

let feasible t ~receiver prefix =
  Decision.sort (exported_candidates t ~receiver prefix)

let require_participant t asn =
  if not (is_participant t asn) then
    invalid_arg (Printf.sprintf "Route_server: unknown participant %s" (Asn.to_string asn))

(* Receivers whose best route changes are found by recomputing the best
   before and after; candidate sets per prefix are small (one route per
   advertiser), so this costs O(#participants x #advertisers). *)
let bests_snapshot t prefix =
  List.map (fun receiver -> (receiver, best t ~receiver prefix)) t.peers

let mutate_ribs t update =
  let peer = Update.peer update in
  let prefix = Update.prefix update in
  match update with
  | Update.Announce route ->
      let adj = Hashtbl.find t.adj_in peer in
      Rib.Adj_in.add adj route;
      let m =
        Option.value (Hashtbl.find_opt t.by_prefix prefix) ~default:Asn.Map.empty
      in
      Hashtbl.replace t.by_prefix prefix (Asn.Map.add peer route m);
      t.prefix_index <- Prefix_trie.add prefix () t.prefix_index
  | Update.Withdraw _ -> (
      let adj = Hashtbl.find t.adj_in peer in
      Rib.Adj_in.remove adj prefix;
      match Hashtbl.find_opt t.by_prefix prefix with
      | None -> ()
      | Some m ->
          let m = Asn.Map.remove peer m in
          if Asn.Map.is_empty m then begin
            Hashtbl.remove t.by_prefix prefix;
            t.prefix_index <- Prefix_trie.remove prefix t.prefix_index
          end
          else Hashtbl.replace t.by_prefix prefix m)

let apply t update =
  let peer = Update.peer update in
  require_participant t peer;
  let prefix = Update.prefix update in
  let before = bests_snapshot t prefix in
  mutate_ribs t update;
  let after = bests_snapshot t prefix in
  let best_changed_for =
    List.filter_map
      (fun ((receiver, old_best), (_, new_best)) ->
        let same =
          match (old_best, new_best) with
          | None, None -> true
          | Some a, Some b -> Route.equal a b
          | _ -> false
        in
        if same then None else Some receiver)
      (List.combine before after)
  in
  Sdx_obs.Registry.Counter.incr Obs.updates;
  Sdx_obs.Registry.Counter.incr
    (match update with
    | Update.Announce _ -> Obs.announces
    | Update.Withdraw _ -> Obs.withdraws);
  Sdx_obs.Registry.Counter.add Obs.best_flips (List.length best_changed_for);
  Sdx_obs.Registry.Gauge.set_int Obs.prefixes (Hashtbl.length t.by_prefix);
  { prefix; best_changed_for }

let apply_burst t updates = List.map (apply t) updates

(* Notification-free bulk load for initial table builds: identical RIB
   mutations to [apply] but without the per-update before/after
   best-route diff, which costs O(participants x candidates) per update
   and dominates million-prefix loads.  Nothing compiled exists yet at
   load time, so there is no state the skipped change notifications
   could have invalidated. *)
let load t update =
  require_participant t (Update.peer update);
  mutate_ribs t update;
  Sdx_obs.Registry.Counter.incr Obs.updates;
  Sdx_obs.Registry.Counter.incr
    (match update with
    | Update.Announce _ -> Obs.announces
    | Update.Withdraw _ -> Obs.withdraws);
  Sdx_obs.Registry.Gauge.set_int Obs.prefixes (Hashtbl.length t.by_prefix)

let fold_adj_in t ~via f init =
  require_participant t via;
  Rib.Adj_in.fold f (Hashtbl.find t.adj_in via) init

let fold_announced_overlapping t prefix f init =
  Prefix_trie.fold_overlapping prefix
    (fun p () acc -> f p acc)
    t.prefix_index init

let trivial_route_filter t = t.route_filter == default_route_filter
let route_filter_passes t route ~receiver = t.route_filter route ~receiver

let reachable_prefixes t ~receiver ~via =
  require_participant t via;
  if not (exports_to t ~advertiser:via ~receiver) then []
  else
    let adj = Hashtbl.find t.adj_in via in
    List.rev
      (Rib.Adj_in.fold
         (fun prefix route acc ->
           if loop_free route ~receiver && t.route_filter route ~receiver then
             prefix :: acc
           else acc)
         adj [])

let all_prefixes t =
  List.rev (Prefix_trie.fold (fun p () acc -> p :: acc) t.prefix_index [])

let prefix_count t = Hashtbl.length t.by_prefix

let prefixes_of t asn =
  require_participant t asn;
  Rib.Adj_in.prefixes (Hashtbl.find t.adj_in asn)

let fold_best t ~receiver f init =
  Prefix_trie.fold
    (fun prefix () acc ->
      match best t ~receiver prefix with
      | Some route -> f prefix route acc
      | None -> acc)
    t.prefix_index init

let lookup_best t ~receiver addr =
  (* Most specific first, skipping prefixes with no exported candidate. *)
  let rec go = function
    | [] -> None
    | (prefix, ()) :: rest -> (
        match best t ~receiver prefix with
        | Some route -> Some (prefix, route)
        | None -> go rest)
  in
  go (Prefix_trie.matches addr t.prefix_index)

let filter_prefixes_by_as_path t ~receiver regex =
  List.rev
    (fold_best t ~receiver
       (fun prefix route acc ->
         if As_path_regex.matches regex route then prefix :: acc else acc)
       [])

let filter_prefixes_by_community t ~receiver community =
  List.rev
    (fold_best t ~receiver
       (fun prefix (route : Route.t) acc ->
         if List.mem community route.communities then prefix :: acc else acc)
       [])
