open Sdx_net

type t = { table : (Ipv4.t, Mac.t) Hashtbl.t }

let create () = { table = Hashtbl.create 256 }
let register t ip mac = Hashtbl.replace t.table ip mac
let unregister t ip = Hashtbl.remove t.table ip
let query t ip = Hashtbl.find_opt t.table ip
let size t = Hashtbl.length t.table

let bindings t =
  List.sort
    (fun (a, _) (b, _) -> Ipv4.compare a b)
    (Hashtbl.fold (fun ip mac acc -> (ip, mac) :: acc) t.table [])

type drift =
  | Missing of Ipv4.t * Mac.t
  | Stale of Ipv4.t * Mac.t * Mac.t
  | Orphaned of Ipv4.t * Mac.t

let diff t ~expected =
  let wanted = Hashtbl.create (List.length expected) in
  List.iter (fun (ip, mac) -> Hashtbl.replace wanted ip mac) expected;
  let missing_or_stale =
    Hashtbl.fold
      (fun ip mac acc ->
        match Hashtbl.find_opt t.table ip with
        | None -> Missing (ip, mac) :: acc
        | Some actual when not (Mac.equal actual mac) ->
            Stale (ip, mac, actual) :: acc
        | Some _ -> acc)
      wanted []
  in
  let orphaned =
    Hashtbl.fold
      (fun ip mac acc ->
        if Hashtbl.mem wanted ip then acc else Orphaned (ip, mac) :: acc)
      t.table []
  in
  List.sort compare (missing_or_stale @ orphaned)

let pp_drift ppf = function
  | Missing (ip, mac) ->
      Format.fprintf ppf "missing %a -> %a" Ipv4.pp ip Mac.pp mac
  | Stale (ip, mac, actual) ->
      Format.fprintf ppf "stale %a -> %a (expected %a)" Ipv4.pp ip Mac.pp
        actual Mac.pp mac
  | Orphaned (ip, mac) ->
      Format.fprintf ppf "orphaned %a -> %a" Ipv4.pp ip Mac.pp mac
