(** The SDX ARP responder (§5.1).

    Virtual next hops are virtual IP addresses, so the controller answers
    ARP queries for them with the corresponding virtual MAC.  Real
    next-hop interfaces can be registered too, so border routers resolve
    both through one responder. *)

open Sdx_net

type t

val create : unit -> t

val register : t -> Ipv4.t -> Mac.t -> unit
(** Later registrations for the same address overwrite earlier ones, as
    the incremental compiler re-binds VNHs. *)

val unregister : t -> Ipv4.t -> unit

val query : t -> Ipv4.t -> Mac.t option
(** The answer the responder would send for an ARP request, if any. *)

val size : t -> int
val bindings : t -> (Ipv4.t * Mac.t) list

type drift =
  | Missing of Ipv4.t * Mac.t  (** expected binding the responder lacks *)
  | Stale of Ipv4.t * Mac.t * Mac.t
      (** [Stale (ip, expected, actual)]: the responder answers [ip]
          with [actual] instead of [expected] *)
  | Orphaned of Ipv4.t * Mac.t
      (** binding the responder still answers although nothing expects
          it — e.g. a retired VNH that was never unregistered *)

val diff : t -> expected:(Ipv4.t * Mac.t) list -> drift list
(** Compares the responder's table against the set of bindings the
    caller believes should exist.  Empty iff they agree exactly; the
    static checker runs this against the live group/port universe so an
    orphaned VNH answer is a finding, not a silent hazard. *)

val pp_drift : Format.formatter -> drift -> unit
