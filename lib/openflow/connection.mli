(** An in-memory OpenFlow control channel: the controller side sends
    {!Message} values; flow modifications are applied to the switch's
    table, and switch-to-controller traffic (barrier replies, echo
    replies, packet-ins on table miss) is queued for {!recv}.

    [sync] provides what the SDX runtime needs: given the desired rule
    set, it computes and sends the minimal add/delete flow-mod sequence —
    so a BGP update touches a handful of entries instead of reinstalling
    the table (§4.3.2 "pushes the resulting forwarding rules into the
    data plane"). *)

open Sdx_net

type t

val create : ?table:int -> Switch.t -> t

val send : t -> Message.t -> unit
(** Controller-to-switch.  [Flow_mod]s mutate the flow table;
    [Barrier_request]/[Echo_request] queue their replies; [Packet_out]
    runs the packet through the switch. *)

val recv : t -> Message.t option
(** Next switch-to-controller message, if any.  The queue is a two-list
    FIFO, so [queue]/[recv] are O(1) amortized. *)

val pending : t -> int
(** Queued switch-to-controller messages.  O(1). *)

val barrier : t -> int -> bool
(** Sends a [Barrier_request xid] and consumes the matching
    [Barrier_reply] from the queue.  [true] when the switch answered —
    always, for this in-memory channel — meaning every flow-mod sent
    before the barrier has been applied.  Messages queued before the
    barrier (packet-ins) are left for {!recv}. *)

val flow_mods_applied : t -> int
(** Total flow modifications applied over the channel's lifetime. *)

val installed : t -> Flow.t list

val process : t -> Packet.t -> Packet.t list
(** Data-plane arrival: like {!Switch.process}, but a table miss queues
    a [Packet_in] for the controller.  The miss probe is pure (an RCU
    snapshot lookup), so each matched packet bumps the winning entry's
    hit counter exactly once — inside [Switch.process]. *)

val sync : t -> Flow.t list -> int
(** Make the installed rule set equal the target, sending one
    [Flow_mod] per difference (adds before strict deletes).  A target
    listing the same (priority, pattern) slot twice resolves to its last
    occurrence, mirroring sequential OpenFlow ADDs — so sync is
    idempotent even on duplicate-entry targets.  Returns the number of
    modifications sent; 0 when already in sync. *)

val sync_cookied : t -> ?cookie:int -> Flow.t list -> int
(** Additive half of {!sync}: installs whatever entries of the target
    are missing, tagging each [Flow_mod] with [cookie] so the whole
    block can later be garbage-collected with a single
    [Message.delete_cookie].  Never deletes.  Returns the number of adds
    sent — the make-before-break phase of a two-phase update. *)
