open Sdx_policy

type entry = { flow : Flow.t; seq : int; mutable packets : int }
type t = { mutable entries : entry list; mutable next_seq : int; capacity : int option }

exception Table_full

module Obs = struct
  open Sdx_obs.Registry

  let flow_mods = counter "sdx_openflow_flow_mods_total"
  let installs = counter "sdx_openflow_installs_total"
  let removes = counter "sdx_openflow_removes_total"

  (* Aggregate occupancy across every live table (the runtime usually
     drives one per fabric switch), maintained by deltas on each
     mutation. *)
  let entries = gauge "sdx_openflow_table_entries"

  let mutate ~installed ~removed =
    Counter.add flow_mods (installed + removed);
    Counter.add installs installed;
    Counter.add removes removed;
    Gauge.add entries (float_of_int (installed - removed))
end

let create ?capacity () = { entries = []; next_seq = 0; capacity }

(* Entries are kept sorted: descending priority, then ascending insertion
   sequence, so [lookup] is a linear scan to the first match. *)
let order a b =
  match Int.compare b.flow.Flow.priority a.flow.Flow.priority with
  | 0 -> Int.compare a.seq b.seq
  | c -> c

(* OpenFlow ADD semantics: an entry with the same priority and match
   overwrites the existing one (counters reset). *)
let install t (flow : Flow.t) =
  let before = List.length t.entries in
  let entries =
    List.filter
      (fun e ->
        not
          (e.flow.Flow.priority = flow.priority
          && Pattern.equal e.flow.Flow.pattern flow.pattern))
      t.entries
  in
  (match t.capacity with
  | Some cap when List.length entries >= cap -> raise Table_full
  | _ -> ());
  let e = { flow; seq = t.next_seq; packets = 0 } in
  t.next_seq <- t.next_seq + 1;
  t.entries <- List.merge order [ e ] entries;
  Obs.mutate ~installed:1 ~removed:(before - List.length entries)

let install_all t flows = List.iter (install t) flows

let remove t ~priority ~pattern =
  let before = List.length t.entries in
  t.entries <-
    List.filter
      (fun e ->
        not
          (e.flow.Flow.priority = priority
          && Pattern.equal e.flow.Flow.pattern pattern))
      t.entries;
  Obs.mutate ~installed:0 ~removed:(before - List.length t.entries)

let clear t =
  Obs.mutate ~installed:0 ~removed:(List.length t.entries);
  t.entries <- []

let remove_where t pred =
  let before = List.length t.entries in
  t.entries <- List.filter (fun e -> not (pred e.flow)) t.entries;
  let removed = before - List.length t.entries in
  Obs.mutate ~installed:0 ~removed;
  removed

let lookup t pkt =
  let rec go = function
    | [] -> None
    | e :: rest ->
        if Pattern.matches e.flow.Flow.pattern pkt then begin
          e.packets <- e.packets + 1;
          Some e.flow
        end
        else go rest
  in
  go t.entries

let size t = List.length t.entries
let capacity t = t.capacity
let entries t = List.map (fun e -> e.flow) t.entries

let hits t ~priority ~pattern =
  match
    List.find_opt
      (fun e ->
        e.flow.Flow.priority = priority && Pattern.equal e.flow.Flow.pattern pattern)
      t.entries
  with
  | Some e -> e.packets
  | None -> 0

let pp fmt t =
  Format.fprintf fmt "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Flow.pp)
    (entries t)
