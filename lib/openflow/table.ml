open Sdx_net
open Sdx_policy
module Sync = Sdx_sanitize.Sync

(* sdx-owner: packets is bumped by the owning (writer) domain's lookup
   path only; snapshot lookups are pure and never touch it. *)
type entry = { flow : Flow.t; seq : int; mutable packets : int }

exception Table_full

(* Entries are ordered by descending priority, then ascending insertion
   sequence; [lookup] must return the minimum matching entry under this
   order, whichever layer it lives in. *)
let order a b =
  match Int.compare b.flow.Flow.priority a.flow.Flow.priority with
  | 0 -> Int.compare a.seq b.seq
  | c -> c

(* ------------------------------------------------------------------ *)
(* The layered match engine.

   A linear scan over the flow list is what the paper's §4.2 is fighting
   on the hardware side; on our software data plane it made every replay
   experiment measure list traversal.  The engine partitions entries
   into three layers at install time:

   - exact: patterns whose every constraint is a discrete exact field
     (in_port, MACs/VMAC tag, ethertype, proto, L4 ports).  Grouped by
     shape (the set of pinned fields, a la tuple-space search); each
     shape owns a hashtable from a packet-key hash to a small
     priority-sorted bucket.
   - prefix: patterns that prefix-match an IP.  Two Prefix_tries of
     priority-sorted buckets, one keyed on the dst_ip prefix (also
     hosting rules that constrain both IPs) and one on the src_ip
     prefix (for rules with no dst_ip pin, e.g. inbound TE); a lookup
     walks the <= 33 nodes covering the packet's address in each.
   - residual: everything else — in practice only the wildcard
     drop/flood catch-alls, a priority-sorted list scanned linearly.

   Hash keys are not injective, and a trie bucket's entries may pin
   fields beyond its IP prefix, so every candidate is re-verified with
   [Pattern.matches] before it competes: collisions cost time, never
   correctness.  Each layer yields its first matching entry (minimal
   under [order] within the layer); the global winner is the [order]-
   minimum of the three candidates, which is exactly the entry the
   linear scan would have found first. *)

(* sdx-owner: engine internals (buckets, shapes, tries, residual) are
   private to the owning domain; cross-domain readers only ever see them
   through a frozen snapshot. *)
type bucket = { mutable items : entry list (* sorted by [order] *) }

(* sdx-owner: see [bucket] — owning domain only. *)
type shape = {
  mask : int;  (* Pattern.Fields bitmask this shape's patterns pin *)
  tbl : (int, bucket) Hashtbl.t;  (* packet-key hash -> bucket *)
  mutable population : int;
}

(* sdx-owner: see [bucket] — owning domain only. *)
type engine = {
  mutable shapes : shape list;
  mutable dst_trie : bucket Prefix_trie.t;
  mutable src_trie : bucket Prefix_trie.t;
  mutable residual : entry list;  (* sorted by [order] *)
  mutable residual_len : int;
}

type layer = Exact of int | Dst_prefixed of Prefix.t | Src_prefixed of Prefix.t | Residual

let classify (p : Pattern.t) =
  match (p.Pattern.dst_ip, p.Pattern.src_ip) with
  | Some pre, _ -> Dst_prefixed pre
  | None, Some pre -> Src_prefixed pre
  | None, None ->
      let m = Pattern.pinned_mask p in
      if m = 0 then Residual else Exact m

(* ------------------------------------------------------------------ *)

module Key = struct
  type t = int * Pattern.t

  let equal (pa, a) (pb, b) = pa = pb && Pattern.equal a b
  let hash (p, pat) = (p * 0x01000193) lxor Pattern.hash pat
end

module KeyTbl = Hashtbl.Make (Key)

(* Sentinel for the lookup scratch slot; compared with [==] only and
   never mutated, so sharing one across tables is safe. *)
let no_entry =
  { flow = Flow.make ~priority:0 ~pattern:Pattern.all ~actions:[]; seq = max_int; packets = 0 }

let dummy_packet = Packet.make ()

(* A read-copy-update view of the table: an engine plus a sorted entry
   array, built once by the owning domain and never mutated afterwards.
   Readers on any domain may probe [snap_engine] concurrently — the hash
   tables, tries and buckets inside are frozen, so there is no resize,
   no rebalancing, and nothing to lock.  The only mutable state a
   snapshot shares with the live table is [entry.packets], which
   snapshot lookups deliberately never touch (counters stay owned by the
   writer domain). *)
type snapshot = {
  snap_engine : engine;
  snap_entries : entry array;  (* sorted by [order]; the frozen oracle *)
  snap_seq : int;  (* table's next_seq at build time, for diagnostics *)
}

type t = {
  by_key : entry KeyTbl.t;  (* (priority, pattern) -> live entry *)
  (* sdx-owner: every mutable field below belongs to the single writer
     domain, a contract asserted at runtime via [owner]; [snap] is the
     one cross-domain cell and goes through Sync.Atomic. *)
  mutable count : int;
  mutable next_seq : int;
  capacity : int option;
  engine : engine;
  mutable stale : int;  (* incremental engine ops since last build *)
  mutable rebuilds : int;
  mutable sorted : entry list;  (* cache; meaningful iff sorted_valid *)
  mutable sorted_valid : bool;
  (* Preallocated lookup scratch: the hot loop writes candidates here
     instead of threading options/tuples through the probes. *)
  mutable best : entry;
  mutable best_layer : int;
  mutable probe_pkt : Packet.t;
  mutable trie_visit : bucket -> unit;
  mutable lookups : int;
  (* Published RCU snapshot: [None] after any mutation, lazily rebuilt
     by [snapshot].  Single writer (the owning domain), many readers. *)
  snap : snapshot option Sync.Atomic.t;
  (* Single-writer contract, checked under SDX_RACE=1: the first thread
     to mutate the table (or build a snapshot) owns it for the detector
     session; any other thread doing so is reported. *)
  owner : Sync.Owner.t;
  snapshots_tr : Sync.Tracked.t;
  mutable snapshots : int;
}

module Obs = struct
  open Sdx_obs.Registry

  let flow_mods = counter "sdx_openflow_flow_mods_total"
  let installs = counter "sdx_openflow_installs_total"
  let removes = counter "sdx_openflow_removes_total"

  (* Aggregate occupancy across every live table (the runtime usually
     drives one per fabric switch), maintained by deltas on each
     mutation. *)
  let entries = gauge "sdx_openflow_table_entries"

  let mutate ~installed ~removed =
    Counter.add flow_mods (installed + removed);
    Counter.add installs installed;
    Counter.add removes removed;
    Gauge.add entries (float_of_int (installed - removed))

  let rebuilds = counter "sdx_openflow_engine_rebuilds_total"
  let snapshot_builds = counter "sdx_openflow_snapshot_builds_total"

  (* Per-layer hit attribution, indexed by the layer tags below; "miss"
     rides in the same family so dashboards can stack to 100%. *)
  let layer_hits =
    Array.map
      (fun l -> counter ~labels:[ ("layer", l) ] "sdx_openflow_lookup_layer_hits_total")
      [| "exact"; "prefix"; "residual"; "miss" |]

  (* Sampled 1-in-64: a clock read per packet would cost more than the
     lookup it measures. *)
  let lookup_seconds = histogram "sdx_openflow_lookup_seconds"
end

let layer_exact = 0
let layer_prefix = 1
let layer_residual = 2
let layer_miss = 3

(* ------------------------------------------------------------------ *)
(* Engine maintenance                                                  *)

let bucket_insert b e = b.items <- List.merge order [ e ] b.items
let bucket_remove b e = b.items <- List.filter (fun x -> x != e) b.items

let shape_for eng mask =
  match List.find_opt (fun s -> s.mask = mask) eng.shapes with
  | Some s -> s
  | None ->
      let s = { mask; tbl = Hashtbl.create 64; population = 0 } in
      eng.shapes <- s :: eng.shapes;
      s

let trie_insert trie pre e =
  match Prefix_trie.find_opt pre trie with
  | Some b ->
      bucket_insert b e;
      trie
  | None -> Prefix_trie.add pre { items = [ e ] } trie

let trie_remove trie pre e =
  match Prefix_trie.find_opt pre trie with
  | Some b ->
      bucket_remove b e;
      if b.items = [] then Prefix_trie.remove pre trie else trie
  | None -> trie

let engine_insert t e =
  let eng = t.engine in
  (match classify e.flow.Flow.pattern with
  | Exact mask ->
      let s = shape_for eng mask in
      let k = Pattern.pinned_key e.flow.Flow.pattern in
      (match Hashtbl.find_opt s.tbl k with
      | Some b -> bucket_insert b e
      | None -> Hashtbl.add s.tbl k { items = [ e ] });
      s.population <- s.population + 1
  | Dst_prefixed pre -> eng.dst_trie <- trie_insert eng.dst_trie pre e
  | Src_prefixed pre -> eng.src_trie <- trie_insert eng.src_trie pre e
  | Residual ->
      eng.residual <- List.merge order [ e ] eng.residual;
      eng.residual_len <- eng.residual_len + 1);
  t.stale <- t.stale + 1

let engine_remove t e =
  let eng = t.engine in
  (match classify e.flow.Flow.pattern with
  | Exact mask -> (
      let s = shape_for eng mask in
      let k = Pattern.pinned_key e.flow.Flow.pattern in
      s.population <- s.population - 1;
      match Hashtbl.find_opt s.tbl k with
      | Some b ->
          bucket_remove b e;
          if b.items = [] then Hashtbl.remove s.tbl k
      | None -> ())
  | Dst_prefixed pre -> eng.dst_trie <- trie_remove eng.dst_trie pre e
  | Src_prefixed pre -> eng.src_trie <- trie_remove eng.src_trie pre e
  | Residual ->
      eng.residual <- List.filter (fun x -> x != e) eng.residual;
      eng.residual_len <- eng.residual_len - 1);
  t.stale <- t.stale + 1

let sorted_entries t =
  if not t.sorted_valid then begin
    t.sorted <- List.sort order (KeyTbl.fold (fun _ e acc -> e :: acc) t.by_key []);
    t.sorted_valid <- true
  end;
  t.sorted

(* Partition a reverse-sorted entry list into [eng]'s layers.  Entries
   are consed in reverse sorted order so every bucket and the residual
   band come out sorted with O(1) work per entry.  Shared by the
   in-place [rebuild] and the RCU [snapshot] builder. *)
let partition_rev eng rev_sorted =
  let trie_prepend trie pre e =
    match Prefix_trie.find_opt pre trie with
    | Some b ->
        b.items <- e :: b.items;
        trie
    | None -> Prefix_trie.add pre { items = [ e ] } trie
  in
  List.iter
    (fun e ->
      match classify e.flow.Flow.pattern with
      | Exact mask ->
          let s = shape_for eng mask in
          let k = Pattern.pinned_key e.flow.Flow.pattern in
          (match Hashtbl.find_opt s.tbl k with
          | Some b -> b.items <- e :: b.items
          | None -> Hashtbl.add s.tbl k { items = [ e ] });
          s.population <- s.population + 1
      | Dst_prefixed pre -> eng.dst_trie <- trie_prepend eng.dst_trie pre e
      | Src_prefixed pre -> eng.src_trie <- trie_prepend eng.src_trie pre e
      | Residual ->
          eng.residual <- e :: eng.residual;
          eng.residual_len <- eng.residual_len + 1)
    rev_sorted

(* Full re-partition from the live entry set. *)
let rebuild t =
  let eng = t.engine in
  eng.shapes <- [];
  eng.dst_trie <- Prefix_trie.empty;
  eng.src_trie <- Prefix_trie.empty;
  eng.residual <- [];
  eng.residual_len <- 0;
  partition_rev eng (List.rev (sorted_entries t));
  t.stale <- 0;
  t.rebuilds <- t.rebuilds + 1;
  Sdx_obs.Registry.Counter.incr Obs.rebuilds

(* Any mutation retires the published snapshot; readers holding the old
   one keep a consistent (pre-mutation) view until they re-[snapshot].
   Unconditional exchange: the previous get-then-set pair was benign
   only by grace of the single-writer discipline, and encoding that
   discipline as an [Owner] assertion (checked under SDX_RACE=1) is both
   cheaper and honest — a second concurrent writer now gets reported
   instead of silently racing the check-then-act window. *)
let invalidate_snapshot t =
  Sync.Owner.assert_owner t.owner;
  ignore (Sync.Atomic.exchange t.snap None)

(* In-place insertion/removal keeps the engine exact, but leaves empty
   hash buckets, dead trie nodes, and oversized shape tables behind;
   past this churn budget a full re-partition re-compacts everything. *)
let staleness_limit t = 64 + (2 * t.count)
let maybe_rebuild t = if t.stale > staleness_limit t then rebuild t

(* ------------------------------------------------------------------ *)

let create ?capacity () =
  let t =
    {
      by_key = KeyTbl.create 256;
      count = 0;
      next_seq = 0;
      capacity;
      engine =
        {
          shapes = [];
          dst_trie = Prefix_trie.empty;
          src_trie = Prefix_trie.empty;
          residual = [];
          residual_len = 0;
        };
      stale = 0;
      rebuilds = 0;
      sorted = [];
      sorted_valid = true;
      best = no_entry;
      best_layer = layer_miss;
      probe_pkt = dummy_packet;
      trie_visit = ignore;
      lookups = 0;
      snap = Sync.Atomic.make ~name:"Table.snap" None;
      owner = Sync.Owner.create "Table.writer";
      snapshots_tr = Sync.Tracked.create "Table.snapshots";
      snapshots = 0;
    }
  in
  (* Preallocated once so the per-packet trie walk closes over nothing. *)
  t.trie_visit <-
    (fun b ->
      let rec scan = function
        | [] -> ()
        | (e : entry) :: rest ->
            if Pattern.matches e.flow.Flow.pattern t.probe_pkt then begin
              if t.best == no_entry || order e t.best < 0 then begin
                t.best <- e;
                t.best_layer <- layer_prefix
              end
            end
            else scan rest
      in
      scan b.items);
  t

(* OpenFlow ADD semantics: an entry with the same priority and match
   overwrites the existing one (counters reset). *)
let install t (flow : Flow.t) =
  let key = (flow.Flow.priority, flow.Flow.pattern) in
  let existing = KeyTbl.find_opt t.by_key key in
  (match (t.capacity, existing) with
  | Some cap, None when t.count >= cap -> raise Table_full
  | _ -> ());
  let removed =
    match existing with
    | Some old ->
        engine_remove t old;
        t.count <- t.count - 1;
        1
    | None -> 0
  in
  let e = { flow; seq = t.next_seq; packets = 0 } in
  t.next_seq <- t.next_seq + 1;
  KeyTbl.replace t.by_key key e;
  t.count <- t.count + 1;
  t.sorted_valid <- false;
  invalidate_snapshot t;
  engine_insert t e;
  maybe_rebuild t;
  Obs.mutate ~installed:1 ~removed

(* One-pass batch: update the entry map per flow (preserving per-flow
   capacity/overwrite semantics), then sort-and-build the engine once.
   The [finally] keeps the engine consistent even when a capacity
   overflow aborts the batch midway. *)
let install_all t flows =
  let installed = ref 0 and removed = ref 0 in
  Fun.protect
    ~finally:(fun () ->
      t.sorted_valid <- false;
      invalidate_snapshot t;
      rebuild t;
      Obs.mutate ~installed:!installed ~removed:!removed)
    (fun () ->
      List.iter
        (fun (flow : Flow.t) ->
          let key = (flow.Flow.priority, flow.Flow.pattern) in
          (match KeyTbl.find_opt t.by_key key with
          | Some _ ->
              KeyTbl.remove t.by_key key;
              t.count <- t.count - 1;
              incr removed
          | None -> (
              match t.capacity with
              | Some cap when t.count >= cap -> raise Table_full
              | _ -> ()));
          let e = { flow; seq = t.next_seq; packets = 0 } in
          t.next_seq <- t.next_seq + 1;
          KeyTbl.replace t.by_key key e;
          t.count <- t.count + 1;
          incr installed)
        flows)

let remove t ~priority ~pattern =
  match KeyTbl.find_opt t.by_key (priority, pattern) with
  | None -> Obs.mutate ~installed:0 ~removed:0
  | Some e ->
      KeyTbl.remove t.by_key (priority, pattern);
      t.count <- t.count - 1;
      t.sorted_valid <- false;
      invalidate_snapshot t;
      engine_remove t e;
      maybe_rebuild t;
      Obs.mutate ~installed:0 ~removed:1

let clear t =
  Obs.mutate ~installed:0 ~removed:t.count;
  KeyTbl.reset t.by_key;
  t.count <- 0;
  t.sorted <- [];
  t.sorted_valid <- true;
  invalidate_snapshot t;
  t.engine.shapes <- [];
  t.engine.dst_trie <- Prefix_trie.empty;
  t.engine.src_trie <- Prefix_trie.empty;
  t.engine.residual <- [];
  t.engine.residual_len <- 0;
  t.stale <- 0

let remove_where t pred =
  let victims =
    KeyTbl.fold (fun k e acc -> if pred e.flow then (k, e) :: acc else acc) t.by_key []
  in
  let n = List.length victims in
  if n > 0 then begin
    List.iter (fun (k, _) -> KeyTbl.remove t.by_key k) victims;
    t.count <- t.count - n;
    t.sorted_valid <- false;
    invalidate_snapshot t;
    rebuild t
  end;
  Obs.mutate ~installed:0 ~removed:n;
  n

(* ------------------------------------------------------------------ *)
(* Lookup                                                              *)

let consider t layer e =
  if t.best == no_entry || order e t.best < 0 then begin
    t.best <- e;
    t.best_layer <- layer
  end

(* Buckets and the residual band are sorted, so the first match is the
   layer's best candidate and the scan stops there. *)
let rec scan_first t pkt layer = function
  | [] -> ()
  | e :: rest ->
      if Pattern.matches e.flow.Flow.pattern pkt then consider t layer e
      else scan_first t pkt layer rest

let rec probe_shapes t pkt = function
  | [] -> ()
  | s :: rest ->
      (match Hashtbl.find s.tbl (Pattern.packet_key s.mask pkt) with
      | b -> scan_first t pkt layer_exact b.items
      | exception Not_found -> ());
      probe_shapes t pkt rest

let lookup_engine t (pkt : Packet.t) =
  t.best <- no_entry;
  t.best_layer <- layer_miss;
  probe_shapes t pkt t.engine.shapes;
  t.probe_pkt <- pkt;
  Prefix_trie.iter_matches pkt.Packet.dst_ip t.trie_visit t.engine.dst_trie;
  Prefix_trie.iter_matches pkt.Packet.src_ip t.trie_visit t.engine.src_trie;
  t.probe_pkt <- dummy_packet;
  scan_first t pkt layer_residual t.engine.residual;
  if t.best == no_entry then begin
    Sdx_obs.Registry.Counter.incr Obs.layer_hits.(layer_miss);
    None
  end
  else begin
    let e = t.best in
    e.packets <- e.packets + 1;
    Sdx_obs.Registry.Counter.incr Obs.layer_hits.(t.best_layer);
    t.best <- no_entry;
    Some e.flow
  end

let lookup t pkt =
  t.lookups <- t.lookups + 1;
  if t.lookups land 63 = 0 then begin
    let t0 = Unix.gettimeofday () in
    let r = lookup_engine t pkt in
    Sdx_obs.Registry.Histogram.observe Obs.lookup_seconds (Unix.gettimeofday () -. t0);
    r
  end
  else lookup_engine t pkt

(* Reference path: the pre-engine linear scan over the sorted entry
   list.  Pure (no counters, no metrics) so tests and the dataplane
   bench can use it as an oracle without disturbing state. *)
let lookup_linear t pkt =
  let rec go = function
    | [] -> None
    | e :: rest ->
        if Pattern.matches e.flow.Flow.pattern pkt then Some e.flow else go rest
  in
  go (sorted_entries t)

(* ------------------------------------------------------------------ *)
(* RCU snapshots and batched lookup                                     *)

(* Build (or return the published) immutable view.  Single-writer
   discipline: only the domain that mutates the table may call this;
   the returned snapshot may then be probed from any domain. *)
let published_snapshot t = Sync.Atomic.get t.snap

let snapshot t =
  match Sync.Atomic.get t.snap with
  | Some s -> s
  | None ->
      Sync.Owner.assert_owner t.owner;
      let sorted = sorted_entries t in
      let eng =
        {
          shapes = [];
          dst_trie = Prefix_trie.empty;
          src_trie = Prefix_trie.empty;
          residual = [];
          residual_len = 0;
        }
      in
      partition_rev eng (List.rev sorted);
      let s =
        { snap_engine = eng; snap_entries = Array.of_list sorted; snap_seq = t.next_seq }
      in
      Sync.Tracked.write t.snapshots_tr;
      t.snapshots <- t.snapshots + 1;
      Sdx_obs.Registry.Counter.incr Obs.snapshot_builds;
      Sync.Atomic.set t.snap (Some s);
      s

let snapshot_size s = Array.length s.snap_entries
let snapshot_seq s = s.snap_seq

(* A lookup function over a frozen snapshot with a private cursor, so
   each domain can own one and probe the shared engine without touching
   any shared mutable state.  Pure: no packet counters, no metrics —
   the writer domain owns those. *)
let searcher snap =
  let eng = snap.snap_engine in
  let best = ref no_entry in
  let probe = ref dummy_packet in
  let consider (e : entry) = if !best == no_entry || order e !best < 0 then best := e in
  let visit b =
    let rec scan = function
      | [] -> ()
      | (e : entry) :: rest ->
          if Pattern.matches e.flow.Flow.pattern !probe then consider e else scan rest
    in
    scan b.items
  in
  let rec scan_first pkt = function
    | [] -> ()
    | (e : entry) :: rest ->
        if Pattern.matches e.flow.Flow.pattern pkt then consider e
        else scan_first pkt rest
  in
  let rec probe_shapes pkt = function
    | [] -> ()
    | s :: rest ->
        (match Hashtbl.find s.tbl (Pattern.packet_key s.mask pkt) with
        | b -> scan_first pkt b.items
        | exception Not_found -> ());
        probe_shapes pkt rest
  in
  fun (pkt : Packet.t) ->
    best := no_entry;
    probe_shapes pkt eng.shapes;
    probe := pkt;
    Prefix_trie.iter_matches pkt.Packet.dst_ip visit eng.dst_trie;
    Prefix_trie.iter_matches pkt.Packet.src_ip visit eng.src_trie;
    probe := dummy_packet;
    scan_first pkt eng.residual;
    if !best == no_entry then None else Some (!best).flow

(* One-shot convenience over [searcher]; allocates a cursor per call, so
   hot loops should hold a searcher instead. *)
let snapshot_lookup snap pkt = searcher snap pkt

(* Linear oracle over the frozen entry array: agrees with what [searcher]
   answers for THIS snapshot even while the live table keeps mutating,
   which makes concurrent equivalence checks exact. *)
let snapshot_linear snap pkt =
  let entries = snap.snap_entries in
  let n = Array.length entries in
  let rec go i =
    if i >= n then None
    else
      let e = Array.unsafe_get entries i in
      if Pattern.matches e.flow.Flow.pattern pkt then Some e.flow else go (i + 1)
  in
  go 0

(* Owner-domain batched lookup: same results and the same per-entry /
   per-layer counter effects as [lookup] packet-by-packet, but the
   engine layers are hoisted out of the loop and the metric counters are
   flushed once per batch instead of once per packet. *)
let lookup_batch t (pkts : Packet.t array) =
  let n = Array.length pkts in
  let out = Array.make n None in
  let hits = [| 0; 0; 0; 0 |] in
  let eng = t.engine in
  for i = 0 to n - 1 do
    let pkt = Array.unsafe_get pkts i in
    t.best <- no_entry;
    t.best_layer <- layer_miss;
    probe_shapes t pkt eng.shapes;
    t.probe_pkt <- pkt;
    Prefix_trie.iter_matches pkt.Packet.dst_ip t.trie_visit eng.dst_trie;
    Prefix_trie.iter_matches pkt.Packet.src_ip t.trie_visit eng.src_trie;
    t.probe_pkt <- dummy_packet;
    scan_first t pkt layer_residual eng.residual;
    if t.best == no_entry then hits.(layer_miss) <- hits.(layer_miss) + 1
    else begin
      let e = t.best in
      e.packets <- e.packets + 1;
      hits.(t.best_layer) <- hits.(t.best_layer) + 1;
      t.best <- no_entry;
      Array.unsafe_set out i (Some e.flow)
    end
  done;
  t.lookups <- t.lookups + n;
  Array.iteri
    (fun l c -> if c > 0 then Sdx_obs.Registry.Counter.add Obs.layer_hits.(l) c)
    hits;
  out

(* ------------------------------------------------------------------ *)

let size t = t.count
let capacity t = t.capacity
let entries t = List.map (fun e -> e.flow) (sorted_entries t)

let hits t ~priority ~pattern =
  match KeyTbl.find_opt t.by_key (priority, pattern) with
  | Some e -> e.packets
  | None -> 0

type engine_stats = {
  exact_shapes : int;
  exact_entries : int;
  prefix_entries : int;
  residual_entries : int;
  rebuilds : int;
  snapshots : int;
}

let engine_stats t =
  {
    exact_shapes = List.length t.engine.shapes;
    exact_entries = List.fold_left (fun acc s -> acc + s.population) 0 t.engine.shapes;
    prefix_entries =
      Prefix_trie.fold (fun _ b acc -> acc + List.length b.items) t.engine.dst_trie 0
      + Prefix_trie.fold (fun _ b acc -> acc + List.length b.items) t.engine.src_trie 0;
    residual_entries = t.engine.residual_len;
    rebuilds = t.rebuilds;
    snapshots = t.snapshots;
  }

let pp fmt t =
  Format.fprintf fmt "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Flow.pp)
    (entries t)
