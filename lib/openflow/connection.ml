
type t = {
  switch : Switch.t;
  table_id : int;
  (* Switch-to-controller queue as a two-list FIFO: [front] holds the
     oldest messages in arrival order, [back] the newest in reverse.
     [queue] and [recv] are O(1) amortized — each message is moved from
     [back] to [front] exactly once — where a single reversed list made
     every [recv] reverse the whole queue twice (O(n²) to drain). *)
  mutable front : Message.t list;
  mutable back : Message.t list;
  mutable queued : int;
  mutable applied : int;
  cookies : (int, Flow.t list) Hashtbl.t;
  mutable next_buffer : int;
}

let create ?(table = 0) switch =
  {
    switch;
    table_id = table;
    front = [];
    back = [];
    queued = 0;
    applied = 0;
    cookies = Hashtbl.create 16;
    next_buffer = 1;
  }

let queue t msg =
  t.back <- msg :: t.back;
  t.queued <- t.queued + 1

let recv t =
  (match t.front with
  | [] ->
      t.front <- List.rev t.back;
      t.back <- []
  | _ :: _ -> ());
  match t.front with
  | [] -> None
  | msg :: rest ->
      t.front <- rest;
      t.queued <- t.queued - 1;
      Some msg

let pending t = t.queued
let flow_mods_applied t = t.applied
let table t = Switch.table t.switch t.table_id
let installed t = Table.entries (table t)

let record_cookie t cookie flow =
  if cookie <> 0 then
    Hashtbl.replace t.cookies cookie
      (flow :: Option.value (Hashtbl.find_opt t.cookies cookie) ~default:[])

let forget_cookie_entry t flow =
  Hashtbl.filter_map_inplace
    (fun _ flows ->
      match List.filter (fun f -> f <> flow) flows with
      | [] -> None
      | kept -> Some kept)
    t.cookies

let send t (msg : Message.t) =
  match msg with
  | Message.Flow_mod { command = Message.Add; cookie; flow } ->
      Table.install (table t) flow;
      record_cookie t cookie flow;
      t.applied <- t.applied + 1
  | Message.Flow_mod { command = Message.Delete_strict; flow; _ } ->
      Table.remove (table t) ~priority:flow.Flow.priority ~pattern:flow.Flow.pattern;
      forget_cookie_entry t flow;
      t.applied <- t.applied + 1
  | Message.Flow_mod { command = Message.Delete_by_cookie; cookie; _ } ->
      let flows = Option.value (Hashtbl.find_opt t.cookies cookie) ~default:[] in
      Hashtbl.remove t.cookies cookie;
      List.iter
        (fun (f : Flow.t) ->
          Table.remove (table t) ~priority:f.priority ~pattern:f.pattern)
        flows;
      t.applied <- t.applied + List.length flows
  | Message.Barrier_request xid -> queue t (Message.Barrier_reply xid)
  | Message.Echo_request xid -> queue t (Message.Echo_reply xid)
  | Message.Packet_out packet -> ignore (Switch.process t.switch packet)
  | Message.Barrier_reply _ | Message.Echo_reply _ | Message.Packet_in _ ->
      (* switch-to-controller messages are not valid on this side *)
      invalid_arg "Connection.send: not a controller-to-switch message"

let barrier t xid =
  send t (Message.Barrier_request xid);
  (* The in-memory switch answers synchronously: the reply was appended
     at the tail of the queue just now.  Consume it without disturbing
     any earlier messages (packet-ins stay queued for the controller). *)
  match t.back with
  | Message.Barrier_reply x :: rest when x = xid ->
      t.back <- rest;
      t.queued <- t.queued - 1;
      true
  | _ -> false

let process t pkt =
  (* The packet-in decision must not touch hit counters: the real
     (counter-bumping) lookups happen inside [Switch.process], so probing
     with [Table.lookup] here would double-count the winning entry.  The
     RCU snapshot is a pure view of the same table with identical
     first-match semantics. *)
  match Table.snapshot_lookup (Table.snapshot (table t)) pkt with
  | None ->
      let buffer_id = t.next_buffer in
      t.next_buffer <- t.next_buffer + 1;
      queue t (Message.Packet_in { buffer_id; packet = pkt });
      []
  | Some _ -> Switch.process t.switch pkt

(* OpenFlow ADD overwrites on (priority, pattern), so a target listing
   the same slot twice resolves to its last occurrence — the table can
   never hold both, and diffing against the raw multiset would re-add
   the duplicate on every sync, breaking idempotence. *)
let normalize target =
  let seen = Hashtbl.create 64 in
  List.rev
    (List.filter
       (fun (f : Flow.t) ->
         let key = (f.Flow.priority, f.Flow.pattern) in
         if Hashtbl.mem seen key then false
         else begin
           Hashtbl.replace seen key ();
           true
         end)
       (List.rev target))

let sync t target =
  let target = normalize target in
  (* Multiset diff on whole entries: additions first (make-before-break;
     priorities disambiguate during the transition), then strict deletes
     of the leftovers. *)
  let count_map flows =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun f -> Hashtbl.replace tbl f (1 + Option.value (Hashtbl.find_opt tbl f) ~default:0))
      flows;
    tbl
  in
  let existing = count_map (installed t) in
  let additions =
    List.filter
      (fun f ->
        match Hashtbl.find_opt existing f with
        | Some n when n > 0 ->
            Hashtbl.replace existing f (n - 1);
            false
        | _ -> true)
      target
  in
  (* Whatever count remains in [existing] is surplus — except entries an
     addition overwrites in place (OpenFlow ADD replaces an entry with
     equal priority and match), which need no delete. *)
  let overwritten = Hashtbl.create 16 in
  List.iter
    (fun (f : Flow.t) -> Hashtbl.replace overwritten (f.priority, f.pattern) ())
    additions;
  let removals =
    Hashtbl.fold
      (fun (f : Flow.t) n acc ->
        if n > 0 && not (Hashtbl.mem overwritten (f.priority, f.pattern)) then
          List.init n (fun _ -> f) @ acc
        else acc)
      existing []
  in
  List.iter (fun f -> send t (Message.add f)) additions;
  List.iter (fun f -> send t (Message.delete f)) removals;
  List.length additions + List.length removals

let sync_cookied t ?(cookie = 0) target =
  let target = normalize target in
  let mods = ref 0 in
  let count_map flows =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun f -> Hashtbl.replace tbl f (1 + Option.value (Hashtbl.find_opt tbl f) ~default:0))
      flows;
    tbl
  in
  let existing = count_map (installed t) in
  List.iter
    (fun f ->
      match Hashtbl.find_opt existing f with
      | Some n when n > 0 -> Hashtbl.replace existing f (n - 1)
      | _ ->
          send t (Message.add ~cookie f);
          incr mods)
    target;
  !mods
