(** A single flow table: priority-ordered flow entries with per-entry hit
    counters and an optional capacity limit, modeling the rule-table
    budget the paper's §4.2 is about (high-end switches hold about half a
    million rules).

    Lookups go through a layered match engine rather than a linear scan:
    an exact-match hash layer over the discrete fields SDX rules pin
    (in_port, dst MAC/VMAC tag, ethertype, ...), a dst-IP
    longest-prefix band backed by {!Sdx_net.Prefix_trie}, and a residual
    priority-ordered scan, merged priority-correctly so the result (and
    every per-entry counter) is identical to the linear scan's.  The
    engine maintains itself incrementally on {!install}/{!remove} and
    re-partitions wholesale past a staleness threshold; {!install_all}
    is a single sort-and-build batch. *)

open Sdx_net
open Sdx_policy

type t

exception Table_full

val create : ?capacity:int -> unit -> t

val install : t -> Flow.t -> unit
(** OpenFlow ADD semantics: an entry with the same priority and match is
    overwritten in place (its counter resets).
    @raise Table_full when the capacity would be exceeded. *)

val install_all : t -> Flow.t list -> unit

val remove : t -> priority:int -> pattern:Pattern.t -> unit
val clear : t -> unit

val remove_where : t -> (Flow.t -> bool) -> int
(** Removes all matching entries, returns how many were removed. *)

val lookup : t -> Packet.t -> Flow.t option
(** Highest-priority matching entry; among equal priorities the earliest
    installed wins.  Dispatched through the layered engine; increments
    the winning entry's packet counter. *)

val lookup_linear : t -> Packet.t -> Flow.t option
(** Reference semantics: a linear scan over the priority-sorted entry
    list.  Pure — touches no packet counter and no metric — so it can
    serve as the oracle for equivalence tests and as the baseline the
    [bench dataplane] target measures the engine against. *)

val lookup_batch : t -> Packet.t array -> Flow.t option array
(** [lookup] over a packet vector, on the owning domain: identical
    results and identical per-entry / per-layer counter effects as
    looking each packet up in order, but the engine layers are hoisted
    out of the loop and the observability counters are flushed once per
    batch rather than once per packet. *)

(** {2 Read-copy-update snapshots}

    A snapshot is an immutable copy of the engine plus the sorted entry
    array, built by the table's owning domain ({!snapshot}) and safe to
    probe concurrently from any number of reader domains — nothing in it
    is ever mutated after publication, so lookups never lock.  Any
    mutation on the live table retires the published snapshot; readers
    holding one keep a consistent pre-mutation view until they call
    {!snapshot} again.  Snapshot lookups are pure: packet counters and
    metrics stay owned by the writer domain. *)

type snapshot

val snapshot : t -> snapshot
(** The published snapshot, building (and atomically publishing) a fresh
    one if a mutation retired it.  Must be called from the domain that
    owns the table (a contract asserted by the race detector under
    [SDX_RACE=1]); the result may be shared with any domain. *)

val published_snapshot : t -> snapshot option
(** The currently published snapshot, if no mutation has retired it.
    Unlike {!snapshot} this never builds and is safe to call from any
    domain — it is the reader side of the RCU handshake. *)

val searcher : snapshot -> Packet.t -> Flow.t option
(** [searcher snap] is a lookup function with a private cursor: create
    one per reader domain and apply it per packet.  The partial
    application allocates the cursor, so hot loops must hold on to
    [let find = searcher snap] rather than calling [searcher snap pkt]
    per packet. *)

val snapshot_lookup : snapshot -> Packet.t -> Flow.t option
(** One-shot convenience over {!searcher} (allocates a cursor per
    call). *)

val snapshot_linear : snapshot -> Packet.t -> Flow.t option
(** Linear-scan oracle over the snapshot's frozen entry array: agrees
    with {!searcher} on this snapshot even while the live table keeps
    mutating, which makes concurrent equivalence checks exact. *)

val snapshot_size : snapshot -> int
val snapshot_seq : snapshot -> int
(** Table sequence number at build time (monotone across rebuilds). *)

val size : t -> int
val capacity : t -> int option
val entries : t -> Flow.t list
(** In match order (descending priority). *)

val hits : t -> priority:int -> pattern:Pattern.t -> int
(** Packet counter of an entry; 0 when absent.  O(1). *)

type engine_stats = {
  exact_shapes : int;  (** distinct pinned-field shapes in the exact layer *)
  exact_entries : int;
  prefix_entries : int;
  residual_entries : int;
  rebuilds : int;  (** full re-partitions this table has performed *)
  snapshots : int;  (** RCU snapshots this table has published *)
}

val engine_stats : t -> engine_stats
(** Current partition of the entries across the engine's layers. *)

val pp : Format.formatter -> t -> unit
