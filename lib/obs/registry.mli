(** A zero-dependency, domain-safe metrics registry.

    The control plane already fans rule-block compilation across OCaml 5
    domains ({!Sdx_core.Parallel}), so every metric primitive here is
    safe to mutate concurrently: counters and histogram buckets are
    [Atomic] cells, float accumulators use a compare-and-set loop, and
    registration (get-or-create) is serialized on a per-registry mutex.

    Metrics are identified by a name plus an optional label set,
    Prometheus-style: [sdx_fabric_rx_packets{asn="AS200"}].  Handles are
    cheap to cache at module init ([let c = Registry.counter "..."]) and
    survive {!reset}, which zeroes values without dropping
    registrations — so instrumented libraries can hold handles for the
    life of the process while tests snapshot-and-reset freely.

    Two render paths, both schema-stable: a human text table ({!pp}) and
    a JSON document ({!to_json}).  Both operate on {!sample} lists, so
    sources other than a live registry (e.g.
    {!Sdx_fabric.Telemetry.samples}) share the same exporters. *)

module Counter : sig
  type t

  val incr : t -> unit
  val add : t -> int -> unit
  (** [add] with a negative delta raises [Invalid_argument]: counters
      are monotonic by contract so that rate-style consumers can diff
      successive scrapes. *)

  val value : t -> int
end

module Gauge : sig
  type t

  val set : t -> float -> unit
  val add : t -> float -> unit
  val set_int : t -> int -> unit
  val value : t -> float
end

module Histogram : sig
  type t

  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float

  val percentile : t -> float -> float
  (** Estimated from the fixed bucket counts by linear interpolation
      within the owning bucket; [nan] while the histogram is empty.
      Values in the overflow bucket report the largest finite bound. *)

  val default_buckets : float array
  (** Log-spaced latency bounds in seconds, 1µs to 10s — wide enough for
      both the sub-millisecond fast path and the naive-compilation
      ablation. *)
end

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of { count : int; sum : float; p50 : float; p90 : float; p99 : float }

type sample = {
  sample_name : string;
  sample_labels : (string * string) list;  (** sorted by label key *)
  sample_value : value;
}

type t

val create : unit -> t

val default : t
(** The process-wide registry every built-in instrumentation site
    records into. *)

val counter : ?registry:t -> ?labels:(string * string) list -> string -> Counter.t
val gauge : ?registry:t -> ?labels:(string * string) list -> string -> Gauge.t

val histogram :
  ?registry:t -> ?labels:(string * string) list -> ?buckets:float array -> string -> Histogram.t
(** All three are get-or-create on the (name, labels) key.
    @raise Invalid_argument if the key is already registered as a
    different metric kind. *)

val samples : t -> sample list
(** Current values, in registration order. *)

val reset : t -> unit
(** Zeroes every registered value; registrations (and cached handles)
    stay valid. *)

val pp_samples : Format.formatter -> sample list -> unit
val pp : Format.formatter -> t -> unit

val json_array_of_samples : sample list -> string
(** The bare JSON array, for embedding in a larger report document. *)

val json_of_samples : sample list -> string
val to_json : t -> string
(** [{"metrics": [{"name": ..., "labels": {...}, "type": ..., ...}]}] *)

val json_escape : string -> string
(** JSON string-body escaping, shared with the {!Trace} sink. *)
