(** Lightweight structured event tracing: a bounded ring of timestamped
    spans with a JSON-lines sink.

    Instrumentation sites time their own work (they already hold the
    wall-clock for their stats structs) and call {!record}; the tracer
    itself never reads a clock, which keeps the library dependency-free
    and the spans consistent with the latencies the metrics report.
    The ring overwrites oldest-first, so a long-running [sdxd] keeps the
    most recent window of control-plane activity — the per-update event
    stream that deployment checkers (e.g. Prelude-style correctness
    testing) consume. *)

type span = {
  span_name : string;
  start_s : float;  (** epoch seconds at span start *)
  dur_s : float;
  attrs : (string * string) list;
}

type t

val create : ?capacity:int -> unit -> t
(** [capacity] defaults to 1024 spans and must be positive. *)

val default : t

val record :
  ?tracer:t -> ?attrs:(string * string) list -> name:string -> start_s:float ->
  dur_s:float -> unit -> unit

val spans : t -> span list
(** Retained spans, oldest first. *)

val recorded : t -> int
(** Total spans ever recorded (including overwritten ones). *)

val dropped : t -> int
(** Spans lost to ring overwrite: [recorded - retained]. *)

val reset : t -> unit

val json_of_span : span -> string
(** One span as a single-line JSON object. *)

val pp_jsonl : Format.formatter -> t -> unit
(** One JSON object per line:
    [{"name":...,"start_s":...,"dur_s":...,"attr_key":"attr_value",...}] *)

val to_jsonl : t -> string
