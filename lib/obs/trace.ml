module Sync = Sdx_sanitize.Sync

type span = {
  span_name : string;
  start_s : float;
  dur_s : float;
  attrs : (string * string) list;
}

type t = {
  ring : span option array;
  lock : Sync.Mutex.t;
  (* sdx-owner: total and the ring slots are only touched under [lock]. *)
  mutable total : int;
}

let create ?(capacity = 1024) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { ring = Array.make capacity None; lock = Sync.Mutex.create (); total = 0 }

let default = create ()

let record ?(tracer = default) ?(attrs = []) ~name ~start_s ~dur_s () =
  let span = { span_name = name; start_s; dur_s; attrs } in
  Sync.Mutex.lock tracer.lock;
  tracer.ring.(tracer.total mod Array.length tracer.ring) <- Some span;
  tracer.total <- tracer.total + 1;
  Sync.Mutex.unlock tracer.lock

let spans t =
  Sync.Mutex.lock t.lock;
  let cap = Array.length t.ring in
  let n = min t.total cap in
  let first = if t.total <= cap then 0 else t.total mod cap in
  let out =
    List.init n (fun i ->
        match t.ring.((first + i) mod cap) with
        | Some s -> s
        | None -> assert false)
  in
  Sync.Mutex.unlock t.lock;
  out

let recorded t =
  Sync.Mutex.lock t.lock;
  let n = t.total in
  Sync.Mutex.unlock t.lock;
  n

let dropped t =
  Sync.Mutex.lock t.lock;
  let n = max 0 (t.total - Array.length t.ring) in
  Sync.Mutex.unlock t.lock;
  n

let reset t =
  Sync.Mutex.lock t.lock;
  Array.fill t.ring 0 (Array.length t.ring) None;
  t.total <- 0;
  Sync.Mutex.unlock t.lock

let json_of_span s =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "{\"name\":\"%s\",\"start_s\":%.6f,\"dur_s\":%.9f"
       (Registry.json_escape s.span_name)
       s.start_s s.dur_s);
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf
        (Printf.sprintf ",\"%s\":\"%s\"" (Registry.json_escape k)
           (Registry.json_escape v)))
    s.attrs;
  Buffer.add_char buf '}';
  Buffer.contents buf

let pp_jsonl fmt t =
  Format.pp_open_vbox fmt 0;
  List.iteri
    (fun i s ->
      if i > 0 then Format.pp_print_cut fmt ();
      Format.pp_print_string fmt (json_of_span s))
    (spans t);
  Format.pp_close_box fmt ()

let to_jsonl t = String.concat "\n" (List.map json_of_span (spans t))
