(* All synchronization goes through the sanitizer shim: in production
   (Off) mode each wrapper is a passthrough costing one field load and
   branch; under SDX_RACE=1 every operation records happens-before
   edges for the race detector. *)
module Sync = Sdx_sanitize.Sync

(* Atomic float accumulator: OCaml atomics CAS on the boxed value, so a
   retry loop gives a lock-free fetch-and-add. *)
let atomic_add_float (a : float Sync.Atomic.t) x =
  let rec go () =
    let old = Sync.Atomic.get a in
    if not (Sync.Atomic.compare_and_set a old (old +. x)) then go ()
  in
  go ()

module Counter = struct
  type t = int Sync.Atomic.t

  let make () = Sync.Atomic.make 0
  let incr t = ignore (Sync.Atomic.fetch_and_add t 1)

  let add t n =
    if n < 0 then invalid_arg "Registry.Counter.add: negative delta";
    ignore (Sync.Atomic.fetch_and_add t n)

  let value t = Sync.Atomic.get t
  let reset t = Sync.Atomic.set t 0
end

module Gauge = struct
  type t = float Sync.Atomic.t

  let make () = Sync.Atomic.make 0.0
  let set t x = Sync.Atomic.set t x
  let add t x = atomic_add_float t x
  let set_int t n = Sync.Atomic.set t (float_of_int n)
  let value t = Sync.Atomic.get t
  let reset t = Sync.Atomic.set t 0.0
end

module Histogram = struct
  type t = {
    (* Strictly increasing upper bounds; counts has one extra overflow
       slot for observations above the last bound. *)
    bounds : float array;
    counts : int Sync.Atomic.t array;
    total : int Sync.Atomic.t;
    sum : float Sync.Atomic.t;
  }

  (* {1, 2.5, 5} x 10^k from 1e-6 s up to 10 s. *)
  let default_buckets =
    let mantissas = [ 1.0; 2.5; 5.0 ] in
    let bounds = ref [] in
    for exp = -6 to 0 do
      List.iter
        (fun m -> bounds := (m *. (10.0 ** float_of_int exp)) :: !bounds)
        mantissas
    done;
    Array.of_list (List.rev (10.0 :: !bounds))

  let make buckets =
    let bounds = Array.copy buckets in
    Array.sort Float.compare bounds;
    if Array.length bounds = 0 then invalid_arg "Registry.Histogram: no buckets";
    {
      bounds;
      counts = Array.init (Array.length bounds + 1) (fun _ -> Sync.Atomic.make 0);
      total = Sync.Atomic.make 0;
      sum = Sync.Atomic.make 0.0;
    }

  let bucket_of t x =
    let n = Array.length t.bounds in
    let rec go i = if i >= n then n else if x <= t.bounds.(i) then i else go (i + 1) in
    go 0

  let observe t x =
    ignore (Sync.Atomic.fetch_and_add t.counts.(bucket_of t x) 1);
    ignore (Sync.Atomic.fetch_and_add t.total 1);
    atomic_add_float t.sum x

  let count t = Sync.Atomic.get t.total
  let sum t = Sync.Atomic.get t.sum

  let percentile t q =
    let total = count t in
    if total = 0 then nan
    else
      let target = q *. float_of_int total in
      let n = Array.length t.bounds in
      let rec go i cum =
        if i > n then t.bounds.(n - 1)
        else
          let here = Sync.Atomic.get t.counts.(i) in
          let cum' = cum +. float_of_int here in
          if cum' >= target && here > 0 then
            if i >= n then t.bounds.(n - 1)
            else
              let lo = if i = 0 then 0.0 else t.bounds.(i - 1) in
              let hi = t.bounds.(i) in
              lo +. ((hi -. lo) *. ((target -. cum) /. float_of_int here))
          else go (i + 1) cum'
      in
      go 0 0.0

  let reset t =
    Array.iter (fun c -> Sync.Atomic.set c 0) t.counts;
    Sync.Atomic.set t.total 0;
    Sync.Atomic.set t.sum 0.0
end

type metric =
  | M_counter of Counter.t
  | M_gauge of Gauge.t
  | M_histogram of Histogram.t

type key = string * (string * string) list

type t = {
  tbl : (key, metric) Hashtbl.t;
  lock : Sync.Mutex.t;
  (* Registration order, newest first; samples reverse it. *)
  (* sdx-owner: order (and tbl) are only touched under [lock]. *)
  mutable order : key list;
}

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of { count : int; sum : float; p50 : float; p90 : float; p99 : float }

type sample = {
  sample_name : string;
  sample_labels : (string * string) list;
  sample_value : value;
}

let create () = { tbl = Hashtbl.create 64; lock = Sync.Mutex.create (); order = [] }
let default = create ()

let kind_name = function
  | M_counter _ -> "counter"
  | M_gauge _ -> "gauge"
  | M_histogram _ -> "histogram"

let normalize_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

(* Get-or-create under the lock; creation is cheap, so unlike the
   compile pipeline cache there is no benefit to building outside it. *)
let intern registry ?(labels = []) name ~make ~extract ~wanted =
  let key = (name, normalize_labels labels) in
  Sync.Mutex.lock registry.lock;
  let m =
    match Hashtbl.find_opt registry.tbl key with
    | Some m -> m
    | None ->
        let m = make () in
        Hashtbl.replace registry.tbl key m;
        registry.order <- key :: registry.order;
        m
  in
  Sync.Mutex.unlock registry.lock;
  match extract m with
  | Some v -> v
  | None ->
      invalid_arg
        (Printf.sprintf "Registry: %S is a %s, requested as a %s" name
           (kind_name m) wanted)

let counter ?(registry = default) ?labels name =
  intern registry ?labels name
    ~make:(fun () -> M_counter (Counter.make ()))
    ~extract:(function M_counter c -> Some c | _ -> None)
    ~wanted:"counter"

let gauge ?(registry = default) ?labels name =
  intern registry ?labels name
    ~make:(fun () -> M_gauge (Gauge.make ()))
    ~extract:(function M_gauge g -> Some g | _ -> None)
    ~wanted:"gauge"

let histogram ?(registry = default) ?labels ?(buckets = Histogram.default_buckets)
    name =
  intern registry ?labels name
    ~make:(fun () -> M_histogram (Histogram.make buckets))
    ~extract:(function M_histogram h -> Some h | _ -> None)
    ~wanted:"histogram"

let sample_of_metric (name, labels) m =
  let sample_value =
    match m with
    | M_counter c -> Counter_v (Counter.value c)
    | M_gauge g -> Gauge_v (Gauge.value g)
    | M_histogram h ->
        Histogram_v
          {
            count = Histogram.count h;
            sum = Histogram.sum h;
            p50 = Histogram.percentile h 0.50;
            p90 = Histogram.percentile h 0.90;
            p99 = Histogram.percentile h 0.99;
          }
  in
  { sample_name = name; sample_labels = labels; sample_value }

let samples t =
  Sync.Mutex.lock t.lock;
  let keys = List.rev t.order in
  let out =
    List.map (fun key -> sample_of_metric key (Hashtbl.find t.tbl key)) keys
  in
  Sync.Mutex.unlock t.lock;
  out

let reset t =
  Sync.Mutex.lock t.lock;
  Hashtbl.iter
    (fun _ -> function
      | M_counter c -> Counter.reset c
      | M_gauge g -> Gauge.reset g
      | M_histogram h -> Histogram.reset h)
    t.tbl;
  Sync.Mutex.unlock t.lock

(* ------------------------------------------------------------------ *)
(* Rendering.                                                          *)

let label_string labels =
  match labels with
  | [] -> ""
  | _ ->
      "{"
      ^ String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) labels)
      ^ "}"

let pp_float fmt x =
  if Float.is_nan x then Format.pp_print_string fmt "nan"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Format.fprintf fmt "%.0f" x
  else Format.fprintf fmt "%.6g" x

let pp_samples fmt samples =
  Format.pp_open_vbox fmt 0;
  List.iteri
    (fun i s ->
      if i > 0 then Format.pp_print_cut fmt ();
      let id = s.sample_name ^ label_string s.sample_labels in
      match s.sample_value with
      | Counter_v n -> Format.fprintf fmt "%-48s %d" id n
      | Gauge_v x -> Format.fprintf fmt "%-48s %a" id pp_float x
      | Histogram_v h ->
          Format.fprintf fmt
            "%-48s count=%d sum=%a p50=%a p90=%a p99=%a" id h.count pp_float
            h.sum pp_float h.p50 pp_float h.p90 pp_float h.p99)
    samples;
  Format.pp_close_box fmt ()

let pp fmt t = pp_samples fmt (samples t)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float x = if Float.is_nan x then "null" else Printf.sprintf "%.9g" x

let json_of_sample buf s =
  Buffer.add_string buf (Printf.sprintf "{\"name\":\"%s\"" (json_escape s.sample_name));
  (match s.sample_labels with
  | [] -> ()
  | labels ->
      Buffer.add_string buf ",\"labels\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
        labels;
      Buffer.add_char buf '}');
  (match s.sample_value with
  | Counter_v n -> Buffer.add_string buf (Printf.sprintf ",\"type\":\"counter\",\"value\":%d" n)
  | Gauge_v x ->
      Buffer.add_string buf
        (Printf.sprintf ",\"type\":\"gauge\",\"value\":%s" (json_float x))
  | Histogram_v h ->
      Buffer.add_string buf
        (Printf.sprintf
           ",\"type\":\"histogram\",\"count\":%d,\"sum\":%s,\"p50\":%s,\"p90\":%s,\"p99\":%s"
           h.count (json_float h.sum) (json_float h.p50) (json_float h.p90)
           (json_float h.p99)));
  Buffer.add_char buf '}'

let json_array_of_samples samples =
  let buf = Buffer.create 1024 in
  Buffer.add_char buf '[';
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ',';
      json_of_sample buf s)
    samples;
  Buffer.add_char buf ']';
  Buffer.contents buf

let json_of_samples samples =
  "{\"metrics\":" ^ json_array_of_samples samples ^ "}"

let to_json t = json_of_samples (samples t)
