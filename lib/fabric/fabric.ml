open Sdx_net
open Sdx_policy
open Sdx_openflow

(* A sharded fabric: one software switch + OpenFlow connection per
   topology switch, driven through a versioned two-phase consistent
   update (Reitblatt et al., "Abstractions for Network Update") so that
   no packet is ever processed by a mix of old and new rules.

   Each logical rule is split into:

   - an *ingress* copy, installed at its home edge (port-pinned rules)
     or at every edge (port-unpinned rules), with remote outputs
     rewritten to trunk ports and their frames re-addressed into the
     {!Vtag} space carrying the current ruleset version;
   - a *transit* copy of every dst-MAC rule, installed on every switch
     in a priority band far above the ingress band, matching the tagged
     address and forwarding toward (or delivering at) the destination's
     home switch.

   A commit to version v+1 then proceeds:

   1. install the v+1 transit band everywhere, cookie-tagged v+1
      (make-before-break: inert until something stamps v+1);
      barrier every connection;
   2. flip every ingress rule to stamp v+1 — an in-place overwrite,
      since flipped rules keep their (priority, pattern); barrier;
   3. delete the v transit band with one [delete_cookie] per switch;
      barrier.

   In-flight frames stamped v still match the v band until phase 3, and
   phase 3 only starts after phase 2's barriers prove no edge stamps v
   anymore. *)

let transit_base = 16_000_000
(* The transit bands sit above every ingress priority (the runtime's
   bands top out in the tens of thousands); both parities share the
   offset because their patterns are disjoint in the tag octet. *)

let g_mixed = Sdx_obs.Registry.counter "sdx_fabric_mixed_version_packets_total"
let g_transit_miss = Sdx_obs.Registry.counter "sdx_fabric_transit_misses_total"
let g_commits = Sdx_obs.Registry.counter "sdx_fabric_commits_total"

type member = { id : int; switch : Switch.t; connection : Connection.t }

type commit_stats = {
  version : int;  (** the version the commit moved the fabric to *)
  install_mods : int;  (** phase-1 adds: the incoming transit band *)
  flip_mods : int;  (** phase-2 mods: ingress flips, adds, deletes *)
  gc_mods : int;  (** phase-3 deletes: the outgoing transit band *)
  barriers : int;  (** barrier round-trips across all switches *)
}

let total_mods s = s.install_mods + s.flip_mods + s.gc_mods

type phase =
  | Installed of int  (** v+1 transit band everywhere, old rules live *)
  | Flipped of int  (** every edge now stamps v+1 *)
  | Collected of int  (** version-v transit band deleted *)
  | Synced_member of int
      (** [`Unsafe_single_phase] only: one switch cut over, others not *)

type t = {
  topo : Topology.t;
  members : member list;  (* ascending switch id *)
  by_id : (int, member) Hashtbl.t;
  tags : Vtag.t;
  trunked : bool;  (* false for the degenerate single-switch layout *)
  mutable version : int;
  mutable commits : int;
  mutable next_xid : int;
  mutable last_commit : commit_stats option;
  mutable packets : int;
  mutable mixed_version_packets : int;
  mutable transit_misses : int;
}

let create ?capacity topo =
  let members =
    List.map
      (fun id ->
        let switch = Switch.create ?capacity () in
        { id; switch; connection = Connection.create switch })
      (Topology.switches topo)
  in
  let by_id = Hashtbl.create 8 in
  List.iter (fun m -> Hashtbl.replace by_id m.id m) members;
  {
    topo;
    members;
    by_id;
    tags = Vtag.create ();
    trunked = Topology.spanning_tree_edges topo <> [];
    version = 0;
    commits = 0;
    next_xid = 1;
    last_commit = None;
    packets = 0;
    mixed_version_packets = 0;
    transit_misses = 0;
  }

let topo t = t.topo
let switches t = List.map (fun m -> m.id) t.members
let member t s = Hashtbl.find t.by_id s

let switch t s =
  match Hashtbl.find_opt t.by_id s with
  | Some m -> m.switch
  | None -> invalid_arg (Printf.sprintf "Fabric.switch: unknown switch %d" s)

let connection t s =
  match Hashtbl.find_opt t.by_id s with
  | Some m -> m.connection
  | None -> invalid_arg (Printf.sprintf "Fabric.connection: unknown switch %d" s)

let version t = t.version
let commits t = t.commits
let last_commit t = t.last_commit
let packets t = t.packets
let mixed_version_packets t = t.mixed_version_packets
let transit_misses t = t.transit_misses

let rule_counts t =
  List.map (fun m -> (m.id, Table.size (Switch.table m.switch 0))) t.members

let total_rules t = List.fold_left (fun n (_, c) -> n + c) 0 (rule_counts t)

(* ------------------------------------------------------------------ *)
(* Splitting the logical flow list per switch *)

let blackhole = Sdx_core.Compile.blackhole_port

(* The address a trunk frame must be re-addressed toward: the mod's own
   rewrite if it has one, else the rule's pinned destination. *)
let trunk_target (pattern : Pattern.t) (m : Mods.t) =
  match m.Mods.dst_mac with
  | Some mac -> mac
  | None -> (
      match pattern.Pattern.dst_mac with
      | Some mac -> mac
      | None ->
          invalid_arg
            "Fabric: trunk-crossing action names no destination MAC to tag")

(* Rewrite one action atom for switch [s]: local ports stay; remote
   ports leave on the trunk toward their home, with the frame stamped
   [version]. *)
let localize_mod t ~version s (pattern : Pattern.t) (m : Mods.t) =
  match m.Mods.port with
  | None -> m
  | Some p when p = blackhole -> m
  | Some p -> (
      match Topology.home_of_port t.topo p with
      | None -> m (* a port that no longer exists; harmless to keep *)
      | Some home when home = s -> m
      | Some home ->
          let hop = Option.get (Topology.next_hop t.topo ~from:s ~toward:home) in
          {
            m with
            port = Some (Topology.trunk_port t.topo ~from:s ~toward_neighbor:hop);
            dst_mac = Some (Vtag.stamp t.tags ~version (trunk_target pattern m));
          })

let check_priority (f : Flow.t) =
  if f.Flow.priority >= transit_base then
    invalid_arg
      (Printf.sprintf "Fabric: flow priority %d collides with the transit band"
         f.Flow.priority)

(* Ingress band at switch [s]: port-pinned rules at their home switch,
   port-unpinned rules at every switch hosting physical ports. *)
let ingress_flows t ~version s flows =
  List.filter_map
    (fun (f : Flow.t) ->
      check_priority f;
      let keep =
        match f.pattern.Pattern.port with
        | Some p -> Topology.home_of_port t.topo p = Some s
        | None -> Topology.has_physical_ports t.topo s
      in
      if keep then
        Some
          {
            f with
            actions = List.map (localize_mod t ~version s f.pattern) f.actions;
          }
      else None)
    flows

(* Transit band at switch [s]: a copy of every dst-MAC rule, matching
   the tagged address at [transit_base + priority], delivering locally
   or re-stamping onto the next trunk.  Atoms that leave the destination
   address untouched get it restored explicitly, so delivered frames
   never leak a tag. *)
let transit_flows t ~version s flows =
  if not t.trunked then []
  else
    List.filter_map
      (fun (f : Flow.t) ->
        match (f.Flow.pattern.Pattern.port, f.Flow.pattern.Pattern.dst_mac) with
        | None, Some m0 ->
            let pattern =
              { f.pattern with dst_mac = Some (Vtag.stamp t.tags ~version m0) }
            in
            let actions =
              List.map
                (fun (m : Mods.t) ->
                  let m =
                    if m.Mods.dst_mac = None then { m with dst_mac = Some m0 }
                    else m
                  in
                  localize_mod t ~version s f.pattern m)
                f.actions
            in
            Some { Flow.priority = transit_base + f.priority; pattern; actions }
        | _ -> None)
      flows

(* ------------------------------------------------------------------ *)
(* Two-phase commit *)

let barrier_all t =
  List.iter
    (fun m ->
      let xid = t.next_xid in
      t.next_xid <- xid + 1;
      if not (Connection.barrier m.connection xid) then
        failwith
          (Printf.sprintf "Fabric: switch %d left barrier %d unanswered" m.id
             xid))
    t.members;
  List.length t.members

let tag_parity_of (f : Flow.t) =
  match f.Flow.pattern.Pattern.dst_mac with
  | Some mac -> Vtag.parity mac
  | None -> None

let commit ?(protocol = `Two_phase) ?(on_phase = fun (_ : phase) -> ()) t flows
    =
  let v = t.version and v' = t.version + 1 in
  let stats =
    match protocol with
    | `Two_phase ->
        (* Phase 1: make-before-break.  The v+1 transit band is inert
           until an ingress rule stamps v+1, so installing it first is
           safe; the cookie lets phase 3 collect the v band wholesale. *)
        let install_mods =
          List.fold_left
            (fun acc m ->
              acc
              + Connection.sync_cookied m.connection ~cookie:v'
                  (transit_flows t ~version:v' m.id flows))
            0 t.members
        in
        let b1 = barrier_all t in
        on_phase (Installed v');
        (* Phase 2: flip the edges.  The target keeps the still-live v
           transit band exactly as installed (it must serve frames
           already in flight), adds the v+1 ingress band — flipped rules
           overwrite in place since only their stamps changed — and
           drops stale ingress entries. *)
        let flip_mods =
          List.fold_left
            (fun acc m ->
              let old_band =
                List.filter
                  (fun (f : Flow.t) ->
                    f.Flow.priority >= transit_base
                    && tag_parity_of f = Some (v land 1))
                  (Connection.installed m.connection)
              in
              acc
              + Connection.sync m.connection
                  (ingress_flows t ~version:v' m.id flows
                  @ transit_flows t ~version:v' m.id flows
                  @ old_band))
            0 t.members
        in
        let b2 = barrier_all t in
        on_phase (Flipped v');
        (* Phase 3: no edge stamps v anymore (the phase-2 barriers
           proved it), so the v transit band is garbage. *)
        let gc_mods =
          List.fold_left
            (fun acc m ->
              let before = Connection.flow_mods_applied m.connection in
              Connection.send m.connection (Message.delete_cookie v);
              acc + (Connection.flow_mods_applied m.connection - before))
            0 t.members
        in
        let b3 = barrier_all t in
        on_phase (Collected v);
        { version = v'; install_mods; flip_mods; gc_mods; barriers = b1 + b2 + b3 }
    | `Unsafe_single_phase ->
        (* Negative control for tests and benches: cut each switch over
           to the final ruleset in one sync, switch by switch.  Between
           the first and last sync an edge already stamping v+1 can send
           frames to a switch whose v+1 transit band does not exist
           yet — exactly the mixed-ruleset window the two-phase protocol
           closes, and what {!process}'s detector counts. *)
        let barriers = ref 0 in
        let flip_mods =
          List.fold_left
            (fun acc m ->
              let n =
                Connection.sync m.connection
                  (ingress_flows t ~version:v' m.id flows
                  @ transit_flows t ~version:v' m.id flows)
              in
              barriers := !barriers + barrier_all t;
              on_phase (Synced_member m.id);
              acc + n)
            0 t.members
        in
        {
          version = v';
          install_mods = 0;
          flip_mods;
          gc_mods = 0;
          barriers = !barriers;
        }
  in
  t.version <- v';
  t.commits <- t.commits + 1;
  t.last_commit <- Some stats;
  Sdx_obs.Registry.Counter.incr g_commits;
  stats

(* ------------------------------------------------------------------ *)
(* The data plane *)

(* One packet walk shared by the counting and the pure readers.  [probe]
   maps (switch id, packet) to the matching flow entry. *)
let walk topo ~probe ~on_anomaly ~on_miss ~on_trunk_parity pkt =
  let max_hops = 4 * Topology.switch_count topo in
  let rec at_switch hops s (pkt : Packet.t) =
    if hops > max_hops then begin
      on_anomaly ();
      []
    end
    else
      let tagged = Vtag.is_tagged pkt.Packet.dst_mac in
      match probe s pkt with
      | None ->
          if tagged then begin
            on_miss ();
            on_anomaly ()
          end;
          []
      | Some (flow : Flow.t) ->
          if tagged && flow.Flow.priority < transit_base then on_anomaly ();
          List.concat_map
            (fun (m : Mods.t) ->
              let out = Mods.apply m pkt in
              match m.Mods.port with
              | None -> [ out ]
              | Some p -> (
                  match Topology.trunk_destination topo p with
                  | Some (_owner, neighbor) ->
                      (match Vtag.parity out.Packet.dst_mac with
                      | Some parity -> on_trunk_parity parity
                      | None -> on_anomaly () (* untagged frame on a trunk *));
                      let in_port =
                        Topology.trunk_port topo ~from:neighbor
                          ~toward_neighbor:s
                      in
                      at_switch (hops + 1) neighbor { out with port = in_port }
                  | None ->
                      if p <> blackhole && Vtag.is_tagged out.Packet.dst_mac
                      then on_anomaly () (* delivered frame leaks its tag *);
                      [ out ]))
            flow.Flow.actions
  in
  match Topology.home_of_port topo pkt.Packet.port with
  | None -> None
  | Some s0 -> Some (Packet.Set.elements (Packet.Set.of_list (at_switch 0 s0 pkt)))

let process t pkt =
  let anomaly = ref false and missed = ref false and parities = ref 0 in
  let outs =
    walk t.topo
      ~probe:(fun s pkt -> Table.lookup (Switch.table (member t s).switch 0) pkt)
      ~on_anomaly:(fun () -> anomaly := true)
      ~on_miss:(fun () -> missed := true)
      ~on_trunk_parity:(fun p -> parities := !parities lor (1 lsl p))
      pkt
  in
  match outs with
  | None -> []
  | Some outs ->
      t.packets <- t.packets + 1;
      (* Both parities on one packet's delivery tree: the frame crossed
         a mixed ruleset. *)
      if !parities = 3 then anomaly := true;
      if !missed then begin
        t.transit_misses <- t.transit_misses + 1;
        Sdx_obs.Registry.Counter.incr g_transit_miss
      end;
      if !anomaly then begin
        t.mixed_version_packets <- t.mixed_version_packets + 1;
        Sdx_obs.Registry.Counter.incr g_mixed
      end;
      outs

(* Pure parallel readers: snapshots are built on the owning domain; each
   worker domain then builds its own searcher cursors. *)
type snap = {
  snap_topo : Topology.t;
  snap_tables : (int * Table.snapshot) list;
}

let snapshots t =
  {
    snap_topo = t.topo;
    snap_tables =
      List.map (fun m -> (m.id, Table.snapshot (Switch.table m.switch 0))) t.members;
  }

let reader snap =
  let find = Hashtbl.create 8 in
  List.iter
    (fun (s, sn) -> Hashtbl.replace find s (Table.searcher sn))
    snap.snap_tables;
  fun pkt ->
    match
      walk snap.snap_topo
        ~probe:(fun s pkt -> (Hashtbl.find find s) pkt)
        ~on_anomaly:ignore ~on_miss:ignore ~on_trunk_parity:ignore pkt
    with
    | None -> []
    | Some outs -> outs

(* ------------------------------------------------------------------ *)

(* A static view of the installed tables for the symbolic loop checker:
   the checker walks {!Topology.fabric} values, so rebuild one from the
   live switch tables. *)
let check_view t =
  let view = Topology.build t.topo [] in
  List.iter
    (fun m ->
      let rules =
        List.map
          (fun (f : Flow.t) ->
            { Classifier.pattern = f.Flow.pattern; action = f.Flow.actions })
          (Table.entries (Switch.table m.switch 0))
      in
      Topology.set_table view m.id rules)
    t.members;
  view
