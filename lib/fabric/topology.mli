(** Multi-switch SDX fabrics (§4.1, last paragraph).

    A large exchange spans several physical switches, each hosting a
    subset of the participants' ports and connected by trunk links.  The
    SDX compiles its policy for one big logical switch; this module
    splits that classifier into per-switch tables:

    - policy rules pinned to an in-port are installed on that port's
      switch, with forwarding actions rewritten to the local port or the
      trunk toward the owning switch;
    - destination-MAC rules (default forwarding) are installed on every
      switch, so frames already processed at their ingress switch are
      carried across trunks by plain layer-2 forwarding — re-applying
      them is harmless because inbound pipelines are deterministic in the
      header fields.

    Trunks are chosen along a spanning tree computed over the (possibly
    cyclic) link graph — the conventional spanning tree §3.2 mentions for
    coexistence with non-SDN participants. *)

open Sdx_net

type t

val create :
  switches:int list ->
  links:(int * int) list ->
  port_home:(int * int) list ->
  t
(** [create ~switches ~links ~port_home] describes the physical layout:
    undirected trunk [links] between switch ids, and [port_home] mapping
    each fabric (physical) port number to the switch hosting it.
    @raise Invalid_argument on unknown switch ids, or if the link graph
    does not connect all switches. *)

val single : ports:int list -> t
(** The degenerate one-switch layout (switch 0 hosts every port, no
    trunks) — what a {!Network} uses unless told otherwise. *)

val edge_core : edges:int -> ports:int list -> t
(** An edge+core star: switch 0 is a core hosting no physical port,
    switches 1..[edges] are leaves with the [ports] partitioned
    round-robin across them.  Participants' rules land on their edge;
    the core forwards on destination tags only. *)

val switch_count : t -> int

val switches : t -> int list
(** Switch ids, ascending. *)

val has_physical_ports : t -> int -> bool

val edge_switches : t -> int list
(** Switches hosting at least one physical port, ascending. *)

val core_switches : t -> int list
(** Switches hosting none — pure transit. *)

val home_of_port : t -> int -> int option

val physical_ports : t -> (int * int) list
(** Every [(port, home switch)] pair, unordered. *)

val trunk_port : t -> from:int -> toward_neighbor:int -> int
(** Local trunk-port id on [from] for the tree link toward an adjacent
    switch.  @raise Not_found if the two switches are not tree
    neighbors. *)

val trunk_destination : t -> int -> (int * int) option
(** [trunk_destination t p] is [Some (owner, neighbor)] when [p] is a
    trunk port: a frame leaving [owner] on [p] crosses the link and
    enters [neighbor] on [trunk_port t ~from:neighbor
    ~toward_neighbor:owner].  [None] for physical ports. *)

val spanning_tree_edges : t -> (int * int) list
(** The tree edges actually used for trunking (a subset of [links];
    equal to [links] when the graph is already a tree). *)

val next_hop : t -> from:int -> toward:int -> int option
(** Next switch on the tree path; [None] when already there. *)

type fabric

val build : t -> Sdx_policy.Classifier.t -> fabric
(** Splits the logical classifier and installs the per-switch tables. *)

val topo : fabric -> t

val tables : fabric -> (int * Sdx_policy.Classifier.t) list
(** The installed per-switch tables, ascending switch id — the input the
    loop-freedom checker walks. *)

val table : fabric -> int -> Sdx_policy.Classifier.t option

val set_table : fabric -> int -> Sdx_policy.Classifier.t -> unit
(** Replaces one switch's table in place.  Exists for fault-injection
    tests (e.g. splicing a forwarding cycle the checker must catch);
    production code never calls it. *)

val rule_count : fabric -> int -> int
(** Rules installed on one switch. *)

val total_rules : fabric -> int

val process : fabric -> Packet.t -> Packet.t list
(** Runs a packet (located at a physical port) through the distributed
    fabric, hopping trunks as needed; the result is the set of packets
    leaving on physical ports — identical to what the logical
    single-switch classifier would produce. *)
