(** The wired IXP: border routers attached to the SDX fabric — one
    switch in the default layout, or a sharded multi-switch {!Fabric}
    when built with an explicit {!Topology} — with the runtime's
    compiled classifier installed.  This is the end-to-end path a packet
    takes in the deployment experiments. *)

open Sdx_net
open Sdx_bgp

type t

type delivery = {
  receiver : Asn.t;
  receiver_port : int;  (** the receiver's participant-local port index *)
  packet : Packet.t;
}

val create :
  ?switch_capacity:int -> ?topology:Topology.t -> Sdx_core.Runtime.t -> t
(** Builds one border router per physical participant port, creates the
    fabric ({!Topology.single} over the config's ports unless [topology]
    says otherwise), and commits the classifier to it; then syncs every
    router's FIB.  [switch_capacity] models the per-switch hardware rule
    budget of §4.2 ("even the most high-end SDN switch hardware can
    barely hold half a million rules"); installing beyond it raises
    {!Sdx_openflow.Table.Table_full}. *)

val runtime : t -> Sdx_core.Runtime.t

val fabric : t -> Fabric.t
(** The sharded data plane behind this exchange. *)

val topology : t -> Topology.t

val switch : t -> Sdx_openflow.Switch.t
(** The first (in the default layout: only) fabric switch. *)

val router : t -> Asn.t -> Border_router.t
(** The router on the participant's first port.
    @raise Not_found for remote participants. *)

val sync : t -> unit
(** Brings the data plane to the runtime's current ruleset and refreshes
    every router FIB — run after BGP updates or a re-optimization.  A
    changed ruleset goes through the two-phase {!commit}; an unchanged
    one (same {!Sdx_core.Runtime.generation}) sends no flow-mods. *)

val commit :
  ?protocol:[ `Two_phase | `Unsafe_single_phase ] ->
  ?on_phase:(Fabric.phase -> unit) ->
  t ->
  Fabric.commit_stats
(** Unconditionally commits the runtime's current flows to the fabric
    through the versioned update protocol (see {!Fabric.commit}). *)

val connection : t -> Sdx_openflow.Connection.t
(** The OpenFlow control channel to the first fabric switch. *)

val last_sync_flow_mods : t -> int
(** Flow modifications the most recent {!sync} (or {!create}) sent —
    zero for a no-op sync, small after a single BGP update, large after
    a re-optimization. *)

val telemetry : t -> Telemetry.t
(** Traffic counters, updated by every {!inject}. *)

val steering_drops : t -> int
(** Packets lost because a middlebox steering chain hit the
    re-injection depth bound ({!Telemetry.steering_drops}). *)

val attach_middlebox : t -> Asn.t -> Middlebox.t -> unit
(** Attaches a middlebox behind the participant's port: traffic the
    fabric delivers there is transformed and handed back to the host's
    border router for re-injection, so steering policies can chain
    functions on the way to the BGP destination (§8).  The host must
    have a physical port. *)

val detach_middlebox : t -> Asn.t -> unit

val inject : t -> from:Asn.t -> Packet.t -> delivery list
(** Sends a packet originating in [from]'s network: its border router
    tags and forwards it, then the fabric processes it (hopping trunks
    in a sharded layout).  A delivery landing on a middlebox host is
    transformed and re-injected (bounded depth guards against steering
    loops; packets lost at the bound are counted, see
    {!steering_drops}).  Returns the final deliveries (empty when routed
    nowhere, dropped, or blackholed). *)

val inject_at_port : t -> Packet.t -> delivery list
(** Processes a packet already located at a fabric port (packet.port),
    bypassing the border router — for tests that craft raw fabric
    traffic. *)

val inject_frame : t -> from:Asn.t -> bytes -> (delivery list, string) result
(** {!inject} over wire bytes: the frame is parsed ({!Sdx_net.Codec}),
    routed end to end, and the deliveries carry re-encoded frames in
    [frame].  Errors on malformed frames. *)

val frame_of_delivery : delivery -> bytes
(** The delivered packet as the bytes the receiving router would read
    off the wire. *)
