open Sdx_net
open Sdx_bgp

type t = {
  runtime : Sdx_core.Runtime.t;
  fabric : Fabric.t;
  routers : (Asn.t, Border_router.t) Hashtbl.t;
  middleboxes : (Asn.t, Middlebox.t) Hashtbl.t;
  telemetry : Telemetry.t;
  mutable last_sync_flow_mods : int;
  (* Runtime generation of the last commit, so a sync with no
     control-plane change sends nothing — the versioned fabric commit
     would otherwise rewrite the transit bands every time. *)
  mutable synced_generation : int;
}

(* Bound on middlebox re-injections per original packet, so a steering
   loop degrades to a drop instead of diverging. *)
let max_chain_depth = 8

type delivery = {
  receiver : Asn.t;
  receiver_port : int;
  packet : Packet.t;
}

(* Bring every switch to the runtime's current ruleset through the
   fabric's two-phase consistent update. *)
let commit ?protocol ?on_phase t =
  let stats =
    Fabric.commit ?protocol ?on_phase t.fabric (Sdx_core.Runtime.flows t.runtime)
  in
  t.synced_generation <- Sdx_core.Runtime.generation t.runtime;
  t.last_sync_flow_mods <- Fabric.total_mods stats;
  stats

let create ?switch_capacity ?topology runtime =
  let config = Sdx_core.Runtime.config runtime in
  let routers = Hashtbl.create 64 in
  List.iter
    (fun (p : Sdx_core.Participant.t) ->
      match p.ports with
      | [] -> ()
      | first :: _ ->
          Hashtbl.replace routers p.asn
            (Border_router.create config ~asn:p.asn ~port:first.index))
    (Sdx_core.Config.participants config);
  let topo =
    match topology with
    | Some topo -> topo
    | None ->
        Topology.single
          ~ports:
            (List.init (Sdx_core.Config.port_count config) (fun i -> i + 1))
  in
  let t =
    {
      runtime;
      fabric = Fabric.create ?capacity:switch_capacity topo;
      routers;
      middleboxes = Hashtbl.create 8;
      telemetry = Telemetry.create ();
      last_sync_flow_mods = 0;
      synced_generation = min_int;
    }
  in
  ignore (commit t);
  Hashtbl.iter (fun _ r -> Border_router.sync r runtime) routers;
  t

let runtime t = t.runtime
let fabric t = t.fabric
let topology t = Fabric.topo t.fabric
let switch t = Fabric.switch t.fabric (List.hd (Fabric.switches t.fabric))

let router t asn =
  match Hashtbl.find_opt t.routers asn with
  | Some r -> r
  | None -> raise Not_found

let connection t = Fabric.connection t.fabric (List.hd (Fabric.switches t.fabric))
let last_sync_flow_mods t = t.last_sync_flow_mods

let sync t =
  if Sdx_core.Runtime.generation t.runtime <> t.synced_generation then
    ignore (commit t)
  else t.last_sync_flow_mods <- 0;
  Hashtbl.iter (fun _ r -> Border_router.sync r t.runtime) t.routers

let deliveries_of_outputs t pkts =
  let config = Sdx_core.Runtime.config t.runtime in
  List.filter_map
    (fun (pkt : Packet.t) ->
      if pkt.port = Sdx_core.Compile.blackhole_port then None
      else
        match Sdx_core.Config.owner_of_port config pkt.port with
        | p, port ->
            Some
              {
                receiver = p.Sdx_core.Participant.asn;
                receiver_port = port.Sdx_core.Participant.index;
                packet = pkt;
              }
        | exception Not_found -> None)
    pkts

let attach_middlebox t asn fn =
  if not (Hashtbl.mem t.routers asn) then
    invalid_arg "Network.attach_middlebox: host has no physical port";
  Hashtbl.replace t.middleboxes asn fn

let detach_middlebox t asn = Hashtbl.remove t.middleboxes asn

(* Resolve deliveries, bouncing middlebox-hosted ones back through the
   host's border router until only real deliveries remain. *)
let rec resolve t depth deliveries =
  List.concat_map
    (fun d ->
      match Hashtbl.find_opt t.middleboxes d.receiver with
      | None -> [ d ]
      | Some fn ->
          if depth >= max_chain_depth then begin
            (* The chain is still steering at the bound: this packet is
               lost, and silently so unless someone counts it. *)
            Telemetry.record_steering_drop t.telemetry;
            []
          end
          else
            let router = Hashtbl.find t.routers d.receiver in
            List.concat_map
              (fun out ->
                match Border_router.send router out with
                | None -> []
                | Some tagged ->
                    resolve t (depth + 1)
                      (deliveries_of_outputs t (Fabric.process t.fabric tagged)))
              (fn d.packet))
    deliveries

let inject_at_port t pkt =
  resolve t 0 (deliveries_of_outputs t (Fabric.process t.fabric pkt))

let telemetry t = t.telemetry
let steering_drops t = Telemetry.steering_drops t.telemetry

let frame_of_delivery d = Codec.to_bytes d.packet

let inject t ~from pkt =
  let deliveries =
    match Hashtbl.find_opt t.routers from with
    | None -> []
    | Some r -> (
        match Border_router.send r pkt with
        | None -> []
        | Some tagged -> inject_at_port t tagged)
  in
  Telemetry.record t.telemetry ~src:from ~packet:pkt
    ~receivers:(List.map (fun d -> d.receiver) deliveries);
  deliveries

let inject_frame t ~from data =
  Result.map (inject t ~from) (Codec.of_bytes data)
