open Sdx_net
open Sdx_policy

type t = {
  switches : int list;
  links : (int * int) list;
  tree_edges : (int * int) list;
  port_home : (int, int) Hashtbl.t;
  (* parent.(s) on the BFS tree rooted at the smallest switch id *)
  parent : (int, int) Hashtbl.t;
  (* trunk port numbers: (switch, neighbor) -> local port id *)
  trunk_ports : (int * int, int) Hashtbl.t;
  trunk_owner : (int, int * int) Hashtbl.t;  (* port id -> (switch, neighbor) *)
}

let create ~switches ~links ~port_home =
  if switches = [] then invalid_arg "Topology.create: no switches";
  let known = Hashtbl.create 8 in
  List.iter (fun s -> Hashtbl.replace known s ()) switches;
  let check s =
    if not (Hashtbl.mem known s) then
      invalid_arg (Printf.sprintf "Topology.create: unknown switch %d" s)
  in
  List.iter (fun (a, b) -> check a; check b) links;
  let homes = Hashtbl.create 64 in
  List.iter
    (fun (port, s) ->
      check s;
      Hashtbl.replace homes port s)
    port_home;
  (* BFS spanning tree from the smallest switch id. *)
  let root = List.fold_left min (List.hd switches) switches in
  let adj = Hashtbl.create 8 in
  let add_adj a b =
    let cur = Option.value (Hashtbl.find_opt adj a) ~default:[] in
    Hashtbl.replace adj a (b :: cur)
  in
  List.iter (fun (a, b) -> add_adj a b; add_adj b a) links;
  let parent = Hashtbl.create 8 in
  let visited = Hashtbl.create 8 in
  Hashtbl.replace visited root ();
  let queue = Queue.create () in
  Queue.push root queue;
  let tree_edges = ref [] in
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    let neighbors =
      List.sort Int.compare (Option.value (Hashtbl.find_opt adj s) ~default:[])
    in
    List.iter
      (fun n ->
        if not (Hashtbl.mem visited n) then begin
          Hashtbl.replace visited n ();
          Hashtbl.replace parent n s;
          tree_edges := (s, n) :: !tree_edges;
          Queue.push n queue
        end)
      neighbors
  done;
  if Hashtbl.length visited <> List.length (List.sort_uniq Int.compare switches)
  then invalid_arg "Topology.create: link graph does not connect all switches";
  (* Trunk port ids: allocated above the physical range. *)
  let base =
    1000 + List.fold_left (fun m (p, _) -> max m p) 0 port_home
  in
  let trunk_ports = Hashtbl.create 16 in
  let trunk_owner = Hashtbl.create 16 in
  List.iteri
    (fun i (a, b) ->
      let pa = base + (2 * i) and pb = base + (2 * i) + 1 in
      Hashtbl.replace trunk_ports (a, b) pa;
      Hashtbl.replace trunk_ports (b, a) pb;
      Hashtbl.replace trunk_owner pa (a, b);
      Hashtbl.replace trunk_owner pb (b, a))
    !tree_edges;
  {
    switches = List.sort_uniq Int.compare switches;
    links;
    tree_edges = !tree_edges;
    port_home = homes;
    parent;
    trunk_ports;
    trunk_owner;
  }

(* Degenerate layout: every port on one switch, no trunks. *)
let single ~ports =
  create ~switches:[ 0 ] ~links:[] ~port_home:(List.map (fun p -> (p, 0)) ports)

(* The "Revisiting Open eXchange Points" deployment shape: a core hub
   (switch 0) with [edges] leaf switches hanging off it, the physical
   ports partitioned round-robin across the edges.  The core hosts no
   physical port, so its table ends up holding tag-forwarding rules
   only. *)
let edge_core ~edges ~ports =
  if edges < 1 then invalid_arg "Topology.edge_core: need at least one edge";
  let switches = 0 :: List.init edges (fun i -> i + 1) in
  let links = List.init edges (fun i -> (0, i + 1)) in
  let port_home =
    List.mapi (fun i p -> (p, 1 + (i mod edges))) (List.sort Int.compare ports)
  in
  create ~switches ~links ~port_home

let switch_count t = List.length t.switches
let switches t = t.switches

let has_physical_ports t s =
  Hashtbl.fold (fun _ home acc -> acc || home = s) t.port_home false

let edge_switches t = List.filter (has_physical_ports t) t.switches
let core_switches t = List.filter (fun s -> not (has_physical_ports t s)) t.switches
let home_of_port t p = Hashtbl.find_opt t.port_home p
let trunk_destination t p = Hashtbl.find_opt t.trunk_owner p
let physical_ports t = Hashtbl.fold (fun p s acc -> (p, s) :: acc) t.port_home []
let spanning_tree_edges t = List.rev t.tree_edges

(* Path to the root as a list of switches, used to find tree paths. *)
let path_to_root t s =
  let rec go s acc =
    match Hashtbl.find_opt t.parent s with
    | None -> s :: acc
    | Some p -> go p (s :: acc)
  in
  go s []

let next_hop t ~from ~toward =
  if from = toward then None
  else
    (* The tree path between two nodes goes up from each to their lowest
       common ancestor. *)
    let pa = path_to_root t from and pb = path_to_root t toward in
    let rec strip = function
      | a :: (a' :: _ as ta), b :: (b' :: _ as tb) when a = b && a' = b' ->
          strip (ta, tb)
      | pa, pb -> (pa, pb)
    in
    let pa, pb = strip (pa, pb) in
    (* pa and pb now start at the LCA. *)
    match (pa, pb) with
    | _ :: _, [ _ ] ->
        (* toward is the LCA: step to our parent. *)
        Hashtbl.find_opt t.parent from
    | [ _ ], _ :: second :: _ ->
        (* we are the LCA: step down toward the target. *)
        Some second
    | _ :: _, _ :: _ ->
        (* go up toward the LCA. *)
        Hashtbl.find_opt t.parent from
    | _ -> None

let trunk_port t ~from ~toward_neighbor =
  Hashtbl.find t.trunk_ports (from, toward_neighbor)

(* ------------------------------------------------------------------ *)

type fabric = {
  topo : t;
  tables : (int, Classifier.t) Hashtbl.t;
}

(* Rewrite a rule's outputs for switch [s]: local ports stay, remote
   ports leave on the trunk toward their home switch. *)
let localize_rule t s (r : Classifier.rule) =
  let localize_mod (m : Mods.t) =
    match m.port with
    | None -> m
    | Some p -> (
        if p = Sdx_core.Compile.blackhole_port then m
        else
          match Hashtbl.find_opt t.port_home p with
          | None -> m
          | Some home ->
              if home = s then m
              else
                let hop = Option.get (next_hop t ~from:s ~toward:home) in
                { m with port = Some (trunk_port t ~from:s ~toward_neighbor:hop) })
  in
  { r with action = List.map localize_mod r.action }

let build t classifier =
  let tables = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let rules =
        List.filter_map
          (fun (r : Classifier.rule) ->
            match r.pattern.Pattern.port with
            | Some p -> (
                match Hashtbl.find_opt t.port_home p with
                | Some home when home = s -> Some (localize_rule t s r)
                | Some _ -> None  (* another switch's ingress rule *)
                | None -> None (* pinned to a port that no longer exists *))
            | None ->
                (* Destination-MAC rules serve both local ingress and
                   trunk transit: install everywhere. *)
                Some (localize_rule t s r))
          classifier
      in
      Hashtbl.replace tables s (rules @ Classifier.drop_all))
    t.switches;
  { topo = t; tables }

let topo f = f.topo

let tables f =
  List.filter_map
    (fun s -> Option.map (fun c -> (s, c)) (Hashtbl.find_opt f.tables s))
    f.topo.switches

let table f s = Hashtbl.find_opt f.tables s
let set_table f s c = Hashtbl.replace f.tables s c

let rule_count f s =
  match Hashtbl.find_opt f.tables s with
  | Some c -> Classifier.rule_count c
  | None -> 0

let total_rules f = Hashtbl.fold (fun _ c n -> n + Classifier.rule_count c) f.tables 0

let process f (pkt : Packet.t) =
  (* Follow the packet switch by switch; trunks are loop-free (tree), and
     the hop bound guards against miswired tables anyway. *)
  let max_hops = 4 * switch_count f.topo in
  let rec at_switch hops s (pkt : Packet.t) =
    if hops > max_hops then []
    else
      let table = Hashtbl.find f.tables s in
      List.concat_map
        (fun (out : Packet.t) ->
          match Hashtbl.find_opt f.topo.trunk_owner out.port with
          | Some (owner, neighbor) ->
              assert (owner = s);
              (* The frame crosses the trunk and enters the neighbor on
                 the neighbor's side of the link. *)
              let in_port = trunk_port f.topo ~from:neighbor ~toward_neighbor:s in
              at_switch (hops + 1) neighbor { out with port = in_port }
          | None -> [ out ])
        (Classifier.eval table pkt)
  in
  match home_of_port f.topo pkt.port with
  | None -> []
  | Some s ->
      Packet.Set.elements (Packet.Set.of_list (at_switch 0 s pkt))
