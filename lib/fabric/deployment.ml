open Sdx_net
open Sdx_bgp

type event =
  | Set_policies of { asn : Asn.t; inbound : Sdx_core.Ppolicy.t; outbound : Sdx_core.Ppolicy.t }
  | Withdraw_route of { peer : Asn.t; prefix : Prefix.t }
  | Announce_route of {
      peer : Asn.t;
      port : int;
      prefix : Prefix.t;
      as_path : Asn.t list option;
    }

type flow = { name : string; from : Asn.t; packet : Packet.t; rate_mbps : float }

type scenario = {
  participants : Sdx_core.Participant.t list;
  seed_routes : (Asn.t * int * Prefix.t * Asn.t list) list;
  flows : flow list;
  events : (int * event) list;
  duration : int;
  classify : Network.delivery -> string option;
}

type sample = { time : int; rates : (string * float) list }

type state = {
  mutable participants : Sdx_core.Participant.t list;
  (* Live routes: (peer, port index, prefix, as path), updated by
     announce/withdraw events so a policy change can rebuild the world. *)
  mutable routes : (Asn.t * int * Prefix.t * Asn.t list) list;
  mutable network : Network.t;
}

let build ?edges participants routes =
  let config = Sdx_core.Config.make participants in
  List.iter
    (fun (peer, port, prefix, as_path) ->
      ignore (Sdx_core.Config.announce config ~peer ~port ~as_path prefix))
    routes;
  let runtime = Sdx_core.Runtime.create config in
  let topology =
    Option.map
      (fun edges ->
        let ports =
          List.init (Sdx_core.Config.port_count config) (fun i -> i + 1)
        in
        Topology.edge_core ~edges ~ports)
      edges
  in
  Network.create ?topology runtime

(* Every control-plane event funnels through here: the changed ruleset
   reaches the (possibly sharded) data plane via the fabric's two-phase
   consistent update, never a direct table write. *)
let commit st = Network.sync st.network

let apply_event st = function
  | Set_policies { asn; inbound; outbound } ->
      st.participants <-
        List.map
          (fun (p : Sdx_core.Participant.t) ->
            if Asn.equal p.asn asn then { p with inbound; outbound } else p)
          st.participants;
      (* A policy change recompiles in place — BGP state and the other
         participants' sessions are untouched (§4.3 treats policy changes
         as full recompilations). *)
      ignore
        (Sdx_core.Runtime.set_policies (Network.runtime st.network) asn ~inbound
           ~outbound);
      commit st
  | Withdraw_route { peer; prefix } ->
      st.routes <-
        List.filter
          (fun (p, _, pre, _) -> not (Asn.equal p peer && Prefix.equal pre prefix))
          st.routes;
      ignore
        (Sdx_core.Runtime.withdraw (Network.runtime st.network) ~peer prefix);
      commit st
  | Announce_route { peer; port; prefix; as_path } ->
      let as_path = Option.value as_path ~default:[ peer ] in
      st.routes <- (peer, port, prefix, as_path) :: st.routes;
      ignore
        (Sdx_core.Runtime.announce (Network.runtime st.network) ~peer ~port
           ~as_path prefix);
      commit st

let run ?(sample_every = 1) ?edges (scenario : scenario) =
  let st =
    {
      participants = scenario.participants;
      routes = scenario.seed_routes;
      network = build ?edges scenario.participants scenario.seed_routes;
    }
  in
  let events = List.sort (fun (a, _) (b, _) -> Int.compare a b) scenario.events in
  let pending = ref events in
  let samples = ref [] in
  for time = 0 to scenario.duration - 1 do
    let rec fire () =
      match !pending with
      | (at, ev) :: rest when at <= time ->
          pending := rest;
          apply_event st ev;
          fire ()
      | _ -> ()
    in
    fire ();
    if time mod sample_every = 0 then begin
      let tally = Hashtbl.create 8 in
      List.iter
        (fun flow ->
          let deliveries = Network.inject st.network ~from:flow.from flow.packet in
          List.iter
            (fun d ->
              match scenario.classify d with
              | None -> ()
              | Some sink ->
                  let cur = Option.value (Hashtbl.find_opt tally sink) ~default:0. in
                  Hashtbl.replace tally sink (cur +. flow.rate_mbps))
            deliveries)
        scenario.flows;
      let rates =
        List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tally [])
      in
      samples := { time; rates } :: !samples
    end
  done;
  List.rev !samples

let rate sample sink =
  Option.value (List.assoc_opt sink sample.rates) ~default:0.
