open Sdx_net
open Sdx_bgp
open Sdx_obs

(* Process-wide aggregates in the default registry, so a plain
   [Registry.pp Registry.default] report covers the data plane alongside
   the control-plane metrics — one export path for both. *)
let g_packets = Registry.counter "sdx_fabric_packets_total"
let g_deliveries = Registry.counter "sdx_fabric_deliveries_total"
let g_drops = Registry.counter "sdx_fabric_drops_total"
let g_steering_drops = Registry.counter "sdx_fabric_steering_chain_drops_total"

(* Per-exchange counters live in a private registry: one fabric
   simulation must not pollute another's matrix.  The typed-key tables
   map back from (Asn, Asn) / (Ipv4, Asn) to the registered counter,
   since label strings are a one-way encoding. *)
type t = {
  registry : Registry.t;
  total : Registry.Counter.t;
  steering_drops : Registry.Counter.t;
  pairs : (Asn.t * Asn.t, Registry.Counter.t) Hashtbl.t;
  sources : (Ipv4.t * Asn.t, Registry.Counter.t) Hashtbl.t;
}

let create () =
  let registry = Registry.create () in
  {
    registry;
    total = Registry.counter ~registry "sdx_fabric_packets_total";
    steering_drops =
      Registry.counter ~registry "sdx_fabric_steering_chain_drops";
    pairs = Hashtbl.create 256;
    sources = Hashtbl.create 256;
  }

let asn_counter t name asn =
  Registry.counter ~registry:t.registry ~labels:[ ("asn", Asn.to_string asn) ] name

let pair_counter t src dst =
  match Hashtbl.find_opt t.pairs (src, dst) with
  | Some c -> c
  | None ->
      let c =
        Registry.counter ~registry:t.registry
          ~labels:[ ("src", Asn.to_string src); ("dst", Asn.to_string dst) ]
          "sdx_fabric_pair_packets"
      in
      Hashtbl.replace t.pairs (src, dst) c;
      c

let source_counter t src_ip dst =
  match Hashtbl.find_opt t.sources (src_ip, dst) with
  | Some c -> c
  | None ->
      let c =
        Registry.counter ~registry:t.registry
          ~labels:[ ("src_ip", Ipv4.to_string src_ip); ("dst", Asn.to_string dst) ]
          "sdx_fabric_source_packets"
      in
      Hashtbl.replace t.sources (src_ip, dst) c;
      c

let record t ~src ~packet ~receivers =
  Registry.Counter.incr t.total;
  Registry.Counter.incr g_packets;
  Registry.Counter.incr (asn_counter t "sdx_fabric_tx_packets" src);
  match receivers with
  | [] ->
      Registry.Counter.incr (asn_counter t "sdx_fabric_dropped_packets" src);
      Registry.Counter.incr g_drops
  | rs ->
      List.iter
        (fun r ->
          Registry.Counter.incr (asn_counter t "sdx_fabric_rx_packets" r);
          Registry.Counter.incr g_deliveries;
          Registry.Counter.incr (pair_counter t src r);
          Registry.Counter.incr (source_counter t packet.Packet.src_ip r))
        rs

let record_steering_drop t =
  Registry.Counter.incr t.steering_drops;
  Registry.Counter.incr g_steering_drops

let value c = Registry.Counter.value c
let steering_drops t = Registry.Counter.value t.steering_drops
let tx t asn = value (asn_counter t "sdx_fabric_tx_packets" asn)
let rx t asn = value (asn_counter t "sdx_fabric_rx_packets" asn)
let dropped t asn = value (asn_counter t "sdx_fabric_dropped_packets" asn)

let matrix t =
  List.sort
    (fun (_, _, a) (_, _, b) -> Int.compare b a)
    (Hashtbl.fold
       (fun (s, r) c acc ->
         match value c with 0 -> acc | n -> (s, r, n) :: acc)
       t.pairs [])

let top_sources t ~toward =
  List.sort
    (fun (_, a) (_, b) -> Int.compare b a)
    (Hashtbl.fold
       (fun (src_ip, r) c acc ->
         if Asn.equal r toward then
           match value c with 0 -> acc | n -> (src_ip, n) :: acc
         else acc)
       t.sources [])

let total t = value t.total
let registry t = t.registry
let samples t = Registry.samples t.registry
let reset t = Registry.reset t.registry
