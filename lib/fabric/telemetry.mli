(** Traffic telemetry at the exchange: per-participant and per-source
    counters collected as packets traverse the fabric.

    This is the measurement side of the paper's §2 scenarios — "when
    traffic measurements suggest a possible denial-of-service attack, an
    ISP can steer the offending traffic through a traffic scrubber" — and
    of peering decisions generally (the traffic matrix between
    participants).

    The counters are expressed on {!Sdx_obs.Registry}: each exchange
    owns a private registry of labeled counters
    ([sdx_fabric_rx_packets{asn="AS200"}], pair and per-source matrices)
    exported through {!samples}, and process-wide aggregates
    ([sdx_fabric_packets_total], [..._deliveries_total],
    [..._drops_total]) land in [Registry.default] so data-plane traffic
    shows up in the same report as the control-plane metrics. *)

open Sdx_net
open Sdx_bgp

type t

val create : unit -> t

val record : t -> src:Asn.t -> packet:Packet.t -> receivers:Asn.t list -> unit
(** Accounts one injected packet: a drop when [receivers] is empty, one
    delivery per receiver otherwise. *)

val tx : t -> Asn.t -> int
(** Packets a participant sent into the fabric. *)

val rx : t -> Asn.t -> int
(** Packets delivered to a participant. *)

val dropped : t -> Asn.t -> int
(** A participant's packets that were dropped or blackholed. *)

val record_steering_drop : t -> unit
(** Accounts a packet discarded because its middlebox steering chain hit
    the re-injection depth bound — a silent loss without this counter.
    Also bumps the process-wide
    [sdx_fabric_steering_chain_drops_total]. *)

val steering_drops : t -> int
(** Packets this exchange lost to the steering-chain depth bound. *)

val matrix : t -> (Asn.t * Asn.t * int) list
(** The traffic matrix: (sender, receiver, packets), descending. *)

val top_sources : t -> toward:Asn.t -> (Ipv4.t * int) list
(** Source addresses of traffic delivered to one participant, heaviest
    first — the DoS-detection signal. *)

val total : t -> int

val registry : t -> Sdx_obs.Registry.t
(** The exchange's private metrics registry. *)

val samples : t -> Sdx_obs.Registry.sample list
(** Snapshot in the shared export schema — feed to
    {!Sdx_obs.Registry.pp_samples} or {!Sdx_obs.Registry.json_of_samples}. *)

val reset : t -> unit
(** Zeroes every counter (registrations survive; zero-valued pairs and
    sources are filtered from {!matrix} and {!top_sources}). *)
