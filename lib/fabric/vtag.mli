(** Version tags for trunk frames.

    The two-phase consistent-update protocol needs every frame crossing
    a trunk to carry the ruleset version that processed it at its
    ingress edge, so transit rules of different versions can coexist
    during a commit without ever mixing on one packet's path.  A tag is
    a destination MAC in a reserved space: first octet [0x06] (even
    versions) or [0x0E] (odd), low 40 bits an interned index of the
    original destination MAC.  The interner is stable for the lifetime
    of a fabric, so re-stamping the same address at every commit yields
    the same tag modulo the parity octet — which is exactly the bit the
    version flip toggles. *)

open Sdx_net

type t
(** The MAC interner backing one fabric's tag space. *)

val create : unit -> t

val stamp : t -> version:int -> Mac.t -> Mac.t
(** The tag for [mac] under [version] (only its parity matters).
    @raise Invalid_argument if [mac] already lies in the tag space. *)

val strip : t -> Mac.t -> Mac.t option
(** The original address a tag was minted from; [None] for untagged
    MACs or tags this interner never issued. *)

val is_tagged : Mac.t -> bool
(** Whether the address lies in the reserved tag space at all. *)

val parity : Mac.t -> int option
(** The version parity a tag carries; [None] for untagged MACs. *)

val interned : t -> int
(** Distinct original addresses interned so far. *)
