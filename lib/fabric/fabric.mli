(** A sharded multi-switch fabric with versioned two-phase consistent
    updates (§4.1; Reitblatt et al.'s per-packet consistency).

    One software switch and one OpenFlow {!Sdx_openflow.Connection} per
    {!Topology} switch.  Logical rules split into an ingress band
    (port-pinned rules at their home edge, unpinned rules at every edge)
    whose remote outputs re-address frames into the {!Vtag} space, and a
    transit band (every dst-MAC rule, on every switch, far above the
    ingress priorities) forwarding on tags only.

    {!commit} moves the fabric from ruleset version v to v+1 in three
    barrier-separated phases — install the v+1 transit band
    (cookie-tagged, make-before-break), flip every ingress stamp in
    place, then delete the v band by cookie — so a frame stamped v keeps
    matching v rules until every edge provably stamps v+1.  {!process}
    doubles as the protocol's monitor: it counts packets that meet a
    mixed ruleset (tag with no transit rule, tag falling through to the
    ingress band, both parities on one delivery tree, or a tag leaking
    out of a delivered frame). *)

open Sdx_net
open Sdx_openflow

val transit_base : int
(** Priority offset of the transit bands; logical flow priorities must
    stay below it. *)

type t

val create : ?capacity:int -> Topology.t -> t
(** One switch (with optional per-table [capacity]) and connection per
    topology switch; version 0, nothing installed. *)

val topo : t -> Topology.t
val switches : t -> int list

val switch : t -> int -> Switch.t
(** @raise Invalid_argument on an unknown switch id. *)

val connection : t -> int -> Connection.t
(** @raise Invalid_argument on an unknown switch id. *)

type commit_stats = {
  version : int;  (** the version the commit moved the fabric to *)
  install_mods : int;  (** phase-1 adds: the incoming transit band *)
  flip_mods : int;  (** phase-2 mods: ingress flips, adds, deletes *)
  gc_mods : int;  (** phase-3 deletes: the outgoing transit band *)
  barriers : int;  (** barrier round-trips across all switches *)
}

val total_mods : commit_stats -> int

type phase =
  | Installed of int  (** v+1 transit band everywhere, old rules live *)
  | Flipped of int  (** every edge now stamps v+1 *)
  | Collected of int  (** version-v transit band deleted *)
  | Synced_member of int
      (** [`Unsafe_single_phase] only: one switch cut over, others not *)

val commit :
  ?protocol:[ `Two_phase | `Unsafe_single_phase ] ->
  ?on_phase:(phase -> unit) ->
  t ->
  Flow.t list ->
  commit_stats
(** Moves every switch to the given logical ruleset at version v+1.
    [`Two_phase] (the default) is the consistent protocol described
    above; [`Unsafe_single_phase] cuts switches over one full sync at a
    time with no make-before-break — the negative control that makes
    {!mixed_version_packets} move.  [on_phase] fires after each phase's
    barriers; injecting probe traffic from it exercises the mid-update
    windows.
    @raise Invalid_argument if a flow priority reaches {!transit_base}
    or a trunk-crossing action names no destination MAC. *)

val version : t -> int
val commits : t -> int
val last_commit : t -> commit_stats option

val process : t -> Packet.t -> Packet.t list
(** Runs a packet located at a physical port through the sharded data
    plane, hopping trunks switch to switch; the result is the set of
    frames leaving on physical ports, tag-free — packet-for-packet what
    the logical single-switch table yields.  Entry hit counters advance
    once per switch visited, and the consistency monitor updates
    {!mixed_version_packets} / {!transit_misses}. *)

(** {2 Pure parallel readers} *)

type snap
(** Per-switch RCU table snapshots plus the topology: build on the
    owning domain with {!snapshots}, then hand to worker domains. *)

val snapshots : t -> snap

val reader : snap -> Packet.t -> Packet.t list
(** [reader snap] walks packets over the frozen snapshot without
    touching counters or shared state.  Call once per worker domain (the
    cursors inside are domain-private), then apply freely. *)

(** {2 Introspection} *)

val rule_counts : t -> (int * int) list
(** Installed rules per switch, ascending switch id. *)

val total_rules : t -> int

val packets : t -> int
(** Packets {!process} has walked. *)

val mixed_version_packets : t -> int
(** Packets whose walk showed a mixed ruleset — the number the two-phase
    protocol exists to keep at zero. *)

val transit_misses : t -> int
(** The subset of mixed-version packets dropped because a tagged frame
    found no transit rule at some switch. *)

val check_view : t -> Topology.fabric
(** A static classifier view of the live tables for
    {!Sdx_check}-style symbolic walks (loop freedom over trunks). *)
