(** Event-driven deployment experiments (§5.2, Figure 5).

    A scenario wires participants into a network, seeds BGP routes,
    generates constant-rate flows, and replays timed control-plane
    events: policy installation, route announcements and withdrawals.
    Each simulated second, every flow's packets are pushed through the
    border routers and the fabric, and per-sink delivery rates are
    sampled — the time series the paper's Figure 5 plots. *)

open Sdx_net
open Sdx_bgp

type event =
  | Set_policies of { asn : Asn.t; inbound : Sdx_core.Ppolicy.t; outbound : Sdx_core.Ppolicy.t }
      (** a participant (re)installs its SDX application *)
  | Withdraw_route of { peer : Asn.t; prefix : Prefix.t }
  | Announce_route of {
      peer : Asn.t;
      port : int;
      prefix : Prefix.t;
      as_path : Asn.t list option;
    }

type flow = {
  name : string;
  from : Asn.t;  (** originating participant *)
  packet : Packet.t;  (** header template *)
  rate_mbps : float;
}

type scenario = {
  participants : Sdx_core.Participant.t list;
  seed_routes : (Asn.t * int * Prefix.t * Asn.t list) list;
      (** (peer, port index, prefix, AS path) announced before t=0 *)
  flows : flow list;
  events : (int * event) list;  (** (time in seconds, event) *)
  duration : int;
  classify : Network.delivery -> string option;
      (** names the sink a delivery counts toward; [None] ignores it *)
}

type sample = { time : int; rates : (string * float) list }
(** Delivery rate per sink name at one sampled second; sinks that
    received nothing report 0. *)

val run : ?sample_every:int -> ?edges:int -> scenario -> sample list
(** Runs the scenario, sampling every [sample_every] seconds
    (default 1).  With [edges] the network is built on a sharded
    {!Topology.edge_core} fabric of that many edge switches; every
    control-plane event then commits through the two-phase consistent
    update ({!Network.sync} → {!Fabric.commit}), so mid-scenario
    rule changes never expose a mixed ruleset to the sampled flows. *)

val rate : sample -> string -> float
(** Rate of one sink in a sample (0 when absent). *)
