open Sdx_net

(* Trunk frames are re-addressed into a reserved destination-MAC tag
   space so transit rules can select the ruleset *version* that stamped
   them: the first octet is 0x06 (version parity 0) or 0x0E (parity 1) —
   locally-administered, unicast, and used by no participant MAC or VNH
   VMAC — and the low 40 bits carry an interned index of the original
   destination MAC.  Both the stamp (at the version-flipping ingress
   rule) and the strip (at the delivering transit rule) are plain
   constant dst-MAC rewrites, because the transit rule's pattern pins
   the tag and therefore knows the original address.

   An interned index rather than bit-twiddling keeps the scheme correct
   for arbitrary 48-bit participant MACs (Figure 1's aa:..:01 etc. use
   the high bits a flag would need). *)

let parity0_octet = 0x06
let parity1_octet = 0x0E
let octet_of mac = Mac.to_int mac lsr 40
let is_tagged mac = octet_of mac = parity0_octet || octet_of mac = parity1_octet

type t = {
  ids : (Mac.t, int) Hashtbl.t;
  mutable macs : Mac.t array;  (* id -> original, doubling *)
  mutable next : int;
}

let create () = { ids = Hashtbl.create 64; macs = Array.make 64 Mac.zero; next = 0 }

let intern t mac =
  match Hashtbl.find_opt t.ids mac with
  | Some id -> id
  | None ->
      if is_tagged mac then
        invalid_arg
          (Printf.sprintf
             "Vtag.intern: %s lies in the reserved trunk-tag space"
             (Mac.to_string mac));
      let id = t.next in
      if id >= Array.length t.macs then begin
        let bigger = Array.make (2 * Array.length t.macs) Mac.zero in
        Array.blit t.macs 0 bigger 0 (Array.length t.macs);
        t.macs <- bigger
      end;
      t.macs.(id) <- mac;
      Hashtbl.replace t.ids mac id;
      t.next <- id + 1;
      id

let stamp t ~version mac =
  let octet = if version land 1 = 0 then parity0_octet else parity1_octet in
  Mac.of_int ((octet lsl 40) lor intern t mac)

let parity mac =
  match octet_of mac with
  | o when o = parity0_octet -> Some 0
  | o when o = parity1_octet -> Some 1
  | _ -> None

let strip t mac =
  match parity mac with
  | None -> None
  | Some _ ->
      let id = Mac.to_int mac land ((1 lsl 40) - 1) in
      if id < t.next then Some t.macs.(id) else None

let interned t = t.next
