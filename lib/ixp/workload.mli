(** Full §6.1 workloads: an emulated IXP with a realistic participant
    population, announced routing tables, and the per-class policy mix
    the paper evaluates (content providers tune outbound
    application-specific peering, eyeballs tune inbound traffic, transit
    networks do both). *)

open Sdx_net
open Sdx_bgp

type t = {
  config : Sdx_core.Config.t;  (** participants wired and routes announced *)
  specs : Population.spec list;
  universe : Prefix.t list;  (** every announced prefix *)
  announcers : (Prefix.t * Asn.t) list;
      (** primary announcer per prefix (dual-homed prefixes also have a
          backup announcer with a longer AS path) *)
}

val build :
  Rng.t ->
  participants:int ->
  prefixes:int ->
  ?dual_homed_fraction:float ->
  ?with_policies:bool ->
  ?transit_picks:int ->
  ?inbound_density:float ->
  unit ->
  t
(** Builds the emulated exchange.  [dual_homed_fraction] (default 0.05)
    of prefixes get a second, less-preferred announcer.
    [with_policies] (default true) installs the §6.1 policy mix:
    the top 15% of eyeballs, top 5% of transit networks, and a random 5%
    of content providers get custom policies.  [transit_picks]
    (default 1) is how many destination prefixes each transit policy
    pins per target eyeball — raising it with the table size sweeps the
    prefix-group axis the way the paper's Figures 7-8 do.
    [inbound_density] (default 1.0) multiplies the fraction of content
    providers participating in the mix (capped at the whole class),
    which in turn deepens every eyeball and transit inbound pipeline —
    the application-mix axis: inbound traffic engineering is the
    paper's flagship SDX application, and its per-pipeline clause count
    is what separates compilation strategies (a cross-product pays per
    clause {e per group}, a decision diagram amortizes the pipeline
    across its groups). *)

val announcement_sets :
  Rng.t -> participants:int -> prefixes:int -> Prefix.Set.t list
(** Just the per-participant announcement sets (no config) — the input
    of the Figure 6 prefix-group experiment. *)

val runtime : t -> Sdx_core.Runtime.t
(** Creates a runtime over the workload's configuration (initial
    compilation included). *)

val participant_port_ip : int -> int -> Ipv4.t
(** The deterministic interface address of participant [i]'s port [j]
    (exposed for trace generators targeting a workload). *)

val random_best_changing_update : Rng.t -> t -> Update.t
(** An announcement guaranteed to change the affected prefix's best
    route (a new peer announces it with a higher local preference) — the
    worst-case update of Figure 9. *)

val burst : Rng.t -> t -> size:int -> Update.t list
(** [size] best-changing updates on distinct prefixes. *)
