open Sdx_net

(* Prefixes are carved from 32.0.0.0/3 (clear of the examples' address
   ranges and the 172.16/12 VNH pool): the i-th prefix occupies the i-th
   /22-aligned block, as a /22, /23, or /24 depending on i mod 4 — the
   blocks are disjoint by construction, and the length mix loosely mirrors
   a real table's aggregate/deaggregate split.  Indices past the /3's
   524,288 blocks spill into a second band of /23-aligned blocks carved
   from 64.0.0.0/3 (also unused elsewhere in the tree), so the 1M-prefix
   sweep fits while every pre-existing index keeps its exact prefix. *)
let base = 0x20000000
let space0 = 1 lsl (29 - 10) (* number of /22 blocks in a /3 *)
let overflow_base = 0x40000000
let space = space0 + (1 lsl (29 - 9)) (* + /23 blocks in the second /3 *)

let nth i =
  if i < 0 || i >= space then
    invalid_arg (Printf.sprintf "Prefixes.nth: %d out of range" i)
  else if i < space0 then
    let block = base + (i lsl 10) in
    let len =
      match i mod 4 with
      | 0 -> 22
      | 1 | 2 -> 24
      | _ -> 23
    in
    Prefix.make (Ipv4.of_int block) len
  else
    let j = i - space0 in
    let block = overflow_base + (j lsl 9) in
    let len = match j mod 4 with 0 -> 23 | _ -> 24 in
    Prefix.make (Ipv4.of_int block) len

let table n = List.init n nth

let host_in p =
  (* Second address of the prefix: distinct from the network address. *)
  Prefix.host p 1
