
type result = {
  bursts : int;
  updates : int;
  best_changed : int;
  reoptimizations : int;
  peak_extra_rules : int;
  final_rules : int;
  mean_update_ms : float;
  p99_update_ms : float;
  max_update_ms : float;
}

let run ?(quiet_gap_s = 60.0) runtime trace =
  let bursts = ref 0 in
  let updates = ref 0 in
  let best_changed = ref 0 in
  let reoptimizations = ref 0 in
  let peak_extra = ref 0 in
  let times = ref [] in
  let last_at = ref neg_infinity in
  List.iter
    (fun (b : Trace.burst) ->
      (* A long quiet gap gives the background stage time to run. *)
      if b.at_s -. !last_at >= quiet_gap_s && Sdx_core.Runtime.extra_rule_count runtime > 0
      then begin
        ignore (Sdx_core.Runtime.reoptimize runtime);
        incr reoptimizations
      end;
      last_at := b.at_s;
      incr bursts;
      List.iter
        (fun update ->
          let stats = Sdx_core.Runtime.handle_update runtime update in
          incr updates;
          if stats.best_changed then incr best_changed;
          times := (1000.0 *. stats.processing_s) :: !times)
        b.updates;
      peak_extra := max !peak_extra (Sdx_core.Runtime.extra_rule_count runtime))
    trace;
  let arr = Array.of_list !times in
  Array.sort Float.compare arr;
  let n = Array.length arr in
  let mean =
    if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 arr /. float_of_int n
  in
  let pct p = if n = 0 then 0.0 else arr.(int_of_float (p *. float_of_int (n - 1))) in
  {
    bursts = !bursts;
    updates = !updates;
    best_changed = !best_changed;
    reoptimizations = !reoptimizations;
    peak_extra_rules = !peak_extra;
    final_rules = Sdx_core.Runtime.rule_count runtime;
    mean_update_ms = mean;
    p99_update_ms = pct 0.99;
    max_update_ms = (if n = 0 then 0.0 else arr.(n - 1));
  }

let trace_for_workload rng (w : Workload.t) ~profile ~duration_s =
  let specs = Array.of_list w.specs in
  let universe = Array.of_list w.universe in
  let profile =
    { profile with Trace.prefixes = Array.length universe }
  in
  (* Updates come from real participants and touch real prefixes.  As in
     a live feed, not every announcement wins the decision process — the
     replay measures the realistic mix where only some updates move a
     best path (the paper: "not every BGP update induces changes in
     forwarding table entries"). *)
  let peer_of i = specs.(i mod Array.length specs).Population.asn in
  let prefix_of i = universe.(i mod Array.length universe) in
  let next_hop_of i = Workload.participant_port_ip (i mod Array.length specs) 0 in
  Trace.generate rng profile ~duration_s ~peer_of ~prefix_of ~next_hop_of ()

let pp_result fmt r =
  Format.fprintf fmt
    "@[<v>bursts: %d, updates: %d (%d moved a best path)@,\
     background re-optimizations: %d@,\
     peak fast-path rules: %d, final table: %d rules@,\
     per-update time: mean %.3f ms, p99 %.3f ms, max %.3f ms@]"
    r.bursts r.updates r.best_changed r.reoptimizations r.peak_extra_rules
    r.final_rules r.mean_update_ms r.p99_update_ms r.max_update_ms

(* ------------------------------------------------------------------ *)
(* Churn soak: unbounded synthetic churn with injected faults.         *)

open Sdx_net
open Sdx_bgp
open Sdx_core

(* What a (sender, prefix) pair experiences end to end: the SDX's
   announcement names a next hop, the ARP responder resolves it to the
   MAC the sender would tag packets with, and the flow table decides the
   delivery.  Comparing this between the live runtime and a from-scratch
   recompile is the fast-path equivalence the two-stage compiler
   promises — VNH identities differ between the two, the resolved
   delivery actions must not. *)
type delivery =
  | No_route
  | Unresolved  (** announced next hop has no ARP binding — always a bug *)
  | No_match  (** tagged probe fell through the classifier *)
  | Delivered of Sdx_policy.Mods.t list

let table_of rt =
  let table = Sdx_openflow.Table.create () in
  Sdx_openflow.Table.install_all table (Runtime.flows rt);
  table

let delivery_of rt table ~sender ~sport prefix =
  match Runtime.announcement rt ~receiver:sender prefix with
  | None -> No_route
  | Some (route : Route.t) -> (
      match Sdx_arp.Responder.query (Runtime.arp rt) route.next_hop with
      | None -> Unresolved
      | Some mac -> (
          let pkt =
            Packet.make ~port:sport ~dst_mac:mac ~dst_ip:(Prefix.first prefix)
              ()
          in
          match Sdx_openflow.Table.lookup table pkt with
          | None -> No_match
          | Some flow -> Delivered flow.Sdx_openflow.Flow.actions))

let forwarding_divergences rt ~reference =
  let config = Runtime.config rt in
  let live_table = table_of rt in
  let ref_table = table_of reference in
  let prefixes = Route_server.all_prefixes (Config.server config) in
  List.concat_map
    (fun (p : Participant.t) ->
      match Config.switch_ports_of config p.asn with
      | [] -> []
      | sport :: _ ->
          List.filter_map
            (fun prefix ->
              let live = delivery_of rt live_table ~sender:p.asn ~sport prefix in
              let fresh =
                delivery_of reference ref_table ~sender:p.asn ~sport prefix
              in
              if live = fresh then None else Some (p.asn, prefix))
            prefixes)
    (Config.participants config)

type soak_config = {
  target_updates : int;
  checkpoint_every : int;
  fault_every : int;  (** bursts between injected faults *)
  storm_size : int;  (** prefixes withdrawn per storm / session flap *)
  train_length : int;  (** updates per duplicate / same-prefix train *)
  max_burst : int;  (** normal-traffic burst size cap *)
  check_every : int;
      (** bursts between inline incremental checks (0 = disabled);
          1 verifies every burst commit *)
}

let default_soak_config =
  {
    target_updates = 1_000_000;
    checkpoint_every = 100_000;
    fault_every = 25;
    storm_size = 100;
    train_length = 50;
    max_burst = 8;
    check_every = 1;
  }

type soak_result = {
  soak_updates : int;
  soak_bursts : int;
  soak_withdraw_storms : int;
  soak_session_flaps : int;
  soak_duplicate_trains : int;
  soak_same_prefix_trains : int;
  soak_checkpoints : int;
  soak_check_errors : int;
  soak_incremental_checks : int;
  soak_incremental_errors : int;
  soak_commits : int;
  soak_commit_errors : int;
  soak_equiv_divergences : int;
  soak_reoptimizations : int;
  soak_vnh_reclaimed : int;
  soak_vnh_peak_live : int;
  soak_vnh_capacity : int;
  soak_peak_extra_rules : int;
  soak_peak_fastpath_blocks : int;
  soak_groups_minted : int;
  soak_group_migrations : int;
  soak_groups_retired : int;
  soak_retired_tombstones : int;
  soak_elapsed_s : float;
  soak_updates_per_s : float;
}

let soak ?(config = default_soak_config) ?check ?check_incremental ?on_commit
    rng (w : Workload.t) runtime =
  let server = Config.server w.config in
  let specs = Array.of_list w.specs in
  let n_specs = Array.length specs in
  let t0 = Unix.gettimeofday () in
  let updates_done = ref 0 in
  let bursts = ref 0 in
  let storms = ref 0 in
  let flaps = ref 0 in
  let dup_trains = ref 0 in
  let prefix_trains = ref 0 in
  let checkpoints = ref 0 in
  let check_errors = ref 0 in
  let incr_checks = ref 0 in
  let incr_errors = ref 0 in
  let commits = ref 0 in
  let commit_errors = ref 0 in
  let equiv = ref 0 in
  let peak_extras = ref 0 in
  let peak_blocks = ref 0 in
  (* Withdraw storms leave the session down for a few bursts; the
     captured routes come back through this queue so the table never
     erodes permanently. *)
  let pending : (int * Update.t list) Queue.t = Queue.create () in
  let handle us =
    match us with
    | [] -> ()
    | us ->
        ignore (Runtime.handle_burst runtime us);
        incr bursts;
        updates_done := !updates_done + List.length us;
        peak_extras := max !peak_extras (Runtime.extra_rule_count runtime);
        peak_blocks := max !peak_blocks (Runtime.fast_path_block_count runtime);
        (* Inline verification of the burst commit: the callback is
           expected to consume the runtime's dirty-set and run the
           incremental checker (a full pass after rebuilds). *)
        (match check_incremental with
        | Some f when config.check_every > 0 && !bursts mod config.check_every = 0
          ->
            incr incr_checks;
            incr_errors := !incr_errors + f runtime
        | _ -> ());
        (* Push the burst's ruleset into a live data plane (the sharded
           soak commits it through the fabric's two-phase update and
           probes for mixed-version packets); the callback reports how
           many anomalies the commit exposed. *)
        (match on_commit with
        | Some f ->
            incr commits;
            commit_errors := !commit_errors + f ()
        | None -> ())
  in
  let flush_pending () =
    let rec go () =
      match Queue.peek_opt pending with
      | Some (due, us) when due <= !bursts ->
          ignore (Queue.pop pending);
          handle us;
          go ()
      | _ -> ()
    in
    go ()
  in
  (* A capped snapshot of the routes [asn] currently has in the RIBs, so
     a flap can withdraw and later re-announce exactly what was there. *)
  let routes_of_peer asn =
    let ps = Route_server.prefixes_of server asn in
    let ps = List.filteri (fun i _ -> i < config.storm_size) ps in
    List.filter_map
      (fun p ->
        Option.map
          (fun r -> (p, r))
          (List.find_opt
             (fun (r : Route.t) -> Asn.equal r.learned_from asn)
             (Route_server.candidates server p)))
      ps
  in
  let random_peer () = specs.(Rng.int rng n_specs).Population.asn in
  let withdraw_storm ~flap =
    let asn = random_peer () in
    match routes_of_peer asn with
    | [] -> ()
    | routes ->
        if flap then incr flaps else incr storms;
        handle (List.map (fun (p, _) -> Update.withdraw ~peer:asn p) routes);
        let restore = List.map (fun (_, r) -> Update.announce r) routes in
        if flap then handle restore
        else Queue.add (!bursts + 2 + Rng.int rng 6, restore) pending
  in
  let duplicate_train () =
    incr dup_trains;
    let u = Workload.random_best_changing_update rng w in
    (* The whole train in one burst (coalescing must fold it to one rule
       slice), then the identical update again — a pure no-op burst. *)
    handle (List.init config.train_length (fun _ -> u));
    handle [ u ]
  in
  (* Pathological same-prefix train: every update moves the prefix's
     best route, so each burst mints a VNH for it — the reproducer for
     the pool-exhaustion crash the lifecycle manager exists to absorb.
     Monotonically increasing local preference keeps every update a
     winner no matter what the rest of the soak did to this prefix. *)
  let train_lp = ref 300 in
  let same_prefix_train () =
    incr prefix_trains;
    let prefix, _ = Rng.pick rng w.announcers in
    for _ = 1 to config.train_length do
      let i = Rng.int rng n_specs in
      let s = specs.(i) in
      incr train_lp;
      handle
        [
          Update.announce
            (Route.make ~prefix
               ~next_hop:(Workload.participant_port_ip i 0)
               ~as_path:[ s.Population.asn; Asn.of_int (60_000 + Rng.int rng 5_000) ]
               ~local_pref:!train_lp ~learned_from:s.Population.asn ());
        ]
    done
  in
  let normal_burst () =
    if Rng.bool rng ~p:0.85 then
      handle (Workload.burst rng w ~size:(1 + Rng.int rng config.max_burst))
    else
      (* A lone withdrawal of one currently-held route. *)
      let prefix, _ = Rng.pick rng w.announcers in
      match Route_server.candidates server prefix with
      | [] -> ()
      | candidates ->
          let r = Rng.pick rng candidates in
          handle [ Update.withdraw ~peer:r.Route.learned_from prefix ]
  in
  let run_checkpoint () =
    incr checkpoints;
    (match check with
    | None -> ()
    | Some f -> check_errors := !check_errors + f runtime);
    let reference = Runtime.create (Runtime.config runtime) in
    equiv := !equiv + List.length (forwarding_divergences runtime ~reference)
  in
  let next_checkpoint = ref config.checkpoint_every in
  let iter = ref 0 in
  while !updates_done < config.target_updates do
    incr iter;
    flush_pending ();
    if config.fault_every > 0 && !iter mod config.fault_every = 0 then (
      match Rng.int rng 4 with
      | 0 -> withdraw_storm ~flap:false
      | 1 -> withdraw_storm ~flap:true
      | 2 -> duplicate_train ()
      | _ -> same_prefix_train ())
    else normal_burst ();
    if !updates_done >= !next_checkpoint then begin
      next_checkpoint := !next_checkpoint + config.checkpoint_every;
      run_checkpoint ()
    end
  done;
  (* Bring every flapped session back, then always verify the final
     state against a from-scratch recompile. *)
  while not (Queue.is_empty pending) do
    let _, us = Queue.pop pending in
    handle us
  done;
  run_checkpoint ();
  let elapsed = Unix.gettimeofday () -. t0 in
  let vnh = Vnh.stats (Runtime.vnh runtime) in
  let churn = Runtime.churn runtime in
  {
    soak_updates = !updates_done;
    soak_bursts = !bursts;
    soak_withdraw_storms = !storms;
    soak_session_flaps = !flaps;
    soak_duplicate_trains = !dup_trains;
    soak_same_prefix_trains = !prefix_trains;
    soak_checkpoints = !checkpoints;
    soak_check_errors = !check_errors;
    soak_incremental_checks = !incr_checks;
    soak_incremental_errors = !incr_errors;
    soak_commits = !commits;
    soak_commit_errors = !commit_errors;
    soak_equiv_divergences = !equiv;
    soak_reoptimizations = Runtime.reoptimize_count runtime;
    soak_vnh_reclaimed = vnh.Vnh.reclaimed_total;
    soak_vnh_peak_live = vnh.Vnh.peak_live;
    soak_vnh_capacity = vnh.Vnh.capacity;
    soak_peak_extra_rules = !peak_extras;
    soak_peak_fastpath_blocks = !peak_blocks;
    soak_groups_minted = churn.Runtime.churn_groups_minted;
    soak_group_migrations = churn.Runtime.churn_prefixes_migrated;
    soak_groups_retired = churn.Runtime.churn_groups_retired;
    soak_retired_tombstones = Runtime.retired_tombstone_count runtime;
    soak_elapsed_s = elapsed;
    soak_updates_per_s =
      (if elapsed > 0. then float_of_int !updates_done /. elapsed else 0.);
  }

let pp_soak_result fmt r =
  Format.fprintf fmt
    "@[<v>updates: %d in %d bursts (%.0f updates/s, %.1f s)@,\
     faults: %d withdraw storms, %d session flaps, %d duplicate trains, \
     %d same-prefix trains@,\
     checkpoints: %d (%d check errors, %d forwarding divergences)@,\
     inline checks: %d (%d errors)@,\
     dataplane commits: %d (%d anomalies)@,\
     re-optimizations: %d@,\
     VNHs: %d reclaimed, peak %d live of %d@,\
     peak fast path: %d rules in %d blocks@,\
     groups: %d minted, %d migrations, %d retired (%d tombstones held)@]"
    r.soak_updates r.soak_bursts r.soak_updates_per_s r.soak_elapsed_s
    r.soak_withdraw_storms r.soak_session_flaps r.soak_duplicate_trains
    r.soak_same_prefix_trains r.soak_checkpoints r.soak_check_errors
    r.soak_equiv_divergences r.soak_incremental_checks r.soak_incremental_errors
    r.soak_commits r.soak_commit_errors
    r.soak_reoptimizations r.soak_vnh_reclaimed
    r.soak_vnh_peak_live r.soak_vnh_capacity r.soak_peak_extra_rules
    r.soak_peak_fastpath_blocks r.soak_groups_minted r.soak_group_migrations
    r.soak_groups_retired r.soak_retired_tombstones
