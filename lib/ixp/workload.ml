open Sdx_net
open Sdx_policy
open Sdx_bgp
open Sdx_core

type t = {
  config : Config.t;
  specs : Population.spec list;
  universe : Prefix.t list;
  announcers : (Prefix.t * Asn.t) list;
}

(* Deterministic port identities: participant [i]'s port [j]. *)
let port_mac i j = Mac.of_int (0x0A_00_00_00_00_00 + (i * 16) + j)
let port_ip i j = Ipv4.of_int (0x0A000000 + (i * 256) + j + 1)

(* ------------------------------------------------------------------ *)
(* Announcement layout.                                                *)

(* Routing tables at an IXP are heavily overlapped and correlated: a
   transit AS re-announces whole customer cones, not random prefixes.  We
   model the table as contiguous "origin blocks", each owned by one
   participant and re-announced by a size-dependent subset of the others.
   Prefix-group counts then saturate at the number of distinct
   block signatures — the sub-linear growth of Figure 6. *)

type block = {
  owner : int;  (** index into the spec list *)
  origin : Asn.t;  (** the far-away AS originating the block *)
  block_prefixes : Prefix.t list;
  announcer_idxs : int list;  (** owner first, then re-announcers *)
}

type layout = { specs : Population.spec list; blocks : block list }

let zipf_weights n alpha =
  Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** alpha))

(* How much of the rest of the table a participant re-announces: transit
   networks carry a lot, eyeballs and content providers almost none. *)
let reannounce_probability (spec : Population.spec) ~relative_weight =
  let cap =
    match spec.kind with
    | Population.Transit -> 0.8
    | Population.Eyeball | Population.Content -> 0.05
  in
  cap *. relative_weight

let make_layout rng ~participants ~prefixes ?(blocks_per_participant = 5) () =
  let specs = Population.generate rng ~participants ~prefixes () in
  let spec_arr = Array.of_list specs in
  let n = participants in
  let block_count = max n (blocks_per_participant * n) in
  let weights = zipf_weights n 1.2 in
  let total_weight = Array.fold_left ( +. ) 0.0 weights in
  (* Every participant owns at least one block; the rest are distributed
     by weight so the big players own most of the table. *)
  let ownership = Array.make n 1 in
  let remaining = block_count - n in
  Array.iteri
    (fun i w ->
      ownership.(i) <-
        ownership.(i)
        + int_of_float (Float.round (w /. total_weight *. float_of_int remaining)))
    weights;
  let reann_p =
    Array.mapi
      (fun i (s : Population.spec) ->
        ignore i;
        reannounce_probability s ~relative_weight:(weights.(i) /. weights.(0)))
      spec_arr
  in
  let block_sizes total blocks =
    (* Even split with the remainder spread over the first blocks. *)
    let base = total / blocks and extra = total mod blocks in
    List.init blocks (fun k -> base + if k < extra then 1 else 0)
  in
  let owners =
    List.concat (Array.to_list (Array.mapi (fun i c -> List.init c (fun _ -> i)) ownership))
  in
  let owners = Rng.shuffle rng owners in
  let sizes = block_sizes prefixes (List.length owners) in
  let _, blocks =
    List.fold_left2
      (fun (next, acc) owner size ->
        if size = 0 then (next, acc)
        else
          let block_prefixes = List.init size (fun k -> Prefixes.nth (next + k)) in
          let origin = Asn.of_int (60_000 + Rng.int rng 5_000) in
          let announcer_idxs =
            owner
            :: List.filter
                 (fun i -> i <> owner && Rng.bool rng ~p:reann_p.(i))
                 (List.init n Fun.id)
          in
          (next + size, { owner; origin; block_prefixes; announcer_idxs } :: acc))
      (0, []) owners sizes
  in
  { specs; blocks = List.rev blocks }

let announced_sets layout =
  let n = List.length layout.specs in
  let sets = Array.make n Prefix.Set.empty in
  List.iter
    (fun b ->
      let ps = Prefix.Set.of_list b.block_prefixes in
      List.iter (fun i -> sets.(i) <- Prefix.Set.union sets.(i) ps) b.announcer_idxs)
    layout.blocks;
  Array.to_list sets

let announcement_sets rng ~participants ~prefixes =
  announced_sets (make_layout rng ~participants ~prefixes ())

(* Prefixes a participant originates (owns), used when policies reference
   "that AS's address space". *)
let owned_prefixes layout idx =
  List.concat_map
    (fun b -> if b.owner = idx then b.block_prefixes else [])
    layout.blocks

(* ------------------------------------------------------------------ *)
(* §6.1 policy mix.                                                    *)

let service_ports = [ 80; 443; 8080; 8443; 1935; 554 ]

(* A match on one randomly selected header field, as the paper's inbound
   policies do.  [src_prefixes] lets the match target a specific sender's
   address space when one is available. *)
let one_field_pred rng ~src_prefixes =
  match Rng.int rng 4 with
  | 0 -> Pred.dst_port (Rng.pick rng service_ports)
  | 1 -> Pred.src_port (1024 + Rng.int rng 60_000)
  | 2 -> Pred.proto (Rng.pick rng [ Packet.proto_tcp; Packet.proto_udp ])
  | _ -> (
      match src_prefixes with
      | p :: _ -> Pred.src_ip p
      | [] -> Pred.src_ip (Prefix.make (Ipv4.of_int (Rng.int rng 128 lsl 24)) 8))

let top_fraction specs ~fraction =
  let n = List.length specs in
  let k = max 1 (int_of_float (Float.round (fraction *. float_of_int n))) in
  List.filteri (fun i _ -> i < k) specs

type plan = { mutable inbound : Ppolicy.t; mutable outbound : Ppolicy.t }

let build_policies rng ?(transit_picks = 1) ?(inbound_density = 1.0)
    (layout : layout) =
  let specs = layout.specs in
  let index_of =
    let tbl = Hashtbl.create 64 in
    List.iteri (fun i (s : Population.spec) -> Hashtbl.replace tbl s.asn i) specs;
    fun asn -> Hashtbl.find tbl asn
  in
  let plans : (Asn.t, plan) Hashtbl.t = Hashtbl.create 64 in
  let plan asn =
    match Hashtbl.find_opt plans asn with
    | Some p -> p
    | None ->
        let p = { inbound = []; outbound = [] } in
        Hashtbl.replace plans asn p;
        p
  in
  (* Specs come sorted by descending size, so "top" selections are list
     heads within each class. *)
  let eyeballs = Population.by_kind specs Population.Eyeball in
  let transits = Population.by_kind specs Population.Transit in
  let contents = Population.by_kind specs Population.Content in
  let top_eyeballs = top_fraction eyeballs ~fraction:0.15 in
  let top_transits = top_fraction transits ~fraction:0.05 in
  (* [inbound_density] widens the participating content-provider slice;
     every eyeball and transit inbound policy gains clauses with it,
     since they engage per chosen content provider. *)
  let content_fraction = Float.min 1.0 (0.05 *. inbound_density) in
  let chosen_contents =
    Rng.sample rng contents
      (max 1
         (int_of_float
            (Float.round
               (content_fraction *. float_of_int (List.length contents)))))
  in
  (* Content providers: application-specific peering toward three top
     eyeball networks, plus one single-field inbound redirection. *)
  List.iter
    (fun (c : Population.spec) ->
      let targets = Rng.sample rng top_eyeballs 3 in
      let p = plan c.asn in
      List.iter
        (fun (e : Population.spec) ->
          let port = Rng.pick rng service_ports in
          p.outbound <-
            p.outbound @ [ Ppolicy.fwd (Pred.dst_port port) (Ppolicy.Peer e.asn) ])
        targets;
      p.inbound <-
        p.inbound
        @ [ Ppolicy.fwd (one_field_pred rng ~src_prefixes:[]) (Ppolicy.Phys 0) ])
    chosen_contents;
  (* Eyeballs: inbound traffic engineering against half of the content
     providers, matching one header field (often the content provider's
     own address space). *)
  List.iter
    (fun (e : Population.spec) ->
      let sources =
        Rng.sample rng chosen_contents (max 1 (List.length chosen_contents / 2))
      in
      let p = plan e.asn in
      List.iter
        (fun (c : Population.spec) ->
          let pred =
            one_field_pred rng ~src_prefixes:(owned_prefixes layout (index_of c.asn))
          in
          let port = Rng.int rng e.port_count in
          p.inbound <- p.inbound @ [ Ppolicy.fwd pred (Ppolicy.Phys port) ])
        sources)
    top_eyeballs;
  (* Transit providers: outbound for one prefix group of half the top
     eyeballs (destination prefix plus one extra field), and inbound
     policies proportional to the number of top content providers. *)
  List.iter
    (fun (tr : Population.spec) ->
      let targets =
        Rng.sample rng top_eyeballs (max 1 (List.length top_eyeballs / 2))
      in
      let p = plan tr.asn in
      List.iter
        (fun (e : Population.spec) ->
          match owned_prefixes layout (index_of e.asn) with
          | [] -> ()
          | ps ->
              List.iter
                (fun dst ->
                  let pred =
                    Pred.and_ (Pred.dst_ip dst)
                      (one_field_pred rng ~src_prefixes:[])
                  in
                  p.outbound <-
                    p.outbound @ [ Ppolicy.fwd pred (Ppolicy.Peer e.asn) ])
                (Rng.sample rng ps transit_picks))
        targets;
      List.iter
        (fun (c : Population.spec) ->
          let pred =
            one_field_pred rng ~src_prefixes:(owned_prefixes layout (index_of c.asn))
          in
          let port = Rng.int rng tr.port_count in
          p.inbound <- p.inbound @ [ Ppolicy.fwd pred (Ppolicy.Phys port) ])
        chosen_contents)
    top_transits;
  fun asn ->
    match Hashtbl.find_opt plans asn with
    | Some p -> (p.inbound, p.outbound)
    | None -> ([], [])

(* ------------------------------------------------------------------ *)

let build rng ~participants ~prefixes ?(dual_homed_fraction = 0.0)
    ?(with_policies = true) ?transit_picks ?inbound_density () =
  ignore dual_homed_fraction;
  let layout = make_layout rng ~participants ~prefixes () in
  let specs = layout.specs in
  let spec_arr = Array.of_list specs in
  let policies_of =
    if with_policies then
      build_policies rng ?transit_picks ?inbound_density layout
    else fun _ -> ([], [])
  in
  let participants_list =
    List.mapi
      (fun i (s : Population.spec) ->
        let ports = List.init s.port_count (fun j -> (port_mac i j, port_ip i j)) in
        let inbound, outbound = policies_of s.asn in
        Participant.make ~asn:s.asn ~ports ~inbound ~outbound ())
      specs
  in
  let config = Config.make participants_list in
  (* Owners announce with a two-hop path; re-announcers insert themselves
     in front, so the owner's route wins the decision process. *)
  List.iter
    (fun b ->
      let owner_asn = spec_arr.(b.owner).Population.asn in
      List.iter
        (fun i ->
          let asn = spec_arr.(i).Population.asn in
          let as_path =
            if i = b.owner then [ asn; b.origin ] else [ asn; owner_asn; b.origin ]
          in
          List.iter
            (fun prefix -> Config.preload config ~peer:asn ~port:0 ~as_path prefix)
            b.block_prefixes)
        b.announcer_idxs)
    layout.blocks;
  let announcers =
    List.concat_map
      (fun b ->
        let owner_asn = spec_arr.(b.owner).Population.asn in
        List.map (fun p -> (p, owner_asn)) b.block_prefixes)
      layout.blocks
  in
  { config; specs; universe = List.map fst announcers; announcers }

let runtime t = Runtime.create t.config

let make_winning_update rng (t : t) (prefix, primary) =
  let indexed = List.mapi (fun i s -> (i, s)) t.specs in
  let others =
    List.filter
      (fun ((_, s) : int * Population.spec) -> not (Asn.equal s.asn primary))
      indexed
  in
  let i, newcomer = Rng.pick rng others in
  Update.announce
    (Route.make ~prefix ~next_hop:(port_ip i 0)
       ~as_path:[ newcomer.Population.asn; Asn.of_int (60_000 + Rng.int rng 5_000) ]
       ~local_pref:200 ~learned_from:newcomer.Population.asn ())

let random_best_changing_update rng (t : t) =
  make_winning_update rng t (Rng.pick rng t.announcers)

let burst rng (t : t) ~size =
  List.map (make_winning_update rng t) (Rng.sample rng t.announcers size)

let participant_port_ip = port_ip
