(** Replay a BGP update trace through a live SDX runtime — the
    end-to-end version of the §4.3.2 evaluation: every burst takes the
    fast path (fresh VNH, delta rules stacked at higher priority), and
    the background re-optimization runs whenever the trace goes quiet,
    exactly the two-stage strategy the paper describes ("BGP bursts are
    separated by large periods with no changes, enabling quick,
    suboptimal reactions followed by background re-optimization"). *)


type result = {
  bursts : int;
  updates : int;
  best_changed : int;  (** updates that actually moved a best route *)
  reoptimizations : int;  (** background-stage runs triggered by quiet gaps *)
  peak_extra_rules : int;  (** worst fast-path rule overhead seen *)
  final_rules : int;
  mean_update_ms : float;
  p99_update_ms : float;
  max_update_ms : float;
}

val run :
  ?quiet_gap_s:float ->
  Sdx_core.Runtime.t ->
  Trace.t ->
  result
(** Processes the trace in burst order.  A gap of at least [quiet_gap_s]
    simulated seconds (default 60, the paper's median burst
    inter-arrival) between bursts triggers the background
    re-optimization. *)

val trace_for_workload :
  Rng.t -> Workload.t -> profile:Trace.profile -> duration_s:float -> Trace.t
(** A trace targeting an existing workload: updates come from the
    workload's own participants (with winning local preferences, so
    best paths actually move) and touch its announced prefixes. *)

val pp_result : Format.formatter -> result -> unit

(** {1 Churn soak}

    Unbounded synthetic churn with injected faults — the harness behind
    [bench soak].  Where {!run} replays a realistic trace, {!soak}
    deliberately drives the runtime into its degradation ladder:
    withdraw storms and session flaps drain and refill the RIBs,
    duplicate trains stress burst coalescing, and pathological
    same-prefix trains mint a VNH per burst until the lifecycle manager
    must reclaim or re-optimize.  At checkpoints the live state is
    verified against a from-scratch recompile. *)

type delivery =
  | No_route
  | Unresolved
      (** announced next hop has no ARP binding — always a bug *)
  | No_match  (** tagged probe fell through the classifier *)
  | Delivered of Sdx_policy.Mods.t list

val forwarding_divergences :
  Sdx_core.Runtime.t ->
  reference:Sdx_core.Runtime.t ->
  (Sdx_bgp.Asn.t * Sdx_net.Prefix.t) list
(** For every (participant with switch ports, announced prefix) pair,
    resolves the end-to-end delivery — BGP announcement, ARP resolution
    of the announced next hop, flow-table lookup of the tagged probe —
    in both runtimes and reports the pairs whose deliveries differ.
    VNH identities are expected to differ between independent compiles;
    the resolved forwarding actions must not.  Empty iff the fast path
    is equivalent to the reference's from-scratch compile. *)

type soak_config = {
  target_updates : int;
  checkpoint_every : int;
  fault_every : int;  (** bursts between injected faults *)
  storm_size : int;  (** prefixes withdrawn per storm / session flap *)
  train_length : int;  (** updates per duplicate / same-prefix train *)
  max_burst : int;  (** normal-traffic burst size cap *)
  check_every : int;
      (** bursts between inline incremental checks via the
          [check_incremental] callback (0 = disabled); 1 verifies every
          burst commit *)
}

val default_soak_config : soak_config
(** 1M updates, checkpoints every 100k, a fault every 25 bursts,
    inline checks on every burst ([check_every = 1], a no-op unless a
    [check_incremental] callback is supplied). *)

type soak_result = {
  soak_updates : int;
  soak_bursts : int;
  soak_withdraw_storms : int;
  soak_session_flaps : int;
  soak_duplicate_trains : int;
  soak_same_prefix_trains : int;
  soak_checkpoints : int;
  soak_check_errors : int;  (** error findings across all checkpoints *)
  soak_incremental_checks : int;
      (** inline per-burst checks run via [check_incremental] *)
  soak_incremental_errors : int;
      (** error findings across all inline checks *)
  soak_commits : int;  (** data-plane commits via the [on_commit] hook *)
  soak_commit_errors : int;
      (** anomalies those commits exposed (e.g. mixed-version packets
          in a sharded fabric) *)
  soak_equiv_divergences : int;
      (** forwarding divergences vs. from-scratch recompiles *)
  soak_reoptimizations : int;
  soak_vnh_reclaimed : int;
  soak_vnh_peak_live : int;
  soak_vnh_capacity : int;
  soak_peak_extra_rules : int;
  soak_peak_fastpath_blocks : int;
  soak_groups_minted : int;  (** groups minted by fast-path bursts *)
  soak_group_migrations : int;
      (** prefixes rebound into an already-interned class (zero rules) *)
  soak_groups_retired : int;  (** fast-path groups fully superseded *)
  soak_retired_tombstones : int;
      (** retired-group tombstones still held at the end — bounded by
          the live extras stack, not by total churn *)
  soak_elapsed_s : float;
  soak_updates_per_s : float;
}

val soak :
  ?config:soak_config ->
  ?check:(Sdx_core.Runtime.t -> int) ->
  ?check_incremental:(Sdx_core.Runtime.t -> int) ->
  ?on_commit:(unit -> int) ->
  Rng.t ->
  Workload.t ->
  Sdx_core.Runtime.t ->
  soak_result
(** Drives [runtime] with churn until [target_updates] updates have been
    handled.  [check], called at every checkpoint and once at the end,
    returns the number of error findings (the bench wires in the
    [sdx_check] analyzer here; the library carries no dependency on it).
    [check_incremental], called after every [check_every]-th burst
    commit, is expected to consume the runtime's dirty-set
    ({!Sdx_core.Runtime.consume_dirty}) and verify just the touched
    obligations — the bench wires in [Check.runtime_incremental], which
    falls back to a full pass after table rebuilds.  [on_commit], called
    after every burst, pushes the new ruleset into a live data plane and
    returns the anomalies observed — the sharded soak wires in a
    two-phase fabric commit plus mid-phase probe traffic, keeping this
    library free of any fabric dependency.  Withdrawn sessions are
    restored before the mandatory final checkpoint, so the result
    reflects a settled table. *)

val pp_soak_result : Format.formatter -> soak_result -> unit
