open Sdx_net
open Sdx_bgp

type t = {
  participants : Participant.t list;
  by_asn : (Asn.t, Participant.t) Hashtbl.t;
  server : Route_server.t;
  (* (asn, local index) -> fabric port number, and its inverses *)
  port_numbers : (Asn.t * int, int) Hashtbl.t;
  port_owners : (int, Participant.t * Participant.port) Hashtbl.t;
  by_next_hop : (Ipv4.t, Participant.t * Participant.port * int) Hashtbl.t;
  port_count : int;
}

(* Policies are validated up front so a bad reference fails with a clear
   message at configuration time, not deep inside compilation. *)
let validate_policies by_asn (p : Participant.t) =
  let where direction i = Printf.sprintf "%s %s clause %d" (Asn.to_string p.asn) direction i in
  let check_exists ctx asn =
    match Hashtbl.find_opt by_asn asn with
    | Some (target : Participant.t) -> target
    | None ->
        invalid_arg
          (Printf.sprintf "Config.make: %s targets unknown participant %s" ctx
             (Asn.to_string asn))
  in
  let check_clause direction i (c : Ppolicy.clause) =
    let ctx = where direction i in
    match c.target with
    | Ppolicy.Peer asn ->
        if direction = "inbound" then
          invalid_arg
            (Printf.sprintf "Config.make: %s forwards to a peer (inbound policies may only use own ports, steering, default, or drop)" ctx);
        ignore (check_exists ctx asn)
    | Ppolicy.Redirect asn ->
        let target = check_exists ctx asn in
        if Participant.is_remote target then
          invalid_arg
            (Printf.sprintf "Config.make: %s steers to %s, which has no physical port"
               ctx (Asn.to_string asn))
    | Ppolicy.Phys k ->
        if k < 0 || k >= List.length p.ports then
          invalid_arg
            (Printf.sprintf "Config.make: %s forwards to nonexistent own port %d" ctx k)
    | Ppolicy.Default | Ppolicy.Drop -> ()
  in
  List.iteri (check_clause "outbound") p.outbound;
  List.iteri (check_clause "inbound") p.inbound

let make ?export participants =
  let by_asn = Hashtbl.create 64 in
  List.iter
    (fun (p : Participant.t) ->
      if Hashtbl.mem by_asn p.asn then
        invalid_arg
          (Printf.sprintf "Config.make: duplicate participant %s"
             (Asn.to_string p.asn));
      Hashtbl.replace by_asn p.asn p)
    participants;
  List.iter (validate_policies by_asn) participants;
  let port_numbers = Hashtbl.create 64 in
  let port_owners = Hashtbl.create 64 in
  let by_next_hop = Hashtbl.create 64 in
  let next = ref 1 in
  List.iter
    (fun (p : Participant.t) ->
      List.iter
        (fun (port : Participant.port) ->
          let n = !next in
          incr next;
          Hashtbl.replace port_numbers (p.asn, port.index) n;
          Hashtbl.replace port_owners n (p, port);
          if Hashtbl.mem by_next_hop port.ip then
            invalid_arg
              (Printf.sprintf "Config.make: duplicate port address %s"
                 (Ipv4.to_string port.ip));
          Hashtbl.replace by_next_hop port.ip (p, port, n))
        p.ports)
    participants;
  let server =
    Route_server.create ?export (List.map (fun (p : Participant.t) -> p.asn) participants)
  in
  {
    participants;
    by_asn;
    server;
    port_numbers;
    port_owners;
    by_next_hop;
    port_count = !next - 1;
  }

let participants t = t.participants
let server t = t.server

let with_policies t f =
  let participants =
    List.map
      (fun (p : Participant.t) ->
        let inbound, outbound = f p in
        { p with inbound; outbound })
      t.participants
  in
  let by_asn = Hashtbl.create 64 in
  List.iter (fun (p : Participant.t) -> Hashtbl.replace by_asn p.asn p) participants;
  List.iter (validate_policies by_asn) participants;
  let port_owners = Hashtbl.create 64 in
  let by_next_hop = Hashtbl.create 64 in
  List.iter
    (fun (p : Participant.t) ->
      List.iter
        (fun (port : Participant.port) ->
          let n = Hashtbl.find t.port_numbers (p.asn, port.index) in
          Hashtbl.replace port_owners n (p, port);
          Hashtbl.replace by_next_hop port.ip (p, port, n))
        p.ports)
    participants;
  { t with participants; by_asn; port_owners; by_next_hop }

let participant t asn =
  match Hashtbl.find_opt t.by_asn asn with
  | Some p -> p
  | None -> raise Not_found

let participant_opt t asn = Hashtbl.find_opt t.by_asn asn

let switch_port t asn index =
  match Hashtbl.find_opt t.port_numbers (asn, index) with
  | Some n -> n
  | None ->
      invalid_arg
        (Printf.sprintf "Config.switch_port: %s has no port %d"
           (Asn.to_string asn) index)

let switch_ports_of t asn =
  let p = participant t asn in
  List.map (fun (port : Participant.port) -> switch_port t asn port.index) p.ports

let owner_of_port t n =
  match Hashtbl.find_opt t.port_owners n with
  | Some x -> x
  | None -> raise Not_found

let port_of_next_hop t ip = Hashtbl.find_opt t.by_next_hop ip
let port_count t = t.port_count

let announce t ~peer ~port ?as_path prefix =
  let p = participant t peer in
  let port = Participant.port p port in
  let as_path = Option.value as_path ~default:[ peer ] in
  let route =
    Route.make ~prefix ~next_hop:port.ip ~as_path ~learned_from:peer ()
  in
  Route_server.apply t.server (Update.announce route)

let preload t ~peer ~port ?as_path prefix =
  let p = participant t peer in
  let port = Participant.port p port in
  let as_path = Option.value as_path ~default:[ peer ] in
  let route =
    Route.make ~prefix ~next_hop:port.ip ~as_path ~learned_from:peer ()
  in
  Route_server.load t.server (Update.announce route)

let withdraw t ~peer prefix =
  Route_server.apply t.server (Update.withdraw ~peer prefix)
