open Sdx_net
open Sdx_policy
open Sdx_bgp

type error = { position : int; line : int; column : int; message : string }

let pp_error fmt e =
  Format.fprintf fmt "parse error at line %d, column %d: %s" e.line e.column
    e.message

exception Error of error

(* Raised with a raw offset; [run] fills in line/column from the input
   before the error escapes. *)
let fail position message = raise (Error { position; line = 1; column = 1; message })

let locate input (e : error) =
  let stop = min e.position (String.length input) in
  let line = ref 1 and column = ref 1 in
  for i = 0 to stop - 1 do
    if input.[i] = '\n' then begin
      incr line;
      column := 1
    end
    else incr column
  done;
  { e with line = !line; column = !column }

(* ------------------------------------------------------------------ *)
(* Tokens                                                              *)

type token =
  | Ident of string  (** field names, keywords, AS123 *)
  | Number of int
  | Ip of Ipv4.t
  | Cidr of Prefix.t
  | Lparen
  | Rparen
  | Eq
  | Plus
  | Seq  (** [>>] *)
  | AndAnd
  | OrOr
  | Bang
  | Comma

type spanned = { token : token; at : int }

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let is_digit c = c >= '0' && c <= '9'

(* A run of digits and dots, optionally followed by /len, is an address
   or a prefix; a pure digit run is a number. *)
let lex input =
  let n = String.length input in
  let tokens = ref [] in
  let emit at token = tokens := { token; at } :: !tokens in
  let i = ref 0 in
  while !i < n do
    let at = !i in
    let c = input.[at] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '(' then (emit at Lparen; incr i)
    else if c = ')' then (emit at Rparen; incr i)
    else if c = '=' then (emit at Eq; incr i)
    else if c = '+' then (emit at Plus; incr i)
    else if c = ',' then (emit at Comma; incr i)
    else if c = '!' then (emit at Bang; incr i)
    else if c = '>' then
      if at + 1 < n && input.[at + 1] = '>' then (emit at Seq; i := at + 2)
      else fail at "expected '>>'"
    else if c = '&' then
      if at + 1 < n && input.[at + 1] = '&' then (emit at AndAnd; i := at + 2)
      else fail at "expected '&&'"
    else if c = '|' then
      if at + 1 < n && input.[at + 1] = '|' then (emit at OrOr; i := at + 2)
      else fail at "expected '||'"
    else if is_digit c then begin
      let j = ref at in
      let dotted = ref false in
      while
        !j < n && (is_digit input.[!j] || input.[!j] = '.')
      do
        if input.[!j] = '.' then dotted := true;
        incr j
      done;
      let body = String.sub input at (!j - at) in
      if !dotted then begin
        let addr =
          match Ipv4.of_string_opt body with
          | Some a -> a
          | None -> fail at (Printf.sprintf "malformed address %S" body)
        in
        if !j < n && input.[!j] = '/' then begin
          let k = ref (!j + 1) in
          while !k < n && is_digit input.[!k] do incr k done;
          let len = String.sub input (!j + 1) (!k - !j - 1) in
          match int_of_string_opt len with
          | Some l when l >= 0 && l <= 32 ->
              emit at (Cidr (Prefix.make addr l));
              i := !k
          | _ -> fail !j "malformed prefix length"
        end
        else begin
          emit at (Ip addr);
          i := !j
        end
      end
      else begin
        emit at (Number (int_of_string body));
        i := !j
      end
    end
    else if is_ident_char c then begin
      let j = ref at in
      while !j < n && is_ident_char input.[!j] do incr j done;
      emit at (Ident (String.sub input at (!j - at)));
      i := !j
    end
    else fail at (Printf.sprintf "unexpected character %C" c)
  done;
  List.rev !tokens

(* ------------------------------------------------------------------ *)
(* Parser state                                                        *)

(* Lint context: when supplied, target references are validated against
   the exchange while positions are still known. *)
type lint = { known_asns : Asn.t list option; port_count : int option }

let no_lint = { known_asns = None; port_count = None }

type state = { mutable rest : spanned list; len : int; lint : lint }

let peek st =
  match st.rest with
  | [] -> None
  | s :: _ -> Some s

let advance st =
  match st.rest with
  | [] -> ()
  | _ :: rest -> st.rest <- rest

let here st =
  match st.rest with
  | [] -> st.len
  | s :: _ -> s.at

let expect st token message =
  match peek st with
  | Some s when s.token = token -> advance st
  | _ -> fail (here st) message

(* ------------------------------------------------------------------ *)
(* Predicates                                                          *)

let field_test st name at value_of =
  ignore st;
  let int_value () =
    match value_of () with
    | `Number v -> v
    | `Ip _ | `Cidr _ -> fail at (Printf.sprintf "%s expects a number" name)
  in
  let prefix_value () =
    match value_of () with
    | `Cidr p -> p
    | `Ip a -> Prefix.make a 32
    | `Number _ -> fail at (Printf.sprintf "%s expects an address or prefix" name)
  in
  let mac_value () =
    match value_of () with
    | `Number v -> Mac.of_int v
    | _ -> fail at (Printf.sprintf "%s expects a numeric MAC" name)
  in
  match String.lowercase_ascii name with
  | "srcip" -> Pred.src_ip (prefix_value ())
  | "dstip" -> Pred.dst_ip (prefix_value ())
  | "srcport" -> Pred.src_port (int_value ())
  | "dstport" -> Pred.dst_port (int_value ())
  | "proto" -> Pred.proto (int_value ())
  | "ethtype" -> Pred.eth_type (int_value ())
  | "inport" -> Pred.port (int_value ())
  | "srcmac" -> Pred.src_mac (mac_value ())
  | "dstmac" -> Pred.dst_mac (mac_value ())
  | _ -> fail at (Printf.sprintf "unknown field %S" name)

let parse_value st =
  match peek st with
  | Some { token = Number v; _ } ->
      advance st;
      `Number v
  | Some { token = Ip a; _ } ->
      advance st;
      `Ip a
  | Some { token = Cidr p; _ } ->
      advance st;
      `Cidr p
  | _ -> fail (here st) "expected a value"

let rec parse_or st =
  let left = parse_and st in
  match peek st with
  | Some { token = OrOr; _ } ->
      advance st;
      Pred.or_ left (parse_or st)
  | _ -> left

and parse_and st =
  let left = parse_not st in
  match peek st with
  | Some { token = AndAnd; _ } | Some { token = Comma; _ } ->
      advance st;
      Pred.and_ left (parse_and st)
  | _ -> left

and parse_not st =
  match peek st with
  | Some { token = Bang; _ } ->
      advance st;
      Pred.not_ (parse_not st)
  | _ -> parse_atom st

and parse_atom st =
  match peek st with
  | Some { token = Lparen; _ } ->
      advance st;
      let p = parse_or st in
      expect st Rparen "expected ')'";
      p
  | Some { token = Ident "true"; _ } ->
      advance st;
      Pred.True
  | Some { token = Ident "false"; _ } ->
      advance st;
      Pred.False
  | Some { token = Ident name; at } ->
      advance st;
      expect st Eq "expected '=' after field name";
      field_test st name at (fun () -> parse_value st)
  | _ -> fail (here st) "expected a test, 'true', 'false', '!' or '('"

(* ------------------------------------------------------------------ *)
(* Modifications                                                       *)

let parse_assignment st (mods : Mods.t) =
  match peek st with
  | Some { token = Ident name; at } -> (
      advance st;
      expect st Eq "expected '=' in mod(...)";
      let value = parse_value st in
      let int_v () =
        match value with
        | `Number v -> v
        | _ -> fail at (Printf.sprintf "%s expects a number" name)
      in
      let ip_v () =
        match value with
        | `Ip a -> a
        | `Cidr p when Prefix.length p = 32 -> Prefix.network p
        | _ -> fail at (Printf.sprintf "%s expects an address" name)
      in
      match String.lowercase_ascii name with
      | "srcip" -> { mods with Mods.src_ip = Some (ip_v ()) }
      | "dstip" -> { mods with Mods.dst_ip = Some (ip_v ()) }
      | "srcport" -> { mods with Mods.src_port = Some (int_v ()) }
      | "dstport" -> { mods with Mods.dst_port = Some (int_v ()) }
      | "proto" -> { mods with Mods.proto = Some (int_v ()) }
      | "ethtype" -> { mods with Mods.eth_type = Some (int_v ()) }
      | "srcmac" -> { mods with Mods.src_mac = Some (Mac.of_int (int_v ())) }
      | "dstmac" -> { mods with Mods.dst_mac = Some (Mac.of_int (int_v ())) }
      | _ -> fail at (Printf.sprintf "cannot modify field %S" name))
  | _ -> fail (here st) "expected a field assignment"

let rec parse_assignments st mods =
  let mods = parse_assignment st mods in
  match peek st with
  | Some { token = Comma; _ } ->
      advance st;
      parse_assignments st mods
  | _ -> mods

(* ------------------------------------------------------------------ *)
(* Targets and clauses                                                 *)

let parse_asn st =
  match peek st with
  | Some { token = Number v; _ } ->
      advance st;
      Asn.of_int v
  | Some { token = Ident name; at }
    when String.length name > 2
         && String.sub name 0 2 = "AS"
         && Option.is_some (int_of_string_opt (String.sub name 2 (String.length name - 2)))
    ->
      advance st;
      ignore at;
      Asn.of_int (int_of_string (String.sub name 2 (String.length name - 2)))
  | _ -> fail (here st) "expected an AS number (e.g. AS200 or 200)"

let check_asn st at asn =
  match st.lint.known_asns with
  | Some asns when not (List.exists (Asn.equal asn) asns) ->
      fail at
        (Printf.sprintf "AS%d is not a participant of this exchange"
           (Asn.to_int asn))
  | _ -> ()

let check_port st at k =
  match st.lint.port_count with
  | Some n when k < 0 || k >= n ->
      fail at
        (Printf.sprintf "port %d is out of range (participant has %d port%s)" k
           n
           (if n = 1 then "" else "s"))
  | _ -> ()

let parse_target st =
  match peek st with
  | Some { token = Ident "fwd"; _ } -> (
      advance st;
      expect st Lparen "expected '(' after fwd";
      match peek st with
      | Some { token = Ident "port"; _ } ->
          advance st;
          let at = here st in
          let k =
            match peek st with
            | Some { token = Number v; _ } ->
                advance st;
                v
            | _ -> fail (here st) "expected a port index"
          in
          check_port st at k;
          expect st Rparen "expected ')'";
          Ppolicy.Phys k
      | _ ->
          let at = here st in
          let asn = parse_asn st in
          check_asn st at asn;
          expect st Rparen "expected ')'";
          Ppolicy.Peer asn)
  | Some { token = Ident "steer"; _ } ->
      advance st;
      expect st Lparen "expected '(' after steer";
      let at = here st in
      let asn = parse_asn st in
      check_asn st at asn;
      expect st Rparen "expected ')'";
      Ppolicy.Redirect asn
  | Some { token = Ident "drop"; _ } ->
      advance st;
      Ppolicy.Drop
  | Some { token = Ident "default"; _ } ->
      advance st;
      Ppolicy.Default
  | _ -> fail (here st) "expected fwd(...), steer(...), drop, or default"

(* clause := term (>> term)* ending in a target; terms are match(...)
   filters (ANDed together) and at most one mod(...). *)
let parse_clause st =
  let pred = ref Pred.True in
  let mods = ref Mods.identity in
  let saw_mod = ref false in
  let rec terms () =
    match peek st with
    | Some { token = Ident "match"; _ } ->
        advance st;
        expect st Lparen "expected '(' after match";
        let p = parse_or st in
        expect st Rparen "expected ')'";
        pred := Pred.and_ !pred p;
        expect st Seq "expected '>>' after match(...)";
        terms ()
    | Some { token = Ident "mod"; at } ->
        if !saw_mod then fail at "only one mod(...) per clause";
        saw_mod := true;
        advance st;
        expect st Lparen "expected '(' after mod";
        mods := parse_assignments st !mods;
        expect st Rparen "expected ')'";
        expect st Seq "expected '>>' after mod(...)";
        terms ()
    | _ ->
        let target = parse_target st in
        Ppolicy.clause ~mods:!mods !pred target
  in
  terms ()

let parse_policy st =
  let rec go acc =
    let clause = parse_clause st in
    match peek st with
    | Some { token = Plus; _ } ->
        advance st;
        go (clause :: acc)
    | Some { at; _ } -> fail at "expected '+' or end of policy"
    | None -> List.rev (clause :: acc)
  in
  go []

(* ------------------------------------------------------------------ *)

let run ?(lint = no_lint) input parser_fn =
  match
    let st = { rest = lex input; len = String.length input; lint } in
    let result = parser_fn st in
    (match peek st with
    | Some s -> fail s.at "trailing input"
    | None -> ());
    result
  with
  | result -> Ok result
  | exception Error e -> Error (locate input e)

let parse input = run input parse_policy
let parse_pred input = run input parse_or

let parse_checked ?known_asns ?port_count input =
  run ~lint:{ known_asns; port_count } input parse_policy

let parse_exn input =
  match parse input with
  | Ok p -> p
  | Error e ->
      invalid_arg (Format.asprintf "Policy_parser.parse_exn: %a" pp_error e)

(* ------------------------------------------------------------------ *)
(* Printing back to the concrete syntax.                               *)

let print_pattern_tests (p : Pattern.t) =
  let tests = ref [] in
  let add name v = tests := Printf.sprintf "%s=%s" name v :: !tests in
  Option.iter (fun v -> add "inport" (string_of_int v)) p.port;
  Option.iter (fun v -> add "srcmac" (string_of_int (Mac.to_int v))) p.src_mac;
  Option.iter (fun v -> add "dstmac" (string_of_int (Mac.to_int v))) p.dst_mac;
  Option.iter (fun v -> add "ethtype" (string_of_int v)) p.eth_type;
  Option.iter (fun v -> add "srcip" (Prefix.to_string v)) p.src_ip;
  Option.iter (fun v -> add "dstip" (Prefix.to_string v)) p.dst_ip;
  Option.iter (fun v -> add "proto" (string_of_int v)) p.proto;
  Option.iter (fun v -> add "srcport" (string_of_int v)) p.src_port;
  Option.iter (fun v -> add "dstport" (string_of_int v)) p.dst_port;
  match List.rev !tests with
  | [] -> "true"
  | ts -> String.concat " && " ts

let rec print_pred (pred : Pred.t) =
  match pred with
  | Pred.True -> "true"
  | Pred.False -> "false"
  | Pred.Test p -> print_pattern_tests p
  | Pred.And (a, b) ->
      Printf.sprintf "(%s && %s)" (print_pred a) (print_pred b)
  | Pred.Or (a, b) -> Printf.sprintf "(%s || %s)" (print_pred a) (print_pred b)
  | Pred.Not a -> Printf.sprintf "!(%s)" (print_pred a)

let print_mods (m : Mods.t) =
  let parts = ref [] in
  let add name v = parts := Printf.sprintf "%s=%s" name v :: !parts in
  Option.iter (fun v -> add "srcmac" (string_of_int (Mac.to_int v))) m.src_mac;
  Option.iter (fun v -> add "dstmac" (string_of_int (Mac.to_int v))) m.dst_mac;
  Option.iter (fun v -> add "ethtype" (string_of_int v)) m.eth_type;
  Option.iter (fun v -> add "srcip" (Ipv4.to_string v)) m.src_ip;
  Option.iter (fun v -> add "dstip" (Ipv4.to_string v)) m.dst_ip;
  Option.iter (fun v -> add "proto" (string_of_int v)) m.proto;
  Option.iter (fun v -> add "srcport" (string_of_int v)) m.src_port;
  Option.iter (fun v -> add "dstport" (string_of_int v)) m.dst_port;
  String.concat ", " (List.rev !parts)

let print_target = function
  | Ppolicy.Peer asn -> Printf.sprintf "fwd(AS%d)" (Asn.to_int asn)
  | Ppolicy.Phys k -> Printf.sprintf "fwd(port %d)" k
  | Ppolicy.Redirect asn -> Printf.sprintf "steer(AS%d)" (Asn.to_int asn)
  | Ppolicy.Default -> "default"
  | Ppolicy.Drop -> "drop"

let print_clause (c : Ppolicy.clause) =
  let pieces = [ Printf.sprintf "match(%s)" (print_pred c.pred) ] in
  let pieces =
    if Mods.is_identity c.mods then pieces
    else pieces @ [ Printf.sprintf "mod(%s)" (print_mods c.mods) ]
  in
  String.concat " >> " (pieces @ [ print_target c.target ])

let print policy = String.concat " + " (List.map print_clause policy)
