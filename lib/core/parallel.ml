(* A minimal fixed-size domain pool built on the [Sync] sanitizer shim
   over stdlib [Domain], [Mutex] and [Condition].

   Workers block on a shared task queue.  [map] enqueues one task per
   input element and the submitting domain drains the queue alongside
   the workers, so a pool of size [n] keeps [n] domains busy while only
   [n - 1] are spawned.  Each task writes its result into a slot indexed
   by input position, which makes [map] order-preserving no matter which
   domain finishes first.

   Every synchronization primitive goes through [Sync] so that under
   SDX_RACE=1 the pool's happens-before edges are recorded, and under
   the model explorer its operations become deterministic scheduling
   points.  The [queue] and [stopped] fields are registered as tracked
   locations: both are guarded by [mutex], and the tracker proves it —
   dropping a lock anywhere on their access paths surfaces as a
   write/write or write/read race (the seeded-mutation suite checks
   exactly that). *)

module Sync = Sdx_sanitize.Sync

type t = {
  size : int;
  mutex : Sync.Mutex.t;
  pending : Sync.Condition.t;
  queue : (unit -> unit) Queue.t;
  queue_tr : Sync.Tracked.t;  (* every Queue.add/take on [queue] *)
  stopped_tr : Sync.Tracked.t;
  (* sdx-owner: stopped is written only in [shutdown] and read in the
     worker loop, both under [mutex]; tracked via [stopped_tr]. *)
  mutable stopped : bool;
  (* sdx-owner: workers is written by the creating thread in [create]
     and [shutdown] only; never touched from worker domains. *)
  mutable workers : unit Sync.Domain.t list;
}

let size t = t.size

let rec worker t =
  Sync.Mutex.lock t.mutex;
  let rec next () =
    Sync.Tracked.read t.stopped_tr;
    if t.stopped then None
    else begin
      Sync.Tracked.write t.queue_tr;
      match Queue.take_opt t.queue with
      | Some _ as task -> task
      | None ->
          Sync.Condition.wait t.pending t.mutex;
          next ()
    end
  in
  let task = next () in
  Sync.Mutex.unlock t.mutex;
  match task with
  | None -> ()
  | Some task ->
      task ();
      worker t

let create ~domains =
  let size = max 1 domains in
  let t =
    {
      size;
      mutex = Sync.Mutex.create ~name:"Parallel.pool" ();
      pending = Sync.Condition.create ~name:"Parallel.pending" ();
      queue = Queue.create ();
      queue_tr = Sync.Tracked.create "Parallel.queue";
      stopped_tr = Sync.Tracked.create "Parallel.stopped";
      stopped = false;
      workers = [];
    }
  in
  t.workers <-
    List.init (size - 1) (fun _ ->
        Sync.Domain.spawn ~name:"pool-worker" (fun () -> worker t));
  t

let shutdown t =
  Sync.Mutex.lock t.mutex;
  Sync.Tracked.write t.stopped_tr;
  t.stopped <- true;
  Sync.Condition.broadcast t.pending;
  Sync.Mutex.unlock t.mutex;
  List.iter Sync.Domain.join t.workers;
  t.workers <- []

let with_pool ~domains f =
  let pool = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

type 'b cell = Pending | Done of 'b | Failed of exn

(* Run [task lo hi] over a partition of [0, n) into contiguous chunks, a
   few per domain, instead of one task per element: queue traffic (two
   lock acquisitions per task) is paid per chunk, and adjacent elements —
   which tend to share memoizable structure, like a clause's run of
   prefix groups — stay on the same domain and hit its caches.  The
   submitting domain drains the queue alongside the workers, then waits
   out chunks still running elsewhere.  Callers arrange that each index
   is written by exactly one domain and only read after this returns, so
   result arrays need no lock (and are deliberately not tracked: their
   per-slot disjoint writes would alias to one location). *)
let run_chunks t n task =
  let chunks = min n (8 * t.size) in
  let remaining = ref chunks in
  let remaining_tr = Sync.Tracked.create "Parallel.run_chunks.remaining" in
  let batch_mutex = Sync.Mutex.create ~name:"Parallel.batch" () in
  let batch_done = Sync.Condition.create ~name:"Parallel.batch_done" () in
  let job lo hi () =
    task lo hi;
    Sync.Mutex.lock batch_mutex;
    Sync.Tracked.write remaining_tr;
    decr remaining;
    if !remaining = 0 then Sync.Condition.broadcast batch_done;
    Sync.Mutex.unlock batch_mutex
  in
  Sync.Mutex.lock t.mutex;
  Sync.Tracked.write t.queue_tr;
  for c = 0 to chunks - 1 do
    Queue.add (job (c * n / chunks) ((c + 1) * n / chunks)) t.queue
  done;
  Sync.Condition.broadcast t.pending;
  Sync.Mutex.unlock t.mutex;
  (* The submitter works too... *)
  let rec help () =
    Sync.Mutex.lock t.mutex;
    Sync.Tracked.write t.queue_tr;
    let job = Queue.take_opt t.queue in
    Sync.Mutex.unlock t.mutex;
    match job with
    | Some job ->
        job ();
        help ()
    | None -> ()
  in
  help ();
  (* ...then waits out tasks still running on other domains. *)
  Sync.Mutex.lock batch_mutex;
  Sync.Tracked.read remaining_tr;
  while !remaining > 0 do
    Sync.Condition.wait batch_done batch_mutex;
    Sync.Tracked.read remaining_tr
  done;
  Sync.Mutex.unlock batch_mutex

let collect results =
  Array.map
    (function Done v -> v | Failed e -> raise e | Pending -> assert false)
    results

let map t f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | xs when t.size <= 1 -> List.map f xs
  | xs ->
      let arr = Array.of_list xs in
      let n = Array.length arr in
      let results = Array.make n Pending in
      run_chunks t n (fun lo hi ->
          for i = lo to hi - 1 do
            results.(i) <- (try Done (f arr.(i)) with e -> Failed e)
          done);
      Array.to_list (collect results)

let map_array t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else if n = 1 || t.size <= 1 then Array.map f xs
  else begin
    let results = Array.make n Pending in
    run_chunks t n (fun lo hi ->
        for i = lo to hi - 1 do
          results.(i) <- (try Done (f xs.(i)) with e -> Failed e)
        done);
    collect results
  end

(* Epoch-validated domain-local slots.  A slot holds one ['a] per domain
   per epoch: [get] returns the current domain's value if it was stored
   under the same epoch, else creates a fresh one via [make] and stores
   it.  Bumping the epoch (a new compile run) invalidates every domain's
   cached value at once without touching the other domains — exactly the
   lifecycle of per-domain FDD shard managers. *)
module Local = struct
  type 'a t = (int * 'a) option ref Sync.Dls.key

  let create () = Sync.Dls.new_key (fun () -> ref None)

  let find t ~epoch =
    match !(Sync.Dls.get t) with
    | Some (e, v) when e = epoch -> Some v
    | _ -> None

  let set t ~epoch v = Sync.Dls.get t := Some (epoch, v)
end

let default_domains () =
  match Option.bind (Sys.getenv_opt "SDX_DOMAINS") int_of_string_opt with
  | Some n when n >= 1 -> n
  | Some _ | None -> Sync.Domain.recommended_count ()

(* One process-wide pool, sized for the machine, created on first use.
   Never shut down: its workers are blocked (not spinning) when idle and
   die with the process. *)
let global_mutex = Sync.Mutex.create ~name:"Parallel.global" ()
let global_pool = ref None

let global () =
  Sync.Mutex.lock global_mutex;
  let pool =
    match !global_pool with
    | Some p -> p
    | None ->
        let p = create ~domains:(default_domains ()) in
        global_pool := Some p;
        p
  in
  Sync.Mutex.unlock global_mutex;
  pool
