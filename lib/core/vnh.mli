(** Allocator of virtual next hops: (virtual IP, virtual MAC) pairs drawn
    from a private pool (§4.2).  The virtual MAC is the data-plane tag;
    the virtual IP is the control-plane signal carried in BGP next-hop
    fields and resolved to the MAC by the ARP responder.

    The fast path of §4.3.2 mints a fresh VNH per updated prefix group,
    so a long churn run would eventually drain any finite pool.  The
    allocator therefore manages a full lifecycle: allocation reports
    exhaustion as a value rather than an exception, superseded
    allocations are {!release}d back onto a free-list for reuse, and
    {!pressure} lets the runtime trigger a background re-optimization
    before the pool actually runs dry. *)

open Sdx_net

type t

val create : ?pool:Prefix.t -> unit -> t
(** [pool] defaults to [172.16.0.0/12].  Virtual MACs are drawn from the
    locally-administered range starting at [02:00:00:00:00:00]; a pool
    index always maps to the same (IP, MAC) pair, so a released slot is
    reused with an identical identity. *)

val alloc : t -> [ `Fresh of Ipv4.t * Mac.t | `Exhausted ]
(** Pops the free-list first, then extends the high-water mark.
    [`Exhausted] means every index is live — the caller must degrade
    (the runtime falls back to a full re-optimization, which {!reset}s
    the pool) rather than crash. *)

val fresh : t -> Ipv4.t * Mac.t
(** {!alloc}, for callers that have already ruled exhaustion out (the
    base compiler runs against a freshly {!reset} pool).
    @raise Failure when the pool is exhausted. *)

val release : t -> Ipv4.t -> bool
(** Returns a single allocation to the free-list.  [false] (a no-op)
    when the address is outside the pool, was never handed out, or was
    already released — idempotent, so retiring code paths need not track
    double-frees. *)

val allocated : t -> int
(** Number of live allocations. *)

val capacity : t -> int
(** Usable pool slots (the all-zero host index is never handed out). *)

val pressure : t -> float
(** [allocated / capacity] — the runtime re-optimizes in place when this
    crosses its pressure threshold, reclaiming the whole pool before
    {!alloc} can report exhaustion mid-burst. *)

val reclaimed_total : t -> int
(** Cumulative successful {!release}s; survives {!reset}. *)

val peak_live : t -> int
(** High-water mark of simultaneously live allocations; survives
    {!reset}. *)

type stats = {
  capacity : int;
  live : int;
  free : int;  (** free-list length *)
  peak_live : int;
  reclaimed_total : int;
}

val stats : t -> stats

val reset : t -> unit
(** Returns every allocation to the pool and clears the free-list (used
    by the background re-optimization, which rebuilds the VNH assignment
    from scratch).  Cumulative counters are kept. *)

val is_virtual : t -> Ipv4.t -> bool
(** Whether the address lies in the allocator's pool (so a next-hop can
    be recognized as virtual). *)
