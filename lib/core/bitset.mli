(** Packed bitsets for per-prefix export vectors (ISSUE 9).

    A {!t} is a fixed-width bit vector backed by an [int array]
    ([Sys.int_size] bits per cell).  The grouping pipeline in
    {!Compile} builds one vector per prefix — bit [i] set iff output
    spec [i] (or, in the high bit band, origin set [i]) covers the
    prefix — and then groups prefixes by interning equal vectors into
    one canonical FEC-class object, replacing the former
    O(specs x prefixes) pairwise signature comparison.

    Vectors are mutable during construction ({!set}) and treated as
    immutable once interned; {!Interner} enforces that by keying on a
    private copy. *)

type t

val create : int -> t
(** [create width] is the all-zeros vector over [width] bits. *)

val width : t -> int

val set : t -> int -> unit
(** [set v i] sets bit [i].  Raises [Invalid_argument] when [i] is
    outside [0 .. width v - 1]. *)

val mem : t -> int -> bool

val clear : t -> int -> unit
(** [clear v i] unsets bit [i] — O(1), so resetting a reused scratch
    buffer by its known set-bit list is proportional to those bits, not
    to the width.  Raises [Invalid_argument] outside the range. *)

val equal : t -> t -> bool
(** Structural equality over the full width (widths must agree for two
    vectors ever to be equal). *)

val compare : t -> t -> int
(** Total order consistent with {!equal}: shorter widths first, then
    lexicographic on the packed cells (cell 0 holds bits 0..62, so the
    order is deterministic but not numeric). *)

val hash : t -> int
(** Mixing hash over the packed cells; equal vectors hash equal. *)

val copy : t -> t

val cardinal : t -> int
(** Number of set bits. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** [fold f v init] folds [f] over the set bit indices in increasing
    order. *)

val iter : (int -> unit) -> t -> unit
(** Ascending-index iteration over set bits. *)

val to_list : t -> int list
(** Set bit indices, ascending. *)

val of_list : width:int -> int list -> t
(** [of_list ~width ids] is the [width]-bit vector with exactly [ids]
    set.  Raises [Invalid_argument] when an id is out of range. *)

(** Canonicalization table: interning two {!equal} vectors yields the
    physically same stamped value, so downstream grouping can key on a
    dense id instead of re-hashing vectors.  Intern order assigns ids
    densely from 0, which makes single-domain interning deterministic;
    the sharded merge in {!Compile} re-sorts classes by their smallest
    member so cross-domain id assignment never leaks into output. *)
module Interner : sig
  type bitset := t

  type t

  type interned = private { id : int; vector : bitset Lazy.t; ids : int list }
  (** [ids] is the ascending set-bit list the class was interned under,
      shared so callers never re-derive it.  [vector] is the packed
      form, materialized on first force: the ids entry points never
      build it, so a grouping pass that only consumes [id]/[ids] pays
      O(popcount) per class, not O(width).  Forcing a vector interned
      through {!intern_sorted}/{!intern_rev_sorted} with out-of-range
      ids raises at force time, not intern time. *)

  val create : ?expected:int -> unit -> t

  val intern : t -> bitset -> interned
  (** [intern tbl v] returns the canonical interned value equal to
      [v], creating one (with a private copy of [v], so the caller may
      keep mutating its buffer) on first sight. *)

  val intern_sorted : t -> width:int -> int list -> interned
  (** [intern_sorted tbl ~width ids] interns the vector whose ascending
      set-bit list is [ids] without the caller materializing it: the
      probe costs O(length ids) rather than O(width), and the packed
      vector is built only on first sight.  [ids] must be strictly
      ascending and in range; [width] must match the table's other
      entries for equal sets to collapse. *)

  val intern_rev_sorted : t -> width:int -> int list -> interned
  (** [intern_rev_sorted tbl ~width rev_ids] is {!intern_sorted} for a
      strictly-descending set-bit list — the natural shape of a list
      consed while scanning ids upward, so a caller that accumulates
      vectors band-by-band never sorts or reverses on the hit path.
      The returned {!interned}'s [ids] field is ascending as always. *)

  val find_opt : t -> bitset -> interned option

  val cardinal : t -> int
end
