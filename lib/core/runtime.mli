(** The SDX runtime: owns the route server state, the compiled policy,
    and the two-stage incremental update engine of §4.3.2.

    BGP updates take the fast path: the affected prefix gets a fresh VNH
    and only the related policy slice is recompiled and stacked above the
    base rules.  {!reoptimize} is the background stage: a full
    recompilation that rebuilds optimal prefix groups and retires the
    stacked rules. *)

open Sdx_net
open Sdx_policy
open Sdx_bgp

type t

val create :
  ?optimized:bool ->
  ?rpki:Rpki.t ->
  ?domains:int ->
  ?vnh_pool:Prefix.t ->
  ?extras_ceiling:int ->
  Config.t ->
  t
(** Announces every participant's SDX-originated prefixes to the route
    server, then runs the initial compilation.  When [rpki] is given,
    each originated prefix must validate as [Valid] for its owner
    (§3.2's ownership check); prefixes that fail are not originated and
    a warning is logged.  [domains] is threaded through to
    {!Compile.compile} for the initial build and every {!reoptimize}.
    [vnh_pool] overrides the VNH allocator's address pool (soak tests
    use tiny pools to hit lifecycle boundaries quickly), and
    [extras_ceiling] lowers this instance's fast-path priority ceiling
    below the global {!extras_ceiling} for the same reason. *)

val rejected_originations : t -> (Asn.t * Prefix.t) list
(** Originations refused by RPKI validation at creation time. *)

val config : t -> Config.t
val compiled : t -> Compile.t

val classifier : t -> Classifier.t
(** The effective ruleset: incremental rules (most recent first) stacked
    above the base classifier. *)

val provenance : t -> (Compile.provenance * int) list
(** Block structure of {!classifier} — fast-path blocks first, then the
    base compile's blocks — with per-block rule counts summing to the
    classifier length. *)

val extras_bands : t -> (int * int) list
(** [(priority_floor, rule_count)] of each installed fast-path block,
    oldest first. *)

val base_priority_top : int
val extras_floor : int
val extras_ceiling : int
(** The switch priority layout: the base classifier descends from
    {!base_priority_top}; fast-path blocks stack upward from
    {!extras_floor} toward {!extras_ceiling}. *)

val vnh_pressure_threshold : float
(** Live-VNH fraction past which {!handle_burst} triggers the in-place
    background stage, reclaiming the pool before {!Vnh.alloc} could
    report exhaustion mid-burst. *)

val set_check_hook : (t -> unit) option -> unit
(** Installs (or clears) a process-wide post-compile verification hook,
    invoked after {!create}'s initial compilation, after every
    {!reoptimize}, and after each fast-path block install.  Used by the
    [sdx_check] static analyzer; the hook must not mutate the runtime. *)

val flows : t -> Sdx_openflow.Flow.t list
(** The same ruleset as prioritized OpenFlow entries, with a stable
    layout: the base classifier descends from priority 30,000 and each
    fast-path block keeps the priorities it was assigned when installed
    (new blocks stack above older ones) — so successive calls differ only
    in the entries an update actually touched, and
    {!Sdx_openflow.Connection.sync} sends minimal flow-mods.  When the
    fast-path priority space fills up, {!handle_update} re-optimizes
    automatically. *)

val base_rule_count : t -> int
val extra_rule_count : t -> int
(** Rules added by the fast path since the last {!reoptimize} — the
    quantity Figure 9 plots. *)

val rule_count : t -> int
val group_count : t -> int
val arp : t -> Sdx_arp.Responder.t

val announcement : t -> receiver:Asn.t -> Prefix.t -> Route.t option
(** What the SDX advertises to [receiver] (VNH-rewritten best route),
    reflecting all updates processed so far. *)

type update_stats = {
  update : Update.t;
  best_changed : bool;  (** whether any participant's best route moved *)
  processing_s : float;  (** fast-path handling time — Figure 10 *)
  extra_rules : int;  (** rules the fast path added for this update *)
}

val handle_update : t -> Update.t -> update_stats
(** A one-update {!handle_burst}. *)

val handle_burst : t -> Update.t list -> update_stats list
(** Applies every update to the route server, then compiles {e one}
    fast-path block for all prefixes whose best route moved (via
    {!Compile.compile_update_batch}) and installs it as a single
    priority band.  Updates to the same prefix within the burst are
    coalesced into one rule slice reflecting the final route state.
    [extra_rules] of the first best-changing update carries the block's
    rule count; later updates in the burst report 0, so the sum over the
    burst equals the installed rules.

    Never raises and never leaves RIB and data plane divergent: an
    exhausted VNH pool or a batch-compiler failure falls forward into
    {!reoptimize} (the route server already holds the burst, so the full
    recompile lands on the post-update state), a burst that would cross
    the priority ceiling re-optimizes in place, and a burst that leaves
    the VNH pool past {!vnh_pressure_threshold} does the same before the
    pool can run dry. *)

val fast_path_block_count : t -> int
(** Number of fast-path blocks currently stacked above the base
    classifier — one per burst with best-route changes since the last
    {!reoptimize}. *)

val vnh : t -> Vnh.t
(** The runtime's VNH allocator (pressure and reclamation are soak-test
    observables). *)

val reoptimize_count : t -> int
(** Background-stage runs since creation, whether explicit
    ({!reoptimize}, {!set_policies}) or triggered by the degradation
    ladder (priority ceiling, VNH pressure, fast-path fallback, band
    overlap). *)

val generation : t -> int
(** Monotone counter bumped by anything that can change {!flows}
    (bursts, policy changes, re-optimizations).  Dataplane drivers
    remember the generation they last committed and skip redundant
    syncs — important for the sharded fabric, whose version-tagged
    commits rewrite transit rules even when nothing changed. *)

type churn = {
  churn_groups_minted : int;
      (** groups minted by fast-path bursts since creation *)
  churn_prefixes_migrated : int;
      (** prefixes rebound into an already-interned class — the bursts
          that cost zero rules *)
  churn_groups_retired : int;
      (** fast-path groups fully superseded (VNH released, ARP entry
          removed) *)
}

val churn : t -> churn
(** Cumulative fast-path churn accounting.  Survives re-optimization:
    these totals describe the update workload, not the current table. *)

val retired_tombstone_count : t -> int
(** Retired-group tombstones currently held for provenance attribution.
    The runtime compacts the list after every block install
    ({!Compile.compact_retired}), keeping only tombstones some installed
    fast-path block still names, so this stays bounded by the live
    extras stack rather than growing with total churn. *)

val reoptimize : t -> Compile.stats
(** Background re-optimization: recomputes groups and the classifier
    from scratch and clears the incremental rule stack. *)

val set_policies :
  t -> Asn.t -> inbound:Ppolicy.t -> outbound:Ppolicy.t -> Compile.stats
(** A participant (re)installs its SDX application: policies are
    replaced, everything is recompiled, and BGP state is untouched —
    §4.3 treats policy changes as full recompilations since they are far
    rarer than BGP updates.
    @raise Invalid_argument if the new policies fail validation. *)

val announce : t -> peer:Asn.t -> port:int -> ?as_path:Asn.t list -> Prefix.t -> update_stats
(** Convenience wrapper building the announcement route from the
    participant's port and running it through {!handle_update}. *)

val withdraw : t -> peer:Asn.t -> Prefix.t -> update_stats

(** {2 Dirty-sets for incremental verification}

    Every fast-path block install records which classifier rules and
    provenance groups the burst may have re-obligated, so a checker can
    re-verify just those instead of the whole table (the Prelude-style
    incremental protocol — see DESIGN.md). *)

type dirty = {
  dirty_rules : int list;
      (** indices into {!classifier} of rules installed since the last
          {!consume_dirty} (new blocks head the classifier, so earlier
          dirty indices are shifted up as later blocks stack) *)
  dirty_groups : int list;
      (** provenance group ids whose obligations may have changed: the
          bursts' fresh groups plus each touched prefix's previous
          owner; may contain duplicates *)
}

val last_dirty : t -> dirty option
(** Cumulative dirty-set since the last {!consume_dirty}.  [None] means
    the whole table was rebuilt (creation, {!reoptimize}, fast-path
    fallback) since then, so only a full check is sound; [None] stays
    until consumed even if further blocks stack on top. *)

val consume_dirty : t -> dirty option
(** {!last_dirty}, then reset the accumulator to the empty dirty-set on
    the assumption that the caller now verifies the current state
    (incrementally from [Some], or with a full pass from [None]). *)

(** {2 Parallel dataplane driver}

    Per-domain packet workers over a read-copy-update snapshot of the
    flow table ({!Sdx_openflow.Table.snapshot}): lookups never lock, and
    a policy change republishes a fresh snapshot instead of mutating the
    one in flight. *)

type dataplane

val dataplane : ?domains:int -> t -> dataplane
(** Builds a flow table from {!flows}, publishes its first snapshot, and
    sizes the worker shard count ([domains], default
    {!Parallel.default_domains}).  Workers run on {!Parallel.global}. *)

val dataplane_refresh : dataplane -> t -> unit
(** Reloads the table from the runtime's current {!flows} and publishes
    a fresh snapshot; lookups already running keep the old snapshot
    until their batch completes. *)

val dataplane_process :
  dataplane -> Packet.t array -> Sdx_openflow.Flow.t option array
(** Looks every packet up against the current snapshot, sharding the
    vector across the worker domains (contiguous shards, one private
    searcher cursor per worker).  Result order matches input order. *)

val dataplane_workers : dataplane -> int
val dataplane_snapshot : dataplane -> Sdx_openflow.Table.snapshot
(** The currently published snapshot (tests probe it with
    {!Sdx_openflow.Table.snapshot_linear} as an oracle). *)
