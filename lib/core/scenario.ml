open Sdx_net
open Sdx_bgp

type error = { line : int; message : string }

let pp_error fmt e =
  Format.fprintf fmt "scenario error on line %d: %s" e.line e.message

exception Err of error

let fail line message = raise (Err { line; message })

type draft = {
  mutable ports : (Mac.t * Ipv4.t) list;  (* reversed *)
  mutable inbound : Ppolicy.t;
  mutable outbound : Ppolicy.t;
  mutable originated : Prefix.t list;
}

type announcement = {
  ann_line : int;
  peer : Asn.t;
  port : int;
  prefix : Prefix.t;
  as_path : Asn.t list option;
}

let parse_asn line s =
  let digits =
    if String.length s > 2 && String.sub s 0 2 = "AS" then
      String.sub s 2 (String.length s - 2)
    else s
  in
  match int_of_string_opt digits with
  | Some n when n >= 0 -> Asn.of_int n
  | _ -> fail line (Printf.sprintf "bad AS number %S" s)

let parse_policy line asn ~known_asns ~port_count text =
  ignore asn;
  match Policy_parser.parse_checked ~known_asns ~port_count text with
  | Ok p -> p
  | Error e ->
      fail line
        (Format.asprintf "in policy: %a" Policy_parser.pp_error e)

(* Split on whitespace, dropping empties. *)
let words s =
  List.filter (fun w -> w <> "") (String.split_on_char ' ' (String.trim s))

let parse text =
  match
    let drafts : (Asn.t, draft) Hashtbl.t = Hashtbl.create 16 in
    let order : Asn.t list ref = ref [] in
    let announcements : announcement list ref = ref [] in
    let policy_lines : (int * string * Asn.t * string) list ref = ref [] in
    let draft line asn =
      match Hashtbl.find_opt drafts asn with
      | Some d -> d
      | None ->
          fail line
            (Printf.sprintf "unknown participant %s (declare it first)"
               (Asn.to_string asn))
    in
    let handle_line lineno line =
      match words line with
      | [] -> ()
      | hash :: _ when String.length hash > 0 && hash.[0] = '#' -> ()
      | "participant" :: asn_s :: rest ->
          let asn = parse_asn lineno asn_s in
          if Hashtbl.mem drafts asn then
            fail lineno (Printf.sprintf "duplicate participant %s" asn_s);
          let d = { ports = []; inbound = []; outbound = []; originated = [] } in
          let rec ports = function
            | [] -> ()
            | "port" :: mac_s :: ip_s :: rest -> (
                match (Mac.of_string_opt mac_s, Ipv4.of_string_opt ip_s) with
                | Some mac, Some ip ->
                    d.ports <- (mac, ip) :: d.ports;
                    ports rest
                | None, _ -> fail lineno (Printf.sprintf "bad MAC %S" mac_s)
                | _, None -> fail lineno (Printf.sprintf "bad address %S" ip_s))
            | w :: _ -> fail lineno (Printf.sprintf "unexpected %S" w)
          in
          ports rest;
          d.ports <- List.rev d.ports;
          Hashtbl.replace drafts asn d;
          order := asn :: !order
      | ("inbound" | "outbound") :: asn_s :: _ as all ->
          let kind = List.hd all in
          let asn = parse_asn lineno asn_s in
          ignore (draft lineno asn);
          (* The policy is everything after the second token. *)
          let s = String.trim line in
          let n = String.length s in
          let skip_token i =
            let rec go i = if i < n && s.[i] <> ' ' then go (i + 1) else i in
            go i
          in
          let skip_spaces i =
            let rec go i = if i < n && s.[i] = ' ' then go (i + 1) else i in
            go i
          in
          let start = skip_spaces (skip_token (skip_spaces (skip_token 0))) in
          if start >= n then fail lineno "missing policy text";
          (* Parsed after all participants are declared, so policies may
             reference participants that appear later in the file and
             still get their AS/port references linted. *)
          policy_lines :=
            (lineno, kind, asn, String.sub s start (n - start))
            :: !policy_lines
      | [ "originate"; asn_s; prefix_s ] -> (
          let asn = parse_asn lineno asn_s in
          let d = draft lineno asn in
          match Prefix.of_string_opt prefix_s with
          | Some p -> d.originated <- d.originated @ [ p ]
          | None -> fail lineno (Printf.sprintf "bad prefix %S" prefix_s))
      | "announce" :: asn_s :: port_s :: prefix_s :: rest -> (
          let peer = parse_asn lineno asn_s in
          ignore (draft lineno peer);
          let port =
            match int_of_string_opt port_s with
            | Some p when p >= 0 -> p
            | _ -> fail lineno (Printf.sprintf "bad port index %S" port_s)
          in
          let prefix =
            match Prefix.of_string_opt prefix_s with
            | Some p -> p
            | None -> fail lineno (Printf.sprintf "bad prefix %S" prefix_s)
          in
          let as_path =
            match rest with
            | [] -> None
            | [ "path"; path_s ] ->
                Some
                  (List.map (parse_asn lineno) (String.split_on_char ',' path_s))
            | _ -> fail lineno "expected 'path a,b,c' or nothing"
          in
          announcements :=
            { ann_line = lineno; peer; port; prefix; as_path } :: !announcements)
      | w :: _ -> fail lineno (Printf.sprintf "unknown directive %S" w)
    in
    List.iteri
      (fun i line -> handle_line (i + 1) line)
      (String.split_on_char '\n' text);
    let known_asns = List.rev !order in
    List.iter
      (fun (lineno, kind, asn, text) ->
        let d = draft lineno asn in
        let policy =
          parse_policy lineno asn ~known_asns
            ~port_count:(List.length d.ports) text
        in
        if kind = "inbound" then d.inbound <- d.inbound @ policy
        else d.outbound <- d.outbound @ policy)
      (List.rev !policy_lines);
    let participants =
      List.rev_map
        (fun asn ->
          let d = Hashtbl.find drafts asn in
          Participant.make ~asn ~ports:d.ports ~inbound:d.inbound
            ~outbound:d.outbound ~originated:d.originated ())
        !order
    in
    let config =
      try Config.make participants
      with Invalid_argument msg -> fail 0 msg
    in
    List.iter
      (fun a ->
        try ignore (Config.announce config ~peer:a.peer ~port:a.port ?as_path:a.as_path a.prefix)
        with Invalid_argument msg -> fail a.ann_line msg)
      (List.rev !announcements);
    config
  with
  | config -> Ok config
  | exception Err e -> Error e

let load path =
  let ic = open_in path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse text

let load_exn path =
  match load path with
  | Ok config -> config
  | Error e -> invalid_arg (Format.asprintf "Scenario.load_exn: %a" pp_error e)

(* ------------------------------------------------------------------ *)
(* Serialization back to scenario syntax.                              *)

let to_string config =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "# generated SDX scenario";
  List.iter
    (fun (p : Participant.t) ->
      line "participant AS%d%s" (Asn.to_int p.asn)
        (String.concat ""
           (List.map
              (fun (port : Participant.port) ->
                Printf.sprintf " port %s %s" (Mac.to_string port.mac)
                  (Ipv4.to_string port.ip))
              p.ports)))
    (Config.participants config);
  List.iter
    (fun (p : Participant.t) ->
      List.iter
        (fun prefix -> line "originate AS%d %s" (Asn.to_int p.asn) (Prefix.to_string prefix))
        p.originated;
      if p.inbound <> [] then
        line "inbound AS%d %s" (Asn.to_int p.asn) (Policy_parser.print p.inbound);
      if p.outbound <> [] then
        line "outbound AS%d %s" (Asn.to_int p.asn) (Policy_parser.print p.outbound))
    (Config.participants config);
  let server = Config.server config in
  List.iter
    (fun prefix ->
      List.iter
        (fun (r : Route.t) ->
          (* Routes whose next hop is no participant port are the
             SDX-originated placeholders, already covered above. *)
          match Config.port_of_next_hop config r.next_hop with
          | None -> ()
          | Some (_, port, _) ->
              line "announce AS%d %d %s path %s"
                (Asn.to_int r.learned_from)
                port.Participant.index (Prefix.to_string prefix)
                (String.concat ","
                   (List.map (fun a -> string_of_int (Asn.to_int a)) r.as_path)))
        (Route_server.candidates server prefix))
    (Route_server.all_prefixes server);
  Buffer.contents buf

let save config path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string config))
