(* Packed export-vector bitsets: see bitset.mli.  Cells pack
   [Sys.int_size] bits (63 on 64-bit) so a 500-participant,
   ~10k-spec vector is ~160 words instead of a [Prefix.Set.t] per
   spec. *)

let bits_per_cell = Sys.int_size

type t = { nbits : int; cells : int array }

let create nbits =
  if nbits < 0 then invalid_arg "Bitset.create: negative width";
  let ncells = (nbits + bits_per_cell - 1) / bits_per_cell in
  { nbits; cells = Array.make ncells 0 }

let width v = v.nbits

let set v i =
  if i < 0 || i >= v.nbits then invalid_arg "Bitset.set: out of range";
  let cell = i / bits_per_cell and bit = i mod bits_per_cell in
  v.cells.(cell) <- v.cells.(cell) lor (1 lsl bit)

let mem v i =
  if i < 0 || i >= v.nbits then false
  else
    let cell = i / bits_per_cell and bit = i mod bits_per_cell in
    v.cells.(cell) land (1 lsl bit) <> 0

let equal a b =
  a.nbits = b.nbits
  &&
  let n = Array.length a.cells in
  let rec go i = i >= n || (a.cells.(i) = b.cells.(i) && go (i + 1)) in
  go 0

let compare a b =
  let c = Stdlib.compare a.nbits b.nbits in
  if c <> 0 then c
  else
    let n = Array.length a.cells in
    let rec go i =
      if i >= n then 0
      else
        let c = Stdlib.compare a.cells.(i) b.cells.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

(* FNV-ish multiply/xor mix: cells are mostly sparse, so plain
   summation would collide constantly between vectors sharing a
   popcount. *)
let hash v =
  let h = ref 0x9e3779b9 in
  for i = 0 to Array.length v.cells - 1 do
    let c = v.cells.(i) in
    h := ((!h lxor c) * 0x01000193) land max_int
  done;
  (!h lxor v.nbits) land max_int

let copy v = { nbits = v.nbits; cells = Array.copy v.cells }

(* Clearing by the caller's set-bit list touches only the dirtied cells,
   so a scratch buffer reused across a million sparse vectors costs
   O(set bits), not O(width), per reset. *)
let clear v i =
  if i < 0 || i >= v.nbits then invalid_arg "Bitset.clear: out of range";
  let cell = i / bits_per_cell and bit = i mod bits_per_cell in
  v.cells.(cell) <- v.cells.(cell) land lnot (1 lsl bit)

let popcount_cell c =
  let rec go c acc = if c = 0 then acc else go (c land (c - 1)) (acc + 1) in
  go c 0

let cardinal v = Array.fold_left (fun acc c -> acc + popcount_cell c) 0 v.cells

let fold f v init =
  let acc = ref init in
  for cell = 0 to Array.length v.cells - 1 do
    let c = ref v.cells.(cell) in
    let base = cell * bits_per_cell in
    while !c <> 0 do
      (* isolate lowest set bit; ctz via branch-free deBruijn is
         overkill here — log2 of the isolated bit is fine. *)
      let low = !c land - !c in
      let bit =
        let rec log2 n acc = if n = 1 then acc else log2 (n lsr 1) (acc + 1) in
        log2 low 0
      in
      acc := f (base + bit) !acc;
      c := !c lxor low
    done
  done;
  !acc

let iter f v = fold (fun i () -> f i) v ()
let to_list v = List.rev (fold (fun i acc -> i :: acc) v [])

let of_list ~width ids =
  let v = create width in
  List.iter (set v) ids;
  v

module Interner = struct
  type bitset = t
  type interned = { id : int; vector : bitset Lazy.t; ids : int list }

  module H = Hashtbl.Make (struct
    type t = bitset

    let equal = equal
    let hash = hash
  end)

  (* Probing by the (short, sorted) set-bit list costs O(popcount) per
     lookup where probing by the packed vector costs O(width) — with
     sparse vectors over thousands of specs that difference dominates
     the whole grouping pass.  Full-traversal FNV over the elements, so
     long lists don't degrade into the polymorphic hash's prefix
     truncation. *)
  module Ids = Hashtbl.Make (struct
    type t = int list

    let equal = List.equal Int.equal

    let hash ids =
      List.fold_left
        (fun h i -> ((h lxor i) * 0x01000193) land max_int)
        0x811c9dc5 ids
  end)

  type t = {
    tbl : interned H.t;
    by_ids : interned Ids.t;
    by_rev : interned Ids.t;
    mutable unsynced : interned list;
        (* classes minted through the ids entry points whose packed
           vectors (and so [tbl] slots) have not been needed yet *)
    mutable next : int;
  }

  let create ?(expected = 256) () =
    {
      tbl = H.create expected;
      by_ids = Ids.create expected;
      by_rev = Ids.create expected;
      unsynced = [];
      next = 0;
    }

  (* The ids entry points never build the packed vector: the grouping
     hot loop only consumes [id] and [ids], so materializing a
     width-proportional array per distinct class (hundreds of words at
     tens of thousands of specs) would be pure waste.  [tbl] is synced
     lazily instead: the vector-keyed entry points force the pending
     vectors first, so mixing entry points still dedupes correctly. *)
  let sync t =
    match t.unsynced with
    | [] -> ()
    | pending ->
        List.iter (fun c -> H.replace t.tbl (Lazy.force c.vector) c) pending;
        t.unsynced <- []

  (* [ids] must be the ascending set-bit list and [rev_ids] its
     reverse; both tables index the new class immediately, [tbl] only
     on the next [sync]. *)
  let stamp t ~width ids rev_ids =
    let c = { id = t.next; vector = lazy (of_list ~width ids); ids } in
    t.next <- t.next + 1;
    Ids.replace t.by_ids ids c;
    Ids.replace t.by_rev rev_ids c;
    t.unsynced <- c :: t.unsynced;
    c

  let intern t v =
    sync t;
    match H.find_opt t.tbl v with
    | Some c -> c
    | None ->
        (* key on a private copy: the caller's buffer stays mutable. *)
        let vector = copy v in
        let ids = to_list vector in
        let c = { id = t.next; vector = Lazy.from_val vector; ids } in
        t.next <- t.next + 1;
        H.replace t.tbl vector c;
        Ids.replace t.by_ids ids c;
        Ids.replace t.by_rev (List.rev ids) c;
        c

  let intern_sorted t ~width ids =
    match Ids.find_opt t.by_ids ids with
    | Some c -> c
    | None -> stamp t ~width ids (List.rev ids)

  (* [rev_ids] must be the strictly-descending set-bit list — the
     natural shape of a list consed while scanning ids upward.  Probing
     keys on that shape directly, so the hot path (one lookup per
     sparse vector) never sorts or reverses; the O(popcount) reverse
     runs once per distinct class, on the miss path. *)
  let intern_rev_sorted t ~width rev_ids =
    match Ids.find_opt t.by_rev rev_ids with
    | Some c -> c
    | None -> stamp t ~width (List.rev rev_ids) rev_ids

  let find_opt t v =
    sync t;
    H.find_opt t.tbl v

  let cardinal t = Ids.length t.by_ids
end
