(** The SDX policy compiler (§4): from participant policies plus the
    current BGP routes to a single classifier for the fabric switch,
    together with the VNH assignment, ARP bindings, and re-advertised
    routes.

    The compiled classifier has three layers, first-match-wins:
    participant policy rules (matching the sender's in-port and the
    virtual MAC tag), default-forwarding rules (matching the destination
    MAC only), and a final drop.  Participant [Drop] clauses compile to
    forwards to {!blackhole_port}, so that an explicit drop is
    distinguishable from fall-through to default forwarding. *)

open Sdx_net
open Sdx_policy
open Sdx_bgp

val blackhole_port : int
(** Reserved output port (0) that the fabric discards. *)

type group = {
  id : int;
  vnh : Ipv4.t;
  vmac : Mac.t;
  mutable prefixes : Prefix.t list;
      (** live membership, in prefix order — the incremental fast path
          splices prefixes in and out as they migrate between classes *)
  default_variants : (Ipv4.t option * Asn.t list) list;
      (** the best-route next hop shared by each listed set of receivers;
          [None] means those receivers have no resolvable next hop (e.g.
          SDX-originated prefixes, which are terminated by the owner's
          inbound policy) *)
}

type stats = {
  group_count : int;
  rule_count : int;
  elapsed_s : float;  (** wall-clock compilation time *)
  compose_s : float;
      (** wall-clock of the composition stage alone — rule-block fan-out
          plus the shard-merge pass.  This is the stage the two [ir]
          engines implement differently (group computation, reachability
          collection, and ARP registration are engine-independent), so
          FDD-vs-crossproduct comparisons divide these *)
  reachability_s : float;
      (** wall-clock of the per-prefix export-vector (reachability)
          pass — under naive grouping, of forcing the per-spec
          reachability sets *)
  group_s : float;
      (** wall-clock of the grouping pass proper (vector interning and
          VNH assignment, or the [Fec] partition) *)
  seq_ops : int;  (** sequential compositions performed (either IR) *)
  memo_hits : int;  (** §4.3: reuses of a cached pipeline compilation *)
  fdd_build_s : float;
      (** CPU-seconds constructing diagrams, summed over shards (zero in
          crossproduct/naive mode, like every field below) *)
  fdd_merge_s : float;
      (** wall-clock of the final shard-merge hash-cons pass *)
  fdd_extract_s : float;
      (** CPU-seconds extracting classifiers from diagrams, summed over
          shards *)
  fdd_nodes : int;  (** nodes in the merged main manager *)
  fdd_memo_hits : int;  (** FDD memo-cache hits, summed over shards *)
  fdd_table_size : int;  (** unique-table entries in the main manager *)
}

type provenance =
  | Outbound of { sender : Asn.t; via : Asn.t option; group : int option }
      (** rules compiled from [sender]'s outbound policy; [via] is the
          peer whose inbound pipeline the rules hand traffic to
          ([None] for direct clauses: Drop / Phys / Default-with-rewrite
          / Redirect), [group] the prefix group the VMAC tag selects *)
  | Group_default of { group : int }
      (** §4.1 default forwarding for one prefix group *)
  | Untagged of { owner : Asn.t }
      (** MAC-learning layer for [owner]'s real interface MACs *)
  | Catch_all  (** the final drop-all rule *)
  | Unattributed  (** naive (ablation) build — no per-rule origin *)

val pp_provenance : Format.formatter -> provenance -> unit

type t

val compile :
  ?optimized:bool ->
  ?memoize:bool ->
  ?ir:[ `Fdd | `Crossproduct ] ->
  ?grouping:[ `Interned | `Naive ] ->
  ?domains:int ->
  Config.t ->
  Vnh.t ->
  t
(** Runs the full pipeline.  [optimized] (default true) enables the
    §4.3.1 optimizations — composing only participants that exchange
    traffic, exploiting policy disjointness, and memoizing repeated
    sub-compilations; [false] compiles the literal
    [(P1 + ... + Pn) >> (P1 + ... + Pn)] composition through the policy
    compiler, for the ablation benchmark.  [memoize] (default true)
    isolates just the sub-compilation cache ("the SDX controller
    memoizes all the intermediate compilation results"), so its
    contribution can be measured separately.

    [ir] selects the composition engine of the optimized path: [`Fdd]
    (the default) builds hash-consed forwarding decision diagrams per
    block and extracts a priority-ordered classifier at the end;
    [`Crossproduct] is the pre-FDD classifier algebra, kept as the
    correctness oracle (see {!compile_crossproduct}).  Both produce
    per-packet-identical classifiers; block boundaries and provenance
    are the same.

    [grouping] selects the prefix-grouping pipeline: [`Interned] (the
    default) builds one packed export vector per prefix and groups by
    interning equal vectors into canonical FEC classes — sub-linear in
    (specs x prefixes) because each diversion target's Adj-RIB-in is
    scanned once for all of its clauses; [`Naive] is the pre-ISSUE-9
    per-spec reachability materialization plus pairwise-signature
    partition, kept as the grouping oracle.  Both produce structurally
    identical groups (same ids, members, VNHs, variants), but only
    [`Interned] seeds the class table the incremental fast path
    migrates prefixes through.

    [domains] controls the pool the independent rule blocks of the
    optimized path are fanned across: [Some 1] forces a fully sequential
    build, [Some n] uses a private n-domain pool for this compilation,
    and [None] (the default) uses {!Parallel.global}.  The classifier is
    rule-for-rule identical for every setting — blocks are pure, FDD
    construction is sharded per domain with deterministic extraction,
    and blocks are concatenated in input order. *)

val compile_crossproduct :
  ?optimized:bool ->
  ?memoize:bool ->
  ?grouping:[ `Interned | `Naive ] ->
  ?domains:int ->
  Config.t ->
  Vnh.t ->
  t
(** [compile ~ir:`Crossproduct]: the sequential cross-product engine the
    FDD core is benchmarked (and property-tested) against. *)

val group_partition_naive : Config.t -> Prefix.t list list
(** The naive grouping pipeline's partition alone (per-spec reachability
    sets + pairwise-signature [Fec] partition), with no VNH draws or
    group records: members sorted by prefix, cells sorted by smallest
    member.  The oracle the bench compares
    [List.map (fun g -> g.prefixes) (groups t)] against, and the timing
    baseline for the grouping speedup. *)

val classifier : t -> Classifier.t
val groups : t -> group list

val all_groups : t -> group list
(** Base-compile groups plus every group minted by the incremental fast
    path since (including retired tombstones, so provenance attribution
    of older fast-path blocks still resolves) — the complete VMAC/VNH
    universe the current classifier can reference. *)

val active_groups : t -> group list
(** Like {!all_groups}, but without retired fast-path groups: exactly
    the groups that own a live VNH and an ARP binding. *)

val retired_groups : t -> group list
(** Fast-path groups whose every member prefix was rebound or withdrawn
    by a later burst: their VNHs have been released and their ARP
    bindings removed, while their (shadowed) rules may linger in older
    fast-path blocks until the next re-optimization. *)

val group_of_prefix : t -> Prefix.t -> group option
val arp : t -> Sdx_arp.Responder.t
val stats : t -> stats

val diverts_via : t -> Sdx_bgp.Asn.t -> bool
(** Whether any participant's outbound policy diverts traffic through
    [via] (a [fwd(AS)] clause).  Updates from such a peer can change
    diversion feasibility without moving any best path, so the runtime
    must re-batch their prefixes too. *)

val provenance : t -> (provenance * int) list
(** Block structure of {!classifier}: [(origin, rule_count)] pairs in
    concatenation order, summing to the classifier length.  Static
    checkers use this to attribute each rule to the policy that produced
    it. *)

val unaggregated_rule_estimate : t -> int
(** What the fabric table would cost {e without} §4.2's VMAC tagging:
    every rule matching a group's virtual MAC becomes one rule per
    prefix in that group (matching the destination prefix instead).
    Comparing this to [stats.rule_count] measures the data-plane
    compression the multi-stage FIB buys. *)

val aggregated_rule_estimate : t -> int
(** Like {!unaggregated_rule_estimate}, but with each group first run
    through conventional prefix aggregation ({!Sdx_net.Aggregate}) — the
    alternative §4.2 dismisses because equivalence classes are rarely
    contiguous.  Comparing the three counts shows aggregation recovers
    little of what VMAC tagging saves. *)

val in_switch_tagging_table : t -> Config.t -> Classifier.t
(** Stage 1 of Figure 2 implemented {e inside} the fabric instead of in
    the border routers: a classifier that tags packets by destination
    prefix (rewriting the destination MAC to the prefix group's VMAC, or
    to the default next hop's real interface MAC for ungrouped
    prefixes) without relocating them — install it in table 0 of a
    two-table switch ahead of the policy classifier, and untagged
    ingress behaves exactly like router-tagged ingress.  It costs one
    rule per announced prefix, which is why the paper offloads it to the
    routers ("we can realize our abstraction without any additional
    table space"). *)

val announcement : t -> Config.t -> receiver:Asn.t -> Prefix.t -> Route.t option
(** The route the SDX re-advertises to [receiver] for [prefix]: the best
    BGP route with the next hop rewritten to the prefix group's VNH; the
    next hop is left unchanged for ungrouped (default-only) prefixes. *)

val fold_announcements :
  t -> Config.t -> receiver:Asn.t -> (Prefix.t -> Route.t -> 'a -> 'a) -> 'a -> 'a

type batch_delta = {
  batch_rules : Classifier.t;
      (** non-total rule list to install above the base classifier as
          one block *)
  batch_groups : group list;  (** the fresh groups, allocation order *)
  batch_provenance : (provenance * int) list;
      (** block structure of [batch_rules], as {!provenance} *)
  batch_retired : int;
      (** fast-path groups the burst fully superseded: their VNHs went
          back to the allocator's free-list and their ARP bindings were
          removed *)
  batch_migrated : int;
      (** prefixes rebound into an already-interned class (from the base
          compile or an earlier burst) instead of minting a VNH: no new
          rules were emitted for them *)
  batch_touched_groups : int list;
      (** dirty-set for incremental verification: ids of every group
          whose obligations this burst may have changed — the fresh
          groups, each migration's target, plus each touched prefix's
          previous owner *)
  batch_elapsed_s : float;
}

val compile_update_batch :
  t ->
  Config.t ->
  Vnh.t ->
  Prefix.t list ->
  (batch_delta, [ `Vnh_exhausted ]) result
(** The fast path for a whole burst (Table 1: most bursts touch ≤3
    prefixes): one {e Default_keys} instance and one route-server pass
    serve every prefix, duplicates are coalesced to their final state,
    and prefixes sharing clause membership and default fingerprint share
    one fresh VNH.  A prefix whose signature is already interned (base
    compile or earlier burst) migrates into that class: a binding rebind
    and membership splice, no VNH draw and no new rules.
    Fully-withdrawn prefixes are unbound instead of grouped, retiring
    their superseded VNHs.  Must be called after the burst's updates
    have been applied to the route server.

    Transactional: [Error `Vnh_exhausted] means the pool could not cover
    the burst and {e nothing} — bindings, groups, ARP entries, allocator
    — was changed; the caller is expected to fall back to a full
    re-optimization. *)

val compact_retired : t -> live:int list -> int
(** Drops retired-group tombstones whose ids are not in [live] (the
    group ids still referenced by installed provenance blocks) and
    returns how many were dropped.  Never re-registers anything: a
    compacted tombstone's VNH and ARP binding were already released at
    retirement. *)
