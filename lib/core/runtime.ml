open Sdx_net
open Sdx_policy
open Sdx_bgp

type t = {
  mutable config : Config.t;
  vnh : Vnh.t;
  optimized : bool;
  domains : int option;
  mutable compiled : Compile.t;
  (* Fast-path rule blocks, most recent first, each with the stable
     switch priority of its lowest rule and the provenance of its rules.
     Floors only grow, so installing a new block never renumbers older
     rules — a BGP update translates to a handful of flow-mods, not a
     table rewrite. *)
  mutable extras : (Classifier.t * int * (Compile.provenance * int) list) list;
  rejected : (Asn.t * Prefix.t) list;
  ceiling : int;  (* per-instance fast-path priority ceiling *)
  mutable reoptimizes : int;
  (* Cumulative fast-path churn since [create]: groups minted by bursts,
     prefixes migrated into already-interned classes (no rules emitted),
     and groups retired.  Survives re-optimization — these describe the
     workload, not the current table. *)
  mutable churn_minted : int;
  mutable churn_migrated : int;
  mutable churn_retired : int;
  (* Bumped whenever the installable ruleset may have changed
     (re-optimization, policy change, update burst).  Dataplane drivers
     compare it against the generation they last committed, so a no-op
     sync stays a no-op even under version-tagged fabric commits. *)
  mutable generation : int;
  (* Cumulative dirty-set of fast-path block installs since the last
     [consume_dirty], for incremental verification; [None] whenever the
     whole table was rebuilt (create/reoptimize/fallback) since then, in
     which case only a full check applies.  [None] is sticky until
     consumed: blocks stacked on top of an unverified rebuild are
     covered by the pending full check. *)
  mutable last_dirty : dirty option;
}

and dirty = {
  dirty_rules : int list;
      (* indices into [classifier t] of the rules those bursts installed *)
  dirty_groups : int list;
      (* provenance group ids whose obligations those bursts may have
         changed (fresh groups + superseded previous owners) *)
}

(* Switch priority layout: the base classifier descends from
   [base_priority_top]; fast-path blocks stack upward from
   [extras_floor]; when they would reach the ceiling (the global
   [extras_ceiling], unless [create] was given a lower one) the runtime
   forces the background re-optimization. *)
let base_priority_top = 30_000
let extras_floor = 40_000
let extras_ceiling = 65_000

(* Live-VNH fraction past which a burst triggers the in-place background
   stage: re-optimizing at 80% reclaims the whole pool long before
   [Vnh.alloc] could report exhaustion mid-burst. *)
let vnh_pressure_threshold = 0.8

let log_src = Logs.Src.create "sdx.runtime" ~doc:"SDX runtime"

module Log = (val Logs.src_log log_src : Logs.LOG)

type update_stats = {
  update : Update.t;
  best_changed : bool;
  processing_s : float;
  extra_rules : int;
}

module Obs = struct
  open Sdx_obs.Registry

  let bursts = counter "sdx_runtime_bursts_total"
  let updates = counter "sdx_runtime_updates_total"
  let best_changed = counter "sdx_runtime_best_changed_total"

  (* End-to-end fast-path latency per burst: route-server apply + batch
     compile + block install — the §5.2 "fast path" quantity. *)
  let burst_seconds = histogram "sdx_runtime_burst_seconds"

  (* Updates whose prefix was folded into an earlier update of the same
     burst (burst size minus distinct changed prefixes). *)
  let coalesced = counter "sdx_runtime_coalesced_updates_total"
  let fastpath_blocks = gauge "sdx_runtime_fastpath_blocks"
  let extra_rules = gauge "sdx_runtime_extra_rules"
  let reoptimizations = counter "sdx_runtime_reoptimize_total"
  let reoptimize_seconds = histogram "sdx_runtime_reoptimize_seconds"

  (* The degradation ladder: bursts abandoned into a full recompile
     (pool exhausted mid-burst or the batch compiler failed), VNH
     pressure crossings, and base classifiers grown into the fast-path
     band — each rung trades fast-path latency for a consistent table
     instead of crashing or emitting overlapping priorities. *)
  let fastpath_fallbacks = counter "sdx_runtime_fastpath_fallback_total"

  let pressure_reoptimizations =
    counter "sdx_runtime_vnh_pressure_reoptimize_total"

  let overlap_reoptimizations =
    counter "sdx_runtime_band_overlap_reoptimize_total"

  let vnh_live = gauge "sdx_runtime_vnh_live"
  let vnh_reclaimed = gauge "sdx_runtime_vnh_reclaimed_total"
end

(* Placeholder next hop for SDX-originated prefixes: it resolves to no
   fabric port, so the compiler treats those prefixes as SDX-terminated
   and the route server still has a syntactically valid route. *)
let originated_next_hop = Ipv4.of_string "0.0.0.1"

let announce_originated ?rpki config =
  let server = Config.server config in
  List.fold_left
    (fun rejected (p : Participant.t) ->
      List.fold_left
        (fun rejected prefix ->
          let authorized =
            match rpki with
            | None -> true
            | Some table -> Rpki.validate_origin table ~prefix p.asn = Rpki.Valid
          in
          if authorized then begin
            let route =
              Route.make ~prefix ~next_hop:originated_next_hop
                ~as_path:[ p.asn ] ~learned_from:p.asn ()
            in
            ignore (Route_server.apply server (Update.announce route));
            rejected
          end
          else begin
            Log.warn (fun m ->
                m "refusing to originate %a for %a: RPKI validation failed"
                  Prefix.pp prefix Asn.pp p.asn);
            (p.asn, prefix) :: rejected
          end)
        rejected p.originated)
    []
    (Config.participants config)

(* A post-compile verification pass (installed by [Sdx_check]); invoked
   after the initial compilation, after every re-optimization, and after
   each fast-path block install.  Kept as a hook so [sdx_core] need not
   depend on the checker. *)
let check_hook : (t -> unit) option ref = ref None
let set_check_hook f = check_hook := f

let run_check_hook t =
  match !check_hook with None -> () | Some f -> f t

let create ?(optimized = true) ?rpki ?domains ?vnh_pool
    ?(extras_ceiling = extras_ceiling) config =
  let rejected = announce_originated ?rpki config in
  let vnh = Vnh.create ?pool:vnh_pool () in
  let compiled = Compile.compile ~optimized ?domains config vnh in
  let t =
    {
      config;
      vnh;
      optimized;
      domains;
      compiled;
      extras = [];
      rejected;
      ceiling = extras_ceiling;
      reoptimizes = 0;
      churn_minted = 0;
      churn_migrated = 0;
      churn_retired = 0;
      generation = 0;
      last_dirty = None;
    }
  in
  run_check_hook t;
  t

let rejected_originations t = t.rejected

let config t = t.config
let compiled t = t.compiled

let classifier t =
  List.concat
    (List.rev_append
       (List.rev_map (fun (c, _, _) -> c) t.extras)
       [ Compile.classifier t.compiled ])

let provenance t =
  List.concat_map (fun (_, _, provs) -> provs) t.extras
  @ Compile.provenance t.compiled

let extras_bands t =
  List.rev_map (fun (c, floor, _) -> (floor, Classifier.rule_count c)) t.extras

let base_rule_count t = Classifier.rule_count (Compile.classifier t.compiled)

let extra_rule_count t =
  List.fold_left (fun n (c, _, _) -> n + Classifier.rule_count c) 0 t.extras

let rule_count t = base_rule_count t + extra_rule_count t

let reoptimize t =
  t.generation <- t.generation + 1;
  t.last_dirty <- None;
  Vnh.reset t.vnh;
  let compiled =
    Compile.compile ~optimized:t.optimized ?domains:t.domains t.config t.vnh
  in
  t.compiled <- compiled;
  t.extras <- [];
  t.reoptimizes <- t.reoptimizes + 1;
  let stats = Compile.stats compiled in
  Sdx_obs.Registry.Counter.incr Obs.reoptimizations;
  Sdx_obs.Registry.Histogram.observe Obs.reoptimize_seconds stats.Compile.elapsed_s;
  Sdx_obs.Registry.Gauge.set_int Obs.fastpath_blocks 0;
  Sdx_obs.Registry.Gauge.set_int Obs.extra_rules 0;
  Sdx_obs.Registry.Gauge.set_int Obs.vnh_live (Vnh.allocated t.vnh);
  Sdx_obs.Registry.Gauge.set_int Obs.vnh_reclaimed (Vnh.reclaimed_total t.vnh);
  run_check_hook t;
  stats

let rec flows t =
  let base_cls = Compile.classifier t.compiled in
  let count = Classifier.rule_count base_cls in
  (* The base band holds ~30k rules; a bigger table pushes its top up
     (one large resync) rather than wrapping priorities below zero. *)
  let top = max base_priority_top count in
  if top >= extras_floor && t.extras <> [] then begin
    (* The base classifier grew into the fast-path band while blocks are
       stacked there: emitting both would hand the switch overlapping
       priorities with undefined match order.  Re-optimize in place —
       that folds the blocks back into the base table — and lay the
       flows out again.  The recursion terminates because the second
       pass finds no extras. *)
    Log.warn (fun m ->
        m
          "base classifier (%d rules) overlaps the fast-path priority \
           band; re-optimizing in place"
          count);
    Sdx_obs.Registry.Counter.incr Obs.overlap_reoptimizations;
    ignore (reoptimize t);
    flows t
  end
  else begin
    if top >= extras_floor then
      Log.warn (fun m ->
          m "base classifier (%d rules) overlaps the fast-path priority band"
            count);
    let base = Sdx_openflow.Flow.of_classifier ~base_priority:top base_cls in
    let extra_flows =
      List.concat_map
        (fun (block, floor, _) ->
          Sdx_openflow.Flow.of_classifier
            ~base_priority:(floor + Classifier.rule_count block - 1)
            block)
        t.extras
    in
    extra_flows @ base
  end

let group_count t = List.length (Compile.groups t.compiled)
let arp t = Compile.arp t.compiled
let announcement t ~receiver prefix = Compile.announcement t.compiled t.config ~receiver prefix

let next_extras_floor t =
  match t.extras with
  | [] -> extras_floor
  | (block, floor, _) :: _ -> floor + Classifier.rule_count block

(* The fast path could not serve this burst — the VNH pool ran dry
   mid-reservation, or the batch compiler failed outright.  The route
   server has already absorbed the updates, so the only safe direction
   is forward: a full recompile reads the post-update RIBs and rebuilds
   a consistent table (the batch compiler is transactional, so no
   half-installed state needs undoing). *)
let fallback_recompile t reason =
  Log.warn (fun m ->
      m "fast path abandoned (%s); falling forward into a full recompile"
        reason);
  Sdx_obs.Registry.Counter.incr Obs.fastpath_fallbacks;
  ignore (reoptimize t)

(* A burst is handled as a unit: every update is applied to the route
   server first, then the prefixes whose best route moved go through one
   [Compile.compile_update_batch], and the burst installs exactly one
   fast-path block.  Multiple updates to the same prefix therefore cost
   one rule slice (the final state), not one stacked block each. *)
let handle_burst t updates =
  t.generation <- t.generation + 1;
  let t0 = Unix.gettimeofday () in
  let changes =
    List.map
      (fun u -> (u, Route_server.apply (Config.server t.config) u))
      updates
  in
  let changed_prefixes =
    (* Burst-internal duplicates are coalesced again by the batch
       compiler; this keeps first-occurrence order.  A prefix needs
       re-batching when its best path moved for anyone, and also when the
       updating peer is a policy diversion target ([fwd(AS)]): diversions
       follow that peer's own (possibly non-best) route, so its
       withdrawal or path change alters diversion feasibility without
       moving any best path. *)
    List.filter_map
      (fun ((u, c) : _ * Route_server.change) ->
        if
          c.best_changed_for <> []
          || Compile.diverts_via t.compiled (Update.peer u)
        then Some c.prefix
        else None)
      changes
  in
  let installed =
    match changed_prefixes with
    | [] -> 0
    | prefixes -> (
        match
          Compile.compile_update_batch t.compiled t.config t.vnh prefixes
        with
        | exception exn ->
            fallback_recompile t (Printexc.to_string exn);
            0
        | Error `Vnh_exhausted ->
            fallback_recompile t "VNH pool exhausted";
            0
        | Ok batch ->
            let floor = next_extras_floor t in
            t.extras <-
              (batch.batch_rules, floor, batch.batch_provenance) :: t.extras;
            t.churn_minted <-
              t.churn_minted + List.length batch.Compile.batch_groups;
            t.churn_migrated <- t.churn_migrated + batch.Compile.batch_migrated;
            t.churn_retired <- t.churn_retired + batch.Compile.batch_retired;
            (* Cap the tombstone list: only retired groups still named by
               an installed block's provenance need to stay resolvable
               (base-compile groups never retire, so scanning the extras
               blocks is enough). *)
            let live =
              List.concat_map
                (fun (_, _, provs) ->
                  List.filter_map
                    (fun ((p : Compile.provenance), _) ->
                      match p with
                      | Compile.Outbound { group; _ } -> group
                      | Compile.Group_default { group } -> Some group
                      | Compile.Untagged _ | Compile.Catch_all
                      | Compile.Unattributed ->
                          None)
                    provs)
                t.extras
            in
            ignore (Compile.compact_retired t.compiled ~live);
            let count = Classifier.rule_count batch.batch_rules in
            (* The new block heads [classifier t], so its rules occupy
               global indices 0..count-1 and every previously dirty rule
               shifts up by [count]. *)
            (match t.last_dirty with
            | None -> ()  (* pending full check covers this block too *)
            | Some prev ->
                t.last_dirty <-
                  Some
                    {
                      dirty_rules =
                        List.init count Fun.id
                        @ List.map (fun i -> i + count) prev.dirty_rules;
                      dirty_groups =
                        batch.Compile.batch_touched_groups @ prev.dirty_groups;
                    });
            (* Priority space exhausted: run the background stage now. *)
            if floor + count >= t.ceiling then begin
              Log.info (fun m ->
                  m "fast-path priority space exhausted; re-optimizing in place");
              ignore (reoptimize t)
            end
            else if Vnh.pressure t.vnh >= vnh_pressure_threshold then begin
              (* Reclaim the pool before a later burst can hit
                 exhaustion mid-flight. *)
              Log.info (fun m ->
                  m
                    "VNH pool at %.0f%% (%d/%d live); re-optimizing before \
                     exhaustion"
                    (100. *. Vnh.pressure t.vnh)
                    (Vnh.allocated t.vnh) (Vnh.capacity t.vnh));
              Sdx_obs.Registry.Counter.incr Obs.pressure_reoptimizations;
              ignore (reoptimize t)
            end
            else run_check_hook t;
            count)
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  let n_updates = List.length updates in
  let n_changed = List.length changed_prefixes in
  let distinct_changed =
    Prefix.Set.cardinal (Prefix.Set.of_list changed_prefixes)
  in
  Sdx_obs.Registry.Counter.incr Obs.bursts;
  Sdx_obs.Registry.Counter.add Obs.updates n_updates;
  Sdx_obs.Registry.Counter.add Obs.best_changed n_changed;
  Sdx_obs.Registry.Counter.add Obs.coalesced (n_changed - distinct_changed);
  Sdx_obs.Registry.Histogram.observe Obs.burst_seconds elapsed;
  Sdx_obs.Registry.Gauge.set_int Obs.fastpath_blocks (List.length t.extras);
  Sdx_obs.Registry.Gauge.set_int Obs.extra_rules (extra_rule_count t);
  Sdx_obs.Registry.Gauge.set_int Obs.vnh_live (Vnh.allocated t.vnh);
  Sdx_obs.Registry.Gauge.set_int Obs.vnh_reclaimed (Vnh.reclaimed_total t.vnh);
  Sdx_obs.Trace.record ~name:"handle_burst" ~start_s:t0 ~dur_s:elapsed
    ~attrs:
      [
        ("updates", string_of_int n_updates);
        ("changed", string_of_int n_changed);
        ("installed_rules", string_of_int installed);
      ]
    ();
  let per_update_s = elapsed /. float_of_int (max 1 n_updates) in
  (* The block belongs to the burst, not any one update; attribute its
     rules to the first best-changing update so that summing
     [extra_rules] over the burst still counts each installed rule
     once. *)
  let first = ref true in
  List.map
    (fun ((update, c) : _ * Route_server.change) ->
      let best_changed = c.best_changed_for <> [] in
      let extra_rules =
        if best_changed && !first then begin
          first := false;
          installed
        end
        else 0
      in
      { update; best_changed; processing_s = per_update_s; extra_rules })
    changes

let handle_update t update =
  match handle_burst t [ update ] with
  | [ stats ] -> stats
  | _ -> assert false

let generation t = t.generation
let fast_path_block_count t = List.length t.extras
let vnh t = t.vnh
let reoptimize_count t = t.reoptimizes

type churn = {
  churn_groups_minted : int;
  churn_prefixes_migrated : int;
  churn_groups_retired : int;
}

let churn t =
  {
    churn_groups_minted = t.churn_minted;
    churn_prefixes_migrated = t.churn_migrated;
    churn_groups_retired = t.churn_retired;
  }

let retired_tombstone_count t = List.length (Compile.retired_groups t.compiled)

let set_policies t asn ~inbound ~outbound =
  let config =
    Config.with_policies t.config (fun (p : Participant.t) ->
        if Asn.equal p.asn asn then (inbound, outbound) else (p.inbound, p.outbound))
  in
  t.config <- config;
  (* Policy changes take the slow path (§4.3 tunes the incremental
     engine for BGP updates, which are far more frequent). *)
  reoptimize t

let announce t ~peer ~port ?as_path prefix =
  let p = Config.participant t.config peer in
  let port = Participant.port p port in
  let as_path = Option.value as_path ~default:[ peer ] in
  let route = Route.make ~prefix ~next_hop:port.ip ~as_path ~learned_from:peer () in
  handle_update t (Update.announce route)

let withdraw t ~peer prefix = handle_update t (Update.withdraw ~peer prefix)

(* ------------------------------------------------------------------ *)
(* Dirty-set accessors for incremental verification                     *)

let no_dirty = { dirty_rules = []; dirty_groups = [] }
let last_dirty t = t.last_dirty

let consume_dirty t =
  let d = t.last_dirty in
  (* Whatever the caller now verifies (incrementally from [Some d], or a
     full pass from [None]) covers the state as of this call. *)
  t.last_dirty <- Some no_dirty;
  d

(* ------------------------------------------------------------------ *)
(* Parallel dataplane driver: per-domain packet workers over an RCU
   snapshot of the flow table.                                          *)

module Table = Sdx_openflow.Table

type dataplane = {
  dp_table : Table.t;
  mutable dp_snap : Table.snapshot;
  dp_workers : int;
}

module Dp_obs = struct
  open Sdx_obs.Registry

  let workers = gauge "sdx_dataplane_workers"
  let packets = counter "sdx_dataplane_packets_total"
end

let dataplane ?domains t =
  let workers =
    match domains with
    | Some d -> max 1 d
    | None -> Parallel.default_domains ()
  in
  let table = Table.create () in
  Table.install_all table (flows t);
  let dp = { dp_table = table; dp_snap = Table.snapshot table; dp_workers = workers } in
  Sdx_obs.Registry.Gauge.set_int Dp_obs.workers workers;
  dp

let dataplane_refresh dp t =
  Table.clear dp.dp_table;
  Table.install_all dp.dp_table (flows t);
  dp.dp_snap <- Table.snapshot dp.dp_table

let dataplane_workers dp = dp.dp_workers
let dataplane_snapshot dp = dp.dp_snap

let dataplane_process dp (pkts : Packet.t array) =
  let n = Array.length pkts in
  let out = Array.make n None in
  if n > 0 then begin
    let snap = dp.dp_snap in
    let w = min dp.dp_workers n in
    if w <= 1 then begin
      let find = Table.searcher snap in
      for i = 0 to n - 1 do
        Array.unsafe_set out i (find (Array.unsafe_get pkts i))
      done
    end
    else
      (* Contiguous shards, one per worker; each worker holds its own
         searcher cursor and writes a disjoint slice of [out], so the
         only shared state is the frozen snapshot. *)
      ignore
        (Parallel.map (Parallel.global ())
           (fun k ->
             let lo = k * n / w and hi = (k + 1) * n / w in
             let find = Table.searcher snap in
             for i = lo to hi - 1 do
               Array.unsafe_set out i (find (Array.unsafe_get pkts i))
             done)
           (List.init w Fun.id));
    Sdx_obs.Registry.Counter.add Dp_obs.packets n
  end;
  out
