(** Static SDX configuration: the set of participants, the mapping of
    their border-router ports onto the fabric switch's port numbers, and
    the route server instance. *)

open Sdx_net
open Sdx_bgp

type t

val make :
  ?export:(advertiser:Asn.t -> receiver:Asn.t -> bool) ->
  Participant.t list ->
  t
(** Builds the configuration and an empty route server with the given
    export-policy matrix.
    @raise Invalid_argument on duplicate ASNs or duplicate port
    addresses. *)

val participants : t -> Participant.t list

val server : t -> Route_server.t

val with_policies : t -> (Participant.t -> Ppolicy.t * Ppolicy.t) -> t
(** A configuration with the same participants, ports, and — crucially —
    the same live route server, but each participant's
    (inbound, outbound) policies replaced by the function's result.
    This is how a policy change is applied without disturbing BGP state:
    build the new configuration, then recompile (§4.3 treats policy
    changes as full recompilations).
    @raise Invalid_argument if a new policy fails validation. *)

val participant : t -> Asn.t -> Participant.t
(** @raise Not_found for an unknown ASN. *)

val participant_opt : t -> Asn.t -> Participant.t option

val switch_port : t -> Asn.t -> int -> int
(** [switch_port t asn index] is the fabric switch port number of the
    participant's [index]-th physical port.  Switch ports are numbered
    from 1 in participant declaration order. *)

val switch_ports_of : t -> Asn.t -> int list
(** All fabric ports of one participant. *)

val owner_of_port : t -> int -> Participant.t * Participant.port
(** @raise Not_found for a port number not assigned to any participant. *)

val port_of_next_hop : t -> Ipv4.t -> (Participant.t * Participant.port * int) option
(** Resolves a BGP next-hop interface address to its participant, port
    record, and fabric port number. *)

val port_count : t -> int

val announce : t -> peer:Asn.t -> port:int -> ?as_path:Asn.t list -> Prefix.t -> Route_server.change
(** Convenience: the participant announces [prefix] from its [port]-th
    interface to the route server.  [as_path] defaults to the
    participant's own ASN. *)

val preload : t -> peer:Asn.t -> port:int -> ?as_path:Asn.t list -> Prefix.t -> unit
(** Like {!announce} but via {!Route_server.load}: no best-route change
    diffing, for bulk initial table loads before anything is compiled. *)

val withdraw : t -> peer:Asn.t -> Prefix.t -> Route_server.change
