(** A fixed-size domain pool for fanning independent computations across
    OCaml 5 domains (stdlib [Domain]/[Mutex]/[Condition] only).

    The compiler uses it to run per-clause and per-group rule generation
    concurrently: tasks must not mutate shared state except through
    their own synchronization (see DESIGN.md, "Parallel compilation &
    batching"). *)

type t

val create : domains:int -> t
(** A pool that runs tasks on [max 1 domains] domains.  [domains - 1]
    worker domains are spawned; the caller of {!map} is the remaining
    one. *)

val size : t -> int

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] is [List.map f xs], computed concurrently.  Results
    are returned in input order regardless of completion order.  If any
    [f x] raises, the first (in input order) such exception is re-raised
    after the whole batch settles.  [f] runs on arbitrary domains — it
    must only touch shared mutable state under its own locks. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** {!map} over arrays, sharded into contiguous chunks: the natural
    entry point for data-plane batches (e.g. a packet vector split
    across domains).  Same ordering and exception contract as {!map}. *)

val shutdown : t -> unit
(** Joins the worker domains.  The pool must be idle. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [create], run, then [shutdown] (also on exceptions). *)

(** Epoch-validated domain-local storage, for state that is private to a
    domain but scoped to one run (e.g. the compiler's per-domain FDD
    shard managers): each domain lazily creates its own value the first
    time it asks under a given epoch, and a new epoch invalidates every
    domain's cached value without coordination. *)
module Local : sig
  type 'a t

  val create : unit -> 'a t

  val find : 'a t -> epoch:int -> 'a option
  (** This domain's value, if one was stored under the same [epoch];
      [None] if the slot is empty or holds another epoch's value. *)

  val set : 'a t -> epoch:int -> 'a -> unit
  (** Store this domain's value for [epoch] (the compiler registers each
      domain's freshly created shard, and pins the main domain's shard so
      the fast path can reuse it between runs). *)
end

val default_domains : unit -> int
(** [SDX_DOMAINS] if set to a positive integer, else
    [Domain.recommended_domain_count ()]. *)

val global : unit -> t
(** The shared process-wide pool, created on first use with
    {!default_domains} domains. *)
