open Sdx_net
open Sdx_policy
open Sdx_bgp
module Sync = Sdx_sanitize.Sync

let blackhole_port = 0

let profile_on = lazy (Sys.getenv_opt "SDX_PROFILE" <> None)

let profile_stage name f =
  if not (Lazy.force profile_on) then f ()
    else begin
      let t0 = Unix.gettimeofday () in
      let r = f () in
      Printf.eprintf "[profile] %-12s %8.3fs\n%!" name
        (Unix.gettimeofday () -. t0);
      r
    end

type group = {
  id : int;
  vnh : Ipv4.t;
  vmac : Mac.t;
  (* sdx-owner: [prefixes] is rewritten only by the coordinating thread
     (the incremental fast path's class split/merge), never from pool
     domains; build fan-outs only read it. *)
  mutable prefixes : Prefix.t list;
  default_variants : (Ipv4.t option * Asn.t list) list;
}

type stats = {
  group_count : int;
  rule_count : int;
  elapsed_s : float;
  compose_s : float;
  reachability_s : float;
  group_s : float;
  seq_ops : int;
  memo_hits : int;
  fdd_build_s : float;
  fdd_merge_s : float;
  fdd_extract_s : float;
  fdd_nodes : int;
  fdd_memo_hits : int;
  fdd_table_size : int;
}

let zero_stats =
  {
    group_count = 0;
    rule_count = 0;
    elapsed_s = 0.;
    compose_s = 0.;
    reachability_s = 0.;
    group_s = 0.;
    seq_ops = 0;
    memo_hits = 0;
    fdd_build_s = 0.;
    fdd_merge_s = 0.;
    fdd_extract_s = 0.;
    fdd_nodes = 0;
    fdd_memo_hits = 0;
    fdd_table_size = 0;
  }

module Obs = struct
  open Sdx_obs.Registry

  let compiles = counter "sdx_compile_total"
  let compile_seconds = histogram "sdx_compile_seconds"
  let rules = gauge "sdx_compile_rules"
  let groups = gauge "sdx_compile_groups"
  let seq_ops = counter "sdx_compile_seq_ops_total"
  let memo_hits = counter "sdx_compile_memo_hits_total"
  let batches = counter "sdx_compile_batch_total"
  let batch_seconds = histogram "sdx_compile_batch_seconds"
  let batch_rules = counter "sdx_compile_batch_rules_total"
  let batch_prefixes = counter "sdx_compile_batch_prefixes_total"

  (* Fresh VNHs allocated by the fast path — the quantity the batch
     coalescing exists to keep sub-linear in burst size. *)
  let batch_vnhs = counter "sdx_compile_batch_vnh_total"

  (* VNHs returned to the free-list when a burst left a fast-path group
     with no bound prefixes, and batches abandoned because the pool
     could not cover them. *)
  let vnhs_retired = counter "sdx_compile_vnh_retired_total"
  let batch_exhausted = counter "sdx_compile_batch_exhausted_total"

  (* Tombstoned fast-path groups still held for provenance attribution
     (capped by [compact_retired]), and prefixes the incremental path
     rebound into an already-interned class instead of minting a fresh
     VNH for them. *)
  let retired_tombstones = gauge "sdx_compile_retired_groups"
  let batch_migrations = counter "sdx_compile_batch_migrations_total"

  (* The FDD intermediate representation: node population of the merged
     main manager, memo-cache hits across all shard managers, and live
     unique-table entries after the shard-merge pass. *)
  let fdd_nodes = gauge "sdx_fdd_nodes"
  let fdd_memo_hits = counter "sdx_fdd_memo_hits_total"
  let fdd_table_size = gauge "sdx_fdd_unique_table_size"
end

(* An outbound clause together with the prefixes whose default behavior it
   overrides — one element of the collection the MDS partition runs on.
   [prefix_set] is the clause's covered-prefix set materialized the
   pre-ISSUE-9 way (a full [reachable_prefixes] scan per spec); it is
   lazy because only the naive grouping oracle and the naive build
   consume it — the export-vector pipeline derives coverage from the
   interned class signatures instead.  [restriction] is the clause
   predicate's destination restriction, precomputed once. *)
type ospec = {
  spec_id : int;  (** position in collection order; keys per-shard caches *)
  sender : Participant.t;
  clause : Ppolicy.clause;
  via : Asn.t option;
  restriction : Prefix.t list option;
  prefix_set : Prefix.Set.t Lazy.t;
}

(* Class signature: (via-spec membership, preference-ordered route
   fingerprint, originator).  Equal signatures compile to identical rule
   slices — membership pins the sender blocks, the fingerprint pins the
   default variants and every diversion delivery port, the originator
   pins SDX-originated delivery.  The polymorphic hash truncates after a
   few list nodes (long memberships would collide constantly), so the
   table hashes every element explicitly. *)
module Class_key = struct
  (* The full export-vector set-bit list (via-spec band ascending, then
     the origin band) plus the default-route fingerprint: exactly the
     pair the partition distinguishes cells by, so the interned-class
     table is injective on live classes.  Keying on anything less — the
     old (via band, fingerprint, first originator) triple — collided
     classes that differ only in secondary originators, silently
     migrating burst prefixes into the wrong class. *)
  type t = int list * (Asn.t * Ipv4.t) list

  let equal (a : t) (b : t) = a = b

  let hash ((ids, fp) : t) =
    let h = ref 0x811c9dc5 in
    List.iter (fun i -> h := ((!h lxor i) * 0x01000193) land max_int) ids;
    List.iter
      (fun pair -> h := ((!h lxor Hashtbl.hash pair) * 0x01000193) land max_int)
      fp;
    !h
end

module Class_tbl = Hashtbl.Make (Class_key)

module Pipeline_key = struct
  type t = Asn.t * Mods.t option

  let equal (a1, m1) (a2, m2) = Asn.equal a1 a2 && Option.equal Mods.equal m1 m2

  let hash (a, m) =
    (Asn.hash a * 31) + (match m with None -> 0x3ac5 | Some m -> Mods.hash m)
end

module Pipeline_cache = Hashtbl.Make (Pipeline_key)

(* Everything a rule-generation job mutates lives in a per-domain shard:
   the domain's private FDD manager, its pipeline caches, its operation
   counters and phase timers.  Jobs run lock-free; the coordinating
   domain aggregates counters and hash-conses the shard diagrams into
   the main manager after the fan-out settles (the satellite fix for the
   old global-mutex counters, which serialized the pool on stats). *)
type shard = {
  fdd : Fdd.manager;
  fdd_pipelines : Fdd.t Pipeline_cache.t;
  cls_pipelines : Classifier.t Pipeline_cache.t;
  head_fdds : (int, Fdd.t) Hashtbl.t;
      (* clause-head diagram per [spec_id]: group-independent, so every
         group of a clause reuses one diagram *)
  extracts : (int, Classifier.t) Hashtbl.t;
      (* extracted classifier per diagram id: extraction runs once per
         distinct diagram, and per-group blocks are sliced out of the
         cached classifier by pattern restriction *)
  delivery : (Asn.t * int, (Participant.port * int) option) Hashtbl.t;
      (* delivery port per (via, group id): every clause diverting
         through [via] asks the same question of the same group, and the
         answer only depends on route-server state that is fixed for the
         duration of a build *)
  (* sdx-owner: shard stats are domain-private (one shard per domain
     per epoch, reached only through the DLS slot) until [aggregate]
     reads them after the pool batch joins. *)
  mutable seq_ops : int;
  mutable memo_hits : int;
  mutable build_s : float;  (* CPU-seconds constructing diagrams *)
  mutable extract_s : float;  (* CPU-seconds extracting classifiers *)
}

let fresh_shard () =
  {
    fdd = Fdd.create ();
    fdd_pipelines = Pipeline_cache.create 64;
    cls_pipelines = Pipeline_cache.create 64;
    head_fdds = Hashtbl.create 64;
    extracts = Hashtbl.create 64;
    delivery = Hashtbl.create 64;
    seq_ops = 0;
    memo_hits = 0;
    build_s = 0.;
    extract_s = 0.;
  }

(* Compile runs are numbered by a process-wide epoch; each pool domain
   keeps (at most) one live shard, keyed by the epoch that created it, so
   a new run never sees a stale manager from a previous one. *)
let epoch_counter = Sync.Atomic.make 0
let shard_slot : shard Parallel.Local.t = Parallel.Local.create ()

(* Where a block of compiled rules came from — threaded alongside the
   classifier so a static checker can attribute every rule to the
   participant policy (or compiler layer) that produced it. *)
type provenance =
  | Outbound of { sender : Asn.t; via : Asn.t option; group : int option }
  | Group_default of { group : int }
  | Untagged of { owner : Asn.t }
  | Catch_all
  | Unattributed

type t = {
  classifier : Classifier.t;
  groups_ : group list;
  by_prefix : (Prefix.t, group) Hashtbl.t;
  arp_ : Sdx_arp.Responder.t;
  (* sdx-owner: stats_, next_group_id, blocks_, batch_groups_ and
     retired_groups_ are only written by the coordinating thread between
     pool batches; shards_ is the exception and is guarded by
     [shards_lock]. *)
  mutable stats_ : stats;
  ospecs : ospec list;
  memoize : bool;
  mode : [ `Fdd | `Crossproduct ];
  epoch : int;
  (* The coordinating domain's shard, pinned for the life of [t]: the
     incremental fast path keeps reusing its pipeline caches long after
     the build fan-out is gone. *)
  main_shard : shard;
  (* Extracted body classifiers shared across every shard of the run:
     clause bodies keyed by (spec id, delivery switch port), inbound
     pipelines keyed by (owner, delivery switch port).  A classifier is
     immutable data, so one domain's extraction serves every other
     domain's groups — each distinct diagram is built and extracted once
     per run, not once per shard. *)
  shared_bodies : (int * int, Classifier.t) Hashtbl.t;
  shared_pipes : (Asn.t * int option, Classifier.t) Hashtbl.t;
  shared_lock : Sync.Mutex.t;
  mutable shards_ : shard list;
  shards_lock : Sync.Mutex.t;
  mutable next_group_id : int;
  mutable blocks_ : (provenance * int) list;
  mutable batch_groups_ : group list;  (* fast-path groups, oldest first *)
  (* Fast-path groups every member prefix of which was since rebound or
     withdrawn: their VNHs are back on the free-list and their ARP
     bindings gone, but older fast-path blocks may still carry their
     (dead, shadowed) rules — kept as tombstones so provenance
     attribution still resolves their ids.  [compact_retired] drops the
     ones no live provenance references any more. *)
  mutable retired_groups_ : group list;
  (* sdx-owner: [spec_groups] and [class_intern] are written only by the
     coordinating thread (base compile, then the incremental fast path
     between pool batches); build fan-outs never touch them. *)
  (* Covering groups per via-spec id, in group order — replaces the
     per-spec [Prefix.Set.mem] scan over every group when the grouping
     pipeline produced class signatures ([None] under naive grouping). *)
  spec_groups : (int, group list) Hashtbl.t option;
  (* Canonical class table of the incremental fast path: signature
     (via-spec membership, preference-ordered route fingerprint,
     originator) to the live group carrying it.  Two prefixes with equal
     signatures provably compile to identical rule slices, so a burst
     prefix whose signature is already interned is rebound to the
     existing class instead of minting a VNH and re-emitting rules. *)
  class_intern : group Class_tbl.t;
}

let classifier t = t.classifier
let groups t = t.groups_

let all_groups t =
  t.groups_ @ List.rev t.batch_groups_ @ t.retired_groups_

let active_groups t = t.groups_ @ List.rev t.batch_groups_
let retired_groups t = t.retired_groups_
let group_of_prefix t p = Hashtbl.find_opt t.by_prefix p

let diverts_via t via =
  List.exists
    (fun s -> match s.via with Some v -> Asn.equal v via | None -> false)
    t.ospecs
let arp t = t.arp_
let stats t = t.stats_

(* The calling domain's shard for this compile run, created (and
   registered for end-of-run aggregation) on first use.  The main
   domain's slot is pre-seeded with [t.main_shard]; pool domains mint
   their own.  Only the registration list is shared, so the lock guards
   a cons, never real work. *)
let shard_of t =
  match Parallel.Local.find shard_slot ~epoch:t.epoch with
  | Some s -> s
  | None ->
      let s = fresh_shard () in
      Sync.Mutex.lock t.shards_lock;
      t.shards_ <- s :: t.shards_;
      Sync.Mutex.unlock t.shards_lock;
      Parallel.Local.set shard_slot ~epoch:t.epoch s;
      s

let time_build (shard : shard) f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  shard.build_s <- shard.build_s +. (Unix.gettimeofday () -. t0);
  r

let time_extract (shard : shard) f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  shard.extract_s <- shard.extract_s +. (Unix.gettimeofday () -. t0);
  r

let provenance t = t.blocks_

let pp_provenance ppf = function
  | Outbound { sender; via; group } ->
      Format.fprintf ppf "outbound[%a%a%a]" Asn.pp sender
        (fun ppf -> function
          | Some v -> Format.fprintf ppf "->%a" Asn.pp v
          | None -> Format.fprintf ppf "->direct")
        via
        (fun ppf -> function
          | Some g -> Format.fprintf ppf ",g%d" g
          | None -> ())
        group
  | Group_default { group } -> Format.fprintf ppf "default[g%d]" group
  | Untagged { owner } -> Format.fprintf ppf "untagged[%a]" Asn.pp owner
  | Catch_all -> Format.pp_print_string ppf "catch-all"
  | Unattributed -> Format.pp_print_string ppf "unattributed"

(* ------------------------------------------------------------------ *)
(* Destination-prefix restriction of a predicate.                      *)

(* [Some ps] means the predicate implies dst_ip is inside one of [ps];
   [None] means no destination constraint could be extracted.  Used to
   narrow the set of prefixes a clause overrides — a conservative
   over-approximation keeps correctness (the clause's own predicate is
   still part of the compiled rule). *)
let rec dst_restriction (p : Pred.t) : Prefix.t list option =
  match p with
  | Pred.Test pat -> Option.map (fun pre -> [ pre ]) pat.Pattern.dst_ip
  | Pred.And (a, b) -> (
      match (dst_restriction a, dst_restriction b) with
      | Some xs, Some ys ->
          Some
            (List.concat_map
               (fun x -> List.filter_map (fun y -> Prefix.inter x y) ys)
               xs)
      | (Some _ as r), None | None, (Some _ as r) -> r
      | None, None -> None)
  | Pred.Or (a, b) -> (
      match (dst_restriction a, dst_restriction b) with
      | Some xs, Some ys -> Some (xs @ ys)
      | _ -> None)
  | Pred.True | Pred.False | Pred.Not _ -> None

let restrict_set restriction set =
  match restriction with
  | None -> set
  | Some allowed ->
      Prefix.Set.filter
        (fun p -> List.exists (fun a -> Prefix.overlaps p a) allowed)
        set

(* ------------------------------------------------------------------ *)
(* Default-forwarding keys (pass 2 of the VNH computation, §4.2).      *)

(* Two prefixes share a default key iff every participant's best route
   for them uses the same next-hop interface.  Keys are memoized on the
   preference-ordered (advertiser, next hop) fingerprint: prefixes with
   equal fingerprints necessarily yield equal per-receiver choices, so
   the expensive per-receiver scan runs once per distinct fingerprint. *)
module Default_keys = struct
  type nonrec t = {
    config : Config.t;
    fp_ids : ((Asn.t * Ipv4.t) list, int) Hashtbl.t;
    variants_of_id : (int, (Ipv4.t option * Asn.t list) list) Hashtbl.t;
    (* The memo tables may be consulted from pool domains. *)
    lock : Sync.Mutex.t;
  }

  let create config =
    {
      config;
      fp_ids = Hashtbl.create 256;
      variants_of_id = Hashtbl.create 256;
      lock = Sync.Mutex.create ();
    }

  let variants_of_fingerprint t fp =
    let server = Config.server t.config in
    let receivers =
      List.map (fun (p : Participant.t) -> p.asn) (Config.participants t.config)
    in
    let choice receiver =
      let rec go = function
        | [] -> None
        | (advertiser, nh) :: rest ->
            if Route_server.exports_to server ~advertiser ~receiver then
              (* A next hop that resolves to no fabric port (an
                 SDX-originated placeholder) gives no default. *)
              if Option.is_some (Config.port_of_next_hop t.config nh) then
                Some nh
              else None
            else go rest
      in
      go fp
    in
    let by_nh = Hashtbl.create 8 in
    let order = ref [] in
    List.iter
      (fun r ->
        let nh = choice r in
        (match Hashtbl.find_opt by_nh nh with
        | None ->
            order := nh :: !order;
            Hashtbl.replace by_nh nh [ r ]
        | Some rs -> Hashtbl.replace by_nh nh (r :: rs)))
      receivers;
    List.rev_map (fun nh -> (nh, List.rev (Hashtbl.find by_nh nh))) !order

  let key_of_prefix t prefix =
    let server = Config.server t.config in
    let sorted = Decision.sort (Route_server.candidates server prefix) in
    let fp =
      List.map (fun (r : Route.t) -> (r.learned_from, r.next_hop)) sorted
    in
    Sync.Mutex.lock t.lock;
    let id =
      match Hashtbl.find_opt t.fp_ids fp with
      | Some id -> id
      | None ->
          let id = Hashtbl.length t.fp_ids in
          Hashtbl.replace t.fp_ids fp id;
          (* [variants_of_fingerprint] only reads the config, so holding
             the lock across it is deadlock-free. *)
          Hashtbl.replace t.variants_of_id id (variants_of_fingerprint t fp);
          id
    in
    Sync.Mutex.unlock t.lock;
    id

  let variants t id =
    Sync.Mutex.lock t.lock;
    let v = Hashtbl.find t.variants_of_id id in
    Sync.Mutex.unlock t.lock;
    v

  (* Variants for a single prefix, bypassing the fingerprint memo — used
     by the incremental fast path, which must reflect the post-update
     routes even though the memo may hold stale entries. *)
  let variants_of_prefix t prefix =
    let server = Config.server t.config in
    let sorted = Decision.sort (Route_server.candidates server prefix) in
    let fp =
      List.map (fun (r : Route.t) -> (r.learned_from, r.next_hop)) sorted
    in
    variants_of_fingerprint t fp
end

(* ------------------------------------------------------------------ *)
(* Policy construction helpers.                                        *)

let in_ports_pred config (sender : Participant.t) =
  Pred.any_of_ports (Config.switch_ports_of config sender.asn)

let deliver_mods extra (port : Participant.port) switch_port =
  Mods.then_ extra (Mods.make ~dst_mac:port.mac ~port:switch_port ())

(* Resolve a [Default] clause: the packet's (possibly rewritten)
   destination address is re-resolved through the receiver's local RIB
   and delivered on the chosen route's port. *)
let resolve_default config ~receiver (mods : Mods.t) =
  match mods.Mods.dst_ip with
  | None -> None
  | Some addr -> (
      match Route_server.lookup_best (Config.server config) ~receiver addr with
      | None -> None
      | Some (_, route) -> (
          match Config.port_of_next_hop config route.next_hop with
          | None -> None
          | Some (_, port, n) -> Some (deliver_mods mods port n)))

(* Delivery to a middlebox host's first port, bypassing BGP checks. *)
let redirect_mods config (mods : Mods.t) mbox_asn =
  let mbox = Config.participant config mbox_asn in
  match mbox.ports with
  | [] ->
      invalid_arg
        (Printf.sprintf "redirect target %s has no physical port"
           (Asn.to_string mbox_asn))
  | port :: _ ->
      deliver_mods mods port (Config.switch_port config mbox_asn port.index)

(* The action policy of one inbound clause of [receiver]. *)
let inbound_action config (receiver : Participant.t) (c : Ppolicy.clause) =
  match c.target with
  | Ppolicy.Phys k ->
      let port = Participant.port receiver k in
      let n = Config.switch_port config receiver.asn k in
      Policy.modify (deliver_mods c.mods port n)
  | Ppolicy.Redirect mbox -> Policy.modify (redirect_mods config c.mods mbox)
  | Ppolicy.Drop ->
      Policy.modify (Mods.then_ c.mods (Mods.make ~port:blackhole_port ()))
  | Ppolicy.Default -> (
      match resolve_default config ~receiver:receiver.asn c.mods with
      | Some m -> Policy.modify m
      | None ->
          (* No route for the rewritten destination: drop explicitly. *)
          Policy.modify (Mods.then_ c.mods (Mods.make ~port:blackhole_port ())))
  | Ppolicy.Peer asn ->
      invalid_arg
        (Printf.sprintf "inbound policy of %s forwards to peer %s"
           (Asn.to_string receiver.asn) (Asn.to_string asn))

(* A participant's inbound pipeline: its inbound clauses as an if_-chain,
   falling through to default delivery (or an explicit blackhole for
   remote participants, which have no port to deliver on).  Drops are
   always expressed as forwards to the blackhole port, never as
   empty-action rules: the layered classifier discards empty-action rules
   as totality filler (see [keep_forwards]). *)
let inbound_pipeline_ast config (receiver : Participant.t) ~default_deliver =
  let base =
    match default_deliver with
    | Some m -> Policy.modify m
    | None -> Policy.modify (Mods.make ~port:blackhole_port ())
  in
  List.fold_right
    (fun (c : Ppolicy.clause) acc ->
      Policy.if_ c.pred (inbound_action config receiver c) acc)
    receiver.inbound base

(* Pipeline caches are per-shard (domain-private), so lookups are plain
   hash-table reads with no locking.  Two domains compiling the same
   receiver each pay the (deterministic) compilation once — the price of
   lock-freedom, recovered many times over on the hot path. *)
let compiled_pipeline t shard config (receiver : Participant.t) ~default_deliver
    =
  let key = (receiver.Participant.asn, default_deliver) in
  match
    if t.memoize then Pipeline_cache.find_opt shard.cls_pipelines key else None
  with
  | Some c ->
      shard.memo_hits <- shard.memo_hits + 1;
      c
  | None ->
      let c =
        Classifier.compile (inbound_pipeline_ast config receiver ~default_deliver)
      in
      if t.memoize then Pipeline_cache.replace shard.cls_pipelines key c;
      c

(* The same pipeline as a diagram in the shard's manager.  Cache hits
   here are what make the FDD path sub-linear in groups: every group of
   a clause [seq]s the same pipeline diagram, so the manager's memo
   tables short-circuit all but the first composition. *)
let pipeline_fdd t shard config (receiver : Participant.t) ~default_deliver =
  let key = (receiver.Participant.asn, default_deliver) in
  match
    if t.memoize then Pipeline_cache.find_opt shard.fdd_pipelines key else None
  with
  | Some d ->
      shard.memo_hits <- shard.memo_hits + 1;
      d
  | None ->
      let d =
        Fdd.of_policy shard.fdd
          (inbound_pipeline_ast config receiver ~default_deliver)
      in
      if t.memoize then Pipeline_cache.replace shard.fdd_pipelines key d;
      d

(* Extraction runs once per distinct diagram per shard; per-group blocks
   are then sliced out of the cached classifier by pattern restriction.
   This is what makes the FDD path's per-group marginal cost proportional
   to the block's own rule count instead of the pipeline's size: the
   diagram walk happens once per clause, not once per (clause, group).
   Returns the diagrams to hand to the merge pass — the diagram itself on
   a fresh extraction, nothing on a hit (the merge would only re-import
   identical structure). *)
let extract_cached t shard d =
  let id = Fdd.node_id d in
  match if t.memoize then Hashtbl.find_opt shard.extracts id else None with
  | Some c ->
      shard.memo_hits <- shard.memo_hits + 1;
      (c, [])
  | None ->
      let c = time_extract shard (fun () -> Fdd.to_classifier d) in
      if t.memoize then Hashtbl.replace shard.extracts id c;
      (c, [ d ])

(* The group-independent head of an outbound clause — the sender's
   in-ports, the clause predicate, and the clause rewrites, but not the
   group's VMAC (that is restricted in per group after extraction). *)
let spec_head_fdd t shard config (spec : ospec) =
  match
    if t.memoize then Hashtbl.find_opt shard.head_fdds spec.spec_id else None
  with
  | Some d ->
      shard.memo_hits <- shard.memo_hits + 1;
      d
  | None ->
      let head_pred =
        Pred.and_ (in_ports_pred config spec.sender) spec.clause.pred
      in
      let d =
        Fdd.of_policy shard.fdd
          (Policy.seq
             [ Policy.filter head_pred; Policy.modify spec.clause.mods ])
      in
      if t.memoize then Hashtbl.replace shard.head_fdds spec.spec_id d;
      d

(* The shared tables are read and written from pool domains; the lock is
   held only around the table operation, never around diagram work, so a
   simultaneous miss costs at most one duplicated build — and both
   results are interchangeable, because hash-consing keeps diagrams
   canonical and extraction depends only on diagram structure. *)
let shared_find t tbl key =
  if not t.memoize then None
  else begin
    Sync.Mutex.lock t.shared_lock;
    let r = Hashtbl.find_opt tbl key in
    Sync.Mutex.unlock t.shared_lock;
    r
  end

let shared_put t tbl key v =
  if t.memoize then begin
    Sync.Mutex.lock t.shared_lock;
    if not (Hashtbl.mem tbl key) then Hashtbl.replace tbl key v;
    Sync.Mutex.unlock t.shared_lock
  end

(* [owner]'s extracted inbound pipeline for one delivery port, through
   the run-wide shared cache.  [dport] must determine [default_deliver]
   (it does: the delivery mods are a function of the owner's port
   record, which the switch port number identifies). *)
let shared_pipeline_cls t shard config (owner : Participant.t) ~default_deliver
    ~dport =
  let key = (owner.Participant.asn, dport) in
  match shared_find t t.shared_pipes key with
  | Some c ->
      shard.memo_hits <- shard.memo_hits + 1;
      (c, [])
  | None ->
      let pipe =
        time_build shard (fun () ->
            pipeline_fdd t shard config owner ~default_deliver)
      in
      let c, fresh = extract_cached t shard pipe in
      shared_put t t.shared_pipes key c;
      (c, fresh)

(* ------------------------------------------------------------------ *)
(* Confinement: discarding totality filler.                            *)

(* The final classifier is a concatenation of per-clause and per-group
   blocks over a shared drop-all tail.  Within a block, every meaningful
   decision is a forwarding action (explicit drops are blackhole
   forwards), so empty-action rules are totality filler produced by
   predicate compilation; they must be discarded or they would shadow
   the blocks underneath.  Every surviving rule carries the block's
   pinning constraint (sender in-port, or the group's VMAC) by
   construction, since it passed the block's head filter. *)
let keep_forwards (c : Classifier.t) =
  List.filter (fun (r : Classifier.rule) -> r.action <> []) c

(* ------------------------------------------------------------------ *)
(* Per-clause rule generation (optimized path, §4.3.1).                *)

(* The route [via] announced covering the group, used to pick the
   delivery port on [via]'s router. *)
let route_from_via config ~via group_prefixes =
  let server = Config.server config in
  let rec go = function
    | [] -> None
    | p :: rest -> (
        match
          List.find_opt
            (fun (r : Route.t) -> Asn.equal r.learned_from via)
            (Route_server.candidates server p)
        with
        | Some r -> Some r
        | None -> go rest)
  in
  go group_prefixes

let delivery_port_for_via config (via : Participant.t) group_prefixes =
  let fallback () =
    match via.ports with
    | [] -> None
    | port :: _ -> Some (port, Config.switch_port config via.asn port.index)
  in
  match route_from_via config ~via:via.asn group_prefixes with
  | None -> fallback ()
  | Some route -> (
      match Config.port_of_next_hop config route.next_hop with
      | Some (_, port, n) -> Some (port, n)
      | None -> fallback ())

(* Rules for one outbound clause applied to one prefix group: match the
   sender's in-port, the clause predicate, and the group's VMAC; apply
   the clause rewrites; hand to the target peer's inbound pipeline.

   Each builder returns its rule block together with the diagrams it
   composed (empty in crossproduct mode) so the coordinator can
   hash-cons them into the main manager during the merge phase. *)
let clause_group_rules t shard config (spec : ospec) (g : group) =
  let sender_ports = Config.switch_ports_of config spec.sender.asn in
  if sender_ports = [] then ([], [])
  else
    match spec.via with
    | Some via_asn -> (
        let via = Config.participant config via_asn in
        let delivery =
          let key = (via_asn, g.id) in
          match Hashtbl.find_opt shard.delivery key with
          | Some d -> d
          | None ->
              let d = delivery_port_for_via config via g.prefixes in
              Hashtbl.replace shard.delivery key d;
              d
        in
        match delivery with
        | None -> ([], [])
        | Some (port, n) -> (
            let deliver = Some (deliver_mods Mods.identity port n) in
            shard.seq_ops <- shard.seq_ops + 1;
            match t.mode with
            | `Crossproduct ->
                let head_pred =
                  Pred.conj
                    [
                      in_ports_pred config spec.sender;
                      spec.clause.pred;
                      Pred.dst_mac g.vmac;
                    ]
                in
                let head =
                  Policy.seq
                    [ Policy.filter head_pred; Policy.modify spec.clause.mods ]
                in
                let pipeline =
                  compiled_pipeline t shard config via ~default_deliver:deliver
                in
                ( keep_forwards (Classifier.seq (Classifier.compile head) pipeline),
                  [] )
            | `Fdd ->
                (* The group-independent body (clause head composed with
                   the via pipeline) is built and extracted once per run;
                   the group's share is the VMAC slice of that
                   classifier.  Restricting the input pattern commutes
                   with the filter inside the diagram, so this is
                   per-packet identical to composing the VMAC into the
                   head. *)
                let body_cls, fresh =
                  match shared_find t t.shared_bodies (spec.spec_id, n) with
                  | Some c ->
                      shard.memo_hits <- shard.memo_hits + 1;
                      (c, [])
                  | None ->
                      let body =
                        time_build shard (fun () ->
                            let pipeline =
                              pipeline_fdd t shard config via
                                ~default_deliver:deliver
                            in
                            Fdd.seq shard.fdd
                              (spec_head_fdd t shard config spec)
                              pipeline)
                      in
                      let c, fresh = extract_cached t shard body in
                      shared_put t t.shared_bodies (spec.spec_id, n) c;
                      (c, fresh)
                in
                ( keep_forwards
                    (Classifier.restrict (Pattern.make ~dst_mac:g.vmac ())
                       body_cls),
                  fresh )))
    | None -> ([], [])

(* Rules for outbound clauses that do not target a peer (Drop, Default
   with a rewrite, or a forward to the sender's own port).  These match
   on the clause predicate directly rather than on a VMAC. *)
let clause_direct_rules t shard config (spec : ospec) =
  let sender = spec.sender in
  let sender_ports = Config.switch_ports_of config sender.asn in
  if sender_ports = [] then ([], [])
  else
    let head_pred = Pred.and_ (in_ports_pred config sender) spec.clause.pred in
    let action =
      match spec.clause.target with
      | Ppolicy.Drop ->
          Some
            (Policy.modify
               (Mods.then_ spec.clause.mods (Mods.make ~port:blackhole_port ())))
      | Ppolicy.Phys k ->
          let port = Participant.port sender k in
          let n = Config.switch_port config sender.asn k in
          Some (Policy.modify (deliver_mods spec.clause.mods port n))
      | Ppolicy.Default -> (
          match resolve_default config ~receiver:sender.asn spec.clause.mods with
          | Some m -> Some (Policy.modify m)
          | None -> None)
      | Ppolicy.Redirect mbox ->
          Some (Policy.modify (redirect_mods config spec.clause.mods mbox))
      | Ppolicy.Peer _ -> None
    in
    match action with
    | None -> ([], [])
    | Some act -> (
        shard.seq_ops <- shard.seq_ops + 1;
        let pol = Policy.seq [ Policy.filter head_pred; act ] in
        match t.mode with
        | `Crossproduct -> (keep_forwards (Classifier.compile pol), [])
        | `Fdd ->
            let d = time_build shard (fun () -> Fdd.of_policy shard.fdd pol) in
            ( keep_forwards (time_extract shard (fun () -> Fdd.to_classifier d)),
              [ d ] ))

(* Default-forwarding rules for one group: traffic tagged with the
   group's VMAC runs through the next-hop participant's inbound pipeline
   (so inbound traffic engineering applies to default traffic too).

   When participants disagree on the best next hop, minority variants are
   pinned to their senders' in-ports and installed above one unpinned
   rule block for the most common variant — so a dual-announced prefix
   costs a couple of extra rules, not one rule per participant.  Variants
   whose senders cannot emit tagged traffic at all (no resolvable next
   hop and no originator pipeline) are dropped outright. *)
let group_default_rules t shard config (g : group) ~originator =
  (* [patterns] is [pred] split into disjoint patterns (one per in-port
     variant), so the FDD path can slice the owner's extracted pipeline
     instead of re-walking its diagram per group. *)
  let with_pipeline pred patterns owner ~deliver ~dport =
    shard.seq_ops <- shard.seq_ops + 1;
    match t.mode with
    | `Crossproduct ->
        let pipeline =
          compiled_pipeline t shard config owner ~default_deliver:deliver
        in
        ( keep_forwards (Classifier.seq (Classifier.compile_pred pred) pipeline),
          [] )
    | `Fdd ->
        let pipe_cls, fresh =
          shared_pipeline_cls t shard config owner ~default_deliver:deliver
            ~dport
        in
        ( List.concat_map
            (fun pat -> keep_forwards (Classifier.restrict pat pipe_cls))
            patterns,
          fresh )
  in
  let block_for pred patterns nh_opt =
    match nh_opt with
    | Some nh -> (
        match Config.port_of_next_hop config nh with
        | None -> None
        | Some (owner, port, n) ->
            Some
              (with_pipeline pred patterns owner
                 ~deliver:(Some (deliver_mods Mods.identity port n))
                 ~dport:(Some n)))
    | None -> (
        (* No next hop: SDX-originated prefixes terminate at the
           originator's inbound pipeline (wide-area load balancing). *)
        match originator with
        | None -> None
        | Some owner ->
            Some (with_pipeline pred patterns owner ~deliver:None ~dport:None))
  in
  let vmac_pred = Pred.dst_mac g.vmac in
  let emitting =
    List.filter
      (fun (nh_opt, _) ->
        match nh_opt with
        | Some nh -> Option.is_some (Config.port_of_next_hop config nh)
        | None -> Option.is_some originator)
      g.default_variants
  in
  match
    List.sort
      (fun (_, r1) (_, r2) -> Int.compare (List.length r2) (List.length r1))
      emitting
  with
  | [] -> ([], [])
  | (majority_nh, _) :: minorities ->
      let minority_blocks =
        List.filter_map
          (fun (nh_opt, receivers) ->
            let ports =
              List.concat_map
                (fun asn -> Config.switch_ports_of config asn)
                receivers
            in
            if ports = [] then None
            else
              let pred = Pred.and_ (Pred.any_of_ports ports) vmac_pred in
              let patterns =
                List.map (fun n -> Pattern.make ~port:n ~dst_mac:g.vmac ()) ports
              in
              block_for pred patterns nh_opt)
          minorities
      in
      let majority_blocks =
        match block_for vmac_pred [ Pattern.make ~dst_mac:g.vmac () ] majority_nh with
        | Some b -> [ b ]
        | None -> []
      in
      let blocks = minority_blocks @ majority_blocks in
      (List.concat_map fst blocks, List.concat_map snd blocks)

(* MAC-learning rules for default-only (ungrouped) prefixes: the route
   server leaves their next hop untouched, so packets arrive with the
   real next-hop interface MAC; forward them on that interface's port
   through the owner's inbound pipeline. *)
let participant_untagged_rules t shard config (p : Participant.t) =
  let per_port (port : Participant.port) =
    let n = Config.switch_port config p.asn port.index in
    let deliver = Some (deliver_mods Mods.identity port n) in
    shard.seq_ops <- shard.seq_ops + 1;
    match t.mode with
    | `Crossproduct ->
        let pipeline =
          compiled_pipeline t shard config p ~default_deliver:deliver
        in
        ( keep_forwards
            (Classifier.seq
               (Classifier.compile_pred (Pred.dst_mac port.mac))
               pipeline),
          [] )
    | `Fdd ->
        let pipe_cls, fresh =
          shared_pipeline_cls t shard config p ~default_deliver:deliver
            ~dport:(Some n)
        in
        ( keep_forwards
            (Classifier.restrict (Pattern.make ~dst_mac:port.mac ()) pipe_cls),
          fresh )
  in
  let blocks = List.map per_port p.ports in
  (List.concat_map fst blocks, List.concat_map snd blocks)

(* ------------------------------------------------------------------ *)
(* Collecting outbound specs and originated prefixes.                  *)

let collect_ospecs config =
  let server = Config.server config in
  let next_id = ref 0 in
  let fresh_id () =
    let id = !next_id in
    incr next_id;
    id
  in
  List.concat_map
    (fun (sender : Participant.t) ->
      List.map
        (fun (clause : Ppolicy.clause) ->
          let restriction = dst_restriction clause.pred in
          match clause.target with
          | Ppolicy.Peer via ->
              {
                spec_id = fresh_id ();
                sender;
                clause;
                via = Some via;
                restriction;
                prefix_set =
                  lazy
                    (restrict_set restriction
                       (Prefix.Set.of_list
                          (Route_server.reachable_prefixes server
                             ~receiver:sender.asn ~via)));
              }
          | Ppolicy.Drop | Ppolicy.Default | Ppolicy.Phys _ | Ppolicy.Redirect _ ->
              (* These clauses compile to rules matching the predicate
                 directly rather than a VMAC tag, so they impose no
                 prefix-group structure. *)
              {
                spec_id = fresh_id ();
                sender;
                clause;
                via = None;
                restriction;
                prefix_set = lazy Prefix.Set.empty;
              })
        sender.outbound)
    (Config.participants config)

let originated_sets config =
  List.filter_map
    (fun (p : Participant.t) ->
      match p.originated with
      | [] -> None
      | prefixes -> Some (p, Prefix.Set.of_list prefixes))
    (Config.participants config)

let originator_of config prefix =
  List.find_opt
    (fun (p : Participant.t) -> List.exists (Prefix.equal prefix) p.originated)
    (Config.participants config)

(* ------------------------------------------------------------------ *)
(* Group computation.                                                  *)

(* Groups from a deterministic partition: cells arrive sorted by their
   smallest member with members in prefix order, so positional ids and
   [Vnh.fresh] draws land identically however the partition was
   computed. *)
let groups_of_keyed_parts keys vnh_alloc parts =
  List.mapi
    (fun id (key, prefixes) ->
      let vnh, vmac = Vnh.fresh vnh_alloc in
      { id; vnh; vmac; prefixes; default_variants = Default_keys.variants keys key })
    parts

let groups_of_parts keys vnh_alloc parts =
  groups_of_keyed_parts keys vnh_alloc
    (List.map
       (fun prefixes ->
         (Default_keys.key_of_prefix keys (List.hd prefixes), prefixes))
       parts)

(* The pre-ISSUE-9 grouping, kept verbatim as the correctness oracle
   (same role [compile_crossproduct] plays for composition): per-spec
   reachability sets materialized eagerly, then the pairwise-signature
   [Fec] partition. *)
let compute_groups_naive config vnh_alloc ospecs =
  let t_reach = Unix.gettimeofday () in
  let keys = Default_keys.create config in
  let origin_sets = List.map snd (originated_sets config) in
  let sets = List.map (fun s -> Lazy.force s.prefix_set) ospecs @ origin_sets in
  let reachability_s = Unix.gettimeofday () -. t_reach in
  let t_group = Unix.gettimeofday () in
  let parts =
    Fec.partition ~sets ~default_key:(Default_keys.key_of_prefix keys)
  in
  let groups = groups_of_parts keys vnh_alloc parts in
  (List.map (fun g -> (g, None)) groups, reachability_s,
   Unix.gettimeofday () -. t_group)

(* The naive partition alone (no VNH draws, no group records) — the
   oracle the bench compares the interned pipeline's output against,
   and the timing baseline for its speedup figure. *)
let group_partition_naive config =
  let ospecs = collect_ospecs config in
  let keys = Default_keys.create config in
  let origin_sets = List.map snd (originated_sets config) in
  let sets = List.map (fun s -> Lazy.force s.prefix_set) ospecs @ origin_sets in
  Fec.partition ~sets ~default_key:(Default_keys.key_of_prefix keys)

(* --- The sub-linear pipeline (ISSUE 9). ---------------------------- *)

(* Reachability pass: sparse export vectors, produced per id band — for
   each via-spec id (and, in the band above [nspecs], each origin set),
   the list of prefixes it covers.  One job per diversion target scans
   that target's Adj-RIB-in ONCE for all of its unrestricted specs (the
   old path materialized a [Prefix.Set.t] per spec, re-running the
   export checks per spec x route); destination-restricted specs
   resolve through the prefix trie instead, so a clause covering a
   handful of prefixes never pays a million-route scan.  Jobs only read
   route-server state, so they fan out through [run]; each job conses
   straight onto its own per-spec member lists (no per-route hashing),
   and since every spec id belongs to exactly one via, the merge is a
   plain array fill — independent of job completion order. *)
let export_vectors config ospecs ~run =
  let server = Config.server config in
  let trivial_filter = Route_server.trivial_route_filter server in
  let by_via : (Asn.t, ospec list ref) Hashtbl.t = Hashtbl.create 64 in
  let via_order = ref [] in
  List.iter
    (fun spec ->
      match spec.via with
      | None -> ()
      | Some via -> (
          match Hashtbl.find_opt by_via via with
          | Some l -> l := spec :: !l
          | None ->
              Hashtbl.replace by_via via (ref [ spec ]);
              via_order := via :: !via_order))
    ospecs;
  let covers (spec : ospec) (route : Route.t) =
    Route_server.loop_free route ~receiver:spec.sender.asn
    && (trivial_filter
       || Route_server.route_filter_passes server route
            ~receiver:spec.sender.asn)
  in
  let via_job via () =
    (* Export policy is a property of the (advertiser, receiver) pair,
       not of individual routes: specs the via exports nothing to
       contribute no bits at all. *)
    let specs =
      List.filter
        (fun s ->
          Route_server.exports_to server ~advertiser:via ~receiver:s.sender.asn)
        (List.rev !(Hashtbl.find by_via via))
    in
    let restricted, unrestricted =
      List.partition (fun s -> s.restriction <> None) specs
    in
    let unrestricted = List.map (fun s -> (s, ref [])) unrestricted in
    if unrestricted <> [] then
      Route_server.fold_adj_in server ~via
        (fun prefix route () ->
          List.iter
            (fun (spec, members) ->
              if covers spec route then members := prefix :: !members)
            unrestricted)
        ();
    List.rev_append
      (List.rev_map (fun (s, members) -> (s.spec_id, !members)) unrestricted)
      (List.map
         (fun spec ->
           let seen = Hashtbl.create 64 in
           let members = ref [] in
           List.iter
             (fun allowed ->
               Route_server.fold_announced_overlapping server allowed
                 (fun prefix () ->
                   if not (Hashtbl.mem seen prefix) then begin
                     Hashtbl.add seen prefix ();
                     match
                       List.find_opt
                         (fun (r : Route.t) -> Asn.equal r.learned_from via)
                         (Route_server.candidates server prefix)
                     with
                     | Some route ->
                         if covers spec route then members := prefix :: !members
                     | None -> ()
                   end)
                 ())
             (Option.get spec.restriction);
           (spec.spec_id, !members))
         restricted)
  in
  let frags = run (List.rev_map via_job !via_order) in
  let origin = originated_sets config in
  let nspecs = List.length ospecs in
  let per_id = Array.make (nspecs + List.length origin) [] in
  List.iter (List.iter (fun (i, members) -> per_id.(i) <- members)) frags;
  List.iteri
    (fun j (_, set) ->
      per_id.(nspecs + j) <- Prefix.Set.fold (fun p acc -> p :: acc) set [])
    origin;
  per_id

(* Group pass: intern each prefix's set-bit list — equal vectors
   collapse onto one canonical class id in O(set bits), replacing the
   pairwise-signature hashing of [Fec.partition] (whose [int list] keys
   degrade badly once vectors grow past the polymorphic hash's
   traversal bound).  Per-prefix lists are accumulated by scanning the
   id bands in ascending order, so every list arrives duplicate-free
   and descending-sorted and the interner probes it as-is: no
   per-prefix sort, and the packed bitset is materialized once per
   distinct class, not per prefix.  Cells are keyed by (class id,
   default key id) and re-sorted by smallest member, so the output is
   structurally identical to the naive partition.  [grouped] carries
   each class's full set-bit list (via band and origin band): [compile]
   seeds the incremental class table with it and band-filters the
   per-spec fan-out view. *)
let compute_groups_interned config vnh_alloc ospecs ~run =
  let t_reach = Unix.gettimeofday () in
  let per_id = export_vectors config ospecs ~run in
  let reachability_s = Unix.gettimeofday () -. t_reach in
  let t_group = Unix.gettimeofday () in
  let keys = Default_keys.create config in
  let width = Array.length per_id in
  (* Pivot the id-major fragment lists to prefix-major with one packed
     int sort instead of a prefix-keyed hashtable: each (prefix, id)
     pair packs into 62 bits — network 32, mask length 6, id 24 — so
     sorting the flat array orders pairs by (prefix, id) and every
     prefix's export vector is a contiguous run with ascending ids.
     The scan then conses each run backwards (descending ids, the
     interner's rev-sorted probe shape) and touches one cache line per
     pair where the hashtable pivot chased a bucket pointer per pair. *)
  let npairs =
    Array.fold_left (fun n members -> n + List.length members) 0 per_id
  in
  let packed = Array.make (max npairs 1) 0 in
  profile_stage "grp.pivot" (fun () ->
      let pos = ref 0 in
      Array.iteri
        (fun i members ->
          List.iter
            (fun (p : Prefix.t) ->
              let pkey = (Ipv4.to_int p.Prefix.network lsl 6) lor p.Prefix.len in
              packed.(!pos) <- (pkey lsl 24) lor i;
              incr pos)
            members)
        per_id;
      Array.sort (fun (a : int) b -> Int.compare a b) packed);
  let interner = Bitset.Interner.create ~expected:((npairs / 16) + 16) () in
  let cells : (int * int, Prefix.t list ref) Hashtbl.t = Hashtbl.create 4096 in
  let ids_of_class : (int, int list) Hashtbl.t = Hashtbl.create 1024 in
  profile_stage "grp.scan" (fun () ->
      let flush lo hi =
        let pkey = packed.(lo) lsr 24 in
        let prefix = Prefix.make (Ipv4.of_int (pkey lsr 6)) (pkey land 63) in
        let rev_ids = ref [] in
        for k = lo to hi - 1 do
          rev_ids := (packed.(k) land 0xFFFFFF) :: !rev_ids
        done;
        let cls = Bitset.Interner.intern_rev_sorted interner ~width !rev_ids in
        if not (Hashtbl.mem ids_of_class cls.Bitset.Interner.id) then
          Hashtbl.add ids_of_class cls.Bitset.Interner.id
            cls.Bitset.Interner.ids;
        let key =
          (cls.Bitset.Interner.id, Default_keys.key_of_prefix keys prefix)
        in
        match Hashtbl.find_opt cells key with
        | Some members -> members := prefix :: !members
        | None -> Hashtbl.replace cells key (ref [ prefix ])
      in
      if npairs > 0 then begin
        let run_start = ref 0 in
        for k = 1 to npairs do
          if k = npairs || packed.(k) lsr 24 <> packed.(!run_start) lsr 24
          then begin
            flush !run_start k;
            run_start := k
          end
        done
      end);
  let parts =
    profile_stage "grp.parts" @@ fun () ->
    List.sort
      (fun (_, _, a) (_, _, b) ->
        match (a, b) with
        | p :: _, q :: _ -> Prefix.compare p q
        | _ -> 0)
      (Hashtbl.fold
         (fun (cls_id, key_id) members acc ->
           ( Hashtbl.find ids_of_class cls_id,
             key_id,
             List.sort Prefix.compare !members )
           :: acc)
         cells [])
  in
  let groups =
    profile_stage "grp.mint" @@ fun () ->
    groups_of_keyed_parts keys vnh_alloc
      (List.map (fun (_, key_id, members) -> (key_id, members)) parts)
  in
  let grouped = List.map2 (fun (ids, _, _) g -> (g, Some ids)) parts groups in
  (grouped, reachability_s, Unix.gettimeofday () -. t_group)

(* ------------------------------------------------------------------ *)
(* The optimized pipeline.                                             *)

let drop_all_rule = Classifier.drop_all

(* The optimized classifier is a concatenation of independent rule
   blocks — one per (via-clause, group) pair, per direct clause, per
   group default, per participant's untagged layer.  Each block is a
   pure function of the (read-only during compilation) config and route
   server state, so the blocks are built as a job list handed to [run]
   (sequential or a domain pool) and concatenated in the original
   order: the output is structurally identical either way. *)
let build_optimized t config ~run =
  let groups_by_spec spec =
    match t.spec_groups with
    | Some tbl -> Option.value (Hashtbl.find_opt tbl spec.spec_id) ~default:[]
    | None ->
        (* Naive grouping left no class signatures behind; fall back to
           the eager per-spec reachability sets. *)
        List.filter
          (fun g ->
            Prefix.Set.mem (List.hd g.prefixes) (Lazy.force spec.prefix_set))
          t.groups_
  in
  let sender_jobs =
    profile_stage "senderjobs" @@ fun () ->
    List.concat_map
      (fun spec ->
        match spec.via with
        | Some via ->
            List.map
              (fun g ->
                ( Outbound
                    { sender = spec.sender.asn; via = Some via; group = Some g.id },
                  fun () -> clause_group_rules t (shard_of t) config spec g ))
              (groups_by_spec spec)
        | None ->
            [
              ( Outbound { sender = spec.sender.asn; via = None; group = None },
                fun () -> clause_direct_rules t (shard_of t) config spec );
            ])
      t.ospecs
  in
  let default_jobs =
    List.map
      (fun g ->
        ( Group_default { group = g.id },
          fun () ->
            let originator = originator_of config (List.hd g.prefixes) in
            group_default_rules t (shard_of t) config g ~originator ))
      t.groups_
  in
  let untagged_jobs =
    List.map
      (fun (p : Participant.t) ->
        ( Untagged { owner = p.asn },
          fun () -> participant_untagged_rules t (shard_of t) config p ))
      (Config.participants config)
  in
  let jobs =
    profile_stage "joblist" (fun () ->
        sender_jobs @ default_jobs @ untagged_jobs)
  in
  (if Lazy.force profile_on then
     Printf.eprintf "[profile] jobs: sender=%d default=%d untagged=%d\n%!"
       (List.length sender_jobs) (List.length default_jobs)
       (List.length untagged_jobs));
  (* The composition stage — fanning the rule-generation jobs out and
     merging shard diagrams back — is timed on its own: it is the stage
     the FDD core replaces, so both engines report a comparable
     [compose_s] (see the compile bench). *)
  let compose_t0 = Unix.gettimeofday () in
  let results = profile_stage "run" (fun () -> run (List.map snd jobs)) in
  let blocks = List.map fst results in
  (* Shard-merge pass: hash-cons every block diagram (built in whichever
     shard manager its job's domain owned) into the main manager, so the
     post-merge node/table metrics describe one shared population. *)
  let merge_t0 = Unix.gettimeofday () in
  List.iter
    (fun (_, fdds) ->
      List.iter (fun d -> ignore (Fdd.import t.main_shard.fdd d)) fdds)
    results;
  let merge_s = Unix.gettimeofday () -. merge_t0 in
  let compose_s = Unix.gettimeofday () -. compose_t0 in
  let provs =
    List.map2 (fun (p, _) rules -> (p, List.length rules)) jobs blocks
    @ [ (Catch_all, List.length drop_all_rule) ]
  in
  (List.concat blocks @ drop_all_rule, provs, merge_s, compose_s)

(* ------------------------------------------------------------------ *)
(* The naive pipeline (ablation): literal Pyretic-style composition.   *)

let build_naive t config =
  let default_ast =
    let group_terms =
      List.concat_map
        (fun g ->
          let originator = originator_of config (List.hd g.prefixes) in
          List.filter_map
            (fun (nh_opt, receivers) ->
              let pipeline =
                match nh_opt with
                | Some nh -> (
                    match Config.port_of_next_hop config nh with
                    | None -> None
                    | Some (owner, port, n) ->
                        Some
                          (inbound_pipeline_ast config owner
                             ~default_deliver:
                               (Some (deliver_mods Mods.identity port n))))
                | None ->
                    Option.map
                      (fun owner ->
                        inbound_pipeline_ast config owner ~default_deliver:None)
                      originator
              in
              (* Each variant only applies to the senders whose best route
                 it is — without the pin, a packet would match every
                 variant's term and be multicast. *)
              let ports =
                List.concat_map
                  (fun asn -> Config.switch_ports_of config asn)
                  receivers
              in
              Option.map
                (fun pl ->
                  Policy.seq
                    [
                      Policy.filter
                        (Pred.and_ (Pred.any_of_ports ports) (Pred.dst_mac g.vmac));
                      pl;
                    ])
                pipeline)
            g.default_variants)
        t.groups_
    in
    let port_terms =
      List.concat_map
        (fun (p : Participant.t) ->
          List.map
            (fun (port : Participant.port) ->
              let n = Config.switch_port config p.asn port.index in
              Policy.seq
                [
                  Policy.filter (Pred.dst_mac port.mac);
                  inbound_pipeline_ast config p
                    ~default_deliver:(Some (deliver_mods Mods.identity port n));
                ])
            p.ports)
        (Config.participants config)
    in
    Policy.union (group_terms @ port_terms)
  in
  let sender_ast (sender : Participant.t) =
    let peer_clause_action spec via_asn g =
      let via = Config.participant config via_asn in
      match delivery_port_for_via config via g.prefixes with
      | None -> Policy.drop
      | Some (port, n) ->
          Policy.seq
            [
              Policy.modify spec.clause.mods;
              inbound_pipeline_ast config via
                ~default_deliver:(Some (deliver_mods Mods.identity port n));
            ]
    in
    (* Direct clauses (drop, own port, rewrite-and-default, middlebox
       steering) match the predicate itself, with no VMAC involved. *)
    let direct_clause_action spec =
      match spec.clause.target with
      | Ppolicy.Drop ->
          Policy.modify
            (Mods.then_ spec.clause.mods (Mods.make ~port:blackhole_port ()))
      | Ppolicy.Phys k ->
          let port = Participant.port sender k in
          let n = Config.switch_port config sender.asn k in
          Policy.modify (deliver_mods spec.clause.mods port n)
      | Ppolicy.Redirect mbox ->
          Policy.modify (redirect_mods config spec.clause.mods mbox)
      | Ppolicy.Default -> (
          match resolve_default config ~receiver:sender.asn spec.clause.mods with
          | Some m -> Policy.modify m
          | None ->
              Policy.modify
                (Mods.then_ spec.clause.mods (Mods.make ~port:blackhole_port ())))
      | Ppolicy.Peer _ -> Policy.drop
    in
    let specs =
      List.filter (fun s -> Asn.equal s.sender.Participant.asn sender.asn) t.ospecs
    in
    let chain =
      List.fold_right
        (fun spec acc ->
          match spec.via with
          | Some via_asn ->
              let groups =
                List.filter
                  (fun g ->
                    Prefix.Set.mem (List.hd g.prefixes)
                      (Lazy.force spec.prefix_set))
                  t.groups_
              in
              List.fold_right
                (fun g acc ->
                  Policy.if_
                    (Pred.and_ spec.clause.pred (Pred.dst_mac g.vmac))
                    (peer_clause_action spec via_asn g)
                    acc)
                groups acc
          | None ->
              Policy.if_ spec.clause.pred (direct_clause_action spec) acc)
        specs default_ast
    in
    Policy.seq [ Policy.filter (in_ports_pred config sender); chain ]
  in
  let terms =
    List.filter_map
      (fun (p : Participant.t) ->
        if Participant.is_remote p then None else Some (sender_ast p))
      (Config.participants config)
  in
  Classifier.compile (Policy.union terms)

(* ------------------------------------------------------------------ *)

let register_arp t config =
  List.iter (fun g -> Sdx_arp.Responder.register t.arp_ g.vnh g.vmac) t.groups_;
  List.iter
    (fun (p : Participant.t) ->
      List.iter
        (fun (port : Participant.port) ->
          Sdx_arp.Responder.register t.arp_ port.ip port.mac)
        p.ports)
    (Config.participants config)

let compile ?(optimized = true) ?(memoize = true) ?(ir = `Fdd)
    ?(grouping = `Interned) ?domains config vnh_alloc =
  let t0 = Unix.gettimeofday () in
  let run jobs =
    let exec pool =
      if Parallel.size pool <= 1 then List.map (fun job -> job ()) jobs
      else Parallel.map pool (fun job -> job ()) jobs
    in
    match domains with
    | Some n when n <= 1 -> List.map (fun job -> job ()) jobs
    | Some n -> Parallel.with_pool ~domains:n exec
    | None -> exec (Parallel.global ())
  in
  let ospecs = profile_stage "ospecs" (fun () -> collect_ospecs config) in
  (* Group computation allocates VNHs through [vnh_alloc] on the
     coordinating domain; only the interned pipeline's read-only
     reachability scans fan out. *)
  let grouped, reachability_s, group_s =
    profile_stage "groups" (fun () ->
        match grouping with
        | `Interned -> compute_groups_interned config vnh_alloc ospecs ~run
        | `Naive -> compute_groups_naive config vnh_alloc ospecs)
  in
  let groups_ = List.map fst grouped in
  let by_prefix = Hashtbl.create 1024 in
  List.iter
    (fun g -> List.iter (fun p -> Hashtbl.replace by_prefix p g) g.prefixes)
    groups_;
  (* Interned grouping leaves its class signatures behind: the covering
     groups per via-spec (what [build_optimized] fans out over — the
     origin band is filtered off, origin bits name no clause), and the
     canonical class table the incremental fast path migrates into,
     keyed on the full set-bit list plus default fingerprint. *)
  let nspecs = List.length ospecs in
  let spec_groups =
    match grouping with
    | `Naive -> None
    | `Interned ->
        let tbl = Hashtbl.create 256 in
        List.iter
          (fun (g, mem) ->
            List.iter
              (fun i ->
                if i < nspecs then
                  Hashtbl.replace tbl i
                    (g :: Option.value (Hashtbl.find_opt tbl i) ~default:[]))
              (Option.value mem ~default:[]))
          (List.rev grouped);
        Some tbl
  in
  let class_intern = Class_tbl.create 1024 in
  (match grouping with
  | `Naive -> ()
  | `Interned ->
      let server = Config.server config in
      List.iter
        (fun (g, mem) ->
          (* Every member of a cell shares one fingerprint id, so the
             head's fingerprint is the class's. *)
          let head = List.hd g.prefixes in
          let fp =
            List.map
              (fun (r : Route.t) -> (r.learned_from, r.next_hop))
              (Decision.sort (Route_server.candidates server head))
          in
          Class_tbl.replace class_intern (Option.value mem ~default:[], fp) g)
        grouped);
  let epoch = Sync.Atomic.fetch_and_add epoch_counter 1 in
  let main_shard = fresh_shard () in
  (* Seed the coordinating domain's slot so jobs the submitter drains
     itself land in [main_shard], and so the fast path's later use of
     [main_shard] agrees with what this run's DLS says. *)
  Parallel.Local.set shard_slot ~epoch main_shard;
  let t =
    {
      classifier = [];
      groups_;
      by_prefix;
      arp_ = Sdx_arp.Responder.create ();
      stats_ = zero_stats;
      ospecs;
      memoize;
      mode = ir;
      epoch;
      main_shard;
      shared_bodies = Hashtbl.create 256;
      shared_pipes = Hashtbl.create 256;
      shared_lock = Sync.Mutex.create ();
      shards_ = [ main_shard ];
      shards_lock = Sync.Mutex.create ();
      next_group_id = List.length groups_;
      blocks_ = [];
      batch_groups_ = [];
      retired_groups_ = [];
      spec_groups;
      class_intern;
    }
  in
  let classifier, blocks, merge_s, compose_s =
    if optimized then profile_stage "blocks" (fun () -> build_optimized t config ~run)
    else begin
      let t0 = Unix.gettimeofday () in
      let c = build_naive t config in
      let dt = Unix.gettimeofday () -. t0 in
      (c, [ (Unattributed, Classifier.rule_count c) ], 0., dt)
    end
  in
  register_arp t config;
  let elapsed = Unix.gettimeofday () -. t0 in
  let t = { t with classifier } in
  t.blocks_ <- blocks;
  let shards = t.shards_ in
  let sum f = List.fold_left (fun n s -> n + f s) 0 shards in
  let sum_f f = List.fold_left (fun x s -> x +. f s) 0. shards in
  let main_fdd = Fdd.stats main_shard.fdd in
  let stats =
    {
      group_count = List.length groups_;
      rule_count = Classifier.rule_count classifier;
      elapsed_s = elapsed;
      compose_s;
      reachability_s;
      group_s;
      seq_ops = sum (fun s -> s.seq_ops);
      memo_hits = sum (fun s -> s.memo_hits);
      fdd_build_s = sum_f (fun s -> s.build_s);
      fdd_merge_s = merge_s;
      fdd_extract_s = sum_f (fun s -> s.extract_s);
      fdd_nodes = main_fdd.Fdd.nodes;
      fdd_memo_hits = sum (fun s -> (Fdd.stats s.fdd).Fdd.memo_hits);
      fdd_table_size = main_fdd.Fdd.unique_table_size;
    }
  in
  t.stats_ <- stats;
  Sdx_obs.Registry.Counter.incr Obs.compiles;
  Sdx_obs.Registry.Histogram.observe Obs.compile_seconds elapsed;
  Sdx_obs.Registry.Gauge.set_int Obs.rules stats.rule_count;
  Sdx_obs.Registry.Gauge.set_int Obs.groups stats.group_count;
  Sdx_obs.Registry.Counter.add Obs.seq_ops stats.seq_ops;
  Sdx_obs.Registry.Counter.add Obs.memo_hits stats.memo_hits;
  Sdx_obs.Registry.Gauge.set_int Obs.fdd_nodes stats.fdd_nodes;
  Sdx_obs.Registry.Counter.add Obs.fdd_memo_hits stats.fdd_memo_hits;
  Sdx_obs.Registry.Gauge.set_int Obs.fdd_table_size stats.fdd_table_size;
  Sdx_obs.Trace.record ~name:"compile" ~start_s:t0 ~dur_s:elapsed
    ~attrs:
      [
        ("rules", string_of_int stats.rule_count);
        ("groups", string_of_int stats.group_count);
        ("mode", if optimized then "optimized" else "naive");
        ("ir", match ir with `Fdd -> "fdd" | `Crossproduct -> "crossproduct");
      ]
    ();
  t

(* The pre-FDD composition pipeline, kept verbatim as the correctness
   oracle: same blocks, same job structure, but every composition is a
   classifier cross-product. *)
let compile_crossproduct ?optimized ?memoize ?grouping ?domains config vnh_alloc
    =
  compile ?optimized ?memoize ~ir:`Crossproduct ?grouping ?domains config
    vnh_alloc

let estimate_with_group_cost t cost_of_group =
  let cost_of_vmac = Hashtbl.create 64 in
  List.iter
    (fun g -> Hashtbl.replace cost_of_vmac g.vmac (cost_of_group g))
    t.groups_;
  List.fold_left
    (fun n (r : Classifier.rule) ->
      match r.pattern.Pattern.dst_mac with
      | Some m -> (
          match Hashtbl.find_opt cost_of_vmac m with
          | Some cost -> n + cost
          | None -> n + 1)
      | None -> n + 1)
    0 t.classifier

let unaggregated_rule_estimate t =
  estimate_with_group_cost t (fun g -> List.length g.prefixes)

let aggregated_rule_estimate t =
  estimate_with_group_cost t (fun g -> List.length (Aggregate.minimize g.prefixes))

let in_switch_tagging_table t config =
  let keys = Default_keys.create config in
  let server = Config.server config in
  let tag_rule ?port prefix mac =
    {
      Classifier.pattern = Pattern.make ?port ~dst_ip:prefix ();
      action = [ Mods.make ~dst_mac:mac () ];
    }
  in
  let rules_for prefix =
    match Hashtbl.find_opt t.by_prefix prefix with
    | Some g -> [ tag_rule prefix g.vmac ]
    | None -> (
        (* Ungrouped prefixes carry the chosen next hop's real MAC; when
           senders disagree, minority variants are pinned to their
           in-ports under one unpinned majority rule, as in the default
           layer. *)
        let resolvable =
          List.filter_map
            (fun (nh_opt, receivers) ->
              match nh_opt with
              | Some nh -> (
                  match Config.port_of_next_hop config nh with
                  | Some (_, port, _) -> Some (port.Participant.mac, receivers)
                  | None -> None)
              | None -> None)
            (Default_keys.variants_of_prefix keys prefix)
        in
        match
          List.sort
            (fun (_, r1) (_, r2) -> Int.compare (List.length r2) (List.length r1))
            resolvable
        with
        | [] -> []
        | (majority_mac, _) :: minorities ->
            List.concat_map
              (fun (mac, receivers) ->
                List.concat_map
                  (fun asn ->
                    List.map
                      (fun port -> tag_rule ~port prefix mac)
                      (Config.switch_ports_of config asn))
                  receivers)
              minorities
            @ [ tag_rule prefix majority_mac ])
  in
  let tagged = List.concat_map rules_for (Route_server.all_prefixes server) in
  (* Longest prefix first, so overlapping announcements resolve like a
     router's LPM lookup; untagged traffic passes through unchanged. *)
  let by_specificity =
    List.stable_sort
      (fun (a : Classifier.rule) (b : Classifier.rule) ->
        match (a.pattern.Pattern.dst_ip, b.pattern.Pattern.dst_ip) with
        | Some pa, Some pb -> Int.compare (Prefix.length pb) (Prefix.length pa)
        | _ -> 0)
      tagged
  in
  by_specificity @ [ { Classifier.pattern = Pattern.all; action = [ Mods.identity ] } ]

let announcement t config ~receiver prefix =
  match Route_server.best (Config.server config) ~receiver prefix with
  | None -> None
  | Some route -> (
      match group_of_prefix t prefix with
      | Some g -> Some (Route.with_next_hop g.vnh route)
      | None -> Some route)

let fold_announcements t config ~receiver f init =
  Route_server.fold_best (Config.server config) ~receiver
    (fun prefix route acc ->
      let route =
        match group_of_prefix t prefix with
        | Some g -> Route.with_next_hop g.vnh route
        | None -> route
      in
      f prefix route acc)
    init

(* ------------------------------------------------------------------ *)
(* Incremental fast path (§4.3.2).                                     *)

type batch_delta = {
  batch_rules : Classifier.t;
  batch_groups : group list;
  batch_provenance : (provenance * int) list;
  batch_retired : int;
  batch_migrated : int;
  batch_touched_groups : int list;
  batch_elapsed_s : float;
}

(* Burst-batched fast path: one [Default_keys] instance and one pass
   over the route-server state serve the whole burst.  Duplicate
   prefixes are coalesced (only the final route state matters within a
   burst), and prefixes with the same clause membership and default
   fingerprint share one fresh VNH instead of burning one each.  A
   prefix whose signature is already interned — from the base compile or
   an earlier burst — migrates into the existing class: a [by_prefix]
   rebind and two membership splices, no VNH draw and no new rules (the
   class's VMAC-matched rules are signature-determined, so they already
   forward the migrated prefix's traffic correctly).

   The function is transactional with respect to the compiler state:
   classification is pure, and every VNH the batch needs is reserved
   before the first mutation, so an exhausted pool surfaces as
   [Error `Vnh_exhausted] with [t], the ARP responder, and the allocator
   all unchanged — the runtime then rolls forward into a full recompile
   instead of running with a half-installed burst. *)
let compile_update_batch t config vnh_alloc prefixes =
  let t0 = Unix.gettimeofday () in
  let server = Config.server config in
  (* The instance is created after the burst's updates were applied, so
     its memoized fingerprints reflect the post-update routes. *)
  let keys = Default_keys.create config in
  let seen = Hashtbl.create 16 in
  let prefixes =
    List.filter
      (fun p ->
        if Hashtbl.mem seen p then false
        else begin
          Hashtbl.add seen p ();
          true
        end)
      prefixes
  in
  (* A prefix with no remaining candidate route (and no SDX originator)
     needs no group at all: it gets unbound below so its old VNH can
     retire, instead of burning a fresh VNH on an empty rule slice —
     withdraw storms used to drain the pool exactly that way. *)
  let alive, dead =
    List.partition
      (fun p ->
        Route_server.candidates server p <> []
        || originator_of config p <> None)
      prefixes
  in
  (* Ids of the via-clauses covering [prefix], recomputed against the
     live Loc-RIBs — the same predicate the export-vector pass evaluates
     at base compile time (destination restriction, export policy, loop
     prevention, route filter) — so a route that became reachable
     through a diversion target since the last re-optimization diverts
     on the fast path exactly as a from-scratch recompile would, and a
     withdrawn one stops diverting.  [spec_id] is collection-ordered, so
     the result is ascending, matching the base class signatures. *)
  let ospec_arr = Array.of_list t.ospecs in
  let membership prefix =
    let cands = Route_server.candidates server prefix in
    List.filter_map
      (fun spec ->
        match spec.via with
        | None -> None
        | Some via ->
            let allowed =
              match spec.restriction with
              | None -> true
              | Some allowed -> List.exists (Prefix.overlaps prefix) allowed
            in
            if
              allowed
              && Route_server.exports_to server ~advertiser:via
                   ~receiver:spec.sender.asn
              && List.exists
                   (fun (r : Route.t) ->
                     Asn.equal r.learned_from via
                     && Route_server.loop_free r ~receiver:spec.sender.asn
                     && Route_server.route_filter_passes server r
                          ~receiver:spec.sender.asn)
                   cands
            then Some spec.spec_id
            else None)
      t.ospecs
  in
  let fingerprint prefix =
    List.map
      (fun (r : Route.t) -> (r.learned_from, r.next_hop))
      (Decision.sort (Route_server.candidates server prefix))
  in
  (* Origin-band ids, in the same [nspecs + j] slots the base compile's
     export-vector pass assigns: [originated_sets] iterates the static
     participant config, so the band indexing is stable across compiles
     and bursts. *)
  let nspecs = Array.length ospec_arr in
  let origin_sets = originated_sets config in
  let origin_band prefix =
    let rec go j = function
      | [] -> []
      | (_, set) :: rest ->
          if Prefix.Set.mem prefix set then (nspecs + j) :: go (j + 1) rest
          else go (j + 1) rest
    in
    go 0 origin_sets
  in
  (* Pure classification: split the burst into signature hits (rebinds
     into live classes) and fresh classes (which need VNHs).  Nothing is
     mutated until the whole burst is known to fit the VNH pool. *)
  let migrations = ref [] in
  let unchanged = ref 0 in
  let sig_tbl = Class_tbl.create 16 in
  let order = ref [] in
  List.iter
    (fun prefix ->
      let s = (membership prefix @ origin_band prefix, fingerprint prefix) in
      match Class_tbl.find_opt t.class_intern s with
      | Some g -> (
          match Hashtbl.find_opt t.by_prefix prefix with
          | Some g0 when g0.id = g.id ->
              (* Routes changed in ways the signature doesn't see (e.g.
                 an AS-path edit preserving preference order, loop
                 checks, and next hops): the owner's rules are still
                 exactly right. *)
              incr unchanged
          | _ -> migrations := (prefix, g) :: !migrations)
      | None -> (
          match Class_tbl.find_opt sig_tbl s with
          | Some members -> members := prefix :: !members
          | None ->
              let members = ref [ prefix ] in
              Class_tbl.replace sig_tbl s members;
              order := (s, members) :: !order))
    alive;
  let migrations = List.rev !migrations in
  let wanted = List.rev !order in
  (* Reserve every VNH up front; nothing has been mutated yet, so on
     exhaustion the reservations go straight back and the caller sees a
     clean failure.  Migrations reuse their class's VNH and need no
     reservation — which is why a churn pattern revisiting known classes
     stops draining the pool at all. *)
  let reserve n =
    let rec go acc n =
      if n = 0 then Ok (List.rev acc)
      else
        match Vnh.alloc vnh_alloc with
        | `Fresh p -> go (p :: acc) (n - 1)
        | `Exhausted ->
            List.iter (fun (ip, _) -> ignore (Vnh.release vnh_alloc ip)) acc;
            Error `Vnh_exhausted
    in
    go [] n
  in
  match reserve (List.length wanted) with
  | Error `Vnh_exhausted ->
      Sdx_obs.Registry.Counter.incr Obs.batch_exhausted;
      Error `Vnh_exhausted
  | Ok reserved ->
  (* From here on the batch cannot fail: mutate the bindings, then build
     the rule block.  Record the previous owner groups first so the ones
     this burst fully supersedes can retire. *)
  let prior = Hashtbl.create 16 in
  List.iter
    (fun p ->
      match Hashtbl.find_opt t.by_prefix p with
      | Some g -> Hashtbl.replace prior g.id g
      | None -> ())
    (alive @ dead);
  (* Membership lists stay truthful under churn: every prefix leaving a
     class is spliced out of its [prefixes] (and merged, sorted, into
     the target's on migration), so the checker and the build-time views
     read live membership, not a snapshot. *)
  let remove_member (g : group) p =
    g.prefixes <- List.filter (fun q -> not (Prefix.equal q p)) g.prefixes
  in
  let unbind p =
    match Hashtbl.find_opt t.by_prefix p with
    | Some g0 -> remove_member g0 p
    | None -> ()
  in
  List.iter
    (fun p ->
      unbind p;
      Hashtbl.remove t.by_prefix p)
    dead;
  List.iter
    (fun (p, (g : group)) ->
      unbind p;
      g.prefixes <- List.merge Prefix.compare [ p ] g.prefixes;
      Hashtbl.replace t.by_prefix p g)
    migrations;
  let grouped =
    List.map2
      (fun ((mem, _) as s, members) (vnh, vmac) ->
        let key_id = Default_keys.key_of_prefix keys (List.hd !members) in
        let g =
          {
            id = t.next_group_id;
            vnh;
            vmac;
            prefixes = List.sort Prefix.compare !members;
            default_variants = Default_keys.variants keys key_id;
          }
        in
        t.next_group_id <- t.next_group_id + 1;
        t.batch_groups_ <- g :: t.batch_groups_;
        Class_tbl.replace t.class_intern s g;
        List.iter
          (fun p ->
            unbind p;
            Hashtbl.replace t.by_prefix p g)
          g.prefixes;
        Sdx_arp.Responder.register t.arp_ vnh vmac;
        (g, mem))
      wanted reserved
  in
  let groups = List.map fst grouped in
  (* Retire previously-minted fast-path groups this burst left with no
     bound prefix: their rules (in older, lower-priority blocks) are
     shadowed by the new block, so the VNH goes back on the free-list
     and the ARP responder stops answering for it.  Base-compile groups
     keep their allocation until the next re-optimization, which resets
     the whole pool anyway. *)
  let fastpath_ids = Hashtbl.create 16 in
  List.iter (fun g -> Hashtbl.replace fastpath_ids g.id ()) t.batch_groups_;
  let retired =
    Hashtbl.fold
      (fun id g acc ->
        if Hashtbl.mem fastpath_ids id && g.prefixes = [] then g :: acc
        else acc)
      prior []
  in
  List.iter
    (fun (g : group) ->
      Sdx_arp.Responder.unregister t.arp_ g.vnh;
      ignore (Vnh.release vnh_alloc g.vnh))
    retired;
  (match retired with
  | [] -> ()
  | _ ->
      let retired_ids = Hashtbl.create 8 in
      List.iter (fun (g : group) -> Hashtbl.replace retired_ids g.id ()) retired;
      t.batch_groups_ <-
        List.filter (fun g -> not (Hashtbl.mem retired_ids g.id)) t.batch_groups_;
      t.retired_groups_ <- retired @ t.retired_groups_;
      (* A retired class must also leave the canonical table: its VNH is
         back on the free-list, so interning into it later would bind
         prefixes to an unregistered VMAC. *)
      let dead_keys =
        Class_tbl.fold
          (fun k (g : group) acc ->
            if Hashtbl.mem retired_ids g.id then k :: acc else acc)
          t.class_intern []
      in
      List.iter (fun k -> Class_tbl.remove t.class_intern k) dead_keys;
      Sdx_obs.Registry.Counter.add Obs.vnhs_retired (List.length retired);
      Sdx_obs.Registry.Gauge.set_int Obs.retired_tombstones
        (List.length t.retired_groups_));
  (* The group's membership was just computed against the live Loc-RIBs
     (export policy, loop prevention, and route filter — the same
     predicate the base compiler applies), so every listed clause is
     known to divert every member: a withdrawal immediately stops a
     diversion and a new announcement immediately starts one, exactly as
     a from-scratch recompile would (§5.2's "data plane stays in sync
     with BGP"). *)
  (* The fast path runs on the coordinating domain and always composes
     in [t.main_shard]: its pipeline caches (classifier and FDD alike)
     persist across bursts, which is what keeps per-burst latency flat.
     It must not consult the DLS slot — a later compile's epoch would
     have evicted this run's shard. *)
  let sender_blocks_for g mem =
    List.filter_map
      (fun i ->
        (* origin-band ids name no via-clause: nothing to build. *)
        if i >= nspecs then None
        else
          let spec = ospec_arr.(i) in
          match spec.via with
          | Some via ->
              Some
                ( Outbound
                    { sender = spec.sender.asn; via = Some via; group = Some g.id },
                  fst (clause_group_rules t t.main_shard config spec g) )
          | None -> None)
      mem
  in
  let blocks =
    List.concat_map
      (fun (g, mem) ->
        let originator = originator_of config (List.hd g.prefixes) in
        sender_blocks_for g mem
        @ [
            ( Group_default { group = g.id },
              fst (group_default_rules t t.main_shard config g ~originator) );
          ])
      grouped
  in
  let rules = List.concat_map snd blocks in
  let elapsed = Unix.gettimeofday () -. t0 in
  Sdx_obs.Registry.Counter.incr Obs.batches;
  Sdx_obs.Registry.Histogram.observe Obs.batch_seconds elapsed;
  Sdx_obs.Registry.Counter.add Obs.batch_rules (Classifier.rule_count rules);
  Sdx_obs.Registry.Counter.add Obs.batch_prefixes (List.length prefixes);
  Sdx_obs.Registry.Counter.add Obs.batch_vnhs (List.length groups);
  Sdx_obs.Registry.Counter.add Obs.batch_migrations (List.length migrations);
  Sdx_obs.Trace.record ~name:"compile_update_batch" ~start_s:t0 ~dur_s:elapsed
    ~attrs:
      [
        ("prefixes", string_of_int (List.length prefixes));
        ("groups", string_of_int (List.length groups));
        ("migrated", string_of_int (List.length migrations));
        ("unchanged", string_of_int !unchanged);
        ("rules", string_of_int (Classifier.rule_count rules));
      ]
    ();
  Ok
    {
      batch_rules = rules;
      batch_groups = groups;
      batch_provenance = List.map (fun (p, rs) -> (p, List.length rs)) blocks;
      batch_retired = List.length retired;
      batch_migrated = List.length migrations;
      batch_touched_groups =
        (* Every provenance group whose obligations this burst may have
           changed: the freshly minted ones, each migration's target
           (its membership grew), plus each prefix's previous owner
           (whose rules the new block now shadows or retires). *)
        List.map (fun g -> g.id) groups
        @ List.map (fun (_, (g : group)) -> g.id) migrations
        @ Hashtbl.fold (fun id _ acc -> id :: acc) prior [];
      batch_elapsed_s = elapsed;
    }

(* Tombstone compaction: keep only the retired groups some installed
   block's provenance still names.  The runtime calls this after every
   burst install with the live id set from its provenance table, so the
   tombstone list is bounded by the installed blocks instead of growing
   with total churn. *)
let compact_retired t ~live =
  let keep = Hashtbl.create 64 in
  List.iter (fun id -> Hashtbl.replace keep id ()) live;
  let before = List.length t.retired_groups_ in
  t.retired_groups_ <-
    List.filter (fun (g : group) -> Hashtbl.mem keep g.id) t.retired_groups_;
  let after = List.length t.retired_groups_ in
  Sdx_obs.Registry.Gauge.set_int Obs.retired_tombstones after;
  before - after
