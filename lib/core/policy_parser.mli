(** Concrete syntax for participant policies — the notation the paper
    writes its examples in (§3.1):

    {v
    match(dstport=80) >> fwd(AS200) + match(dstport=443) >> fwd(AS300)
    match(srcip=0.0.0.0/1) >> fwd(port 0)
    match(dstip=74.125.1.1) >> mod(dstip=184.72.0.97) >> default
    match(srcip=208.65.152.0/22) >> steer(AS64512)
    match(dstport=80 || dstport=8080) >> drop
    v}

    A policy is clauses separated by [+].  Each clause is one or more
    [match(...)] filters and at most one [mod(...)] rewrite, sequenced
    with [>>] into a final action: [fwd(ASn)] (peer), [fwd(port k)] (own
    physical port), [steer(ASn)] (middlebox redirection), [default]
    (re-resolve through BGP after the rewrite), or [drop].

    Predicates support [&&], [||], [!], parentheses, and the header
    fields [srcip], [dstip], [srcmac], [dstmac], [srcport], [dstport],
    [proto], [ethtype], [inport].  IP values with a [/len] suffix match
    as prefixes. *)

type error = {
  position : int;  (** byte offset into the input *)
  line : int;  (** 1-based line of [position] *)
  column : int;  (** 1-based column of [position] *)
  message : string;
}

val parse : string -> (Ppolicy.t, error) result
(** Parses a full policy (clauses separated by [+]). *)

val parse_checked :
  ?known_asns:Sdx_bgp.Asn.t list ->
  ?port_count:int ->
  string ->
  (Ppolicy.t, error) result
(** [parse] plus reference linting: when [known_asns] is given, a
    [fwd(ASn)]/[steer(ASn)] naming an AS outside the list is rejected at
    its source position; when [port_count] is given, [fwd(port k)] with
    [k] outside [0..port_count-1] (the writing participant's own ports)
    is rejected likewise. *)

val parse_exn : string -> Ppolicy.t
(** @raise Invalid_argument with a located message on a parse error. *)

val parse_pred : string -> (Sdx_policy.Pred.t, error) result
(** Parses just a predicate (the inside of a [match(...)]). *)

val print : Ppolicy.t -> string
(** The policy in this module's concrete syntax —
    [parse (print p)] always succeeds and yields a policy with the same
    clauses (property-tested). *)

val print_pred : Sdx_policy.Pred.t -> string

val pp_error : Format.formatter -> error -> unit
