open Sdx_net

type t = {
  pool : Prefix.t;
  size : int;
  mutable next : int;  (* high-water index: [1, next] have been handed out *)
  mutable free_list : int list;  (* reclaimed indices, reused LIFO *)
  free_set : (int, unit) Hashtbl.t;  (* members of [free], for O(1) guards *)
  mutable live_ : int;
  mutable peak_live_ : int;
  mutable reclaimed_ : int;  (* cumulative across resets *)
}

type stats = {
  capacity : int;
  live : int;
  free : int;
  peak_live : int;
  reclaimed_total : int;
}

let vmac_base = 0x02_00_00_00_00_00

let create ?(pool = Prefix.of_string "172.16.0.0/12") () =
  let size = 1 lsl (32 - Prefix.length pool) in
  {
    pool;
    size;
    next = 0;
    free_list = [];
    free_set = Hashtbl.create 64;
    live_ = 0;
    peak_live_ = 0;
    reclaimed_ = 0;
  }

(* Index 0 is the network address itself, skipped so a VNH is never
   all-zero in the host part. *)
let pair t i = (Prefix.host t.pool i, Mac.of_int (vmac_base + i))

let took t =
  t.live_ <- t.live_ + 1;
  if t.live_ > t.peak_live_ then t.peak_live_ <- t.live_

let alloc t =
  match t.free_list with
  | i :: rest ->
      t.free_list <- rest;
      Hashtbl.remove t.free_set i;
      took t;
      `Fresh (pair t i)
  | [] ->
      if t.next + 1 >= t.size then `Exhausted
      else begin
        t.next <- t.next + 1;
        took t;
        `Fresh (pair t t.next)
      end

let fresh t =
  match alloc t with
  | `Fresh p -> p
  | `Exhausted -> failwith "Vnh.fresh: pool exhausted"

let is_virtual t ip = Prefix.mem ip t.pool
let index_of t ip = Ipv4.to_int ip - Ipv4.to_int (Prefix.network t.pool)

let release t ip =
  if not (is_virtual t ip) then false
  else
    let i = index_of t ip in
    if i < 1 || i > t.next || Hashtbl.mem t.free_set i then false
    else begin
      t.free_list <- i :: t.free_list;
      Hashtbl.replace t.free_set i ();
      t.live_ <- t.live_ - 1;
      t.reclaimed_ <- t.reclaimed_ + 1;
      true
    end

let allocated t = t.live_
let capacity t = t.size - 1

let pressure t =
  let cap = capacity t in
  if cap <= 0 then 1.0 else float_of_int t.live_ /. float_of_int cap

let reclaimed_total t = t.reclaimed_
let peak_live t = t.peak_live_

let stats t =
  {
    capacity = capacity t;
    live = t.live_;
    free = Hashtbl.length t.free_set;
    peak_live = t.peak_live_;
    reclaimed_total = t.reclaimed_;
  }

let reset t =
  t.next <- 0;
  t.free_list <- [];
  Hashtbl.reset t.free_set;
  t.live_ <- 0
