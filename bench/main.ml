(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Table 1, Figures 5-10), plus an ablation of the §4.3
   compilation optimizations and Bechamel micro-benchmarks.

     dune exec bench/main.exe              # everything, laptop scale
     dune exec bench/main.exe -- fig6      # one experiment
     dune exec bench/main.exe -- --help

   Absolute numbers differ from the paper (a simulator instead of a
   hardware testbed, OCaml instead of Python); the shapes are what is
   reproduced.  EXPERIMENTS.md records paper-vs-measured per figure. *)

open Sdx_net
open Sdx_ixp

let section title = Format.printf "@.==== %s ====@." title
let note fmt = Format.printf ("  " ^^ fmt ^^ "@.")

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)

let run_table1 ~seed ~scale =
  section "Table 1: IXP datasets (synthetic traces, scaled)";
  note
    "paper: AMS-IX 11.2M updates / 9.88%% prefixes updated; DE-CIX 30.9M / \
     13.64%%; LINX 16.7M / 12.67%%";
  note "trace scale factor: %g (counts below are scaled; fractions are not)"
    scale;
  let week = 6.0 *. 24.0 *. 3600.0 in
  Format.printf "  %-8s %11s %9s %9s %14s %15s@." "IXP" "peers/total"
    "prefixes" "updates" "pfx updated" "<=3-pfx bursts";
  List.iter
    (fun (profile : Trace.profile) ->
      let rng = Rng.create ~seed in
      let scaled = Trace.scale profile scale in
      let trace = Trace.generate rng scaled ~duration_s:week () in
      let stats = Trace.stats scaled trace in
      Format.printf "  %-8s %7d/%3d %9d %9d %13.2f%% %14.1f%%@."
        profile.name profile.collector_peers profile.total_peers
        scaled.prefixes stats.total_updates
        (100.0 *. stats.updated_fraction)
        (100.0 *. stats.bursts_at_most_3))
    [ Trace.ams_ix; Trace.de_cix; Trace.linx ]

(* ------------------------------------------------------------------ *)
(* Figure 5                                                            *)

let print_timeline samples sinks ~every =
  Format.printf "  %8s" "t(s)";
  List.iter (fun s -> Format.printf " %18s" s) sinks;
  Format.printf "@.";
  List.iter
    (fun (s : Sdx_fabric.Deployment.sample) ->
      if s.time mod every = 0 then begin
        Format.printf "  %8d" s.time;
        List.iter
          (fun sink ->
            Format.printf " %13.1f Mbps" (Sdx_fabric.Deployment.rate s sink))
          sinks;
        Format.printf "@."
      end)
    samples

let run_fig5a () =
  section "Figure 5a: application-specific peering (live experiment)";
  note
    "paper: port-80 traffic shifts to AS B at t=565s (policy), all traffic \
     back via AS A at t=1253s (withdrawal)";
  let scenario = Sdx_fabric.Scenarios.Fig5a.scenario () in
  let samples = Sdx_fabric.Deployment.run ~sample_every:1 scenario in
  print_timeline samples [ "AS-A"; "AS-B" ] ~every:150;
  let at t =
    List.find (fun (s : Sdx_fabric.Deployment.sample) -> s.time = t) samples
  in
  let a t = Sdx_fabric.Deployment.rate (at t) "AS-A"
  and b t = Sdx_fabric.Deployment.rate (at t) "AS-B" in
  note
    "check: before policy A=%.0f B=%.0f; after policy A=%.0f B=%.0f; after \
     withdrawal A=%.0f B=%.0f"
    (a 300) (b 300) (a 900) (b 900) (a 1500) (b 1500)

let run_fig5b () =
  section "Figure 5b: wide-area load balance (live experiment)";
  note
    "paper: at t=246s the tenant's policy shifts source 204.57.0.67 to AWS \
     instance #2";
  let scenario = Sdx_fabric.Scenarios.Fig5b.scenario () in
  let samples = Sdx_fabric.Deployment.run ~sample_every:1 scenario in
  print_timeline samples [ "AWS Instance #1"; "AWS Instance #2" ] ~every:60;
  let at t =
    List.find (fun (s : Sdx_fabric.Deployment.sample) -> s.time = t) samples
  in
  let i1 t = Sdx_fabric.Deployment.rate (at t) "AWS Instance #1"
  and i2 t = Sdx_fabric.Deployment.rate (at t) "AWS Instance #2" in
  note "check: before policy #1=%.0f #2=%.0f; after policy #1=%.0f #2=%.0f"
    (i1 120) (i2 120) (i1 400) (i2 400)

(* ------------------------------------------------------------------ *)
(* Figure 6                                                            *)

let average values =
  List.fold_left ( + ) 0 values / max 1 (List.length values)

let run_fig6 ~seed ~scale ~repeats =
  section "Figure 6: prefix groups vs prefixes with SDX policies";
  note "paper: sub-linear growth; ~1,400 groups at 25k prefixes / 300 participants";
  note "scale factor %g on prefix counts; averaged over %d run(s)" scale repeats;
  let participant_counts = [ 100; 200; 300 ] in
  let xs =
    List.map
      (fun x -> max 10 (int_of_float (float_of_int x *. scale)))
      [ 2_500; 5_000; 10_000; 15_000; 20_000; 25_000 ]
  in
  Format.printf "  %12s" "prefixes";
  List.iter (fun n -> Format.printf " %9d-part" n) participant_counts;
  Format.printf "@.";
  let universe_size = max 10 (int_of_float (25_000.0 *. scale)) in
  let universe = Prefixes.table universe_size in
  List.iter
    (fun x ->
      Format.printf "  %12d" x;
      List.iter
        (fun n ->
          let groups_per_run =
            List.init repeats (fun rep ->
                let rng = Rng.create ~seed:(seed + n + (1000 * rep)) in
                let sets =
                  Workload.announcement_sets rng ~participants:n
                    ~prefixes:universe_size
                in
                (* Sample x prefixes "with SDX policies" from the announced
                   table and restrict each announcement set to the sample,
                   as the paper's Figure 6 experiment does. *)
                let px = Prefix.Set.of_list (Rng.sample rng universe x) in
                let restricted = List.map (Prefix.Set.inter px) sets in
                Sdx_core.Fec.group_count ~sets:restricted
                  ~default_key:(fun _ -> 0))
          in
          Format.printf " %14d" (average groups_per_run))
        participant_counts;
      Format.printf "@.")
    xs

(* ------------------------------------------------------------------ *)
(* Figures 7 and 8 (one workload sweep feeds both)                     *)

type sweep_point = {
  participants : int;
  prefixes : int;
  groups : int;
  rules : int;
  compile_s : float;
  memo_hits : int;
}

let sweep_workload ~seed ~scale ~repeats ~participant_counts ~prefix_points =
  List.concat_map
    (fun n ->
      List.map
        (fun raw_x ->
          let x = max 50 (int_of_float (float_of_int raw_x *. scale)) in
          (* Transit policies scale with the table so the sweep spans the
             paper's prefix-group axis (their transit networks pin one
             group per policy; more prefixes, more pinned groups). *)
          let transit_picks = max 1 (x / 500) in
          let runs =
            List.init repeats (fun rep ->
                let rng = Rng.create ~seed:(seed + n + raw_x + (1000 * rep)) in
                let w =
                  Workload.build rng ~participants:n ~prefixes:x ~transit_picks ()
                in
                let runtime = Workload.runtime w in
                Sdx_core.Compile.stats (Sdx_core.Runtime.compiled runtime))
          in
          let avg f = average (List.map f runs) in
          let avg_f f =
            List.fold_left (fun acc r -> acc +. f r) 0.0 runs
            /. float_of_int (max 1 repeats)
          in
          {
            participants = n;
            prefixes = x;
            groups = avg (fun (r : Sdx_core.Compile.stats) -> r.group_count);
            rules = avg (fun r -> r.rule_count);
            compile_s = avg_f (fun r -> r.elapsed_s);
            memo_hits = avg (fun r -> r.memo_hits);
          })
        prefix_points)
    participant_counts

let default_prefix_points = [ 2_500; 5_000; 10_000; 15_000; 20_000; 25_000 ]

let run_fig7_fig8 ~seed ~scale ~repeats =
  let points =
    sweep_workload ~seed ~scale ~repeats ~participant_counts:[ 100; 200; 300 ]
      ~prefix_points:default_prefix_points
  in
  section "Figure 7: forwarding rules vs prefix groups";
  note "paper: linear growth; ~28k rules at 1,000 groups / 300 participants";
  Format.printf "  %12s %12s %12s %12s@." "participants" "prefixes" "groups"
    "rules";
  List.iter
    (fun p ->
      Format.printf "  %12d %12d %12d %12d@." p.participants p.prefixes
        p.groups p.rules)
    points;
  section "Figure 8: initial compilation time vs prefix groups";
  note
    "paper: super-linear growth, minutes at 1,000 groups (Python/Pyretic); \
     ours is an optimized OCaml compiler, so absolute times are far smaller";
  Format.printf "  %12s %12s %12s %12s %12s@." "participants" "prefixes"
    "groups" "compile(s)" "memo hits";
  List.iter
    (fun p ->
      Format.printf "  %12d %12d %12d %12.3f %12d@." p.participants p.prefixes
        p.groups p.compile_s p.memo_hits)
    points

(* ------------------------------------------------------------------ *)
(* Figure 9                                                            *)

let run_fig9 ~seed ~scale =
  section "Figure 9: additional forwarding rules after a BGP update burst";
  note
    "paper: linear in burst size; ~2,500 extra rules for a 100-update burst \
     at 300 participants";
  let prefixes = max 200 (int_of_float (10_000.0 *. scale)) in
  Format.printf "  %12s %12s %12s %12s@." "participants" "burst size"
    "extra rules" "per update";
  List.iter
    (fun n ->
      let rng = Rng.create ~seed:(seed + n) in
      let w = Workload.build rng ~participants:n ~prefixes () in
      let runtime = Workload.runtime w in
      List.iter
        (fun size ->
          let updates = Workload.burst rng w ~size in
          ignore (Sdx_core.Runtime.handle_burst runtime updates);
          let extra = Sdx_core.Runtime.extra_rule_count runtime in
          Format.printf "  %12d %12d %12d %12.1f@." n size extra
            (float_of_int extra /. float_of_int size);
          ignore (Sdx_core.Runtime.reoptimize runtime))
        [ 10; 20; 40; 60; 80; 100 ])
    [ 100; 200; 300 ]

(* ------------------------------------------------------------------ *)
(* Figure 10                                                           *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then nan
  else sorted.(int_of_float (p *. float_of_int (n - 1)))

let run_fig10 ~seed ~scale ~samples =
  section "Figure 10: time to process a single BGP update (CDF)";
  note "paper: < 100 ms most of the time, sub-second overall";
  let prefixes = max 200 (int_of_float (10_000.0 *. scale)) in
  Format.printf "  %12s %10s %10s %10s %10s %10s@." "participants" "p10(ms)"
    "p50(ms)" "p90(ms)" "p99(ms)" "max(ms)";
  List.iter
    (fun n ->
      let rng = Rng.create ~seed:(seed + n) in
      let w = Workload.build rng ~participants:n ~prefixes () in
      let runtime = Workload.runtime w in
      let times =
        List.filter_map
          (fun u ->
            let stats = Sdx_core.Runtime.handle_update runtime u in
            if stats.best_changed then Some (1000.0 *. stats.processing_s)
            else None)
          (List.init samples (fun _ ->
               Workload.random_best_changing_update rng w))
      in
      let arr = Array.of_list times in
      Array.sort Float.compare arr;
      Format.printf "  %12d %10.3f %10.3f %10.3f %10.3f %10.3f@." n
        (percentile arr 0.10) (percentile arr 0.50) (percentile arr 0.90)
        (percentile arr 0.99)
        (if Array.length arr = 0 then nan else arr.(Array.length arr - 1)))
    [ 100; 200; 300 ]

(* ------------------------------------------------------------------ *)
(* Ablation: §4.3.1 optimizations on vs off                            *)

let run_ablation ~seed =
  section "Ablation: optimized vs naive (literal Pyretic-style) compilation";
  note
    "the naive composition compiles (P1+..+Pn) >> (P1+..+Pn) through the \
     policy compiler; it explodes quickly, which is why §4.3 exists";
  Format.printf "  %12s %10s %14s %14s %12s %12s@." "participants" "prefixes"
    "optimized(s)" "naive(s)" "opt rules" "naive rules";
  List.iter
    (fun (n, x) ->
      let build opt =
        let rng = Rng.create ~seed in
        let w = Workload.build rng ~participants:n ~prefixes:x () in
        Sdx_core.Runtime.create ~optimized:opt w.Workload.config
      in
      let r_opt = build true in
      let s_opt = Sdx_core.Compile.stats (Sdx_core.Runtime.compiled r_opt) in
      let r_naive = build false in
      let s_naive = Sdx_core.Compile.stats (Sdx_core.Runtime.compiled r_naive) in
      Format.printf "  %12d %10d %14.3f %14.3f %12d %12d@." n x s_opt.elapsed_s
        s_naive.elapsed_s s_opt.rule_count s_naive.rule_count)
    [ (10, 100); (20, 200); (30, 300) ];
  note "";
  note
    "memoization in isolation (4.3.1's third optimization; larger \
     workload, same rules either way):";
  Format.printf "  %12s %10s %17s %17s %12s@." "participants" "prefixes"
    "memoized(s)" "unmemoized(s)" "memo hits";
  List.iter
    (fun (n, x) ->
      let build memoize =
        let rng = Rng.create ~seed in
        let w = Workload.build rng ~participants:n ~prefixes:x () in
        let vnh = Sdx_core.Vnh.create () in
        Sdx_core.Compile.stats
          (Sdx_core.Compile.compile ~memoize w.Workload.config vnh)
      in
      let with_memo = build true in
      let without = build false in
      Format.printf "  %12d %10d %17.3f %17.3f %12d@." n x with_memo.elapsed_s
        without.elapsed_s with_memo.memo_hits)
    [ (100, 1000); (300, 2500) ]

(* ------------------------------------------------------------------ *)
(* Ablation: §4.2 VMAC data-plane compression                          *)

let run_vmac_ablation ~seed ~scale =
  section "Ablation: VMAC tagging vs per-prefix rules (4.2)";
  note
    "without the multi-stage FIB, every group rule becomes one rule per \
     prefix; at the paper's 500k-prefix table this is what makes the SDX \
     fit in a hardware switch at all";
  note
    "the 'aggregated' column is the conventional-prefix-aggregation \
     alternative 4.2 dismisses: groups are rarely contiguous, so it \
     recovers almost nothing";
  Format.printf "  %12s %10s %10s %14s %16s %14s %9s@." "participants"
    "prefixes" "groups" "rules (VMAC)" "rules (no VMAC)" "(aggregated)"
    "factor";
  List.iter
    (fun n ->
      List.iter
        (fun raw_x ->
          let x = max 50 (int_of_float (float_of_int raw_x *. scale)) in
          let rng = Rng.create ~seed:(seed + n + raw_x) in
          let w = Workload.build rng ~participants:n ~prefixes:x () in
          let runtime = Workload.runtime w in
          let compiled = Sdx_core.Runtime.compiled runtime in
          let stats = Sdx_core.Compile.stats compiled in
          let unagg = Sdx_core.Compile.unaggregated_rule_estimate compiled in
          let agg = Sdx_core.Compile.aggregated_rule_estimate compiled in
          Format.printf "  %12d %10d %10d %14d %16d %14d %8.1fx@." n x
            stats.group_count stats.rule_count unagg agg
            (float_of_int unagg /. float_of_int (max 1 stats.rule_count)))
        [ 10_000; 25_000 ])
    [ 100; 300 ]

(* ------------------------------------------------------------------ *)
(* Multi-switch fabrics                                                *)

let run_multiswitch ~seed ~scale =
  section "Extension: splitting the classifier across a multi-switch fabric (4.1)";
  note
    "per-switch tables hold only local ingress rules plus the shared \
     dst-MAC layer; totals grow mildly with switch count";
  let x = max 100 (int_of_float (10_000.0 *. scale)) in
  let rng = Rng.create ~seed in
  let w = Workload.build rng ~participants:60 ~prefixes:x () in
  let runtime = Workload.runtime w in
  let classifier = Sdx_core.Runtime.classifier runtime in
  let port_count = Sdx_core.Config.port_count w.Workload.config in
  let all_ports = List.init port_count (fun i -> i + 1) in
  Format.printf "  %10s %16s %16s %14s@." "switches" "logical rules"
    "largest switch" "total rules";
  List.iter
    (fun k ->
      let switches = List.init k (fun i -> i) in
      let links = List.init (k - 1) (fun i -> (i, i + 1)) in
      let port_home = List.map (fun p -> (p, p mod k)) all_ports in
      let topo = Sdx_fabric.Topology.create ~switches ~links ~port_home in
      let fabric = Sdx_fabric.Topology.build topo classifier in
      let largest =
        List.fold_left
          (fun m s -> max m (Sdx_fabric.Topology.rule_count fabric s))
          0 switches
      in
      Format.printf "  %10d %16d %16d %14d@." k
        (Sdx_policy.Classifier.rule_count classifier)
        largest
        (Sdx_fabric.Topology.total_rules fabric))
    [ 1; 2; 4; 8 ]

(* ------------------------------------------------------------------ *)
(* Trace replay: the end-to-end §4.3.2 evaluation                      *)

let run_replay ~seed ~scale =
  section "Trace replay: a day of AMS-IX-like churn through the runtime";
  note
    "fast path per burst, background re-optimization in quiet gaps — the \
     full two-stage strategy of 4.3.2";
  let prefixes = max 200 (int_of_float (10_000.0 *. scale)) in
  List.iter
    (fun n ->
      let rng = Rng.create ~seed:(seed + n) in
      let w = Workload.build rng ~participants:n ~prefixes () in
      let runtime = Workload.runtime w in
      let profile = Trace.scale Trace.ams_ix (0.01 *. scale) in
      let trace =
        Replay.trace_for_workload rng w ~profile ~duration_s:86_400.0
      in
      let result = Replay.run runtime trace in
      Format.printf "  -- %d participants --@.  %a@." n Replay.pp_result result)
    [ 100; 300 ]

(* ------------------------------------------------------------------ *)
(* Parallel compilation                                                *)

let par_workload ~seed ~scale =
  let participants = 300 in
  let prefixes = max 100 (int_of_float (25_000.0 *. scale)) in
  let transit_picks = max 1 (prefixes / 500) in
  let rng = Rng.create ~seed in
  (Workload.build rng ~participants ~prefixes ~transit_picks (), participants,
   prefixes)

(* Wall-clock includes pool creation/shutdown for the private pool, so
   the speedup is what a caller actually observes. *)
let compile_with_domains (w : Workload.t) domains =
  let vnh = Sdx_core.Vnh.create () in
  let t0 = Unix.gettimeofday () in
  let c = Sdx_core.Compile.compile ~domains w.config vnh in
  (c, Unix.gettimeofday () -. t0)

let run_par ~seed ~scale =
  section "Parallel compilation: wall-clock vs domain count (Fig 6/7 scale)";
  note
    "paper: single-threaded Pyretic; ours fans independent rule blocks \
     across OCaml 5 domains (speedup is bounded by the host's cores)";
  let w, participants, prefixes = par_workload ~seed ~scale in
  note "%d participants, %d prefixes; host recommends %d domain(s)"
    participants prefixes
    (Sdx_sanitize.Sync.Domain.recommended_count ());
  let base, base_s = compile_with_domains w 1 in
  let base_cls = Sdx_core.Compile.classifier base in
  let base_stats = Sdx_core.Compile.stats base in
  Format.printf "  %8s %12s %9s %10s %10s@." "domains" "compile(s)" "speedup"
    "rules" "identical";
  Format.printf "  %8d %12.3f %8.2fx %10d %10s@." 1 base_s 1.0
    base_stats.rule_count "--";
  List.iter
    (fun d ->
      let c, s = compile_with_domains w d in
      let identical = Sdx_core.Compile.classifier c = base_cls in
      Format.printf "  %8d %12.3f %8.2fx %10d %10b@." d s (base_s /. s)
        (Sdx_core.Compile.stats c).rule_count identical)
    (List.filter
       (fun d -> d > 1)
       (List.sort_uniq Int.compare
          [ 2; 4; Sdx_core.Parallel.default_domains () ]))

let sweep_rand_ip rng =
  Ipv4.of_int ((Rng.int rng 0x8000 lsl 16) lor Rng.int rng 0x10000)

(* Probe packets for the per-point equivalence check: 70% steered at a
   random oracle rule (pinned fields copied, free fields jittered, prefix
   fields sampled inside the prefix), 30% uniform noise.  Same idiom as
   the data-plane bench, but aimed at classifier rules rather than
   installed flows. *)
let sweep_probe rng (rules : Sdx_policy.Classifier.rule array) =
  let open Sdx_policy in
  if Rng.bool rng ~p:0.3 || Array.length rules = 0 then
    Packet.make ~port:(Rng.int rng 600)
      ~dst_mac:(Mac.of_int (Rng.int rng 0xFFFFFF))
      ~src_ip:(sweep_rand_ip rng) ~dst_ip:(sweep_rand_ip rng)
      ~dst_port:(Rng.pick rng [ 80; 443; 22 ])
      ()
  else begin
    let r = rules.(Rng.int rng (Array.length rules)) in
    let pat = r.Classifier.pattern in
    let inside p =
      let span = 1 lsl (32 - Prefix.length p) in
      Prefix.host p (Rng.int rng (min span 65536))
    in
    Packet.make
      ~port:(Option.value pat.Pattern.port ~default:(Rng.int rng 600))
      ~src_mac:
        (Option.value pat.src_mac ~default:(Mac.of_int (Rng.int rng 0xFFFFFF)))
      ~dst_mac:
        (Option.value pat.dst_mac ~default:(Mac.of_int (Rng.int rng 0xFFFFFF)))
      ~eth_type:(Option.value pat.eth_type ~default:Packet.ethertype_ipv4)
      ~src_ip:
        (match pat.src_ip with Some p -> inside p | None -> sweep_rand_ip rng)
      ~dst_ip:
        (match pat.dst_ip with Some p -> inside p | None -> sweep_rand_ip rng)
      ~proto:(Option.value pat.proto ~default:Packet.proto_tcp)
      ~src_port:(Option.value pat.src_port ~default:(Rng.int rng 65536))
      ~dst_port:
        (Option.value pat.dst_port ~default:(Rng.pick rng [ 80; 443; 22 ]))
      ()
  end

type compile_point = {
  sw_participants : int;
  sw_prefixes : int;
  sw_groups : int;
  sw_rules : int;
  sw_probes : int;
  sw_cross_s : float;
  sw_fdd_seq_s : float;
  sw_fdd_par_s : float;
  (* Composition-stage wall clock (Compile.stats.compose_s) for each of
     the three runs: the stage the two IR engines implement differently.
     Total times additionally include group computation, reachability
     collection and ARP registration, which are engine-independent code
     shared by both paths — the gated speedup divides the compose
     times so it measures the FDD core, not the shared phases. *)
  sw_cross_compose_s : float;
  sw_seq_compose_s : float;
  sw_par_compose_s : float;
  sw_build_s : float;
  sw_merge_s : float;
  sw_extract_s : float;
  sw_nodes : int;
  sw_memo_hits : int;
  sw_table : int;
  sw_identical : bool;
  (* Group-phase instrumentation (ISSUE 9): wall-clock of the
     export-vector reachability pass and the interning pass, the
     naive-oracle (per-spec sets + Fec partition) wall-clock, the
     resulting phase speedup, and whether the interned partition is
     structurally identical to the oracle's. *)
  sw_reachability_s : float;
  sw_group_s : float;
  sw_naive_group_s : float;
  sw_group_speedup : float;
  sw_group_identical : bool;
  sw_heap_words : int;
      (* [Gc.quick_stat ()].top_heap_words sampled after the point: the
         process-lifetime high-water mark, i.e. the cumulative peak over
         this point and every earlier (smaller) one — an upper bound on
         the point's own footprint, not a per-point attribution (see
         EXPERIMENTS.md). *)
}

let run_json ~seed ~scale ~out ~verify =
  section "Machine-readable compile benchmark: FDD vs cross-product sweep";
  note
    "per point: sequential cross-product oracle, FDD on 1 domain, FDD \
     sharded across domains, and the naive grouping oracle (per-spec \
     reachability sets + pairwise Fec partition) against the interned \
     export-vector pipeline; 'identical' is per-packet agreement with \
     the cross-product oracle on steered probes AND structural identity \
     of the two partitions; the workload densifies the paper's \
     inbound-TE mix (3x content participation); the top row pushes the \
     prefix axis to 1M at full scale";
  let grid =
    List.map
      (fun (p, px) -> (p, max 100 (int_of_float (float_of_int px *. scale))))
      [ (100, 5_000); (300, 25_000); (500, 50_000); (100, 1_000_000) ]
  in
  (* On a single-core host the default pool has one domain, which would
     never exercise the sharded build + merge path; force at least two
     shards so the JSON always reflects a real multi-domain run. *)
  let domains = max 2 (Sdx_core.Parallel.default_domains ()) in
  let check = ref None in
  Format.printf "  %14s %9s %9s %9s %9s %9s %10s@." "point" "cross.c" "fdd1.c"
    (Printf.sprintf "fdd%d.c" domains)
    "speedup" "grp.spd" "identical";
  let points =
    List.map
      (fun (participants, prefixes) ->
        (* Transit policies scale with the table but are capped so the
           1M point stresses grouping volume, not policy count. *)
        let transit_picks = max 1 (min 200 (prefixes / 500)) in
        let rng = Rng.create ~seed:(seed + participants + prefixes) in
        let w =
          Workload.build rng ~participants ~prefixes ~transit_picks
            ~inbound_density:3.0 ()
        in
        let compile ~ir ~domains =
          let vnh = Sdx_core.Vnh.create () in
          (* Each timed engine run starts from a compacted heap: the
             previous engine's garbage would otherwise smear major-GC
             slices into this engine's phase timers, and at the 50k+
             points that smear (over a several-hundred-MB heap) swings
             the phase ratios by 2-3x run to run. *)
          Gc.compact ();
          let t0 = Unix.gettimeofday () in
          let c = Sdx_core.Compile.compile ~ir ~domains w.Workload.config vnh in
          (c, Unix.gettimeofday () -. t0)
        in
        let cross, cross_s = compile ~ir:`Crossproduct ~domains:1 in
        let fdd_seq, fdd_seq_s = compile ~ir:`Fdd ~domains:1 in
        let fdd_par, fdd_par_s = compile ~ir:`Fdd ~domains in
        let cross_cls = Sdx_core.Compile.classifier cross in
        let par_cls = Sdx_core.Compile.classifier fdd_par in
        (* Sharding must not even reorder rules: the sharded extraction
           is deterministic, so this is a structural check, not just a
           semantic one. *)
        if par_cls <> Sdx_core.Compile.classifier fdd_seq then begin
          note
            "ERROR: sharded FDD classifier differs structurally from the \
             1-domain FDD build (%d participants, %d prefixes); failing"
            participants prefixes;
          exit 1
        end;
        let stats = Sdx_core.Compile.stats fdd_par in
        (* Probe volume scales with the table so oracle-equivalence
           coverage does not thin out at the 1M point. *)
        let probes = max 2_500 (stats.rule_count / 16) in
        let prng = Rng.create ~seed:(seed + (7 * participants)) in
        let rules = Array.of_list cross_cls in
        let pkts = List.init probes (fun _ -> sweep_probe prng rules) in
        let identical =
          Sdx_policy.Classifier.equivalent_on par_cls cross_cls pkts
        in
        let cross_compose = (Sdx_core.Compile.stats cross).compose_s in
        let seq_compose = (Sdx_core.Compile.stats fdd_seq).compose_s in
        (* The naive grouping oracle: per-spec reachability sets plus the
           pairwise-signature Fec partition, compared structurally
           against the interned pipeline's groups.  Timed from a
           compacted heap, like every engine run above. *)
        Gc.compact ();
        let naive_t0 = Unix.gettimeofday () in
        let naive_parts =
          Sdx_core.Compile.group_partition_naive w.Workload.config
        in
        let naive_s = Unix.gettimeofday () -. naive_t0 in
        let group_identical =
          List.map
            (fun (g : Sdx_core.Compile.group) -> g.prefixes)
            (Sdx_core.Compile.groups fdd_par)
          = naive_parts
        in
        (* Like-for-like grouping comparison: the oracle is sequential,
           so the interned side's phases are read off the 1-domain FDD
           compile.  The sharded run's fan-out cost is a parallelism
           axis (par_speedup), not a grouping-pipeline property — on a
           1-core host it would only add domain-scheduling noise to
           this ratio. *)
        let stats_seq = Sdx_core.Compile.stats fdd_seq in
        let phase_s = stats_seq.reachability_s +. stats_seq.group_s in
        let group_speedup = naive_s /. Float.max phase_s 1e-9 in
        if verify && participants = 500 then
          check := Some (Sdx_check.Check.compiled fdd_par w.Workload.config);
        Format.printf "  %6dx%7d %9.3f %9.3f %9.3f %8.2fx %8.2fx %10b@."
          participants prefixes cross_compose seq_compose stats.compose_s
          (cross_compose /. stats.compose_s)
          group_speedup
          (identical && group_identical);
        {
          sw_participants = participants;
          sw_prefixes = prefixes;
          sw_groups = stats.group_count;
          sw_rules = stats.rule_count;
          sw_probes = probes;
          sw_cross_s = cross_s;
          sw_fdd_seq_s = fdd_seq_s;
          sw_fdd_par_s = fdd_par_s;
          sw_cross_compose_s = cross_compose;
          sw_seq_compose_s = seq_compose;
          sw_par_compose_s = stats.compose_s;
          sw_build_s = stats.fdd_build_s;
          sw_merge_s = stats.fdd_merge_s;
          sw_extract_s = stats.fdd_extract_s;
          sw_nodes = stats.fdd_nodes;
          sw_memo_hits = stats.fdd_memo_hits;
          sw_table = stats.fdd_table_size;
          sw_identical = identical;
          sw_reachability_s = stats_seq.reachability_s;
          sw_group_s = stats_seq.group_s;
          sw_naive_group_s = naive_s;
          sw_group_speedup = group_speedup;
          sw_group_identical = group_identical;
          sw_heap_words = (Gc.quick_stat ()).Gc.top_heap_words;
        })
      grid
  in
  (* Headline summary point: the densest-policy point (500x50k at full
     scale) — the grouping-speedup floor and the FDD compose floor are
     both stated there.  The deepest point (1M prefixes at full scale)
     gets its own top_point_* summary keys. *)
  let headline =
    List.fold_left
      (fun a p -> if p.sw_participants > a.sw_participants then p else a)
      (List.hd points) points
  in
  let deepest =
    List.fold_left
      (fun a p -> if p.sw_prefixes > a.sw_prefixes then p else a)
      (List.hd points) points
  in
  let peak_heap = List.fold_left (fun a p -> max a p.sw_heap_words) 0 points in
  let all_identical = List.for_all (fun p -> p.sw_identical) points in
  let all_group_identical =
    List.for_all (fun p -> p.sw_group_identical) points
  in
  let check_fields =
    match !check with
    | None -> ""
    | Some r ->
        Printf.sprintf
          ",\n\
          \  \"check_errors\": %d,\n\
          \  \"check_warnings\": %d,\n\
          \  \"check_rules\": %d,\n\
          \  \"check_elapsed_s\": %.6f"
          (List.length (Sdx_check.Check.errors r))
          (List.length (Sdx_check.Check.warnings r))
          r.Sdx_check.Check.rules_checked r.Sdx_check.Check.elapsed_s
  in
  let point_json p =
    Printf.sprintf
      "    {\"participants\": %d, \"prefixes\": %d, \"groups\": %d, \
       \"rules\": %d, \"probes\": %d, \"crossproduct_s\": %.6f, \
       \"fdd_seq_s\": %.6f, \
       \"fdd_par_s\": %.6f, \"crossproduct_compose_s\": %.6f, \
       \"fdd_seq_compose_s\": %.6f, \"fdd_par_compose_s\": %.6f, \
       \"build_s\": %.6f, \"merge_s\": %.6f, \
       \"extract_s\": %.6f, \"fdd_nodes\": %d, \"fdd_memo_hits\": %d, \
       \"fdd_unique_table_size\": %d, \"par_speedup\": %.3f, \
       \"total_speedup\": %.3f, \"speedup\": %.3f, \
       \"reachability_s\": %.6f, \"group_s\": %.6f, \
       \"naive_group_s\": %.6f, \"group_speedup\": %.3f, \
       \"peak_heap_words\": %d, \
       \"identical_to_group_naive\": %b, \
       \"identical_to_crossproduct\": %b}"
      p.sw_participants p.sw_prefixes p.sw_groups p.sw_rules p.sw_probes
      p.sw_cross_s p.sw_fdd_seq_s p.sw_fdd_par_s p.sw_cross_compose_s
      p.sw_seq_compose_s p.sw_par_compose_s p.sw_build_s p.sw_merge_s
      p.sw_extract_s p.sw_nodes p.sw_memo_hits p.sw_table
      (p.sw_seq_compose_s /. p.sw_par_compose_s)
      (p.sw_cross_s /. p.sw_fdd_par_s)
      (p.sw_cross_compose_s /. p.sw_par_compose_s)
      p.sw_reachability_s p.sw_group_s p.sw_naive_group_s p.sw_group_speedup
      p.sw_heap_words p.sw_group_identical p.sw_identical
  in
  (* Summary fields repeat the headline (densest-policy) point after the
     sweep array, so line-anchored greps (the bench gate) land on the
     headline numbers; top_point_* keys describe the deepest-prefix
     point. *)
  let oc = open_out out in
  Printf.fprintf oc
    "{\n\
    \  \"domains\": %d,\n\
    \  \"probes\": %d,\n\
    \  \"sweep\": [\n%s\n\  ],\n\
    \  \"participants\": %d,\n\
    \  \"prefixes\": %d,\n\
    \  \"groups\": %d,\n\
    \  \"rules\": %d,\n\
    \  \"crossproduct_s\": %.6f,\n\
    \  \"fdd_seq_s\": %.6f,\n\
    \  \"elapsed_s\": %.6f,\n\
    \  \"crossproduct_compose_s\": %.6f,\n\
    \  \"fdd_seq_compose_s\": %.6f,\n\
    \  \"fdd_par_compose_s\": %.6f,\n\
    \  \"build_s\": %.6f,\n\
    \  \"merge_s\": %.6f,\n\
    \  \"extract_s\": %.6f,\n\
    \  \"fdd_nodes\": %d,\n\
    \  \"fdd_memo_hits\": %d,\n\
    \  \"fdd_unique_table_size\": %d,\n\
    \  \"par_speedup\": %.3f,\n\
    \  \"total_speedup\": %.3f,\n\
    \  \"speedup\": %.3f,\n\
    \  \"reachability_s\": %.6f,\n\
    \  \"group_s\": %.6f,\n\
    \  \"naive_group_s\": %.6f,\n\
    \  \"group_speedup\": %.3f,\n\
    \  \"identical_to_group_naive\": %b,\n\
    \  \"top_point_participants\": %d,\n\
    \  \"top_point_prefixes\": %d,\n\
    \  \"top_point_groups\": %d,\n\
    \  \"top_point_elapsed_s\": %.6f,\n\
    \  \"top_point_group_speedup\": %.3f,\n\
    \  \"peak_heap_words\": %d,\n\
    \  \"identical_to_crossproduct\": %b%s\n\
     }\n"
    domains headline.sw_probes
    (String.concat ",\n" (List.map point_json points))
    headline.sw_participants headline.sw_prefixes headline.sw_groups
    headline.sw_rules headline.sw_cross_s headline.sw_fdd_seq_s
    headline.sw_fdd_par_s headline.sw_cross_compose_s headline.sw_seq_compose_s
    headline.sw_par_compose_s headline.sw_build_s headline.sw_merge_s
    headline.sw_extract_s headline.sw_nodes headline.sw_memo_hits
    headline.sw_table
    (headline.sw_seq_compose_s /. headline.sw_par_compose_s)
    (headline.sw_cross_s /. headline.sw_fdd_par_s)
    (headline.sw_cross_compose_s /. headline.sw_par_compose_s)
    headline.sw_reachability_s headline.sw_group_s headline.sw_naive_group_s
    headline.sw_group_speedup all_group_identical deepest.sw_participants
    deepest.sw_prefixes deepest.sw_groups deepest.sw_fdd_par_s
    deepest.sw_group_speedup peak_heap all_identical check_fields;
  close_out oc;
  note
    "wrote %s (headline %dx%d: compose %.2fx, grouping %.2fx; top point \
     %dx%d in %.2fs, identical=%b)"
    out headline.sw_participants headline.sw_prefixes
    (headline.sw_cross_compose_s /. headline.sw_par_compose_s)
    headline.sw_group_speedup deepest.sw_participants deepest.sw_prefixes
    deepest.sw_fdd_par_s
    (all_identical && all_group_identical);
  (match !check with
  | None -> ()
  | Some r ->
      note "static check: %s" (Sdx_check.Check.summary r);
      if Sdx_check.Check.has_errors r then begin
        Format.printf "%a@." Sdx_check.Check.pp_report r;
        note "ERROR: static verification found errors; failing";
        exit 1
      end);
  (* The equivalence check is the point of this target: make its failure
     visible to CI, not just a field in the JSON. *)
  if not all_identical then begin
    note "ERROR: FDD classifier differs from the cross-product oracle; failing";
    exit 1
  end;
  if not all_group_identical then begin
    note
      "ERROR: interned grouping differs from the naive grouping oracle; \
       failing";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Data-plane match engine vs. linear scan                             *)

(* §4.2's FECs and VMAC tagging exist because per-packet matching over
   thousands of rules is the switch bottleneck.  This target measures
   our software data plane's answer: the layered match engine behind
   Openflow.Table, against the pre-engine linear scan
   (Table.lookup_linear), over tables cut from a really compiled SDX
   scenario — so shapes, VMAC pins, and prefix bands are the real
   thing, not synthetic uniformity. *)

let rand_ip rng = Ipv4.of_int ((Rng.int rng 0x8000 lsl 16) lor Rng.int rng 0x10000)

let synth_packet rng (flows : Sdx_openflow.Flow.t array) =
  (* 70%: a packet steered at a random rule (its pinned fields copied,
     the rest jittered) — it may still be claimed by a higher-priority
     rule, which is the realistic case.  30%: uniform noise, mostly
     misses and residual-band work. *)
  if Rng.bool rng ~p:0.3 || Array.length flows = 0 then
    Packet.make ~port:(Rng.int rng 32)
      ~dst_mac:(Mac.of_int (Rng.int rng 0xFFFFFF))
      ~src_ip:(rand_ip rng) ~dst_ip:(rand_ip rng)
      ~dst_port:(Rng.pick rng [ 80; 443; 22 ])
      ()
  else begin
    let f = flows.(Rng.int rng (Array.length flows)) in
    let pat = f.Sdx_openflow.Flow.pattern in
    let inside p =
      let span = 1 lsl (32 - Prefix.length p) in
      Prefix.host p (Rng.int rng (min span 65536))
    in
    Packet.make
      ~port:(Option.value pat.Sdx_policy.Pattern.port ~default:(Rng.int rng 32))
      ~src_mac:(Option.value pat.src_mac ~default:(Mac.of_int (Rng.int rng 0xFFFFFF)))
      ~dst_mac:(Option.value pat.dst_mac ~default:(Mac.of_int (Rng.int rng 0xFFFFFF)))
      ~eth_type:(Option.value pat.eth_type ~default:Packet.ethertype_ipv4)
      ~src_ip:(match pat.src_ip with Some p -> inside p | None -> rand_ip rng)
      ~dst_ip:(match pat.dst_ip with Some p -> inside p | None -> rand_ip rng)
      ~proto:(Option.value pat.proto ~default:Packet.proto_tcp)
      ~src_port:(Option.value pat.src_port ~default:(Rng.int rng 65536))
      ~dst_port:(Option.value pat.dst_port ~default:(Rng.pick rng [ 80; 443; 22 ]))
      ()
  end

type dataplane_point = {
  dp_rules : int;
  dp_engine_pps : float;
  dp_linear_pps : float;
  dp_batch_pps : float;
  dp_identical : bool;
  dp_stats : Sdx_openflow.Table.engine_stats;
}

let dataplane_point ~seed ~packets all_flows size =
  let flows =
    List.filteri (fun i _ -> i < size) all_flows
  in
  let table = Sdx_openflow.Table.create () in
  Sdx_openflow.Table.install_all table flows;
  let rules = Sdx_openflow.Table.size table in
  let rng = Rng.create ~seed:(seed + size) in
  let flow_arr = Array.of_list flows in
  let pkts = Array.init packets (fun _ -> synth_packet rng flow_arr) in
  (* The linear scan is O(rules) per packet; give it a budget that keeps
     the bench finite at 10k+ rules and normalize to pkts/sec. *)
  let m_linear = max 1_000 (min packets (4_000_000 / max 1 rules)) in
  (* Batched lookup first: it must agree with both the per-packet engine
     path and the linear oracle below. *)
  let t0 = Unix.gettimeofday () in
  let batch = Sdx_openflow.Table.lookup_batch table pkts in
  let batch_s = Unix.gettimeofday () -. t0 in
  let identical = ref true in
  for i = 0 to m_linear - 1 do
    (* Oracle first (pure), then the engine (counts the packet). *)
    let linear = Sdx_openflow.Table.lookup_linear table pkts.(i) in
    let engine = Sdx_openflow.Table.lookup table pkts.(i) in
    if engine <> linear then identical := false;
    if batch.(i) <> linear then identical := false
  done;
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let engine_s =
    time (fun () ->
        for i = 0 to packets - 1 do
          ignore (Sdx_openflow.Table.lookup table pkts.(i))
        done)
  in
  let linear_s =
    time (fun () ->
        for i = 0 to m_linear - 1 do
          ignore (Sdx_openflow.Table.lookup_linear table pkts.(i))
        done)
  in
  {
    dp_rules = rules;
    dp_engine_pps = float_of_int packets /. engine_s;
    dp_linear_pps = float_of_int m_linear /. linear_s;
    dp_batch_pps = float_of_int packets /. batch_s;
    dp_identical = !identical;
    dp_stats = Sdx_openflow.Table.engine_stats table;
  }

let dataplane_sweep ~seed ~scale ~packets =
  let prefixes = max 2_500 (int_of_float (25_000.0 *. scale)) in
  let transit_picks = max 1 (prefixes / 500) in
  let rng = Rng.create ~seed in
  let w = Workload.build rng ~participants:300 ~prefixes ~transit_picks () in
  let runtime = Workload.runtime w in
  let all_flows = Sdx_core.Runtime.flows runtime in
  let total = List.length all_flows in
  let sizes =
    List.sort_uniq Int.compare
      (List.filter (fun s -> s <= total) [ 100; 1_000; 5_000; 10_000; 20_000; total ])
  in
  ( total,
    List.map (fun s -> dataplane_point ~seed ~packets all_flows s) sizes,
    runtime )

let pp_dataplane_points points =
  Format.printf "  %10s %14s %14s %9s %7s %7s %7s %6s %10s@." "rules"
    "engine pkt/s" "linear pkt/s" "speedup" "exact" "prefix" "resid" "shapes"
    "identical";
  List.iter
    (fun p ->
      Format.printf "  %10d %14.0f %14.0f %8.1fx %7d %7d %7d %6d %10b@."
        p.dp_rules p.dp_engine_pps p.dp_linear_pps
        (p.dp_engine_pps /. p.dp_linear_pps)
        p.dp_stats.Sdx_openflow.Table.exact_entries p.dp_stats.prefix_entries
        p.dp_stats.residual_entries p.dp_stats.exact_shapes p.dp_identical)
    points

(* Parallel RCU dataplane: every worker domain walks the full packet
   vector against one shared immutable snapshot through its own private
   searcher cursor, so aggregate throughput is [w * packets / wall] and
   scaling is limited only by cores and memory bandwidth — there is no
   lock to contend on.  Each worker cross-checks a budgeted sample of
   its answers against the frozen snapshot's linear scan. *)
type parallel_point = {
  pw_workers : int;
  pw_aggregate_pps : float;
  pw_identical : bool;
}

type parallel_result = {
  par_workers : int;
  par_single_pps : float;
  par_aggregate_pps : float;  (* at [par_workers] workers *)
  par_shard_pps : float;  (* one vector sharded across the driver *)
  par_identical : bool;
  par_sweep : parallel_point list;
}

let dataplane_parallel ~seed ~packets ~domains runtime =
  let module Table = Sdx_openflow.Table in
  let module Parallel = Sdx_core.Parallel in
  let dp = Sdx_core.Runtime.dataplane ~domains runtime in
  let snap = Sdx_core.Runtime.dataplane_snapshot dp in
  let rules = Table.snapshot_size snap in
  let flow_arr = Array.of_list (Sdx_core.Runtime.flows runtime) in
  let rng = Rng.create ~seed:(seed + 7919) in
  let pkts = Array.init packets (fun _ -> synth_packet rng flow_arr) in
  let m_oracle = max 1_000 (min packets (4_000_000 / max 1 rules)) in
  let oracle =
    Array.init m_oracle (fun i -> Table.snapshot_linear snap pkts.(i))
  in
  let identical = ref true in
  (* Single-core baseline: one searcher cursor over the whole vector. *)
  let find = Table.searcher snap in
  let t0 = Unix.gettimeofday () in
  for i = 0 to packets - 1 do
    ignore (find pkts.(i))
  done;
  let single_s = Unix.gettimeofday () -. t0 in
  for i = 0 to m_oracle - 1 do
    if find pkts.(i) <> oracle.(i) then identical := false
  done;
  (* The Runtime driver: one vector sharded across the worker pool. *)
  let t0 = Unix.gettimeofday () in
  let sharded = Sdx_core.Runtime.dataplane_process dp pkts in
  let shard_s = Unix.gettimeofday () -. t0 in
  for i = 0 to m_oracle - 1 do
    if sharded.(i) <> oracle.(i) then identical := false
  done;
  (* Workers sweep: aggregate pps with w independent reader domains. *)
  let sweep_ws =
    List.sort_uniq Int.compare
      (List.filter (fun w -> w >= 1 && w <= domains)
         [ 1; 2; 4; max 1 (domains / 2); domains ])
  in
  let run_workers w =
    Parallel.with_pool ~domains:w (fun pool ->
        let t0 = Unix.gettimeofday () in
        let oks =
          Parallel.map pool
            (fun _ ->
              let find = Table.searcher snap in
              let ok = ref true in
              for i = 0 to packets - 1 do
                let r = find pkts.(i) in
                if i < m_oracle && r <> oracle.(i) then ok := false
              done;
              !ok)
            (List.init w Fun.id)
        in
        let wall = Unix.gettimeofday () -. t0 in
        {
          pw_workers = w;
          pw_aggregate_pps = float_of_int (w * packets) /. wall;
          pw_identical = List.for_all Fun.id oks;
        })
  in
  let sweep = List.map run_workers sweep_ws in
  let top = List.nth sweep (List.length sweep - 1) in
  List.iter (fun p -> if not p.pw_identical then identical := false) sweep;
  {
    par_workers = domains;
    par_single_pps = float_of_int packets /. single_s;
    par_aggregate_pps = top.pw_aggregate_pps;
    par_shard_pps = float_of_int packets /. shard_s;
    par_identical = !identical;
    par_sweep = sweep;
  }

let pp_parallel_result r =
  Format.printf "  %8s %16s %9s %10s@." "workers" "aggregate pkt/s" "scaling"
    "identical";
  List.iter
    (fun p ->
      Format.printf "  %8d %16.0f %8.2fx %10b@." p.pw_workers
        p.pw_aggregate_pps
        (p.pw_aggregate_pps /. r.par_single_pps)
        p.pw_identical)
    r.par_sweep;
  Format.printf
    "  single-core %.0f pkt/s; sharded vector through the driver %.0f pkt/s@."
    r.par_single_pps r.par_shard_pps

let run_dataplane ~seed ~scale ~packets ~domains ~out =
  section "Data plane: layered match engine vs linear scan (4.2 motivation)";
  note
    "tables are prefixes of one compiled 300-participant scenario; packets \
     are 70%% rule-directed / 30%% noise; 'linear pkt/s' is the pre-engine \
     list scan on the same table";
  let total, points, runtime = dataplane_sweep ~seed ~scale ~packets in
  note "compiled scenario yields %d rules; sweep truncates it per row" total;
  pp_dataplane_points points;
  let identical = List.for_all (fun p -> p.dp_identical) points in
  (* The headline JSON point is the largest table: that is where the
     engine has to earn its keep (acceptance asks >= 5x at >= 5k rules). *)
  let top = List.nth points (List.length points - 1) in
  section "Parallel RCU dataplane: per-domain workers over one snapshot";
  note
    "every worker walks the full %d-packet vector against the shared \
     snapshot through a private searcher; a sample of each worker's \
     answers is cross-checked against the snapshot's linear scan"
    packets;
  let domains =
    if domains > 0 then domains else Sdx_core.Parallel.default_domains ()
  in
  let par = dataplane_parallel ~seed ~packets ~domains runtime in
  pp_parallel_result par;
  let oc = open_out out in
  Printf.fprintf oc
    "{\n\
    \  \"participants\": 300,\n\
    \  \"rules\": %d,\n\
    \  \"packets\": %d,\n\
    \  \"engine_pps\": %.0f,\n\
    \  \"linear_pps\": %.0f,\n\
    \  \"batch_pps\": %.0f,\n\
    \  \"speedup\": %.2f,\n\
    \  \"identical_to_linear\": %b,\n\
    \  \"workers\": %d,\n\
    \  \"single_core_pps\": %.0f,\n\
    \  \"aggregate_pps\": %.0f,\n\
    \  \"shard_pps\": %.0f,\n\
    \  \"parallel_identical\": %b,\n\
    \  \"exact_entries\": %d,\n\
    \  \"prefix_entries\": %d,\n\
    \  \"residual_entries\": %d,\n\
    \  \"exact_shapes\": %d,\n\
    \  \"sweep\": [\n%s  ],\n\
    \  \"workers_sweep\": [\n%s  ]\n\
     }\n"
    top.dp_rules packets top.dp_engine_pps top.dp_linear_pps top.dp_batch_pps
    (top.dp_engine_pps /. top.dp_linear_pps)
    identical par.par_workers par.par_single_pps par.par_aggregate_pps
    par.par_shard_pps par.par_identical
    top.dp_stats.Sdx_openflow.Table.exact_entries
    top.dp_stats.prefix_entries top.dp_stats.residual_entries
    top.dp_stats.exact_shapes
    (String.concat ",\n"
       (List.map
          (fun p ->
            Printf.sprintf
              "    {\"sweep_rules\": %d, \"sweep_engine_pps\": %.0f, \
               \"sweep_linear_pps\": %.0f, \"sweep_speedup\": %.2f}"
              p.dp_rules p.dp_engine_pps p.dp_linear_pps
              (p.dp_engine_pps /. p.dp_linear_pps))
          points)
     ^ "\n")
    (String.concat ",\n"
       (List.map
          (fun p ->
            Printf.sprintf
              "    {\"sweep_workers\": %d, \"sweep_aggregate_pps\": %.0f, \
               \"sweep_identical\": %b}"
              p.pw_workers p.pw_aggregate_pps p.pw_identical)
          par.par_sweep)
     ^ "\n");
  close_out oc;
  note "wrote %s (rules=%d, speedup %.1fx, identical=%b)" out top.dp_rules
    (top.dp_engine_pps /. top.dp_linear_pps)
    identical;
  note "parallel: %d workers, %.0f aggregate pkt/s (%.2fx single core), \
        identical=%b" par.par_workers par.par_aggregate_pps
    (par.par_aggregate_pps /. par.par_single_pps)
    par.par_identical;
  (* Equivalence is the contract: fail loudly, like `json` does for the
     parallel compiler. *)
  if not identical then begin
    note "ERROR: engine lookup diverges from the linear scan; failing";
    exit 1
  end;
  if not par.par_identical then begin
    note
      "ERROR: a parallel worker's lookups diverge from the snapshot's \
       linear scan; failing";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Churn soak: VNH lifecycle and transactional bursts under faults     *)

let run_soak ~seed ~updates ~participants ~prefixes ~pool_bits
    ~checkpoint_every ~check_every ~out =
  section "Churn soak: fault-injected BGP churn through the runtime";
  note
    "withdraw storms, session flaps, duplicate trains and same-prefix \
     trains; sdx_check and a from-scratch-recompile equivalence probe run \
     at every checkpoint; the incremental checker re-verifies the dirty \
     set inline every %d burst(s)" (max check_every 0);
  let rng = Rng.create ~seed in
  let w = Workload.build rng ~participants ~prefixes () in
  (* A deliberately small VNH pool so the lifecycle (reclaim on
     supersession, pressure-triggered re-optimization) is actually
     exercised rather than hiding behind a /12's head-room.  It must
     still hold one VNH per prefix group, and under churn the group
     count approaches the prefix count — a pool smaller than that is a
     configuration error no lifecycle can absorb (the from-scratch
     recompile itself would not fit). *)
  let vnh_pool = Prefix.of_string (Printf.sprintf "172.16.0.0/%d" pool_bits) in
  let runtime = Sdx_core.Runtime.create ~vnh_pool w.Workload.config in
  note "%d participants, %d prefixes, VNH pool /%d (%d addresses)"
    participants prefixes pool_bits
    (Sdx_core.Vnh.capacity (Sdx_core.Runtime.vnh runtime));
  let check rt =
    let report = Sdx_check.Check.runtime rt in
    List.length (Sdx_check.Check.errors report)
  in
  let checkpoint_every =
    if checkpoint_every > 0 then checkpoint_every else max 1 (updates / 10)
  in
  let config =
    {
      Replay.default_soak_config with
      target_updates = updates;
      checkpoint_every;
      check_every;
    }
  in
  let check_incremental rt =
    let report = Sdx_check.Check.runtime_incremental rt in
    List.length (Sdx_check.Check.errors report)
  in
  let r = Replay.soak ~config ~check ~check_incremental rng w runtime in
  Format.printf "  %a@." Replay.pp_soak_result r;
  (* Instrumented-vs-plain overhead: replay a short identical slice of
     the same churn with the sdx_race detector off and then in Record
     mode.  The workload and runtime are rebuilt inside each slice so
     the Record-mode run constructs *tracked* pools/tables/registries
     (structures created while the detector is off stay passthrough for
     their lifetime).  The instrumented slice doubles as the
     "zero races on the unmutated tree" soak check: any report fails
     the target. *)
  let module Sync = Sdx_sanitize.Sync in
  let slice_updates = max 1_000 (min updates 20_000) in
  let slice () =
    let rng = Rng.create ~seed:(seed + 1) in
    let w = Workload.build rng ~participants ~prefixes () in
    let runtime = Sdx_core.Runtime.create ~vnh_pool w.Workload.config in
    let config =
      {
        config with
        Replay.target_updates = slice_updates;
        checkpoint_every = slice_updates + 1;
        check_every = 0;
      }
    in
    let t0 = Unix.gettimeofday () in
    ignore (Replay.soak ~config rng w runtime);
    Unix.gettimeofday () -. t0
  in
  let prev_mode = Sync.mode () in
  let plain_s =
    Sync.set_mode Sync.Off;
    slice ()
  in
  Sync.set_mode Sync.Record;
  let record_s =
    Fun.protect ~finally:(fun () -> Sync.set_mode prev_mode) slice
  in
  let sanitizer_races = List.length (Sync.races ()) in
  List.iter
    (fun rep -> note "sanitizer: %s" (Sync.report_summary rep))
    (Sync.races ());
  Sync.clear_races ();
  let overhead_x = if plain_s > 0. then record_s /. plain_s else 1. in
  note
    "sanitizer overhead (%d-update slice): plain %.3fs, record %.3fs \
     (%.2fx), %d race report(s)"
    slice_updates plain_s record_s overhead_x sanitizer_races;
  let oc = open_out out in
  Printf.fprintf oc
    "{\n\
    \  \"participants\": %d,\n\
    \  \"prefixes\": %d,\n\
    \  \"vnh_pool_bits\": %d,\n\
    \  \"updates\": %d,\n\
    \  \"bursts\": %d,\n\
    \  \"withdraw_storms\": %d,\n\
    \  \"session_flaps\": %d,\n\
    \  \"duplicate_trains\": %d,\n\
    \  \"same_prefix_trains\": %d,\n\
    \  \"checkpoints\": %d,\n\
    \  \"check_errors\": %d,\n\
    \  \"incremental_checks\": %d,\n\
    \  \"incremental_errors\": %d,\n\
    \  \"equiv_divergences\": %d,\n\
    \  \"reoptimizations\": %d,\n\
    \  \"vnh_reclaimed\": %d,\n\
    \  \"vnh_peak_live\": %d,\n\
    \  \"vnh_capacity\": %d,\n\
    \  \"peak_extra_rules\": %d,\n\
    \  \"peak_fastpath_blocks\": %d,\n\
    \  \"groups_minted\": %d,\n\
    \  \"group_migrations\": %d,\n\
    \  \"groups_retired\": %d,\n\
    \  \"retired_tombstones\": %d,\n\
    \  \"elapsed_s\": %.3f,\n\
    \  \"updates_per_s\": %.0f,\n\
    \  \"sanitizer_slice_updates\": %d,\n\
    \  \"sanitizer_plain_s\": %.3f,\n\
    \  \"sanitizer_record_s\": %.3f,\n\
    \  \"sanitizer_overhead_x\": %.2f,\n\
    \  \"sanitizer_races\": %d\n\
     }\n"
    participants prefixes pool_bits r.Replay.soak_updates r.soak_bursts
    r.soak_withdraw_storms r.soak_session_flaps r.soak_duplicate_trains
    r.soak_same_prefix_trains r.soak_checkpoints r.soak_check_errors
    r.soak_incremental_checks r.soak_incremental_errors
    r.soak_equiv_divergences r.soak_reoptimizations r.soak_vnh_reclaimed
    r.soak_vnh_peak_live r.soak_vnh_capacity r.soak_peak_extra_rules
    r.soak_peak_fastpath_blocks r.soak_groups_minted r.soak_group_migrations
    r.soak_groups_retired r.soak_retired_tombstones r.soak_elapsed_s
    r.soak_updates_per_s slice_updates plain_s record_s overhead_x
    sanitizer_races;
  close_out oc;
  note "wrote %s (%d updates, %d check errors, %d/%d inline, %d divergences)"
    out r.soak_updates r.soak_check_errors r.soak_incremental_errors
    r.soak_incremental_checks r.soak_equiv_divergences;
  (* Surviving is the contract: any checkpoint error, inline incremental
     error, or fast-path divergence from a from-scratch recompile fails
     the target. *)
  if r.soak_check_errors > 0 then begin
    note "ERROR: sdx_check reported error findings at a checkpoint; failing";
    exit 1
  end;
  if r.soak_incremental_errors > 0 then begin
    note
      "ERROR: the incremental checker reported error findings on a burst \
       commit; failing";
    exit 1
  end;
  if r.soak_equiv_divergences > 0 then begin
    note
      "ERROR: fast-path forwarding diverges from a from-scratch recompile; \
       failing";
    exit 1
  end;
  if sanitizer_races > 0 then begin
    note
      "ERROR: the sdx_race detector flagged the unmutated runtime during \
       the instrumented soak slice; failing";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Sharded fabric: edge sweep and two-phase consistent updates         *)

let run_fabric ~seed ~scale ~packets ~updates ~domains ~out =
  let module Fabric = Sdx_fabric.Fabric in
  let module Ftopo = Sdx_fabric.Topology in
  let module Network = Sdx_fabric.Network in
  let module Parallel = Sdx_core.Parallel in
  section "Sharded fabric: edge/core split with versioned transit bands (4.1)";
  note
    "the logical classifier drives N edge switches plus a tag-only core; \
     every packet vector is re-walked over the sharded tables and checked \
     against the single big switch";
  let prefixes = max 200 (int_of_float (4_000.0 *. scale)) in
  let participants = 40 in
  let rng = Rng.create ~seed in
  let w = Workload.build rng ~participants ~prefixes () in
  let runtime = Workload.runtime w in
  let port_count = Sdx_core.Config.port_count w.Workload.config in
  let ports = List.init port_count (fun i -> i + 1) in
  let flow_arr = Array.of_list (Sdx_core.Runtime.flows runtime) in
  let prng = Rng.create ~seed:(seed + 7919) in
  let pkts = Array.init packets (fun _ -> synth_packet prng flow_arr) in
  let domains =
    if domains > 0 then domains else Parallel.default_domains ()
  in
  let logical_rules =
    Sdx_policy.Classifier.rule_count (Sdx_core.Runtime.classifier runtime)
  in
  (* Oracle: the same packets over the degenerate single-switch layout,
     through the same pure reader. *)
  let oracle_net = Network.create runtime in
  let oracle_read =
    Fabric.reader (Fabric.snapshots (Network.fabric oracle_net))
  in
  let canon outs = List.sort compare outs in
  let m_oracle = min packets 20_000 in
  let oracle = Array.init m_oracle (fun i -> canon (oracle_read pkts.(i))) in
  Format.printf "  %6s %8s %13s %13s %11s %9s %16s %9s@." "edges" "workers"
    "logical rules" "largest edge" "core rules" "total" "aggregate pkt/s"
    "mismatch";
  let sweep =
    List.map
      (fun edges ->
        let topology = Ftopo.edge_core ~edges ~ports in
        let net = Network.create ~topology runtime in
        let fab = Network.fabric net in
        let counts = Fabric.rule_counts fab in
        let largest_edge =
          List.fold_left
            (fun m (s, n) -> if s = 0 then m else max m n)
            0 counts
        in
        let core_rules = List.assoc 0 counts in
        let snap = Fabric.snapshots fab in
        (* One reader domain per edge: the parallelism sharding buys. *)
        let workers = max 1 (min domains edges) in
        let wall, per_worker_bad =
          Parallel.with_pool ~domains:workers (fun pool ->
              let t0 = Unix.gettimeofday () in
              let bad =
                Parallel.map pool
                  (fun _ ->
                    let read = Fabric.reader snap in
                    let bad = ref 0 in
                    for i = 0 to packets - 1 do
                      let r = read pkts.(i) in
                      if i < m_oracle && canon r <> oracle.(i) then incr bad
                    done;
                    !bad)
                  (List.init workers Fun.id)
              in
              (Unix.gettimeofday () -. t0, bad))
        in
        let mismatches = List.fold_left ( + ) 0 per_worker_bad in
        let aggregate = float_of_int (workers * packets) /. wall in
        Format.printf "  %6d %8d %13d %13d %11d %9d %16.0f %9d@." edges
          workers logical_rules largest_edge core_rules
          (Fabric.total_rules fab) aggregate mismatches;
        (edges, workers, largest_edge, core_rules, Fabric.total_rules fab,
         aggregate, mismatches))
      [ 1; 2; 4 ]
  in
  let field f = List.map f sweep in
  let find_edges e =
    List.find (fun (edges, _, _, _, _, _, _) -> edges = e) sweep
  in
  let _, _, e1_largest, _, _, e1_pps, _ = find_edges 1 in
  let _, _, e4_largest, _, _, e4_pps, _ = find_edges 4 in
  let total_mismatches =
    List.fold_left ( + ) 0 (field (fun (_, _, _, _, _, _, m) -> m))
  in
  (* Churn soak over the 2-edge fabric: every 8th burst commits through
     the two-phase protocol with probe traffic injected inside each phase
     window; the consistency monitor must stay at zero. *)
  section "Two-phase consistent updates under churn (2 edges + core)";
  let soak_net = Network.create ~topology:(Ftopo.edge_core ~edges:2 ~ports) runtime in
  let soak_fab = Network.fabric soak_net in
  let probes = Array.sub pkts 0 (min packets 64) in
  let probe () =
    Array.iter (fun p -> ignore (Network.inject_at_port soak_net p)) probes
  in
  let commits = ref 0 and commit_mods = ref 0 and bursts_seen = ref 0 in
  let on_commit () =
    incr bursts_seen;
    if !bursts_seen mod 8 <> 0 then 0
    else begin
      let before = Fabric.mixed_version_packets soak_fab in
      let stats =
        Network.commit soak_net ~on_phase:(function
          | Fabric.Installed _ | Fabric.Flipped _ | Fabric.Collected _ ->
              probe ()
          | Fabric.Synced_member _ -> ())
      in
      incr commits;
      commit_mods := !commit_mods + Fabric.total_mods stats;
      Fabric.mixed_version_packets soak_fab - before
    end
  in
  let check _rt =
    let report = Sdx_check.Check.runtime runtime in
    let lint_errors =
      List.filter
        (fun (f : Sdx_check.Check.finding) ->
          f.severity = Sdx_check.Check.Error)
        (Sdx_check.Check.network_lints soak_net)
    in
    List.length (Sdx_check.Check.errors report) + List.length lint_errors
  in
  let srng = Rng.create ~seed:(seed + 1) in
  let config =
    {
      Replay.default_soak_config with
      target_updates = updates;
      checkpoint_every = max 1 (updates / 4);
      check_every = 0;
    }
  in
  let r = Replay.soak ~config ~check ~on_commit srng w runtime in
  Format.printf "  %a@." Replay.pp_soak_result r;
  (* Converge the data plane on the final ruleset and re-verify. *)
  Network.sync soak_net;
  probe ();
  let mixed = Fabric.mixed_version_packets soak_fab in
  let misses = Fabric.transit_misses soak_fab in
  let final_errors = check runtime in
  note
    "%d two-phase commits (%d flow-mods) under %d bursts; %d probe \
     packets walked; mixed-version packets: %d; transit misses: %d; \
     check errors: %d"
    !commits !commit_mods r.Replay.soak_bursts (Fabric.packets soak_fab)
    mixed misses final_errors;
  let oc = open_out out in
  Printf.fprintf oc
    "{\n\
    \  \"participants\": %d,\n\
    \  \"prefixes\": %d,\n\
    \  \"packets\": %d,\n\
    \  \"logical_rules\": %d,\n\
    \  \"sweep\": [\n%s  ],\n\
    \  \"edge1_largest_rules\": %d,\n\
    \  \"edge4_largest_rules\": %d,\n\
    \  \"edge1_aggregate_pps\": %.0f,\n\
    \  \"edge4_aggregate_pps\": %.0f,\n\
    \  \"equiv_mismatches\": %d,\n\
    \  \"soak_updates\": %d,\n\
    \  \"soak_bursts\": %d,\n\
    \  \"commits\": %d,\n\
    \  \"commit_flow_mods\": %d,\n\
    \  \"probe_packets\": %d,\n\
    \  \"mixed_version_packets\": %d,\n\
    \  \"transit_misses\": %d,\n\
    \  \"check_errors\": %d,\n\
    \  \"workers\": %d\n\
     }\n"
    participants prefixes packets logical_rules
    (String.concat ",\n"
       (List.map
          (fun (edges, workers, largest, core, total, pps, bad) ->
            Printf.sprintf
              "    {\"sweep_edges\": %d, \"sweep_workers\": %d, \
               \"sweep_largest_edge_rules\": %d, \"sweep_core_rules\": %d, \
               \"sweep_total_rules\": %d, \"sweep_aggregate_pps\": %.0f, \
               \"sweep_mismatches\": %d}"
              edges workers largest core total pps bad)
          sweep)
     ^ "\n")
    e1_largest e4_largest e1_pps e4_pps total_mismatches r.Replay.soak_updates
    r.soak_bursts !commits !commit_mods (Fabric.packets soak_fab) mixed misses
    final_errors domains;
  close_out oc;
  note "wrote %s (mismatches=%d, mixed=%d, edge rules %d -> %d)" out
    total_mismatches mixed e1_largest e4_largest;
  (* Contracts: sharded delivery must equal the big switch, the protocol
     must keep the consistency monitor at zero, and sharding must shrink
     the per-edge tables. *)
  if total_mismatches > 0 then begin
    note "ERROR: sharded delivery diverges from the single big switch; failing";
    exit 1
  end;
  if mixed > 0 || r.Replay.soak_commit_errors > 0 then begin
    note "ERROR: the consistency monitor counted mixed-version packets; failing";
    exit 1
  end;
  if final_errors > 0 then begin
    note "ERROR: sdx_check reported error findings on the sharded fabric; failing";
    exit 1
  end;
  if e4_largest >= e1_largest then begin
    note "ERROR: 4-edge fabric does not shrink per-edge rule tables; failing";
    exit 1
  end;
  if e4_pps < e1_pps then begin
    if domains >= 4 then begin
      note "ERROR: aggregate throughput fell with more edges; failing";
      exit 1
    end
    else
      note
        "WARN: aggregate throughput fell with more edges (only %d worker \
         domain(s) available; scaling needs one per edge)"
        domains
  end

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)

let run_bechamel () =
  section "Bechamel micro-benchmarks (monotonic clock, ns/run)";
  let open Bechamel in
  let seed = 42 in
  (* Pre-build inputs outside the timed closures. *)
  let rng = Rng.create ~seed in
  let w = Workload.build rng ~participants:50 ~prefixes:500 () in
  let runtime = Workload.runtime w in
  let sets =
    Workload.announcement_sets (Rng.create ~seed) ~participants:100
      ~prefixes:1000
  in
  let big_pred =
    Sdx_policy.Pred.disj
      (List.init 64 (fun i ->
           Sdx_policy.Pred.dst_mac (Mac.of_int (0x020000000000 + i))))
  in
  let pipeline =
    Sdx_policy.Classifier.compile
      (Sdx_policy.Policy.if_
         (Sdx_policy.Pred.src_ip (Prefix.of_string "0.0.0.0/1"))
         (Sdx_policy.Policy.fwd 2) (Sdx_policy.Policy.fwd 3))
  in
  let upd_rng = Rng.create ~seed:(seed + 1) in
  let tests =
    [
      Test.make ~name:"classifier-seq-64xpipeline"
        (Staged.stage (fun () ->
             ignore
               (Sdx_policy.Classifier.seq
                  (Sdx_policy.Classifier.compile_pred big_pred)
                  pipeline)));
      Test.make ~name:"mds-partition-100x1000"
        (Staged.stage (fun () ->
             ignore (Sdx_core.Fec.group_count ~sets ~default_key:(fun _ -> 0))));
      Test.make ~name:"incremental-update"
        (Staged.stage (fun () ->
             ignore
               (Sdx_core.Runtime.handle_update runtime
                  (Workload.random_best_changing_update upd_rng w))));
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) ~stabilize:true () in
  let raw =
    Benchmark.all cfg [ instance ]
      (Test.make_grouped ~name:"sdx" ~fmt:"%s/%s" tests)
  in
  let results = Analyze.all ols instance raw in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] -> note "%-36s %14.0f ns/run" name est
      | _ -> note "%-36s (no estimate)" name)
    results

(* ------------------------------------------------------------------ *)
(* CLI                                                                 *)

let run_all ~seed ~scale ~samples ~repeats =
  run_table1 ~seed ~scale;
  run_fig5a ();
  run_fig5b ();
  run_fig6 ~seed ~scale ~repeats;
  run_fig7_fig8 ~seed ~scale ~repeats;
  run_fig9 ~seed ~scale;
  run_fig10 ~seed ~scale ~samples;
  run_ablation ~seed;
  run_vmac_ablation ~seed ~scale;
  run_multiswitch ~seed ~scale;
  run_replay ~seed ~scale;
  run_par ~seed ~scale;
  run_dataplane ~seed ~scale ~packets:100_000 ~domains:0
    ~out:"BENCH_dataplane.json";
  run_fabric ~seed ~scale ~packets:50_000 ~updates:2_000 ~domains:0
    ~out:"BENCH_fabric.json";
  run_bechamel ();
  Format.printf "@.done.@."

open Cmdliner

let seed_t =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Workload random seed.")

let scale_t =
  Arg.(
    value
    & opt float 0.1
    & info [ "scale" ]
        ~doc:
          "Scale factor on paper-sized inputs (1.0 = full 25k-prefix sweeps \
           and week-long traces).")

let samples_t =
  Arg.(
    value
    & opt int 150
    & info [ "samples" ] ~doc:"Number of updates for the Figure 10 CDF.")

let repeats_t =
  Arg.(
    value
    & opt int 1
    & info [ "repeats" ]
        ~doc:"Runs to average for Figures 6-8 (the paper uses 10).")

let cmd name doc term = Cmd.v (Cmd.info name ~doc) term

let commands =
  [
    cmd "table1" "Table 1: IXP dataset statistics from synthetic traces."
      Term.(const (fun seed scale -> run_table1 ~seed ~scale) $ seed_t $ scale_t);
    cmd "fig5a" "Figure 5a: application-specific peering deployment."
      Term.(const run_fig5a $ const ());
    cmd "fig5b" "Figure 5b: wide-area load balance deployment."
      Term.(const run_fig5b $ const ());
    cmd "fig6" "Figure 6: prefix groups vs prefixes."
      Term.(
        const (fun seed scale repeats -> run_fig6 ~seed ~scale ~repeats)
        $ seed_t $ scale_t $ repeats_t);
    cmd "fig7" "Figures 7-8: rules and compile time vs prefix groups."
      Term.(
        const (fun seed scale repeats -> run_fig7_fig8 ~seed ~scale ~repeats)
        $ seed_t $ scale_t $ repeats_t);
    cmd "fig8" "Figures 7-8: rules and compile time vs prefix groups."
      Term.(
        const (fun seed scale repeats -> run_fig7_fig8 ~seed ~scale ~repeats)
        $ seed_t $ scale_t $ repeats_t);
    cmd "fig9" "Figure 9: additional rules vs BGP burst size."
      Term.(const (fun seed scale -> run_fig9 ~seed ~scale) $ seed_t $ scale_t);
    cmd "fig10" "Figure 10: per-update processing time CDF."
      Term.(
        const (fun seed scale samples -> run_fig10 ~seed ~scale ~samples)
        $ seed_t $ scale_t $ samples_t);
    cmd "ablation" "Optimized vs naive compilation."
      Term.(const (fun seed -> run_ablation ~seed) $ seed_t);
    cmd "vmac" "VMAC tagging vs per-prefix rules."
      Term.(
        const (fun seed scale -> run_vmac_ablation ~seed ~scale)
        $ seed_t $ scale_t);
    cmd "multiswitch" "Classifier split across a multi-switch fabric."
      Term.(
        const (fun seed scale -> run_multiswitch ~seed ~scale) $ seed_t $ scale_t);
    cmd "replay" "Replay a day of IXP churn through the runtime."
      Term.(const (fun seed scale -> run_replay ~seed ~scale) $ seed_t $ scale_t);
    cmd "par" "Sequential vs parallel compilation wall-clock."
      Term.(const (fun seed scale -> run_par ~seed ~scale) $ seed_t $ scale_t);
    cmd "json" "Write BENCH_compile.json (machine-readable compile bench)."
      Term.(
        const (fun seed scale out verify -> run_json ~seed ~scale ~out ~verify)
        $ seed_t $ scale_t
        $ Arg.(
            value
            & opt string "BENCH_compile.json"
            & info [ "out" ] ~doc:"Output path for the JSON report.")
        $ Arg.(
            value & flag
            & info [ "verify" ]
                ~doc:
                  "Also statically verify the compiled classifier \
                   (isolation, BGP consistency, loops, lints); add \
                   check_* fields to the JSON and fail on errors."));
    cmd "dataplane"
      "Data-plane lookup throughput: layered match engine vs linear scan; \
       writes BENCH_dataplane.json."
      Term.(
        const (fun seed scale packets domains out ->
            run_dataplane ~seed ~scale ~packets ~domains ~out)
        $ seed_t $ scale_t
        $ Arg.(
            value
            & opt int 100_000
            & info [ "packets" ] ~doc:"Lookups to time per table size.")
        $ Arg.(
            value
            & opt int 0
            & info [ "domains" ]
                ~doc:
                  "Worker domains for the parallel RCU sweep (0 = \
                   SDX_DOMAINS or the recommended domain count).")
        $ Arg.(
            value
            & opt string "BENCH_dataplane.json"
            & info [ "out" ] ~doc:"Output path for the JSON report."));
    cmd "soak"
      "Fault-injected churn soak: VNH lifecycle, transactional bursts, \
       checkpointed verification; writes BENCH_churn.json."
      Term.(
        const (fun seed updates participants prefixes pool_bits
                   checkpoint_every check_every out ->
            run_soak ~seed ~updates ~participants ~prefixes ~pool_bits
              ~checkpoint_every ~check_every ~out)
        $ seed_t
        $ Arg.(
            value
            & opt int 1_000_000
            & info [ "updates" ] ~doc:"Total BGP updates to push through.")
        $ Arg.(
            value
            & opt int 40
            & info [ "participants" ] ~doc:"IXP participants in the workload.")
        $ Arg.(
            value
            & opt int 400
            & info [ "prefixes" ] ~doc:"Announced prefixes in the workload.")
        $ Arg.(
            value
            & opt int 23
            & info [ "pool-bits" ]
                ~doc:
                  "VNH pool prefix length; small pools exercise reclamation \
                   and pressure re-optimization, but the pool must still \
                   hold one VNH per prefix group (roughly the prefix \
                   count under churn).")
        $ Arg.(
            value
            & opt int 0
            & info [ "checkpoint-every" ]
                ~doc:
                  "Updates between verification checkpoints (0 = a tenth of \
                   the total).")
        $ Arg.(
            value
            & opt int 1
            & info [ "check-every" ]
                ~doc:
                  "Bursts between inline incremental checks (1 = verify \
                   every burst commit; 0 = disable).")
        $ Arg.(
            value
            & opt string "BENCH_churn.json"
            & info [ "out" ] ~doc:"Output path for the JSON report."));
    cmd "fabric"
      "Sharded multi-switch fabric: edge sweep, delivery equivalence, and a \
       two-phase consistent-update soak; writes BENCH_fabric.json."
      Term.(
        const (fun seed scale packets updates domains out ->
            run_fabric ~seed ~scale ~packets ~updates ~domains ~out)
        $ seed_t $ scale_t
        $ Arg.(
            value
            & opt int 50_000
            & info [ "packets" ] ~doc:"Packets walked per edge count.")
        $ Arg.(
            value
            & opt int 2_000
            & info [ "updates" ]
                ~doc:"BGP updates churned through the two-phase soak.")
        $ Arg.(
            value
            & opt int 0
            & info [ "domains" ]
                ~doc:
                  "Worker domains for the per-edge reader sweep (0 = \
                   SDX_DOMAINS or the recommended domain count).")
        $ Arg.(
            value
            & opt string "BENCH_fabric.json"
            & info [ "out" ] ~doc:"Output path for the JSON report."));
    cmd "bechamel" "Bechamel micro-benchmarks."
      Term.(const run_bechamel $ const ());
    cmd "all" "Run every experiment."
      Term.(
        const (fun seed scale samples repeats ->
            run_all ~seed ~scale ~samples ~repeats)
        $ seed_t $ scale_t $ samples_t $ repeats_t);
  ]

let () =
  let default =
    Term.(
      const (fun seed scale samples repeats ->
          run_all ~seed ~scale ~samples ~repeats)
      $ seed_t $ scale_t $ samples_t $ repeats_t)
  in
  let info =
    Cmd.info "sdx-bench" ~doc:"Regenerate the SDX paper's tables and figures."
  in
  exit (Cmd.eval (Cmd.group ~default info commands))
