(* The paper's Figure 1 scenario, shared by several test suites:
   AS A (application-specific peering), AS B (two ports, inbound traffic
   engineering), AS C, AS D, and prefixes p1..p5 with the exact
   announcement pattern of Figure 1b. *)

open Sdx_net
open Sdx_policy
open Sdx_bgp
open Sdx_core

let mac = Mac.of_string
let ip = Ipv4.of_string
let pfx = Prefix.of_string
let p1 = pfx "20.0.1.0/24"
let p2 = pfx "20.0.2.0/24"
let p3 = pfx "20.0.3.0/24"
let p4 = pfx "20.0.4.0/24"
let p5 = pfx "20.0.5.0/24"
let asn_a = Asn.of_int 100
let asn_b = Asn.of_int 200
let asn_c = Asn.of_int 300
let asn_d = Asn.of_int 400
let mac_a1 = mac "aa:aa:aa:aa:aa:01"
let mac_b1 = mac "bb:bb:bb:bb:bb:01"
let mac_b2 = mac "bb:bb:bb:bb:bb:02"
let mac_c1 = mac "cc:cc:cc:cc:cc:01"
let mac_d1 = mac "dd:dd:dd:dd:dd:01"

let participant_a =
  Participant.make ~asn:asn_a
    ~ports:[ (mac_a1, ip "172.0.0.1") ]
    ~outbound:
      [
        Ppolicy.fwd (Pred.dst_port 80) (Ppolicy.Peer asn_b);
        Ppolicy.fwd (Pred.dst_port 443) (Ppolicy.Peer asn_c);
      ]
    ()

let participant_b =
  Participant.make ~asn:asn_b
    ~ports:[ (mac_b1, ip "172.0.0.2"); (mac_b2, ip "172.0.0.3") ]
    ~inbound:
      [
        Ppolicy.fwd (Pred.src_ip (pfx "0.0.0.0/1")) (Ppolicy.Phys 0);
        Ppolicy.fwd (Pred.src_ip (pfx "128.0.0.0/1")) (Ppolicy.Phys 1);
      ]
    ()

let participant_c =
  Participant.make ~asn:asn_c ~ports:[ (mac_c1, ip "172.0.0.4") ] ()

let participant_d =
  Participant.make ~asn:asn_d ~ports:[ (mac_d1, ip "172.0.0.5") ] ()

(* Announce Figure 1b's routes: B announces p1-p3, C announces p1-p4 (with
   shorter, hence preferred, paths for p1/p2 and p4), D announces p5. *)
let announce_routes config =
  let far1 = Asn.of_int 65001 and far2 = Asn.of_int 65002 in
  List.iter
    (fun (peer, prefix, as_path) ->
      ignore (Config.announce config ~peer ~port:0 ~as_path prefix))
    [
      (asn_b, p1, [ asn_b; far1; far2 ]);
      (asn_b, p2, [ asn_b; far1; far2 ]);
      (asn_b, p3, [ asn_b; far1 ]);
      (asn_c, p1, [ asn_c; far1 ]);
      (asn_c, p2, [ asn_c; far1 ]);
      (asn_c, p3, [ asn_c; far1; far2 ]);
      (asn_c, p4, [ asn_c; far1 ]);
      (asn_d, p5, [ asn_d; far1 ]);
    ]

let make_config () =
  let config =
    Config.make [ participant_a; participant_b; participant_c; participant_d ]
  in
  announce_routes config;
  config

let make_runtime () = Runtime.create (make_config ())

(* The destination MAC a border router would put on a packet from
   [sender] toward [dst]: the (virtual) next hop of the re-advertised
   best route, resolved through the controller's ARP responder. *)
let tag_for runtime ~sender dst =
  let server = Config.server (Runtime.config runtime) in
  match Route_server.lookup_best server ~receiver:sender dst with
  | None -> None
  | Some (prefix, _) -> (
      match Runtime.announcement runtime ~receiver:sender prefix with
      | None -> None
      | Some route ->
          Sdx_arp.Responder.query (Runtime.arp runtime) route.Route.next_hop)

(* A packet from [sender]'s network, tagged and located as its border
   router would deliver it to the fabric. *)
let fabric_packet runtime ~sender ~src_ip ~dst_ip ~dst_port () =
  let config = Runtime.config runtime in
  match tag_for runtime ~sender (ip dst_ip) with
  | None -> None
  | Some tag ->
      Some
        (Packet.make
           ~port:(Config.switch_port config sender 0)
           ~dst_mac:tag ~src_ip:(ip src_ip) ~dst_ip:(ip dst_ip) ~dst_port ())

(* Where the runtime's classifier delivers a packet: the receiving
   participant and its local port index, or None for drops. *)
let deliveries runtime pkt =
  let config = Runtime.config runtime in
  List.filter_map
    (fun (out : Packet.t) ->
      if out.port = Compile.blackhole_port then None
      else
        match Config.owner_of_port config out.port with
        | participant, port ->
            Some (participant.Participant.asn, port.Participant.index)
        | exception Not_found -> None)
    (Sdx_policy.Classifier.eval (Runtime.classifier runtime) pkt)
