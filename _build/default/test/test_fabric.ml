(* Tests for the fabric: border routers (stage-1 FIB of Figure 2), the
   wired network, and the deployment experiments of Figure 5. *)

open Sdx_net
open Sdx_bgp
open Sdx_fabric

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let ip = Ipv4.of_string

(* ------------------------------------------------------------------ *)
(* Border router                                                       *)

let test_router_sync_builds_fib () =
  let runtime = Fig1.make_runtime () in
  let config = Sdx_core.Runtime.config runtime in
  let router = Border_router.create config ~asn:Fig1.asn_a ~port:0 in
  check_int "empty before sync" 0 (Border_router.fib_size router);
  Border_router.sync router runtime;
  (* A's local RIB: p1..p5 (it announces nothing itself). *)
  check_int "five routes" 5 (Border_router.fib_size router);
  check_int "switch port" 1 (Border_router.switch_port router);
  check_bool "asn" true (Asn.equal (Border_router.asn router) Fig1.asn_a)

let test_router_next_hop_is_virtual () =
  let runtime = Fig1.make_runtime () in
  let config = Sdx_core.Runtime.config runtime in
  let router = Border_router.create config ~asn:Fig1.asn_a ~port:0 in
  Border_router.sync router runtime;
  (* Grouped prefix p1: virtual next hop in 172.16/12. *)
  (match Border_router.next_hop router (ip "20.0.1.9") with
  | Some nh -> check_bool "vnh pool" true (Prefix.mem nh (Prefix.of_string "172.16.0.0/12"))
  | None -> Alcotest.fail "no next hop for p1");
  (* Default-only prefix p5: real next hop (D's interface). *)
  match Border_router.next_hop router (ip "20.0.5.9") with
  | Some nh -> check_bool "real nh" true (Ipv4.equal nh (ip "172.0.0.5"))
  | None -> Alcotest.fail "no next hop for p5"

let test_router_send_tags () =
  let runtime = Fig1.make_runtime () in
  let config = Sdx_core.Runtime.config runtime in
  let router = Border_router.create config ~asn:Fig1.asn_a ~port:0 in
  Border_router.sync router runtime;
  let pkt = Packet.make ~src_ip:(ip "10.0.0.1") ~dst_ip:(ip "20.0.1.9") () in
  (match Border_router.send router pkt with
  | Some tagged ->
      check_int "located at fabric port" 1 tagged.port;
      check_bool "src mac set" true (Mac.equal tagged.src_mac Fig1.mac_a1);
      (* The tag is the VMAC of p1's group. *)
      let compiled = Sdx_core.Runtime.compiled runtime in
      let g = Option.get (Sdx_core.Compile.group_of_prefix compiled Fig1.p1) in
      check_bool "tagged with vmac" true (Mac.equal tagged.dst_mac g.vmac)
  | None -> Alcotest.fail "send failed");
  (* No route: nothing to send. *)
  check_bool "no route" true
    (Border_router.send router (Packet.make ~dst_ip:(ip "99.0.0.1") ()) = None)

let test_router_unknown_port () =
  let runtime = Fig1.make_runtime () in
  let config = Sdx_core.Runtime.config runtime in
  check_bool "bad port" true
    (try
       ignore (Border_router.create config ~asn:Fig1.asn_a ~port:7);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Network                                                             *)

let delivery_of net ~from ~src ~dst ~dst_port =
  let pkt =
    Packet.make ~src_ip:(ip src) ~dst_ip:(ip dst) ~dst_port ()
  in
  match Network.inject net ~from pkt with
  | [ d ] -> Some d
  | [] -> None
  | _ -> Alcotest.fail "unexpected multicast"

let test_network_figure1_deliveries () =
  let runtime = Fig1.make_runtime () in
  let net = Network.create runtime in
  let expect ~src ~dst ~dst_port want =
    match (delivery_of net ~from:Fig1.asn_a ~src ~dst ~dst_port, want) with
    | Some (d : Network.delivery), Some (asn, port) ->
        check_bool "receiver" true (Asn.equal d.receiver asn);
        check_int "port" port d.receiver_port
    | None, None -> ()
    | _ -> Alcotest.fail "unexpected delivery"
  in
  expect ~src:"10.0.0.1" ~dst:"20.0.1.9" ~dst_port:80 (Some (Fig1.asn_b, 0));
  expect ~src:"192.168.0.1" ~dst:"20.0.1.9" ~dst_port:80 (Some (Fig1.asn_b, 1));
  expect ~src:"10.0.0.1" ~dst:"20.0.4.9" ~dst_port:443 (Some (Fig1.asn_c, 0));
  expect ~src:"10.0.0.1" ~dst:"20.0.4.9" ~dst_port:80 (Some (Fig1.asn_c, 0));
  expect ~src:"10.0.0.1" ~dst:"20.0.5.9" ~dst_port:9999 (Some (Fig1.asn_d, 0))

let test_network_delivery_rewrites_mac () =
  let runtime = Fig1.make_runtime () in
  let net = Network.create runtime in
  match delivery_of net ~from:Fig1.asn_a ~src:"10.0.0.1" ~dst:"20.0.1.9" ~dst_port:80 with
  | Some d ->
      (* §4.1: the fabric rewrites the destination MAC to the physical
         address of the receiving port, or B would drop the frame. *)
      check_bool "dst mac rewritten" true (Mac.equal d.packet.dst_mac Fig1.mac_b1)
  | None -> Alcotest.fail "no delivery"

let test_network_sync_after_update () =
  let runtime = Fig1.make_runtime () in
  let net = Network.create runtime in
  ignore (Sdx_core.Runtime.withdraw runtime ~peer:Fig1.asn_b Fig1.p1);
  Network.sync net;
  (* B no longer exports p1: the diversion must stop at the fabric. *)
  match delivery_of net ~from:Fig1.asn_a ~src:"10.0.0.1" ~dst:"20.0.1.9" ~dst_port:80 with
  | Some d -> check_bool "back to C" true (Asn.equal d.receiver Fig1.asn_c)
  | None -> Alcotest.fail "traffic lost after withdrawal"

let test_network_router_access () =
  let runtime = Fig1.make_runtime () in
  let net = Network.create runtime in
  check_bool "router exists" true
    (Asn.equal (Border_router.asn (Network.router net Fig1.asn_a)) Fig1.asn_a);
  check_bool "no router for unknown" true
    (try
       ignore (Network.router net (Asn.of_int 9999));
       false
     with Not_found -> true)

let test_network_incremental_sync () =
  let runtime = Fig1.make_runtime () in
  let net = Network.create runtime in
  let full_table = Sdx_openflow.Switch.rule_count (Network.switch net) in
  (* A no-op sync sends nothing. *)
  Network.sync net;
  check_int "no-op sync" 0 (Network.last_sync_flow_mods net);
  (* One BGP update touches a handful of entries, not the whole table. *)
  ignore (Sdx_core.Runtime.withdraw runtime ~peer:Fig1.asn_c Fig1.p1);
  Network.sync net;
  let mods = Network.last_sync_flow_mods net in
  check_bool "few flow mods for one update" true (mods > 0 && mods < full_table / 2);
  (* The background re-optimization rewrites most of the table. *)
  ignore (Sdx_core.Runtime.reoptimize runtime);
  Network.sync net;
  check_bool "reoptimization is the big sync" true
    (Network.last_sync_flow_mods net >= mods)

let test_network_switch_capacity () =
  let runtime = Fig1.make_runtime () in
  (* A comfortable budget installs fine... *)
  let net = Network.create ~switch_capacity:500 runtime in
  check_bool "fits" true
    (Sdx_openflow.Switch.rule_count (Network.switch net) > 0);
  (* ...a starved one hits the hardware limit, as §4.2 warns. *)
  check_bool "table full surfaces" true
    (try
       ignore (Network.create ~switch_capacity:5 runtime);
       false
     with Sdx_openflow.Table.Table_full -> true)

let test_network_inject_frame () =
  let runtime = Fig1.make_runtime () in
  let net = Network.create runtime in
  let pkt =
    Packet.make ~src_ip:(ip "10.0.0.1") ~dst_ip:(ip "20.0.1.9") ~dst_port:80 ()
  in
  (* Wire bytes in, wire bytes out. *)
  (match Network.inject_frame net ~from:Fig1.asn_a (Codec.to_bytes pkt) with
  | Ok [ d ] ->
      check_bool "delivered to B" true (Asn.equal d.receiver Fig1.asn_b);
      let frame = Network.frame_of_delivery d in
      (match Codec.of_bytes frame with
      | Ok out ->
          check_bool "frame addressed to receiver port" true
            (Mac.equal out.dst_mac Fig1.mac_b1)
      | Error e -> Alcotest.fail e)
  | Ok _ -> Alcotest.fail "unexpected deliveries"
  | Error e -> Alcotest.fail e);
  check_bool "garbage frame rejected" true
    (Result.is_error (Network.inject_frame net ~from:Fig1.asn_a (Bytes.make 7 'x')))

let test_network_inject_at_port () =
  let runtime = Fig1.make_runtime () in
  let net = Network.create runtime in
  (* A raw frame with an unknown destination MAC is dropped. *)
  let pkt = Packet.make ~port:1 ~dst_mac:(Mac.of_string "12:34:56:78:9a:bc") () in
  check_bool "unknown tag dropped" true (Network.inject_at_port net pkt = [])

(* ------------------------------------------------------------------ *)
(* Deployment experiments (compressed Figure 5 timelines)              *)

let test_deployment_fig5a () =
  let scenario =
    Scenarios.Fig5a.scenario ~duration:30 ~policy_at:10 ~withdraw_at:20 ()
  in
  let samples = Deployment.run scenario in
  check_int "one sample per second" 30 (List.length samples);
  let at t = List.find (fun (s : Deployment.sample) -> s.time = t) samples in
  (* Phase 1: all three flows via AS A. *)
  check_bool "before: A carries all" true (Deployment.rate (at 5) "AS-A" = 3.0);
  check_bool "before: B idle" true (Deployment.rate (at 5) "AS-B" = 0.0);
  (* Phase 2: the port-80 flow diverts to AS B. *)
  check_bool "after policy: A" true (Deployment.rate (at 15) "AS-A" = 2.0);
  check_bool "after policy: B" true (Deployment.rate (at 15) "AS-B" = 1.0);
  (* Phase 3: withdrawal pulls everything back to AS A. *)
  check_bool "after withdrawal: A" true (Deployment.rate (at 25) "AS-A" = 3.0);
  check_bool "after withdrawal: B" true (Deployment.rate (at 25) "AS-B" = 0.0)

let test_deployment_fig5b () =
  let scenario = Scenarios.Fig5b.scenario ~duration:20 ~policy_at:10 () in
  let samples = Deployment.run scenario in
  let at t = List.find (fun (s : Deployment.sample) -> s.time = t) samples in
  check_bool "before: all on instance 1" true
    (Deployment.rate (at 5) "AWS Instance #1" = 2.0);
  check_bool "before: instance 2 idle" true
    (Deployment.rate (at 5) "AWS Instance #2" = 0.0);
  check_bool "after: split" true
    (Deployment.rate (at 15) "AWS Instance #1" = 1.0
    && Deployment.rate (at 15) "AWS Instance #2" = 1.0)

let test_deployment_sampling () =
  let scenario = Scenarios.Fig5b.scenario ~duration:20 ~policy_at:10 () in
  let samples = Deployment.run ~sample_every:5 scenario in
  check_int "sampled every 5s" 4 (List.length samples);
  check_bool "missing sink reads zero" true
    (Deployment.rate (List.hd samples) "nonexistent" = 0.0)

let test_deployment_announce_event () =
  (* An announce event mid-run: before it, traffic to the prefix is
     dropped; after it, delivered. *)
  let open Sdx_core in
  let a =
    Participant.make ~asn:(Asn.of_int 1)
      ~ports:[ (Mac.of_string "0a:00:00:00:00:01", ip "172.9.0.1") ]
      ()
  in
  let b =
    Participant.make ~asn:(Asn.of_int 2)
      ~ports:[ (Mac.of_string "0a:00:00:00:00:02", ip "172.9.0.2") ]
      ()
  in
  let prefix = Prefix.of_string "55.0.0.0/16" in
  let scenario =
    {
      Deployment.participants = [ a; b ];
      seed_routes = [];
      flows =
        [
          {
            Deployment.name = "probe";
            from = Asn.of_int 1;
            packet = Packet.make ~dst_ip:(ip "55.0.1.1") ();
            rate_mbps = 1.0;
          };
        ];
      events =
        [
          ( 5,
            Deployment.Announce_route
              { peer = Asn.of_int 2; port = 0; prefix; as_path = None } );
        ];
      duration = 10;
      classify =
        (fun d -> if Asn.equal d.receiver (Asn.of_int 2) then Some "B" else None);
    }
  in
  let samples = Deployment.run scenario in
  let at t = List.find (fun (s : Deployment.sample) -> s.time = t) samples in
  check_bool "before announce: dropped" true (Deployment.rate (at 2) "B" = 0.0);
  check_bool "after announce: delivered" true (Deployment.rate (at 8) "B" = 1.0)

(* ------------------------------------------------------------------ *)
(* Middleboxes and service chaining                                    *)

let mk_mbox_world () =
  let open Sdx_core in
  let open Sdx_policy in
  let mac = Mac.of_string and pfx = Prefix.of_string in
  let asn_t = Asn.of_int 10 and asn_e = Asn.of_int 20 and asn_m = Asn.of_int 30 in
  let source_pfx = pfx "208.65.152.0/22" in
  let transit =
    Participant.make ~asn:asn_t
      ~ports:[ (mac "0a:00:00:00:00:11", ip "172.8.0.1") ]
      ~outbound:[ Ppolicy.steer (Pred.src_ip source_pfx) asn_m ]
      ()
  in
  let eyeball =
    Participant.make ~asn:asn_e ~ports:[ (mac "0a:00:00:00:00:12", ip "172.8.0.2") ] ()
  in
  let mbox =
    Participant.make ~asn:asn_m ~ports:[ (mac "0a:00:00:00:00:13", ip "172.8.0.3") ] ()
  in
  let config = Config.make [ transit; eyeball; mbox ] in
  ignore (Config.announce config ~peer:asn_e ~port:0 (pfx "73.0.0.0/8"));
  let net = Network.create (Runtime.create config) in
  (net, asn_t, asn_e, asn_m, source_pfx)

let test_middlebox_steering () =
  let net, asn_t, asn_e, asn_m, _ = mk_mbox_world () in
  Network.attach_middlebox net asn_m (Middlebox.transcoder ~to_port:8080);
  let pkt =
    Packet.make ~src_ip:(ip "208.65.152.9") ~dst_ip:(ip "73.1.1.1") ~dst_port:1935 ()
  in
  (match Network.inject net ~from:asn_t pkt with
  | [ d ] ->
      check_bool "reaches the eyeball" true (Asn.equal d.receiver asn_e);
      check_int "transcoded on the way" 8080 d.packet.dst_port
  | _ -> Alcotest.fail "chain failed");
  (* Unmatched traffic bypasses the middlebox. *)
  let other =
    Packet.make ~src_ip:(ip "9.9.9.9") ~dst_ip:(ip "73.1.1.1") ~dst_port:1935 ()
  in
  match Network.inject net ~from:asn_t other with
  | [ d ] -> check_int "untouched" 1935 d.packet.dst_port
  | _ -> Alcotest.fail "bypass failed"

let test_middlebox_scrubber_drops () =
  let net, asn_t, _, asn_m, _ = mk_mbox_world () in
  Network.attach_middlebox net asn_m
    (Middlebox.scrubber ~block:(fun p -> Ipv4.equal p.src_ip (ip "208.65.152.66")));
  let attack =
    Packet.make ~src_ip:(ip "208.65.152.66") ~dst_ip:(ip "73.1.1.1") ()
  in
  check_bool "attack scrubbed" true (Network.inject net ~from:asn_t attack = []);
  let clean = Packet.make ~src_ip:(ip "208.65.152.9") ~dst_ip:(ip "73.1.1.1") () in
  check_int "clean passes" 1 (List.length (Network.inject net ~from:asn_t clean))

let test_middlebox_detach () =
  let net, asn_t, _, asn_m, _ = mk_mbox_world () in
  Network.attach_middlebox net asn_m (Middlebox.scrubber ~block:(fun _ -> true));
  let pkt = Packet.make ~src_ip:(ip "208.65.152.9") ~dst_ip:(ip "73.1.1.1") () in
  check_bool "everything scrubbed" true (Network.inject net ~from:asn_t pkt = []);
  Network.detach_middlebox net asn_m;
  (* Without the function, the steered frame lands at the host port. *)
  match Network.inject net ~from:asn_t pkt with
  | [ d ] -> check_bool "delivered at host" true (Asn.equal d.receiver asn_m)
  | _ -> Alcotest.fail "detach failed"

let test_middlebox_loop_bounded () =
  (* A middlebox that bounces every packet straight back into itself via
     the steering policy must terminate as a drop, not diverge. *)
  let net, asn_t, _, asn_m, _ = mk_mbox_world () in
  (* Echo middlebox: emits the packet unchanged; the host router re-tags
     it toward the eyeball, but we make the steering predicate loop by
     also steering the middlebox host's own output. *)
  Network.attach_middlebox net asn_m (fun p -> [ p ]);
  let pkt = Packet.make ~src_ip:(ip "208.65.152.9") ~dst_ip:(ip "73.1.1.1") () in
  (* Terminates with a delivery (no infinite loop). *)
  check_bool "bounded" true (List.length (Network.inject net ~from:asn_t pkt) <= 2)

let test_middlebox_combinators () =
  let pkt = Packet.make ~dst_port:1935 ~src_ip:(ip "1.2.3.4") () in
  check_bool "tee duplicates" true (List.length (Middlebox.tee pkt) = 2);
  (match Middlebox.nat ~public_ip:(ip "9.9.9.9") pkt with
  | [ p ] -> check_bool "nat rewrites" true (Ipv4.equal p.src_ip (ip "9.9.9.9"))
  | _ -> Alcotest.fail "nat");
  match
    Middlebox.chain
      [ Middlebox.transcoder ~to_port:80; Middlebox.nat ~public_ip:(ip "9.9.9.9") ]
      pkt
  with
  | [ p ] ->
      check_int "chained transcode" 80 p.dst_port;
      check_bool "chained nat" true (Ipv4.equal p.src_ip (ip "9.9.9.9"))
  | _ -> Alcotest.fail "chain"

let test_attach_requires_port () =
  let runtime = Fig1.make_runtime () in
  let net = Network.create runtime in
  check_bool "remote host rejected" true
    (try
       Network.attach_middlebox net (Asn.of_int 4242) (fun p -> [ p ]);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Telemetry                                                           *)

let test_telemetry_counters () =
  let runtime = Fig1.make_runtime () in
  let net = Network.create runtime in
  let send ~src ~dst ~dst_port =
    ignore
      (Network.inject net ~from:Fig1.asn_a
         (Packet.make ~src_ip:(ip src) ~dst_ip:(ip dst) ~dst_port ()))
  in
  send ~src:"10.0.0.1" ~dst:"20.0.1.9" ~dst_port:80;  (* -> B *)
  send ~src:"10.0.0.2" ~dst:"20.0.1.9" ~dst_port:80;  (* -> B *)
  send ~src:"10.0.0.1" ~dst:"20.0.4.9" ~dst_port:443;  (* -> C *)
  send ~src:"10.0.0.1" ~dst:"99.0.0.1" ~dst_port:80;  (* no route: drop *)
  let t = Network.telemetry net in
  check_int "tx" 4 (Telemetry.tx t Fig1.asn_a);
  check_int "b rx" 2 (Telemetry.rx t Fig1.asn_b);
  check_int "c rx" 1 (Telemetry.rx t Fig1.asn_c);
  check_int "drops" 1 (Telemetry.dropped t Fig1.asn_a);
  check_int "total" 4 (Telemetry.total t);
  (match Telemetry.matrix t with
  | (s, r, n) :: _ ->
      check_bool "heaviest pair" true
        (Asn.equal s Fig1.asn_a && Asn.equal r Fig1.asn_b && n = 2)
  | [] -> Alcotest.fail "empty matrix");
  (match Telemetry.top_sources t ~toward:Fig1.asn_b with
  | (src, _) :: _ ->
      check_bool "sources tracked" true
        (Ipv4.equal src (ip "10.0.0.1") || Ipv4.equal src (ip "10.0.0.2"))
  | [] -> Alcotest.fail "no sources");
  Telemetry.reset t;
  check_int "reset" 0 (Telemetry.total t)

(* ------------------------------------------------------------------ *)
(* Multi-switch topology                                               *)

let fig1_classifier () =
  let runtime = Fig1.make_runtime () in
  (runtime, Sdx_core.Runtime.classifier runtime)

(* Figure 1's five ports spread over three switches in a line. *)
let fig1_topology () =
  Topology.create ~switches:[ 1; 2; 3 ]
    ~links:[ (1, 2); (2, 3) ]
    ~port_home:[ (1, 1); (2, 2); (3, 2); (4, 3); (5, 3) ]

let test_topology_structure () =
  let topo = fig1_topology () in
  check_int "switches" 3 (Topology.switch_count topo);
  check_bool "port home" true (Topology.home_of_port topo 4 = Some 3);
  check_bool "unknown port" true (Topology.home_of_port topo 99 = None);
  check_int "tree edges" 2 (List.length (Topology.spanning_tree_edges topo));
  check_bool "next hop" true (Topology.next_hop topo ~from:1 ~toward:3 = Some 2);
  check_bool "next hop down" true (Topology.next_hop topo ~from:2 ~toward:3 = Some 3);
  check_bool "same switch" true (Topology.next_hop topo ~from:2 ~toward:2 = None)

let test_topology_cycle_breaks () =
  (* A triangle: STP must drop one link. *)
  let topo =
    Topology.create ~switches:[ 1; 2; 3 ]
      ~links:[ (1, 2); (2, 3); (1, 3) ]
      ~port_home:[ (1, 1); (2, 2); (3, 3) ]
  in
  check_int "tree uses two of three links" 2
    (List.length (Topology.spanning_tree_edges topo))

let test_topology_disconnected_rejected () =
  check_bool "disconnected raises" true
    (try
       ignore (Topology.create ~switches:[ 1; 2 ] ~links:[] ~port_home:[ (1, 1) ]);
       false
     with Invalid_argument _ -> true)

(* The distributed fabric behaves exactly like the single big switch. *)
let test_topology_equivalent_to_big_switch () =
  let runtime, classifier = fig1_classifier () in
  let topo = fig1_topology () in
  let fabric = Topology.build topo classifier in
  check_bool "per-switch tables smaller than total" true
    (Topology.rule_count fabric 1 < Sdx_policy.Classifier.rule_count classifier);
  let cases =
    [
      ("10.0.0.1", "20.0.1.9", 80);
      ("192.168.0.1", "20.0.1.9", 80);
      ("10.0.0.1", "20.0.4.9", 443);
      ("10.0.0.1", "20.0.4.9", 80);
      ("10.0.0.1", "20.0.1.9", 9999);
      ("10.0.0.1", "20.0.5.9", 9999);
      ("10.0.0.1", "20.0.3.9", 22);
    ]
  in
  List.iter
    (fun (src, dst, dst_port) ->
      match
        Fig1.fabric_packet runtime ~sender:Fig1.asn_a ~src_ip:src ~dst_ip:dst
          ~dst_port ()
      with
      | None -> ()
      | Some pkt ->
          let big = Sdx_policy.Classifier.eval classifier pkt in
          let big =
            List.filter
              (fun (p : Packet.t) -> p.port <> Sdx_core.Compile.blackhole_port)
              big
          in
          let distributed =
            List.filter
              (fun (p : Packet.t) -> p.port <> Sdx_core.Compile.blackhole_port)
              (Topology.process fabric pkt)
          in
          check_bool
            (Printf.sprintf "same outputs for %s->%s:%d" src dst dst_port)
            true (big = distributed))
    cases

let test_topology_single_switch_degenerate () =
  let _, classifier = fig1_classifier () in
  let topo =
    Topology.create ~switches:[ 7 ] ~links:[]
      ~port_home:(List.init 5 (fun i -> (i + 1, 7)))
  in
  let fabric = Topology.build topo classifier in
  check_int "no tree edges" 0 (List.length (Topology.spanning_tree_edges topo));
  check_bool "rules preserved" true (Topology.rule_count fabric 7 > 0)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "sdx_fabric"
    [
      ( "border_router",
        [
          Alcotest.test_case "sync builds fib" `Quick test_router_sync_builds_fib;
          Alcotest.test_case "virtual next hops" `Quick test_router_next_hop_is_virtual;
          Alcotest.test_case "send tags" `Quick test_router_send_tags;
          Alcotest.test_case "unknown port" `Quick test_router_unknown_port;
        ] );
      ( "network",
        [
          Alcotest.test_case "figure 1 deliveries" `Quick test_network_figure1_deliveries;
          Alcotest.test_case "delivery rewrites mac" `Quick
            test_network_delivery_rewrites_mac;
          Alcotest.test_case "sync after update" `Quick test_network_sync_after_update;
          Alcotest.test_case "router access" `Quick test_network_router_access;
          Alcotest.test_case "incremental sync" `Quick test_network_incremental_sync;
          Alcotest.test_case "switch capacity" `Quick test_network_switch_capacity;
          Alcotest.test_case "inject frame" `Quick test_network_inject_frame;
          Alcotest.test_case "inject at port" `Quick test_network_inject_at_port;
        ] );
      ( "deployment",
        [
          Alcotest.test_case "figure 5a" `Quick test_deployment_fig5a;
          Alcotest.test_case "figure 5b" `Quick test_deployment_fig5b;
          Alcotest.test_case "sampling" `Quick test_deployment_sampling;
          Alcotest.test_case "announce event" `Quick test_deployment_announce_event;
        ] );
      ( "middlebox",
        [
          Alcotest.test_case "steering" `Quick test_middlebox_steering;
          Alcotest.test_case "scrubber drops" `Quick test_middlebox_scrubber_drops;
          Alcotest.test_case "detach" `Quick test_middlebox_detach;
          Alcotest.test_case "loop bounded" `Quick test_middlebox_loop_bounded;
          Alcotest.test_case "combinators" `Quick test_middlebox_combinators;
          Alcotest.test_case "attach requires port" `Quick test_attach_requires_port;
        ] );
      ( "telemetry",
        [ Alcotest.test_case "counters" `Quick test_telemetry_counters ] );
      ( "topology",
        [
          Alcotest.test_case "structure" `Quick test_topology_structure;
          Alcotest.test_case "cycle breaks" `Quick test_topology_cycle_breaks;
          Alcotest.test_case "disconnected rejected" `Quick
            test_topology_disconnected_rejected;
          Alcotest.test_case "equivalent to big switch" `Quick
            test_topology_equivalent_to_big_switch;
          Alcotest.test_case "single switch degenerate" `Quick
            test_topology_single_switch_degenerate;
        ] );
    ]
