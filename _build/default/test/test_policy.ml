(* Tests for the Pyretic-style policy language and its classifier
   compiler.  The central property: for random policies and packets, the
   compiled classifier agrees exactly with the reference interpreter. *)

open Sdx_net
open Sdx_policy

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Small-domain generators so random predicates actually hit packets.  *)

let addr x = Ipv4.of_int (0x0A000000 lor (x land 7))
let small_mac x = Mac.of_int (x land 3)

let gen_small_prefix =
  QCheck2.Gen.(
    map2 (fun x len -> Prefix.make (addr x) len) (int_range 0 7) (int_range 29 32))

let gen_pattern =
  let open QCheck2.Gen in
  let opt g = frequency [ (2, return None); (1, map Option.some g) ] in
  let* port = opt (int_range 0 3) in
  let* src_mac = opt (map small_mac (int_range 0 3)) in
  let* dst_mac = opt (map small_mac (int_range 0 3)) in
  let* src_ip = opt gen_small_prefix in
  let* dst_ip = opt gen_small_prefix in
  let* proto = opt (oneofl [ 6; 17 ]) in
  let* src_port = opt (oneofl [ 80; 443 ]) in
  let* dst_port = opt (oneofl [ 80; 443 ]) in
  return
    (Pattern.make ?port ?src_mac ?dst_mac ?src_ip ?dst_ip ?proto ?src_port
       ?dst_port ())

let gen_mods =
  let open QCheck2.Gen in
  let opt g = frequency [ (2, return None); (1, map Option.some g) ] in
  let* port = opt (int_range 0 3) in
  let* dst_mac = opt (map small_mac (int_range 0 3)) in
  let* src_ip = opt (map addr (int_range 0 7)) in
  let* dst_ip = opt (map addr (int_range 0 7)) in
  let* dst_port = opt (oneofl [ 80; 443 ]) in
  return (Mods.make ?port ?dst_mac ?src_ip ?dst_ip ?dst_port ())

let gen_packet =
  let open QCheck2.Gen in
  let* port = int_range 0 3 in
  let* src_mac = map small_mac (int_range 0 3) in
  let* dst_mac = map small_mac (int_range 0 3) in
  let* src_ip = map addr (int_range 0 7) in
  let* dst_ip = map addr (int_range 0 7) in
  let* proto = oneofl [ 6; 17 ] in
  let* src_port = oneofl [ 80; 443 ] in
  let* dst_port = oneofl [ 80; 443 ] in
  return
    (Packet.make ~port ~src_mac ~dst_mac ~src_ip ~dst_ip ~proto ~src_port
       ~dst_port ())

let gen_pred =
  QCheck2.Gen.(
    sized_size (int_range 0 4)
    @@ fix (fun self n ->
           if n = 0 then
             frequency
               [
                 (4, map (fun p -> Pred.Test p) gen_pattern);
                 (1, return Pred.True);
                 (1, return Pred.False);
               ]
           else
             frequency
               [
                 (2, map (fun p -> Pred.Test p) gen_pattern);
                 (2, map2 (fun a b -> Pred.And (a, b)) (self (n / 2)) (self (n / 2)));
                 (2, map2 (fun a b -> Pred.Or (a, b)) (self (n / 2)) (self (n / 2)));
                 (1, map (fun a -> Pred.Not a) (self (n - 1)));
               ]))

let gen_policy =
  QCheck2.Gen.(
    sized_size (int_range 0 4)
    @@ fix (fun self n ->
           if n = 0 then
             frequency
               [
                 (2, map (fun p -> Policy.Filter p) gen_pred);
                 (2, map (fun m -> Policy.Mod m) gen_mods);
               ]
           else
             frequency
               [
                 (1, map (fun p -> Policy.Filter p) gen_pred);
                 (1, map (fun m -> Policy.Mod m) gen_mods);
                 ( 2,
                   map2 (fun a b -> Policy.Union (a, b)) (self (n / 2)) (self (n / 2))
                 );
                 (2, map2 (fun a b -> Policy.Seq (a, b)) (self (n / 2)) (self (n / 2)));
                 ( 1,
                   map3
                     (fun c a b -> Policy.If (c, a, b))
                     gen_pred (self (n / 2)) (self (n / 2)) );
               ]))

(* ------------------------------------------------------------------ *)
(* Mods                                                                *)

let test_mods_identity () =
  let pkt = Packet.make ~dst_port:80 () in
  check_bool "identity" true (Packet.equal pkt (Mods.apply Mods.identity pkt));
  check_bool "is_identity" true (Mods.is_identity Mods.identity);
  check_bool "not identity" false (Mods.is_identity (Mods.make ~port:1 ()))

let test_mods_apply () =
  let pkt = Packet.make ~dst_port:80 ~port:1 () in
  let m = Mods.make ~port:2 ~dst_port:443 () in
  let pkt' = Mods.apply m pkt in
  check_int "port" 2 pkt'.port;
  check_int "dst_port" 443 pkt'.dst_port;
  check_int "src_port untouched" 0 pkt'.src_port

let prop_mods_then_law =
  QCheck2.Test.make ~name:"then_ a b = apply b after apply a" ~count:1000
    QCheck2.Gen.(triple gen_mods gen_mods gen_packet)
    (fun (a, b, pkt) ->
      Packet.equal
        (Mods.apply (Mods.then_ a b) pkt)
        (Mods.apply b (Mods.apply a pkt)))

(* ------------------------------------------------------------------ *)
(* Pattern                                                             *)

let test_pattern_all () =
  check_bool "all matches" true (Pattern.matches Pattern.all (Packet.make ()));
  check_bool "is_all" true (Pattern.is_all Pattern.all);
  check_int "field_count" 0 (Pattern.field_count Pattern.all)

let prop_pattern_inter =
  QCheck2.Test.make ~name:"pattern inter = conjunction of matches" ~count:2000
    QCheck2.Gen.(triple gen_pattern gen_pattern gen_packet)
    (fun (a, b, pkt) ->
      let both = Pattern.matches a pkt && Pattern.matches b pkt in
      match Pattern.inter a b with
      | Some i -> Pattern.matches i pkt = both
      | None -> not both)

let prop_pattern_subset =
  QCheck2.Test.make ~name:"pattern subset implies match subset" ~count:2000
    QCheck2.Gen.(triple gen_pattern gen_pattern gen_packet)
    (fun (a, b, pkt) ->
      (not (Pattern.subset a b))
      || (not (Pattern.matches a pkt))
      || Pattern.matches b pkt)

let prop_pattern_pull_back =
  QCheck2.Test.make ~name:"pull_back m p matches iff p matches after m"
    ~count:2000
    QCheck2.Gen.(triple gen_mods gen_pattern gen_packet)
    (fun (m, pat, pkt) ->
      let after = Pattern.matches pat (Mods.apply m pkt) in
      match Pattern.pull_back m pat with
      | Some pat' -> Pattern.matches pat' pkt = after
      | None -> not after)

(* ------------------------------------------------------------------ *)
(* Pred                                                                *)

let test_pred_constructors () =
  let pkt = Packet.make ~dst_port:80 ~port:2 () in
  check_bool "dst_port" true (Pred.eval (Pred.dst_port 80) pkt);
  check_bool "port" false (Pred.eval (Pred.port 1) pkt);
  check_bool "conj" true
    (Pred.eval (Pred.conj [ Pred.dst_port 80; Pred.port 2 ]) pkt);
  check_bool "disj empty is false" false (Pred.eval (Pred.disj []) pkt);
  check_bool "any_of_ports" true (Pred.eval (Pred.any_of_ports [ 1; 2 ]) pkt)

let prop_smart_and =
  QCheck2.Test.make ~name:"and_ preserves semantics" ~count:2000
    QCheck2.Gen.(triple gen_pred gen_pred gen_packet)
    (fun (a, b, pkt) ->
      Pred.eval (Pred.and_ a b) pkt = (Pred.eval a pkt && Pred.eval b pkt))

let prop_smart_or =
  QCheck2.Test.make ~name:"or_ preserves semantics" ~count:2000
    QCheck2.Gen.(triple gen_pred gen_pred gen_packet)
    (fun (a, b, pkt) ->
      Pred.eval (Pred.or_ a b) pkt = (Pred.eval a pkt || Pred.eval b pkt))

let prop_smart_not =
  QCheck2.Test.make ~name:"not_ preserves semantics" ~count:2000
    QCheck2.Gen.(pair gen_pred gen_packet)
    (fun (a, pkt) -> Pred.eval (Pred.not_ a) pkt = not (Pred.eval a pkt))

(* ------------------------------------------------------------------ *)
(* Policy interpreter                                                  *)

let test_policy_basics () =
  let pkt = Packet.make ~dst_port:80 () in
  check_bool "id" true (Policy.eval Policy.id pkt = [ pkt ]);
  check_bool "drop" true (Policy.eval Policy.drop pkt = []);
  check_bool "fwd" true (Policy.eval (Policy.fwd 3) pkt = [ { pkt with port = 3 } ]);
  check_bool "union dedupes" true
    (List.length (Policy.eval Policy.(Union (id, id)) pkt) = 1)

let test_policy_if () =
  let pkt80 = Packet.make ~dst_port:80 () in
  let pkt443 = Packet.make ~dst_port:443 () in
  let pol = Policy.if_ (Pred.dst_port 80) (Policy.fwd 1) (Policy.fwd 2) in
  check_bool "then" true (Policy.eval pol pkt80 = [ { pkt80 with port = 1 } ]);
  check_bool "else" true (Policy.eval pol pkt443 = [ { pkt443 with port = 2 } ])

let test_policy_seq () =
  let pkt = Packet.make () in
  let pol = Policy.(seq [ modify (Mods.make ~dst_port:80 ()); fwd 2 ]) in
  check_bool "seq" true
    (Policy.eval pol pkt = [ { pkt with dst_port = 80; port = 2 } ])

(* ------------------------------------------------------------------ *)
(* Classifier: the compile-correctness property                        *)

let prop_compile_correct =
  QCheck2.Test.make ~name:"compiled classifier = interpreter" ~count:4000
    QCheck2.Gen.(pair gen_policy gen_packet)
    (fun (pol, pkt) ->
      Classifier.eval (Classifier.compile pol) pkt = Policy.eval pol pkt)

let prop_compile_total =
  QCheck2.Test.make ~name:"compiled classifier is total" ~count:1000
    QCheck2.Gen.(pair gen_policy gen_packet)
    (fun (pol, pkt) ->
      Option.is_some (Classifier.first_match (Classifier.compile pol) pkt))

let prop_compile_pred_filter =
  QCheck2.Test.make ~name:"compile_pred acts as a filter" ~count:2000
    QCheck2.Gen.(pair gen_pred gen_packet)
    (fun (pred, pkt) ->
      let out = Classifier.eval (Classifier.compile_pred pred) pkt in
      if Pred.eval pred pkt then out = [ pkt ] else out = [])

let prop_par_semantics =
  QCheck2.Test.make ~name:"par = union of actions" ~count:2000
    QCheck2.Gen.(triple gen_policy gen_policy gen_packet)
    (fun (p, q, pkt) ->
      let c = Classifier.par (Classifier.compile p) (Classifier.compile q) in
      Classifier.eval c pkt = Policy.eval (Policy.Union (p, q)) pkt)

let prop_seq_semantics =
  QCheck2.Test.make ~name:"seq = composition of classifiers" ~count:2000
    QCheck2.Gen.(triple gen_policy gen_policy gen_packet)
    (fun (p, q, pkt) ->
      let c = Classifier.seq (Classifier.compile p) (Classifier.compile q) in
      Classifier.eval c pkt = Policy.eval (Policy.Seq (p, q)) pkt)

let prop_restrict_semantics =
  QCheck2.Test.make ~name:"restrict confines a classifier" ~count:2000
    QCheck2.Gen.(triple gen_pattern gen_policy gen_packet)
    (fun (pat, pol, pkt) ->
      let c = Classifier.restrict pat (Classifier.compile pol) in
      let expected = if Pattern.matches pat pkt then Policy.eval pol pkt else [] in
      Classifier.eval c pkt = expected)

let prop_optimize_preserves =
  QCheck2.Test.make ~name:"optimize preserves semantics" ~count:2000
    QCheck2.Gen.(pair gen_policy gen_packet)
    (fun (pol, pkt) ->
      let c = Classifier.compile pol in
      Classifier.eval (Classifier.optimize c) pkt = Classifier.eval c pkt)

let prop_optimize_shrinks =
  QCheck2.Test.make ~name:"optimize never grows the classifier" ~count:1000
    gen_policy
    (fun pol ->
      let c = Classifier.compile pol in
      Classifier.rule_count (Classifier.optimize c) <= Classifier.rule_count c)

let test_classifier_shadow_removal () =
  let rule pattern action = { Classifier.pattern; action } in
  let shadowed =
    [
      rule Pattern.all [ Mods.identity ];
      rule (Pattern.make ~port:1 ()) [ Mods.make ~port:2 () ];
      rule Pattern.all [];
    ]
  in
  check_int "shadowed rules removed" 1
    (Classifier.rule_count (Classifier.optimize shadowed))

let test_classifier_paper_example () =
  (* The composed policy of §3.1: A's outbound over B's inbound. *)
  let open Policy in
  let pa =
    if_ (Pred.dst_port 80) (fwd 10) (if_ (Pred.dst_port 443) (fwd 20) drop)
  in
  let pb =
    if_
      (Pred.src_ip (Prefix.of_string "0.0.0.0/1"))
      (fwd 11)
      (if_ (Pred.src_ip (Prefix.of_string "128.0.0.0/1")) (fwd 12) drop)
  in
  let composed = Classifier.seq (Classifier.compile pa) (Classifier.compile pb) in
  let run ~src ~dst_port =
    let pkt = Packet.make ~src_ip:(Ipv4.of_string src) ~dst_port () in
    List.map (fun (p : Packet.t) -> p.port) (Classifier.eval composed pkt)
  in
  check_bool "web low" true (run ~src:"10.0.0.1" ~dst_port:80 = [ 11 ]);
  check_bool "web high" true (run ~src:"192.0.0.1" ~dst_port:80 = [ 12 ]);
  check_bool "https low" true (run ~src:"10.0.0.1" ~dst_port:443 = [ 11 ]);
  check_bool "other dropped" true (run ~src:"10.0.0.1" ~dst_port:22 = [])

let test_multicast () =
  let pol = Policy.(Union (fwd 1, fwd 2)) in
  let out = Classifier.eval (Classifier.compile pol) (Packet.make ()) in
  check_int "two copies" 2 (List.length out)

(* ------------------------------------------------------------------ *)
(* Pretty-printers                                                     *)

let test_pretty_printers () =
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "wildcard pattern" true
    (Format.asprintf "%a" Pattern.pp Pattern.all = "*");
  check_bool "pattern fields" true
    (contains "dst_port=80"
       (Format.asprintf "%a" Pattern.pp (Pattern.make ~dst_port:80 ())));
  check_bool "identity mods" true
    (Format.asprintf "%a" Mods.pp Mods.identity = "id");
  check_bool "mods assignment" true
    (contains "port:=3" (Format.asprintf "%a" Mods.pp (Mods.make ~port:3 ())));
  check_bool "pred structure" true
    (contains "||"
       (Format.asprintf "%a" Pred.pp (Pred.Or (Pred.dst_port 80, Pred.dst_port 443))));
  check_bool "policy structure" true
    (contains ">>"
       (Format.asprintf "%a" Policy.pp
          Policy.(Seq (filter (Pred.dst_port 80), fwd 2))));
  let c = Classifier.compile (Policy.if_ (Pred.dst_port 80) (Policy.fwd 1) Policy.drop) in
  check_bool "classifier rules printed" true
    (contains "->" (Format.asprintf "%a" Classifier.pp c))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "sdx_policy"
    [
      ( "mods",
        [
          Alcotest.test_case "identity" `Quick test_mods_identity;
          Alcotest.test_case "apply" `Quick test_mods_apply;
        ]
        @ qsuite [ prop_mods_then_law ] );
      ( "pattern",
        [ Alcotest.test_case "all" `Quick test_pattern_all ]
        @ qsuite
            [ prop_pattern_inter; prop_pattern_subset; prop_pattern_pull_back ] );
      ( "pred",
        [ Alcotest.test_case "constructors" `Quick test_pred_constructors ]
        @ qsuite [ prop_smart_and; prop_smart_or; prop_smart_not ] );
      ( "policy",
        [
          Alcotest.test_case "basics" `Quick test_policy_basics;
          Alcotest.test_case "if_" `Quick test_policy_if;
          Alcotest.test_case "seq" `Quick test_policy_seq;
        ] );
      ("pp", [ Alcotest.test_case "pretty printers" `Quick test_pretty_printers ]);
      ( "classifier",
        [
          Alcotest.test_case "shadow removal" `Quick test_classifier_shadow_removal;
          Alcotest.test_case "paper 3.1 composition" `Quick
            test_classifier_paper_example;
          Alcotest.test_case "multicast" `Quick test_multicast;
        ]
        @ qsuite
            [
              prop_compile_correct;
              prop_compile_total;
              prop_compile_pred_filter;
              prop_par_semantics;
              prop_seq_semantics;
              prop_restrict_semantics;
              prop_optimize_preserves;
              prop_optimize_shrinks;
            ] );
    ]
